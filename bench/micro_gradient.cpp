/// Micro/ablation benchmarks of the gradient algorithms: the paper's
/// greedy sweep vs the lower-star matching, with and without the
/// boundary pairing restriction. Counters report criticals per run
/// (the restriction's spurious-critical overhead is itself a result:
/// section V-A's boundary artifacts).
#include <benchmark/benchmark.h>

#include "core/gradient.hpp"
#include "core/lower_star.hpp"
#include "decomp/decompose.hpp"
#include "synth/fields.hpp"

namespace {

using namespace msc;

BlockField makeField(std::int64_t side, bool blocked, const char* kind) {
  const auto s = static_cast<std::int64_t>(side);
  const Domain d{{s, s, s}};
  const synth::Field f =
      std::string(kind) == "noise" ? synth::noise(7) : synth::sinusoid(d, 4);
  if (!blocked) {
    Block whole;
    whole.domain = d;
    whole.vdims = d.vdims;
    whole.voffset = {0, 0, 0};
    return synth::sample(whole, f);
  }
  return synth::sample(decompose(d, 8)[0], f);  // a corner block
}

void reportCriticals(benchmark::State& state, const GradientField& g,
                     std::int64_t cells) {
  const auto c = g.criticalCounts();
  state.counters["criticals"] = static_cast<double>(c[0] + c[1] + c[2] + c[3]);
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(cells) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_GradientSweep(benchmark::State& state) {
  const BlockField bf = makeField(state.range(0), false, "sinusoid");
  GradientField g;
  for (auto _ : state) {
    g = computeGradientSweep(bf);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportCriticals(state, g, bf.block().numCells());
}
BENCHMARK(BM_GradientSweep)->Arg(17)->Arg(33)->Arg(49)->Unit(benchmark::kMillisecond);

void BM_GradientLowerStar(benchmark::State& state) {
  const BlockField bf = makeField(state.range(0), false, "sinusoid");
  GradientField g;
  for (auto _ : state) {
    g = computeGradientLowerStar(bf);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportCriticals(state, g, bf.block().numCells());
}
BENCHMARK(BM_GradientLowerStar)->Arg(17)->Arg(33)->Arg(49)->Unit(benchmark::kMillisecond);

void BM_GradientNoise(benchmark::State& state) {
  const BlockField bf = makeField(33, false, "noise");
  GradientField g;
  for (auto _ : state) {
    g = state.range(0) == 0 ? computeGradientSweep(bf) : computeGradientLowerStar(bf);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportCriticals(state, g, bf.block().numCells());
}
BENCHMARK(BM_GradientNoise)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Ablation: cost and critical-count overhead of the boundary
/// restriction on a shared-face block.
void BM_BoundaryRestriction(benchmark::State& state) {
  const BlockField bf = makeField(33, true, "sinusoid");
  GradientOptions opts;
  opts.restrict_boundary = state.range(0) != 0;
  GradientField g;
  for (auto _ : state) {
    g = computeGradientLowerStar(bf, opts);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportCriticals(state, g, bf.block().numCells());
}
BENCHMARK(BM_BoundaryRestriction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
