/// Micro/ablation benchmarks of the gradient algorithms: the paper's
/// greedy sweep vs the lower-star matching, with and without the
/// boundary pairing restriction. Counters report criticals per run
/// (the restriction's spurious-critical overhead is itself a result:
/// section V-A's boundary artifacts).
#include <benchmark/benchmark.h>

#include "core/gradient.hpp"
#include "core/lower_star.hpp"
#include "decomp/decompose.hpp"
#include "metrics/metrics.hpp"
#include "synth/fields.hpp"

namespace {

using namespace msc;

BlockField makeField(std::int64_t side, bool blocked, const char* kind) {
  const auto s = static_cast<std::int64_t>(side);
  const Domain d{{s, s, s}};
  const synth::Field f =
      std::string(kind) == "noise" ? synth::noise(7) : synth::sinusoid(d, 4);
  if (!blocked) {
    Block whole;
    whole.domain = d;
    whole.vdims = d.vdims;
    whole.voffset = {0, 0, 0};
    return synth::sample(whole, f);
  }
  return synth::sample(decompose(d, 8)[0], f);  // a corner block
}

/// Work counters come from the metrics registry the kernel flushed
/// into, so the reported rates are exact kernel-side tallies rather
/// than fixture-derived estimates.
void reportWork(benchmark::State& state, const metrics::Registry& reg) {
  using metrics::Counter;
  const auto rate = [&](Counter c) {
    return benchmark::Counter(static_cast<double>(reg.counterTotal(c)),
                              benchmark::Counter::kIsRate);
  };
  state.counters["criticals"] = static_cast<double>(
      reg.counterTotal(Counter::kGradCriticals) / state.iterations());
  state.counters["cells_per_s"] = rate(Counter::kGradCells);
  state.counters["pairs_per_s"] = rate(Counter::kGradPairs);
}

void BM_GradientSweep(benchmark::State& state) {
  const BlockField bf = makeField(state.range(0), false, "sinusoid");
  metrics::Registry reg(1);
  GradientOptions opts;
  opts.metrics = &reg;
  GradientField g;
  for (auto _ : state) {
    g = computeGradientSweep(bf, opts);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportWork(state, reg);
}
BENCHMARK(BM_GradientSweep)->Arg(17)->Arg(33)->Arg(49)->Unit(benchmark::kMillisecond);

void BM_GradientLowerStar(benchmark::State& state) {
  const BlockField bf = makeField(state.range(0), false, "sinusoid");
  metrics::Registry reg(1);
  GradientOptions opts;
  opts.metrics = &reg;
  GradientField g;
  for (auto _ : state) {
    g = computeGradientLowerStar(bf, opts);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportWork(state, reg);
}
BENCHMARK(BM_GradientLowerStar)->Arg(17)->Arg(33)->Arg(49)->Unit(benchmark::kMillisecond);

void BM_GradientNoise(benchmark::State& state) {
  const BlockField bf = makeField(33, false, "noise");
  metrics::Registry reg(1);
  GradientOptions opts;
  opts.metrics = &reg;
  GradientField g;
  for (auto _ : state) {
    g = state.range(0) == 0 ? computeGradientSweep(bf, opts)
                            : computeGradientLowerStar(bf, opts);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportWork(state, reg);
}
BENCHMARK(BM_GradientNoise)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Ablation: cost and critical-count overhead of the boundary
/// restriction on a shared-face block.
void BM_BoundaryRestriction(benchmark::State& state) {
  const BlockField bf = makeField(33, true, "sinusoid");
  metrics::Registry reg(1);
  GradientOptions opts;
  opts.restrict_boundary = state.range(0) != 0;
  opts.metrics = &reg;
  GradientField g;
  for (auto _ : state) {
    g = computeGradientLowerStar(bf, opts);
    benchmark::DoNotOptimize(g.state().data());
  }
  reportWork(state, reg);
}
BENCHMARK(BM_BoundaryRestriction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
