/// Table II reproduction: merge strategies for a full merge of 256
/// blocks down to one. The paper's finding: fewer rounds with higher
/// radices win; when a smaller radix is unavoidable it should go in
/// an *early* round ([4,8,8] beats [8,8,4]); many low-radix rounds
/// ([2x8]) are worst.
#include "bench_util.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int nblocks = static_cast<int>(flags.getInt("blocks", 256));
  const int size = static_cast<int>(flags.getInt("size", 65));
  const int complexity = static_cast<int>(flags.getInt("complexity", 8));
  const pipeline::SimModels models = bench::defaultModels(flags);

  bench::header("Table II: merge strategies for full merge of 256 blocks");
  bench::note("sinusoid %d^3, complexity %d; compute+merge reconstructed seconds", size,
              complexity);
  std::printf("%8s %22s %18s %22s %16s %14s\n", "rounds", "radices", "strategy",
              "compute+merge_s", "merge_s", "max_root_B");

  const std::vector<std::vector<int>> plans = {
      {4, 8, 8}, {8, 8, 4}, {4, 4, 2, 8}, {4, 4, 4, 4}, {2, 2, 2, 2, 2, 2, 2, 2}};
  // Each plan runs under both merge strategies: the single-root
  // schedule the paper benchmarks, and the distributed variant
  // (pre-merge reduction + sharded final round, merge/) whose last
  // round never gathers the whole complex onto one rank. The max
  // root bytes column is what sharding is for: the largest complex
  // any rank holds in the final round.
  for (const auto& radices : plans) {
    for (const bool dist : {false, true}) {
      pipeline::PipelineConfig cfg;
      cfg.domain = Domain{{size, size, size}};
      cfg.source.field = synth::sinusoid(cfg.domain, complexity);
      cfg.nblocks = nblocks;
      cfg.nranks = nblocks;
      cfg.persistence_threshold = 0.05f;
      cfg.plan = MergePlan::partial(radices);
      cfg.premerge = dist;
      cfg.sharded_final = dist;
      const pipeline::SimResult r = runSimPipeline(cfg, models);
      std::int64_t final_root_bytes = 0;
      if (!r.inputs.rounds.empty())
        for (const simnet::GroupRecord& g : r.inputs.rounds.back()) {
          std::int64_t in = 0;
          for (const auto& s : g.sends) in += s.second;
          final_root_bytes = std::max(final_root_bytes, in);
        }
      std::printf("%8zu %22s %18s %22.4f %16.4f %14lld\n", radices.size(),
                  cfg.plan.toString().c_str(), dist ? "premerge+sharded" : "single-root",
                  r.times.compute + r.times.mergeTotal(), r.times.mergeTotal(),
                  static_cast<long long>(final_root_bytes));
    }
  }
  bench::note("paper: 144.040 / 144.528 / 144.955 / 145.012 / 149.174 s (single-root)");
  bench::note("ordering to reproduce: [4,8,8] <= [8,8,4] < 4-round plans < [2x8]");
  return 0;
}
