/// \file bench_util.hpp
/// Shared helpers for the experiment executables: tiny flag parsing,
/// table formatting, and the default model calibration used across
/// all paper-figure reproductions (see EXPERIMENTS.md).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "causal/critpath.hpp"
#include "pipeline/sim_pipeline.hpp"

namespace msc::bench {

/// Minimal --key=value flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::int64_t getInt(const std::string& key, std::int64_t def) const {
    const std::string v = raw(key);
    return v.empty() ? def : std::atoll(v.c_str());
  }
  double getDouble(const std::string& key, double def) const {
    const std::string v = raw(key);
    return v.empty() ? def : std::atof(v.c_str());
  }
  bool getBool(const std::string& key, bool def = false) const {
    const std::string v = raw(key);
    return v.empty() ? def : v != "0" && v != "false";
  }
  std::string getString(const std::string& key, std::string def = {}) const {
    const std::string v = raw(key);
    return v.empty() ? def : v;
  }
  std::vector<int> getIntList(const std::string& key, std::vector<int> def) const {
    const std::string v = raw(key);
    if (v.empty()) return def;
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      out.push_back(std::atoi(v.substr(pos, next - pos).c_str()));
      pos = next + 1;
    }
    return out;
  }

 private:
  std::string raw(const std::string& key) const {
    const std::string prefix = "--" + key + "=";
    for (const std::string& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return {};
  }
  std::vector<std::string> args_;
};

/// Default models: BG/P-flavoured constants (see EXPERIMENTS.md for
/// the calibration rationale).
inline pipeline::SimModels defaultModels(const Flags& flags) {
  pipeline::SimModels m;
  m.scale.cpu_scale = flags.getDouble("cpu_scale", 12.0);
  m.net.bandwidth_Bps = flags.getDouble("link_bw", 425e6);
  m.io.aggregate_bw_Bps = flags.getDouble("io_agg_bw", 4e9);
  m.io.per_proc_bw_Bps = flags.getDouble("io_proc_bw", 50e6);
  return m;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("# ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

/// Per-merge-round communication stats derived from a recorded
/// timeline: total payload bytes shipped, the most-loaded root rank's
/// ingress bytes, and the imbalance factor max/mean over roots
/// (1.0 = perfectly balanced; the paper's slowest-rank attribution).
struct RoundCommStats {
  std::int64_t total_bytes{0};
  std::int64_t max_root_bytes{0};
  int max_root_rank{0};
  int groups{0};
  int messages{0};
  double imbalance{1.0};
};

inline std::vector<RoundCommStats> roundCommStats(const simnet::TimelineInputs& in) {
  std::vector<RoundCommStats> out;
  out.reserve(in.rounds.size());
  for (const auto& round : in.rounds) {
    RoundCommStats s;
    std::map<int, std::int64_t> per_root;
    for (const simnet::GroupRecord& g : round) {
      ++s.groups;
      for (const auto& [src, bytes] : g.sends) {
        (void)src;
        ++s.messages;
        s.total_bytes += bytes;
        per_root[g.root_rank] += bytes;
      }
    }
    for (const auto& [rank, bytes] : per_root) {
      if (bytes > s.max_root_bytes) {
        s.max_root_bytes = bytes;
        s.max_root_rank = rank;
      }
    }
    if (!per_root.empty()) {
      const double mean =
          static_cast<double>(s.total_bytes) / static_cast<double>(per_root.size());
      if (mean > 0) s.imbalance = static_cast<double>(s.max_root_bytes) / mean;
    }
    out.push_back(s);
  }
  return out;
}

/// Every BENCH_*.json run object carries this so tools/msc_perfgate
/// (and any other consumer) can reject files written by an
/// incompatible harness instead of misreading them.
inline constexpr int kBenchSchemaVersion = 1;

/// Minimal streaming JSON writer for the bench harness output files.
/// Handles nesting/commas; callers supply already-escaped keys (all
/// keys used here are plain identifiers). String values get full
/// JSON escaping (quotes, backslashes, control characters).
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  JsonWriter& beginObject() { return open('{'); }
  JsonWriter& endObject() { return close('}'); }
  JsonWriter& beginArray() { return open('['); }
  JsonWriter& endArray() { return close(']'); }

  JsonWriter& key(const char* k) {
    comma();
    std::fprintf(f_, "\"%s\":", k);
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    std::fprintf(f_, "%lld", static_cast<long long>(v));
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v) {
    comma();
    std::fprintf(f_, "%.9g", v);
    return *this;
  }
  JsonWriter& value(const char* s) {
    comma();
    std::fputc('"', f_);
    for (const char* p = s; *p; ++p) {
      switch (*p) {
        case '"': std::fputs("\\\"", f_); break;
        case '\\': std::fputs("\\\\", f_); break;
        case '\n': std::fputs("\\n", f_); break;
        case '\t': std::fputs("\\t", f_); break;
        case '\r': std::fputs("\\r", f_); break;
        default:
          if (static_cast<unsigned char>(*p) < 0x20)
            std::fprintf(f_, "\\u%04x", *p);
          else
            std::fputc(*p, f_);
      }
    }
    std::fputc('"', f_);
    return *this;
  }
  JsonWriter& value(const std::string& s) { return value(s.c_str()); }
  void finish() { std::fputc('\n', f_); }

 private:
  JsonWriter& open(char c) {
    comma();
    std::fputc(c, f_);
    need_comma_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    std::fputc(c, f_);
    need_comma_ = true;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      need_comma_ = true;
      return;
    }
    if (need_comma_) std::fputc(',', f_);
    need_comma_ = true;
  }
  std::FILE* f_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

/// Critical-path seconds of one merge round, bucketed three ways for
/// the scaling studies: locally-bound work (read/compute/merge/glue/
/// write stage categories), communication (transfer + mailbox wait),
/// and synchronization (barrier wait + idle).
struct RoundPathBreakdown {
  double compute_s{0};
  double comm_s{0};
  double wait_s{0};
};

inline std::map<int, RoundPathBreakdown> roundPathBreakdown(
    const causal::CriticalPath& cp) {
  std::map<int, RoundPathBreakdown> out;
  for (const causal::PathSegment& s : cp.segments) {
    RoundPathBreakdown& b = out[s.round];
    switch (s.category) {
      case causal::PathCategory::kTransfer:
      case causal::PathCategory::kMailboxWait:
        b.comm_s += s.seconds();
        break;
      case causal::PathCategory::kBarrierWait:
      case causal::PathCategory::kIdle:
        b.wait_s += s.seconds();
        break;
      default:
        b.compute_s += s.seconds();
        break;
    }
  }
  return out;
}

/// One strong-scaling data point as a JSON object: stage times plus
/// the per-round byte/imbalance counters (the observability the
/// paper's Tables 1-2 are built from). Shared by fig9/fig10. When a
/// critical path is supplied (the drivers attach a causal::Recorder
/// in --json mode), the object gains critical_path_seconds and each
/// round gains its on-path compute/comm/wait split. `extras`, when
/// supplied, is invoked with the run object still open so callers
/// (the scaling observatory) can append additional keys.
inline void writeRunJson(JsonWriter& json, int procs, const char* plan,
                         const pipeline::SimResult& r, double efficiency,
                         const causal::CriticalPath* cp = nullptr,
                         const std::function<void(JsonWriter&)>& extras = {}) {
  json.beginObject();
  json.key("schema_version").value(kBenchSchemaVersion);
  json.key("procs").value(procs);
  json.key("plan").value(plan);
  json.key("read_s").value(r.times.read);
  json.key("compute_s").value(r.times.compute);
  json.key("merge_prep_s").value(r.times.merge_prep);
  json.key("merge_s").value(r.times.mergeTotal());
  json.key("write_s").value(r.times.write);
  json.key("total_s").value(r.times.total());
  json.key("efficiency").value(efficiency);
  json.key("output_bytes").value(r.output_bytes);
  std::map<int, RoundPathBreakdown> path_rounds;
  if (cp) {
    json.key("critical_path_seconds").value(cp->path_seconds);
    json.key("critical_path_end_rank").value(cp->end_rank);
    path_rounds = roundPathBreakdown(*cp);
  }
  json.key("rounds").beginArray();
  const std::vector<RoundCommStats> stats = roundCommStats(r.inputs);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const RoundCommStats& s = stats[i];
    json.beginObject();
    json.key("round").value(static_cast<int>(i));
    json.key("seconds").value(i < r.times.merge_rounds.size() ? r.times.merge_rounds[i] : 0.0);
    json.key("groups").value(s.groups);
    json.key("messages").value(s.messages);
    json.key("total_bytes").value(s.total_bytes);
    json.key("max_root_bytes").value(s.max_root_bytes);
    json.key("max_root_rank").value(s.max_root_rank);
    json.key("imbalance").value(s.imbalance);
    if (cp) {
      const auto it = path_rounds.find(static_cast<int>(i));
      const RoundPathBreakdown b = it == path_rounds.end() ? RoundPathBreakdown{}
                                                           : it->second;
      json.key("critpath_compute_s").value(b.compute_s);
      json.key("critpath_comm_s").value(b.comm_s);
      json.key("critpath_wait_s").value(b.wait_s);
    }
    json.endObject();
  }
  json.endArray();
  if (extras) extras(json);
  json.endObject();
}

}  // namespace msc::bench
