/// \file bench_util.hpp
/// Shared helpers for the experiment executables: tiny flag parsing,
/// table formatting, and the default model calibration used across
/// all paper-figure reproductions (see EXPERIMENTS.md).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pipeline/sim_pipeline.hpp"

namespace msc::bench {

/// Minimal --key=value flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::int64_t getInt(const std::string& key, std::int64_t def) const {
    const std::string v = raw(key);
    return v.empty() ? def : std::atoll(v.c_str());
  }
  double getDouble(const std::string& key, double def) const {
    const std::string v = raw(key);
    return v.empty() ? def : std::atof(v.c_str());
  }
  bool getBool(const std::string& key, bool def = false) const {
    const std::string v = raw(key);
    return v.empty() ? def : v != "0" && v != "false";
  }
  std::vector<int> getIntList(const std::string& key, std::vector<int> def) const {
    const std::string v = raw(key);
    if (v.empty()) return def;
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      out.push_back(std::atoi(v.substr(pos, next - pos).c_str()));
      pos = next + 1;
    }
    return out;
  }

 private:
  std::string raw(const std::string& key) const {
    const std::string prefix = "--" + key + "=";
    for (const std::string& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return {};
  }
  std::vector<std::string> args_;
};

/// Default models: BG/P-flavoured constants (see EXPERIMENTS.md for
/// the calibration rationale).
inline pipeline::SimModels defaultModels(const Flags& flags) {
  pipeline::SimModels m;
  m.scale.cpu_scale = flags.getDouble("cpu_scale", 12.0);
  m.net.bandwidth_Bps = flags.getDouble("link_bw", 425e6);
  m.io.aggregate_bw_Bps = flags.getDouble("io_agg_bw", 4e9);
  m.io.per_proc_bw_Bps = flags.getDouble("io_proc_bw", 50e6);
  return m;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("# ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

}  // namespace msc::bench
