/// Micro benchmarks of the non-gradient pipeline stages: V-path
/// tracing, persistence simplification, pack/unpack serialization,
/// and complex gluing.
#include <benchmark/benchmark.h>

#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "io/pack.hpp"
#include "metrics/metrics.hpp"
#include "synth/fields.hpp"

namespace {

using namespace msc;

struct Fixture {
  Domain domain{{33, 33, 33}};
  BlockField field;
  GradientField grad;

  explicit Fixture(unsigned seed = 3) {
    Block whole;
    whole.domain = domain;
    whole.vdims = domain.vdims;
    whole.voffset = {0, 0, 0};
    field = synth::sample(whole, synth::noise(seed));
    grad = computeGradientLowerStar(field);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void BM_Trace(benchmark::State& state) {
  const Fixture& f = fixture();
  metrics::Registry reg(1);
  TraceOptions topts;
  topts.metrics = &reg;
  std::int64_t arcs = 0;
  for (auto _ : state) {
    const MsComplex c = traceComplex(f.grad, f.field, topts);
    arcs = c.liveArcCount();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["arcs"] = static_cast<double>(arcs);
  // Exact kernel-side work rates from the metrics registry.
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(reg.counterTotal(metrics::Counter::kTraceSteps)),
      benchmark::Counter::kIsRate);
  state.counters["arcs_per_s"] = benchmark::Counter(
      static_cast<double>(reg.counterTotal(metrics::Counter::kTraceArcs)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Trace)->Unit(benchmark::kMillisecond);

void BM_Simplify(benchmark::State& state) {
  const Fixture& f = fixture();
  const MsComplex base = traceComplex(f.grad, f.field);
  metrics::Registry reg(1);
  std::int64_t cancels = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MsComplex c = base;  // deep copy outside the timed region
    state.ResumeTiming();
    SimplifyOptions opts;
    opts.persistence_threshold = static_cast<float>(state.range(0)) / 100.0f;
    opts.metrics = &reg;
    cancels = simplify(c, opts);
    benchmark::DoNotOptimize(cancels);
  }
  state.counters["cancellations"] = static_cast<double>(cancels);
  state.counters["cancels_per_s"] = benchmark::Counter(
      static_cast<double>(reg.counterTotal(metrics::Counter::kSimplifyCancelled)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simplify)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Pack(benchmark::State& state) {
  const Fixture& f = fixture();
  MsComplex c = traceComplex(f.grad, f.field);
  c.compact();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const io::Bytes b = io::pack(c);
    bytes = b.size();
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_Pack)->Unit(benchmark::kMillisecond);

void BM_Unpack(benchmark::State& state) {
  const Fixture& f = fixture();
  MsComplex c = traceComplex(f.grad, f.field);
  c.compact();
  const io::Bytes b = io::pack(c);
  for (auto _ : state) {
    const MsComplex r = io::unpack(b);
    benchmark::DoNotOptimize(r.nodes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(b.size()) * state.iterations());
}
BENCHMARK(BM_Unpack)->Unit(benchmark::kMillisecond);

void BM_GlueTwoBlocks(benchmark::State& state) {
  const Domain d{{33, 33, 17}};
  const auto field = synth::noise(5);
  const auto blocks = decompose(d, 2);
  std::vector<MsComplex> parts;
  for (const Block& blk : blocks) {
    const BlockField bf = synth::sample(blk, field);
    MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
    c.compact();
    parts.push_back(std::move(c));
  }
  for (auto _ : state) {
    state.PauseTiming();
    MsComplex root = parts[0];
    state.ResumeTiming();
    glue(root, parts[1]);
    finishMerge(root, 0.1f);
    benchmark::DoNotOptimize(root.nodes().data());
  }
}
BENCHMARK(BM_GlueTwoBlocks)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
