/// Figure 5 reproduction: the sinusoidal synthetic dataset at varying
/// feature counts, and the corresponding complex. The paper shows
/// volume renderings plus the complex for low/medium/high complexity;
/// the measurable content is the census: the number of critical
/// points and arcs grows ~cubically with the per-side feature count,
/// while the *data* size stays fixed.
#include "analysis/census.hpp"
#include "bench_util.hpp"
#include "io/pack.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.getInt("side", 65));
  const auto complexities = flags.getIntList("complexities", {2, 4, 8, 16});

  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf)
    std::fprintf(stderr, "warning: cannot open %s; json output disabled\n",
                 json_path.c_str());
  bench::JsonWriter json(jf);
  if (jf) json.beginArray();

  bench::header("Figure 5: complex census vs feature count (fixed data size)");
  bench::note("sinusoid %d^3; serial computation, 0.05 persistence", side);
  std::printf("%12s %8s %8s %8s %8s %10s %12s %14s\n", "complexity", "minima", "1sad",
              "2sad", "maxima", "arcs", "geomCells", "packed_bytes");

  for (const int complexity : complexities) {
    pipeline::PipelineConfig cfg;
    cfg.domain = Domain{{side, side, side}};
    cfg.source.field = synth::sinusoid(cfg.domain, complexity);
    cfg.nblocks = 1;
    cfg.nranks = 1;
    cfg.persistence_threshold = 0.05f;
    const pipeline::SimResult r = runSimPipeline(cfg);
    const MsComplex c = io::unpack(r.outputs.at(0));
    const analysis::Census cs = analysis::census(c);
    std::printf("%12d %8lld %8lld %8lld %8lld %10lld %12lld %14lld\n", complexity,
                static_cast<long long>(cs.nodes[0]), static_cast<long long>(cs.nodes[1]),
                static_cast<long long>(cs.nodes[2]), static_cast<long long>(cs.nodes[3]),
                static_cast<long long>(cs.arcs),
                static_cast<long long>(cs.geometry_cells),
                static_cast<long long>(r.output_bytes));
    if (jf) {
      json.beginObject();
      json.key("schema_version").value(bench::kBenchSchemaVersion);
      json.key("side").value(side);
      json.key("complexity").value(complexity);
      json.key("minima").value(cs.nodes[0]);
      json.key("saddles1").value(cs.nodes[1]);
      json.key("saddles2").value(cs.nodes[2]);
      json.key("maxima").value(cs.nodes[3]);
      json.key("arcs").value(cs.arcs);
      json.key("geometry_cells").value(cs.geometry_cells);
      json.key("output_bytes").value(r.output_bytes);
      json.endObject();
    }
  }
  if (jf) {
    json.endArray();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }
  bench::note("expected: counts scale ~(complexity)^3; geometry per arc shrinks as");
  bench::note("features pack closer (shorter V-paths)");
  return 0;
}
