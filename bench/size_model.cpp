/// Section V-B ablation: the MS complex storage model
///     bytes ~ k*c + k*n^(1/3)
/// where k is the feature count, c a per-node/arc constant, and the
/// n^(1/3) term is the geometric embedding of arcs (1D objects in a
/// 3D volume). Two sweeps: fixed complexity with growing n (the
/// per-arc geometry must grow like the side length), and fixed n
/// with growing complexity (bytes linear in k).
#include "analysis/census.hpp"
#include "bench_util.hpp"
#include "io/pack.hpp"

using namespace msc;

namespace {

struct Sample {
  int side;
  int complexity;
  analysis::Census census;
  std::int64_t bytes;
};

Sample run(int side, int complexity) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{side, side, side}};
  cfg.source.field = synth::sinusoid(cfg.domain, complexity);
  cfg.nblocks = 1;
  cfg.nranks = 1;
  cfg.persistence_threshold = 0.05f;
  const pipeline::SimResult r = runSimPipeline(cfg);
  const MsComplex c = io::unpack(r.outputs.at(0));
  return {side, complexity, analysis::census(c), r.output_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto sides = flags.getIntList("sides", {33, 49, 65, 81});
  const auto complexities = flags.getIntList("complexities", {2, 4, 8});

  bench::header("Section V-B: storage cost model k*c + k*n^(1/3)");

  bench::note("sweep 1: fixed complexity 4, growing n; geometry cells per arc");
  bench::note("should scale with the side length (n^(1/3))");
  std::printf("%6s %10s %8s %14s %16s %14s\n", "side", "nodes", "arcs", "geomCells",
              "geom_per_arc", "bytes");
  for (const int side : sides) {
    const Sample s = run(side, 4);
    std::printf("%6d %10lld %8lld %14lld %16.1f %14lld\n", s.side,
                static_cast<long long>(s.census.totalNodes()),
                static_cast<long long>(s.census.arcs),
                static_cast<long long>(s.census.geometry_cells),
                s.census.arcs ? static_cast<double>(s.census.geometry_cells) /
                                    static_cast<double>(s.census.arcs)
                              : 0.0,
                static_cast<long long>(s.bytes));
  }

  bench::note("sweep 2: fixed side %d, growing complexity; bytes linear in the", sides[1]);
  bench::note("feature count k (nodes+arcs dominate once features are dense)");
  std::printf("%12s %10s %8s %14s %14s %18s\n", "complexity", "nodes", "arcs",
              "geomCells", "bytes", "bytes_per_node");
  for (const int complexity : complexities) {
    const Sample s = run(sides[1], complexity);
    std::printf("%12d %10lld %8lld %14lld %14lld %18.1f\n", s.complexity,
                static_cast<long long>(s.census.totalNodes()),
                static_cast<long long>(s.census.arcs),
                static_cast<long long>(s.census.geometry_cells),
                static_cast<long long>(s.bytes),
                s.census.totalNodes()
                    ? static_cast<double>(s.bytes) /
                          static_cast<double>(s.census.totalNodes())
                    : 0.0);
  }
  return 0;
}
