/// Figure 10 reproduction: strong scaling on the Rayleigh-Taylor-like
/// density field with a *partial* merge (two rounds of radix-8), the
/// realistic large-data scenario. Paper: 1152^3 floats, P up to
/// 32768; 66% strong scaling efficiency for compute+merge, 35% for
/// the overall end-to-end time (I/O limits the total).
#include <memory>

#include "bench_util.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.getInt("side", 129));
  const auto procs = flags.getIntList("procs", {64, 128, 256, 512, 1024, 2048, 4096});
  const Domain domain{{side, side, side}};
  const pipeline::SimModels models = bench::defaultModels(flags);
  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf)
    std::fprintf(stderr, "warning: cannot open %s; json output disabled\n", json_path.c_str());
  bench::JsonWriter json(jf);
  if (jf) json.beginArray();

  bench::header("Figure 10: Rayleigh-Taylor-like strong scaling, partial merge [8,8]");
  bench::note("grid %d^3, 1 block/process, two rounds of radix-8", side);
  std::printf("%7s %10s %12s %12s %10s %10s %14s %14s\n", "procs", "read_s", "compute_s",
              "merge_s", "write_s", "total_s", "eff_total", "eff_comp+merge");

  double base_total = 0, base_cm = 0;
  int base_procs = 0;
  for (const int p : procs) {
    pipeline::PipelineConfig cfg;
    cfg.domain = domain;
    cfg.source.field = synth::rtLike(domain);
    cfg.nblocks = p;
    cfg.nranks = p;
    cfg.persistence_threshold = 0.02f;
    cfg.plan = MergePlan::partial({8, 8});
    // In --json mode the run also records a synthesized causal
    // journal so each datapoint carries its critical-path breakdown.
    std::unique_ptr<causal::Recorder> rec;
    if (jf) {
      causal::Recorder::Options ropts;
      ropts.journal_clocks = false;  // wide simulated runs: skip per-event copies
      rec = std::make_unique<causal::Recorder>(p, ropts);
      cfg.causal = rec.get();
    }
    const pipeline::SimResult r = runSimPipeline(cfg, models);
    causal::CriticalPath cp;
    if (rec) cp = causal::analyzeCriticalPath(rec->journal());

    const double total = r.times.total();
    const double cm = r.times.compute + r.times.mergeTotal();
    if (base_procs == 0) {
      base_procs = p;
      base_total = total;
      base_cm = cm;
    }
    const double ratio = static_cast<double>(p) / base_procs;
    std::printf("%7d %10.3f %12.3f %12.3f %10.3f %10.3f %13.1f%% %13.1f%%\n", p,
                r.times.read, r.times.compute, r.times.mergeTotal(), r.times.write,
                total, 100 * (base_total / total) / ratio, 100 * (base_cm / cm) / ratio);
    if (jf)
      bench::writeRunJson(json, p, cfg.plan.toString().c_str(), r,
                          (base_total / total) / ratio, rec ? &cp : nullptr);
  }
  if (jf) {
    json.endArray();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }
  bench::note("paper shape: compute+merge scales markedly better (66%%) than the");
  bench::note("end-to-end time (35%%), whose scaling is capped by I/O saturation");
  return 0;
}
