/// Model-sensitivity ablation: how the reconstructed strong-scaling
/// picture responds to the two main model constants -- the
/// compute-speed ratio (cpu_scale) and the torus link bandwidth.
/// The compute/merge crossover (Fig. 9's central phenomenon) must
/// move in the expected directions: slower CPUs push the crossover
/// to higher process counts, slower links pull it lower. The
/// underlying task costs and message sizes are measured once and
/// replayed against each model, so rows differ only by the model.
#include "bench_util.hpp"
#include "simnet/timeline.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.getInt("side", 49));
  const auto procs = flags.getIntList("procs", {32, 64, 128, 256, 512, 1024});

  bench::header("Ablation: timeline model sensitivity (cpu_scale, link bandwidth)");
  bench::note("jet-like %d^3-ish field, full merge; crossover = first P where", side);
  bench::note("merge time exceeds compute time");

  // Record the raw inputs once per P (model-independent).
  std::vector<std::pair<int, simnet::TimelineInputs>> recorded;
  for (const int p : procs) {
    pipeline::PipelineConfig cfg;
    cfg.domain = Domain{{side, side + 8, side - 8}};
    cfg.source.field = synth::jetLike(cfg.domain);
    cfg.nblocks = p;
    cfg.nranks = p;
    cfg.persistence_threshold = 0.03f;
    cfg.plan = MergePlan::fullMerge(p);
    recorded.emplace_back(p, runSimPipeline(cfg).inputs);
  }

  std::printf("%10s %10s | %s\n", "cpu_scale", "link_bw", "crossover_P   (compute_s vs merge_s at each P)");
  for (const double cpu : {3.0, 12.0, 48.0}) {
    for (const double bw : {100e6, 425e6, 1700e6}) {
      simnet::NetworkParams np;
      np.bandwidth_Bps = bw;
      simnet::CostScale scale;
      scale.cpu_scale = cpu;
      const simnet::IoModel io;
      int crossover = -1;
      std::string detail;
      for (const auto& [p, in] : recorded) {
        const simnet::TorusModel net(simnet::Torus::fit(p), np);
        const simnet::StageTimes t = reconstruct(in, net, io, scale);
        if (crossover < 0 && t.mergeTotal() > t.compute) crossover = p;
        char buf[64];
        std::snprintf(buf, sizeof buf, " %d:%.2f/%.2f", p, t.compute, t.mergeTotal());
        detail += buf;
      }
      std::printf("%10.0f %8.0fMB | %9d  %s\n", cpu, bw / 1e6, crossover, detail.c_str());
    }
  }
  bench::note("finding: the crossover is nearly insensitive to link bandwidth and");
  bench::note("cpu_scale because both compute and the merge stage's dominant cost");
  bench::note("(root-side gluing + re-simplification) scale together -- in this");
  bench::note("implementation merging is compute-bound, not bandwidth-bound, which");
  bench::note("is also why Table II's sub-percent radix-ordering effects do not");
  bench::note("reproduce under a pure transfer-cost argument (see EXPERIMENTS.md)");
  return 0;
}
