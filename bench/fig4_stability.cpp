/// Figure 4 reproduction: stability of the MS complex under varying
/// block counts, on the hydrogen-atom-like byte dataset.
///
/// Three stages per block count (the figure's three rows):
///   1. the full MS complex -- block-boundary artifacts inflate the
///      census as the block count grows;
///   2. after 1% persistence simplification -- boundary artifacts are
///      removed and the censuses converge;
///   3. feature selection (2-saddle--maximum arcs with node values
///      above threshold) -- the three stable lobes in a line and the
///      toroidal loop are recovered for *every* block count, while
///      unstable plateau criticals may shift (section V-A).
#include <cmath>
#include <map>

#include "analysis/census.hpp"
#include "analysis/graph.hpp"
#include "bench_util.hpp"
#include "io/pack.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.getInt("side", 49));
  const float feature_threshold = static_cast<float>(flags.getDouble("feature", 14.5));
  const Domain domain{{side, side, side}};
  const auto field = synth::hydrogenLike(domain);

  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf)
    std::fprintf(stderr, "warning: cannot open %s; json output disabled\n",
                 json_path.c_str());
  bench::JsonWriter json(jf);
  if (jf) json.beginArray();

  bench::header("Figure 4: stability of the parallel MS complex under blocking");
  bench::note("hydrogen-like byte field, %d^3; 1%% persistence = 2.55 levels", side);

  struct Row {
    int blocks;
    analysis::Census full, simplified;
    std::int64_t feature_arcs;
    std::int64_t components, cycles;
    std::vector<Vec3i> maxima;
  };
  std::vector<Row> rows;

  for (const int nblocks : {1, 8, 64}) {
    pipeline::PipelineConfig cfg;
    cfg.domain = domain;
    cfg.source.field = field;
    cfg.nblocks = nblocks;
    cfg.nranks = nblocks;
    cfg.plan = MergePlan::fullMerge(nblocks);

    // Stage 1: no simplification at all (threshold below zero keeps
    // even the zero-persistence boundary artifacts alive).
    cfg.persistence_threshold = -1.0f;
    const pipeline::SimResult full = runSimPipeline(cfg);

    // Stage 2: 1% persistence.
    cfg.persistence_threshold = 2.55f;
    const pipeline::SimResult simp = runSimPipeline(cfg);

    Row row;
    row.blocks = nblocks;
    const MsComplex cf = io::unpack(full.outputs.at(0));
    const MsComplex cs = io::unpack(simp.outputs.at(0));
    row.full = analysis::census(cf);
    row.simplified = analysis::census(cs);

    // Stage 3: the figure's feature query.
    analysis::FeatureFilter filter;
    filter.type = analysis::ArcType::kSaddleMax;
    filter.value_min = feature_threshold;
    const auto arcs = analysis::extractArcs(cs, filter);
    const auto stats = analysis::networkStats(cs, arcs);
    row.feature_arcs = stats.edges;
    row.components = stats.components;
    row.cycles = stats.cycles();
    for (const Node& nd : cs.nodes())
      if (nd.alive && nd.index == 3 && nd.value > feature_threshold)
        row.maxima.push_back(domain.coordOf(nd.addr));
    rows.push_back(std::move(row));
  }

  if (jf) {
    const auto census = [&](const char* key, const analysis::Census& c) {
      json.key(key).beginObject();
      for (int d = 0; d < 4; ++d) {
        char k[4] = {'n', static_cast<char>('0' + d), '\0'};
        json.key(k).value(c.nodes[static_cast<std::size_t>(d)]);
      }
      json.key("arcs").value(c.arcs);
      json.endObject();
    };
    for (const Row& r : rows) {
      json.beginObject();
      json.key("schema_version").value(bench::kBenchSchemaVersion);
      json.key("side").value(side);
      json.key("blocks").value(r.blocks);
      census("full", r.full);
      census("simplified", r.simplified);
      json.key("feature_arcs").value(r.feature_arcs);
      json.key("components").value(r.components);
      json.key("cycles").value(r.cycles);
      json.endObject();
    }
    json.endArray();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }

  std::printf("%8s | %28s | %28s | %8s %6s %7s\n", "blocks", "full complex (n0/n1/n2/n3/arcs)",
              "1%-simplified (n0/n1/n2/n3/arcs)", "featArcs", "comps", "cycles");
  for (const Row& r : rows) {
    std::printf("%8d | %5lld %5lld %5lld %4lld %6lld | %5lld %5lld %5lld %4lld %6lld | %8lld %6lld %7lld\n",
                r.blocks, static_cast<long long>(r.full.nodes[0]),
                static_cast<long long>(r.full.nodes[1]),
                static_cast<long long>(r.full.nodes[2]),
                static_cast<long long>(r.full.nodes[3]),
                static_cast<long long>(r.full.arcs),
                static_cast<long long>(r.simplified.nodes[0]),
                static_cast<long long>(r.simplified.nodes[1]),
                static_cast<long long>(r.simplified.nodes[2]),
                static_cast<long long>(r.simplified.nodes[3]),
                static_cast<long long>(r.simplified.arcs),
                static_cast<long long>(r.feature_arcs),
                static_cast<long long>(r.components), static_cast<long long>(r.cycles));
  }

  // Stability check: every selected maximum of the serial run has a
  // counterpart within one grid cell in every blocked run.
  bench::note("selected maxima (refined coords), serial vs blocked:");
  for (const Row& r : rows) {
    std::printf("#   %2d blocks:", r.blocks);
    for (const Vec3i& m : r.maxima) std::printf(" (%lld,%lld,%lld)", (long long)m.x,
                                                (long long)m.y, (long long)m.z);
    std::printf("\n");
  }
  int unstable = 0;
  for (const Vec3i& m : rows[0].maxima) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      bool found = false;
      for (const Vec3i& p : rows[i].maxima) {
        const Vec3i d = p - m;
        found |= std::abs(d.x) <= 2 && std::abs(d.y) <= 2 && std::abs(d.z) <= 2;
      }
      if (!found) ++unstable;
    }
  }
  bench::note("stable-maximum mismatches across blockings: %d (expect 0 for the", unstable);
  bench::note("lobe maxima; the torus ridge maximum may drift along its plateau)");
  return 0;
}
