/// Figure 9 reproduction: strong scaling of the full pipeline on the
/// jet-mixture-fraction-like dataset with a full merge (worst case).
/// Paper: 768x896x512 floats, P = 32..8192, full merge with radix-8
/// wherever possible; compute dominates at low P, merging at high P;
/// ~35% end-to-end efficiency at 2048 processes, 13% at 8192, with
/// scaling flattening beyond 2048.
///
/// The default grid is a scaled-down 6:7:4 jet; --scale= multiplies
/// it back up toward paper size.
#include <memory>

#include "bench_util.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int scale = static_cast<int>(flags.getInt("scale", 1));
  const auto procs = flags.getIntList("procs", {32, 64, 128, 256, 512, 1024, 2048, 4096, 8192});
  // Distributed merge strategy (merge/): reduce survivors before they
  // ship, and shard the final round instead of gathering the whole
  // complex onto one root. Both default on -- the gated baseline
  // (BENCH_critpath.json) records this configuration, so the final
  // round shows groups > 1 and boundary-bounded max_root_bytes.
  const bool premerge = flags.getBool("premerge", true);
  const bool sharded = flags.getBool("sharded", true);
  // Integrity gates (msc::integrity) default ON here: the gated
  // baseline proves the Euler/compute-identity commit gates hold on
  // every round of the paper-shaped run and cost nothing the
  // byte-exact perfgate comparison can see.
  const bool integrity = flags.getBool("integrity", true);
  const Domain domain{{96 * scale + 1, 112 * scale + 1, 64 * scale + 1}};
  const pipeline::SimModels models = bench::defaultModels(flags);
  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf)
    std::fprintf(stderr, "warning: cannot open %s; json output disabled\n", json_path.c_str());
  bench::JsonWriter json(jf);
  if (jf) json.beginArray();

  bench::header("Figure 9: JET-like strong scaling, full merge");
  bench::note("grid %lld x %lld x %lld, 1 block/process, full radix-8-preferring merge",
              static_cast<long long>(domain.vdims.x), static_cast<long long>(domain.vdims.y),
              static_cast<long long>(domain.vdims.z));
  std::printf("%7s %14s %10s %10s %10s %10s %10s %11s %12s\n", "procs", "plan", "read_s",
              "compute_s", "merge_s", "write_s", "total_s", "efficiency", "output_B");

  double base_total = 0;
  int base_procs = 0;
  for (const int p : procs) {
    pipeline::PipelineConfig cfg;
    cfg.domain = domain;
    cfg.source.field = synth::jetLike(domain);
    cfg.nblocks = p;
    cfg.nranks = p;
    cfg.persistence_threshold = 0.03f;
    cfg.plan = MergePlan::fullMerge(p);
    cfg.premerge = premerge;
    cfg.sharded_final = sharded;
    cfg.integrity = integrity;
    // In --json mode the run also records a synthesized causal
    // journal so each datapoint carries its critical-path breakdown.
    std::unique_ptr<causal::Recorder> rec;
    if (jf) {
      causal::Recorder::Options ropts;
      ropts.journal_clocks = false;  // wide simulated runs: skip per-event copies
      rec = std::make_unique<causal::Recorder>(p, ropts);
      cfg.causal = rec.get();
    }
    const pipeline::SimResult r = runSimPipeline(cfg, models);
    causal::CriticalPath cp;
    if (rec) cp = causal::analyzeCriticalPath(rec->journal());

    const double total = r.times.total();
    if (base_procs == 0) {
      base_procs = p;
      base_total = total;
    }
    const double efficiency =
        (base_total / total) / (static_cast<double>(p) / base_procs);
    std::printf("%7d %14s %10.3f %10.3f %10.3f %10.3f %10.3f %10.1f%% %12lld\n", p,
                cfg.plan.toString().c_str(), r.times.read, r.times.compute,
                r.times.mergeTotal(), r.times.write, total, 100 * efficiency,
                static_cast<long long>(r.output_bytes));
    if (jf)
      bench::writeRunJson(json, p, cfg.plan.toString().c_str(), r, efficiency,
                          rec ? &cp : nullptr);
  }
  if (jf) {
    json.endArray();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }
  bench::note("paper shape: compute dominates at low P; merge time grows and");
  bench::note("dominates beyond ~2048; efficiency ~35%% @2048, ~13%% @8192");
  return 0;
}
