/// Table I reproduction: cost of merging 2048 blocks, one round at a
/// time. The paper's full merge of 2048 blocks uses radices
/// [4,8,8,8]; rows truncate the plan after 1..4 rounds and report the
/// cumulative merge time and the last round's time. Expected shape:
/// each successive round is more expensive than the previous one
/// (complexes grow, gravitate to fewer processes, and travel
/// farther).
#include "bench_util.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int nblocks = static_cast<int>(flags.getInt("blocks", 2048));
  const int size = static_cast<int>(flags.getInt("size", 65));
  const int complexity = static_cast<int>(flags.getInt("complexity", 8));
  const pipeline::SimModels models = bench::defaultModels(flags);

  bench::header("Table I: cost of merging 2048 blocks (radices 4,8,8,8)");
  bench::note("sinusoid %d^3, complexity %d, %d blocks = %d processes", size,
              complexity, nblocks, nblocks);
  std::printf("%8s %14s %18s %22s\n", "rounds", "radices", "total_merge_s",
              "final_round_merge_s");

  const std::vector<std::vector<int>> plans = {{4}, {4, 8}, {4, 8, 8}, {4, 8, 8, 8}};
  for (const auto& radices : plans) {
    pipeline::PipelineConfig cfg;
    cfg.domain = Domain{{size, size, size}};
    cfg.source.field = synth::sinusoid(cfg.domain, complexity);
    cfg.nblocks = nblocks;
    cfg.nranks = nblocks;
    cfg.persistence_threshold = 0.05f;
    cfg.plan = MergePlan::partial(radices);
    const pipeline::SimResult r = runSimPipeline(cfg, models);

    double total = 0;
    for (const double t : r.times.merge_rounds) total += t;
    const double last = r.times.merge_rounds.empty() ? 0 : r.times.merge_rounds.back();
    std::printf("%8zu %14s %18.4f %22.4f\n", radices.size(),
                MergePlan::partial(radices).toString().c_str(), total, last);
  }
  bench::note("paper: 0.598 / 1.310 / 2.635 / 9.843 total; rounds get costlier");
  return 0;
}
