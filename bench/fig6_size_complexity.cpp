/// Figure 6 reproduction: compute time, merge time, and output size
/// as a function of process count, data size, and data complexity
/// (sinusoidal synthetic family, two rounds of radix-8 merging).
///
/// Paper's observations to reproduce:
///   - compute time scales ~linearly with process count and depends
///     on data size, NOT on complexity (weak scaling efficiency 1);
///   - merge time is independent of data size but linear in
///     complexity;
///   - output size grows slowly with process count (unresolved
///     boundary artifacts), is dominated by arc geometry at low
///     complexity and by nodes/arcs at high complexity.
///
/// Defaults are container-sized; use --sizes=, --complexities=,
/// --procs= to enlarge (paper: sizes 128..512, procs to 16k).
#include "bench_util.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto sizes = flags.getIntList("sizes", {49, 65, 81});
  const auto complexities = flags.getIntList("complexities", {2, 8, 16});
  const auto procs = flags.getIntList("procs", {8, 16, 32, 64});
  const float threshold = static_cast<float>(flags.getDouble("threshold", 0.05));
  const pipeline::SimModels models = bench::defaultModels(flags);

  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf)
    std::fprintf(stderr, "warning: cannot open %s; json output disabled\n",
                 json_path.c_str());
  bench::JsonWriter json(jf);
  if (jf) json.beginArray();

  bench::header("Figure 6: compute/merge time and output size vs P, size, complexity");
  bench::note("sinusoid family; merge plan [8,8]; times are reconstructed");
  bench::note("BG/P-model seconds (cpu_scale=%.1f); log-log slopes are the result",
              models.scale.cpu_scale);
  std::printf("%12s %6s %6s %12s %12s %12s %10s %8s\n", "complexity", "size", "procs",
              "compute_s", "merge_s", "output_B", "nodes", "arcs");

  for (const int complexity : complexities) {
    for (const int size : sizes) {
      for (const int p : procs) {
        pipeline::PipelineConfig cfg;
        cfg.domain = Domain{{size, size, size}};
        cfg.source.field = synth::sinusoid(cfg.domain, complexity);
        cfg.nblocks = p;
        cfg.nranks = p;
        cfg.persistence_threshold = threshold;
        cfg.plan = MergePlan::partial({8, 8});
        const pipeline::SimResult r = runSimPipeline(cfg, models);
        const std::int64_t nodes = r.node_counts[0] + r.node_counts[1] +
                                   r.node_counts[2] + r.node_counts[3];
        std::printf("%12d %6d %6d %12.4f %12.4f %12lld %10lld %8lld\n", complexity,
                    size, p, r.times.compute, r.times.mergeTotal(),
                    static_cast<long long>(r.output_bytes),
                    static_cast<long long>(nodes),
                    static_cast<long long>(r.arc_count));
        if (jf) {
          json.beginObject();
          json.key("schema_version").value(bench::kBenchSchemaVersion);
          json.key("complexity").value(complexity);
          json.key("size").value(size);
          json.key("procs").value(p);
          json.key("compute_s").value(r.times.compute);
          json.key("merge_s").value(r.times.mergeTotal());
          json.key("output_bytes").value(r.output_bytes);
          json.key("nodes").value(nodes);
          json.key("arcs").value(r.arc_count);
          json.endObject();
        }
      }
    }
    std::printf("\n");
  }
  if (jf) {
    json.endArray();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }
  return 0;
}
