/// msc_kernel_bench: per-kernel medians plus exact work counters, the
/// measurement half of the perf regression gate (tools/msc_perfgate.py).
///
/// Runs each core kernel -- gradient sweep and lower-star matching,
/// V-path tracing, persistence simplification, pack/unpack
/// serialization, and a two-block glue+finish -- `reps` times on a
/// fixed synthetic fixture. For each kernel it reports the median and
/// MAD of the timed region, the exact work counters the kernel flushed
/// into a metrics::Registry (deterministic: the gate requires a zero
/// delta against the committed baseline), and derived rates
/// work/median (cells/s, arcs/s, bytes/s).
///
/// Usage:
///   msc_kernel_bench [--reps=9] [--side=25] [--json=FILE] [--profile=1]
///
/// --profile=1 binds a live msc::prof sampler (997 Hz) to the bench
/// thread so the kernels' MSC_PROF_POINT markers record while the hot
/// regions are timed: comparing medians against an unprofiled run is
/// the sampler-overhead measurement on the exact perf-gate fixture.
#include <cstdio>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "io/pack.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"
#include "prof/prof.hpp"
#include "synth/fields.hpp"

namespace {

using namespace msc;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0 : n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double medianAbsDeviation(const std::vector<double>& v, double med) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::fabs(x - med));
  return median(std::move(dev));
}

struct KernelResult {
  std::string name;
  int reps{0};
  double median_s{0};
  double mad_s{0};
  /// Exact per-run work by stable counter name, from one instrumented
  /// repetition (every repetition flushes the same values).
  std::map<std::string, std::int64_t> work;
};

/// A kernel does its own per-rep setup, times only the hot region with
/// steady_clock, flushes work into the registry, and returns seconds.
using Kernel = std::function<double(metrics::Registry&)>;

KernelResult runKernel(const std::string& name, int reps, const Kernel& k) {
  KernelResult out;
  out.name = name;
  out.reps = reps;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  metrics::Registry reg(1);
  for (int i = 0; i < reps; ++i) {
    reg.reset();
    times.push_back(k(reg));
  }
  out.median_s = median(times);
  out.mad_s = medianAbsDeviation(times, out.median_s);
  const metrics::Snapshot snap = metrics::takeSnapshot(reg);
  for (const auto& [cname, per_rank] : snap.counters) {
    std::int64_t total = 0;
    for (const std::int64_t v : per_rank) total += v;
    if (total != 0) out.work[cname] = total;
  }
  return out;
}

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int reps = static_cast<int>(flags.getInt("reps", 9));
  const std::int64_t side = flags.getInt("side", 25);
  const std::string json_path = flags.getString("json");
  const bool profile = flags.getBool("profile", false);
  const double prof_hz = flags.getDouble("hz", 997.0);

  std::unique_ptr<prof::Profiler> profiler;
  std::unique_ptr<prof::ThreadBind> prof_bind;
  if (profile) {
    prof::ProfilerOptions popts;
    popts.hz = prof_hz;
    profiler = std::make_unique<prof::Profiler>(1, popts);
    prof_bind = std::make_unique<prof::ThreadBind>(profiler.get(), 0);
    profiler->startSampler();
  }

  // Fixed fixture: a noise field stresses every kernel (dense critical
  // cells, long V-paths, many cancellations).
  const Domain domain{{side, side, side}};
  Block whole;
  whole.domain = domain;
  whole.vdims = domain.vdims;
  whole.voffset = {0, 0, 0};
  const BlockField field = synth::sample(whole, synth::noise(3));
  const GradientField grad = computeGradientLowerStar(field);
  MsComplex traced = traceComplex(grad, field);
  traced.compact();
  const io::Bytes packed = io::pack(traced);

  // Two half-domain blocks for the glue kernel.
  const Domain glue_domain{{side, side, (side - 1) / 2 + 1}};
  std::vector<MsComplex> parts;
  for (const Block& blk : decompose(glue_domain, 2)) {
    const BlockField bf = synth::sample(blk, synth::noise(5));
    MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
    c.compact();
    parts.push_back(std::move(c));
  }

  std::vector<KernelResult> results;
  const auto run = [&](const std::string& name, const Kernel& k) {
    results.push_back(runKernel(name, reps, k));
    const KernelResult& r = results.back();
    std::printf("%-20s median %9.3f ms  mad %8.3f ms  (%d reps)\n", r.name.c_str(),
                r.median_s * 1e3, r.mad_s * 1e3, r.reps);
  };

  run("gradient_sweep", [&](metrics::Registry& reg) {
    GradientOptions opts;
    opts.metrics = &reg;
    const Timer t;
    const GradientField g = computeGradientSweep(field, opts);
    const double s = t.seconds();
    (void)g;
    return s;
  });
  run("gradient_lowerstar", [&](metrics::Registry& reg) {
    GradientOptions opts;
    opts.metrics = &reg;
    const Timer t;
    const GradientField g = computeGradientLowerStar(field, opts);
    const double s = t.seconds();
    (void)g;
    return s;
  });
  run("trace", [&](metrics::Registry& reg) {
    TraceOptions opts;
    opts.metrics = &reg;
    const Timer t;
    const MsComplex c = traceComplex(grad, field, opts);
    const double s = t.seconds();
    (void)c;
    return s;
  });
  run("simplify", [&](metrics::Registry& reg) {
    MsComplex c = traced;  // deep copy outside the timed region
    SimplifyOptions opts;
    opts.persistence_threshold = 0.5f;
    opts.metrics = &reg;
    const Timer t;
    simplify(c, opts);
    return t.seconds();
  });
  run("pack", [&](metrics::Registry& reg) {
    const Timer t;
    const io::Bytes b = io::pack(traced);
    const double s = t.seconds();
    metrics::add(&reg, 0, metrics::Counter::kPackBytes,
                 static_cast<std::int64_t>(b.size()));
    return s;
  });
  run("unpack", [&](metrics::Registry& reg) {
    const Timer t;
    const MsComplex c = io::unpack(packed);
    const double s = t.seconds();
    (void)c;
    metrics::add(&reg, 0, metrics::Counter::kPackBytes,
                 static_cast<std::int64_t>(packed.size()));
    return s;
  });
  run("glue", [&](metrics::Registry& reg) {
    MsComplex root = parts[0];  // deep copy outside the timed region
    const Timer t;
    glue(root, parts[1], nullptr, &reg, 0);
    finishMerge(root, 0.1f, nullptr, &reg, 0);
    return t.seconds();
  });

  if (profiler) {
    profiler->stopSampler();
    std::printf("profiled: %lld samples @ %.0f Hz, live markers on\n",
                static_cast<long long>(profiler->sampleCount()), prof_hz);
  }

  if (!json_path.empty()) {
    std::FILE* jf = std::fopen(json_path.c_str(), "w");
    if (!jf) {
      std::fprintf(stderr, "msc_kernel_bench: cannot write %s\n", json_path.c_str());
      return 2;
    }
    bench::JsonWriter json(jf);
    json.beginObject();
    json.key("schema_version").value(bench::kBenchSchemaVersion);
    json.key("fixture").beginObject();
    json.key("side").value(side);
    json.key("noise_seed").value(3);
    json.key("reps").value(reps);
    json.endObject();
    json.key("kernels").beginArray();
    for (const KernelResult& r : results) {
      json.beginObject();
      json.key("name").value(r.name.c_str());
      json.key("reps").value(r.reps);
      json.key("median_s").value(r.median_s);
      json.key("mad_s").value(r.mad_s);
      json.key("work").beginObject();
      for (const auto& [cname, v] : r.work) json.key(cname.c_str()).value(v);
      json.endObject();
      json.key("rates").beginObject();
      for (const auto& [cname, v] : r.work) {
        if (r.median_s > 0)
          json.key((cname + "_per_s").c_str())
              .value(static_cast<double>(v) / r.median_s);
      }
      json.endObject();
      json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    std::fclose(jf);
    std::printf("json -> %s\n", json_path.c_str());
  }
  return 0;
}
