#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by msc::obs.

Checks that the file is valid JSON in the Trace Event "JSON Object
Format", that every event carries the fields Perfetto needs (ph, ts,
pid, tid; dur for complete events), that there is one thread track per
rank, that at least one counter track is present, and that flow
events ("s"/"f", the msc::causal cross-rank message arrows) pair up:
unique ids, exactly one finish per start, matching src/dst/tag/bytes
args, and "bp": "e" on the finish half.

Also validates the bench harness --json output: schema_version on
every run object, and -- for strong-scaling runs (fig9/fig10,
msc_scaling; recognized by their "rounds" array) -- required
stage-time/round-counter fields and internal consistency of the
per-round communication counters. Generic runs (fig4/fig5/fig6) just
need schema_version plus at least one numeric datapoint. The top
level may be a run array (the figure benches) or an object with a
"runs" array (tools/msc_scaling).

And validates msc_critpath --json output: schema_version, wall/path
seconds, the category map, and that path segments are contiguous,
forward in time, and sum to path_seconds.

Usage:
  check_trace.py TRACE.json [--ranks=N] [--require-flows]
  check_trace.py --run CLI_BINARY [ARGS...]       # run the CLI with
      --trace into a temp file, then validate it (used by ctest)
  check_trace.py --run-flows CLI_BINARY [ARGS...] # same, and require
      at least one validated flow pair
  check_trace.py --validate-bench BENCH.json      # validate a bench
      --json output file
  check_trace.py --run-bench BENCH_BINARY [ARGS...]  # run a bench
      binary with --json into a temp file, then validate it
  check_trace.py --validate-critpath CP.json      # validate a
      msc_critpath --json output file
  check_trace.py --run-critpath CRITPATH_BINARY [ARGS...]  # run
      msc_critpath --run --json into a temp file, then validate it
"""
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_flows(events):
    """Check flow-event pairing; returns the number of validated pairs."""
    starts = {}
    finishes = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("s", "f"):
            continue
        if "id" not in e:
            fail(f"flow event {i} missing 'id': {e}")
        if e.get("name") != "msg" or e.get("cat") != "flow":
            fail(f"flow event {i} must have name 'msg', cat 'flow': {e}")
        args = e.get("args", {})
        for k in ("src", "dst", "tag", "bytes"):
            if k not in args:
                fail(f"flow event {i} missing args.{k}: {e}")
        side = starts if ph == "s" else finishes
        if e["id"] in side:
            fail(f"duplicate flow {ph!r} event for id {e['id']}")
        if ph == "f" and e.get("bp") != "e":
            fail(f"flow finish {i} missing 'bp': 'e' (enclosing-slice binding): {e}")
        side[e["id"]] = e
    if set(starts) != set(finishes):
        unpaired = set(starts) ^ set(finishes)
        fail(f"{len(unpaired)} unpaired flow id(s), e.g. {sorted(unpaired)[:5]}")
    for fid, s in starts.items():
        f = finishes[fid]
        if s["args"] != f["args"]:
            fail(f"flow id {fid} start/finish args disagree: {s['args']} vs {f['args']}")
        if f["ts"] < s["ts"]:
            fail(f"flow id {fid} finishes before it starts")
        if s["tid"] != s["args"]["src"] or f["tid"] != f["args"]["dst"]:
            fail(f"flow id {fid} not anchored on src/dst tracks: {s} {f}")
    return len(starts)


def validate(path, expect_ranks=None, require_flows=False):
    try:
        with open(path, "rb") as f:
            data = json.load(f)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    if not isinstance(data, dict) or "traceEvents" not in data:
        fail("top level must be an object with a traceEvents array")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    tids = set()
    counter_tracks = set()
    span_names = set()
    for i, e in enumerate(events):
        for field in ("ph", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing required field '{field}': {e}")
        ph = e["ph"]
        if ph not in ("M", "X", "C", "i", "B", "E", "s", "f"):
            fail(f"event {i} has unknown phase {ph!r}")
        if ph != "M" and "ts" not in e:
            fail(f"event {i} ({ph}) missing 'ts': {e}")
        if ph == "X":
            if "dur" not in e:
                fail(f"complete event {i} missing 'dur': {e}")
            tids.add(e["tid"])
            span_names.add(e["name"])
        if ph == "C":
            counter_tracks.add(e["name"])

    if not tids:
        fail("no complete ('X') span events found")
    if expect_ranks is not None and tids != set(range(expect_ranks)):
        fail(f"expected tids 0..{expect_ranks - 1}, got {sorted(tids)}")
    if not counter_tracks:
        fail("no counter ('C') track found")
    flows = validate_flows(events)
    if require_flows and flows == 0:
        fail("no flow ('s'/'f') events found, but flows were required")

    print(f"check_trace: OK: {len(events)} events, {len(tids)} rank track(s), "
          f"{len(counter_tracks)} counter track(s), {flows} flow pair(s), "
          f"spans: {sorted(span_names)[:12]}")
    return 0


BENCH_SCHEMA_VERSION = 1

BENCH_RUN_NUMERIC = ("procs", "read_s", "compute_s", "merge_prep_s", "merge_s",
                     "write_s", "total_s", "efficiency", "output_bytes")
BENCH_ROUND_NUMERIC = ("round", "seconds", "groups", "messages", "total_bytes",
                       "max_root_bytes", "max_root_rank", "imbalance")


def validate_bench_json(path):
    """Validate a bench --json output file (see module docstring)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if isinstance(data, dict):
        # tools/msc_scaling form: a document object wrapping the runs.
        if data.get("schema_version") != BENCH_SCHEMA_VERSION:
            fail(f"document schema_version {data.get('schema_version')!r} "
                 f"(expected {BENCH_SCHEMA_VERSION})")
        data = data.get("runs")
    if not isinstance(data, list) or not data:
        fail("bench json top level must be a non-empty array of run objects "
             "(or an object with one under 'runs')")
    rounds_total = 0
    scaling_runs = 0
    for i, run in enumerate(data):
        if not isinstance(run, dict):
            fail(f"run {i} is not an object")
        if run.get("schema_version") != BENCH_SCHEMA_VERSION:
            fail(f"run {i} schema_version {run.get('schema_version')!r} "
                 f"(expected {BENCH_SCHEMA_VERSION})")
        if "rounds" not in run:
            # Generic datapoint run (fig4/fig5/fig6): any shape, but it
            # must carry at least one numeric datapoint of its own.
            if not any(isinstance(v, (int, float)) and k != "schema_version"
                       for k, v in run.items()):
                fail(f"run {i} has no numeric datapoint fields")
            continue
        scaling_runs += 1
        if not isinstance(run.get("plan"), str) or not run["plan"]:
            fail(f"run {i} missing plan string")
        for key in BENCH_RUN_NUMERIC:
            if not isinstance(run.get(key), (int, float)):
                fail(f"run {i} missing numeric field {key!r}")
        if not isinstance(run.get("rounds"), list):
            fail(f"run {i} rounds is not an array")
        for j, rnd in enumerate(run["rounds"]):
            for key in BENCH_ROUND_NUMERIC:
                if not isinstance(rnd.get(key), (int, float)):
                    fail(f"run {i} round {j} missing numeric field {key!r}")
            if rnd["round"] != j:
                fail(f"run {i} round {j} misnumbered as {rnd['round']}")
            for key in ("groups", "messages", "total_bytes", "max_root_bytes"):
                if rnd[key] < 0:
                    fail(f"run {i} round {j} negative {key}: {rnd[key]}")
            if rnd["max_root_bytes"] > rnd["total_bytes"]:
                fail(f"run {i} round {j}: max_root_bytes {rnd['max_root_bytes']} "
                     f"exceeds total_bytes {rnd['total_bytes']}")
            if rnd["imbalance"] < 1.0 and rnd["total_bytes"] > 0:
                fail(f"run {i} round {j}: imbalance {rnd['imbalance']} < 1")
            rounds_total += 1
    print(f"check_trace: OK: {len(data)} bench run(s) "
          f"({scaling_runs} strong-scaling, {rounds_total} round(s)), "
          f"schema_version {BENCH_SCHEMA_VERSION}")
    return 0


CRITPATH_SCHEMA_VERSION = 1

CRITPATH_CATEGORIES = ("read", "compute", "merge", "glue", "write", "idle",
                       "mailbox_wait", "transfer", "barrier_wait")


def validate_critpath_json(path):
    """Validate a msc_critpath --json analysis file."""
    try:
        with open(path) as f:
            data = json.load(f)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not isinstance(data, dict):
        fail("critpath json top level must be an object")
    if data.get("schema_version") != CRITPATH_SCHEMA_VERSION:
        fail(f"schema_version {data.get('schema_version')!r} "
             f"(expected {CRITPATH_SCHEMA_VERSION})")
    for key in ("wall_seconds", "path_seconds", "end_rank"):
        if not isinstance(data.get(key), (int, float)):
            fail(f"missing numeric field {key!r}")
    cats = data.get("by_category")
    if not isinstance(cats, dict):
        fail("missing by_category object")
    for name, v in cats.items():
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"by_category[{name!r}] is not a non-negative number: {v!r}")
    segments = data.get("segments")
    if not isinstance(segments, list) or not segments:
        fail("missing non-empty segments array")
    seg_sum = 0.0
    prev_t1 = None
    for i, s in enumerate(segments):
        for key in ("rank", "t0", "t1", "round"):
            if not isinstance(s.get(key), (int, float)):
                fail(f"segment {i} missing numeric field {key!r}")
        if s.get("category") not in CRITPATH_CATEGORIES:
            fail(f"segment {i} unknown category {s.get('category')!r}")
        if s["t1"] < s["t0"]:
            fail(f"segment {i} runs backwards: t0={s['t0']} t1={s['t1']}")
        if prev_t1 is not None and s["t0"] < prev_t1 - 1e-9:
            fail(f"segment {i} overlaps its predecessor "
                 f"(t0={s['t0']} < prev t1={prev_t1})")
        prev_t1 = s["t1"]
        seg_sum += s["t1"] - s["t0"]
    path_s = data["path_seconds"]
    if abs(seg_sum - path_s) > max(1e-6, 0.01 * path_s):
        fail(f"segments sum to {seg_sum:.6f}s but path_seconds is "
             f"{path_s:.6f}s")
    print(f"check_trace: OK: critpath json, {len(segments)} segment(s), "
          f"{len(cats)} categories, path {path_s:.6f}s "
          f"(wall {data['wall_seconds']:.6f}s), "
          f"schema_version {CRITPATH_SCHEMA_VERSION}")
    return 0


def run_critpath_and_validate(binary, extra):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "critpath.json")
        cmd = [binary, "--run", f"--json={out}"] + (extra or ["--ranks=4"])
        print("check_trace: running:", " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            fail(f"critpath binary exited with {proc.returncode}")
        return validate_critpath_json(out)


def run_bench_and_validate(binary, extra):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "bench.json")
        cmd = [binary, f"--json={out}"] + extra
        print("check_trace: running:", " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            fail(f"bench binary exited with {proc.returncode}")
        return validate_bench_json(out)


def run_and_validate(cli, extra, require_flows=False):
    ranks = 2
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.json")
        cmd = [cli, "--field=sinusoid", "--dims=17,17,17", "--complexity=2",
               "--blocks=4", f"--ranks={ranks}", "--persistence=0.05",
               f"--trace={trace}", "--stats"] + extra
        print("check_trace: running:", " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            fail(f"CLI exited with {proc.returncode}")
        # Every stage of Algorithm 1 must appear in the per-rank spans.
        with open(trace) as f:
            names = {e["name"] for e in json.load(f)["traceEvents"] if e["ph"] == "X"}
        for stage in ("read", "compute", "merge_round", "write"):
            if stage not in names:
                fail(f"stage span {stage!r} missing from trace (have {sorted(names)})")
        return validate(trace, expect_ranks=ranks, require_flows=require_flows)


def main(argv):
    if len(argv) >= 2 and argv[1] in ("--run", "--run-flows"):
        if len(argv) < 3:
            fail(f"{argv[1]} requires the CLI binary path")
        return run_and_validate(argv[2], argv[3:],
                                require_flows=argv[1] == "--run-flows")
    if len(argv) >= 2 and argv[1] == "--validate-bench":
        if len(argv) < 3:
            fail("--validate-bench requires the json file path")
        return validate_bench_json(argv[2])
    if len(argv) >= 2 and argv[1] == "--run-bench":
        if len(argv) < 3:
            fail("--run-bench requires the bench binary path")
        return run_bench_and_validate(argv[2], argv[3:])
    if len(argv) >= 2 and argv[1] == "--validate-critpath":
        if len(argv) < 3:
            fail("--validate-critpath requires the json file path")
        return validate_critpath_json(argv[2])
    if len(argv) >= 2 and argv[1] == "--run-critpath":
        if len(argv) < 3:
            fail("--run-critpath requires the msc_critpath binary path")
        return run_critpath_and_validate(argv[2], argv[3:])
    if len(argv) < 2:
        fail("usage: check_trace.py TRACE.json [--ranks=N] [--require-flows] | "
             "--run|--run-flows CLI [ARGS...] | --validate-bench F.json | "
             "--run-bench BENCH [ARGS...] | --validate-critpath F.json | "
             "--run-critpath BIN [ARGS...]")
    expect = None
    require_flows = False
    for a in argv[2:]:
        if a.startswith("--ranks="):
            expect = int(a.split("=", 1)[1])
        elif a == "--require-flows":
            require_flows = True
    return validate(argv[1], expect, require_flows)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
