#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by msc::obs.

Checks that the file is valid JSON in the Trace Event "JSON Object
Format", that every event carries the fields Perfetto needs (ph, ts,
pid, tid; dur for complete events), that there is one thread track per
rank, and that at least one counter track is present.

Usage:
  check_trace.py TRACE.json [--ranks=N]
  check_trace.py --run CLI_BINARY [ARGS...]   # run the CLI with
      --trace into a temp file, then validate it (used by ctest)
"""
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path, expect_ranks=None):
    try:
        with open(path, "rb") as f:
            data = json.load(f)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    if not isinstance(data, dict) or "traceEvents" not in data:
        fail("top level must be an object with a traceEvents array")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    tids = set()
    counter_tracks = set()
    span_names = set()
    for i, e in enumerate(events):
        for field in ("ph", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing required field '{field}': {e}")
        ph = e["ph"]
        if ph not in ("M", "X", "C", "i", "B", "E"):
            fail(f"event {i} has unknown phase {ph!r}")
        if ph != "M" and "ts" not in e:
            fail(f"event {i} ({ph}) missing 'ts': {e}")
        if ph == "X":
            if "dur" not in e:
                fail(f"complete event {i} missing 'dur': {e}")
            tids.add(e["tid"])
            span_names.add(e["name"])
        if ph == "C":
            counter_tracks.add(e["name"])

    if not tids:
        fail("no complete ('X') span events found")
    if expect_ranks is not None and tids != set(range(expect_ranks)):
        fail(f"expected tids 0..{expect_ranks - 1}, got {sorted(tids)}")
    if not counter_tracks:
        fail("no counter ('C') track found")

    print(f"check_trace: OK: {len(events)} events, {len(tids)} rank track(s), "
          f"{len(counter_tracks)} counter track(s), spans: {sorted(span_names)[:12]}")
    return 0


def run_and_validate(cli, extra):
    ranks = 2
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.json")
        cmd = [cli, "--field=sinusoid", "--dims=17,17,17", "--complexity=2",
               "--blocks=4", f"--ranks={ranks}", "--persistence=0.05",
               f"--trace={trace}", "--stats"] + extra
        print("check_trace: running:", " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            fail(f"CLI exited with {proc.returncode}")
        # Every stage of Algorithm 1 must appear in the per-rank spans.
        with open(trace) as f:
            names = {e["name"] for e in json.load(f)["traceEvents"] if e["ph"] == "X"}
        for stage in ("read", "compute", "merge_round", "write"):
            if stage not in names:
                fail(f"stage span {stage!r} missing from trace (have {sorted(names)})")
        return validate(trace, expect_ranks=ranks)


def main(argv):
    if len(argv) >= 2 and argv[1] == "--run":
        if len(argv) < 3:
            fail("--run requires the CLI binary path")
        return run_and_validate(argv[2], argv[3:])
    if len(argv) < 2:
        fail("usage: check_trace.py TRACE.json [--ranks=N] | --run CLI [ARGS...]")
    expect = None
    for a in argv[2:]:
        if a.startswith("--ranks="):
            expect = int(a.split("=", 1)[1])
    return validate(argv[1], expect)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
