/// Scaling observatory: drive simnet reconstructions of the full
/// pipeline across a rank-count ladder and join per-run efficiency,
/// per-stage imbalance, and per-round communication/critical-path
/// splits into one versioned JSON document (BENCH_scaling.json when
/// committed as the gated baseline).
///
/// Where fig9/fig10 reproduce one paper figure each, this tool is the
/// ratchet: `msc_perfgate.py --scaling-run` reruns it and compares
/// the curve against the committed baseline -- work counters exactly,
/// efficiency-at-the-top-of-the-ladder within tolerance -- so merge
/// restructuring work (ROADMAP items 1/2) moves a committed number
/// instead of an anecdote.
///
/// Flags (defaults are the gated configuration):
///   --procs=32,128,512,1024   rank ladder
///   --dims=81,81,49           grid vertex dims (jet-like field)
///   --persistence=0.03
///   --premerge=1 --sharded=1 --integrity=1
///   --json=FILE               write the document (stdout table always)
#include <memory>

#include "bench_util.hpp"
#include "simnet/timeline.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto procs = flags.getIntList("procs", {32, 128, 512, 1024});
  // Large enough that per-block compute at 1024 ranks is above timer
  // noise (the efficiency ratchet needs real signal), small enough to
  // keep the whole ladder around ten seconds.
  const auto dims = flags.getIntList("dims", {81, 81, 49});
  const double persistence = flags.getDouble("persistence", 0.03);
  const bool premerge = flags.getBool("premerge", true);
  const bool sharded = flags.getBool("sharded", true);
  const bool integrity = flags.getBool("integrity", true);
  if (dims.size() != 3) {
    std::fprintf(stderr, "msc_scaling: --dims needs three values\n");
    return 2;
  }
  const Domain domain{{dims[0], dims[1], dims[2]}};
  const pipeline::SimModels models = bench::defaultModels(flags);

  const std::string json_path = flags.getString("json");
  std::FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && !jf) {
    std::fprintf(stderr, "msc_scaling: cannot open %s\n", json_path.c_str());
    return 2;
  }
  bench::JsonWriter json(jf);
  if (jf) {
    json.beginObject();
    json.key("schema_version").value(bench::kBenchSchemaVersion);
    json.key("tool").value("msc_scaling");
    json.key("config").beginObject();
    json.key("dims").beginArray();
    for (const int d : dims) json.value(d);
    json.endArray();
    json.key("persistence").value(persistence);
    json.key("premerge").value(static_cast<int>(premerge));
    json.key("sharded").value(static_cast<int>(sharded));
    json.key("integrity").value(static_cast<int>(integrity));
    json.endObject();
    json.key("runs").beginArray();
  }

  bench::header("Scaling observatory: rank ladder, full merge");
  bench::note("grid %d x %d x %d jet-like, 1 block/process", dims[0], dims[1], dims[2]);
  std::printf("%7s %14s %10s %10s %10s %11s %12s %12s %12s\n", "procs", "plan",
              "compute_s", "merge_s", "total_s", "efficiency", "imb_compute",
              "imb_finalrd", "output_B");

  double base_total = 0;
  int base_procs = 0;
  for (const int p : procs) {
    pipeline::PipelineConfig cfg;
    cfg.domain = domain;
    cfg.source.field = synth::jetLike(domain);
    cfg.nblocks = p;
    cfg.nranks = p;
    cfg.persistence_threshold = static_cast<float>(persistence);
    cfg.plan = MergePlan::fullMerge(p);
    cfg.premerge = premerge;
    cfg.sharded_final = sharded;
    cfg.integrity = integrity;
    causal::Recorder::Options ropts;
    ropts.journal_clocks = false;  // wide simulated runs: skip per-event copies
    causal::Recorder rec(p, ropts);
    cfg.causal = &rec;
    const pipeline::SimResult r = runSimPipeline(cfg, models);
    const causal::CriticalPath cp = causal::analyzeCriticalPath(rec.journal());

    const double total = r.times.total();
    if (base_procs == 0) {
      base_procs = p;
      base_total = total;
    }
    const double efficiency =
        (base_total / total) / (static_cast<double>(p) / base_procs);
    const double imb_compute = simnet::imbalance(r.inputs.compute_per_rank);
    const double imb_prep = simnet::imbalance(r.inputs.merge_prep_per_rank);
    const std::vector<bench::RoundCommStats> rstats = bench::roundCommStats(r.inputs);
    const double imb_final = rstats.empty() ? 1.0 : rstats.back().imbalance;
    std::int64_t nodes = 0;
    for (const std::int64_t n : r.node_counts) nodes += n;

    std::printf("%7d %14s %10.3f %10.3f %10.3f %10.1f%% %12.3f %12.3f %12lld\n", p,
                cfg.plan.toString().c_str(), r.times.compute, r.times.mergeTotal(),
                total, 100 * efficiency, imb_compute, imb_final,
                static_cast<long long>(r.output_bytes));
    if (jf) {
      const std::int64_t arcs = r.arc_count;
      bench::writeRunJson(
          json, p, cfg.plan.toString().c_str(), r, efficiency, &cp,
          [&](bench::JsonWriter& j) {
            j.key("compute_imbalance").value(imb_compute);
            j.key("merge_prep_imbalance").value(imb_prep);
            j.key("final_round_imbalance").value(imb_final);
            j.key("nodes").value(nodes);
            j.key("arcs").value(arcs);
          });
    }
  }
  if (jf) {
    json.endArray();
    json.endObject();
    json.finish();
    std::fclose(jf);
    bench::note("json -> %s", json_path.c_str());
  }
  bench::note("gate: msc_perfgate.py --scaling-run (counters exact, efficiency");
  bench::note("at the top of the ladder ratcheted against the committed curve)");
  return 0;
}
