#!/usr/bin/env python3
"""Noise-aware perf regression gate over the committed bench baselines.

Two kinds of baseline, two kinds of check:

  * BENCH_kernels.json (from tools/msc_kernel_bench): per-kernel
    median/MAD timings plus exact work counters. Timings are gated with
    a MAD-derived relative tolerance; work counters are deterministic,
    so their delta must be exactly zero -- a work drift is a behaviour
    change, not noise, no matter how small.

  * BENCH_critpath.json (from bench/fig9 --json): the per-round
    communication counters (groups, messages, bytes, root loads) of the
    simulated strong-scaling runs. These are deterministic too and must
    match exactly; model seconds are not compared.

  * BENCH_scaling.json (from tools/msc_scaling --json): the scaling
    observatory's rank-ladder curve. Work counters, output bytes and
    feature counts are deterministic and must match exactly; parallel
    efficiency at the top of the ladder is a modeled ratio and is
    ratcheted -- it may not drop more than EFF_REL (relative) below
    the committed curve.

Modes:
  msc_perfgate.py --bench BIN --baseline F [--reps N] [--keep OUT]
      run the kernel bench, then gate the measurement against F
  msc_perfgate.py --compare MEASURED --baseline F
      gate an existing measurement file against F
  msc_perfgate.py --update-baseline --bench BIN --baseline F [--reps N]
      re-measure and overwrite F (commit the result deliberately)
  msc_perfgate.py --self-check --baseline F
      prove the gate can fail: synthesize a 2x slowdown and a
      work-counter drift from F and require both to be blamed
  msc_perfgate.py --critpath-run BIN --critpath-baseline F [--procs P]
      run fig9-style BIN with --json at --procs (default 32), compare
      per-round counters of matching procs entries exactly
  msc_perfgate.py --scaling-run BIN --scaling-baseline F
      run tools/msc_scaling with --json, compare the whole ladder:
      config + counters exact, top-of-ladder efficiency ratcheted

Timing tolerance per kernel:
    rel_tol = max(MIN_REL, K_MAD * rel_mad) * MSC_PERFGATE_TOL
with rel_mad the larger of the baseline's and the measurement's
MAD/median. MSC_PERFGATE_TOL (env, default 1.0) relaxes the gate for
slow configurations (sanitizers set it to 20).

Exit status: 0 pass, 1 regression (per-metric blame table printed),
2 usage or I/O error.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

# A kernel must regress by at least 50% relative before timing noise is
# ruled out at default tolerance; quiet kernels (tiny MAD) stay at this
# floor, noisy ones widen with K_MAD * MAD/median.
MIN_REL = 0.50
K_MAD = 8.0

SCHEMA_VERSION = 1

# Deterministic per-round fields in the fig9/fig10 --json rounds.
ROUND_WORK_KEYS = ("groups", "messages", "total_bytes", "max_root_bytes",
                   "max_root_rank")

# Deterministic per-run fields in the scaling observatory output.
SCALING_WORK_KEYS = ("output_bytes", "nodes", "arcs")

# Relative efficiency drop allowed at the top of the rank ladder,
# scaled by MSC_PERFGATE_TOL. Mirrors MIN_REL for kernel timings: the
# model times embed measured kernel seconds, so the curve carries
# timing noise -- a halving of top-of-ladder efficiency is a real
# regression, a few percent is not.
EFF_REL = 0.50


def fail_usage(msg):
    print(f"msc_perfgate: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"cannot load {path}: {e}")


def tol_scale():
    try:
        return float(os.environ.get("MSC_PERFGATE_TOL", "1.0"))
    except ValueError:
        fail_usage("MSC_PERFGATE_TOL is not a number")


class Blame:
    """Collects per-metric verdict rows and prints the blame table."""

    def __init__(self):
        self.rows = []  # (kernel, metric, baseline, measured, limit, verdict)
        self.failed = False

    def add(self, kernel, metric, base, meas, limit, ok):
        self.rows.append((kernel, metric, base, meas, limit, ok))
        if not ok:
            self.failed = True

    def print_table(self, only_failures=False):
        rows = [r for r in self.rows if not (only_failures and r[5])]
        if not rows:
            return
        print(f"{'kernel':<20} {'metric':<28} {'baseline':>14} {'measured':>14} "
              f"{'allowed':>14} verdict")
        for kernel, metric, base, meas, limit, ok in rows:
            print(f"{kernel:<20} {metric:<28} {base:>14} {meas:>14} "
                  f"{limit:>14} {'ok' if ok else 'FAIL'}")


def check_schema(doc, path):
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail_usage(f"{path}: schema_version {doc.get('schema_version')!r}, "
                   f"this gate understands {SCHEMA_VERSION}")


def compare_kernels(baseline, measured, scale):
    """Gate a msc_kernel_bench measurement against the baseline."""
    check_schema(baseline, "baseline")
    check_schema(measured, "measurement")
    blame = Blame()
    base_by_name = {k["name"]: k for k in baseline.get("kernels", [])}
    meas_by_name = {k["name"]: k for k in measured.get("kernels", [])}
    if set(base_by_name) != set(meas_by_name):
        missing = set(base_by_name) ^ set(meas_by_name)
        for name in sorted(missing):
            blame.add(name, "present", name in base_by_name,
                      name in meas_by_name, "both", False)
    for name in sorted(set(base_by_name) & set(meas_by_name)):
        b, m = base_by_name[name], meas_by_name[name]

        # Timing: MAD-derived relative tolerance, regressions only.
        bmed, mmed = b["median_s"], m["median_s"]
        rel_mad = max(b["mad_s"] / bmed if bmed > 0 else 0,
                      m["mad_s"] / mmed if mmed > 0 else 0)
        rel_tol = max(MIN_REL, K_MAD * rel_mad) * scale
        limit = bmed * (1 + rel_tol)
        blame.add(name, "median_s", f"{bmed:.6f}", f"{mmed:.6f}",
                  f"<{limit:.6f}", mmed <= limit)

        # Work: deterministic, exact-zero delta required, both ways.
        bwork, mwork = b.get("work", {}), m.get("work", {})
        for counter in sorted(set(bwork) | set(mwork)):
            bv, mv = bwork.get(counter), mwork.get(counter)
            blame.add(name, f"work.{counter}", bv, mv, "delta=0", bv == mv)
    return blame


def compare_critpath(baseline, measured):
    """Exact per-round counter comparison for matching procs entries."""
    blame = Blame()
    meas_by_procs = {e["procs"]: e for e in measured}
    compared = 0
    for be in baseline:
        me = meas_by_procs.get(be["procs"])
        if me is None:
            continue
        compared += 1
        label = f"procs={be['procs']}"
        blame.add(label, "plan", be.get("plan"), me.get("plan"), "equal",
                  be.get("plan") == me.get("plan"))
        brounds, mrounds = be.get("rounds", []), me.get("rounds", [])
        blame.add(label, "rounds", len(brounds), len(mrounds), "equal",
                  len(brounds) == len(mrounds))
        for br, mr in zip(brounds, mrounds):
            for key in ROUND_WORK_KEYS:
                blame.add(label, f"round{br.get('round')}.{key}", br.get(key),
                          mr.get(key), "delta=0", br.get(key) == mr.get(key))
    if compared == 0:
        fail_usage("no measured entry matches any baseline procs value")
    return blame


def compare_scaling(baseline, measured, scale):
    """Gate a msc_scaling ladder against the committed curve.

    Counters (per-round comm work, output bytes, feature counts) are
    deterministic and compared exactly; efficiency at the largest
    baseline procs value is ratcheted with EFF_TOL absolute slack.
    """
    check_schema(baseline, "baseline")
    check_schema(measured, "measurement")
    blame = Blame()
    blame.add("config", "config", json.dumps(baseline.get("config"),
                                             sort_keys=True),
              json.dumps(measured.get("config"), sort_keys=True), "equal",
              baseline.get("config") == measured.get("config"))
    bruns = baseline.get("runs", [])
    meas_by_procs = {e["procs"]: e for e in measured.get("runs", [])}
    if not bruns:
        fail_usage("scaling baseline has no runs")
    compared = 0
    top_procs = max(e["procs"] for e in bruns)
    for be in bruns:
        me = meas_by_procs.get(be["procs"])
        label = f"procs={be['procs']}"
        if me is None:
            blame.add(label, "present", True, False, "both", False)
            continue
        compared += 1
        blame.add(label, "plan", be.get("plan"), me.get("plan"), "equal",
                  be.get("plan") == me.get("plan"))
        for key in SCALING_WORK_KEYS:
            blame.add(label, key, be.get(key), me.get(key), "delta=0",
                      be.get(key) == me.get(key))
        brounds, mrounds = be.get("rounds", []), me.get("rounds", [])
        blame.add(label, "rounds", len(brounds), len(mrounds), "equal",
                  len(brounds) == len(mrounds))
        for br, mr in zip(brounds, mrounds):
            for key in ROUND_WORK_KEYS:
                blame.add(label, f"round{br.get('round')}.{key}", br.get(key),
                          mr.get(key), "delta=0", br.get(key) == mr.get(key))
        if be["procs"] == top_procs:
            beff, meff = be.get("efficiency"), me.get("efficiency")
            floor = beff * (1 - EFF_REL * scale)
            blame.add(label, "efficiency", f"{beff:.4f}", f"{meff:.4f}",
                      f">={floor:.4f}", meff >= floor)
    if compared == 0:
        fail_usage("no measured entry matches any baseline procs value")
    return blame


def run_bench(bench, reps, out_path):
    cmd = [bench, f"--reps={reps}", f"--json={out_path}"]
    print("msc_perfgate: running:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        fail_usage(f"{bench} exited with {proc.returncode}")
    return load(out_path)


def finish(blame, what):
    if blame.failed:
        print(f"msc_perfgate: FAIL: {what} regressed; blame table:")
        blame.print_table(only_failures=True)
        return 1
    n = len(blame.rows)
    print(f"msc_perfgate: OK: {what} within tolerance ({n} metrics checked, "
          f"MSC_PERFGATE_TOL={tol_scale():g})")
    return 0


def self_check(baseline_path):
    """The gate must catch a seeded slowdown and a seeded work drift."""
    baseline = load(baseline_path)
    check_schema(baseline, baseline_path)
    kernels = baseline.get("kernels", [])
    if len(kernels) < 2:
        fail_usage("self-check needs a baseline with at least two kernels")

    # Clean comparison against itself must pass at any tolerance.
    clean = compare_kernels(baseline, copy.deepcopy(baseline), tol_scale())
    if clean.failed:
        print("msc_perfgate: self-check FAIL: baseline does not gate "
              "cleanly against itself")
        clean.print_table(only_failures=True)
        return 1

    seeded = copy.deepcopy(baseline)
    slow = seeded["kernels"][0]
    slow["median_s"] *= 2.0  # 2x slowdown: outside any sane tolerance
    drift = seeded["kernels"][1]
    if not drift.get("work"):
        fail_usage(f"kernel {drift['name']} has no work counters to drift")
    drift_counter = sorted(drift["work"])[0]
    drift["work"][drift_counter] += 7

    blame = compare_kernels(baseline, seeded, tol_scale())
    blamed = {(k, m) for k, m, _b, _m, _l, ok in blame.rows if not ok}
    want = {(slow["name"], "median_s"),
            (drift["name"], f"work.{drift_counter}")}
    if not blame.failed or not want <= blamed:
        print(f"msc_perfgate: self-check FAIL: expected blame for {want}, "
              f"got {blamed}")
        return 1
    print("msc_perfgate: self-check OK: seeded 2x slowdown and work drift "
          "both blamed:")
    blame.print_table(only_failures=True)
    return 0


def main(argv):
    args = {}
    positional_free = {"--update-baseline", "--self-check"}
    i = 1
    while i < len(argv):
        a = argv[i]
        if a in positional_free:
            args[a] = True
            i += 1
        elif a.startswith("--"):
            if i + 1 >= len(argv):
                fail_usage(f"{a} needs a value")
            args[a] = argv[i + 1]
            i += 2
        else:
            fail_usage(f"unexpected argument {a!r}")

    scale = tol_scale()
    reps = int(args.get("--reps", "9"))

    if args.get("--self-check"):
        if "--baseline" not in args:
            fail_usage("--self-check needs --baseline")
        return self_check(args["--baseline"])

    if "--critpath-run" in args or "--critpath-baseline" in args:
        if "--critpath-run" not in args or "--critpath-baseline" not in args:
            fail_usage("critpath mode needs --critpath-run and "
                       "--critpath-baseline")
        procs = args.get("--procs", "32")
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "critpath.json")
            cmd = [args["--critpath-run"], f"--procs={procs}", f"--json={out}"]
            print("msc_perfgate: running:", " ".join(cmd))
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                fail_usage(f"{cmd[0]} exited with {proc.returncode}")
            measured = load(out)
        return finish(compare_critpath(load(args["--critpath-baseline"]),
                                       measured),
                      "per-round counters")

    if "--scaling-run" in args or "--scaling-baseline" in args:
        if "--scaling-run" not in args or "--scaling-baseline" not in args:
            fail_usage("scaling mode needs --scaling-run and "
                       "--scaling-baseline")
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "scaling.json")
            cmd = [args["--scaling-run"], f"--json={out}"]
            print("msc_perfgate: running:", " ".join(cmd))
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                fail_usage(f"{cmd[0]} exited with {proc.returncode}")
            measured = load(out)
        return finish(compare_scaling(load(args["--scaling-baseline"]),
                                      measured, scale),
                      "scaling curve")

    if "--baseline" not in args:
        fail_usage("need --baseline (see --help in the module docstring)")
    baseline_path = args["--baseline"]

    if args.get("--update-baseline"):
        if "--bench" not in args:
            fail_usage("--update-baseline needs --bench")
        run_bench(args["--bench"], reps, baseline_path)
        print(f"msc_perfgate: baseline updated -> {baseline_path}")
        return 0

    if "--compare" in args:
        measured = load(args["--compare"])
    elif "--bench" in args:
        keep = args.get("--keep")
        if keep:
            measured = run_bench(args["--bench"], reps, keep)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                measured = run_bench(args["--bench"], reps,
                                     os.path.join(tmp, "kernels.json"))
    else:
        fail_usage("need --bench BIN or --compare MEASURED")

    return finish(compare_kernels(load(baseline_path), measured, scale),
                  "kernel medians/work")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
