/// \file msc_fuzz.cpp
/// Seed-sweeping differential fuzzer for the MS-complex pipeline.
///
/// Runs check::runFuzzSweep over a seed range: each seed derives a
/// synthetic field, grid, decomposition, rank count and threshold;
/// the serial pipeline, the sequential parallel driver and the
/// threaded parallel driver are compared and every invariant checker
/// is applied. Failing cases are shrunk to a minimal grid/block
/// configuration and dumped as repro artifacts.
///
/// Usage:
///   msc_fuzz [--seeds N] [--first S] [--min-size M] [--max-size M]
///            [--max-ranks R] [--faults] [--merge-dims] [--no-shrink]
///            [--artifacts DIR] [--quiet]
///
/// With --faults every case also runs the threaded driver under
/// deterministic fault injection (crashes, delays, duplicates,
/// stalls) in both recovery modes; a recovered run that is not
/// byte-identical to the fault-free one fails the case, and the
/// shrunk repro (including the fault seed) is dumped like any other.
///
/// With --merge-dims each case additionally derives the pre-merge
/// reduction and sharded-final-round knobs (independently, about half
/// the cases each); the variant run must stay byte-identical between
/// drivers and canonical-equal to the baseline schedule. The shrinker
/// drops these dimensions first.
///
/// Exit status: 0 when every case passed, 1 otherwise.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seeds N] [--first S] [--min-size M] [--max-size M]"
               " [--max-ranks R] [--faults] [--merge-dims] [--no-shrink]"
               " [--artifacts DIR] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  msc::check::FuzzOptions opts;
  opts.num_seeds = 100;
  opts.log = &std::cout;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.num_seeds = std::atoi(v);
    } else if (arg == "--first") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.first_seed = static_cast<unsigned>(std::atol(v));
    } else if (arg == "--min-size") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.limits.min_size = std::atoi(v);
    } else if (arg == "--max-size") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.limits.max_size = std::atoi(v);
    } else if (arg == "--max-ranks") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.limits.max_ranks = std::atoi(v);
    } else if (arg == "--faults") {
      opts.limits.with_faults = true;
    } else if (arg == "--merge-dims") {
      opts.limits.with_merge_dims = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--artifacts") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      opts.artifact_dir = v;
    } else if (arg == "--quiet") {
      opts.log = nullptr;
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.num_seeds <= 0 || opts.limits.min_size < 2 ||
      opts.limits.max_size < opts.limits.min_size || opts.limits.max_ranks < 1)
    return usage(argv[0]);

  const msc::check::FuzzSummary sum = msc::check::runFuzzSweep(opts);

  std::cout << "msc_fuzz: " << sum.cases_run << " cases (seeds " << opts.first_seed << ".."
            << (opts.first_seed + static_cast<unsigned>(opts.num_seeds) - 1) << "), "
            << sum.failures.size() << " failures\n";
  for (const msc::check::FuzzFailure& f : sum.failures) {
    std::cout << "FAIL " << f.original.describe() << "\n  minimal: " << f.minimal.describe()
              << "\n";
    for (const std::string& p : f.problems) std::cout << "  " << p << "\n";
    if (!f.artifact_path.empty()) std::cout << "  artifacts: " << f.artifact_path << "\n";
  }
  return sum.ok() ? 0 : 1;
}
