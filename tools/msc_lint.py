#!/usr/bin/env python3
"""msc_lint: layering + hygiene lint for src/.

The library's correctness argument leans on a strict dependency
layering (core/synth/obs/audit are leaves; par talks only to its
instrumentation; check must never depend on what it is checking the
observability of) and on a few hygiene rules that keep the runtime
auditable (no hidden mutable globals, no naked new/delete outside the
tagging allocator, every header self-guarded). This tool enforces
both, file by file, and is wired into ctest as a tier-1 test — a
violation fails the build's test suite, not a style bot.

Rules are machine-readable: `msc_lint.py --rules` emits the table as
JSON. Violations can be suppressed ONLY with an inline justification

    // msc-lint: allow(<rule-id>): <reason>

on the offending line or the line directly above it. The GRANDFATHER
table below exists so a rule can be introduced before the tree is
clean; it is required to be EMPTY on every mainline commit — new debt
must either be fixed or carry an inline justification that reviewers
can see next to the code.

The tokenizer, suppression, and grandfather machinery is shared with
msc_analyze via lintlib so the two suppression syntaxes cannot drift.

Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintlib  # noqa: E402

# --------------------------------------------------------------------------
# Rules table (machine-readable; --rules prints it as JSON).
# --------------------------------------------------------------------------

RULES = [
    {
        "id": "layering",
        "severity": "error",
        "description": "A module may #include only from itself and its allowed "
                       "dependencies (see LAYERS). Keeps the dependency graph a "
                       "DAG with core/obs/audit as leaves.",
    },
    {
        "id": "pragma-once",
        "severity": "error",
        "description": "Every header must contain #pragma once.",
    },
    {
        "id": "using-namespace-header",
        "severity": "error",
        "description": "No `using namespace` at any scope in a header; it leaks "
                       "into every includer.",
    },
    {
        "id": "naked-new",
        "severity": "error",
        "description": "No new/delete expressions or ::operator new/delete "
                       "outside the audit tagging allocator; ownership must be "
                       "RAII (containers, unique_ptr).",
    },
    {
        "id": "mutable-global",
        "severity": "error",
        "description": "No mutable (non-const, non-constexpr) namespace-scope "
                       "variables; hidden shared state breaks the share-nothing "
                       "model the auditor checks.",
    },
]

RULE_IDS = {r["id"] for r in RULES}

# Allowed internal dependencies per src/ module, derived from the actual
# tree and frozen here. A module always may include from itself.
#   - core, obs, audit are leaves (no internal includes).
#   - merge holds the distributed merge strategy (pre-merge reduction,
#     sharded final round): it builds on core's glue/simplify, decomp's
#     block geometry and io's packing, but must never see pipeline or
#     simnet -- the drivers call into merge, not the other way round.
#   - audit must stay a leaf: par depends on it, so anything audit pulled
#     in would be dragged under the runtime.
#   - par may see only its instrumentation (obs, causal) and its
#     contract checker (audit) — never domain code.
#   - causal is a leaf like audit: par piggybacks its trailers, so any
#     dependency causal grew would be dragged under the runtime. In
#     particular obs must never include causal (nor vice versa): flow
#     events reach the tracer through par/simnet call sites, keeping
#     both instrumentation layers independently attachable.
#   - check must never depend on obs (it validates runs that may or may
#     not be traced) nor on bench.
LAYERS = {
    "core": {"metrics", "prof"},
    # obs sees prof only to mirror live spans onto the sampling
    # profiler's per-rank stacks (thread-binding in Span ctor/end).
    "obs": {"prof"},
    # prof is a near-leaf: the sampling profiler's only edge is the
    # metrics registry the heartbeat reporter reads its gauges from.
    "prof": {"metrics"},
    "audit": set(),
    "causal": set(),
    # metrics is a leaf like obs/audit/causal: kernels flush into it, so
    # any dependency it grew would be dragged under core. Headers above
    # only forward-declare metrics::Registry; .cpp files include it.
    "metrics": set(),
    # integrity is a leaf like audit/causal: par verifies its wire
    # trailer inline, so any dependency it grew would be dragged under
    # the runtime.
    "integrity": set(),
    "merge": {"core", "decomp", "io", "metrics", "prof"},
    "synth": {"core"},
    "decomp": {"core"},
    "analysis": {"core"},
    "simnet": {"core", "obs", "causal"},
    "par": {"obs", "audit", "causal", "integrity"},
    "io": {"core", "par", "integrity"},
    "fault": {"core", "io", "obs", "par", "integrity"},
    # pipeline sees audit directly since the watchdog knob moved into
    # PipelineConfig (block_timeout_seconds -> Auditor::setBlockTimeoutSeconds).
    "pipeline": {"audit", "causal", "core", "decomp", "fault", "integrity", "io", "merge", "metrics", "obs", "par", "prof", "simnet", "synth"},
    "check": {"core", "synth", "decomp", "analysis", "fault", "integrity", "io", "pipeline"},
}

# Modules that must never appear in a given module's include closure is
# expressed by omission above; bans called out by name for clarity:
EXPLICIT_BANS = [
    ("check", "obs", "check must not depend on obs"),
    ("check", "bench", "check must not depend on bench"),
    ("obs", "causal", "obs must not depend on causal (independent attach)"),
    ("causal", "obs", "causal must not depend on obs (stays a leaf under par)"),
    ("prof", "pipeline", "prof must not depend on pipeline (profiles it from below)"),
    ("prof", "obs", "prof must not depend on obs (obs mirrors into prof, not back)"),
]

# Headers any module may include without creating a layering edge:
# dependency-free macro vocabularies with no code of their own. The
# concurrency annotation header is the canonical case — leaves like
# audit/causal/metrics annotate their guarded fields with it, and a
# macro-only header cannot drag anything under the runtime.
UNIVERSAL_HEADERS = {"core/annotations.hpp"}

# Debt accepted at rule-introduction time. MUST be empty on mainline:
# fix the code or justify it inline with `// msc-lint: allow(...)`.
# Maps "path:line" -> rule id.
GRANDFATHER = {}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(([A-Za-z0-9_]+)/[^"]+)"')
ALLOW_RE = lintlib.allow_regex("msc-lint")

strip_comments_and_strings = lintlib.strip_comments_and_strings
Finding = lintlib.Finding


def allowed_rules_for_line(raw_lines, lineno):
    return lintlib.allowed_rules_for_line(raw_lines, lineno, ALLOW_RE)


NAKED_NEW_RE = re.compile(
    r"::\s*operator\s+(?:new|delete)"      # raw operator calls
    r"|(?<![\w.])new\s+[A-Za-z_(:]"        # new-expressions: `new T`, `new (buf) T`
    r"|(?<![\w.])delete\s*\[\s*\]"          # delete[] p
    r"|(?<![\w.])delete\s+[A-Za-z_*(]"      # delete p
)
EQ_DELETE_RE = re.compile(r"=\s*delete\b")

# Namespace-scope variable definition heuristic. Requires a type-ish
# token sequence then an identifier then `=`, `{...};` or `;`. Lines
# containing `(` before any `=` are declarations of functions and are
# skipped by the caller.
GLOBAL_VAR_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+|thread_local\s+)*"
    r"(?:[A-Za-z_][\w:]*(?:<[^;{}]*>)?)"    # type (possibly templated)
    r"(?:\s*[*&])?\s+"
    r"[A-Za-z_]\w*(?:\s*\[[^\]]*\])?"        # name (possibly array)
    r"\s*(?:=[^=]|\{|;)"
)
GLOBAL_SKIP_RE = re.compile(
    r"\b(?:const|constexpr|consteval|constinit|using|typedef|struct|class|enum|"
    r"union|template|friend|operator|return|extern|namespace|concept|requires|"
    r"public|private|protected|case|goto|if|else|for|while|do|switch|throw|new|"
    r"delete|static_assert)\b"
)


def lint_file(path, rel, module, findings):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    stripped = strip_comments_and_strings(text)
    lines = stripped.split("\n")
    is_header = rel.endswith(".hpp")

    def report(lineno, rule, message):
        if rule in allowed_rules_for_line(raw_lines, lineno):
            return
        f = Finding(rel, lineno, rule, message)
        if GRANDFATHER.get(f.key()) == rule:
            return
        findings.append(f)

    # --- layering -------------------------------------------------------
    # Include paths are string literals, so match on the raw line; the
    # stripped line gates out includes that are commented out.
    allowed = LAYERS.get(module)
    for lineno, raw in enumerate(raw_lines, 1):
        m = INCLUDE_RE.match(raw)
        if not m or not re.match(r"\s*#\s*include\b", lines[lineno - 1]):
            continue
        full, dep = m.group(1), m.group(2)
        if dep == module or dep not in LAYERS:
            continue  # self-includes and non-module paths are fine
        if full in UNIVERSAL_HEADERS:
            continue  # macro-only vocabulary headers carry no dependency
        if allowed is None:
            report(lineno, "layering",
                   f"module '{module}' is not in the LAYERS table; add it with "
                   f"an explicit dependency set")
        elif dep not in allowed:
            permitted = ", ".join(sorted(allowed)) if allowed else "(none)"
            report(lineno, "layering",
                   f"'{module}' must not include from '{dep}' "
                   f"(allowed internal deps: {permitted})")

    # --- header hygiene -------------------------------------------------
    if is_header:
        if "#pragma once" not in text:
            report(1, "pragma-once", "header is missing #pragma once")
        for lineno, line in enumerate(lines, 1):
            if re.search(r"\busing\s+namespace\b", line):
                report(lineno, "using-namespace-header",
                       "`using namespace` in a header leaks into every includer")

    # --- naked new/delete ----------------------------------------------
    for lineno, line in enumerate(lines, 1):
        probe = EQ_DELETE_RE.sub(" ", line)  # `= delete;` is not a delete-expression
        if NAKED_NEW_RE.search(probe):
            report(lineno, "naked-new",
                   "naked new/delete; use containers or unique_ptr (only the "
                   "audit tagging allocator may justify this inline)")

    # --- mutable namespace-scope globals --------------------------------
    # Brace tracking: depth counts every `{`; ns_depth counts only
    # braces opened by namespace/extern-"C" lines. A line starting at
    # depth == ns_depth is at namespace scope.
    depth = 0
    pdepth = 0  # net open parens; >0 means we are inside a signature/call
    ns_stack = []  # True for namespace-opened braces
    for lineno, line in enumerate(lines, 1):
        at_ns_scope = (all(ns_stack) if ns_stack else True) and pdepth == 0
        opens_ns = bool(re.match(r"\s*(inline\s+)?namespace\b[^;]*\{", line)) or \
            bool(re.match(r'\s*extern\s*\{', line))
        if at_ns_scope and GLOBAL_VAR_RE.match(line) and not GLOBAL_SKIP_RE.search(line):
            eq = line.find("=")
            paren = line.find("(")
            if paren == -1 or (eq != -1 and eq < paren):
                report(lineno, "mutable-global",
                       "mutable namespace-scope variable; make it const/"
                       "constexpr, function-local static, or justify inline")
        for ch in line:
            if ch == "{":
                ns_stack.append(opens_ns and depth == len(ns_stack))
                depth += 1
                opens_ns = False
            elif ch == "}":
                depth = max(0, depth - 1)
                if ns_stack:
                    ns_stack.pop()
            elif ch == "(":
                pdepth += 1
            elif ch == ")":
                pdepth = max(0, pdepth - 1)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script's dir)")
    ap.add_argument("--rules", action="store_true",
                    help="print the rules table as JSON and exit")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON instead of text")
    args = ap.parse_args()

    if args.rules:
        json.dump(lintlib.rules_payload(
            RULES,
            layers={k: sorted(v) for k, v in LAYERS.items()},
            explicit_bans=[list(b) for b in EXPLICIT_BANS],
            universal_headers=sorted(UNIVERSAL_HEADERS)),
            sys.stdout, indent=2)
        print()
        return 0

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"msc_lint: no src/ under {root}", file=sys.stderr)
        return 2

    for mod, deps in LAYERS.items():
        unknown = deps - set(LAYERS)
        if unknown:
            print(f"msc_lint: LAYERS['{mod}'] references unknown modules {unknown}",
                  file=sys.stderr)
            return 2
    for src_mod, banned, why in EXPLICIT_BANS:
        if banned in LAYERS.get(src_mod, set()):
            print(f"msc_lint: LAYERS contradicts ban: {why}", file=sys.stderr)
            return 2

    findings = []
    nfiles = 0
    for path in lintlib.walk_sources(src):
        rel = os.path.relpath(path, root)
        module = os.path.relpath(os.path.dirname(path), src).split(os.sep)[0]
        nfiles += 1
        lint_file(path, rel, module, findings)

    if not lintlib.check_grandfather(GRANDFATHER, "msc_lint", sys.stderr):
        return 1

    if args.json:
        json.dump([f.as_dict() for f in findings], sys.stdout, indent=2)
        print()
    else:
        for f in findings:
            print(f)
        print(f"msc_lint: {nfiles} files, {len(findings)} violation(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
