/// \file msc_chaos.cpp
/// Chaos-matrix runner for the fault-tolerant threaded pipeline.
///
/// Runs one synthetic workload fault-free to establish the golden
/// bytes, then replays it under deterministic fault injection for a
/// matrix of (injector seed x recovery mode). Every recovered run
/// must be byte-identical to the golden one; each run prints the
/// faults that fired and what the recovery layer did about them
/// (respawns, round replays, block reassignments, drained frames,
/// checkpoint traffic).
///
/// Usage:
///   msc_chaos [--seeds N] [--first S] [--mode respawn|degrade|both]
///             [--size V] [--blocks B] [--ranks R] [--field NAME]
///             [--threshold T] [--crash-rate P] [--checkpoint-dir D]
///             [--kinds K1,K2,...] [--quiet]
///
/// --kinds filters the fault mix to the named kinds (crash, delay,
/// duplicate, stall, corrupt_payload, corrupt_checkpoint,
/// truncate_spill); unlisted kinds get rate 0. Selecting any
/// corruption kind turns integrity checking on (corruption without a
/// detector is rejected by config validation) and, when no
/// --checkpoint-dir is given, spills checkpoints to a temp directory
/// so storage corruption has a durable medium to heal from. The
/// report grows per-kind fired columns plus the integrity
/// verified/detected/healed tallies.
///
/// In degrade mode a seed can kill every rank; that run ends in a
/// structured total-loss error (fault::RecoveryError), is reported as
/// "lost", and does not fail the matrix — silent divergence and hangs
/// do. Exit status: 0 when every surviving run matched the golden
/// bytes, 1 otherwise.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fault/inject.hpp"
#include "fault/recovery.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "synth/fields.hpp"

namespace {

struct Options {
  int num_seeds = 25;
  unsigned first_seed = 1;
  bool respawn = true;
  bool degrade = true;
  int size = 10;
  int nblocks = 8;
  int nranks = 4;
  std::string field = "noise";
  float threshold = 0.0f;
  double crash_rate = 0.02;
  std::string checkpoint_dir;
  std::string kinds;  // empty = the legacy mix (crash/delay/dup/stall)
  bool quiet = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seeds N] [--first S] [--mode respawn|degrade|both]"
               " [--size V] [--blocks B] [--ranks R] [--field NAME]"
               " [--threshold T] [--crash-rate P] [--checkpoint-dir D]"
               " [--kinds K1,K2,...] [--quiet]\n";
  return 2;
}

msc::synth::Field fieldByName(const std::string& name, const msc::Domain& d,
                              unsigned seed) {
  using namespace msc::synth;
  if (name == "noise") return noise(seed);
  if (name == "plateaus") return plateaus(seed);
  if (name == "nearTies") return nearTies(seed);
  if (name == "thinSaddles") return thinSaddles(d, seed);
  if (name == "ramp") return ramp();
  if (name == "cosine") return cosineProduct(d, 2);
  if (name == "sinusoid") return sinusoid(d, 3);
  if (name == "hydrogen") return hydrogenLike(d);
  if (name == "jet") return jetLike(d, seed);
  if (name == "rt") return rtLike(d, seed);
  throw std::invalid_argument("msc_chaos: unknown field family: " + name);
}

bool sameBytes(const std::vector<msc::io::Bytes>& a,
               const std::vector<msc::io::Bytes>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--seeds" && (v = value()))
      o.num_seeds = std::atoi(v);
    else if (arg == "--first" && (v = value()))
      o.first_seed = static_cast<unsigned>(std::atol(v));
    else if (arg == "--mode" && (v = value())) {
      const std::string m = v;
      o.respawn = m == "respawn" || m == "both";
      o.degrade = m == "degrade" || m == "both";
      if (!o.respawn && !o.degrade) return usage(argv[0]);
    } else if (arg == "--size" && (v = value()))
      o.size = std::atoi(v);
    else if (arg == "--blocks" && (v = value()))
      o.nblocks = std::atoi(v);
    else if (arg == "--ranks" && (v = value()))
      o.nranks = std::atoi(v);
    else if (arg == "--field" && (v = value()))
      o.field = v;
    else if (arg == "--threshold" && (v = value()))
      o.threshold = static_cast<float>(std::atof(v));
    else if (arg == "--crash-rate" && (v = value()))
      o.crash_rate = std::atof(v);
    else if (arg == "--checkpoint-dir" && (v = value()))
      o.checkpoint_dir = v;
    else if (arg == "--kinds" && (v = value()))
      o.kinds = v;
    else if (arg.rfind("--kinds=", 0) == 0)
      o.kinds = arg.substr(8);
    else if (arg == "--quiet")
      o.quiet = true;
    else
      return usage(argv[0]);
  }
  if (o.num_seeds <= 0 || o.size < 4 || o.nblocks < 1 || o.nranks < 1)
    return usage(argv[0]);

  using namespace msc;

  // Parse the --kinds filter once; unknown names are usage errors.
  std::set<fault::FaultKind> selected;
  if (!o.kinds.empty()) {
    std::stringstream ss(o.kinds);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (name.empty()) continue;
      const fault::FaultKind k = fault::faultKindFromName(name.c_str());
      if (k == fault::FaultKind::kNone) {
        std::cerr << "msc_chaos: unknown fault kind: " << name << "\n";
        return usage(argv[0]);
      }
      selected.insert(k);
    }
    if (selected.empty()) return usage(argv[0]);
  }
  const bool corruption_selected =
      selected.count(fault::FaultKind::kCorruptPayload) ||
      selected.count(fault::FaultKind::kCorruptCheckpoint) ||
      selected.count(fault::FaultKind::kTruncateSpill);
  if (corruption_selected && o.checkpoint_dir.empty()) {
    // Storage corruption needs a durable medium to tear / heal from.
    o.checkpoint_dir =
        (std::filesystem::temp_directory_path() /
         ("msc_chaos_ckpt_" + std::to_string(static_cast<long>(::getpid()))))
            .string();
  }

  pipeline::PipelineConfig base;
  base.domain = Domain{Vec3i{o.size, o.size, o.size}};
  base.source.field = fieldByName(o.field, base.domain, o.first_seed);
  base.nblocks = o.nblocks;
  base.nranks = o.nranks;
  base.persistence_threshold = o.threshold;
  base.plan = MergePlan::fullMerge(o.nblocks);

  // Golden run: no injector, recovery off — the original code path.
  const pipeline::ThreadedResult golden = pipeline::runThreadedPipeline(base);
  if (!o.quiet)
    std::cout << "golden: " << o.field << " " << o.size << "^3, " << o.nblocks
              << " blocks on " << o.nranks << " ranks, "
              << golden.outputs.size() << " output complex(es)\n";

  std::vector<fault::RecoveryMode> modes;
  if (o.respawn) modes.push_back(fault::RecoveryMode::kRespawn);
  if (o.degrade) modes.push_back(fault::RecoveryMode::kDegrade);

  int runs = 0, matched = 0, lost = 0, diverged = 0, errored = 0;
  for (int s = 0; s < o.num_seeds; ++s) {
    const unsigned seed = o.first_seed + static_cast<unsigned>(s);
    for (const fault::RecoveryMode mode : modes) {
      fault::InjectorOptions fopts;
      fopts.seed = seed;
      fopts.crash_rate = o.crash_rate;
      if (!selected.empty()) {
        const auto rate = [&](fault::FaultKind k, double dflt) {
          return selected.count(k) ? dflt : 0.0;
        };
        fopts.crash_rate = rate(fault::FaultKind::kCrash, o.crash_rate);
        fopts.delay_rate = rate(fault::FaultKind::kDelay, fopts.delay_rate);
        fopts.duplicate_rate =
            rate(fault::FaultKind::kDuplicate, fopts.duplicate_rate);
        fopts.stall_rate = rate(fault::FaultKind::kStall, fopts.stall_rate);
        fopts.corrupt_payload_rate =
            rate(fault::FaultKind::kCorruptPayload, 0.05);
        fopts.corrupt_checkpoint_rate =
            rate(fault::FaultKind::kCorruptCheckpoint, 0.05);
        fopts.truncate_spill_rate =
            rate(fault::FaultKind::kTruncateSpill, 0.05);
      }
      fault::Injector injector(o.nranks, fopts);

      pipeline::PipelineConfig cfg = base;
      cfg.integrity = corruption_selected;
      cfg.fault.injector = &injector;
      cfg.fault.recovery = mode;
      cfg.fault.recv_deadline_seconds = 2.0;
      cfg.fault.max_round_attempts = 32;
      cfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
      cfg.fault.checkpoint_dir = o.checkpoint_dir;

      ++runs;
      std::string outcome;
      try {
        const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
        const bool same = sameBytes(r.outputs, golden.outputs);
        same ? ++matched : ++diverged;
        outcome = same ? "match" : "DIVERGED";
        if (!o.quiet || !same) {
          const auto& rs = r.recovery;
          std::cout << "seed " << seed << " " << fault::recoveryModeName(mode)
                    << ": " << outcome << "  faults=" << rs.faults_injected
                    << " (crash=" << injector.fired(fault::FaultKind::kCrash)
                    << " delay=" << injector.fired(fault::FaultKind::kDelay)
                    << " dup=" << injector.fired(fault::FaultKind::kDuplicate)
                    << " stall=" << injector.fired(fault::FaultKind::kStall)
                    << " corrupt_payload="
                    << injector.fired(fault::FaultKind::kCorruptPayload)
                    << " corrupt_checkpoint="
                    << injector.fired(fault::FaultKind::kCorruptCheckpoint)
                    << " truncate_spill="
                    << injector.fired(fault::FaultKind::kTruncateSpill)
                    << ")  integrity(verified=" << r.integrity.frames_verified
                    << " detected=" << r.integrity.frames_dropped
                    << " healed=" << r.integrity.heals
                    << ")  respawns=" << rs.respawns
                    << " replays=" << rs.round_replays
                    << " reassigned=" << rs.reassigned_blocks
                    << " drained=" << rs.drained_messages
                    << " ckpt_puts=" << rs.checkpoint_puts
                    << " ckpt_restores=" << rs.checkpoint_restores << "\n";
        }
      } catch (const fault::RecoveryError& e) {
        const std::string what = e.what();
        const bool total_loss = what.find("no live ranks") != std::string::npos;
        total_loss ? ++lost : ++errored;
        std::cout << "seed " << seed << " " << fault::recoveryModeName(mode)
                  << ": " << (total_loss ? "lost (every rank dead)" : "ERROR")
                  << "  " << what << "\n";
      } catch (const std::exception& e) {
        ++errored;
        std::cout << "seed " << seed << " " << fault::recoveryModeName(mode)
                  << ": ERROR  " << e.what() << "\n";
      }
    }
  }

  std::cout << "msc_chaos: " << runs << " runs, " << matched << " matched, "
            << lost << " lost, " << diverged << " diverged, " << errored
            << " errored\n";
  return (diverged == 0 && errored == 0) ? 0 : 1;
}
