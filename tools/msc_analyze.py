#!/usr/bin/env python3
"""msc_analyze: annotation-driven concurrency static analysis for src/.

The runtime's share-nothing contract is audited dynamically (msc::audit,
the TSan matrix) -- which checks the interleavings a run happens to
execute. This tool checks the ones it could execute, statically, driven
by the annotation vocabulary in src/core/annotations.hpp:

  lockset         every access to an MSC_GUARDED_BY(mu) field must be
                  under a lock_guard/unique_lock/scoped_lock of that
                  mutex or inside an MSC_REQUIRES(mu) function.
  atomic-relaxed  memory_order_relaxed is permitted only on members
                  annotated MSC_RELAXED_TALLY (statistics slots that
                  never order other memory).
  atomic-handoff  an atomic member used as a cross-thread handoff
                  (it has release stores or acquire loads anywhere in
                  the tree) must never mix in relaxed operations.
  cv-predicate    condition_variable waits must use the predicate
                  overload, so the guarded condition is re-checked
                  under the lock on every wakeup.
  wire-pointer    raw pointer/reference members must not appear in
                  wire structs (types sent via sendValue/recvValue or
                  marked `// msc-analyze: wire-struct`), and memcpy
                  into a payload's .data() must not serialize a
                  pointer -- the static counterpart of the TagAlloc
                  runtime ownership check.
  tag-overlap     message-tag families declared with
                  `// msc-analyze: tag-space(...)` annotations must be
                  injective over their (round, attempt, ...) budgets
                  and pairwise disjoint within each tag space.
  tag-untracked   every tag argument at a Comm call site must trace
                  back to an annotated tag family (or par::kAny); an
                  unannotated literal has no disjointness proof.

This is a flow-lite analyzer in the msc_lint house style: a tokenized
source model (comments/strings blanked, brace scopes tracked, class
fields collected) -- not a compiler. Receiver types are resolved from
local declarations when findable; an unresolvable receiver falls back
to by-name candidate matching, and is skipped only when the member is
a declared tally slot. Clang builds can additionally turn the same
annotations into compiler-checked thread-safety attributes (-DMSC_TSA,
see CMakeLists.txt); gcc has no such analysis, so this tool is the
enforced gate there, wired into tier-1 ctest under the `analyze` label.

Rules are machine-readable: `--rules` emits the table as JSON.
Suppression requires an inline justification (the reason is NOT
optional, unlike msc_lint):

    // msc-analyze: allow(<rule-id>): <reason>

on the offending line or the comment block directly above. The
GRANDFATHER table must be EMPTY on every mainline commit.

`--self-check --fixtures DIR` analyzes a seeded-defect tree instead
of src/ and verifies that every `// msc-analyze: expect(<rule-id>)`
marker is matched by a finding of that rule on that line, nothing
unexpected fires, and every rule is exercised at least once -- the
proof that each pass can actually fail.

Exit status: 0 clean, 1 violations/self-check mismatch, 2 usage error.
"""

import argparse
import itertools
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintlib  # noqa: E402

TOOL = "msc_analyze"

RULES = [
    {"id": "lockset", "severity": "error",
     "description": "Access to an MSC_GUARDED_BY(mu) field outside a "
                    "lock_guard/unique_lock/scoped_lock of mu and outside any "
                    "MSC_REQUIRES(mu) function."},
    {"id": "atomic-relaxed", "severity": "error",
     "description": "memory_order_relaxed on an atomic not annotated "
                    "MSC_RELAXED_TALLY; relaxed is reserved for statistics "
                    "slots that never order other memory."},
    {"id": "atomic-handoff", "severity": "error",
     "description": "Relaxed operation on an atomic that is elsewhere used "
                    "as an acquire/release handoff; a flag or pointer publish "
                    "must pair release stores with acquire loads only."},
    {"id": "cv-predicate", "severity": "error",
     "description": "condition_variable wait without a predicate; the guarded "
                    "condition must be re-checked under the lock on every "
                    "wakeup."},
    {"id": "wire-pointer", "severity": "error",
     "description": "Raw pointer/reference stored into a message payload or "
                    "wire struct; cross-rank data must travel by value "
                    "(share-nothing escape)."},
    {"id": "tag-overlap", "severity": "error",
     "description": "Two message-tag families in the same tag space can "
                    "produce the same tag value within their declared "
                    "budgets, or one family is not injective."},
    {"id": "tag-untracked", "severity": "error",
     "description": "Tag argument at a Comm call site does not trace back to "
                    "an annotated tag family (or an identifier in a tag "
                    "expression cannot be resolved)."},
]
RULE_IDS = [r["id"] for r in RULES]

# Debt accepted at rule-introduction time. MUST be empty on mainline.
GRANDFATHER = {}

ALLOW_RE = lintlib.allow_regex("msc-analyze", require_reason=True)
EXPECT_RE = re.compile(r"msc-analyze:\s*expect\(([a-z-]+)\)")
TAG_SPACE_RE = re.compile(r"msc-analyze:\s*tag-space\(([^)]*)\)(?::\s*(.*))?")
WIRE_STRUCT_RE = re.compile(r"msc-analyze:\s*wire-struct")
BOUND_RE = re.compile(r"([A-Za-z_]\w*)\s+in\s+\[\s*(-?\w+)\s*,\s*(-?\w+)\s*\)")

TYPE_KEYWORDS = {
    "auto", "const", "constexpr", "static", "mutable", "inline", "return",
    "if", "else", "for", "while", "do", "switch", "case", "new", "delete",
    "throw", "sizeof", "struct", "class", "enum", "using", "typedef",
    "typename", "template", "int", "bool", "char", "float", "double", "void",
    "unsigned", "signed", "long", "short", "namespace", "operator", "public",
    "private", "protected", "friend", "virtual", "override", "final",
    "noexcept", "explicit", "default", "break", "continue", "goto", "try",
    "catch", "this", "nullptr", "true", "false", "alignas",
}

BUILTIN_TYPES = {"int", "bool", "char", "float", "double", "unsigned",
                 "signed", "long", "short"}

ATOMIC_OPS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
              "fetch_or", "fetch_and", "fetch_xor", "compare_exchange_weak",
              "compare_exchange_strong")
ATOMIC_OP_RE = re.compile(r"\.\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
ORDER_RE = re.compile(r"memory_order_(relaxed|acquire|release|acq_rel|seq_cst|consume)")
RECEIVER_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\][]*\])?\s*\.?\s*$")
CV_DECL_RE = re.compile(r"std\s*::\s*condition_variable(?:_any)?\s+([A-Za-z_]\w*)")
CV_WAIT_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(wait|wait_for|wait_until)\s*\(")
LOCK_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^;<>]*>)?\s+([A-Za-z_]\w*)\s*[({]")
CLASS_HEAD_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")
GUARDED_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*MSC_GUARDED_BY\s*\(([^()]*)\)")
REQUIRES_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?MSC_REQUIRES\s*\(([^()]*)\)")
CONSTEXPR_INT_RE = re.compile(
    r"\b(?:inline\s+)?constexpr\s+(?:std\s*::\s*)?(?:int|std::int32_t|int32_t|"
    r"std::int64_t|int64_t|long)\s+([A-Za-z_]\w*)\s*=\s*(-?\d+)\s*;")
MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
COMM_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(send|recv|tryRecv|probe|sendValue|recvValue)"
    r"\s*(?:<\s*[\w:<>,\s]*\s*>)?\s*\(")


def norm_expr(e):
    """Canonical mutex/member path: whitespace dropped, -> folded to .,
    this-qualification and address-of stripped."""
    e = re.sub(r"\s+", "", e).replace("->", ".")
    if e.startswith("this."):
        e = e[5:]
    return e.lstrip("&")


def base_type(t):
    """`const std::vector<RankBytes>*` -> ('vector', full). The base
    name keys class lookup; the full string keeps pointer-ness."""
    full = t.strip()
    t = re.sub(r"<.*", "", full)
    t = t.split("::")[-1].strip().lstrip("*&").rstrip("*& ")
    return t, full


def split_args(s):
    """Top-level comma split of an argument list body."""
    out, depth, cur = [], 0, []
    for ch in s:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur or out:
        out.append("".join(cur))
    return [a.strip() for a in out]


def match_paren(text, open_pos):
    """Offset of the ) matching text[open_pos] == '(', or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


class SourceFile:
    def __init__(self, path, rel):
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.rel = rel
        self.raw_lines = self.text.split("\n")
        self.stripped = lintlib.strip_comments_and_strings(self.text)
        self.lines = self.stripped.split("\n")
        self.line_start = [0]
        for ln in self.lines[:-1]:
            self.line_start.append(self.line_start[-1] + len(ln) + 1)
        self._scan_braces()

    def line_of(self, offset):
        import bisect
        return bisect.bisect_right(self.line_start, offset)

    def _scan_braces(self):
        """One forward scan classifying every brace pair. Produces
        self.depth[] per char and self.scopes: records with kind in
        {ns, class, enum, func, lambda, block, init}."""
        text = self.stripped
        self.depth = [0] * (len(text) + 1)
        self.scopes = []
        stack = []
        d = 0
        for i, ch in enumerate(text):
            self.depth[i] = d
            if ch == "{":
                head = self._head_before(i)
                kind, name = self._classify(head, stack)
                rec = {"kind": kind, "name": name, "head": head,
                       "open": i, "close": None,
                       "class_stack": [s["name"] for s in stack if s["kind"] == "class"]}
                stack.append(rec)
                self.scopes.append(rec)
                d += 1
            elif ch == "}":
                d = max(0, d - 1)
                if stack:
                    stack.pop()["close"] = i
        self.depth[len(text)] = d
        for rec in self.scopes:
            if rec["close"] is None:
                rec["close"] = len(text)

    def _head_before(self, brace_pos):
        """Statement text preceding a `{`, skipping back over balanced
        parens (so a for-loop's internal semicolons do not cut it)."""
        text = self.stripped
        i = brace_pos - 1
        pdepth = 0
        lo = max(0, brace_pos - 4000)
        while i >= lo:
            c = text[i]
            if c == ")":
                pdepth += 1
            elif c == "(":
                if pdepth == 0:
                    break
                pdepth -= 1
            elif pdepth == 0 and c in ";{}":
                break
            i -= 1
        return text[i + 1:brace_pos].strip()

    def _classify(self, head, stack):
        head = re.sub(r"\balignas\s*\([^()]*\)", "", head)
        if re.search(r"\bnamespace\b", head) and "(" not in head:
            return "ns", None
        if re.search(r"\benum\b", head):
            return "enum", None
        cm = None
        for m in CLASS_HEAD_RE.finditer(head):
            rest = head[m.end():]
            if not re.search(r"[(){}=]", rest):
                cm = m
        if cm is not None:
            return "class", cm.group(2)
        # A function/lambda body follows a closing paren (possibly with
        # const/noexcept/trailing-return/try tokens after it).
        tail = re.sub(r"\)\s*(const|noexcept|override|final|mutable|try|"
                      r"->\s*[\w:<>,&*\s]+)*\s*$", ")", head)
        if tail.endswith(")"):
            op = None
            depth = 0
            for i in range(len(tail) - 1, -1, -1):
                if tail[i] == ")":
                    depth += 1
                elif tail[i] == "(":
                    depth -= 1
                    if depth == 0:
                        op = i
                        break
            if op is not None:
                before = tail[:op].rstrip()
                if before.endswith("]"):
                    return "lambda", None
                nm = re.search(r"([A-Za-z_~]\w*)\s*$", before)
                if nm and nm.group(1) not in ("if", "for", "while", "switch",
                                              "catch", "return"):
                    qual = re.search(r"([A-Za-z_]\w*)\s*::\s*" + nm.group(1) + r"\s*$",
                                     before)
                    in_control = nm.group(1) in TYPE_KEYWORDS
                    if not in_control:
                        return "func", {"name": nm.group(1),
                                        "qual": qual.group(1) if qual else None,
                                        "params": tail[op + 1:-1]}
        if re.match(r"^(if|else|for|while|do|switch|try|catch)\b", head) or head == "":
            return "block", None
        if head.endswith("=") or head.endswith("return") or head.endswith(","):
            return "init", None
        return "block", None

    def stmt_at(self, lineno, max_lines=12):
        """Join stripped lines from `lineno` (1-based) until one
        contains ';' or '{'."""
        parts = []
        for i in range(lineno - 1, min(lineno - 1 + max_lines, len(self.lines))):
            parts.append(self.lines[i])
            if ";" in self.lines[i] or "{" in self.lines[i]:
                break
        return " ".join(parts)


class ClassInfo:
    def __init__(self, name):
        self.name = name
        self.guarded = {}   # member -> set of mutex exprs (normalized)
        self.tally = set()  # member names
        self.members = []   # (type_str, member, rel, line)


class Model:
    """The tree-wide source model: classes with guarded/tally members,
    REQUIRES functions, constexpr ints, cv names, tag families."""

    def __init__(self):
        self.files = []           # SourceFile
        self.classes = {}         # name -> ClassInfo (merged across files)
        self.requires = {}        # (class|None, func) -> set of mutex exprs
        self.consts = {}          # constexpr int name -> value (None = conflict)
        self.cv_names = set()
        self.tag_families = []    # dicts: file,line,spaces,exprs,bounds,name
        self.tag_symbols = set()  # names that denote annotated tag values
        self.covered_locals = {}  # rel -> set of local var names
        self.wire_structs = set() # class names whose members must be pointer-free
        self.guarded_members = {} # member -> list of (class, mutex expr)
        self.tally_names = set()

    def cls(self, name):
        if name not in self.classes:
            self.classes[name] = ClassInfo(name)
        return self.classes[name]


# --------------------------------------------------------------------------
# Pass 1: collection
# --------------------------------------------------------------------------

def collect_file(sf, model):
    # condition_variable names and constexpr ints (tree-wide pools).
    for m in CV_DECL_RE.finditer(sf.stripped):
        model.cv_names.add(m.group(1))
    for m in CONSTEXPR_INT_RE.finditer(sf.stripped):
        name, val = m.group(1), int(m.group(2))
        if name in model.consts and model.consts[name] != val:
            model.consts[name] = None  # conflicting definitions: unusable
        elif name not in model.consts:
            model.consts[name] = val

    # Class member tables: statements at a class scope's top level.
    for rec in sf.scopes:
        if rec["kind"] != "class":
            continue
        ci = model.cls(rec["name"])
        open_line = sf.line_of(rec["open"])
        close_line = sf.line_of(rec["close"])
        inner = sf.depth[rec["open"]] + 1
        ln = open_line
        while ln <= close_line and ln <= len(sf.lines):
            line = sf.lines[ln - 1]
            first = len(line) - len(line.lstrip())
            if not line.strip() or sf.depth[sf.line_start[ln - 1] + first] != inner:
                ln += 1
                continue
            stmt = sf.stmt_at(ln)
            for g in GUARDED_RE.finditer(stmt):
                ci.guarded.setdefault(g.group(1), set()).add(norm_expr(g.group(2)))
            if "MSC_RELAXED_TALLY" in stmt:
                bare = stmt.replace("MSC_RELAXED_TALLY", " ")
                nm = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*"
                               r"(?:\{[^{}]*\})?\s*(?:=[^;]*)?;", bare)
                if nm:
                    ci.tally.add(nm.group(1))
            # Plain data members (for the wire-pointer pass). Lines with
            # '(' are declarations of functions (or std::function members,
            # which are not raw pointers) and are skipped.
            if "(" not in stmt and ";" in stmt:
                dm = re.match(
                    r"\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+)*"
                    r"((?:const\s+)?[A-Za-z_][\w:<>,\s]*?[*&]*)\s+"
                    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\{[^{}]*\})?"
                    r"\s*(?:=[^;]*)?;", stmt)
                if dm and dm.group(2) not in TYPE_KEYWORDS:
                    ci.members.append((dm.group(1).strip(), dm.group(2),
                                       sf.rel, ln))
            ln += 1
        # wire-struct marker on/above the class head line.
        head_line = sf.line_of(rec["open"])
        for probe in range(max(1, head_line - 3), head_line + 1):
            if WIRE_STRUCT_RE.search(sf.raw_lines[probe - 1]):
                model.wire_structs.add(rec["name"])

    # MSC_REQUIRES functions: declarations and definitions. The
    # attribute may sit on a continuation line, so walk back to the
    # start of the statement it belongs to before joining.
    for ln, line in enumerate(sf.lines, 1):
        if "MSC_REQUIRES" not in line:
            continue
        start = ln
        while start > 1:
            prev = sf.lines[start - 2].rstrip()
            if not prev or prev.endswith((";", "{", "}")):
                break
            start -= 1
        stmt = sf.stmt_at(start)
        for m in REQUIRES_RE.finditer(stmt):
            fname = m.group(1)
            exprs = {norm_expr(e) for e in split_args(m.group(3)) if e.strip()}
            qual = re.search(r"([A-Za-z_]\w*)\s*::\s*" + fname, stmt)
            cls = qual.group(1) if qual else None
            if cls is None:
                off = sf.line_start[ln - 1]
                for rec in sf.scopes:
                    if rec["kind"] == "class" and rec["open"] <= off <= rec["close"]:
                        cls = rec["name"]
            model.requires.setdefault((cls, fname), set()).update(exprs)
            model.requires.setdefault((None, fname), set()).update(exprs)

    # sendValue<T>/recvValue<T> explicit instantiations mark T as wire.
    for m in re.finditer(r"\b(?:sendValue|recvValue)\s*<\s*([\w:]+)\s*>", sf.stripped):
        model.wire_structs.add(base_type(m.group(1))[0])

    # Tag-space annotations.
    for ln, raw in enumerate(sf.raw_lines, 1):
        tm = TAG_SPACE_RE.search(raw)
        if tm is None:
            continue
        spaces = [s.strip() for s in tm.group(1).split(",") if s.strip()]
        bounds = {}
        ok = True
        for var, lo, hi in BOUND_RE.findall(tm.group(2) or ""):
            lo_v = model.consts.get(lo) if not re.match(r"^-?\d+$", lo) else int(lo)
            hi_v = model.consts.get(hi) if not re.match(r"^-?\d+$", hi) else int(hi)
            if lo_v is None or hi_v is None:
                ok = False
            bounds[var] = (lo_v, hi_v)
        target = ln if sf.lines[ln - 1].strip() else ln + 1
        while target <= len(sf.lines) and not sf.lines[target - 1].strip():
            target += 1
        if target > len(sf.lines):
            continue
        stmt = sf.stmt_at(target)
        model.tag_families.append({
            "file": sf, "line": target, "spaces": spaces, "bounds": bounds,
            "stmt": stmt, "bounds_ok": ok,
        })


def resolve_tag_families(model):
    """Turn each annotation target into named symbols + expressions."""
    for fam in model.tag_families:
        stmt, sf, ln = fam["stmt"], fam["file"], fam["line"]
        exprs, name = [], None
        fm = re.match(r"\s*(?:inline\s+)?(?:constexpr\s+)?(?:static\s+)?int\s+"
                      r"([A-Za-z_]\w*)\s*\(", stmt)
        cm = re.match(r"\s*(?:inline\s+)?constexpr\s+int\s+([A-Za-z_]\w*)\s*=\s*"
                      r"([^;]+);", stmt)
        lm = re.match(r"\s*(?:const\s+)?int\s+([A-Za-z_]\w*)\s*=\s*([^;]+);", stmt)
        rm = re.match(r"\s*for\s*\(\s*(?:const\s+)?int\s+([A-Za-z_]\w*)\s*:\s*"
                      r"\{([^}]*)\}", stmt)
        if fm and "=" not in stmt.split("(")[0]:
            name = fm.group(1)
            # First return expression in the function body.
            for probe in range(ln, min(ln + 12, len(sf.lines) + 1)):
                r = re.search(r"\breturn\s+([^;]+);", sf.lines[probe - 1])
                if r:
                    exprs = [r.group(1)]
                    break
        elif cm:
            name, exprs = cm.group(1), [cm.group(2)]
        elif rm:
            name, exprs = rm.group(1), split_args(rm.group(2))
        elif lm:
            name, exprs = lm.group(1), [lm.group(2)]
        fam["name"] = name
        fam["exprs"] = [e.strip() for e in exprs]
        if name:
            model.tag_symbols.add(name)
            model.covered_locals.setdefault(sf.rel, set()).add(name)


def collect_covered_locals(model):
    """Local tag variables whose initializer references an annotated
    tag symbol are covered (no new family; the symbol's budget
    applies). Two sweeps give one level of local-to-local chaining."""
    decl = re.compile(r"(?:const\s+)?int\s+([A-Za-z_]\w*)\s*=\s*([^;]+);")
    rfor = re.compile(r"for\s*\(\s*(?:const\s+)?int\s+([A-Za-z_]\w*)\s*:\s*([^)]+)\)")
    for _ in range(2):
        for sf in model.files:
            covered = model.covered_locals.setdefault(sf.rel, set())
            for line in sf.lines:
                for m in itertools.chain(decl.finditer(line), rfor.finditer(line)):
                    idents = set(re.findall(r"[A-Za-z_]\w*", m.group(2)))
                    if idents & (model.tag_symbols | covered):
                        covered.add(m.group(1))


def build_flat_locals(sf):
    """File-level var -> (base_type, full_type) map from reference
    bindings, value/pointer declarations, range-fors and parameter
    lists. Conflicting redeclarations become unresolvable (None)."""
    out = {}

    def put(t, v):
        b, full = base_type(t)
        if not b or v in TYPE_KEYWORDS:
            return
        if b in TYPE_KEYWORDS and b not in BUILTIN_TYPES:
            return
        if v in out and out[v] and out[v][0] != b:
            out[v] = None
        elif v not in out:
            out[v] = (b, full)

    pats = [
        re.compile(r"\b((?:[A-Za-z_][\w:]*\s*::\s*)*[A-Za-z_]\w*(?:<[^<>;]*>)?)"
                   r"\s*&\s*([A-Za-z_]\w*)\s*[=,):]"),
        re.compile(r"\b((?:[A-Za-z_][\w:]*\s*::\s*)*[A-Za-z_]\w*(?:<[^<>;]*>)?"
                   r"\s*\*)\s*(?:const\s+)?([A-Za-z_]\w*)\s*[=,);{]"),
        re.compile(r"\b([A-Za-z_][\w:]*)\s+([A-Za-z_]\w*)\s*[;={(),]"),
    ]
    for line in sf.lines:
        for p in pats:
            for m in p.finditer(line):
                put(m.group(1), m.group(2))
    return out


# --------------------------------------------------------------------------
# Pass 2: checks
# --------------------------------------------------------------------------

class Analysis:
    def __init__(self, model):
        self.model = model
        self.findings = []
        self.atomic_census = {}  # (class|None, member) -> {"orders": set, "relaxed_sites": []}
        model.guarded_members = {}
        model.tally_names = set()
        # Member names that exist UNguarded in some class: an
        # unresolved receiver bearing such a name might be that class,
        # so the by-name fallback must not demand a lock for it.
        self.ambiguous_members = set()
        for ci in model.classes.values():
            for mem, mus in ci.guarded.items():
                for mu in mus:
                    model.guarded_members.setdefault(mem, []).append((ci.name, mu))
            model.tally_names.update(ci.tally)
            self.ambiguous_members.update(ci.tally)
            self.ambiguous_members.update(m for (_t, m, _r, _l) in ci.members)

    def report(self, sf, lineno, rule, message):
        if rule in lintlib.allowed_rules_for_line(sf.raw_lines, lineno, ALLOW_RE):
            return
        f = lintlib.Finding(sf.rel, lineno, rule, message)
        if GRANDFATHER.get(f.key()) == rule:
            return
        self.findings.append(f)


def check_lockset(sf, model, an, flat):
    """Walk each top-level function scope in statement order, tracking
    lock acquisitions, and require every guarded-member access to be
    covered by a held lock or an MSC_REQUIRES contract."""
    funcs = [r for r in sf.scopes if r["kind"] == "func"]
    # Only outermost functions: lambdas and local functions are walked
    # as part of their parent (they inherit the held lockset).
    outer = [f for f in funcs
             if not any(g is not f and g["kind"] in ("func",)
                        and g["open"] < f["open"] and f["close"] <= g["close"]
                        for g in funcs)]
    for fn in outer:
        name = fn["name"]["name"]
        cls = fn["name"]["qual"]
        if cls is None and fn["class_stack"]:
            cls = fn["class_stack"][-1]
        held = []   # dicts: {mutexes:set, var:str|None, depth:int, active:bool}
        req = model.requires.get((cls, name)) or model.requires.get((None, name))
        if req:
            held.append({"mutexes": set(req), "var": None,
                         "depth": sf.depth[fn["open"]], "active": True})
        start_line = sf.line_of(fn["open"])
        end_line = sf.line_of(fn["close"])
        for ln in range(start_line, min(end_line, len(sf.lines)) + 1):
            line = sf.lines[ln - 1]
            if not line.strip():
                continue
            first = len(line) - len(line.lstrip())
            d = sf.depth[sf.line_start[ln - 1] + first]
            held = [h for h in held if d >= h["depth"]]
            lm = LOCK_DECL_RE.search(line)
            if lm:
                op = line.find("(", lm.start())
                if op < 0:
                    op = line.find("{", lm.start())
                close = None
                pd = 0
                openc, closec = line[op], {"(": ")", "{": "}"}[line[op]]
                for i in range(op, len(line)):
                    if line[i] == openc:
                        pd += 1
                    elif line[i] == closec:
                        pd -= 1
                        if pd == 0:
                            close = i
                            break
                if close is not None:
                    args = split_args(line[op + 1:close])
                    mus = {norm_expr(a) for a in args
                           if a and not a.strip().startswith("std::")}
                    if not any("defer_lock" in a for a in args) and mus:
                        held.append({"mutexes": mus, "var": lm.group(2),
                                     "depth": d, "active": True})
            for h in held:
                # An unlock() inside a nested branch (the early-return
                # idiom) does not outlive that branch: reactivate when
                # its scope closes.
                if not h["active"] and d < h.get("inactive_depth", -1):
                    h["active"] = True
            for um in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*(unlock|lock)\s*\(", line):
                for h in held:
                    if h["var"] == um.group(1):
                        h["active"] = um.group(2) == "lock"
                        if not h["active"]:
                            h["inactive_depth"] = d
            held_set = set()
            for h in held:
                if h["active"]:
                    held_set |= h["mutexes"]
            # Guarded-member accesses on this line.
            for mem, defs in model.guarded_members.items():
                for am in re.finditer(r"\b" + re.escape(mem) + r"\b", line):
                    after = line[am.end():].lstrip()
                    if after.startswith("("):
                        continue  # a call, not a data member
                    before = line[:am.start()]
                    if re.search(r"MSC_GUARDED_BY\s*\($", before):
                        continue
                    pm = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", before)
                    complex_recv = (not pm) and re.search(r"(?:\.|->)\s*$", before)
                    required = set()
                    if pm:
                        obj = pm.group(1)
                        if obj in ("std", "this"):
                            if obj != "this":
                                continue
                            obj = None
                        t = flat.get(pm.group(1)) if obj else None
                        if obj and t:
                            ci = model.classes.get(t[0])
                            if ci is None or mem not in ci.guarded:
                                continue  # resolved to a class without this guard
                            required = {norm_expr(obj + "." + mu)
                                        for mu in ci.guarded[mem]}
                        elif obj:
                            if mem in an.ambiguous_members:
                                continue  # unguarded member of this name exists
                            required = {norm_expr(obj + "." + mu)
                                        for (_c, mu) in defs}
                        else:  # this->mem
                            if cls and mem in model.classes.get(cls, ClassInfo("")).guarded:
                                required = set(model.classes[cls].guarded[mem])
                            else:
                                continue
                    elif complex_recv:
                        continue  # unresolvable receiver expression (flow-lite)
                    else:
                        ci = model.classes.get(cls) if cls else None
                        if ci is None or mem not in ci.guarded:
                            continue  # a local/parameter shadowing the name
                        required = set(ci.guarded[mem])
                    if required and not (required & held_set):
                        an.report(sf, ln, "lockset",
                                  f"'{mem}' is guarded by "
                                  f"{'/'.join(sorted(required))} but no such lock "
                                  f"is held here (hold a lock_guard/unique_lock, "
                                  f"or mark the function MSC_REQUIRES)")


def build_aliases(sf):
    """`auto& slot = ranks_[r]->gauges[g];` and range-for bindings make
    the atomic's member name invisible at the operation site. Map each
    auto& alias to the candidate member name(s) it can denote (two
    sweeps give alias-of-alias chaining, e.g. `row` over `hists` then
    `a` over `row`)."""
    out = {}
    pat_eq = re.compile(r"\bauto\s*&\s*([A-Za-z_]\w*)\s*=\s*([^;]+);")
    pat_for = re.compile(r"for\s*\(\s*(?:const\s+)?auto\s*&\s*([A-Za-z_]\w*)"
                         r"\s*:\s*([^;{]+?)\s*\)\s*[{;a-zA-Z]")
    for _ in range(2):
        for m in itertools.chain(pat_eq.finditer(sf.stripped),
                                 pat_for.finditer(sf.stripped)):
            rhs = m.group(2)
            targets = set()
            members = re.findall(r"(?:\.|->)\s*([A-Za-z_]\w*)", rhs)
            if members:
                targets.add(members[-1])
            else:
                bare = re.match(r"\s*([A-Za-z_]\w*)", rhs)
                if bare and bare.group(1) in out:
                    targets |= out[bare.group(1)]
            if targets:
                out.setdefault(m.group(1), set()).update(targets)
    return out


def check_atomics(sf, model, an, flat):
    text = sf.stripped
    aliases = build_aliases(sf)
    for m in ATOMIC_OP_RE.finditer(text):
        op = m.group(1)
        recv = RECEIVER_RE.search(text[:m.start()].rstrip()[-200:])
        member = recv.group(1) if recv else None
        if member is None or member in TYPE_KEYWORDS:
            continue
        if member in aliases:
            cands = aliases[member]
            if cands and all(c in model.tally_names for c in cands):
                continue  # auto& alias of annotated tally slot(s)
            member = sorted(cands)[0] if len(cands) == 1 else member
        open_pos = text.find("(", m.end() - 1)
        close_pos = match_paren(text, open_pos)
        args = text[open_pos + 1:close_pos] if close_pos > 0 else ""
        orders = set(ORDER_RE.findall(args))
        lineno = sf.line_of(m.start())
        # Resolve the receiver's class: `rb.allocated.load(...)` -> rb's
        # type. A complex receiver (array element, call result) stays
        # unresolved and falls into the by-name bucket.
        pre = text[:m.start()].rstrip()
        pre = pre[:len(pre) - len(member) - (len(pre) - len(pre.rstrip()))] \
            if pre.endswith(member) else pre
        owner = None
        om = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*" + re.escape(member)
                       + r"\s*(?:\[[^\][]*\])?\s*$", text[:m.start()])
        if om and om.group(1) not in TYPE_KEYWORDS:
            t = flat.get(om.group(1))
            if t:
                owner = t[0]
        elif not re.search(r"(?:\.|->)\s*" + re.escape(member)
                           + r"\s*(?:\[[^\][]*\])?\s*$", text[:m.start()]):
            # Bare member access: the enclosing class.
            off = m.start()
            for rec in sf.scopes:
                if rec["kind"] == "func" and rec["open"] <= off <= rec["close"]:
                    owner = rec["name"]["qual"] or (rec["class_stack"][-1]
                                                   if rec["class_stack"] else None)
        is_tally = False
        if owner is not None and owner in model.classes:
            is_tally = member in model.classes[owner].tally
        elif owner is None:
            is_tally = member in model.tally_names
        key = (owner, member)
        c = an.atomic_census.setdefault(key, {"orders": set(), "relaxed": []})
        if not is_tally:
            for o in orders:
                c["orders"].add((op, o))
            if "relaxed" in orders:
                c["relaxed"].append((sf, lineno))
        if "relaxed" in orders and not is_tally:
            an.report(sf, lineno, "atomic-relaxed",
                      f"memory_order_relaxed on '{member}', which is not an "
                      f"MSC_RELAXED_TALLY slot; use acquire/release (or annotate "
                      f"the member as a tally if it never orders other memory)")


def finish_atomics(an):
    """Handoff pairing: a member with acquire loads or release stores
    anywhere must not also be operated on relaxed."""
    for (owner, member), c in sorted(an.atomic_census.items(),
                                     key=lambda kv: (str(kv[0][0]), kv[0][1])):
        has_sync = any(o in ("acquire", "release", "acq_rel", "seq_cst")
                       for (_op, o) in c["orders"])
        if has_sync:
            for sf, ln in c["relaxed"]:
                an.report(sf, ln, "atomic-handoff",
                          f"relaxed operation on '{member}' which is used as an "
                          f"acquire/release handoff elsewhere; the pairing must "
                          f"be complete or the handoff is not a happens-before")


def check_cv_waits(sf, model, an):
    text = sf.stripped
    for m in CV_WAIT_RE.finditer(text):
        if m.group(1) not in model.cv_names:
            continue
        open_pos = text.find("(", m.end() - 1)
        close_pos = match_paren(text, open_pos)
        if close_pos < 0:
            continue
        args = split_args(text[open_pos + 1:close_pos])
        need = 2 if m.group(2) == "wait" else 3
        if len([a for a in args if a]) < need:
            an.report(sf, sf.line_of(m.start()), "cv-predicate",
                      f"{m.group(2)}() without a predicate: the guarded "
                      f"condition must be re-checked under the lock on every "
                      f"wakeup (use the predicate overload)")


def check_wire(sf, model, an, flat):
    # memcpy of a pointer into a payload buffer.
    text = sf.stripped
    for m in MEMCPY_RE.finditer(text):
        open_pos = text.find("(", m.end() - 1)
        close_pos = match_paren(text, open_pos)
        if close_pos < 0:
            continue
        args = split_args(text[open_pos + 1:close_pos])
        if len(args) < 3 or ".data()" not in args[0].replace(" ", ""):
            continue
        am = re.match(r"^&\s*([A-Za-z_]\w*)$", args[1].strip())
        if not am:
            continue
        t = flat.get(am.group(1))
        if t and t[1] and "*" in t[1]:
            an.report(sf, sf.line_of(m.start()), "wire-pointer",
                      f"memcpy serializes pointer '{am.group(1)}' into a "
                      f"message payload; a raw address is meaningless on the "
                      f"receiving rank (share-nothing escape)")


def check_wire_structs(model, an, sf_by_rel):
    seen = set()

    def walk(cname, depth):
        if cname in seen or depth > 2 or cname not in model.classes:
            return
        seen.add(cname)
        ci = model.classes[cname]
        for (tstr, mem, rel, ln) in ci.members:
            sf = sf_by_rel.get(rel)
            if sf is None:
                continue
            if "*" in tstr or tstr.rstrip().endswith("&"):
                an.report(sf, ln, "wire-pointer",
                          f"wire struct '{cname}' holds raw pointer/reference "
                          f"member '{mem}'; cross-rank data must travel by "
                          f"value")
            else:
                walk(base_type(tstr)[0], depth + 1)

    for w in sorted(model.wire_structs):
        seen.clear()
        walk(w, 0)


def eval_family(fam, model):
    """Enumerate every tag value a family can produce over its declared
    budget. Returns (values:set, problem:str|None, var_order)."""
    values = []
    for expr in fam["exprs"]:
        if not expr:
            return None, "annotation target has no tag expression", []
        idents = sorted(set(re.findall(r"[A-Za-z_]\w*", expr)))
        env_template = {}
        free = []
        for ident in idents:
            if ident in fam["bounds"]:
                free.append(ident)
            elif model.consts.get(ident) is not None:
                env_template[ident] = model.consts[ident]
            else:
                return None, f"cannot resolve identifier '{ident}' in tag " \
                             f"expression '{expr.strip()}'", []
        if not re.match(r"^[\w\s+\-*/%()]+$", expr):
            return None, f"unsupported tag expression '{expr.strip()}'", []
        if not fam["bounds_ok"]:
            return None, "unresolvable bound in tag-space annotation", []
        domains = []
        for v in free:
            lo, hi = fam["bounds"][v]
            domains.append(range(lo, hi))
        total = 1
        for d in domains:
            total *= max(1, len(d))
        if total > 1_000_000:
            return None, "tag budget too large to enumerate (>1e6)", []
        for combo in itertools.product(*domains) if domains else [()]:
            env = dict(env_template)
            env.update(zip(free, combo))
            values.append(eval(expr, {"__builtins__": {}}, env))  # noqa: S307
    return values, None, free


def check_tags(model, an):
    spaces = {}
    for fam in model.tag_families:
        vals, problem, _ = eval_family(fam, model)
        sf, ln = fam["file"], fam["line"]
        if problem:
            an.report(sf, ln, "tag-untracked", problem)
            continue
        fam["values"] = set(vals)
        if len(fam["values"]) != len(vals):
            an.report(sf, ln, "tag-overlap",
                      f"tag family '{fam.get('name') or '?'}' is not injective "
                      f"over its declared budget: distinct (round, attempt, "
                      f"...) tuples map to the same tag")
        targets = fam["spaces"]
        if "*" in targets:
            targets = ["*"]
        for s in targets:
            spaces.setdefault(s, []).append(fam)
    wildcard = spaces.pop("*", [])
    for sname, fams in sorted(spaces.items()):
        allfams = fams + wildcard
        for i in range(len(allfams)):
            for j in range(i + 1, len(allfams)):
                a, b = allfams[i], allfams[j]
                if "values" not in a or "values" not in b:
                    continue
                inter = a["values"] & b["values"]
                if inter:
                    later = b if (b["file"].rel, b["line"]) >= (a["file"].rel, a["line"]) else a
                    other = a if later is b else b
                    an.report(later["file"], later["line"], "tag-overlap",
                              f"tag families '{a.get('name')}' and "
                              f"'{b.get('name')}' overlap in space '{sname}': "
                              f"both can produce tag {min(inter)} "
                              f"(see {other['file'].rel}:{other['line']})")


def check_tag_sites(sf, model, an, flat):
    text = sf.stripped
    covered = model.covered_locals.get(sf.rel, set())
    for m in COMM_CALL_RE.finditer(text):
        recv_name = m.group(1)
        t = flat.get(recv_name)
        if recv_name != "comm" and not (t and t[0] == "Comm"):
            continue
        open_pos = text.find("(", m.end() - 1)
        close_pos = match_paren(text, open_pos)
        if close_pos < 0:
            continue
        args = split_args(text[open_pos + 1:close_pos])
        if len(args) < 2:
            continue
        tag_arg = args[1]
        lineno = sf.line_of(m.start())
        idents = set(re.findall(r"[A-Za-z_]\w*", tag_arg))
        if idents & (model.tag_symbols | covered | {"kAny"}):
            continue
        if not idents and re.match(r"^-?\d+$", tag_arg.strip()):
            an.report(sf, lineno, "tag-untracked",
                      f"literal tag {tag_arg.strip()} at a Comm call site has "
                      f"no tag-space annotation, so nothing proves it disjoint "
                      f"from the other tag families")
        elif idents:
            an.report(sf, lineno, "tag-untracked",
                      f"tag argument '{tag_arg.strip()}' does not trace back "
                      f"to an annotated tag family (annotate its definition "
                      f"with `// msc-analyze: tag-space(...)`)")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def build_model(paths, root):
    model = Model()
    for p in paths:
        model.files.append(SourceFile(p, os.path.relpath(p, root)))
    for sf in model.files:
        collect_file(sf, model)
    resolve_tag_families(model)
    collect_covered_locals(model)
    return model


def analyze(model):
    an = Analysis(model)
    sf_by_rel = {sf.rel: sf for sf in model.files}
    for sf in model.files:
        flat = build_flat_locals(sf)
        check_lockset(sf, model, an, flat)
        check_atomics(sf, model, an, flat)
        check_cv_waits(sf, model, an)
        check_wire(sf, model, an, flat)
        check_tag_sites(sf, model, an, flat)
    finish_atomics(an)
    check_wire_structs(model, an, sf_by_rel)
    check_tags(model, an)
    an.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return an


def collect_expectations(model):
    expects = set()
    for sf in model.files:
        for ln, raw in enumerate(sf.raw_lines, 1):
            for rule in EXPECT_RE.findall(raw):
                target = ln if sf.lines[ln - 1].strip() else ln + 1
                while target <= len(sf.lines) and not sf.lines[target - 1].strip():
                    target += 1
                expects.add((sf.rel, target, rule))
    return expects


def run_self_check(fixtures, root):
    paths = list(lintlib.walk_sources(fixtures))
    if not paths:
        print(f"{TOOL}: no fixture sources under {fixtures}", file=sys.stderr)
        return 2
    model = build_model(paths, fixtures)
    an = analyze(model)
    got = {(f.path, f.line, f.rule) for f in an.findings}
    expected = collect_expectations(model)
    missing = sorted(expected - got)
    surprise = sorted(got - expected)
    ok = True
    for (p, ln, rule) in missing:
        print(f"{TOOL}: self-check: expected [{rule}] at {p}:{ln} did not fire")
        ok = False
    for (p, ln, rule) in surprise:
        msg = next(f.message for f in an.findings
                   if (f.path, f.line, f.rule) == (p, ln, rule))
        print(f"{TOOL}: self-check: unexpected finding {p}:{ln}: [{rule}] {msg}")
        ok = False
    exercised = {r for (_p, _l, r) in expected}
    for rule in RULE_IDS:
        if rule not in exercised:
            print(f"{TOOL}: self-check: no fixture exercises rule '{rule}'")
            ok = False
    n = len(expected)
    if ok:
        print(f"{TOOL}: self-check OK: {n} seeded defect(s) across "
              f"{len(paths)} fixture file(s), all {len(RULE_IDS)} rules "
              f"exercised")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script's dir)")
    ap.add_argument("--rules", action="store_true",
                    help="print the rules table as JSON and exit")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON instead of text")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to take the file list from "
                    "(headers are still discovered by walking src/); "
                    "missing/unreadable falls back to the src/ walk")
    ap.add_argument("--self-check", action="store_true",
                    help="analyze the seeded-defect fixtures and verify every "
                    "expect() marker fires (requires --fixtures)")
    ap.add_argument("--fixtures", default=None,
                    help="fixture tree for --self-check")
    args = ap.parse_args()

    if args.rules:
        json.dump(lintlib.rules_payload(
            RULES,
            annotations=["MSC_CAPABILITY", "MSC_GUARDED_BY", "MSC_PT_GUARDED_BY",
                         "MSC_REQUIRES", "MSC_ACQUIRE", "MSC_RELEASE",
                         "MSC_EXCLUDES", "MSC_NO_TSA", "MSC_RELAXED_TALLY"],
            comment_directives=["msc-analyze: allow(rule): reason",
                                "msc-analyze: tag-space(spaces): var in [lo,hi)",
                                "msc-analyze: wire-struct",
                                "msc-analyze: expect(rule)"]),
            sys.stdout, indent=2)
        print()
        return 0

    if args.self_check:
        if not args.fixtures:
            print(f"{TOOL}: --self-check requires --fixtures", file=sys.stderr)
            return 2
        return run_self_check(os.path.abspath(args.fixtures), args.root)

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"{TOOL}: no src/ under {root}", file=sys.stderr)
        return 2

    paths = None
    source_desc = "src walk"
    if args.compile_commands:
        cc = lintlib.files_from_compile_commands(args.compile_commands, under=src)
        if cc:
            # The build's own TU list, plus every header (they carry the
            # annotations and the inline hot paths).
            headers = [p for p in lintlib.walk_sources(src, exts=(".hpp",))]
            paths = sorted(set(cc) | set(headers))
            source_desc = f"compile_commands ({len(cc)} TU) + header walk"
    if paths is None:
        paths = list(lintlib.walk_sources(src))

    model = build_model(paths, root)
    an = analyze(model)

    if not lintlib.check_grandfather(GRANDFATHER, TOOL, sys.stderr):
        return 1

    if args.json:
        json.dump([f.as_dict() for f in an.findings], sys.stdout, indent=2)
        print()
    else:
        for f in an.findings:
            print(f)
        nguard = sum(len(ci.guarded) for ci in model.classes.values())
        ntally = sum(len(ci.tally) for ci in model.classes.values())
        print(f"{TOOL}: {len(paths)} files ({source_desc}), "
              f"{nguard} guarded field(s), {ntally} tally slot(s), "
              f"{len(model.tag_families)} tag famil"
              f"{'y' if len(model.tag_families) == 1 else 'ies'}, "
              f"{len(an.findings)} violation(s)")
    return 1 if an.findings else 0


if __name__ == "__main__":
    sys.exit(main())
