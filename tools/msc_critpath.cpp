/// \file msc_critpath.cpp
/// Critical-path analyzer CLI: replay a causal journal's
/// happens-before DAG and print the per-stage / per-round blame
/// table (causal/critpath.hpp).
///
/// Two modes:
///   msc_critpath run.journal            analyze a saved journal
///   msc_critpath --run [--ranks=8 ...]  run the threaded pipeline
///                                       with a recorder attached and
///                                       analyze the live journal
///
/// Options:
///   --sim               with --run: use the simulated driver (the
///                       journal is synthesized from the model
///                       schedule; works for very wide rank counts)
///   --ranks=N           ranks for --run (default 8)
///   --blocks=N          blocks for --run (default 2*ranks)
///   --dims=N            cubic domain side for --run (default 33)
///   --journal-out=FILE  save the run's journal for later replay
///   --json[=FILE]       emit the machine-readable analysis (stdout
///                       or FILE) instead of the text table
///   --check             exit 1 unless the path attribution is
///                       self-consistent: path_seconds and the
///                       category sum each within 5% of wall time
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>

#include "causal/causal.hpp"
#include "causal/critpath.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace {

using namespace msc;

struct Args {
  std::string journal_path;  // analyze mode
  bool run = false;
  bool sim = false;
  int ranks = 8;
  int blocks = -1;
  int dims = 33;
  std::string journal_out;
  bool json = false;
  std::string json_path;
  bool check = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--run [--sim] [--ranks=N] [--blocks=N] [--dims=N]\n"
               "          [--journal-out=FILE]] [--json[=FILE]] [--check]\n"
               "          [journal-file]\n",
               argv0);
  std::exit(code);
}

bool valueOf(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    std::string v;
    if (std::strcmp(s, "--run") == 0)
      a.run = true;
    else if (std::strcmp(s, "--sim") == 0)
      a.sim = true;
    else if (std::strcmp(s, "--check") == 0)
      a.check = true;
    else if (std::strcmp(s, "--json") == 0)
      a.json = true;
    else if (valueOf(s, "--json", &v)) {
      a.json = true;
      a.json_path = v;
    } else if (valueOf(s, "--ranks", &v))
      a.ranks = std::atoi(v.c_str());
    else if (valueOf(s, "--blocks", &v))
      a.blocks = std::atoi(v.c_str());
    else if (valueOf(s, "--dims", &v))
      a.dims = std::atoi(v.c_str());
    else if (valueOf(s, "--journal-out", &v))
      a.journal_out = v;
    else if (std::strcmp(s, "--help") == 0 || std::strcmp(s, "-h") == 0)
      usage(argv[0], 0);
    else if (s[0] == '-')
      usage(argv[0], 2);
    else if (a.journal_path.empty())
      a.journal_path = s;
    else
      usage(argv[0], 2);
  }
  if (a.run == !a.journal_path.empty()) {
    std::fprintf(stderr, "error: pass exactly one of --run or a journal file\n");
    usage(argv[0], 2);
  }
  if (a.blocks < 0) a.blocks = 2 * a.ranks;
  return a;
}

causal::Journal runAndRecord(const Args& a) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{a.dims, a.dims, a.dims}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 3);
  cfg.nblocks = a.blocks;
  cfg.nranks = a.ranks;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(a.blocks);
  causal::Recorder::Options ropts;
  ropts.journal_clocks = a.ranks <= 64;  // wide sim runs: skip per-event copies
  causal::Recorder rec(a.ranks, ropts);
  cfg.causal = &rec;
  if (a.sim)
    pipeline::runSimPipeline(cfg);
  else
    pipeline::runThreadedPipeline(cfg);
  return rec.journal();
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  causal::Journal j;
  try {
    j = a.run ? runAndRecord(a) : causal::readJournalFile(a.journal_path);
    if (!a.journal_out.empty() && !causal::writeJournalFile(j, a.journal_out)) {
      std::fprintf(stderr, "error: cannot write %s\n", a.journal_out.c_str());
      return 1;
    }
    const causal::CriticalPath p = causal::analyzeCriticalPath(j);

    if (a.json && a.json_path.empty()) {
      causal::writeCritPathJson(p, std::cout);
      std::cout << "\n";
    } else {
      if (a.json) {
        std::ofstream os(a.json_path);
        if (!os) {
          std::fprintf(stderr, "error: cannot write %s\n", a.json_path.c_str());
          return 1;
        }
        causal::writeCritPathJson(p, os);
        os << "\n";
      }
      std::cout << blameTable(p);
    }

    if (a.check) {
      const double cat_sum =
          std::accumulate(p.by_category.begin(), p.by_category.end(), 0.0);
      const double tol = 0.05 * p.wall_seconds;
      const bool ok = p.wall_seconds > 0 &&
                      std::abs(p.path_seconds - p.wall_seconds) <= tol &&
                      std::abs(cat_sum - p.wall_seconds) <= tol;
      std::fprintf(stderr, "check: wall=%.6fs path=%.6fs categories=%.6fs -> %s\n",
                   p.wall_seconds, p.path_seconds, cat_sum, ok ? "OK" : "FAIL");
      if (!ok) return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
