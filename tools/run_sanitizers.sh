#!/usr/bin/env bash
# Build and run the full test suite across the sanitizer matrix:
#
#   none  thread  address  undefined
#
# Each configuration gets its own build directory (build-san-<name>)
# so incremental reruns are cheap and configurations never contaminate
# each other. Any test failure or sanitizer report fails that config
# and, at the end, this script. UBSan runs with
# -fno-sanitize-recover=undefined (set by CMakeLists.txt), so findings
# abort the offending test instead of just printing.
#
# Usage:
#   tools/run_sanitizers.sh            # the whole matrix
#   tools/run_sanitizers.sh thread     # one or more named configs
#   MSC_SAN_JOBS=4 tools/run_sanitizers.sh
set -u

cd "$(dirname "$0")/.."
jobs="${MSC_SAN_JOBS:-$(nproc)}"
configs=("$@")
[ ${#configs[@]} -eq 0 ] && configs=(none thread address undefined)

failed=()

# The static-analysis gate runs once, before the matrix: what it
# proves (lockset coverage, atomics discipline, tag disjointness) is
# independent of compiler flags, and a violation should fail fast
# rather than after four sanitizer builds. The dynamic checkers (TSan,
# msc::audit) then cover what the flow-lite analysis cannot see.
echo "=== [static] msc_analyze (tree + fixture self-check) ==="
if ! python3 tools/msc_analyze.py --root .; then
  echo "=== [static] msc_analyze FAILED ==="; failed+=(static-analyze)
fi
if ! python3 tools/msc_analyze.py --self-check --fixtures tests/analyze_fixtures; then
  echo "=== [static] msc_analyze self-check FAILED ==="; failed+=(static-selfcheck)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    none) san="" ;;
    thread|address|undefined) san="$cfg" ;;
    thread,undefined|address,undefined) san="$cfg" ;;
    *) echo "unknown config '$cfg' (want: none thread address undefined)" >&2; exit 2 ;;
  esac
  bdir="build-san-${cfg//,/-}"
  echo "=== [$cfg] configure + build in $bdir ==="
  if ! cmake -B "$bdir" -S . -DMSC_SANITIZE="$san" >/dev/null; then
    echo "=== [$cfg] CONFIGURE FAILED ==="; failed+=("$cfg"); continue
  fi
  if ! cmake --build "$bdir" -j "$jobs" >/dev/null; then
    echo "=== [$cfg] BUILD FAILED ==="; failed+=("$cfg"); continue
  fi
  # Sanitized binaries run 2-20x slower, which is not a perf
  # regression; widen the perf gate's timing tolerance there. Work
  # counters stay exact regardless of tolerance.
  gate_tol=1.0
  [ -n "$san" ] && gate_tol=20.0
  echo "=== [$cfg] ctest ==="
  # halt_on_error makes TSan/ASan reports fail the process, so ctest
  # sees them; abort_on_error=0 keeps gtest's reporting readable.
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      MSC_PERFGATE_TOL="$gate_tol" \
      ctest --output-on-failure -j "$jobs"); then
    echo "=== [$cfg] OK ==="
  else
    echo "=== [$cfg] TESTS FAILED ==="
    failed+=("$cfg")
    continue
  fi
  # The chaos matrix (fault injection + recovery) is where the racy
  # recovery-protocol bugs would live; run it explicitly in every
  # sanitizer config even if the default label set ever narrows.
  echo "=== [$cfg] ctest -L chaos ==="
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      ctest --output-on-failure -L chaos -j "$jobs"); then
    echo "=== [$cfg] chaos OK ==="
  else
    echo "=== [$cfg] chaos TESTS FAILED ==="
    failed+=("$cfg")
    continue
  fi
  # The distributed-merge strategies (pre-merge reduction, sharded
  # final round) must stay byte-identical to the plain merge under
  # every sanitizer -- TSan especially, since the sharded round adds a
  # whole new message pattern (skeleton broadcast + path bundles) to
  # the threaded driver's mailboxes.
  echo "=== [$cfg] ctest -L mergedist ==="
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      ctest --output-on-failure -L mergedist -j "$jobs"); then
    echo "=== [$cfg] mergedist OK ==="
  else
    echo "=== [$cfg] mergedist TESTS FAILED ==="
    failed+=("$cfg")
    continue
  fi
  # The integrity label (silent-data-corruption detection + healing):
  # checksummed framing, the corruption fault kinds, and the NACK
  # re-request path add lock-order and lifetime surface to the comm
  # layer and checkpoint store that only shows up under corruption
  # load -- race it under TSan, bounds-check it under ASan.
  echo "=== [$cfg] ctest -L integrity ==="
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      ctest --output-on-failure -L integrity -j "$jobs"); then
    echo "=== [$cfg] integrity OK ==="
  else
    echo "=== [$cfg] integrity TESTS FAILED ==="
    failed+=("$cfg")
    continue
  fi
  # The profile label (msc::prof sampling profiler): the seqlock span
  # stacks are a writer-vs-sampler race by design, so TSan must see
  # the 8-thread bookkeeping test and the profiled-pipeline byte-
  # identity runs in every config; the scaling gate rides the same
  # label so its ladder stays exercised under sanitizers too.
  echo "=== [$cfg] ctest -L profile ==="
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      MSC_PERFGATE_TOL="$gate_tol" \
      ctest --output-on-failure -L profile -j "$jobs"); then
    echo "=== [$cfg] profile OK ==="
  else
    echo "=== [$cfg] profile TESTS FAILED ==="
    failed+=("$cfg")
    continue
  fi
  # Same for the perf gate label: the self-check must prove the gate
  # can fail, and the work-counter cross-checks must stay exact, in
  # every sanitizer config (timing tolerance widened above).
  echo "=== [$cfg] ctest -L perfgate ==="
  if (cd "$bdir" && \
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ASAN_OPTIONS="detect_leaks=1" \
      UBSAN_OPTIONS="print_stacktrace=1" \
      MSC_PERFGATE_TOL="$gate_tol" \
      ctest --output-on-failure -L perfgate -j "$jobs"); then
    echo "=== [$cfg] perfgate OK ==="
  else
    echo "=== [$cfg] perfgate TESTS FAILED ==="
    failed+=("$cfg")
  fi
done

echo
if [ ${#failed[@]} -gt 0 ]; then
  echo "sanitizer matrix FAILED for: ${failed[*]}"
  exit 1
fi
echo "sanitizer matrix clean: ${configs[*]}"
