"""lintlib: shared machinery for the repo's source-model linters.

Both tier-1 source gates -- msc_lint (layering/hygiene) and
msc_analyze (concurrency annotations) -- are flow-lite analyzers over
a tokenized source model. This module holds everything they must not
let drift apart:

  * strip_comments_and_strings: the shared tokenizer that blanks
    comments and literals while preserving line structure, so regex
    passes cannot fire inside them.
  * Finding: one violation, keyed "path:line" for grandfather lookup.
  * allowed_rules_for_line: the inline-suppression contract. The
    marker differs per tool (`msc-lint:` vs `msc-analyze:`) but the
    placement rules (offending line, or the contiguous `//` block
    directly above) and the allow(...) syntax are identical, so a
    suppression written for one tool reads the same in the other.
  * check_grandfather: the empty-on-mainline requirement.
  * walk_sources / files_from_compile_commands: file discovery, with
    the compile_commands.json fast path shared by any tool that wants
    the build's own view of the translation units.

Keep this dependency-free (stdlib only); it is imported by tools that
run inside ctest with no environment beyond python3.
"""

import json
import os
import re


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so regex checks cannot fire inside them. Comment text
    itself stays available to callers via the raw lines (that is where
    the allow/annotation markers live)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; bail to code to stay line-stable
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return f"{self.path}:{self.line}"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


def allow_regex(marker, require_reason=False):
    """Compile the inline-suppression pattern for a tool marker, e.g.
    `// msc-analyze: allow(lockset): reason`. With require_reason, an
    allow with no trailing `: reason` text does not match -- the tool
    treats it as absent (the violation still fires), which is how
    msc_analyze forces every suppression to carry a justification."""
    if require_reason:
        return re.compile(re.escape(marker) + r":\s*allow\(([a-z-]+)\)\s*:\s*\S")
    return re.compile(re.escape(marker) + r":\s*allow\(([a-z-]+)\)")


def allowed_rules_for_line(raw_lines, lineno, allow_re):
    """Inline suppressions on the offending line or in the contiguous
    comment block directly above it."""
    allowed = set()
    if 1 <= lineno <= len(raw_lines):
        allowed.update(allow_re.findall(raw_lines[lineno - 1]))
    ln = lineno - 1
    while 1 <= ln <= len(raw_lines) and raw_lines[ln - 1].lstrip().startswith("//"):
        allowed.update(allow_re.findall(raw_lines[ln - 1]))
        ln -= 1
    return allowed


def check_grandfather(grandfather, tool, err):
    """The empty-on-mainline requirement. Returns True when the table
    is clean; prints the failure to `err` otherwise. A rule may be
    introduced with grandfathered debt, but no commit may keep it:
    fix the code or justify it inline where reviewers can see it."""
    if not grandfather:
        return True
    n = len(grandfather)
    print(f"{tool}: GRANDFATHER must be empty on mainline "
          f"({n} entr{'y' if n == 1 else 'ies'}); fix or justify inline",
          file=err)
    return False


def walk_sources(src, exts=(".hpp", ".cpp")):
    """Deterministic walk of a source tree; yields absolute paths."""
    for dirpath, _dirnames, filenames in sorted(os.walk(src)):
        for name in sorted(filenames):
            if name.endswith(tuple(exts)):
                yield os.path.join(dirpath, name)


def files_from_compile_commands(path, under=None):
    """Translation units listed in a compile_commands.json, optionally
    restricted to paths under `under`. Returns None when the file is
    missing/unreadable so callers can fall back to walk_sources -- a
    stale or absent export must never weaken a gate to zero files."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError):
        return None
    files = set()
    for e in entries:
        if not isinstance(e, dict) or "file" not in e:
            continue
        p = e["file"]
        if not os.path.isabs(p):
            p = os.path.normpath(os.path.join(e.get("directory", "."), p))
        p = os.path.normpath(p)
        if under is not None:
            try:
                if os.path.commonpath([os.path.abspath(under), p]) != os.path.abspath(under):
                    continue
            except ValueError:
                continue
        if os.path.isfile(p):
            files.add(p)
    return sorted(files)


def rules_payload(rules, **extra):
    """The --rules JSON body: the rule table plus tool-specific extras
    (layer maps, tag budgets, ...)."""
    payload = {"rules": rules}
    payload.update(extra)
    return payload
