/// Tests for the message-passing runtime (par/comm).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "par/comm.hpp"

namespace msc::par {
namespace {

Bytes toBytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}
std::string fromBytes(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(Comm, SendRecvPointToPoint) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, toBytes("hello"));
    } else {
      EXPECT_EQ(fromBytes(c.recv(0, 7)), "hello");
    }
  });
}

TEST(Comm, MessagesFromSameSourceArriveInOrder) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 100; ++i) c.sendValue(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(c.recvValue<int>(0, 3), i);
    }
  });
}

TEST(Comm, WildcardReceive) {
  Runtime::run(4, [](Comm& c) {
    if (c.rank() != 0) {
      c.sendValue(0, c.rank(), c.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        int src = kAny, tag = kAny;
        const Bytes b = c.recv(kAny, kAny, &src, &tag);
        int v;
        std::memcpy(&v, b.data(), sizeof(v));
        EXPECT_EQ(v, src);
        EXPECT_EQ(v, tag);
        sum += v;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(Comm, TagSelectiveReceiveReordersQueue) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 10, 100);
      c.sendValue(1, 20, 200);
    } else {
      // Receive the tag-20 message first even though tag-10 arrived
      // earlier.
      EXPECT_EQ(c.recvValue<int>(0, 20), 200);
      EXPECT_EQ(c.recvValue<int>(0, 10), 100);
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  Runtime::run(8, [&](Comm& c) {
    phase.fetch_add(1);
    c.barrier();
    // All ranks incremented before anyone proceeds.
    EXPECT_EQ(phase.load(), 8);
    c.barrier();
  });
}

TEST(Comm, RepeatedBarriers) {
  std::atomic<int> counter{0};
  Runtime::run(4, [&](Comm& c) {
    for (int i = 0; i < 50; ++i) {
      if (c.rank() == 0) counter.fetch_add(1);
      c.barrier();
      EXPECT_EQ(counter.load(), i + 1);
      c.barrier();
    }
  });
}

TEST(Comm, GatherCollectsInRankOrder) {
  Runtime::run(5, [](Comm& c) {
    const auto v = static_cast<std::byte>(c.rank() * 11);
    const auto all = c.gather(2, Bytes{v});
    if (c.rank() == 2) {
      ASSERT_EQ(all.size(), 5u);
      for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(all[static_cast<std::size_t>(i)].size(), 1u);
        EXPECT_EQ(all[static_cast<std::size_t>(i)][0], static_cast<std::byte>(i * 11));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, Broadcast) {
  Runtime::run(6, [](Comm& c) {
    Bytes payload = c.rank() == 3 ? toBytes("root-data") : Bytes{};
    EXPECT_EQ(fromBytes(c.broadcast(3, std::move(payload))), "root-data");
  });
}

TEST(Comm, ProbeSeesQueuedMessage) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 5, 42);
      c.barrier();
    } else {
      c.barrier();  // message is definitely queued now
      EXPECT_TRUE(c.probe(0, 5));
      EXPECT_FALSE(c.probe(0, 6));
      EXPECT_EQ(c.recvValue<int>(0, 5), 42);
      EXPECT_FALSE(c.probe(0, 5));
    }
  });
}

TEST(Comm, ManyToOneStress) {
  constexpr int kRanks = 8, kMsgs = 200;
  Runtime::run(kRanks, [](Comm& c) {
    if (c.rank() == 0) {
      std::int64_t sum = 0;
      for (int i = 0; i < (kRanks - 1) * kMsgs; ++i) sum += c.recvValue<int>(kAny, 1);
      std::int64_t expect = 0;
      for (int r = 1; r < kRanks; ++r)
        for (int i = 0; i < kMsgs; ++i) expect += r * 1000 + i;
      EXPECT_EQ(sum, expect);
    } else {
      for (int i = 0; i < kMsgs; ++i) c.sendValue(0, 1, c.rank() * 1000 + i);
    }
  });
}

TEST(Comm, ExceptionsPropagate) {
  EXPECT_THROW(Runtime::run(1, [](Comm&) { throw std::runtime_error("rank failed"); }),
               std::runtime_error);
}

TEST(Comm, SendToSelf) {
  Runtime::run(1, [](Comm& c) {
    c.sendValue(0, 9, 123);
    EXPECT_EQ(c.recvValue<int>(0, 9), 123);
  });
}

TEST(Comm, LargePayloadRoundTrip) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      Bytes big(1 << 20);
      for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<std::byte>(i * 2654435761u >> 24);
      c.send(1, 1, std::move(big));
    } else {
      const Bytes got = c.recv(0, 1);
      ASSERT_EQ(got.size(), std::size_t{1} << 20);
      for (std::size_t i = 0; i < got.size(); i += 4097)
        EXPECT_EQ(got[i], static_cast<std::byte>(i * 2654435761u >> 24));
    }
  });
}

}  // namespace
}  // namespace msc::par
