/// Tests for src/metrics: registry exactness under concurrency,
/// histogram bucket boundaries, the pure-observer contract
/// (metrics-on == metrics-off, byte for byte), determinism of the work
/// counters across reruns and rank counts, snapshot JSON round-trip,
/// and the shared Chrome-trace event writer's string escaping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/lower_star.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "obs/trace_writer.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

TEST(MetricsHistogram, BucketBoundariesAreExact) {
  using metrics::histBucket;
  using metrics::histBucketLowerBound;
  // Bucket 0 is the sink for non-positive and non-finite values.
  EXPECT_EQ(histBucket(0.0), 0);
  EXPECT_EQ(histBucket(-1.0), 0);
  EXPECT_EQ(histBucket(-std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(histBucket(std::numeric_limits<double>::quiet_NaN()), 0);

  // Every bucket's lower bound lands in that bucket, and the value
  // just below it lands in the previous one: [lb(b), lb(b+1)) exactly.
  for (int b = 1; b < metrics::kHistBuckets; ++b) {
    const double lb = histBucketLowerBound(b);
    ASSERT_GT(lb, 0.0);
    EXPECT_EQ(histBucket(lb), b) << "lb(" << b << ") = " << lb;
    if (b > 1) {
      const double below = std::nextafter(lb, 0.0);
      EXPECT_EQ(histBucket(below), b - 1) << "just below lb(" << b << ")";
    }
  }
  // Monotonic lower bounds, each a power of two apart.
  for (int b = 2; b < metrics::kHistBuckets; ++b)
    EXPECT_DOUBLE_EQ(histBucketLowerBound(b), 2 * histBucketLowerBound(b - 1));

  // Clamping at both ends: tiny positives in bucket 1, huge in the top.
  EXPECT_EQ(histBucket(1e-300), 1);
  EXPECT_EQ(histBucket(1e300), metrics::kHistBuckets - 1);
  EXPECT_EQ(histBucket(std::numeric_limits<double>::infinity()),
            metrics::kHistBuckets - 1);
}

TEST(MetricsRegistry, ConcurrentCountsAreExact) {
  constexpr int kRanks = 4;
  constexpr int kThreads = 8;
  constexpr std::int64_t kOps = 20000;
  metrics::Registry reg(kRanks);
  // Any thread may write any rank slot; totals must still be exact.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (std::int64_t i = 0; i < kOps; ++i) {
        const int rank = static_cast<int>((t + i) % kRanks);
        reg.add(rank, metrics::Counter::kGradCells, 1);
        reg.setMax(rank, metrics::Gauge::kMemPeakLiveBytes, t * kOps + i);
        reg.observe(rank, metrics::Hist::kTracePathCells,
                    static_cast<double>(i % 64 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto histTotal = [&reg] {
    std::int64_t n = 0;
    for (int b = 0; b < metrics::kHistBuckets; ++b)
      n += reg.histCountTotal(metrics::Hist::kTracePathCells, b);
    return n;
  };
  EXPECT_EQ(reg.counterTotal(metrics::Counter::kGradCells), kThreads * kOps);
  EXPECT_EQ(reg.gaugeMax(metrics::Gauge::kMemPeakLiveBytes),
            (kThreads - 1) * kOps + (kOps - 1));
  EXPECT_EQ(histTotal(), kThreads * kOps);

  reg.reset();
  EXPECT_EQ(reg.counterTotal(metrics::Counter::kGradCells), 0);
  EXPECT_EQ(reg.gaugeMax(metrics::Gauge::kMemPeakLiveBytes), 0);
  EXPECT_EQ(histTotal(), 0);
}

TEST(MetricsRegistry, NullSafeHelpersAreNoOps) {
  metrics::add(nullptr, 0, metrics::Counter::kGradCells, 5);
  metrics::set(nullptr, 0, metrics::Gauge::kMemLiveBytes, 5);
  metrics::setMax(nullptr, 0, metrics::Gauge::kMemPeakLiveBytes, 5);
  metrics::observe(nullptr, 0, metrics::Hist::kTracePathCells, 5.0);
}

TEST(MetricsKernels, GradientCountsTileTheBlock) {
  const Domain d{{17, 17, 17}};
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  const BlockField bf = synth::sample(whole, synth::noise(11));
  metrics::Registry reg(1);
  GradientOptions opts;
  opts.metrics = &reg;
  (void)computeGradientLowerStar(bf, opts);
  // Every cell is visited exactly once and ends paired or critical.
  const std::int64_t cells = reg.counterTotal(metrics::Counter::kGradCells);
  const std::int64_t pairs = reg.counterTotal(metrics::Counter::kGradPairs);
  const std::int64_t crits = reg.counterTotal(metrics::Counter::kGradCriticals);
  EXPECT_EQ(cells, whole.numCells());
  EXPECT_EQ(2 * pairs + crits, cells);
  EXPECT_EQ(reg.counterTotal(metrics::Counter::kGradLowerStars),
            static_cast<std::int64_t>(17) * 17 * 17);
}

pipeline::PipelineConfig smallConfig(int variant) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = variant == 0   ? synth::sinusoid(cfg.domain, 2)
                     : variant == 1 ? synth::noise(7)
                                    : synth::sinusoid(cfg.domain, 3);
  cfg.nblocks = 8;
  cfg.nranks = 4;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(8);
  return cfg;
}

TEST(MetricsPipeline, MeteredPipelineIsByteIdenticalToPlain) {
  // The registry must be a pure observer, exactly like the tracer,
  // the auditor, and the causal recorder: metrics on, metrics off --
  // same output bytes, over several field/seed variants.
  for (int variant = 0; variant < 3; ++variant) {
    pipeline::PipelineConfig cfg = smallConfig(variant);
    const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(cfg);

    metrics::Registry reg(cfg.nranks);
    cfg.metrics = &reg;
    const pipeline::ThreadedResult metered = pipeline::runThreadedPipeline(cfg);

    EXPECT_EQ(plain.node_counts, metered.node_counts) << "variant " << variant;
    ASSERT_EQ(plain.outputs.size(), metered.outputs.size());
    for (std::size_t i = 0; i < plain.outputs.size(); ++i)
      EXPECT_EQ(plain.outputs[i], metered.outputs[i])
          << "variant " << variant << " output block " << i;
    // And the run must actually have been metered.
    EXPECT_GT(reg.counterTotal(metrics::Counter::kGradCells), 0);
    EXPECT_GT(reg.counterTotal(metrics::Counter::kTraceArcs), 0);
    EXPECT_GT(reg.counterTotal(metrics::Counter::kPackBytes), 0);
  }
}

TEST(MetricsPipeline, WorkCountersDeterministicAcrossRerunsAndRanks) {
  // Work is a property of the input, not the schedule: reruns and
  // different rank counts (same block count) must tally identically.
  pipeline::PipelineConfig cfg = smallConfig(0);
  metrics::Registry a(cfg.nranks);
  cfg.metrics = &a;
  (void)pipeline::runThreadedPipeline(cfg);
  metrics::Registry b(cfg.nranks);
  cfg.metrics = &b;
  (void)pipeline::runThreadedPipeline(cfg);
  const metrics::Snapshot sa = metrics::takeSnapshot(a);
  const metrics::Snapshot sb = metrics::takeSnapshot(b);
  // Per-rank work counters are exactly reproducible (static block
  // ownership); memory gauges are schedule-dependent and not compared.
  EXPECT_EQ(sa.counters, sb.counters);
  EXPECT_EQ(sa.histograms, sb.histograms);

  pipeline::PipelineConfig cfg2 = smallConfig(0);
  cfg2.nranks = 2;
  metrics::Registry c(2);
  cfg2.metrics = &c;
  (void)pipeline::runThreadedPipeline(cfg2);
  const metrics::Snapshot sc = metrics::takeSnapshot(c);
  for (const auto& [name, per_rank] : sa.counters) {
    std::int64_t total4 = 0, total2 = 0;
    for (const std::int64_t v : per_rank) total4 += v;
    const auto it = sc.counters.find(name);
    ASSERT_NE(it, sc.counters.end()) << name;
    for (const std::int64_t v : it->second) total2 += v;
    EXPECT_EQ(total4, total2) << "counter " << name << " depends on rank count";
  }
}

TEST(MetricsSnapshot, JsonRoundTripsExactly) {
  metrics::Registry reg(3);
  reg.add(0, metrics::Counter::kGradCells, 123);
  reg.add(2, metrics::Counter::kGradCells, 7);
  reg.add(1, metrics::Counter::kTraceArcs, 99);
  reg.set(1, metrics::Gauge::kMemLiveBytes, 1 << 20);
  reg.setMax(2, metrics::Gauge::kMemPeakLiveBytes, 5 << 20);
  reg.observe(0, metrics::Hist::kSimplifyPersistence, 0.125);
  reg.observe(0, metrics::Hist::kSimplifyPersistence, 3.5);
  reg.observe(2, metrics::Hist::kTracePathCells, 42.0);

  const metrics::Snapshot snap = metrics::takeSnapshot(reg);
  const std::string json = metrics::snapshotJson(snap);
  const metrics::Snapshot back = metrics::parseSnapshotJson(json);
  EXPECT_EQ(snap, back);
  EXPECT_EQ(back.nranks, 3);
  EXPECT_EQ(metrics::snapshotJson(back), json);

  // An unknown schema version must be rejected, not misread.
  const std::string vkey = "\"schema_version\": 1";
  const std::size_t at = json.find(vkey);
  ASSERT_NE(at, std::string::npos);
  std::string wrong = json;
  wrong.replace(at, vkey.size(), "\"schema_version\": 99");
  EXPECT_THROW((void)metrics::parseSnapshotJson(wrong), std::runtime_error);
  EXPECT_THROW((void)metrics::parseSnapshotJson("not json"), std::runtime_error);
}

TEST(MetricsPipeline, UndersizedRegistryIsRejectedUpFront) {
  pipeline::PipelineConfig cfg = smallConfig(0);
  metrics::Registry small(2);  // cfg.nranks is 4
  cfg.metrics = &small;
  EXPECT_THROW((void)pipeline::runThreadedPipeline(cfg), std::invalid_argument);
}

TEST(TraceWriter, EscapesHostileStrings) {
  EXPECT_EQ(obs::TraceEventWriter::escaped("plain"), "\"plain\"");
  EXPECT_EQ(obs::TraceEventWriter::escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(obs::TraceEventWriter::escaped("n\nt\tr\r"), "\"n\\nt\\tr\\r\"");
  EXPECT_EQ(obs::TraceEventWriter::escaped(std::string("\x01", 1)),
            "\"\\u0001\"");

  // A hostile counter-track name must come out of the full trace
  // export escaped -- no raw quote, backslash, or control byte.
  obs::Tracer t(1);
  t.countNamed(0, "bad\"name\\with\nnasties\x02", 1.0);
  t.count(0, obs::Counter::kMessagesSent, 1);  // keep validate() happy
  const std::string json = obs::chromeTraceJson(t, "test");
  EXPECT_NE(json.find("bad\\\"name\\\\with\\nnasties\\u0002"),
            std::string::npos)
      << json;
  // Newlines between events are legal JSON whitespace; any other
  // control byte would have to be an unescaped string payload.
  for (const char c : json)
    if (c != '\n')
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control byte in trace JSON";
}

}  // namespace
}  // namespace msc
