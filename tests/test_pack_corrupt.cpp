/// Adversarial io::pack/unpack tests: truncated and corrupted buffers
/// must produce a clean std::runtime_error — never an out-of-bounds
/// read, a crash, or a multi-gigabyte allocation driven by a corrupt
/// count field. Run under MSC_SANITIZE=address these double as memory
/// safety proofs for the wire format.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/check.hpp"
#include "io/pack.hpp"
#include "merge/plan.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

io::Bytes packedComplex() {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{6, 7, 5}};
  cfg.source.field = synth::noise(21);
  cfg.nblocks = 2;
  cfg.plan = MergePlan::fullMerge(2);
  return pipeline::runSimPipeline(cfg).outputs.at(0);
}

TEST(PackCorrupt, EveryTruncationThrows) {
  const io::Bytes full = packedComplex();
  ASSERT_GT(full.size(), 100u);
  // The format is read strictly sequentially and consumes the whole
  // buffer, so every proper prefix must fail — cleanly.
  for (std::size_t len = 0; len < full.size(); ++len) {
    const io::Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(io::unpack(cut), std::runtime_error) << "prefix of " << len << " bytes";
  }
  EXPECT_NO_THROW(io::unpack(full));
}

TEST(PackCorrupt, EverySingleByteFlipIsSafe) {
  const io::Bytes full = packedComplex();
  // A flipped byte may still parse (e.g. a node value changed) — the
  // guarantee is no crash and no out-of-bounds access, and whatever
  // does parse must survive the structural checker without touching
  // invalid memory.
  int parsed = 0, rejected = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    io::Bytes bad = full;
    bad[i] = static_cast<std::byte>(static_cast<unsigned char>(bad[i]) ^ 0xFFu);
    try {
      const MsComplex c = io::unpack(bad);
      check::checkComplex(c);  // must not fault; violations are fine
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(parsed + rejected, static_cast<int>(full.size()));
}

TEST(PackCorrupt, BadMagicRejected) {
  io::Bytes full = packedComplex();
  full[0] = static_cast<std::byte>(0x00);
  EXPECT_THROW(io::unpack(full), std::runtime_error);
}

TEST(PackCorrupt, HugeNodeCountRejectedWithoutAllocating) {
  // Hand-build a header that claims ~4 billion nodes in a tiny
  // buffer: requireCount must reject it before any resize.
  io::Bytes buf;
  io::Writer w(buf);
  w.put(std::uint32_t{0x4243534Du});  // magic "MSCB"
  w.put(Vec3i{4, 4, 4});
  w.put(std::uint32_t{1});  // one region box
  w.put(Box3{{0, 0, 0}, {6, 6, 6}});
  w.put(std::uint32_t{0xFFFFFFFFu});  // node count
  EXPECT_THROW(io::unpack(buf), std::runtime_error);
}

TEST(PackCorrupt, HugeGeometryCountRejectedWithoutAllocating) {
  io::Bytes buf;
  io::Writer w(buf);
  w.put(std::uint32_t{0x4243534Du});
  w.put(Vec3i{4, 4, 4});
  w.put(std::uint32_t{0});  // no region boxes
  w.put(std::uint32_t{2});  // two nodes
  w.put(CellAddr{0});
  w.put(1.0f);
  w.put(std::uint8_t{0});
  w.put(CellAddr{1});
  w.put(2.0f);
  w.put(std::uint8_t{1});
  w.put(std::uint32_t{1});  // one arc
  w.put(std::uint32_t{0});  // lower
  w.put(std::uint32_t{1});  // upper
  w.put(std::uint32_t{0xFFFFFFF0u});  // geometry cell count
  EXPECT_THROW(io::unpack(buf), std::runtime_error);
}

TEST(PackCorrupt, ArcEndpointOutOfRangeRejected) {
  io::Bytes buf;
  io::Writer w(buf);
  w.put(std::uint32_t{0x4243534Du});
  w.put(Vec3i{4, 4, 4});
  w.put(std::uint32_t{0});
  w.put(std::uint32_t{1});  // one node
  w.put(CellAddr{0});
  w.put(1.0f);
  w.put(std::uint8_t{0});
  w.put(std::uint32_t{1});  // one arc
  w.put(std::uint32_t{0});   // lower: valid
  w.put(std::uint32_t{7});   // upper: only 1 node exists
  w.put(std::uint32_t{0});
  EXPECT_THROW(io::unpack(buf), std::runtime_error);
}

TEST(PackCorrupt, ReaderReportsOffsets) {
  // The error message should say where the read failed — that is what
  // makes a corrupt artifact from the wire debuggable.
  const io::Bytes full = packedComplex();
  const io::Bytes cut(full.begin(), full.begin() + 10);
  try {
    io::unpack(cut);
    FAIL() << "expected truncation to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace msc
