/// Gap-filling tests: region algebra, error paths, threaded pipeline
/// with the sweep algorithm, torus factorization edge cases.
#include <gtest/gtest.h>

#include "core/region.hpp"
#include "io/volume.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "simnet/torus.hpp"

namespace msc {
namespace {

TEST(Region, BoundsOfDisjointBoxes) {
  Region r(Box3{{0, 0, 0}, {4, 4, 4}});
  r.add(Box3{{10, 10, 10}, {12, 12, 12}});
  EXPECT_EQ(r.bounds(), (Box3{{0, 0, 0}, {12, 12, 12}}));
  EXPECT_FALSE(r.isBox());
  EXPECT_TRUE(r.contains({2, 2, 2}));
  EXPECT_TRUE(r.contains({11, 11, 11}));
  EXPECT_FALSE(r.contains({7, 7, 7}));
}

TEST(Region, CoalesceDoesNotFuseDiagonalBoxes) {
  Region r(Box3{{0, 0, 0}, {4, 4, 4}});
  r.add(Box3{{4, 4, 0}, {8, 8, 4}});  // shares only an edge line
  r.coalesce();
  EXPECT_EQ(r.boxes().size(), 2u);
}

TEST(Region, MergeCombinesAndCoalesces) {
  Region a(Box3{{0, 0, 0}, {4, 8, 8}});
  Region b(Box3{{4, 0, 0}, {8, 8, 8}});
  a.merge(b);
  ASSERT_TRUE(a.isBox());
  EXPECT_EQ(a.boxes()[0], (Box3{{0, 0, 0}, {8, 8, 8}}));
}

TEST(Region, EightOctantsCoalesceToCube) {
  Region r;
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x)
        r.add(Box3{{x * 8, y * 8, z * 8}, {x * 8 + 8, y * 8 + 8, z * 8 + 8}});
  r.coalesce();
  ASSERT_TRUE(r.isBox());
  EXPECT_EQ(r.boxes()[0], (Box3{{0, 0, 0}, {16, 16, 16}}));
}

TEST(VolumeIo, MissingFileThrows) {
  const Domain d{{4, 4, 4}};
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  EXPECT_THROW(io::readBlock("/nonexistent/path.raw", b, io::SampleType::kFloat32),
               std::runtime_error);
  EXPECT_THROW(io::readVolume("/nonexistent/path.raw", d, io::SampleType::kFloat32),
               std::runtime_error);
}

TEST(VolumeIo, WriteVolumeSampleCountValidated) {
  const Domain d{{4, 4, 4}};
  std::vector<float> wrong(10);
  EXPECT_THROW(io::writeVolume("/tmp/msc_bad.raw", d, wrong, io::SampleType::kFloat32),
               std::invalid_argument);
}

TEST(Torus, PrimeAndAwkwardSizes) {
  for (const int p : {7, 13, 17, 31, 97, 2 * 3 * 5 * 7}) {
    const simnet::Torus t = simnet::Torus::fit(p);
    EXPECT_EQ(t.size(), p);
    // Hops are bounded by the sum of half-dimensions.
    const Vec3i dm = t.dims();
    const int maxh = static_cast<int>(dm.x / 2 + dm.y / 2 + dm.z / 2);
    for (int a = 0; a < p; a += 3) EXPECT_LE(t.hops(0, a), maxh);
  }
}

TEST(Pipeline, ThreadedWithSweepAlgorithmAgreesWithSim) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{13, 13, 13}};
  cfg.source.field = synth::sinusoid(cfg.domain, 3);
  cfg.nblocks = 8;
  cfg.nranks = 4;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(8);
  cfg.algorithm = pipeline::GradientAlgorithm::kSweep;
  const pipeline::SimResult sim = runSimPipeline(cfg);
  const pipeline::ThreadedResult thr = runThreadedPipeline(cfg);
  EXPECT_EQ(sim.node_counts, thr.node_counts);
  EXPECT_EQ(sim.output_bytes, thr.output_bytes);
}

TEST(Pipeline, TraceCapPlumbsThrough) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{11, 11, 11}};
  cfg.source.field = synth::noise(3);
  cfg.nblocks = 1;
  cfg.nranks = 1;
  cfg.persistence_threshold = -1.0f;  // keep everything
  cfg.plan = MergePlan::partial({});
  const pipeline::SimResult full = runSimPipeline(cfg);
  cfg.trace.max_paths_per_cell = 1;
  const pipeline::SimResult capped = runSimPipeline(cfg);
  EXPECT_LT(capped.arc_count, full.arc_count);
}

}  // namespace
}  // namespace msc
