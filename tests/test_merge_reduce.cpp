/// Merge-strategy differential suite: the pre-merge reduction pass
/// (merge/reduce) and the sharded final round (merge/shard) against
/// the single-root baseline.
///
/// The contracts under test, from DESIGN.md section 14:
///  * premerge on vs off: canonical-equal at every threshold (the
///    reduction only collapses consecutive duplicate junction cells,
///    which canonicalArc collapses anyway);
///  * sharded vs single-root: canonical-equal — the union of the S
///    parts re-packs to exactly the baseline's 1-skeleton;
///  * sim vs threaded: byte-identical under every knob combination
///    (both drivers execute the same schedule).
///
/// Each checker is also mutation-tested: a seeded corruption of a
/// part/blob/flag vector must make the corresponding oracle fail, so
/// a vacuous comparison cannot go unnoticed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "check/canonical.hpp"
#include "decomp/decompose.hpp"
#include "check/fuzz.hpp"
#include "core/merge.hpp"
#include "io/pack.hpp"
#include "merge/reduce.hpp"
#include "merge/shard.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

pipeline::PipelineConfig makeConfig(unsigned seed, Vec3i vdims, int nblocks,
                                    int nranks, float threshold) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{vdims};
  cfg.source.field = synth::noise(seed);
  cfg.nblocks = nblocks;
  cfg.nranks = nranks;
  cfg.persistence_threshold = threshold;
  cfg.plan = MergePlan::fullMerge(nblocks);
  return cfg;
}

check::CanonicalComplex canonOf(const pipeline::PipelineConfig& cfg,
                                const std::vector<io::Bytes>& outputs) {
  return check::canonicalize(cfg.domain, outputs);
}

bool sameBytes(const std::vector<io::Bytes>& a, const std::vector<io::Bytes>& b) {
  return a == b;
}

// ---------------------------------------------------------------------------
// reduceForShip unit contracts.

MsComplex blockComplexFor(unsigned seed) {
  pipeline::PipelineConfig cfg = makeConfig(seed, {10, 9, 8}, 4, 2, 0.0f);
  const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);
  return computeBlockComplex(cfg, blocks[1], nullptr, nullptr, 0);
}

TEST(PremergeReduce, NeverGrowsAndIsIdempotent) {
  MsComplex c = blockComplexFor(7);
  const merge::ReduceStats st = merge::reduceForShip(c, 0.0f);
  EXPECT_LE(st.bytes_after, st.bytes_before);
  EXPECT_GE(st.cells_removed, 0);
  // A complex at the simplification fixpoint re-cancels nothing: the
  // sweep is a safety net, not the mechanism (DESIGN.md section 14).
  EXPECT_EQ(st.cancellations, 0);
  // Idempotent: a second pass finds nothing left to remove.
  const merge::ReduceStats st2 = merge::reduceForShip(c, 0.0f);
  EXPECT_EQ(st2.cells_removed, 0);
  EXPECT_EQ(st2.bytes_after, st2.bytes_before);
}

TEST(PremergeReduce, PreservesCanonicalForm) {
  for (const unsigned seed : {1u, 5u, 9u}) {
    MsComplex c = blockComplexFor(seed);
    const check::CanonicalComplex before = check::canonicalize(c);
    merge::reduceForShip(c, 0.0f);
    const check::CanonicalComplex after = check::canonicalize(c);
    const check::CheckReport rep = check::compareExact(before, after);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.summary();
  }
}

// ---------------------------------------------------------------------------
// Premerge differential: on vs off, canonical-equal at every
// threshold; sim vs threaded byte-equal with the knob on.

TEST(PremergeReduce, CanonicalEqualAtEveryThreshold) {
  for (const float threshold : {0.0f, 0.05f, 0.15f, 0.3f}) {
    pipeline::PipelineConfig off = makeConfig(11, {11, 10, 9}, 8, 3, threshold);
    pipeline::PipelineConfig on = off;
    on.premerge = true;
    const pipeline::SimResult r_off = pipeline::runSimPipeline(off);
    const pipeline::SimResult r_on = pipeline::runSimPipeline(on);
    const check::CheckReport rep =
        check::compareExact(canonOf(off, r_off.outputs), canonOf(on, r_on.outputs));
    EXPECT_TRUE(rep.ok()) << "threshold " << threshold << ": " << rep.summary();
  }
}

TEST(PremergeReduce, ThreadedMatchesSimBytes) {
  pipeline::PipelineConfig cfg = makeConfig(13, {10, 10, 10}, 6, 3, 0.05f);
  cfg.premerge = true;
  const pipeline::SimResult sim = pipeline::runSimPipeline(cfg);
  const pipeline::ThreadedResult thr = pipeline::runThreadedPipeline(cfg);
  EXPECT_TRUE(sameBytes(sim.outputs, thr.outputs));
}

// ---------------------------------------------------------------------------
// Sharded final round differential: sharded vs single-root
// canonical-equal across fuzz-derived cases, sim vs threaded
// byte-equal, and the structural properties of the parts.

TEST(ShardedFinal, CanonicalEqualToSingleRootAcrossFuzzSeeds) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const check::FuzzCase c = check::caseFromSeed(seed);
    pipeline::PipelineConfig base;
    base.domain = Domain{c.vdims};
    base.source.field = check::fieldFor(c);
    base.nblocks = c.nblocks;
    base.nranks = c.nranks;
    base.persistence_threshold = c.threshold;
    base.plan = MergePlan::fullMerge(c.nblocks);
    pipeline::PipelineConfig sharded = base;
    sharded.sharded_final = true;
    const pipeline::SimResult r_base = pipeline::runSimPipeline(base);
    const pipeline::SimResult r_shard = pipeline::runSimPipeline(sharded);
    if (c.nblocks > 1) {
      EXPECT_GT(r_shard.outputs.size(), 1u) << c.describe();
    }
    const check::CheckReport rep = check::compareExact(
        canonOf(base, r_base.outputs), canonOf(sharded, r_shard.outputs));
    EXPECT_TRUE(rep.ok()) << c.describe() << ": " << rep.summary();
  }
}

TEST(ShardedFinal, WithPremergeStillCanonicalEqual) {
  pipeline::PipelineConfig base = makeConfig(21, {12, 9, 10}, 8, 4, 0.1f);
  pipeline::PipelineConfig both = base;
  both.sharded_final = true;
  both.premerge = true;
  const pipeline::SimResult r_base = pipeline::runSimPipeline(base);
  const pipeline::SimResult r_both = pipeline::runSimPipeline(both);
  const check::CheckReport rep = check::compareExact(
      canonOf(base, r_base.outputs), canonOf(both, r_both.outputs));
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ShardedFinal, ThreadedMatchesSimBytes) {
  for (const bool premerge : {false, true}) {
    pipeline::PipelineConfig cfg = makeConfig(23, {10, 11, 9}, 8, 4, 0.0f);
    cfg.sharded_final = true;
    cfg.premerge = premerge;
    const pipeline::SimResult sim = pipeline::runSimPipeline(cfg);
    const pipeline::ThreadedResult thr = pipeline::runThreadedPipeline(cfg);
    EXPECT_EQ(sim.outputs.size(), thr.outputs.size());
    EXPECT_TRUE(sameBytes(sim.outputs, thr.outputs)) << "premerge=" << premerge;
  }
}

TEST(ShardedFinal, PartsPartitionTheArcs) {
  // No arc may appear in two parts, and each part must carry a
  // bounded share: the boundary-ownership round deals live arcs
  // round-robin, so the parts differ in size by at most one arc.
  pipeline::PipelineConfig cfg = makeConfig(29, {11, 11, 8}, 4, 2, 0.0f);
  cfg.sharded_final = true;
  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);
  ASSERT_GT(r.outputs.size(), 1u);
  std::vector<std::int64_t> arc_counts;
  std::int64_t total = 0;
  for (const io::Bytes& b : r.outputs) {
    const MsComplex part = io::unpack(b);
    arc_counts.push_back(part.liveArcCount());
    total += part.liveArcCount();
  }
  pipeline::PipelineConfig base = cfg;
  base.sharded_final = false;
  const pipeline::SimResult rb = pipeline::runSimPipeline(base);
  ASSERT_EQ(rb.outputs.size(), 1u);
  EXPECT_EQ(total, io::unpack(rb.outputs[0]).liveArcCount());
  const auto [lo, hi] = std::minmax_element(arc_counts.begin(), arc_counts.end());
  EXPECT_LE(*hi - *lo, 1);
}

// ---------------------------------------------------------------------------
// Sentinel encoding and blob wire-format units.

TEST(ShardedFinal, SentinelRoundTrip) {
  for (const int pos : {0, 1, 7, merge::kShardMaxPositions - 1}) {
    for (const std::uint32_t ord : {0u, 1u, 12345u, merge::kShardMaxOrdinal - 1}) {
      for (const bool end : {false, true}) {
        const CellAddr s = merge::shardSentinel(pos, ord, end);
        EXPECT_TRUE(merge::isShardSentinel(s));
        EXPECT_EQ(merge::shardSentinelPos(s), pos);
        EXPECT_EQ(merge::shardSentinelOrdinal(s), ord);
        EXPECT_EQ(merge::shardSentinelEnd(s), end);
      }
    }
  }
}

TEST(ShardedFinal, BlobRoundTripPreservesFlagsAndSkeleton) {
  MsComplex c = blockComplexFor(3);
  const Region prior = merge::priorCoveredRegion(Domain{{10, 9, 8}}, 4, 1);
  const io::Bytes blob = merge::makeShardBlob(c, 2, prior);
  const merge::ShardSkeleton sk = merge::parseShardBlob(blob);
  EXPECT_EQ(static_cast<std::int64_t>(sk.dup_flags.size()), c.liveArcCount());
  EXPECT_EQ(sk.complex.liveArcCount(), c.liveArcCount());
  EXPECT_EQ(sk.complex.liveNodeCount(), c.liveNodeCount());
}

// ---------------------------------------------------------------------------
// Mutation self-tests: each differential checker must be able to
// fail. A checker that cannot reject a corrupted input proves
// nothing when it passes.

TEST(MutationSelfTest, CompareExactRejectsDroppedPart) {
  pipeline::PipelineConfig cfg = makeConfig(31, {9, 9, 9}, 4, 2, 0.0f);
  cfg.sharded_final = true;
  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);
  ASSERT_GT(r.outputs.size(), 1u);
  std::vector<io::Bytes> mutated(r.outputs.begin(), r.outputs.end() - 1);
  const check::CheckReport rep =
      check::compareExact(canonOf(cfg, r.outputs), canonOf(cfg, mutated));
  EXPECT_FALSE(rep.ok());
}

TEST(MutationSelfTest, CompareExactRejectsTamperedGeometry) {
  // Rebuild the output complex with one arc's path subtly reordered:
  // the canonical comparison must see it even though the node/arc
  // graph is unchanged.
  pipeline::PipelineConfig cfg = makeConfig(31, {9, 9, 9}, 4, 2, 0.0f);
  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);
  ASSERT_EQ(r.outputs.size(), 1u);
  const MsComplex c = io::unpack(r.outputs[0]);
  MsComplex tampered(c.domain(), c.region());
  for (const Node& nd : c.nodes()) tampered.addNode(nd.addr, nd.index, nd.value);
  bool flipped = false;
  for (const Arc& ar : c.arcs()) {
    std::vector<CellAddr> cells = c.flattenGeom(ar.geom);
    if (!flipped && cells.size() >= 3 && cells.front() != cells[cells.size() / 2]) {
      std::swap(cells.front(), cells[cells.size() / 2]);
      flipped = true;
    }
    Geom g;
    g.cells = std::move(cells);
    tampered.addArc(ar.lower, ar.upper, tampered.addGeom(std::move(g)));
  }
  tampered.recomputeBoundary();
  ASSERT_TRUE(flipped);
  const check::CheckReport rep =
      check::compareExact(check::canonicalize(c), check::canonicalize(tampered));
  EXPECT_FALSE(rep.ok());
}

TEST(MutationSelfTest, ParseShardBlobRejectsFlagCountMismatch) {
  MsComplex c = blockComplexFor(3);
  const Region prior = merge::priorCoveredRegion(Domain{{10, 9, 8}}, 4, 1);
  io::Bytes blob = merge::makeShardBlob(c, 0, prior);
  // Claim one more arc than the skeleton holds: the flag section and
  // the skeleton disagree and the parse must refuse.
  ASSERT_GE(blob.size(), 4u);
  std::uint32_t narcs;
  std::memcpy(&narcs, blob.data(), sizeof narcs);
  ++narcs;
  std::memcpy(blob.data(), &narcs, sizeof narcs);
  EXPECT_THROW(merge::parseShardBlob(blob), std::exception);
}

TEST(MutationSelfTest, FlippedDupFlagChangesTheMergedGraph) {
  // The dup flags carry the one geometry-dependent decision of the
  // replicated merge; flipping one must change the outcome (else the
  // flags would be dead weight and the replay argument vacuous).
  pipeline::PipelineConfig cfg = makeConfig(29, {11, 11, 8}, 4, 2, 0.0f);
  const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);
  std::vector<merge::ShardSkeleton> parts, tampered;
  for (int p = 0; p < cfg.nblocks; ++p) {
    MsComplex c = computeBlockComplex(cfg, blocks[static_cast<std::size_t>(p)],
                                      nullptr, nullptr, 0);
    const io::Bytes blob = merge::makeShardBlob(
        c, p, merge::priorCoveredRegion(cfg.domain, cfg.nblocks, p));
    parts.push_back(merge::parseShardBlob(blob));
    tampered.push_back(merge::parseShardBlob(blob));
  }
  bool flipped = false;
  for (auto& sk : tampered) {
    for (std::uint8_t& f : sk.dup_flags) {
      if (f != 0) {  // a duplicate arc: un-flagging forces a re-add
        f = 0;
        flipped = true;
        break;
      }
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped) << "no duplicate-flagged arc in any skeleton";
  const MsComplex a = merge::mergeShardSkeletons(std::move(parts), 0.0f);
  const MsComplex b = merge::mergeShardSkeletons(std::move(tampered), 0.0f);
  EXPECT_NE(a.liveArcCount(), b.liveArcCount());
}

}  // namespace
}  // namespace msc
