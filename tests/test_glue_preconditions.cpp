/// Direct verification of the two section IV-F3 guarantees that the
/// gluing algorithm relies on:
///   1. "any critical cell in this shared boundary is a node in both
///      MS_root and MS_i" -- the plane-restricted node sets of two
///      adjacent blocks are identical;
///   2. "when both endpoints of an arc are on the shared boundary,
///      the arc is guaranteed to exist in MS_root already" -- the
///      plane-internal arcs (including their geometry) are identical.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/gradient.hpp"
#include "core/lower_star.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

struct PlaneView {
  std::set<std::pair<CellAddr, int>> nodes;  // (address, index)
  /// Arcs fully inside the plane, identified by their complete
  /// geometric path (so multi-arcs are distinguished).
  std::set<std::vector<CellAddr>> arcs;
};

/// Collect the part of a block's complex lying in the global refined
/// plane (axis, coordinate).
PlaneView planeView(const MsComplex& c, int axis, std::int64_t plane) {
  PlaneView v;
  const Domain& d = c.domain();
  std::set<CellAddr> on_plane;
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    if (d.coordOf(nd.addr)[axis] != plane) continue;
    v.nodes.insert({nd.addr, nd.index});
    on_plane.insert(nd.addr);
  }
  for (const Arc& ar : c.arcs()) {
    if (!ar.alive) continue;
    if (!on_plane.contains(c.node(ar.lower).addr) ||
        !on_plane.contains(c.node(ar.upper).addr))
      continue;
    std::vector<CellAddr> path = ar.geom == kNone ? std::vector<CellAddr>{}
                                                  : c.flattenGeom(ar.geom);
    // The whole V-path must lie in the plane as well (the claim the
    // dedup rule rests on): verify and record.
    for (const CellAddr a : path) EXPECT_EQ(d.coordOf(a)[axis], plane);
    v.arcs.insert(std::move(path));
  }
  return v;
}

class GluePreconditions
    : public testing::TestWithParam<std::pair<const char*, bool>> {};

TEST_P(GluePreconditions, SharedPlaneStructureIdentical) {
  const auto [fname, use_sweep] = GetParam();
  const Domain d{{11, 11, 11}};
  const synth::Field field = std::string(fname) == "noise"
                                 ? synth::noise(13)
                                 : std::string(fname) == "hydrogen"
                                       ? synth::hydrogenLike(d)
                                       : synth::sinusoid(d, 3);
  const auto blocks = decompose(d, 2);
  const Box3 b0 = blocks[0].refinedBox();
  int axis = 0;
  for (int a = 1; a < 3; ++a)
    if (blocks[1].refinedBox().lo[a] == b0.hi[a]) axis = a;
  // Find the split axis robustly.
  for (int a = 0; a < 3; ++a)
    if (blocks[1].refinedBox().lo[a] > 0) axis = a;
  const std::int64_t plane = b0.hi[axis];

  std::vector<MsComplex> complexes;
  for (const Block& blk : blocks) {
    const BlockField bf = synth::sample(blk, field);
    const GradientField g =
        use_sweep ? computeGradientSweep(bf) : computeGradientLowerStar(bf);
    complexes.push_back(traceComplex(g, bf));
  }

  const PlaneView a = planeView(complexes[0], axis, plane);
  const PlaneView b = planeView(complexes[1], axis, plane);
  EXPECT_FALSE(a.nodes.empty()) << "plane has no critical cells; test vacuous";
  EXPECT_EQ(a.nodes, b.nodes) << "IV-F3 precondition 1 violated";
  EXPECT_EQ(a.arcs, b.arcs) << "IV-F3 precondition 2 violated";
}

INSTANTIATE_TEST_SUITE_P(Fields, GluePreconditions,
                         testing::Values(std::pair{"noise", false},
                                         std::pair{"noise", true},
                                         std::pair{"sinusoid", false},
                                         std::pair{"sinusoid", true},
                                         std::pair{"hydrogen", false},
                                         std::pair{"hydrogen", true}),
                         [](const auto& info) {
                           return std::string(info.param.first) +
                                  (info.param.second ? "_sweep" : "_lstar");
                         });

}  // namespace
}  // namespace msc
