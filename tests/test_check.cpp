/// Mutation self-tests for the msc::check invariant checkers: plant a
/// known defect in an otherwise-valid artifact and require the
/// matching checker to report it (and name the right rule). A checker
/// that cannot see its own target mutation is dead weight — these
/// tests are what keep the fuzz harness's oracles honest.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/canonical.hpp"
#include "check/check.hpp"
#include "check/fuzz.hpp"
#include "core/lower_star.hpp"
#include "decomp/decompose.hpp"
#include "io/pack.hpp"
#include "merge/plan.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

using check::CheckReport;

bool hasRule(const CheckReport& rep, const std::string& rule) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const check::Violation& v) { return v.rule == rule; });
}

GradientField cleanGradient(Vec3i vdims = {7, 7, 7}, unsigned seed = 3) {
  const Domain d{vdims};
  const Block whole = decompose(d, 1)[0];
  GradientOptions opts;
  opts.restrict_boundary = false;
  return computeGradientLowerStar(synth::sample(whole, synth::noise(seed)), opts);
}

/// Fully merged single-block pipeline output for complex-level tests.
MsComplex cleanComplex(int nblocks = 2) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{9, 8, 7}};
  cfg.source.field = synth::noise(11);
  cfg.nblocks = nblocks;
  cfg.plan = MergePlan::fullMerge(nblocks);
  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);
  return io::unpack(r.outputs.at(0));
}

// --- Gradient mutations --------------------------------------------

TEST(CheckMutation, CleanGradientPasses) {
  const CheckReport rep = check::checkGradient(cleanGradient());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checked, 0);
}

TEST(CheckMutation, FlippedGradientPairIsDetected) {
  const GradientField g = cleanGradient();
  const Block& blk = g.block();
  // Turn the first paired cell critical; its partner still points at
  // it, so mutuality breaks, and the critical count (hence chi) is off.
  std::vector<std::uint8_t> state = g.state();
  const auto idx = static_cast<std::size_t>(
      std::find_if(state.begin(), state.end(),
                   [](std::uint8_t s) { return s <= kPairPosZ; }) -
      state.begin());
  ASSERT_LT(idx, state.size());
  state[idx] = kCritical;
  const GradientField bad(blk, std::move(state));
  EXPECT_TRUE(hasRule(check::checkPairing(bad), "pairing.mutual"));
  EXPECT_TRUE(hasRule(check::checkGradientEuler(bad), "euler.block"));
  EXPECT_FALSE(check::checkGradient(bad).ok());
}

TEST(CheckMutation, RedirectedGradientPairIsDetected) {
  const GradientField g = cleanGradient();
  const Block& blk = g.block();
  // Point a paired cell at the opposite neighbour: the new partner
  // never points back.
  std::vector<std::uint8_t> state = g.state();
  const Vec3i r = blk.rdims();
  for (std::int64_t z = 1; z < r.z - 1; ++z)
    for (std::int64_t y = 1; y < r.y - 1; ++y)
      for (std::int64_t x = 1; x < r.x - 1; ++x) {
        const std::size_t i = static_cast<std::size_t>(blk.cellIndex({x, y, z}));
        if (state[i] > kPairPosZ) continue;
        state[i] = static_cast<std::uint8_t>(state[i] ^ 1u);  // flip direction bit
        const GradientField bad(blk, std::move(state));
        EXPECT_TRUE(hasRule(check::checkPairing(bad), "pairing.mutual"));
        return;
      }
  FAIL() << "no interior paired cell found";
}

TEST(CheckMutation, UnassignedCellIsDetected) {
  const GradientField g = cleanGradient();
  std::vector<std::uint8_t> state = g.state();
  state[state.size() / 2] = kUnassigned;
  const GradientField bad(g.block(), std::move(state));
  EXPECT_TRUE(hasRule(check::checkPairing(bad), "pairing.assigned"));
}

// --- Complex mutations ---------------------------------------------

TEST(CheckMutation, CleanMergedComplexPasses) {
  const MsComplex c = cleanComplex();
  const CheckReport rep = check::checkComplex(c);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(check::checkEuler(c, 1).ok());
}

TEST(CheckMutation, NonConsecutiveArcIndexIsDetected) {
  const Domain d{{5, 5, 5}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {8, 8, 8}}));
  // Two vertices (both index 0) joined by an arc: indices must differ
  // by exactly one.
  const NodeId a = c.addNode(0, 0, 1.0f);
  const NodeId b = c.addNode(2, 0, 2.0f);
  c.addArc(a, b, kNone);
  EXPECT_TRUE(hasRule(check::checkComplex(c), "arc.index"));
}

TEST(CheckMutation, WrongNodeAddressIsDetected) {
  const Domain d{{5, 5, 5}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {8, 8, 8}}));
  // Address 1 decodes to an edge cell (dimension 1), not a minimum...
  c.addNode(1, 0, 1.0f);
  EXPECT_TRUE(hasRule(check::checkComplex(c), "node.index"));
  // ...and an address past the refined grid decodes to nothing.
  MsComplex c2(d, Region(Box3{{0, 0, 0}, {8, 8, 8}}));
  c2.addNode(static_cast<CellAddr>(d.numCells()) + 5, 0, 1.0f);
  EXPECT_TRUE(hasRule(check::checkComplex(c2), "node.addr"));
}

TEST(CheckMutation, EulerMutationIsDetected) {
  const Domain d{{5, 5, 5}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {8, 8, 8}}));
  c.addNode(1, 1, 1.0f);  // lone 1-saddle: chi = -1, not 1
  EXPECT_TRUE(hasRule(check::checkEuler(c, 1), "euler.complex"));
}

TEST(CheckMutation, DroppedArcIsDetectedByExactComparison) {
  const MsComplex c = cleanComplex();
  const check::CanonicalComplex a = check::canonicalize(c);
  check::CanonicalComplex b = a;
  ASSERT_FALSE(b.arcs.empty());
  b.arcs.erase(b.arcs.begin() + static_cast<std::ptrdiff_t>(b.arcs.size() / 2));
  EXPECT_TRUE(check::compareExact(a, a).ok());
  EXPECT_TRUE(hasRule(check::compareExact(a, b), "diff.arc"));
}

TEST(CheckMutation, DroppedNodeIsDetectedByExactAndCensusComparison) {
  const MsComplex c = cleanComplex();
  const check::CanonicalComplex a = check::canonicalize(c);
  check::CanonicalComplex b = a;
  // Drop one minimum (nodes are sorted by address, so find one).
  const auto it = std::find_if(b.nodes.begin(), b.nodes.end(),
                               [](const check::CanonicalNode& n) { return n.index == 0; });
  ASSERT_NE(it, b.nodes.end());
  b.nodes.erase(it);
  --b.census[0];
  EXPECT_TRUE(hasRule(check::compareExact(a, b), "diff.node"));
  // As the "parallel" side of the census contract, a lost minimum is
  // a violation in both tie modes (chi changes too).
  EXPECT_TRUE(hasRule(check::compareCensus(a, b, false), "census.minima"));
  EXPECT_TRUE(hasRule(check::compareCensus(a, b, true), "census.chi"));
}

TEST(CheckMutation, StuckArtifactPairSurplusIsAccepted) {
  // The documented tolerance: one extra (min, 1-saddle) and one extra
  // (1-saddle, 2-saddle) zero-persistence pair on the parallel side
  // must pass, while the same census as a *deficit* must fail.
  check::CanonicalComplex serial;
  serial.census = {10, 20, 15, 4};
  check::CanonicalComplex parallel;
  parallel.census = {11, 22, 16, 4};
  EXPECT_TRUE(check::compareCensus(serial, parallel, false).ok());
  EXPECT_FALSE(check::compareCensus(parallel, serial, false).ok());
  // With exact ties either direction passes (chi is equal), but a
  // chi-breaking census never does.
  EXPECT_TRUE(check::compareCensus(parallel, serial, true).ok());
  check::CanonicalComplex broken = parallel;
  ++broken.census[1];
  EXPECT_TRUE(hasRule(check::compareCensus(serial, broken, true), "census.chi"));
}

// --- Decomposition mutations ---------------------------------------

TEST(CheckMutation, CleanDecompositionPasses) {
  const Domain d{{11, 9, 10}};
  for (int nb : {1, 2, 3, 5, 8, 12}) {
    const CheckReport rep = check::checkDecomposition(d, decompose(d, nb));
    EXPECT_TRUE(rep.ok()) << "nblocks=" << nb << ": " << rep.summary();
  }
}

TEST(CheckMutation, ShrunkBlockIsDetected) {
  const Domain d{{11, 9, 10}};
  std::vector<Block> blocks = decompose(d, 4);
  // Shrink a block along an axis where its hi face is the *domain*
  // boundary (an interior shared face would still be covered by the
  // neighbour's ghost layer): that plane is now covered by nobody.
  const auto it = std::find_if(blocks.begin(), blocks.end(),
                               [](const Block& b) { return !b.shared_hi[0]; });
  ASSERT_NE(it, blocks.end());
  it->vdims.x -= 1;
  EXPECT_TRUE(hasRule(check::checkDecomposition(d, blocks), "decomp.gap"));
}

TEST(CheckMutation, ShiftedBlockIsDetected) {
  const Domain d{{11, 9, 10}};
  std::vector<Block> blocks = decompose(d, 4);
  blocks[2].voffset.y += 1;  // mis-registers the block against its neighbours
  EXPECT_FALSE(check::checkDecomposition(d, blocks).ok());
}

// --- Segmentation mutations ----------------------------------------

TEST(CheckMutation, RelabeledSegmentIsDetected) {
  const GradientField g = cleanGradient({8, 8, 8}, 5);
  analysis::Segmentation seg = analysis::segmentByMinima(g);
  ASSERT_GE(seg.regionCount(), 2);
  EXPECT_TRUE(check::checkSegmentation(seg, g, check::SegmentationKind::kMinima).ok());
  // Reassign one vertex to a different (still valid) region.
  seg.labels[0] = (seg.labels[0] + 1) % seg.regionCount();
  EXPECT_TRUE(hasRule(check::checkSegmentation(seg, g, check::SegmentationKind::kMinima),
                      "seg.label"));
}

TEST(CheckMutation, CorruptSeedIsDetected) {
  const GradientField g = cleanGradient({8, 8, 8}, 5);
  analysis::Segmentation seg = analysis::segmentByMaxima(g);
  ASSERT_GE(seg.regionCount(), 1);
  EXPECT_TRUE(check::checkSegmentation(seg, g, check::SegmentationKind::kMaxima).ok());
  seg.seeds[0] = Vec3i{0, 0, 0};  // a vertex, never a maximum's voxel
  EXPECT_TRUE(hasRule(check::checkSegmentation(seg, g, check::SegmentationKind::kMaxima),
                      "seg.seed"));
}

// --- Report mechanics ----------------------------------------------

TEST(CheckMutation, ViolationCapCountsDroppedFindings) {
  CheckReport rep;
  for (std::size_t i = 0; i < CheckReport::kMaxViolations + 10; ++i)
    rep.fail("test.rule", "violation " + std::to_string(i));
  EXPECT_EQ(rep.violations.size(), CheckReport::kMaxViolations);
  EXPECT_EQ(rep.dropped, 10);
  EXPECT_FALSE(rep.ok());
  // The summary must admit the truncation.
  EXPECT_NE(rep.summary().find("more"), std::string::npos);
}

// --- Fuzz harness self-test ----------------------------------------

TEST(CheckMutation, FuzzCaseDerivationIsDeterministic) {
  const check::FuzzCase a = check::caseFromSeed(42);
  const check::FuzzCase b = check::caseFromSeed(42);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_GE(a.vdims.x, check::FuzzLimits{}.min_size);
  EXPECT_LE(a.vdims.x, check::FuzzLimits{}.max_size);
}

TEST(CheckMutation, FuzzCasePasses) {
  // One representative case end to end through every oracle.
  check::FuzzCase c;
  c.seed = 7;
  c.vdims = {8, 7, 9};
  c.field = "plateaus";
  c.nblocks = 3;
  c.nranks = 2;
  c.threshold = 0.0f;
  const std::vector<std::string> problems = check::runFuzzCase(c);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

}  // namespace
}  // namespace msc
