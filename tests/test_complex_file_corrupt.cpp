/// Adversarial io::complex_file tests, the on-disk mirror of
/// test_pack_corrupt.cpp: truncated files, flipped bytes, and hostile
/// footers must produce a clean std::runtime_error — never an
/// out-of-bounds read, a crash, or a multi-gigabyte allocation driven
/// by a corrupt count field. Unlike the wire format (where a payload
/// flip may still parse), the container carries per-block checksums,
/// so here EVERY single-byte flip must be *detected*.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "integrity/integrity.hpp"
#include "io/complex_file.hpp"
#include "io/pack.hpp"
#include "merge/plan.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<io::Bytes> sampleBlocks() {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{6, 7, 5}};
  cfg.source.field = synth::noise(21);
  cfg.nblocks = 2;
  cfg.plan = MergePlan::fullMerge(2);
  std::vector<io::Bytes> blocks = pipeline::runSimPipeline(cfg).outputs;
  blocks.push_back({});  // a "null write" contribution
  return blocks;
}

io::Bytes readAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good());
  const std::streamsize n = f.tellg();
  f.seekg(0);
  io::Bytes b(static_cast<std::size_t>(n));
  f.read(reinterpret_cast<char*>(b.data()), n);
  return b;
}

void writeAll(const std::string& path, const io::Bytes& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(f.good());
}

TEST(ComplexFileCorrupt, EveryTruncationThrows) {
  const std::string good = tmpPath("msc_cfc_trunc_good.bin");
  const std::string bad = tmpPath("msc_cfc_trunc_bad.bin");
  io::writeComplexFile(good, sampleBlocks());
  const io::Bytes full = readAll(good);
  ASSERT_GT(full.size(), 100u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const io::Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    writeAll(bad, cut);
    EXPECT_THROW(io::readComplexFile(bad), std::runtime_error)
        << "prefix of " << len << " bytes";
    EXPECT_THROW(io::readComplexFileIndex(bad), std::runtime_error)
        << "prefix of " << len << " bytes";
  }
  EXPECT_NO_THROW(io::readComplexFile(good));
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(ComplexFileCorrupt, EverySingleByteFlipIsDetected) {
  const std::string good = tmpPath("msc_cfc_flip_good.bin");
  const std::string bad = tmpPath("msc_cfc_flip_bad.bin");
  io::writeComplexFile(good, sampleBlocks());
  const io::Bytes full = readAll(good);
  // Stronger than the wire-format guarantee: a flip anywhere — block
  // payload, index entry, count, footer checksum, version, magic —
  // must be caught by a checksum or a bounds check, never returned as
  // data.
  for (std::size_t i = 0; i < full.size(); ++i) {
    io::Bytes flipped = full;
    flipped[i] =
        static_cast<std::byte>(static_cast<unsigned char>(flipped[i]) ^ 0xFFu);
    writeAll(bad, flipped);
    EXPECT_THROW(io::readComplexFile(bad), std::runtime_error)
        << "flip at byte " << i << " of " << full.size();
  }
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(ComplexFileCorrupt, BadMagicAndBadVersionRejected) {
  const std::string path = tmpPath("msc_cfc_magic.bin");
  io::writeComplexFile(path, sampleBlocks());
  io::Bytes full = readAll(path);
  ASSERT_GE(full.size(), 8u);
  {
    io::Bytes bad = full;
    bad[bad.size() - 1] = std::byte{0x00};  // high byte of the magic
    writeAll(path, bad);
    EXPECT_THROW(io::readComplexFileIndex(path), std::runtime_error);
  }
  {
    io::Bytes bad = full;
    bad[bad.size() - 8] = std::byte{0x7F};  // low byte of the version
    writeAll(path, bad);
    EXPECT_THROW(io::readComplexFileIndex(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST(ComplexFileCorrupt, HostileBlockCountRejectedWithoutAllocating) {
  // Hand-build a tail claiming ~2^56 index entries in a tiny file:
  // the count gate must reject it before any allocation or seek math.
  const std::string path = tmpPath("msc_cfc_hostile_n.bin");
  io::Bytes buf(64, std::byte{0x5A});
  const std::uint64_t n = std::uint64_t{1} << 56;
  const std::uint64_t fsum = 0;  // never reached
  const std::uint32_t version = 2;
  const std::uint32_t magic = 0x4653534Du;
  std::size_t o = buf.size() - 24;
  std::memcpy(buf.data() + o, &n, 8);
  std::memcpy(buf.data() + o + 8, &fsum, 8);
  std::memcpy(buf.data() + o + 16, &version, 4);
  std::memcpy(buf.data() + o + 20, &magic, 4);
  writeAll(path, buf);
  try {
    io::readComplexFileIndex(path);
    FAIL() << "expected hostile count to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hostile block count"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ComplexFileCorrupt, OutOfRangeExtentRejected) {
  // A footer that checksums correctly but whose one entry points past
  // the data region: the extent check must fire before any payload
  // read. Built with the real checksum so we get past the footer gate.
  const std::string path = tmpPath("msc_cfc_extent.bin");
  io::Bytes buf(16, std::byte{0x5A});  // 16 bytes of "data"
  const std::uint64_t offset = 0, size = std::uint64_t{1} << 40, block_sum = 0;
  const std::uint64_t n = 1;
  io::Bytes index(24 + 8);
  std::memcpy(index.data(), &offset, 8);
  std::memcpy(index.data() + 8, &size, 8);
  std::memcpy(index.data() + 16, &block_sum, 8);
  std::memcpy(index.data() + 24, &n, 8);
  const std::uint64_t fsum = integrity::checksum64(index.data(), index.size());
  const std::uint32_t version = 2;
  const std::uint32_t magic = 0x4653534Du;
  buf.insert(buf.end(), index.begin(), index.begin() + 24);
  const auto append = [&buf](const void* p, std::size_t k) {
    const auto* bp = static_cast<const std::byte*>(p);
    buf.insert(buf.end(), bp, bp + k);
  };
  append(&n, 8);
  append(&fsum, 8);
  append(&version, 4);
  append(&magic, 4);
  writeAll(path, buf);
  try {
    io::readComplexFileIndex(path);
    FAIL() << "expected out-of-range extent to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("extent out of range"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ComplexFileCorrupt, ErrorsNamePathAndReason) {
  const std::string path = tmpPath("msc_cfc_reason.bin");
  io::writeComplexFile(path, sampleBlocks());
  io::Bytes full = readAll(path);
  writeAll(path, io::Bytes(full.begin(), full.begin() + 10));
  try {
    io::readComplexFile(path);
    FAIL() << "expected truncation to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msc
