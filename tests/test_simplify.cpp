/// Tests for persistence-based simplification (core/simplify).
#include <gtest/gtest.h>

#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

MsComplex buildComplex(const Domain& d, const synth::Field& f, bool sweep = false) {
  const BlockField bf = synth::sample(wholeDomainBlock(d), f);
  const GradientField g = sweep ? computeGradientSweep(bf) : computeGradientLowerStar(bf);
  return traceComplex(g, bf);
}

std::int64_t euler(const MsComplex& c) {
  const auto n = c.liveNodeCounts();
  return n[0] - n[1] + n[2] - n[3];
}

/// Hand-built "two minima, one saddle between them" complex.
MsComplex twoMinOneSaddle(NodeId* m1 = nullptr, NodeId* m2 = nullptr, NodeId* s = nullptr) {
  const Domain d{{9, 9, 9}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {16, 16, 16}}));
  const NodeId a = c.addNode(d.addrOf({2, 2, 2}), 0, 1.0f);
  const NodeId b = c.addNode(d.addrOf({10, 2, 2}), 0, 0.0f);
  const NodeId sd = c.addNode(d.addrOf({5, 2, 2}), 1, 2.0f);
  const GeomId g1 = c.addGeom({{d.addrOf({5, 2, 2}), d.addrOf({4, 2, 2}), d.addrOf({3, 2, 2}),
                                d.addrOf({2, 2, 2})},
                               {}});
  const GeomId g2 = c.addGeom({{d.addrOf({5, 2, 2}), d.addrOf({6, 2, 2}), d.addrOf({10, 2, 2})},
                               {}});
  c.addArc(a, sd, g1);
  c.addArc(b, sd, g2);
  c.recomputeBoundary();
  if (m1) *m1 = a;
  if (m2) *m2 = b;
  if (s) *s = sd;
  return c;
}

TEST(Simplify, CancelMinSaddlePair) {
  NodeId m1, m2, s;
  MsComplex c = twoMinOneSaddle(&m1, &m2, &s);
  // The (m1, s) arc has persistence 1, the (m2, s) arc 2.
  SimplifyOptions opts;
  opts.persistence_threshold = 1.5f;
  SimplifyStats stats;
  EXPECT_EQ(simplify(c, opts, &stats), 1);
  EXPECT_EQ(stats.cancellations, 1);
  EXPECT_FALSE(c.node(m1).alive);
  EXPECT_FALSE(c.node(s).alive);
  EXPECT_TRUE(c.node(m2).alive);
  // No saddles left to connect to: the surviving minimum is isolated.
  EXPECT_EQ(c.node(m2).n_arcs, 0);
  EXPECT_EQ(c.liveNodeCount(), 1);
  c.checkInvariants();
}

TEST(Simplify, ThresholdRespected) {
  MsComplex c = twoMinOneSaddle();
  SimplifyOptions opts;
  opts.persistence_threshold = 0.5f;  // below both persistences
  EXPECT_EQ(simplify(c, opts), 0);
  EXPECT_EQ(c.liveNodeCount(), 3);
}

TEST(Simplify, CancellationRewiresNeighbours) {
  // min m -- saddle s (to cancel, pers small), plus s -- m2, and a
  // second saddle s2 -- m. After cancelling (m, s): new arc m2 -- s2.
  const Domain d{{9, 9, 9}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {16, 16, 16}}));
  const NodeId m = c.addNode(d.addrOf({2, 2, 2}), 0, 1.0f);
  const NodeId m2 = c.addNode(d.addrOf({10, 2, 2}), 0, 0.0f);
  const NodeId s = c.addNode(d.addrOf({5, 2, 2}), 1, 1.1f);
  const NodeId s2 = c.addNode(d.addrOf({2, 7, 2}), 1, 3.0f);
  const GeomId gms = c.addGeom({{d.addrOf({5, 2, 2}), d.addrOf({2, 2, 2})}, {}});
  const GeomId gm2s = c.addGeom({{d.addrOf({5, 2, 2}), d.addrOf({10, 2, 2})}, {}});
  const GeomId gms2 = c.addGeom({{d.addrOf({2, 7, 2}), d.addrOf({2, 2, 2})}, {}});
  c.addArc(m, s, gms);
  c.addArc(m2, s, gm2s);
  c.addArc(m, s2, gms2);
  c.recomputeBoundary();

  SimplifyOptions opts;
  opts.persistence_threshold = 0.2f;
  SimplifyStats stats;
  ASSERT_EQ(simplify(c, opts, &stats), 1);
  EXPECT_EQ(stats.arcs_created, 1);
  // The new arc connects m2 (lower nbr of s) with s2 (upper nbr of m).
  ASSERT_EQ(c.liveArcCount(), 1);
  for (const Arc& ar : c.arcs()) {
    if (!ar.alive) continue;
    EXPECT_EQ(ar.lower, m2);
    EXPECT_EQ(ar.upper, s2);
    // Geometry: s2 -> m, reverse(s -> m), s -> m2.
    EXPECT_EQ(c.flattenGeom(ar.geom),
              (std::vector<CellAddr>{d.addrOf({2, 7, 2}), d.addrOf({2, 2, 2}),
                                     d.addrOf({2, 2, 2}), d.addrOf({5, 2, 2}),
                                     d.addrOf({5, 2, 2}), d.addrOf({10, 2, 2})}));
  }
  c.checkInvariants();
}

TEST(Simplify, MultiArcPairNotCancelled) {
  // Two arcs between the same min and saddle (a loop): cancelling
  // would strangle the complex; both must survive.
  const Domain d{{9, 9, 9}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {16, 16, 16}}));
  const NodeId m = c.addNode(d.addrOf({2, 2, 2}), 0, 0.0f);
  const NodeId s = c.addNode(d.addrOf({5, 2, 2}), 1, 0.1f);
  c.addArc(m, s, kNone);
  c.addArc(m, s, kNone);
  c.recomputeBoundary();
  SimplifyOptions opts;
  opts.persistence_threshold = 10.0f;
  SimplifyStats stats;
  EXPECT_EQ(simplify(c, opts, &stats), 0);
  EXPECT_EQ(stats.skipped_multi_arc, 2);  // both arcs attempted
  EXPECT_EQ(c.liveNodeCount(), 2);
}

TEST(Simplify, BoundaryNodesNeverCancelled) {
  const Domain d{{9, 9, 9}};
  Block left;
  left.domain = d;
  left.vdims = {5, 9, 9};
  left.voffset = {0, 0, 0};
  left.shared_hi[0] = true;
  const BlockField bf = synth::sample(left, synth::noise(4));
  MsComplex c = traceComplex(computeGradientSweep(bf), bf);

  SimplifyOptions opts;
  opts.persistence_threshold = 10.0f;  // everything interior goes
  simplify(c, opts);
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    if (!nd.boundary) continue;
    // All boundary nodes survived (none were cancelled).
    EXPECT_TRUE(true);
  }
  // At least one interior node survives too (chi bookkeeping), but
  // every boundary critical cell must still be present: recount from
  // the gradient.
  const GradientField g = computeGradientSweep(bf);
  std::int64_t boundary_criticals = 0;
  const Vec3i r = left.rdims();
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x)
        if (g.isCritical({x, y, z}) && left.onSharedBoundary({x, y, z})) ++boundary_criticals;
  std::int64_t live_boundary = 0;
  for (const Node& nd : c.nodes())
    if (nd.alive && nd.boundary) ++live_boundary;
  EXPECT_EQ(live_boundary, boundary_criticals);
}

TEST(Simplify, EulerInvariantUnderCancellation) {
  const Domain d{{12, 12, 12}};
  MsComplex c = buildComplex(d, synth::noise(8));
  const std::int64_t chi = euler(c);
  SimplifyOptions opts;
  opts.persistence_threshold = 0.3f;
  opts.max_cancellations = 1;
  while (simplify(c, opts) == 1) EXPECT_EQ(euler(c), chi);
}

TEST(Simplify, FullSimplificationReachesCancellationFixedPoint) {
  // On a single interior block (no shared boundary), cancelling with
  // an unbounded threshold runs until no *valid* cancellation
  // remains. Extrema simplify completely (one global minimum
  // survives, chi bookkeeping); what may survive beyond that are
  // saddle-saddle pairs connected by more than one arc, which the
  // multi-arc rule correctly refuses to cancel (strangulation).
  const Domain d{{12, 12, 12}};
  MsComplex c = buildComplex(d, synth::noise(12));
  SimplifyOptions opts;
  opts.persistence_threshold = 100.0f;
  opts.max_new_arcs_per_cancellation = 0;  // no degree guard: pure fixed point
  simplify(c, opts);
  const auto n = c.liveNodeCounts();
  EXPECT_EQ(n[0], 1);
  EXPECT_EQ(n[3], 0);
  EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
  // Fixed point: every surviving arc is part of a multi-arc pair.
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a) {
    if (!c.arc(a).alive) continue;
    EXPECT_FALSE(isCancellable(c, a));
    EXPECT_GE(c.countArcsBetween(c.arc(a).lower, c.arc(a).upper), 2);
  }
}

TEST(Simplify, CleanFieldSimplifiesToMinimalComplex) {
  // Without strangulation (a clean Morse field), unbounded
  // simplification does reach the minimal complex of a box.
  const Domain d{{17, 17, 17}};
  MsComplex c = buildComplex(d, synth::cosineProduct(d, 2));
  SimplifyOptions opts;
  opts.persistence_threshold = 100.0f;
  simplify(c, opts);
  const auto n = c.liveNodeCounts();
  EXPECT_EQ(n[0], 1);
  EXPECT_EQ(n[1], 0);
  EXPECT_EQ(n[2], 0);
  EXPECT_EQ(n[3], 0);
}

TEST(Simplify, SweepNoiseCancelsAtZeroPersistence) {
  // The greedy sweep's extra critical cells on the cosine field are
  // zero-persistence pairs; simplifying with a tiny threshold must
  // recover the closed-form counts (cf. test_gradient).
  const int k = 2;
  const Domain d{{17, 17, 17}};
  MsComplex c = buildComplex(d, synth::cosineProduct(d, k), /*sweep=*/true);
  SimplifyOptions opts;
  opts.persistence_threshold = 1e-5f;
  simplify(c, opts);
  const auto n = c.liveNodeCounts();
  const std::int64_t km = k, kx = k - 1;
  EXPECT_EQ(n[0], km * km * km);
  EXPECT_EQ(n[1], 3 * km * km * kx);
  EXPECT_EQ(n[2], 3 * km * kx * kx);
  EXPECT_EQ(n[3], kx * kx * kx);
}

TEST(Simplify, HierarchyRecordsPersistence) {
  const Domain d{{10, 10, 10}};
  MsComplex c = buildComplex(d, synth::noise(5));
  SimplifyOptions opts;
  opts.persistence_threshold = 0.5f;
  SimplifyStats stats;
  const std::int64_t n = simplify(c, opts, &stats);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::ssize(c.cancellations()), n);
  for (const Cancellation& cc : c.cancellations()) {
    EXPECT_LE(cc.persistence, 0.5f);
    EXPECT_FALSE(c.node(cc.lower).alive);
    EXPECT_FALSE(c.node(cc.upper).alive);
    EXPECT_EQ(c.node(cc.lower).index + 1, c.node(cc.upper).index);
  }
  // Generation stamps are consistent: destroyed at gen g means the
  // g-th cancellation named this node.
  for (std::int32_t gen = 1; gen <= c.generation(); ++gen) {
    const Cancellation& cc = c.cancellations()[static_cast<std::size_t>(gen - 1)];
    EXPECT_EQ(c.node(cc.lower).destroyed_gen, gen);
    EXPECT_EQ(c.node(cc.upper).destroyed_gen, gen);
  }
}

TEST(Simplify, MaxCancellationsHonoured) {
  const Domain d{{10, 10, 10}};
  MsComplex c = buildComplex(d, synth::noise(6));
  SimplifyOptions opts;
  opts.persistence_threshold = 100.0f;
  opts.max_cancellations = 3;
  EXPECT_EQ(simplify(c, opts), 3);
}

}  // namespace
}  // namespace msc
