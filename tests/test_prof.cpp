/// Tests for the msc::prof sampling profiler and heartbeat reporter:
/// the profiled pipeline must be byte-identical to the unprofiled
/// one, folded stacks must be well-formed, the per-rank seqlock
/// bookkeeping must stay balanced under concurrent sampling (the
/// suite carries the `profile` ctest label so the sanitizer script
/// races it under TSan), a never-started sampler must record nothing,
/// and the heartbeat JSON stream must round-trip through its own
/// parser.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "check/fuzz.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "prof/heartbeat.hpp"
#include "prof/prof.hpp"

namespace msc {
namespace {

pipeline::PipelineConfig configFor(const check::FuzzCase& c) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{c.vdims};
  cfg.source.field = check::fieldFor(c);
  cfg.nblocks = c.nblocks;
  cfg.nranks = c.nranks;
  cfg.persistence_threshold = c.threshold;
  cfg.plan = MergePlan::fullMerge(c.nblocks);
  cfg.premerge = c.premerge;
  cfg.sharded_final = c.sharded;
  return cfg;
}

// --- Byte identity: attaching the profiler (with the background
// sampler actually running) must not change a single output byte, on
// either driver, across a spread of fuzz-derived cases.

TEST(ProfByteIdentity, ThreadedDriverAcrossFuzzSeeds) {
  check::FuzzLimits lim;
  lim.with_merge_dims = true;  // cover premerge/sharded code paths too
  for (unsigned seed = 0; seed < 8; ++seed) {
    const check::FuzzCase c = check::caseFromSeed(seed, lim);
    pipeline::PipelineConfig cfg = configFor(c);
    const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(cfg);

    prof::Profiler profiler(cfg.nranks);
    profiler.startSampler();
    cfg.profiler = &profiler;
    const pipeline::ThreadedResult profiled = pipeline::runThreadedPipeline(cfg);
    profiler.stopSampler();

    ASSERT_EQ(plain.outputs.size(), profiled.outputs.size()) << c.describe();
    for (std::size_t i = 0; i < plain.outputs.size(); ++i)
      EXPECT_EQ(plain.outputs[i], profiled.outputs[i])
          << c.describe() << " block " << i;
  }
}

TEST(ProfByteIdentity, SimDriverAcrossFuzzSeeds) {
  for (unsigned seed = 10; seed < 15; ++seed) {
    const check::FuzzCase c = check::caseFromSeed(seed);
    pipeline::PipelineConfig cfg = configFor(c);
    const pipeline::SimResult plain = pipeline::runSimPipeline(cfg);

    prof::Profiler profiler(cfg.nranks);
    profiler.startSampler();
    cfg.profiler = &profiler;
    const pipeline::SimResult profiled = pipeline::runSimPipeline(cfg);
    profiler.stopSampler();

    ASSERT_EQ(plain.outputs.size(), profiled.outputs.size()) << c.describe();
    for (std::size_t i = 0; i < plain.outputs.size(); ++i)
      EXPECT_EQ(plain.outputs[i], profiled.outputs[i])
          << c.describe() << " block " << i;
  }
}

// --- Folded-stack well-formedness: keys are ';'-joined non-empty
// frames, counts are positive, and the per-rank/aggregated totals
// both equal sampleCount().

TEST(ProfFolded, WellFormedAfterPipelineRun) {
  const check::FuzzCase c = check::caseFromSeed(3);
  pipeline::PipelineConfig cfg = configFor(c);
  prof::Profiler profiler(cfg.nranks);
  cfg.profiler = &profiler;
  // Deterministic sampling: snapshot by hand around the run instead
  // of depending on wall-clock timing.
  profiler.sampleOnce();
  (void)pipeline::runThreadedPipeline(cfg);
  profiler.sampleOnce();
  ASSERT_GT(profiler.sampleCount(), 0);

  std::int64_t total = 0;
  for (const auto& [stack, count] : profiler.foldedCounts()) {
    EXPECT_GT(count, 0) << stack;
    EXPECT_FALSE(stack.empty());
    EXPECT_NE(stack.front(), ';') << stack;
    EXPECT_NE(stack.back(), ';') << stack;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << stack;
    total += count;
  }
  EXPECT_EQ(total, profiler.sampleCount());

  std::ostringstream os;
  profiler.writeFolded(os, /*per_rank=*/true);
  std::int64_t per_rank_total = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 4, "rank"), 0) << line;
    per_rank_total += std::stoll(line.substr(space + 1));
  }
  EXPECT_EQ(per_rank_total, profiler.sampleCount());
}

TEST(ProfFolded, NestingIsExactByConstruction) {
  prof::Profiler profiler(2);
  profiler.push(0, "outer");
  profiler.push(0, "inner");
  profiler.sampleOnce();
  profiler.pop(0);
  profiler.sampleOnce();
  profiler.pop(0);
  profiler.sampleOnce();

  const auto counts = profiler.foldedCounts();
  ASSERT_EQ(counts.at("outer;inner"), 1);
  ASSERT_EQ(counts.at("outer"), 1);
  // Rank 1 never pushed: all three of its snapshots are idle, plus
  // rank 0's final empty-stack snapshot.
  ASSERT_EQ(counts.at("(idle)"), 4);

  const auto top = profiler.topSpans(0);
  for (const prof::HotSpan& h : top) {
    if (h.name == "outer") {
      EXPECT_EQ(h.self, 1);   // innermost in exactly one sample
      EXPECT_EQ(h.total, 2);  // on the stack in two
    }
    if (h.name == "inner") {
      EXPECT_EQ(h.self, 1);
      EXPECT_EQ(h.total, 1);
    }
  }
}

// --- Deterministic span-stack bookkeeping under 8 writer threads
// racing the sampler (the TSan target of the `profile` label): depth
// returns to zero, nothing truncates, and every sampled stack is a
// prefix of the fixed push sequence (a torn read would surface as an
// impossible stack).

TEST(ProfConcurrency, BalancedUnderEightThreadsWithSampler) {
  constexpr int kRanks = 8;
  constexpr int kIters = 2000;
  prof::Profiler profiler(kRanks);
  profiler.startSampler();

  std::vector<std::thread> threads;
  threads.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&profiler, r] {
      const prof::ThreadBind bind(&profiler, r);
      for (int i = 0; i < kIters; ++i) {
        MSC_PROF_POINT("a");
        {
          MSC_PROF_POINT("b");
          { MSC_PROF_POINT("c"); }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  profiler.stopSampler();

  EXPECT_EQ(profiler.truncated(), 0);
  for (int r = 0; r < kRanks; ++r)
    EXPECT_TRUE(profiler.liveStack(r).empty()) << "rank " << r;
  for (const auto& [stack, count] : profiler.foldedCounts()) {
    EXPECT_TRUE(stack == "(idle)" || stack == "a" || stack == "a;b" ||
                stack == "a;b;c")
        << "impossible sampled stack: " << stack;
    EXPECT_GT(count, 0);
  }
}

TEST(ProfConcurrency, TruncationIsCountedAndRecovers) {
  prof::ProfilerOptions opts;
  opts.max_depth = 4;
  prof::Profiler profiler(1, opts);
  for (int i = 0; i < 6; ++i) profiler.push(0, "deep");
  EXPECT_EQ(profiler.truncated(), 2);
  EXPECT_EQ(static_cast<int>(profiler.liveStack(0).size()), 4);
  for (int i = 0; i < 6; ++i) profiler.pop(0);
  EXPECT_TRUE(profiler.liveStack(0).empty());
}

// --- Disabled paths record nothing.

TEST(ProfDisabled, NoSamplesWithoutSamplerStart) {
  const check::FuzzCase c = check::caseFromSeed(1);
  pipeline::PipelineConfig cfg = configFor(c);
  prof::Profiler profiler(cfg.nranks);
  cfg.profiler = &profiler;  // attached, but the sampler never runs
  (void)pipeline::runThreadedPipeline(cfg);
  EXPECT_EQ(profiler.sampleCount(), 0);
  EXPECT_FALSE(profiler.samplerRunning());
  EXPECT_TRUE(profiler.foldedCounts().empty());
}

TEST(ProfDisabled, UnboundMarkersAreInert) {
  // No ThreadBind installed: the marker must not crash or record.
  { MSC_PROF_POINT("unbound"); }
  prof::Profiler profiler(1);
  {
    const prof::ThreadBind bind(nullptr, 0);
    MSC_PROF_POINT("null_bound");
  }
  profiler.sampleOnce();
  EXPECT_EQ(profiler.foldedCounts().count("unbound"), 0u);
  EXPECT_EQ(profiler.foldedCounts().count("null_bound"), 0u);
}

TEST(ProfDisabled, InternIsStable) {
  prof::Profiler profiler(1);
  const char* a = profiler.intern("merge_round");
  const char* b = profiler.intern(std::string("merge_") + "round");
  EXPECT_EQ(a, b);
}

// --- Heartbeat JSON: render -> parse round-trip, live and synthetic.

TEST(Heartbeat, JsonLineRoundTripsSyntheticSnapshot) {
  prof::HeartbeatSnapshot s;
  s.elapsed_s = 12.5;
  s.nranks = 4;
  s.stage = {"compute", "compute", "merge", "(idle)"};
  s.leaf = {"gradient_lower_star", "trace_paths", "glue", "(idle)"};
  s.round = {-1, -1, 2, -1};
  s.rounds_total = 3;
  s.frac = 0.625;
  s.eta_s = 7.5;
  s.samples = 12345;
  s.mem_peak_bytes = 1 << 20;
  s.pack_bytes_per_s = 1e6;

  std::map<std::string, std::string> kv;
  ASSERT_TRUE(prof::parseJsonLine(prof::renderJsonLine(s), kv));
  EXPECT_EQ(kv.at("schema_version"),
            std::to_string(prof::kHeartbeatSchemaVersion));
  EXPECT_EQ(kv.at("ranks"), "4");
  EXPECT_EQ(kv.at("rounds_total"), "3");
  EXPECT_EQ(kv.at("round_max"), "2");
  EXPECT_EQ(kv.at("samples"), "12345");
  EXPECT_EQ(std::stod(kv.at("frac")), 0.625);
  EXPECT_EQ(std::stod(kv.at("eta_s")), 7.5);
  // The stage digest counts stages, busiest first, comma-joined.
  EXPECT_NE(kv.at("stages").find("compute:2"), std::string::npos);
  EXPECT_NE(kv.at("stages").find("merge:1"), std::string::npos);
}

TEST(Heartbeat, LiveSnapshotAgainstProfilerAndMetrics) {
  prof::Profiler profiler(2);
  metrics::Registry registry(2);
  profiler.noteTotalRounds(4);
  profiler.push(0, "merge");
  profiler.push(0, "glue");
  profiler.noteRound(0, 1);
  registry.setMax(0, metrics::Gauge::kMemPeakLiveBytes, 4096);
  registry.add(0, metrics::Counter::kPackBytes, 1000);

  prof::HeartbeatOptions opts;
  std::ostringstream text, json;
  opts.text = &text;
  opts.json = &json;
  opts.extra = [] { return std::string("  extra-line\n"); };
  prof::Heartbeat hb(&profiler, &registry, opts);
  hb.beat();
  profiler.pop(0);
  profiler.pop(0);

  EXPECT_NE(text.str().find("rank0: merge > glue (round 1/4)"),
            std::string::npos)
      << text.str();
  EXPECT_NE(text.str().find("extra-line"), std::string::npos);

  std::map<std::string, std::string> kv;
  ASSERT_TRUE(prof::parseJsonLine(json.str(), kv)) << json.str();
  EXPECT_EQ(kv.at("ranks"), "2");
  EXPECT_EQ(kv.at("rounds_total"), "4");
  EXPECT_EQ(kv.at("round_max"), "1");
  EXPECT_EQ(kv.at("mem_peak_bytes"), "4096");
}

TEST(Heartbeat, ParserRejectsMalformedLines) {
  std::map<std::string, std::string> kv;
  EXPECT_FALSE(prof::parseJsonLine("", kv));
  EXPECT_FALSE(prof::parseJsonLine("not json", kv));
  EXPECT_FALSE(prof::parseJsonLine("{\"a\":}", kv));
  EXPECT_FALSE(prof::parseJsonLine("{\"a\":1", kv));
  EXPECT_TRUE(prof::parseJsonLine("{\"a\":1,\"b\":\"x\\\"y\"}", kv));
  EXPECT_EQ(kv.at("a"), "1");
  EXPECT_EQ(kv.at("b"), "x\"y");
}

}  // namespace
}  // namespace msc
