/// \file oracle.hpp
/// Shared test helpers: discrete-gradient validity checks used across
/// the gradient, trace, merge and pipeline test suites.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/gradient.hpp"
#include "core/lower_star.hpp"
#include "synth/fields.hpp"

namespace msc::test {

/// Every cell assigned; pairs are mutual facet/cofacet pairs.
inline void expectValidPairing(const GradientField& g) {
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        const std::uint8_t s = g.stateAt(rc);
        ASSERT_NE(s, kUnassigned) << "unassigned cell at " << rc;
        if (s == kCritical) continue;
        const Vec3i p = g.partner(rc);
        ASSERT_TRUE(p.x >= 0 && p.y >= 0 && p.z >= 0 && p.x < r.x && p.y < r.y && p.z < r.z)
            << "partner out of range at " << rc;
        EXPECT_EQ(g.partner(p), rc) << "pairing not mutual at " << rc;
        EXPECT_EQ(std::abs(Domain::cellDim(p) - Domain::cellDim(rc)), 1);
      }
}

/// Euler characteristic from critical counts must equal chi of a
/// solid box, which is 1, for any discrete gradient field.
inline void expectEulerOne(const GradientField& g) {
  const auto c = g.criticalCounts();
  EXPECT_EQ(c[0] - c[1] + c[2] - c[3], 1)
      << "counts: " << c[0] << " " << c[1] << " " << c[2] << " " << c[3];
}

/// V-paths must be acyclic: for each (d-1, d) layer, the directed
/// graph tail->head (pairs) and head->other-facets must have no
/// cycle. Checked by iterative DFS with colors.
inline void expectAcyclic(const GradientField& g) {
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  const auto n = static_cast<std::size_t>(blk.numCells());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done. Only tail cells
  // participate (we step tail -> head -> next tails).
  for (int layer = 0; layer < 3; ++layer) {  // tail dimension d-1 = layer
    std::vector<std::uint8_t> color(n, 0);
    std::vector<std::pair<LocalCell, int>> stack;
    for (std::int64_t z = 0; z < r.z; ++z)
      for (std::int64_t y = 0; y < r.y; ++y)
        for (std::int64_t x = 0; x < r.x; ++x) {
          const Vec3i start{x, y, z};
          if (Domain::cellDim(start) != layer || !g.isTail(start)) continue;
          const LocalCell si = blk.cellIndex(start);
          if (color[si] == 2) continue;
          stack.clear();
          stack.push_back({si, 0});
          color[si] = 1;
          while (!stack.empty()) {
            auto& [ci, next] = stack.back();
            const Vec3i rc = blk.cellCoord(ci);
            const Vec3i head = g.partner(rc);
            std::array<Vec3i, 6> fs;
            const int nf = facets(head, r, fs);
            bool pushed = false;
            while (next < nf) {
              const Vec3i cand = fs[next++];
              if (cand == rc || !g.isTail(cand)) continue;
              const LocalCell cj = blk.cellIndex(cand);
              ASSERT_NE(color[cj], 1) << "V-path cycle through " << cand;
              if (color[cj] == 0) {
                color[cj] = 1;
                stack.push_back({cj, 0});
                pushed = true;
                break;
              }
            }
            if (!pushed && next >= nf) {
              color[ci] = 2;
              stack.pop_back();
            }
          }
        }
  }
}

inline void expectValidGradient(const GradientField& g) {
  expectValidPairing(g);
  expectEulerOne(g);
  expectAcyclic(g);
}

/// Extract the gradient states of all cells on a given global refined
/// plane (axis, coordinate), keyed by global address, with pairing
/// expressed as the partner's global address (block-independent).
inline std::map<CellAddr, CellAddr> planeGradient(const GradientField& g, int axis,
                                                  std::int64_t global_plane) {
  std::map<CellAddr, CellAddr> out;
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  const std::int64_t local = global_plane - 2 * blk.voffset[axis];
  if (local < 0 || local >= r[axis]) return out;
  for (std::int64_t a = 0; a < r[(axis + 1) % 3]; ++a)
    for (std::int64_t b = 0; b < r[(axis + 2) % 3]; ++b) {
      Vec3i rc;
      rc[axis] = local;
      rc[(axis + 1) % 3] = a;
      rc[(axis + 2) % 3] = b;
      const CellAddr key = blk.globalAddr(rc);
      out[key] = g.isCritical(rc) ? kNoCell : blk.globalAddr(g.partner(rc));
    }
  return out;
}

}  // namespace msc::test
