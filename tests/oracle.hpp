/// \file oracle.hpp
/// Shared test helpers for the gradient, trace, merge and pipeline
/// test suites. The invariant logic itself lives in src/check (the
/// same checkers the fuzz harness runs); these wrappers only adapt a
/// CheckReport to a gtest failure.
#pragma once

#include <gtest/gtest.h>

#include <map>

#include "check/check.hpp"
#include "core/gradient.hpp"
#include "core/lower_star.hpp"
#include "synth/fields.hpp"

namespace msc::test {

/// Assert a checker found nothing; on failure the report's full
/// violation listing becomes the test message.
inline void expectOk(const check::CheckReport& rep) {
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

/// Every cell assigned; pairs are mutual facet/cofacet pairs.
inline void expectValidPairing(const GradientField& g) { expectOk(check::checkPairing(g)); }

/// Euler characteristic from critical counts must equal chi of a
/// solid box, which is 1, for any discrete gradient field.
inline void expectEulerOne(const GradientField& g) {
  expectOk(check::checkGradientEuler(g));
}

/// V-paths must be acyclic in every (d-1, d) layer.
inline void expectAcyclic(const GradientField& g) { expectOk(check::checkAcyclic(g)); }

inline void expectValidGradient(const GradientField& g) {
  expectOk(check::checkGradient(g));
}

/// Extract the gradient states of all cells on a given global refined
/// plane (axis, coordinate), keyed by global address, with pairing
/// expressed as the partner's global address (block-independent).
inline std::map<CellAddr, CellAddr> planeGradient(const GradientField& g, int axis,
                                                  std::int64_t global_plane) {
  std::map<CellAddr, CellAddr> out;
  const Block& blk = g.block();
  const Vec3i r = blk.rdims();
  const std::int64_t local = global_plane - 2 * blk.voffset[axis];
  if (local < 0 || local >= r[axis]) return out;
  for (std::int64_t a = 0; a < r[(axis + 1) % 3]; ++a)
    for (std::int64_t b = 0; b < r[(axis + 2) % 3]; ++b) {
      Vec3i rc;
      rc[axis] = local;
      rc[(axis + 1) % 3] = a;
      rc[(axis + 2) % 3] = b;
      const CellAddr key = blk.globalAddr(rc);
      out[key] = g.isCritical(rc) ? kNoCell : blk.globalAddr(g.partner(rc));
    }
  return out;
}

}  // namespace msc::test
