/// Tests for Morse segmentation (analysis/segmentation): basins of
/// minima (ascending manifolds) and mountains of maxima (descending
/// manifolds).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/segmentation.hpp"
#include "core/lower_star.hpp"
#include "synth/fields.hpp"

namespace msc::analysis {
namespace {

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

GradientField gradientOf(const Domain& d, const synth::Field& f) {
  return computeGradientLowerStar(synth::sample(wholeDomainBlock(d), f));
}

TEST(SegmentMinima, RampIsOneBasin) {
  const Domain d{{7, 7, 7}};
  const Segmentation s = segmentByMinima(gradientOf(d, synth::ramp()));
  ASSERT_EQ(s.regionCount(), 1);
  EXPECT_EQ(s.seeds[0], (Vec3i{0, 0, 0}));
  for (const std::int32_t l : s.labels) EXPECT_EQ(l, 0);
}

TEST(SegmentMinima, CosineBasinsMatchMinimaCount) {
  const int k = 2;
  const Domain d{{17, 17, 17}};
  const GradientField g = gradientOf(d, synth::cosineProduct(d, k));
  const Segmentation s = segmentByMinima(g);
  EXPECT_EQ(s.regionCount(), k * k * k);
  // Every vertex labelled; every region non-empty and containing its
  // seed's vertex.
  for (const std::int32_t l : s.labels) {
    ASSERT_NE(l, kUnlabelled);
    ASSERT_LT(l, s.regionCount());
  }
  const auto sizes = s.regionSizes();
  std::int64_t total = 0;
  for (const std::int64_t sz : sizes) {
    EXPECT_GT(sz, 0);
    total += sz;
  }
  EXPECT_EQ(total, d.vdims.volume());
  // Symmetric field: basins have comparable sizes.
  for (const std::int64_t sz : sizes) {
    EXPECT_GT(sz, total / (2 * k * k * k));
    EXPECT_LT(sz, 2 * total / (k * k * k));
  }
}

TEST(SegmentMinima, SeedsAreCriticalMinima) {
  const Domain d{{11, 11, 11}};
  const GradientField g = gradientOf(d, synth::noise(7));
  const Segmentation s = segmentByMinima(g);
  EXPECT_EQ(static_cast<std::int64_t>(s.seeds.size()), g.criticalCounts()[0]);
  for (const Vec3i& seed : s.seeds) {
    EXPECT_TRUE(g.isCritical(seed));
    EXPECT_EQ(Domain::cellDim(seed), 0);
  }
}

TEST(SegmentMinima, BasinValueNotBelowItsMinimum) {
  const Domain d{{10, 10, 10}};
  Block b = wholeDomainBlock(d);
  const BlockField bf = synth::sample(b, synth::noise(5));
  const GradientField g = computeGradientLowerStar(bf);
  const Segmentation s = segmentByMinima(g);
  for (std::int64_t z = 0; z < d.vdims.z; ++z)
    for (std::int64_t y = 0; y < d.vdims.y; ++y)
      for (std::int64_t x = 0; x < d.vdims.x; ++x) {
        const std::int32_t l = s.labels[static_cast<std::size_t>(b.vertexIndex({x, y, z}))];
        const Vec3i seed = s.seeds[static_cast<std::size_t>(l)];
        const Vec3i seedVert{seed.x / 2, seed.y / 2, seed.z / 2};
        EXPECT_GE(bf.vertexValue({x, y, z}), bf.vertexValue(seedVert));
      }
}

TEST(SegmentMaxima, RampHasNoMountains) {
  // The ramp's maximum sits on the boundary *vertex*, so there is no
  // critical voxel at all: zero descending 3-manifolds is correct.
  const Domain d{{7, 7, 7}};
  const Segmentation s = segmentByMaxima(gradientOf(d, synth::ramp()));
  EXPECT_EQ(s.regionCount(), 0);
}

TEST(SegmentMaxima, SingleBumpIsOneMountain) {
  const Domain d{{15, 15, 15}};
  const auto bump = [](Vec3i p) {
    const double x = p.x / 14.0 - 0.5, y = p.y / 14.0 - 0.5, z = p.z / 14.0 - 0.5;
    return static_cast<float>(std::exp(-(x * x + y * y + z * z) / 0.05));
  };
  const Segmentation s = segmentByMaxima(gradientOf(d, bump));
  ASSERT_EQ(s.regionCount(), 1);
  const auto sizes = s.regionSizes();
  // The single mountain covers the majority of the voxels (boundary
  // ascents may orphan a thin shell).
  EXPECT_GT(sizes[0] * 2, std::ssize(s.labels));
}

TEST(SegmentMaxima, SeedsAreCriticalMaxima) {
  const Domain d{{11, 11, 11}};
  const GradientField g = gradientOf(d, synth::noise(9));
  const Segmentation s = segmentByMaxima(g);
  EXPECT_EQ(static_cast<std::int64_t>(s.seeds.size()), g.criticalCounts()[3]);
  for (const Vec3i& seed : s.seeds) {
    EXPECT_TRUE(g.isCritical(seed));
    EXPECT_EQ(Domain::cellDim(seed), 3);
  }
}

TEST(SegmentMaxima, MostVoxelsLabelledOnNoise) {
  const Domain d{{12, 12, 12}};
  const Segmentation s = segmentByMaxima(gradientOf(d, synth::noise(11)));
  std::int64_t labelled = 0;
  for (const std::int32_t l : s.labels)
    if (l != kUnlabelled) ++labelled;
  // Orphans (ascents exiting through the boundary) concentrate near
  // the boundary shell, which is a large fraction at this size; the
  // interior majority must still be labelled.
  EXPECT_GT(labelled * 10, std::ssize(s.labels) * 6);
}

TEST(SegmentMaxima, RegionSizesSumToLabelled) {
  const Domain d{{10, 10, 10}};
  const Segmentation s = segmentByMaxima(gradientOf(d, synth::sinusoid(d, 3)));
  std::int64_t labelled = 0;
  for (const std::int32_t l : s.labels)
    if (l != kUnlabelled) ++labelled;
  std::int64_t total = 0;
  for (const std::int64_t sz : s.regionSizes()) total += sz;
  EXPECT_EQ(total, labelled);
}

TEST(Segmentation, BubbleCountUseCase) {
  // The Laney et al. workflow (paper section II): count isolated
  // regions of one fluid penetrating the other. Two Gaussian bumps =
  // two mountains of significant size.
  const Domain d{{21, 21, 21}};
  const auto field = [&](Vec3i p) {
    const double x = p.x / 20.0 - 0.5, y = p.y / 20.0 - 0.5, z = p.z / 20.0 - 0.5;
    const double b1 = std::exp(-((x + 0.22) * (x + 0.22) + y * y + z * z) / 0.02);
    const double b2 = std::exp(-((x - 0.22) * (x - 0.22) + y * y + z * z) / 0.02);
    return static_cast<float>(b1 + b2);
  };
  const Segmentation s = segmentByMaxima(gradientOf(d, field));
  // Count regions with >= 5% of the voxels: exactly the two bubbles.
  std::int64_t big = 0;
  for (const std::int64_t sz : s.regionSizes())
    if (sz * 20 >= std::ssize(s.labels)) ++big;
  EXPECT_EQ(big, 2);
}

}  // namespace
}  // namespace msc::analysis
