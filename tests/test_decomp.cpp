/// Tests for domain decomposition (decomp/decompose).
#include <gtest/gtest.h>

#include <set>

#include "core/region.hpp"
#include "decomp/decompose.hpp"

namespace msc {
namespace {

TEST(Decompose, SingleBlockCoversDomain) {
  const Domain d{{10, 11, 12}};
  const auto blocks = decompose(d, 1);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].vdims, d.vdims);
  EXPECT_EQ(blocks[0].voffset, (Vec3i{0, 0, 0}));
  for (int a = 0; a < 3; ++a) {
    EXPECT_FALSE(blocks[0].shared_lo[a]);
    EXPECT_FALSE(blocks[0].shared_hi[a]);
  }
}

TEST(Decompose, SplitsLongestAxisFirst) {
  const Domain d{{17, 9, 9}};
  const auto blocks = decompose(d, 2);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].vdims, (Vec3i{9, 9, 9}));
  EXPECT_EQ(blocks[1].vdims, (Vec3i{9, 9, 9}));
  EXPECT_EQ(blocks[1].voffset, (Vec3i{8, 0, 0}));
  EXPECT_TRUE(blocks[0].shared_hi[0]);
  EXPECT_TRUE(blocks[1].shared_lo[0]);
}

TEST(Decompose, SharedLayerOverlapsByOneVertex) {
  const Domain d{{9, 9, 9}};
  for (const int n : {2, 4, 8, 16, 32}) {
    const auto blocks = decompose(d, n);
    ASSERT_EQ(std::ssize(blocks), n);
    // Every pair of face-adjacent blocks shares exactly one vertex
    // plane (paper IV-A: B[X-1][y][z] == B'[0][y][z]).
    for (const Block& a : blocks) {
      for (const Block& b : blocks) {
        if (a.id >= b.id) continue;
        for (int axis = 0; axis < 3; ++axis) {
          const std::int64_t a_hi = a.voffset[axis] + a.vdims[axis] - 1;
          if (a_hi == b.voffset[axis]) {
            // They abut on this axis; if they overlap transversally
            // the shared flags must be consistent.
            EXPECT_TRUE(a.shared_hi[axis] || a_hi == d.vdims[axis] - 1);
          }
        }
      }
    }
  }
}

TEST(Decompose, VertexCoverageIsExact) {
  const Domain d{{12, 10, 9}};
  for (const int n : {2, 3, 4, 6, 8, 16}) {
    const auto blocks = decompose(d, n);
    // Every vertex of the domain is covered; interior partition
    // planes are covered exactly twice along their split axis.
    std::vector<int> cover(static_cast<std::size_t>(d.vdims.volume()), 0);
    for (const Block& b : blocks)
      for (std::int64_t z = 0; z < b.vdims.z; ++z)
        for (std::int64_t y = 0; y < b.vdims.y; ++y)
          for (std::int64_t x = 0; x < b.vdims.x; ++x) {
            const Vec3i g = Vec3i{x, y, z} + b.voffset;
            ++cover[static_cast<std::size_t>(d.vertexId(g))];
          }
    for (const int c : cover) EXPECT_GE(c, 1);
  }
}

TEST(Decompose, BisectionTreeOrderGivesBoxGroups) {
  // Aligned groups of 2^k consecutive block ids must cover contiguous
  // boxes -- the property the radix merge relies on.
  const Domain d{{17, 17, 17}};
  const int n = 16;
  const auto blocks = decompose(d, n);
  for (const int group : {2, 4, 8, 16}) {
    for (int start = 0; start < n; start += group) {
      Box3 bbox = blocks[static_cast<std::size_t>(start)].refinedBox();
      std::int64_t vol = 0;
      for (int i = start; i < start + group; ++i) {
        const Box3 rb = blocks[static_cast<std::size_t>(i)].refinedBox();
        for (int a = 0; a < 3; ++a) {
          bbox.lo[a] = std::min(bbox.lo[a], rb.lo[a]);
          bbox.hi[a] = std::max(bbox.hi[a], rb.hi[a]);
        }
        vol += rb.volume();
      }
      // Member boxes overlap on shared planes, so the sum of volumes
      // is at least the bbox volume; equality of the union with the
      // bbox is checked via Region.
      Region r;
      for (int i = start; i < start + group; ++i)
        r.add(blocks[static_cast<std::size_t>(i)].refinedBox());
      r.coalesce();
      EXPECT_TRUE(r.isBox()) << "group [" << start << "," << start + group << ")";
      EXPECT_EQ(r.boxes()[0], bbox);
      EXPECT_GE(vol, bbox.volume());
    }
  }
}

TEST(Decompose, MinimumBlockSizeEnforced) {
  const Domain d{{3, 3, 3}};
  EXPECT_THROW(decompose(d, 64), std::invalid_argument);
  EXPECT_THROW(decompose(d, 0), std::invalid_argument);
}

TEST(Decompose, NonPowerOfTwoCounts) {
  const Domain d{{21, 19, 18}};
  for (const int n : {3, 5, 6, 7, 12}) {
    const auto blocks = decompose(d, n);
    EXPECT_EQ(std::ssize(blocks), n);
    std::set<int> ids;
    for (const Block& b : blocks) ids.insert(b.id);
    EXPECT_EQ(std::ssize(ids), n);
  }
}

TEST(AssignBlocks, RoundRobin) {
  const auto byRank = assignBlocks(10, 4);
  ASSERT_EQ(byRank.size(), 4u);
  EXPECT_EQ(byRank[0], (std::vector<int>{0, 4, 8}));
  EXPECT_EQ(byRank[1], (std::vector<int>{1, 5, 9}));
  EXPECT_EQ(byRank[2], (std::vector<int>{2, 6}));
  EXPECT_EQ(byRank[3], (std::vector<int>{3, 7}));
}

TEST(AssignBlocks, MoreRanksThanBlocks) {
  const auto byRank = assignBlocks(2, 5);
  ASSERT_EQ(byRank.size(), 5u);
  EXPECT_EQ(byRank[0].size(), 1u);
  EXPECT_EQ(byRank[1].size(), 1u);
  EXPECT_TRUE(byRank[2].empty());
}

}  // namespace
}  // namespace msc
