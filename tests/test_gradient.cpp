/// Tests for discrete gradient computation: validity, acyclicity,
/// Euler characteristic, boundary restriction consistency, and
/// cross-checks between the sweep and lower-star algorithms.
#include <gtest/gtest.h>

#include "decomp/decompose.hpp"
#include "oracle.hpp"

namespace msc {
namespace {

using test::expectValidGradient;
using test::planeGradient;

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

// ---------------------------------------------------------------------------
// Parameterized validity sweep: (field, size, algorithm, restriction)
// ---------------------------------------------------------------------------

enum class Algo { kSweep, kLowerStar };

struct GradCase {
  const char* field_name;
  int size;
  Algo algo;
  bool restricted;  // computed on a 2-block decomposition when true
};

std::string caseName(const testing::TestParamInfo<GradCase>& info) {
  const GradCase& c = info.param;
  return std::string(c.field_name) + "_" + std::to_string(c.size) +
         (c.algo == Algo::kSweep ? "_sweep" : "_lstar") + (c.restricted ? "_blocked" : "");
}

synth::Field makeField(const std::string& name, const Domain& d) {
  if (name == "ramp") return synth::ramp();
  if (name == "noise") return synth::noise(42);
  if (name == "sinusoid") return synth::sinusoid(d, 3);
  if (name == "cosine") return synth::cosineProduct(d, 2);
  if (name == "hydrogen") return synth::hydrogenLike(d);
  ADD_FAILURE() << "unknown field " << name;
  return synth::ramp();
}

GradientField computeFor(const GradCase& c, const BlockField& bf) {
  GradientOptions opts;
  opts.restrict_boundary = c.restricted;
  return c.algo == Algo::kSweep ? computeGradientSweep(bf, opts)
                                : computeGradientLowerStar(bf, opts);
}

class GradientValidity : public testing::TestWithParam<GradCase> {};

TEST_P(GradientValidity, SingleBlockIsValid) {
  const GradCase c = GetParam();
  const Domain d{{c.size, c.size, c.size}};
  const auto field = makeField(c.field_name, d);
  if (!c.restricted) {
    const BlockField bf = synth::sample(wholeDomainBlock(d), field);
    expectValidGradient(computeFor(c, bf));
  } else {
    // Each block of a 4-way decomposition must independently be a
    // valid gradient field under the boundary restriction.
    for (const Block& blk : decompose(d, 4)) {
      const BlockField bf = synth::sample(blk, field);
      expectValidGradient(computeFor(c, bf));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, GradientValidity,
    testing::Values(GradCase{"ramp", 6, Algo::kSweep, false},
                    GradCase{"ramp", 6, Algo::kLowerStar, false},
                    GradCase{"ramp", 9, Algo::kSweep, true},
                    GradCase{"ramp", 9, Algo::kLowerStar, true},
                    GradCase{"noise", 8, Algo::kSweep, false},
                    GradCase{"noise", 8, Algo::kLowerStar, false},
                    GradCase{"noise", 10, Algo::kSweep, true},
                    GradCase{"noise", 10, Algo::kLowerStar, true},
                    GradCase{"sinusoid", 12, Algo::kSweep, false},
                    GradCase{"sinusoid", 12, Algo::kLowerStar, false},
                    GradCase{"sinusoid", 12, Algo::kSweep, true},
                    GradCase{"sinusoid", 12, Algo::kLowerStar, true},
                    GradCase{"cosine", 13, Algo::kSweep, false},
                    GradCase{"cosine", 13, Algo::kLowerStar, false},
                    GradCase{"hydrogen", 14, Algo::kSweep, false},
                    GradCase{"hydrogen", 14, Algo::kLowerStar, false},
                    GradCase{"hydrogen", 14, Algo::kSweep, true},
                    GradCase{"hydrogen", 14, Algo::kLowerStar, true}),
    caseName);

// ---------------------------------------------------------------------------
// Known critical point counts
// ---------------------------------------------------------------------------

TEST(GradientCounts, RampHasSingleMinimum) {
  const Domain d{{8, 8, 8}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::ramp());
  for (const auto& g : {computeGradientSweep(bf), computeGradientLowerStar(bf)}) {
    const auto c = g.criticalCounts();
    EXPECT_EQ(c[0], 1);
    EXPECT_EQ(c[1], 0);
    EXPECT_EQ(c[2], 0);
    EXPECT_EQ(c[3], 0);
  }
}

TEST(GradientCounts, CosineProductMatchesClosedFormLowerStar) {
  // g(t) = cos(2 pi k t) per axis: k minima and k-1 interior maxima
  // per axis (boundary maxima pair away in their lower stars), so
  // c_d = C(3,d) * (k-1)^d * k^(3-d). The lower-star algorithm
  // recovers this exactly.
  const int k = 2;
  const int side = 4 * k * 2 + 1;  // extrema aligned to grid
  const Domain d{{side, side, side}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::cosineProduct(d, k));
  const auto c = computeGradientLowerStar(bf).criticalCounts();
  const std::int64_t km = k, kx = k - 1;
  EXPECT_EQ(c[0], km * km * km);
  EXPECT_EQ(c[1], 3 * km * km * kx);
  EXPECT_EQ(c[2], 3 * km * kx * kx);
  EXPECT_EQ(c[3], kx * kx * kx);
}

TEST(GradientCounts, SweepAddsOnlyCancellablePairs) {
  // The paper's single-pass greedy sweep may mark extra critical
  // cells along ridges and plateaus; they appear in zero-persistence
  // pairs (section V-A) and are removed by simplification. At the
  // gradient level: counts bound the closed form from above and the
  // Euler characteristic is unchanged.
  const int k = 2;
  const Domain d{{17, 17, 17}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::cosineProduct(d, k));
  const auto cs = computeGradientSweep(bf).criticalCounts();
  const auto cl = computeGradientLowerStar(bf).criticalCounts();
  for (int i = 0; i < 4; ++i) EXPECT_GE(cs[i], cl[i]);
  EXPECT_EQ(cs[0] - cs[1] + cs[2] - cs[3], 1);
}

// ---------------------------------------------------------------------------
// Boundary restriction: shared-face gradients must be bit-identical
// across neighbouring blocks (the precondition of IV-F3 gluing).
// ---------------------------------------------------------------------------

class BoundaryConsistency : public testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(BoundaryConsistency, SharedPlaneIdentical) {
  const auto [fname, nblocks] = GetParam();
  const Domain d{{13, 12, 11}};
  const auto field = makeField(fname, d);
  const std::vector<Block> blocks = decompose(d, nblocks);

  std::vector<GradientField> grads;
  for (const Block& blk : blocks) grads.push_back(computeGradientSweep(synth::sample(blk, field)));

  // For every pair of blocks and every shared partition plane,
  // compare the full pairing state, expressed in global addresses.
  int planes_checked = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      for (int axis = 0; axis < 3; ++axis) {
        const Box3 bi = blocks[i].refinedBox(), bj = blocks[j].refinedBox();
        // Shared plane: one block's high face == the other's low face.
        for (const auto [lo, hi] : {std::pair{bi, bj}, std::pair{bj, bi}}) {
          if (lo.hi[axis] != hi.lo[axis]) continue;
          const std::int64_t plane = lo.hi[axis];
          auto a = planeGradient(grads[i], axis, plane);
          auto b = planeGradient(grads[j], axis, plane);
          // Keep only the overlap (blocks may not span the same
          // transverse extent).
          int compared = 0;
          for (const auto& [addr, pa] : a) {
            const auto it = b.find(addr);
            if (it == b.end()) continue;
            EXPECT_EQ(pa, it->second) << "gradient differs at global address " << addr;
            ++compared;
          }
          if (compared > 0) ++planes_checked;
        }
      }
    }
  }
  EXPECT_GT(planes_checked, 0) << "test found no shared planes to compare";
}

INSTANTIATE_TEST_SUITE_P(Decompositions, BoundaryConsistency,
                         testing::Values(std::pair{"noise", 2}, std::pair{"noise", 4},
                                         std::pair{"noise", 8}, std::pair{"sinusoid", 8},
                                         std::pair{"hydrogen", 8}, std::pair{"ramp", 8},
                                         std::pair{"noise", 16}),
                         [](const auto& info) {
                           return std::string(info.param.first) + "_" +
                                  std::to_string(info.param.second);
                         });

TEST(BoundaryRestriction, LowerStarSharedPlaneIdentical) {
  const Domain d{{11, 11, 11}};
  const auto field = synth::noise(5);
  const auto blocks = decompose(d, 8);
  std::vector<GradientField> grads;
  for (const Block& blk : blocks)
    grads.push_back(computeGradientLowerStar(synth::sample(blk, field)));
  int compared = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::size_t j = i + 1; j < blocks.size(); ++j)
      for (int axis = 0; axis < 3; ++axis) {
        const Box3 bi = blocks[i].refinedBox(), bj = blocks[j].refinedBox();
        if (bi.hi[axis] != bj.lo[axis]) continue;
        auto a = planeGradient(grads[i], axis, bi.hi[axis]);
        auto b = planeGradient(grads[j], axis, bi.hi[axis]);
        for (const auto& [addr, pa] : a) {
          const auto it = b.find(addr);
          if (it == b.end()) continue;
          EXPECT_EQ(pa, it->second);
          ++compared;
        }
      }
  EXPECT_GT(compared, 0);
}

TEST(BoundaryRestriction, BoundaryCellsPairWithinSignatureClass) {
  const Domain d{{9, 9, 9}};
  const auto blocks = decompose(d, 2);
  const BlockField bf = synth::sample(blocks[0], synth::noise(3));
  const GradientField g = computeGradientSweep(bf);
  const Block& blk = blocks[0];
  const Vec3i r = blk.rdims();
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        if (!g.isPaired(rc)) continue;
        EXPECT_EQ(blk.sharedSignature(rc), blk.sharedSignature(g.partner(rc)))
            << "pair crosses a signature class at " << rc;
      }
}

TEST(BoundaryRestriction, UnrestrictedSerialHasNoSpuriousBoundaryCriticals) {
  // With restriction off, a clean field's criticals should not pile
  // up on block faces: single-block == whole-domain computation.
  const Domain d{{9, 9, 9}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::cosineProduct(d, 1));
  GradientOptions opts;
  opts.restrict_boundary = false;
  const auto c = computeGradientSweep(bf, opts).criticalCounts();
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[3], 0);
}

TEST(BoundaryRestriction, RestrictionAddsOnlyBoundaryCriticals) {
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(9);
  const auto blocks = decompose(d, 2);
  const BlockField bf = synth::sample(blocks[0], field);

  GradientOptions off;
  off.restrict_boundary = false;
  const GradientField gr = computeGradientSweep(bf);
  const GradientField gu = computeGradientSweep(bf, off);

  // Away from the shared face, interior pairings may shift, but
  // every *extra* critical cell introduced by the restriction must
  // lie on the shared boundary plane itself or be attributable to
  // the interior re-matching; at minimum, the restricted field may
  // not have fewer criticals than the unrestricted one.
  const auto cr = gr.criticalCounts();
  const auto cu = gu.criticalCounts();
  std::int64_t tr = cr[0] + cr[1] + cr[2] + cr[3];
  std::int64_t tu = cu[0] + cu[1] + cu[2] + cu[3];
  EXPECT_GE(tr, tu);
}

}  // namespace
}  // namespace msc
