/// End-to-end tests of the pipeline drivers: the concurrent ranks
/// driver (threaded_pipeline) against the simulated driver
/// (sim_pipeline) and against the serial baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "io/complex_file.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc::pipeline {
namespace {

PipelineConfig baseConfig(int nblocks, int nranks, float threshold = 0.05f) {
  PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = nblocks;
  cfg.nranks = nranks;
  cfg.persistence_threshold = threshold;
  cfg.plan = MergePlan::fullMerge(nblocks);
  return cfg;
}

std::set<std::pair<CellAddr, int>> nodeSet(const std::vector<io::Bytes>& outputs) {
  std::set<std::pair<CellAddr, int>> s;
  for (const io::Bytes& b : outputs) {
    const MsComplex c = io::unpack(b);
    for (const Node& nd : c.nodes())
      if (nd.alive) s.insert({nd.addr, nd.index});
  }
  return s;
}

TEST(Pipeline, SimMatchesThreadedFullMerge) {
  const PipelineConfig cfg = baseConfig(8, 4);
  const SimResult sim = runSimPipeline(cfg);
  const ThreadedResult thr = runThreadedPipeline(cfg);

  EXPECT_EQ(sim.node_counts, thr.node_counts);
  EXPECT_EQ(sim.arc_count, thr.arc_count);
  EXPECT_EQ(sim.output_bytes, thr.output_bytes);
  ASSERT_EQ(sim.outputs.size(), thr.outputs.size());
  EXPECT_EQ(nodeSet(sim.outputs), nodeSet(thr.outputs));
}

TEST(Pipeline, SimMatchesThreadedPartialMerge) {
  PipelineConfig cfg = baseConfig(16, 4);
  cfg.plan = MergePlan::partial({4});
  const SimResult sim = runSimPipeline(cfg);
  const ThreadedResult thr = runThreadedPipeline(cfg);
  EXPECT_EQ(sim.outputs.size(), 4u);
  ASSERT_EQ(thr.outputs.size(), 4u);
  EXPECT_EQ(sim.node_counts, thr.node_counts);
  EXPECT_EQ(nodeSet(sim.outputs), nodeSet(thr.outputs));
}

TEST(Pipeline, NoMergeLeavesOneComplexPerBlock) {
  PipelineConfig cfg = baseConfig(8, 2);
  cfg.plan = MergePlan::partial({});
  const SimResult sim = runSimPipeline(cfg);
  EXPECT_EQ(sim.outputs.size(), 8u);
  const ThreadedResult thr = runThreadedPipeline(cfg);
  EXPECT_EQ(thr.outputs.size(), 8u);
  EXPECT_EQ(nodeSet(sim.outputs), nodeSet(thr.outputs));
}

TEST(Pipeline, FullMergeMatchesSerialCriticalCounts) {
  // Fully merged parallel result vs a serial one-block run: same
  // census on a clean Morse field (the Fig. 4 property, end-to-end).
  const PipelineConfig par = baseConfig(16, 8);
  const SimResult sim = runSimPipeline(par);

  const PipelineConfig ser = baseConfig(1, 1);
  const SimResult serial = runSimPipeline(ser);

  EXPECT_EQ(sim.node_counts, serial.node_counts);
  const std::int64_t k = 2, kx = 1;
  EXPECT_EQ(sim.node_counts[0], k * k * k);
  EXPECT_EQ(sim.node_counts[3], kx * kx * kx);
}

TEST(Pipeline, ThreadedMoreRanksThanBlocks) {
  // A rank with no block would idle through every stage; config
  // validation rejects the shape up front instead of running it.
  PipelineConfig cfg = baseConfig(4, 7);
  cfg.plan = MergePlan::fullMerge(4);
  EXPECT_THROW(runThreadedPipeline(cfg), std::invalid_argument);
  EXPECT_THROW(runSimPipeline(cfg), std::invalid_argument);
}

TEST(Pipeline, MultipleBlocksPerRank) {
  PipelineConfig cfg = baseConfig(16, 3);  // 16 blocks over 3 ranks
  const SimResult sim = runSimPipeline(cfg);
  const ThreadedResult thr = runThreadedPipeline(cfg);
  EXPECT_EQ(sim.node_counts, thr.node_counts);
  EXPECT_EQ(nodeSet(sim.outputs), nodeSet(thr.outputs));
}

TEST(Pipeline, OutputFileWrittenAndReadable) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_pipeline_out.bin").string();
  PipelineConfig cfg = baseConfig(8, 4);
  cfg.plan = MergePlan::partial({2});  // 4 output blocks
  cfg.output_path = path;
  const ThreadedResult thr = runThreadedPipeline(cfg);
  ASSERT_EQ(thr.outputs.size(), 4u);

  const auto back = io::readComplexFile(path);
  ASSERT_EQ(back.size(), 4u);
  std::array<std::int64_t, 4> counts{};
  for (const io::Bytes& b : back) {
    const MsComplex c = io::unpack(b);
    const auto n = c.liveNodeCounts();
    for (int i = 0; i < 4; ++i) counts[static_cast<std::size_t>(i)] += n[i];
  }
  EXPECT_EQ(counts, thr.node_counts);
  std::remove(path.c_str());
}

TEST(Pipeline, SweepAndLowerStarConvergeAfterSimplification) {
  PipelineConfig cfg = baseConfig(8, 4, 0.05f);
  cfg.algorithm = GradientAlgorithm::kLowerStar;
  const SimResult ls = runSimPipeline(cfg);
  cfg.algorithm = GradientAlgorithm::kSweep;
  const SimResult sw = runSimPipeline(cfg);
  // Zero-persistence sweep artifacts cancel during simplification;
  // the surviving censuses agree on the clean field.
  EXPECT_EQ(ls.node_counts, sw.node_counts);
}

TEST(Pipeline, VolumeFileSourceMatchesAnalytic) {
  const Domain d{{13, 13, 13}};
  const auto field = synth::sinusoid(d, 2);
  const std::string vol =
      (std::filesystem::temp_directory_path() / "msc_pipeline_vol.raw").string();
  io::writeVolume(vol, d, synth::sampleAll(d, field), io::SampleType::kFloat32);

  PipelineConfig cfg;
  cfg.domain = d;
  cfg.source.field = field;
  cfg.nblocks = 4;
  cfg.nranks = 2;
  cfg.persistence_threshold = 0.01f;
  cfg.plan = MergePlan::fullMerge(4);
  const SimResult analytic = runSimPipeline(cfg);

  cfg.source.volume_path = vol;
  const SimResult fromFile = runSimPipeline(cfg);
  EXPECT_EQ(analytic.node_counts, fromFile.node_counts);
  EXPECT_EQ(analytic.arc_count, fromFile.arc_count);
  std::remove(vol.c_str());
}

TEST(Pipeline, TimesArePopulated) {
  const PipelineConfig cfg = baseConfig(8, 8);
  const SimResult sim = runSimPipeline(cfg);
  EXPECT_GT(sim.times.read, 0);
  EXPECT_GT(sim.times.compute, 0);
  EXPECT_EQ(std::ssize(sim.times.merge_rounds), cfg.plan.rounds());
  EXPECT_GT(sim.times.write, 0);
  EXPECT_GT(sim.times.total(), 0);
  EXPECT_GT(sim.output_bytes, 0);
  EXPECT_GT(sim.serial_seconds, 0);
}

}  // namespace
}  // namespace msc::pipeline
