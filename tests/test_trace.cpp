/// Tests for V-path tracing (core/trace): arc structure, geometry
/// validity, and closed-form arc counts on separable fields.
#include <gtest/gtest.h>

#include <map>

#include "core/lower_star.hpp"
#include "core/trace.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

MsComplex traceField(const Domain& d, const synth::Field& f, TraceStats* stats = nullptr) {
  const BlockField bf = synth::sample(wholeDomainBlock(d), f);
  const GradientField g = computeGradientLowerStar(bf);
  return traceComplex(g, bf, {}, stats);
}

TEST(Trace, RampSingleMinimumNoArcs) {
  const Domain d{{6, 6, 6}};
  const MsComplex c = traceField(d, synth::ramp());
  EXPECT_EQ(c.liveNodeCount(), 1);
  EXPECT_EQ(c.liveArcCount(), 0);
  EXPECT_EQ(c.nodes()[0].index, 0);
}

/// On the separable cosine field, every critical point of index d has
/// exactly 2d descending arcs (demote one of its d max-axes to either
/// adjacent minimum), and each arc connects 1D-adjacent criticals.
TEST(Trace, CosineProductArcDegrees) {
  const int k = 2;
  const Domain d{{17, 17, 17}};
  TraceStats stats;
  const MsComplex c = traceField(d, synth::cosineProduct(d, k), &stats);

  const std::int64_t km = k, kx = k - 1;
  const auto counts = c.liveNodeCounts();
  ASSERT_EQ(counts[0], km * km * km);
  ASSERT_EQ(counts[3], kx * kx * kx);

  // Count descending arcs per node.
  std::map<NodeId, int> down;
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    ++down[ar.upper];
  }
  for (std::size_t i = 0; i < c.nodes().size(); ++i) {
    const Node& nd = c.nodes()[i];
    if (!nd.alive || nd.index == 0) continue;
    EXPECT_EQ(down[static_cast<NodeId>(i)], 2 * nd.index)
        << "node index " << int(nd.index) << " at addr " << nd.addr;
  }
  EXPECT_EQ(stats.nodes, c.liveNodeCount());
  EXPECT_EQ(stats.arcs, c.liveArcCount());
  EXPECT_EQ(stats.truncated_cells, 0);
}

/// Every arc's geometry must be a structurally valid V-path: starts
/// at the upper node's cell, ends at the lower node's, alternates
/// dimensions d, d-1, d, ..., with consecutive cells facet-adjacent,
/// and interior pairs following the gradient.
void expectValidArcGeometry(const MsComplex& c, const GradientField& g) {
  const Domain& dom = c.domain();
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    const std::vector<CellAddr> path = c.flattenGeom(ar.geom);
    ASSERT_GE(path.size(), 2u);
    ASSERT_EQ(path.size() % 2, 0u)
        << "V-path starts at a d-cell and ends at a (d-1)-cell";
    EXPECT_EQ(path.front(), c.node(ar.upper).addr);
    EXPECT_EQ(path.back(), c.node(ar.lower).addr);
    const int d = c.node(ar.upper).index;
    for (std::size_t j = 0; j < path.size(); ++j) {
      const Vec3i rc = dom.coordOf(path[j]);
      EXPECT_EQ(Domain::cellDim(rc), (j % 2 == 0) ? d : d - 1);
      if (j > 0) {
        const Vec3i prev = dom.coordOf(path[j - 1]);
        const Vec3i diff = rc - prev;
        EXPECT_EQ(std::abs(diff.x) + std::abs(diff.y) + std::abs(diff.z), 1)
            << "path cells not facet-adjacent";
      }
      // Odd positions (d-1 cells) other than the last must be paired
      // with the next cell (the d-cell they flow into).
      if (j % 2 == 1 && j + 1 < path.size()) {
        const Vec3i local = rc - g.block().voffset * 2;
        EXPECT_TRUE(g.isTail(local));
        EXPECT_EQ(g.partner(local) + g.block().voffset * 2, dom.coordOf(path[j + 1]));
      }
    }
  }
}

TEST(Trace, GeometryIsValidVPath) {
  const Domain d{{12, 12, 12}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(17));
  const GradientField g = computeGradientLowerStar(bf);
  const MsComplex c = traceComplex(g, bf);
  expectValidArcGeometry(c, g);
}

TEST(Trace, ArcsConnectConsecutiveIndices) {
  const Domain d{{10, 10, 10}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(23));
  const GradientField g = computeGradientLowerStar(bf);
  const MsComplex c = traceComplex(g, bf);
  for (const Arc& ar : c.arcs()) {
    if (!ar.alive) continue;
    EXPECT_EQ(c.node(ar.lower).index + 1, c.node(ar.upper).index);
  }
  c.checkInvariants();
}

TEST(Trace, EverySaddleHasTwoDescendingArcsToMinima) {
  // A critical edge has exactly two descending V-paths (one per
  // endpoint vertex); paths in the (0,1) layer cannot branch.
  const Domain d{{11, 11, 11}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(31));
  const GradientField g = computeGradientLowerStar(bf);
  const MsComplex c = traceComplex(g, bf);
  std::map<NodeId, int> down;
  for (const Arc& ar : c.arcs())
    if (ar.alive) ++down[ar.upper];
  for (std::size_t i = 0; i < c.nodes().size(); ++i) {
    const Node& nd = c.nodes()[i];
    if (nd.alive && nd.index == 1)
      EXPECT_EQ(down[static_cast<NodeId>(i)], 2) << "1-saddle at " << nd.addr;
  }
}

TEST(Trace, BoundaryNodesFlagged) {
  const Domain d{{9, 9, 9}};
  Block left;
  left.domain = d;
  left.vdims = {5, 9, 9};
  left.voffset = {0, 0, 0};
  left.shared_hi[0] = true;
  const BlockField bf = synth::sample(left, synth::noise(7));
  const GradientField g = computeGradientSweep(bf);
  const MsComplex c = traceComplex(g, bf);
  bool found_boundary = false;
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    const Vec3i rc = d.coordOf(nd.addr);
    EXPECT_EQ(nd.boundary, rc.x == 8) << "node at " << rc;
    found_boundary |= nd.boundary;
  }
  // The restriction to the shared plane must produce at least one
  // boundary critical cell (the plane's own minimum).
  EXPECT_TRUE(found_boundary);
}

TEST(Trace, PathCapTruncates) {
  const Domain d{{12, 12, 12}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(3));
  const GradientField g = computeGradientLowerStar(bf);
  TraceOptions opts;
  opts.max_paths_per_cell = 1;
  TraceStats stats;
  const MsComplex c = traceComplex(g, bf, opts, &stats);
  // With at most one path per critical cell, descending degrees are
  // capped at 1; a noise field is guaranteed to have had more.
  TraceStats full;
  traceComplex(g, bf, {}, &full);
  EXPECT_LT(stats.arcs, full.arcs);
  EXPECT_GT(stats.truncated_cells, 0);
}

}  // namespace
}  // namespace msc
