/// Tests for the multi-resolution hierarchy queries (section III-C):
/// generation filtration, threshold lookup, and level extraction.
#include <gtest/gtest.h>

#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

MsComplex simplifiedNoise(unsigned seed, float threshold, int size = 11) {
  const Domain d{{size, size, size}};
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  const BlockField bf = synth::sample(whole, synth::noise(seed));
  MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
  SimplifyOptions opts;
  opts.persistence_threshold = threshold;
  simplify(c, opts);
  return c;
}

TEST(Hierarchy, GenerationZeroIsBaseComplex) {
  const MsComplex c = simplifiedNoise(3, 0.4f);
  ASSERT_GT(c.generation(), 0);
  // At generation 0 every base node is live, every base arc too.
  const auto base = c.liveNodeCountsAt(0);
  std::array<std::int64_t, 4> expected{0, 0, 0, 0};
  for (const Node& nd : c.nodes())
    if (nd.destroyed_gen != kNone || nd.alive) ++expected[nd.index];
  EXPECT_EQ(base, expected);
}

TEST(Hierarchy, CurrentGenerationMatchesLiveCounts) {
  const MsComplex c = simplifiedNoise(5, 0.3f);
  EXPECT_EQ(c.liveNodeCountsAt(c.generation()), c.liveNodeCounts());
}

TEST(Hierarchy, EachGenerationRemovesOnePair) {
  const MsComplex c = simplifiedNoise(7, 0.5f);
  for (std::int32_t g = 1; g <= c.generation(); ++g) {
    const auto prev = c.liveNodeCountsAt(g - 1);
    const auto cur = c.liveNodeCountsAt(g);
    const std::int64_t tprev = prev[0] + prev[1] + prev[2] + prev[3];
    const std::int64_t tcur = cur[0] + cur[1] + cur[2] + cur[3];
    EXPECT_EQ(tprev - tcur, 2) << "generation " << g;
    // Euler characteristic is preserved at every level.
    EXPECT_EQ(cur[0] - cur[1] + cur[2] - cur[3], 1);
  }
}

TEST(Hierarchy, GenerationForThresholdIsMonotone) {
  const MsComplex c = simplifiedNoise(9, 0.6f);
  std::int32_t prev = 0;
  for (const float t : {0.0f, 0.1f, 0.2f, 0.4f, 0.6f}) {
    const std::int32_t g = c.generationForThreshold(t);
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_EQ(c.generationForThreshold(1e9f), c.generation());
}

TEST(Hierarchy, ExtractAtGenerationMatchesCounts) {
  const MsComplex c = simplifiedNoise(11, 0.4f);
  for (const std::int32_t g : {0, c.generation() / 2, c.generation()}) {
    const MsComplex level = c.extractAtGeneration(g);
    level.checkInvariants();
    EXPECT_EQ(level.liveNodeCounts(), c.liveNodeCountsAt(g));
    EXPECT_EQ(level.generation(), 0);  // fresh hierarchy
  }
}

TEST(Hierarchy, ExtractedMidLevelArcsConnectLiveNodes) {
  const MsComplex c = simplifiedNoise(13, 0.5f);
  const std::int32_t g = c.generation() / 2;
  std::int64_t arcs_at_g = 0;
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a) {
    if (!c.arcLiveAt(a, g)) continue;
    ++arcs_at_g;
    EXPECT_TRUE(c.nodeLiveAt(c.arc(a).lower, g));
    EXPECT_TRUE(c.nodeLiveAt(c.arc(a).upper, g));
  }
  const MsComplex level = c.extractAtGeneration(g);
  EXPECT_EQ(level.liveArcCount(), arcs_at_g);
}

TEST(Hierarchy, ExtractFullGenerationEqualsCompactedLive) {
  MsComplex c = simplifiedNoise(15, 0.3f);
  const MsComplex level = c.extractAtGeneration(c.generation());
  c.compact();
  EXPECT_EQ(level.liveNodeCounts(), c.liveNodeCounts());
  EXPECT_EQ(level.liveArcCount(), c.liveArcCount());
}

}  // namespace
}  // namespace msc
