/// Fault injection + recovery tests (the chaos tier).
///
/// The contract under test: with deterministic fault injection
/// attached (seeded crashes, delays, duplicate deliveries, straggler
/// stalls), the threaded pipeline's recovered output is byte-identical
/// to the fault-free run's — in respawn mode (dead ranks come back
/// from the last checkpoint) and in graceful-degradation mode (dead
/// ranks stay dead, their blocks move to survivors). The chaos matrix
/// sweeps seeded fault schedules through both modes; the remaining
/// tests pin the pieces that argument rests on: injector determinism,
/// the pack projection, checkpoint store semantics (including the
/// disk-spill restart path), ownership reassignment, config
/// validation, and the no-hang guarantee when recovery is off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "check/canonical.hpp"
#include "check/fuzz.hpp"
#include "fault/checkpoint.hpp"
#include "fault/inject.hpp"
#include "fault/recovery.hpp"
#include "io/pack.hpp"
#include "par/comm.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "pipeline/wire_format.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

pipeline::PipelineConfig chaosConfig(int nblocks = 8, int nranks = 4) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{10, 10, 10}};
  cfg.source.field = synth::noise(3);
  cfg.nblocks = nblocks;
  cfg.nranks = nranks;
  cfg.persistence_threshold = 0.0f;
  cfg.plan = MergePlan::fullMerge(nblocks);
  return cfg;
}

void expectSameBytes(const std::vector<io::Bytes>& got,
                     const std::vector<io::Bytes>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << what << ": output " << i << " differs";
}

// ---------------------------------------------------------------- injector

TEST(Injector, ScheduleIsAFunctionOfSeedRankAndOpIndex) {
  fault::InjectorOptions opts;
  opts.seed = 42;
  fault::Injector a(4, opts), b(4, opts);
  for (int rank = 0; rank < 4; ++rank)
    for (std::uint64_t op = 0; op < 500; ++op)
      EXPECT_EQ(a.decide(rank, op, fault::OpClass::kSend),
                b.decide(rank, op, fault::OpClass::kSend));

  // decide() is pure: calling next() on one injector must not change
  // what decide() reports, and interleaving ranks must not matter.
  const fault::FaultKind later = a.decide(2, 123, fault::OpClass::kRecv);
  for (int i = 0; i < 50; ++i) {
    try {
      a.next(0, fault::OpClass::kSend);
    } catch (const par::RankFailure&) {
    }
  }
  EXPECT_EQ(a.decide(2, 123, fault::OpClass::kRecv), later);
}

TEST(Injector, DifferentSeedsGiveDifferentSchedules) {
  fault::InjectorOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  fault::Injector a(2, a_opts), b(2, b_opts);
  int differ = 0;
  for (std::uint64_t op = 0; op < 2000; ++op)
    differ += a.decide(0, op, fault::OpClass::kSend) !=
              b.decide(0, op, fault::OpClass::kSend);
  EXPECT_GT(differ, 0);
}

TEST(Injector, EveryFaultKindFires) {
  // Drive each rate to 1.0 in turn and check the advertised behavior.
  {
    fault::InjectorOptions opts;
    opts.seed = 7;
    opts.crash_rate = 1.0;
    opts.delay_rate = opts.duplicate_rate = opts.stall_rate = 0.0;
    fault::Injector inj(1, opts);
    EXPECT_THROW(fault::applyFault(&inj, 0, fault::OpClass::kSend, nullptr),
                 par::RankFailure);
    EXPECT_TRUE(inj.everCrashed(0));
    EXPECT_EQ(inj.fired(fault::FaultKind::kCrash), 1);
  }
  {
    fault::InjectorOptions opts;
    opts.seed = 7;
    opts.duplicate_rate = 1.0;
    opts.crash_rate = opts.delay_rate = opts.stall_rate = 0.0;
    fault::Injector inj(1, opts);
    // Duplicates are a send-side fault; the same slot on a receive op
    // degrades to a latency fault, never a double-delivery.
    EXPECT_EQ(fault::applyFault(&inj, 0, fault::OpClass::kSend, nullptr),
              fault::FaultKind::kDuplicate);
    EXPECT_NE(fault::applyFault(&inj, 0, fault::OpClass::kRecv, nullptr),
              fault::FaultKind::kDuplicate);
    EXPECT_GT(inj.fired(fault::FaultKind::kDuplicate), 0);
  }
  {
    fault::InjectorOptions opts;
    opts.seed = 7;
    opts.delay_rate = 1.0;
    opts.crash_rate = opts.duplicate_rate = opts.stall_rate = 0.0;
    opts.delay_ms = 0.1;
    fault::Injector inj(1, opts);
    EXPECT_EQ(fault::applyFault(&inj, 0, fault::OpClass::kSend, nullptr),
              fault::FaultKind::kDelay);
    EXPECT_EQ(inj.fired(fault::FaultKind::kDelay), 1);
  }
  {
    fault::InjectorOptions opts;
    opts.seed = 7;
    opts.stall_rate = 1.0;
    opts.crash_rate = opts.delay_rate = opts.duplicate_rate = 0.0;
    opts.stall_ms = 0.1;
    fault::Injector inj(1, opts);
    EXPECT_EQ(fault::applyFault(&inj, 0, fault::OpClass::kRecv, nullptr),
              fault::FaultKind::kStall);
    EXPECT_EQ(inj.fired(fault::FaultKind::kStall), 1);
  }
}

TEST(Injector, CrashCapIsPerRank) {
  fault::InjectorOptions opts;
  opts.seed = 11;
  opts.crash_rate = 1.0;
  opts.delay_rate = opts.duplicate_rate = opts.stall_rate = 0.0;
  opts.max_crashes_per_rank = 2;
  fault::Injector inj(2, opts);
  for (int i = 0; i < 2; ++i)
    EXPECT_THROW(fault::applyFault(&inj, 0, fault::OpClass::kSend, nullptr),
                 par::RankFailure);
  // Rank 0 hit its cap: further slots degrade to no-fault.
  EXPECT_NO_THROW(fault::applyFault(&inj, 0, fault::OpClass::kSend, nullptr));
  EXPECT_EQ(inj.crashCount(0), 2);
  // The cap is per-rank: rank 1 still has its full budget.
  EXPECT_THROW(fault::applyFault(&inj, 1, fault::OpClass::kSend, nullptr),
               par::RankFailure);
}

TEST(Injector, NullInjectorIsANoOp) {
  EXPECT_EQ(fault::applyFault(nullptr, 0, fault::OpClass::kSend, nullptr),
            fault::FaultKind::kNone);
}

// ------------------------------------------------------------- checkpoints

TEST(CheckpointStore, PutGetRoundtripAndOverwrite) {
  fault::CheckpointStore store;
  const io::Bytes v1{std::byte{1}, std::byte{2}, std::byte{3}};
  const io::Bytes v2{std::byte{9}, std::byte{8}};
  EXPECT_FALSE(store.contains(0, 5));
  store.put(0, 5, v1);
  ASSERT_TRUE(store.contains(0, 5));
  EXPECT_EQ(store.get(0, 5).value(), v1);
  store.put(0, 5, v2);  // idempotent replays overwrite
  EXPECT_EQ(store.get(0, 5).value(), v2);
  EXPECT_FALSE(store.get(1, 5).has_value());
  EXPECT_EQ(store.stats().puts, 2);
}

TEST(CheckpointStore, DropBelowFreesOlderRounds) {
  fault::CheckpointStore store;
  store.put(0, 0, {std::byte{1}});
  store.put(1, 0, {std::byte{2}});
  store.put(2, 0, {std::byte{3}});
  store.dropBelow(2);
  EXPECT_FALSE(store.contains(0, 0));
  EXPECT_FALSE(store.contains(1, 0));
  EXPECT_TRUE(store.contains(2, 0));
}

TEST(CheckpointStore, AFreshStoreRestoresFromTheSpillDirectory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "msc_ckpt_spill_test").string();
  std::filesystem::remove_all(dir);
  const io::Bytes payload{std::byte{0}, std::byte{255}, std::byte{7},
                          std::byte{42}, std::byte{13}};
  {
    fault::CheckpointStore store(dir);
    store.put(3, 1, payload);
    EXPECT_EQ(store.stats().spilled_files, 1);
    // dropBelow only evicts memory; the spilled file is the durable copy.
    store.dropBelow(10);
    EXPECT_TRUE(store.contains(3, 1));
  }
  // A different store instance — the cross-process restart path.
  fault::CheckpointStore fresh(dir);
  ASSERT_TRUE(fresh.contains(3, 1));
  EXPECT_EQ(fresh.get(3, 1).value(), payload);
  EXPECT_FALSE(fresh.contains(3, 2));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, PackIsAProjection) {
  // pack(unpack(p)) == p: the property that makes checkpoint replay
  // byte-identical. Pin it on real pipeline output, not a toy complex.
  const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(chaosConfig());
  ASSERT_FALSE(r.outputs.empty());
  for (const io::Bytes& p : r.outputs) EXPECT_EQ(io::pack(io::unpack(p)), p);
}

// ---------------------------------------------------------------- ownership

TEST(OwnerOf, AllAliveMatchesHomeRank) {
  const std::vector<bool> none(4, false);
  for (int b = 0; b < 16; ++b) EXPECT_EQ(fault::ownerOf(b, 4, none), b % 4);
}

TEST(OwnerOf, DeadHomeReassignsToALiveRank) {
  std::vector<bool> dead(4, false);
  dead[1] = true;
  for (int b = 0; b < 16; ++b) {
    const int owner = fault::ownerOf(b, 4, dead);
    EXPECT_FALSE(dead[static_cast<std::size_t>(owner)]) << "block " << b;
    if (b % 4 != 1) EXPECT_EQ(owner, b % 4) << "live homes must not move";
  }
  // Deterministic: every rank computes the same map from the same mask.
  for (int b = 0; b < 16; ++b)
    EXPECT_EQ(fault::ownerOf(b, 4, dead), fault::ownerOf(b, 4, dead));
}

// ------------------------------------------------------------- wire format

TEST(WireFormat, UnframeRejectsTruncatedFrames) {
  const io::Bytes packed{std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  const par::Bytes framed = pipeline::frame(3, 7, packed);
  const pipeline::Framed f = pipeline::unframe(framed);
  EXPECT_EQ(f.dest_block, 3);
  EXPECT_EQ(f.sender_block, 7);
  EXPECT_EQ(f.packed, packed);

  for (std::size_t n = 0; n < pipeline::kFrameHeader; ++n) {
    const par::Bytes truncated(framed.begin(),
                               framed.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(pipeline::unframe(truncated), std::runtime_error) << n;
  }
}

// ---------------------------------------------------------- config checks

TEST(PipelineConfigValidation, RejectsBadShapesAndKnobs) {
  const auto expectRejected = [](void (*mutate)(pipeline::PipelineConfig&)) {
    pipeline::PipelineConfig cfg = chaosConfig();
    mutate(cfg);
    EXPECT_THROW(pipeline::validatePipelineConfig(cfg), std::invalid_argument);
  };
  expectRejected([](pipeline::PipelineConfig& c) { c.nranks = 0; });
  expectRejected([](pipeline::PipelineConfig& c) { c.nblocks = 0; });
  expectRejected([](pipeline::PipelineConfig& c) { c.nranks = c.nblocks + 1; });
  expectRejected([](pipeline::PipelineConfig& c) { c.block_timeout_seconds = 0.0; });
  expectRejected([](pipeline::PipelineConfig& c) { c.block_timeout_seconds = -3.0; });
  expectRejected([](pipeline::PipelineConfig& c) { c.fault.recv_deadline_seconds = 0.0; });
  expectRejected([](pipeline::PipelineConfig& c) {
    // The deadline must be able to fire before the audit watchdog
    // declares the whole run wedged.
    c.fault.recv_deadline_seconds = c.block_timeout_seconds + 1.0;
  });
  expectRejected([](pipeline::PipelineConfig& c) { c.fault.backoff_initial_ms = 0.0; });
  expectRejected([](pipeline::PipelineConfig& c) {
    c.fault.backoff_max_ms = c.fault.backoff_initial_ms / 2.0;
  });
  expectRejected([](pipeline::PipelineConfig& c) { c.fault.max_round_attempts = 0; });
  expectRejected([](pipeline::PipelineConfig& c) { c.fault.max_round_attempts = 65; });
  expectRejected([](pipeline::PipelineConfig& c) {
    c.fault.recovery = fault::RecoveryMode::kRespawn;
    c.fault.max_respawns_per_rank = 0;
  });
  expectRejected([](pipeline::PipelineConfig& c) {
    c.fault.corruption_retry_budget = -1;
  });
  expectRejected([](pipeline::PipelineConfig& c) {
    c.fault.corruption_retry_budget = 1025;
  });
}

TEST(PipelineConfigValidation, CorruptionRatesRequireIntegrity) {
  // Injecting corruption with every detector off would be a run whose
  // only possible outcomes are silent wrong answers — reject it
  // fail-fast instead of letting the matrix "pass" by luck.
  fault::InjectorOptions fopts;
  fopts.corrupt_payload_rate = 0.05;
  fault::Injector inj(4, fopts);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.injector = &inj;
  cfg.fault.recovery = fault::RecoveryMode::kRespawn;
  cfg.integrity = false;
  try {
    pipeline::validatePipelineConfig(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MSC_INTEGRITY"), std::string::npos)
        << e.what();
  }
  cfg.integrity = true;
  EXPECT_NO_THROW(pipeline::validatePipelineConfig(cfg));

  // Each storage-corruption kind alone trips the same gate.
  fault::InjectorOptions sopts;
  sopts.truncate_spill_rate = 0.05;
  fault::Injector sinj(4, sopts);
  cfg.integrity = false;
  cfg.fault.injector = &sinj;
  EXPECT_THROW(pipeline::validatePipelineConfig(cfg), std::invalid_argument);
}

TEST(PipelineConfigValidation, InjectorWithRecoveryOffRequiresAnAuditor) {
  fault::InjectorOptions fopts;
  fault::Injector inj(4, fopts);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.injector = &inj;
  cfg.fault.recovery = fault::RecoveryMode::kOff;
  EXPECT_THROW(pipeline::validatePipelineConfig(cfg), std::invalid_argument);
  audit::Auditor auditor(4);
  cfg.auditor = &auditor;
  EXPECT_NO_THROW(pipeline::validatePipelineConfig(cfg));
}

TEST(PipelineConfigValidation, RespawnBudgetMustCoverTheCrashCap) {
  fault::InjectorOptions fopts;
  fopts.max_crashes_per_rank = 3;
  fault::Injector inj(4, fopts);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.injector = &inj;
  cfg.fault.recovery = fault::RecoveryMode::kRespawn;
  cfg.fault.max_respawns_per_rank = 2;  // < crash cap: a rank can die for good
  EXPECT_THROW(pipeline::validatePipelineConfig(cfg), std::invalid_argument);
  cfg.fault.max_respawns_per_rank = 3;
  EXPECT_NO_THROW(pipeline::validatePipelineConfig(cfg));
}

TEST(PipelineConfigValidation, ValidationErrorNamesTheKnob) {
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.recv_deadline_seconds = -1.0;
  try {
    pipeline::validatePipelineConfig(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("recv_deadline_seconds"),
              std::string::npos)
        << e.what();
  }
}

class EnvOverrideTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* v :
         {"MSC_BLOCK_TIMEOUT", "MSC_RECV_DEADLINE", "MSC_BACKOFF_INITIAL_MS",
          "MSC_BACKOFF_MAX_MS", "MSC_MAX_ROUND_ATTEMPTS", "MSC_INTEGRITY",
          "MSC_CORRUPTION_RETRY_BUDGET"})
      ::unsetenv(v);
  }
};

TEST_F(EnvOverrideTest, EnvVarsOverrideTheConfig) {
  ::setenv("MSC_BLOCK_TIMEOUT", "12.5", 1);
  ::setenv("MSC_RECV_DEADLINE", "3.25", 1);
  ::setenv("MSC_BACKOFF_INITIAL_MS", "0.5", 1);
  ::setenv("MSC_BACKOFF_MAX_MS", "20", 1);
  ::setenv("MSC_MAX_ROUND_ATTEMPTS", "8", 1);
  const pipeline::PipelineConfig out = pipeline::withEnvOverrides(chaosConfig());
  EXPECT_DOUBLE_EQ(out.block_timeout_seconds, 12.5);
  EXPECT_DOUBLE_EQ(out.fault.recv_deadline_seconds, 3.25);
  EXPECT_DOUBLE_EQ(out.fault.backoff_initial_ms, 0.5);
  EXPECT_DOUBLE_EQ(out.fault.backoff_max_ms, 20.0);
  EXPECT_EQ(out.fault.max_round_attempts, 8);
}

TEST_F(EnvOverrideTest, UnsetVariablesLeaveTheConfigUntouched) {
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.block_timeout_seconds = 45.0;
  const pipeline::PipelineConfig out = pipeline::withEnvOverrides(cfg);
  EXPECT_DOUBLE_EQ(out.block_timeout_seconds, 45.0);
  EXPECT_DOUBLE_EQ(out.fault.recv_deadline_seconds,
                   cfg.fault.recv_deadline_seconds);
}

TEST_F(EnvOverrideTest, GarbageValuesThrowNamingTheVariable) {
  ::setenv("MSC_BLOCK_TIMEOUT", "soon", 1);
  try {
    pipeline::withEnvOverrides(chaosConfig());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MSC_BLOCK_TIMEOUT"), std::string::npos)
        << e.what();
  }
}

TEST_F(EnvOverrideTest, OverriddenValuesAreStillValidated) {
  // The pipeline validates the *effective* config, so a bad env value
  // is rejected like any other.
  ::setenv("MSC_BLOCK_TIMEOUT", "-5", 1);
  pipeline::PipelineConfig cfg = chaosConfig();
  EXPECT_THROW(pipeline::runThreadedPipeline(cfg), std::invalid_argument);
}

TEST_F(EnvOverrideTest, IntegrityKnobsOverrideTheConfig) {
  ::setenv("MSC_INTEGRITY", "1", 1);
  ::setenv("MSC_CORRUPTION_RETRY_BUDGET", "3", 1);
  const pipeline::PipelineConfig out = pipeline::withEnvOverrides(chaosConfig());
  EXPECT_TRUE(out.integrity);
  EXPECT_EQ(out.fault.corruption_retry_budget, 3);
  ::setenv("MSC_INTEGRITY", "0", 1);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.integrity = true;
  EXPECT_FALSE(pipeline::withEnvOverrides(cfg).integrity);
}

TEST_F(EnvOverrideTest, BadIntegrityValuesFailFast) {
  ::setenv("MSC_CORRUPTION_RETRY_BUDGET", "many", 1);
  try {
    pipeline::withEnvOverrides(chaosConfig());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MSC_CORRUPTION_RETRY_BUDGET"),
              std::string::npos)
        << e.what();
  }
  ::unsetenv("MSC_CORRUPTION_RETRY_BUDGET");
  // An out-of-range budget from the environment is rejected by the
  // same validation as a programmatic one.
  ::setenv("MSC_CORRUPTION_RETRY_BUDGET", "9999", 1);
  const pipeline::PipelineConfig out = pipeline::withEnvOverrides(chaosConfig());
  EXPECT_THROW(pipeline::validatePipelineConfig(out), std::invalid_argument);
}

// ----------------------------------------------------------- deadline recv

TEST(TryRecv, ReturnsNulloptAfterTheDeadline) {
  par::Runtime::run(1, [](par::Comm& comm) {
    par::Comm::RecvDeadline d;
    d.seconds = 0.05;
    EXPECT_FALSE(comm.tryRecv(par::kAny, 7, d).has_value());
  });
}

TEST(TryRecv, DeliversAPendingMessageImmediately) {
  par::Runtime::run(2, [](par::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, par::Bytes{std::byte{42}});
    } else {
      par::Comm::RecvDeadline d;
      d.seconds = 5.0;
      const auto b = comm.tryRecv(0, 7, d);
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(*b, (par::Bytes{std::byte{42}}));
    }
    comm.barrier();
  });
}

TEST(TryRecv, RejectsBadDeadlines) {
  par::Runtime::run(1, [](par::Comm& comm) {
    par::Comm::RecvDeadline d;
    d.seconds = 0.0;
    EXPECT_THROW(comm.tryRecv(par::kAny, 7, d), std::invalid_argument);
    d.seconds = 1.0;
    d.backoff_initial_ms = 2.0;
    d.backoff_max_ms = 1.0;
    EXPECT_THROW(comm.tryRecv(par::kAny, 7, d), std::invalid_argument);
  });
}

// ------------------------------------------------------------ the recovery

TEST(Recovery, NoFaultsIsByteIdenticalToThePlainDriver) {
  const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(chaosConfig());
  for (const fault::RecoveryMode mode :
       {fault::RecoveryMode::kRespawn, fault::RecoveryMode::kDegrade}) {
    pipeline::PipelineConfig cfg = chaosConfig();
    cfg.fault.recovery = mode;  // recovery armed, nothing to recover from
    const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
    expectSameBytes(r.outputs, plain.outputs, fault::recoveryModeName(mode));
    EXPECT_EQ(r.recovery.respawns, 0);
    EXPECT_EQ(r.recovery.round_replays, 0);
    EXPECT_GT(r.recovery.checkpoint_puts, 0);
    EXPECT_EQ(r.node_counts, plain.node_counts);
    EXPECT_EQ(r.arc_count, plain.arc_count);
  }
}

TEST(Recovery, CrashWithRecoveryDisabledIsAStructuredErrorNotAHang) {
  fault::InjectorOptions fopts;
  fopts.seed = 5;
  fopts.crash_rate = 1.0;  // first comm op of every rank crashes it
  fopts.delay_rate = fopts.duplicate_rate = fopts.stall_rate = 0.0;
  fault::Injector inj(4, fopts);
  audit::Auditor auditor(4);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.injector = &inj;
  cfg.fault.recovery = fault::RecoveryMode::kOff;
  cfg.auditor = &auditor;
  cfg.block_timeout_seconds = 5.0;
  cfg.fault.recv_deadline_seconds = 1.0;
  // The run must end in a structured error (the rank's RankFailure or
  // the watchdog's AuditError on whoever waited for it) — the
  // per-test chaos TIMEOUT is the hang backstop.
  EXPECT_THROW(pipeline::runThreadedPipeline(cfg), std::runtime_error);
}

TEST(Recovery, RespawnModeSurvivesGuaranteedCrashes) {
  const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(chaosConfig());
  fault::InjectorOptions fopts;
  fopts.seed = 17;
  fopts.crash_rate = 0.6;  // every rank will die, most more than once
  fopts.delay_rate = fopts.duplicate_rate = fopts.stall_rate = 0.0;
  fault::Injector inj(4, fopts);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.injector = &inj;
  cfg.fault.recovery = fault::RecoveryMode::kRespawn;
  cfg.fault.recv_deadline_seconds = 2.0;
  cfg.fault.max_round_attempts = 32;
  cfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
  const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
  expectSameBytes(r.outputs, plain.outputs, "respawn after crashes");
  EXPECT_GT(inj.fired(fault::FaultKind::kCrash), 0);
  EXPECT_GT(r.recovery.respawns, 0);
  // A crash does not force a round replay (the replacement can redo
  // the attempt within the deadline), but it always restores its home
  // blocks from the checkpoint store.
  EXPECT_GT(r.recovery.checkpoint_restores, 0);
  EXPECT_EQ(r.recovery.faults_injected, inj.firedTotal());
}

TEST(Recovery, DegradeModeReassignsTheDeadRanksBlocks) {
  const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(chaosConfig());
  // A schedule that kills at least one rank but cannot kill all four:
  // only rank 2's slots can crash.
  fault::InjectorOptions probe;
  probe.seed = 23;
  probe.crash_rate = 0.0;
  probe.delay_rate = 0.3;
  probe.duplicate_rate = 0.3;
  probe.stall_rate = 0.0;
  fault::Injector latency(4, probe);  // latency-only: order shuffling
  {
    pipeline::PipelineConfig cfg = chaosConfig();
    cfg.fault.injector = &latency;
    cfg.fault.recovery = fault::RecoveryMode::kDegrade;
    cfg.fault.recv_deadline_seconds = 2.0;
    cfg.fault.max_round_attempts = 32;
    const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
    expectSameBytes(r.outputs, plain.outputs, "degrade, latency faults only");
    EXPECT_EQ(r.recovery.respawns, 0);
  }
  // Now with crashes: dead ranks stay dead, blocks move, bytes match.
  // Which ranks die is a function of the seed; scan (deterministically)
  // for a schedule that kills some ranks but not all four — a seed
  // that wipes out every rank is legal total-loss, not what this test
  // is about.
  bool found = false;
  for (unsigned seed = 29; seed < 100 && !found; ++seed) {
    fault::InjectorOptions fopts;
    fopts.seed = seed;
    fopts.crash_rate = 0.25;
    fopts.delay_rate = fopts.duplicate_rate = fopts.stall_rate = 0.0;
    fopts.max_crashes_per_rank = 1;
    fault::Injector inj(4, fopts);
    pipeline::PipelineConfig cfg = chaosConfig();
    cfg.fault.injector = &inj;
    cfg.fault.recovery = fault::RecoveryMode::kDegrade;
    cfg.fault.recv_deadline_seconds = 2.0;
    cfg.fault.max_round_attempts = 32;
    cfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
    pipeline::ThreadedResult r;
    try {
      r = pipeline::runThreadedPipeline(cfg);
    } catch (const fault::RecoveryError&) {
      continue;  // every rank died — try the next schedule
    }
    if (inj.fired(fault::FaultKind::kCrash) == 0) continue;
    found = true;
    expectSameBytes(r.outputs, plain.outputs,
                    "degrade after crashes, seed " + std::to_string(seed));
    // A fresh death always vetoes the round's vote, so the round is
    // replayed and the dead rank's blocks restore onto survivors.
    EXPECT_GT(r.recovery.round_replays, 0);
    EXPECT_GT(r.recovery.reassigned_blocks, 0);
  }
  EXPECT_TRUE(found) << "no seed in [29, 100) killed 1..3 of 4 ranks";
}

TEST(Recovery, CheckpointsSpillToDiskWhenConfigured) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "msc_chaos_ckpt_dir").string();
  std::filesystem::remove_all(dir);
  pipeline::PipelineConfig cfg = chaosConfig();
  cfg.fault.recovery = fault::RecoveryMode::kRespawn;
  cfg.fault.checkpoint_dir = dir;
  const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
  EXPECT_GT(r.recovery.checkpoint_puts, 0);
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    files += e.is_regular_file();
  EXPECT_EQ(static_cast<std::int64_t>(files), r.recovery.checkpoint_puts);
  std::filesystem::remove_all(dir);
}

// The acceptance matrix: >= 25 seeded fault schedules, each replayed
// through BOTH recovery modes, every recovered output byte-identical
// to the fault-free run. Default injector rates: ~11% of merge-round
// comm ops perturbed (crash/delay/duplicate/stall).
class ChaosMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChaosMatrix, RecoveredOutputMatchesFaultFreeBytes) {
  const unsigned seed = GetParam();
  const pipeline::PipelineConfig base = chaosConfig();
  const pipeline::ThreadedResult golden = pipeline::runThreadedPipeline(base);

  for (const fault::RecoveryMode mode :
       {fault::RecoveryMode::kRespawn, fault::RecoveryMode::kDegrade}) {
    fault::InjectorOptions fopts;
    fopts.seed = seed;
    fault::Injector inj(base.nranks, fopts);
    pipeline::PipelineConfig cfg = base;
    cfg.fault.injector = &inj;
    cfg.fault.recovery = mode;
    cfg.fault.recv_deadline_seconds = 2.0;
    cfg.fault.max_round_attempts = 32;
    cfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
    const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
    expectSameBytes(r.outputs, golden.outputs,
                    std::string("seed ") + std::to_string(seed) + " " +
                        fault::recoveryModeName(mode));
    // Byte equality already implies this, but the census comparison
    // produces a far better failure report, so check it first on
    // mismatch-prone structures too.
    const check::CanonicalComplex a = check::canonicalize(base.domain, golden.outputs);
    const check::CanonicalComplex b = check::canonicalize(base.domain, r.outputs);
    EXPECT_TRUE(check::compareExact(a, b).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosMatrix, ::testing::Range(1u, 31u));

// Crash-during-sharded-round matrix: a single wide merge round with
// the sharded final exchange on, so every injected merge-round fault
// (crash/delay/duplicate/stall) lands inside the sharded round's
// two-phase skeleton+bundle protocol. Both recovery modes must
// reproduce the fault-free parts byte-for-byte; in degrade mode a
// total loss (all ranks dead) is the one legal structured failure.
class ShardedChaosMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardedChaosMatrix, RecoveredShardedOutputMatchesFaultFreeBytes) {
  const unsigned seed = GetParam();
  pipeline::PipelineConfig base = chaosConfig();
  base.plan = MergePlan::partial({8});  // one round: the sharded one
  base.sharded_final = true;
  base.premerge = true;
  const pipeline::ThreadedResult golden = pipeline::runThreadedPipeline(base);
  ASSERT_GT(golden.outputs.size(), 1u) << "final round did not shard";

  for (const fault::RecoveryMode mode :
       {fault::RecoveryMode::kRespawn, fault::RecoveryMode::kDegrade}) {
    fault::InjectorOptions fopts;
    fopts.seed = seed;
    fault::Injector inj(base.nranks, fopts);
    pipeline::PipelineConfig cfg = base;
    cfg.fault.injector = &inj;
    cfg.fault.recovery = mode;
    cfg.fault.recv_deadline_seconds = 2.0;
    cfg.fault.max_round_attempts = 32;
    cfg.fault.max_respawns_per_rank = fopts.max_crashes_per_rank;
    pipeline::ThreadedResult r;
    try {
      r = pipeline::runThreadedPipeline(cfg);
    } catch (const fault::RecoveryError& e) {
      EXPECT_EQ(mode, fault::RecoveryMode::kDegrade) << e.what();
      EXPECT_NE(std::string(e.what()).find("no live ranks"), std::string::npos)
          << e.what();
      continue;
    }
    expectSameBytes(r.outputs, golden.outputs,
                    std::string("sharded seed ") + std::to_string(seed) + " " +
                        fault::recoveryModeName(mode));
    const check::CanonicalComplex a = check::canonicalize(base.domain, golden.outputs);
    const check::CanonicalComplex b = check::canonicalize(base.domain, r.outputs);
    EXPECT_TRUE(check::compareExact(a, b).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedChaosMatrix, ::testing::Range(1u, 13u));

// Fuzz-derived cases x fault seeds: the full differential oracle
// (serial vs sim vs threaded vs both recovered runs) on varied
// grids/fields/decompositions, with the fault dimension switched on.
class ChaosFuzzCases : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChaosFuzzCases, FuzzOracleHoldsUnderFaultInjection) {
  check::FuzzLimits lim;
  lim.with_faults = true;
  const check::FuzzCase c = check::caseFromSeed(GetParam(), lim);
  ASSERT_NE(c.fault_seed, 0u);
  const std::vector<std::string> problems = check::runFuzzCase(c);
  EXPECT_TRUE(problems.empty())
      << c.describe() << ": " << (problems.empty() ? "" : problems.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzzCases,
                         ::testing::Values(1u, 7u, 13u, 21u, 34u));

}  // namespace
}  // namespace msc
