/// Tests for the observability subsystem (obs/): span nesting under
/// concurrency, exact counter totals for the collectives, Chrome
/// trace export validity, and the tracing-does-not-perturb-results
/// guarantee for the threaded pipeline.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "obs/summary.hpp"
#include "par/comm.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc {
namespace {

// --- A tiny recursive-descent JSON syntax checker, so the "valid
// JSON" acceptance criterion is tested without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Obs, SpansNestCorrectlyUnderConcurrency) {
  constexpr int kRanks = 8, kIters = 50;
  obs::Tracer tracer(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&tracer, r] {
      for (int i = 0; i < kIters; ++i) {
        auto outer = tracer.span(r, "outer", "test");
        {
          auto inner = tracer.span(r, "inner", "test");
          auto innermost = tracer.span(r, "innermost", "test");
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int r = 0; r < kRanks; ++r) {
    const std::vector<obs::Event> events = tracer.events(r);
    int outer = 0, inner = 0, innermost = 0;
    // Spans are recorded at close, innermost-first; reconstruct the
    // nesting from depth + interval containment.
    std::vector<const obs::Event*> by_name[3];
    for (const obs::Event& e : events) {
      ASSERT_EQ(e.kind, obs::EventKind::kSpan);
      if (e.name == "outer") { EXPECT_EQ(e.depth, 0); by_name[0].push_back(&e); ++outer; }
      if (e.name == "inner") { EXPECT_EQ(e.depth, 1); by_name[1].push_back(&e); ++inner; }
      if (e.name == "innermost") { EXPECT_EQ(e.depth, 2); by_name[2].push_back(&e); ++innermost; }
    }
    EXPECT_EQ(outer, kIters);
    EXPECT_EQ(inner, kIters);
    EXPECT_EQ(innermost, kIters);
    // Each inner span lies within its iteration's outer span.
    for (int i = 0; i < kIters; ++i) {
      const obs::Event& o = *by_name[0][static_cast<std::size_t>(i)];
      const obs::Event& in = *by_name[1][static_cast<std::size_t>(i)];
      const obs::Event& im = *by_name[2][static_cast<std::size_t>(i)];
      EXPECT_GE(in.ts, o.ts);
      EXPECT_LE(in.ts + in.dur, o.ts + o.dur + 1e-9);
      EXPECT_GE(im.ts, in.ts);
      EXPECT_LE(im.ts + im.dur, in.ts + in.dur + 1e-9);
    }
  }
}

TEST(Obs, GatherCountersMatchExactTotals) {
  constexpr int kRanks = 5, kRoot = 2;
  obs::Tracer tracer(kRanks);
  par::Runtime::run(kRanks, [](par::Comm& c) {
    // Rank r contributes r+1 payload bytes.
    par::Bytes payload(static_cast<std::size_t>(c.rank() + 1));
    c.gather(kRoot, std::move(payload));
  }, &tracer);

  for (int r = 0; r < kRanks; ++r) {
    const obs::CounterSet cs = tracer.counters(r);
    if (r == kRoot) {
      EXPECT_EQ(cs[obs::Counter::kMessagesSent], 0);
      EXPECT_EQ(cs[obs::Counter::kMessagesReceived], kRanks - 1);
      // Receives every other rank's payload: sum of (i+1) minus own.
      EXPECT_EQ(cs[obs::Counter::kBytesReceived], 1 + 2 + 3 + 4 + 5 - (kRoot + 1));
    } else {
      EXPECT_EQ(cs[obs::Counter::kMessagesSent], 1);
      EXPECT_EQ(cs[obs::Counter::kBytesSent], r + 1);
      EXPECT_EQ(cs[obs::Counter::kMessagesReceived], 0);
      EXPECT_EQ(cs[obs::Counter::kBytesReceived], 0);
    }
    // Exactly one gather span per rank, at nesting depth 0.
    int gathers = 0;
    for (const obs::Event& e : tracer.events(r))
      if (e.kind == obs::EventKind::kSpan && e.name == "gather") {
        EXPECT_EQ(e.depth, 0);
        ++gathers;
      }
    EXPECT_EQ(gathers, 1);
  }
  const obs::CounterSet totals = tracer.totals();
  EXPECT_EQ(totals[obs::Counter::kMessagesSent], kRanks - 1);
  EXPECT_EQ(totals[obs::Counter::kMessagesReceived], kRanks - 1);
  EXPECT_EQ(totals[obs::Counter::kBytesSent], totals[obs::Counter::kBytesReceived]);
}

TEST(Obs, BroadcastCountersMatchExactTotals) {
  static constexpr int kRanks = 6, kRoot = 1;
  static constexpr std::size_t kBytes = 77;
  obs::Tracer tracer(kRanks);
  par::Runtime::run(kRanks, [](par::Comm& c) {
    par::Bytes payload = c.rank() == kRoot ? par::Bytes(kBytes) : par::Bytes{};
    const par::Bytes got = c.broadcast(kRoot, std::move(payload));
    EXPECT_EQ(got.size(), kBytes);
  }, &tracer);

  for (int r = 0; r < kRanks; ++r) {
    const obs::CounterSet cs = tracer.counters(r);
    if (r == kRoot) {
      EXPECT_EQ(cs[obs::Counter::kMessagesSent], kRanks - 1);
      EXPECT_EQ(cs[obs::Counter::kBytesSent], (kRanks - 1) * kBytes);
      EXPECT_EQ(cs[obs::Counter::kMessagesReceived], 0);
    } else {
      EXPECT_EQ(cs[obs::Counter::kMessagesSent], 0);
      EXPECT_EQ(cs[obs::Counter::kMessagesReceived], 1);
      EXPECT_EQ(cs[obs::Counter::kBytesReceived], kBytes);
    }
  }
}

TEST(Obs, ChromeTraceIsValidJsonWithOneTidPerRank) {
  constexpr int kRanks = 4;
  obs::Tracer tracer(kRanks);
  par::Runtime::run(kRanks, [](par::Comm& c) {
    c.barrier();
    if (c.rank() != 0) c.sendValue(0, 1, c.rank());
    else
      for (int i = 1; i < kRanks; ++i) c.recvValue<int>(par::kAny, 1);
    c.barrier();
  }, &tracer);

  const std::string json = obs::chromeTraceJson(tracer, "test");
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter samples
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // Every rank appears as a tid; no other tids do.
  std::set<int> tids;
  const std::string key = "\"tid\":";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1))
    tids.insert(std::atoi(json.c_str() + pos + key.size()));
  std::set<int> expected;
  for (int r = 0; r < kRanks; ++r) expected.insert(r);
  EXPECT_EQ(tids, expected);
}

TEST(Obs, SummaryListsStagesAndCounters) {
  obs::Tracer tracer(2);
  { auto s = tracer.span(0, "alpha", "stage"); }
  { auto s = tracer.span(1, "beta", "stage"); }
  tracer.count(0, obs::Counter::kBytesSent, 123);
  const std::string text = obs::summaryText(tracer);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("bytes_sent"), std::string::npos);
  EXPECT_NE(text.find("123"), std::string::npos);
}

TEST(Obs, SyntheticSpanAtAndCountAt) {
  obs::Tracer tracer(2);
  tracer.spanAt(1, "read", 0.5, 2.0, "stage", "block", 7);
  tracer.countAt(1, obs::Counter::kBytesReceived, 2.5, 1000);
  tracer.countAt(1, obs::Counter::kBytesReceived, 3.0, 500);
  const auto events = tracer.events(1);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "read");
  EXPECT_DOUBLE_EQ(events[0].ts, 0.5);
  EXPECT_DOUBLE_EQ(events[0].dur, 2.0);
  EXPECT_DOUBLE_EQ(events[2].value, 1500);  // cumulative
  EXPECT_EQ(tracer.counters(1)[obs::Counter::kBytesReceived], 1500);
  EXPECT_EQ(tracer.counters(0)[obs::Counter::kBytesReceived], 0);
}

TEST(Obs, RecvValueSizeMismatchThrows) {
  EXPECT_THROW(
      par::Runtime::run(2, [](par::Comm& c) {
        if (c.rank() == 0) {
          c.send(1, 4, par::Bytes(3));  // 3 bytes, receiver expects sizeof(int)
        } else {
          c.recvValue<int>(0, 4);
        }
      }),
      std::runtime_error);
  // And the message is diagnosable: carries expected and actual sizes.
  try {
    par::Runtime::run(2, [](par::Comm& c) {
      if (c.rank() == 0) c.send(1, 4, par::Bytes(3));
      else c.recvValue<int>(0, 4);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected 4"), std::string::npos) << what;
    EXPECT_NE(what.find("got 3"), std::string::npos) << what;
    EXPECT_NE(what.find("src 0"), std::string::npos) << what;
  }
}

TEST(Obs, TracingDoesNotPerturbPipelineOutputs) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{33, 33, 17}};
  cfg.source.field = synth::sinusoid(cfg.domain, 4);
  cfg.nblocks = 4;
  cfg.nranks = 2;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(cfg.nblocks);

  const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(cfg);

  obs::Tracer tracer(cfg.nranks);
  cfg.tracer = &tracer;
  const pipeline::ThreadedResult traced = pipeline::runThreadedPipeline(cfg);

  ASSERT_EQ(traced.outputs.size(), plain.outputs.size());
  for (std::size_t i = 0; i < plain.outputs.size(); ++i)
    EXPECT_EQ(traced.outputs[i], plain.outputs[i]) << "packed complex " << i << " differs";
  EXPECT_EQ(traced.node_counts, plain.node_counts);
  EXPECT_EQ(traced.arc_count, plain.arc_count);
  EXPECT_EQ(traced.output_bytes, plain.output_bytes);

  // The traced run actually recorded the Algorithm 1 stages.
  std::set<std::string> names;
  for (int r = 0; r < cfg.nranks; ++r)
    for (const obs::Event& e : tracer.events(r))
      if (e.kind == obs::EventKind::kSpan) names.insert(e.name);
  for (const char* stage : {"read", "compute", "gradient", "trace", "simplify+pack",
                            "merge_round", "glue", "write", "send", "recv", "barrier"})
    EXPECT_TRUE(names.count(stage)) << "missing span: " << stage;
  EXPECT_GT(tracer.totals()[obs::Counter::kBytesSent], 0);
}

TEST(Obs, SimPipelineEmitsSyntheticTimeline) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::sinusoid(cfg.domain, 2);
  cfg.nblocks = 8;
  cfg.nranks = 8;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(cfg.nblocks);
  obs::Tracer tracer(cfg.nranks);
  cfg.tracer = &tracer;

  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);
  (void)r;
  std::set<std::string> names;
  int spans = 0;
  for (int rk = 0; rk < cfg.nranks; ++rk)
    for (const obs::Event& e : tracer.events(rk))
      if (e.kind == obs::EventKind::kSpan) { names.insert(e.name); ++spans; }
  for (const char* stage : {"read", "compute", "merge_prep", "merge_group", "send", "write"})
    EXPECT_TRUE(names.count(stage)) << "missing synthetic span: " << stage;
  EXPECT_GE(spans, cfg.nranks * 4);

  const std::string json = obs::chromeTraceJson(tracer, "sim");
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
}

}  // namespace
}  // namespace msc
