/// Tests for the synthetic field generators (synth/fields).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lower_star.hpp"
#include "decomp/decompose.hpp"
#include "synth/fields.hpp"

namespace msc::synth {
namespace {

TEST(Synth, BlockSamplingMatchesGlobalSampling) {
  // Blocks sampled independently must agree with the serial sampling
  // at every shared vertex -- the determinism every stability result
  // depends on.
  const Domain d{{13, 12, 11}};
  for (const Field& f : {sinusoid(d, 3), hydrogenLike(d), jetLike(d), rtLike(d),
                         noise(9), cosineProduct(d, 2)}) {
    const std::vector<float> all = sampleAll(d, f);
    for (const Block& blk : decompose(d, 8)) {
      const BlockField bf = sample(blk, f);
      for (std::int64_t z = 0; z < blk.vdims.z; ++z)
        for (std::int64_t y = 0; y < blk.vdims.y; ++y)
          for (std::int64_t x = 0; x < blk.vdims.x; ++x) {
            const Vec3i g = Vec3i{x, y, z} + blk.voffset;
            ASSERT_EQ(bf.vertexValue({x, y, z}),
                      all[static_cast<std::size_t>(d.vertexId(g))]);
          }
    }
  }
}

TEST(Synth, SinusoidComplexityControlsFeatureCount) {
  // More periods per side => more critical points; the relation
  // behind the Fig. 5 / Fig. 6 complexity axis.
  const Domain d{{33, 33, 33}};
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  std::int64_t prev = 0;
  for (const int complexity : {2, 4, 8}) {
    const BlockField bf = sample(whole, sinusoid(d, complexity));
    const auto counts = computeGradientLowerStar(bf).criticalCounts();
    const std::int64_t total = counts[0] + counts[1] + counts[2] + counts[3];
    EXPECT_GT(total, prev) << "complexity " << complexity;
    prev = total;
  }
}

TEST(Synth, SinusoidRange) {
  const Domain d{{17, 17, 17}};
  const Field f = sinusoid(d, 4);
  for (std::int64_t i = 0; i < 17; ++i) {
    const float v = f({i, i, i});
    EXPECT_GE(v, -1.001f);
    EXPECT_LE(v, 1.001f);
  }
}

TEST(Synth, HydrogenHasFlatExteriorAndThreeLobes) {
  const Domain d{{33, 33, 33}};
  const Field f = hydrogenLike(d);
  // Corners are flat zero (byte-quantised plateau).
  EXPECT_EQ(f({0, 0, 0}), 0.0f);
  EXPECT_EQ(f({32, 32, 32}), 0.0f);
  EXPECT_EQ(f({32, 0, 0}), 0.0f);
  // The three lobes along x are bright.
  EXPECT_GT(f({16, 16, 16}), 200.0f);  // centre lobe
  EXPECT_GT(f({7, 16, 16}), 100.0f);   // left lobe
  EXPECT_GT(f({25, 16, 16}), 100.0f);  // right lobe
  // The torus ring in the y-z plane through the centre is elevated.
  EXPECT_GT(f({16, 16 + 7, 16}), 50.0f);
  // Integer-valued everywhere (byte data).
  for (std::int64_t i = 0; i < 33; i += 3) {
    const float v = f({i, 16, 16});
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(Synth, JetEnvelopeDecaysRadially) {
  const Domain d{{48, 56, 32}};
  const Field f = jetLike(d);
  // On-axis value well above the far-field coflow.
  const float core = f({8, 28, 16});
  const float coflow = f({8, 2, 2});
  EXPECT_GT(core, coflow + 0.3f);
}

TEST(Synth, RtDensityIncreasesUpward) {
  const Domain d{{32, 32, 32}};
  const Field f = rtLike(d);
  // Heavy fluid on top: average density at the top exceeds bottom.
  double top = 0, bottom = 0;
  for (std::int64_t x = 0; x < 32; x += 4)
    for (std::int64_t y = 0; y < 32; y += 4) {
      bottom += f({x, y, 2});
      top += f({x, y, 29});
    }
  EXPECT_GT(top, bottom + 8.0);
}

TEST(Synth, NoiseIsDeterministicAndSeedDependent) {
  const Field a = noise(1), b = noise(1), c = noise(2);
  EXPECT_EQ(a({3, 4, 5}), b({3, 4, 5}));
  EXPECT_NE(a({3, 4, 5}), c({3, 4, 5}));
  // In range [0, 1).
  for (std::int64_t i = 0; i < 50; ++i) {
    const float v = a({i, i * 3, i * 7});
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Synth, RampIsMonotone) {
  const Field f = ramp();
  EXPECT_LT(f({0, 0, 0}), f({1, 0, 0}));
  EXPECT_LT(f({5, 5, 5}), f({5, 6, 5}));
}

}  // namespace
}  // namespace msc::synth
