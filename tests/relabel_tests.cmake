# Re-apply multi-label sets that gtest_discover_tests flattens.
#
# Passing LABELS "a;b" through gtest_discover_tests(PROPERTIES ...)
# loses the semicolon when the discovery machinery serializes the
# property list into the generated <target>[1]_tests.cmake file: the
# tests come out labelled `a` only, so `ctest -L b` silently selects
# nothing (which is exactly how a label-scoped sanitizer leg rots).
# This file is appended to TEST_INCLUDE_FILES after the generated
# discovery files, where each target's <target>_TESTS list is in
# scope, so a plain quoted label list sticks.
foreach(t IN LISTS msc_prof_tests_TESTS)
  set_tests_properties(${t} PROPERTIES LABELS "unit;profile")
endforeach()
foreach(t IN LISTS msc_mergedist_tests_TESTS)
  set_tests_properties(${t} PROPERTIES LABELS "unit;property;mergedist")
endforeach()
