/// Unit tests for the refined-grid cell complex (core/grid).
#include <gtest/gtest.h>

#include <set>

#include "core/grid.hpp"

namespace msc {
namespace {

Domain smallDomain() { return Domain{{5, 4, 3}}; }

TEST(Domain, RefinedDims) {
  const Domain d = smallDomain();
  EXPECT_EQ(d.rdims(), (Vec3i{9, 7, 5}));
  EXPECT_EQ(d.numCells(), 9 * 7 * 5);
}

TEST(Domain, AddressRoundTrip) {
  const Domain d = smallDomain();
  const Vec3i r = d.rdims();
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        EXPECT_EQ(d.coordOf(d.addrOf(rc)), rc);
      }
}

TEST(Domain, CellDim) {
  EXPECT_EQ(Domain::cellDim({0, 0, 0}), 0);
  EXPECT_EQ(Domain::cellDim({1, 0, 0}), 1);
  EXPECT_EQ(Domain::cellDim({0, 1, 0}), 1);
  EXPECT_EQ(Domain::cellDim({1, 1, 0}), 2);
  EXPECT_EQ(Domain::cellDim({1, 1, 1}), 3);
  EXPECT_EQ(Domain::cellDim({2, 4, 6}), 0);
}

TEST(Domain, VertexIdsAreUnique) {
  const Domain d = smallDomain();
  std::set<std::uint64_t> ids;
  for (std::int64_t z = 0; z < d.vdims.z; ++z)
    for (std::int64_t y = 0; y < d.vdims.y; ++y)
      for (std::int64_t x = 0; x < d.vdims.x; ++x)
        EXPECT_TRUE(ids.insert(d.vertexId({x, y, z})).second);
  EXPECT_EQ(std::ssize(ids), d.vdims.volume());
}

TEST(Cells, FacetCountMatchesDimension) {
  const Domain d = smallDomain();
  const Vec3i r = d.rdims();
  std::array<Vec3i, 6> out;
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        EXPECT_EQ(facets(rc, r, out), 2 * Domain::cellDim(rc));
      }
}

TEST(Cells, FacetsHaveDimensionOneLess) {
  const Domain d = smallDomain();
  const Vec3i r = d.rdims();
  std::array<Vec3i, 6> out;
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        const int n = facets(rc, r, out);
        for (int i = 0; i < n; ++i)
          EXPECT_EQ(Domain::cellDim(out[i]), Domain::cellDim(rc) - 1);
      }
}

TEST(Cells, CofacetsInverseOfFacets) {
  const Domain d = smallDomain();
  const Vec3i r = d.rdims();
  std::array<Vec3i, 6> fs, cs;
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        const int nc = cofacets(rc, r, cs);
        for (int i = 0; i < nc; ++i) {
          EXPECT_EQ(Domain::cellDim(cs[i]), Domain::cellDim(rc) + 1);
          const int nf = facets(cs[i], r, fs);
          bool found = false;
          for (int j = 0; j < nf; ++j) found |= fs[j] == rc;
          EXPECT_TRUE(found) << "cofacet does not list the cell as facet";
        }
      }
}

TEST(Cells, InteriorCofacetCount) {
  const Domain d = smallDomain();
  const Vec3i r = d.rdims();
  std::array<Vec3i, 6> cs;
  // Strictly interior cells have 2*(3-dim) cofacets.
  for (std::int64_t z = 1; z < r.z - 1; ++z)
    for (std::int64_t y = 1; y < r.y - 1; ++y)
      for (std::int64_t x = 1; x < r.x - 1; ++x) {
        const Vec3i rc{x, y, z};
        EXPECT_EQ(cofacets(rc, r, cs), 2 * (3 - Domain::cellDim(rc)));
      }
}

TEST(Cells, VertexEnumeration) {
  std::array<Vec3i, 8> vs;
  EXPECT_EQ(cellVertices({0, 0, 0}, vs), 1);
  EXPECT_EQ(vs[0], (Vec3i{0, 0, 0}));

  EXPECT_EQ(cellVertices({3, 2, 4}, vs), 2);  // an x-edge
  EXPECT_EQ(vs[0], (Vec3i{1, 1, 2}));
  EXPECT_EQ(vs[1], (Vec3i{2, 1, 2}));

  EXPECT_EQ(cellVertices({1, 1, 1}, vs), 8);  // a voxel
  std::set<std::array<std::int64_t, 3>> set;
  for (int i = 0; i < 8; ++i) set.insert({vs[i].x, vs[i].y, vs[i].z});
  EXPECT_EQ(set.size(), 8u);
}

TEST(Block, GlobalAddressTranslation) {
  const Domain d{{9, 9, 9}};
  Block b;
  b.domain = d;
  b.vdims = {5, 9, 9};
  b.voffset = {4, 0, 0};
  // The paper's address formula: local (i,j,k) maps to the global
  // refined array with offsets doubled.
  const Vec3i rc{2, 3, 4};
  EXPECT_EQ(b.globalAddr(rc), d.addrOf({2 + 8, 3, 4}));
}

TEST(Block, SharedSignature) {
  const Domain d{{9, 9, 9}};
  Block b;
  b.domain = d;
  b.vdims = {5, 9, 9};
  b.voffset = {4, 0, 0};
  b.shared_lo[0] = true;  // split at x-plane 4; low face shared
  EXPECT_EQ(b.sharedSignature({0, 3, 3}), AxisMask{1});
  EXPECT_EQ(b.sharedSignature({1, 3, 3}), AxisMask{0});
  EXPECT_EQ(b.sharedSignature({8, 3, 3}), AxisMask{0});  // high face is global boundary
}

TEST(Block, RefinedBox) {
  const Domain d{{9, 9, 9}};
  Block b;
  b.domain = d;
  b.vdims = {5, 9, 9};
  b.voffset = {4, 0, 0};
  EXPECT_EQ(b.refinedBox(), (Box3{{8, 0, 0}, {16, 16, 16}}));
}

}  // namespace
}  // namespace msc
