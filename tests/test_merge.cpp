/// Tests for gluing MS complexes across blocks (core/merge): shared
/// node deduplication, arc import rules, boundary recomputation, and
/// end-to-end equivalence of a fully merged parallel computation with
/// the serial computation on stable features.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

MsComplex blockComplex(const Block& blk, const synth::Field& f,
                       float local_threshold = 0.0f) {
  const BlockField bf = synth::sample(blk, f);
  MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
  if (local_threshold > 0) {
    SimplifyOptions opts;
    opts.persistence_threshold = local_threshold;
    simplify(c, opts);
  }
  return c;
}

std::int64_t euler(const MsComplex& c) {
  const auto n = c.liveNodeCounts();
  return n[0] - n[1] + n[2] - n[3];
}

TEST(Merge, TwoBlocksShareNodesOnPlane) {
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(21);
  const auto blocks = decompose(d, 2);
  MsComplex root = blockComplex(blocks[0], field);
  const MsComplex other = blockComplex(blocks[1], field);

  GlueStats stats;
  glue(root, other, &stats);
  EXPECT_GT(stats.nodes_shared, 0) << "no anchor nodes on the shared plane";
  EXPECT_GT(stats.nodes_added, 0);
  EXPECT_GT(stats.arcs_added, 0);
  // Arcs fully inside the shared plane exist in both and are deduped.
  EXPECT_GT(stats.arcs_deduped, 0);
  // No duplicate addresses after the glue.
  std::set<CellAddr> addrs;
  for (const Node& nd : root.nodes()) {
    if (!nd.alive) continue;
    EXPECT_TRUE(addrs.insert(nd.addr).second) << "duplicate node at " << nd.addr;
  }
  root.checkInvariants();
}

TEST(Merge, EulerCharacteristicIsOneAfterGlue) {
  // chi(A union B) = chi(A) + chi(B) - chi(A intersect B); both
  // blocks and the shared plane each have chi 1, so the glued complex
  // has chi 1 again. Violations indicate dropped or doubled cells.
  const Domain d{{10, 9, 8}};
  const auto field = synth::noise(2);
  const auto blocks = decompose(d, 2);
  MsComplex root = blockComplex(blocks[0], field);
  const MsComplex other = blockComplex(blocks[1], field);
  EXPECT_EQ(euler(root), 1);
  EXPECT_EQ(euler(other), 1);
  glue(root, other, nullptr);
  EXPECT_EQ(euler(root), 1);
}

TEST(Merge, EightBlockTreeMergeRegionBecomesBox) {
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(33);
  const auto blocks = decompose(d, 8);
  MsComplex root = blockComplex(blocks[0], field);
  std::vector<MsComplex> others;
  for (int i = 1; i < 8; ++i) others.push_back(blockComplex(blocks[i], field));
  mergeComplexes(root, std::move(others), 0.0f);
  ASSERT_TRUE(root.region().isBox());
  EXPECT_EQ(root.region().boxes()[0], (Box3{{0, 0, 0}, {16, 16, 16}}));
  EXPECT_EQ(euler(root), 1);
  // Fully merged: nothing is on a shared boundary any more.
  for (const Node& nd : root.nodes())
    if (nd.alive) EXPECT_FALSE(nd.boundary);
  root.checkInvariants();
}

TEST(Merge, BoundaryNodesBecomeInteriorAndCancel) {
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(55);
  const auto blocks = decompose(d, 2);
  MsComplex a = blockComplex(blocks[0], field);
  const MsComplex b = blockComplex(blocks[1], field);

  std::int64_t boundary_before = 0;
  for (const Node& nd : a.nodes())
    if (nd.alive && nd.boundary) ++boundary_before;
  ASSERT_GT(boundary_before, 0);

  glue(a, b, nullptr);
  SimplifyStats sstats;
  finishMerge(a, 0.01f, &sstats);
  // The spurious plane criticals have near-zero persistence and must
  // cancel once the plane becomes interior.
  EXPECT_GT(sstats.cancellations, 0);
  for (const Node& nd : a.nodes())
    if (nd.alive) EXPECT_FALSE(nd.boundary);
}

/// The flagship correctness property (Fig. 4): a full parallel merge
/// with final simplification recovers the same stable critical
/// points as the serial computation, for a clean Morse field.
class MergeVsSerial : public testing::TestWithParam<int> {};

TEST_P(MergeVsSerial, StableCriticalPointsMatch) {
  const int nblocks = GetParam();
  const int k = 2;
  const Domain d{{17, 17, 17}};
  const auto field = synth::cosineProduct(d, k);
  const float threshold = 0.05f;  // well below the feature persistence

  // Serial baseline: one block covering the domain.
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  MsComplex serial = blockComplex(whole, field);
  SimplifyOptions sopts;
  sopts.persistence_threshold = threshold;
  simplify(serial, sopts);

  // Parallel: local complexes, local simplification, full merge.
  const auto blocks = decompose(d, nblocks);
  MsComplex root = blockComplex(blocks[0], field, threshold);
  std::vector<MsComplex> others;
  for (int i = 1; i < nblocks; ++i) others.push_back(blockComplex(blocks[i], field, threshold));
  mergeComplexes(root, std::move(others), threshold);

  // Counts per index match exactly.
  EXPECT_EQ(root.liveNodeCounts(), serial.liveNodeCounts());

  // Every serial node has a parallel node of equal index within a
  // one-cell geometric tolerance (discretisation can shift nodes by
  // half a cell, section V-A).
  std::vector<std::pair<Vec3i, int>> par;
  for (const Node& nd : root.nodes())
    if (nd.alive) par.push_back({d.coordOf(nd.addr), nd.index});
  for (const Node& nd : serial.nodes()) {
    if (!nd.alive) continue;
    const Vec3i sc = d.coordOf(nd.addr);
    bool matched = false;
    for (const auto& [pc, idx] : par) {
      if (idx != nd.index) continue;
      const Vec3i diff = pc - sc;
      if (std::abs(diff.x) <= 2 && std::abs(diff.y) <= 2 && std::abs(diff.z) <= 2) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "serial node idx " << int(nd.index) << " at " << sc
                         << " missing from parallel result";
  }
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, MergeVsSerial, testing::Values(2, 4, 8, 16),
                         testing::PrintToStringParamName());

TEST(Merge, IncrementalPairwiseEqualsOneShot) {
  // Gluing {B1,...,B7} into B0 in one shot must give the same
  // complex as radix-2 tree rounds with intermediate finishes. A
  // negative threshold suppresses all cancellation (boundary
  // artifacts have *exactly* zero persistence under the max-vertex
  // rule, so even threshold 0 would cancel): the comparison isolates
  // the gluing rules from cancellation-order freedom.
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(77);
  const float threshold = -1.0f;
  const auto blocks = decompose(d, 8);

  MsComplex oneshot = blockComplex(blocks[0], field, threshold);
  {
    std::vector<MsComplex> others;
    for (int i = 1; i < 8; ++i) others.push_back(blockComplex(blocks[i], field, threshold));
    mergeComplexes(oneshot, std::move(others), threshold);
  }

  // Radix-2 tree: (0,1)(2,3)(4,5)(6,7) -> (01,23)(45,67) -> final.
  std::vector<MsComplex> level;
  for (int i = 0; i < 8; ++i) level.push_back(blockComplex(blocks[i], field, threshold));
  while (level.size() > 1) {
    std::vector<MsComplex> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      std::vector<MsComplex> o;
      o.push_back(std::move(level[i + 1]));
      mergeComplexes(level[i], std::move(o), threshold);
      next.push_back(std::move(level[i]));
    }
    level = std::move(next);
  }
  const MsComplex& tree = level[0];

  const auto addrsOf = [](const MsComplex& c) {
    std::set<std::pair<CellAddr, int>> s;
    for (const Node& nd : c.nodes())
      if (nd.alive) s.insert({nd.addr, nd.index});
    return s;
  };
  EXPECT_EQ(addrsOf(oneshot), addrsOf(tree));
  EXPECT_EQ(oneshot.liveArcCount(), tree.liveArcCount());
  EXPECT_EQ(euler(oneshot), euler(tree));
}

TEST(Merge, GlueIsIdempotentForIdenticalComplex) {
  // Gluing a complex into itself adds nothing: all nodes pre-exist
  // and all arcs dedupe.
  const Domain d{{8, 8, 8}};
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  MsComplex a = blockComplex(whole, synth::noise(5));
  const MsComplex b = blockComplex(whole, synth::noise(5));
  const std::int64_t nodes = a.liveNodeCount(), arcs = a.liveArcCount();
  GlueStats stats;
  glue(a, b, &stats);
  EXPECT_EQ(stats.nodes_added, 0);
  EXPECT_EQ(stats.arcs_added, 0);
  EXPECT_EQ(a.liveNodeCount(), nodes);
  EXPECT_EQ(a.liveArcCount(), arcs);
}

}  // namespace
}  // namespace msc
