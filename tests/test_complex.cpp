/// Tests for the MS complex data structure (core/complex): intrusive
/// arc lists, geometry flattening, compaction, boundary recompute.
#include <gtest/gtest.h>

#include "core/complex.hpp"

namespace msc {
namespace {

MsComplex tiny() {
  const Domain d{{5, 5, 5}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {8, 8, 8}}));
  return c;
}

TEST(Complex, AddNodesAndArcs) {
  MsComplex c = tiny();
  const NodeId mn = c.addNode(0, 0, 1.0f);
  const NodeId sd = c.addNode(1, 1, 2.0f);
  const GeomId g = c.addGeom({{1, 0}, {}});
  const ArcId a = c.addArc(mn, sd, g);
  EXPECT_EQ(c.node(mn).n_arcs, 1);
  EXPECT_EQ(c.node(sd).n_arcs, 1);
  EXPECT_EQ(c.arc(a).lower, mn);
  EXPECT_EQ(c.arc(a).upper, sd);
  EXPECT_FLOAT_EQ(c.persistence(a), 1.0f);
  c.checkInvariants();
}

TEST(Complex, ArcListTraversalAndRemoval) {
  MsComplex c = tiny();
  const NodeId mn = c.addNode(0, 0, 0.0f);
  const NodeId s1 = c.addNode(1, 1, 1.0f);
  const NodeId s2 = c.addNode(3, 1, 2.0f);
  const NodeId s3 = c.addNode(5, 1, 3.0f);
  const ArcId a1 = c.addArc(mn, s1, kNone);
  const ArcId a2 = c.addArc(mn, s2, kNone);
  const ArcId a3 = c.addArc(mn, s3, kNone);
  EXPECT_EQ(c.node(mn).n_arcs, 3);

  std::vector<ArcId> seen;
  c.forEachArc(mn, [&](ArcId a) {
    seen.push_back(a);
    return true;
  });
  EXPECT_EQ(seen.size(), 3u);

  c.removeArc(a2, 1);  // middle of the list
  seen.clear();
  c.forEachArc(mn, [&](ArcId a) {
    seen.push_back(a);
    return true;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE((seen[0] == a1 && seen[1] == a3) || (seen[0] == a3 && seen[1] == a1));
  EXPECT_FALSE(c.arc(a2).alive);
  EXPECT_EQ(c.arc(a2).destroyed_gen, 1);
  c.checkInvariants();
}

TEST(Complex, CountArcsBetweenSeesMultiArcs) {
  MsComplex c = tiny();
  const NodeId mn = c.addNode(0, 0, 0.0f);
  const NodeId sd = c.addNode(1, 1, 1.0f);
  c.addArc(mn, sd, kNone);
  EXPECT_EQ(c.countArcsBetween(mn, sd), 1);
  c.addArc(mn, sd, kNone);
  EXPECT_EQ(c.countArcsBetween(mn, sd), 2);
  EXPECT_EQ(c.countArcsBetween(sd, mn), 2);
}

TEST(Complex, GeomFlattenLeaf) {
  MsComplex c = tiny();
  const GeomId g = c.addGeom({{5, 4, 3}, {}});
  EXPECT_EQ(c.flattenGeom(g), (std::vector<CellAddr>{5, 4, 3}));
}

TEST(Complex, GeomFlattenComposite) {
  MsComplex c = tiny();
  const GeomId g1 = c.addGeom({{10, 9, 8}, {}});   // r -> p
  const GeomId g2 = c.addGeom({{12, 11, 8}, {}});  // q -> p (to be reversed)
  const GeomId g3 = c.addGeom({{12, 13, 14}, {}});  // q -> t
  Geom comp;
  comp.children = {{g1, false}, {g2, true}, {g3, false}};
  const GeomId g = c.addGeom(std::move(comp));
  EXPECT_EQ(c.flattenGeom(g), (std::vector<CellAddr>{10, 9, 8, 8, 11, 12, 12, 13, 14}));
}

TEST(Complex, GeomFlattenNestedReversal) {
  MsComplex c = tiny();
  const GeomId g1 = c.addGeom({{1, 2}, {}});
  const GeomId g2 = c.addGeom({{3, 4}, {}});
  Geom inner;
  inner.children = {{g1, false}, {g2, true}};  // 1 2 4 3
  const GeomId gi = c.addGeom(std::move(inner));
  Geom outer;
  outer.children = {{gi, true}};  // reverse of (1 2 4 3) = 3 4 2 1
  const GeomId go = c.addGeom(std::move(outer));
  EXPECT_EQ(c.flattenGeom(go), (std::vector<CellAddr>{3, 4, 2, 1}));
}

TEST(Complex, CompactDropsDeadAndFlattens) {
  MsComplex c = tiny();
  const NodeId mn = c.addNode(0, 0, 0.0f);
  const NodeId sd = c.addNode(1, 1, 1.0f);
  const NodeId mn2 = c.addNode(2, 0, 0.5f);
  const GeomId g1 = c.addGeom({{1, 0}, {}});
  const GeomId g2 = c.addGeom({{1, 2}, {}});
  const ArcId a1 = c.addArc(mn, sd, g1);
  c.addArc(mn2, sd, g2);
  c.removeArc(a1, 1);
  c.node(mn);
  c.removeNode(mn, 1);
  c.recordCancellation({0.5f, mn, sd});

  c.compact();
  EXPECT_EQ(c.liveNodeCount(), 2);
  EXPECT_EQ(c.liveArcCount(), 1);
  EXPECT_EQ(c.cancellations().size(), 0u);  // hierarchy rebased
  EXPECT_EQ(c.nodes().size(), 2u);          // dead node physically gone
  // Surviving arc geometry flattened and intact.
  const Arc& ar = c.arcs()[0];
  EXPECT_EQ(c.flattenGeom(ar.geom), (std::vector<CellAddr>{1, 2}));
  EXPECT_EQ(c.node(ar.upper).addr, CellAddr{1});
  EXPECT_EQ(c.node(ar.lower).addr, CellAddr{2});
  c.checkInvariants();
}

TEST(Complex, AddressIndexSkipsDead) {
  MsComplex c = tiny();
  const NodeId n1 = c.addNode(7, 0, 0.0f);
  c.addNode(9, 1, 1.0f);
  c.removeNode(n1, 1);
  const auto idx = c.addressIndex();
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.contains(9));
  EXPECT_FALSE(idx.contains(7));
}

TEST(Complex, RecomputeBoundary) {
  const Domain d{{5, 5, 5}};  // refined 9x9x9
  // Region = left half box [0..4] in x.
  MsComplex c(d, Region(Box3{{0, 0, 0}, {4, 8, 8}}));
  const NodeId inner = c.addNode(d.addrOf({2, 4, 4}), 0, 0.0f);
  const NodeId face = c.addNode(d.addrOf({4, 4, 4}), 0, 0.0f);    // shared plane
  const NodeId global = c.addNode(d.addrOf({0, 4, 4}), 0, 0.0f);  // global face
  c.recomputeBoundary();
  EXPECT_FALSE(c.node(inner).boundary);
  EXPECT_TRUE(c.node(face).boundary);
  EXPECT_FALSE(c.node(global).boundary);
}

TEST(Region, CoalesceMergesAdjacentBoxes) {
  Region r(Box3{{0, 0, 0}, {4, 8, 8}});
  r.add(Box3{{4, 0, 0}, {8, 8, 8}});
  r.coalesce();
  ASSERT_TRUE(r.isBox());
  EXPECT_EQ(r.boxes()[0], (Box3{{0, 0, 0}, {8, 8, 8}}));
}

TEST(Region, NonBoxUnionBoundary) {
  // An L-shaped union: the inner corner stays shared boundary.
  const Domain d{{9, 9, 9}};  // refined 17^3
  Region r(Box3{{0, 0, 0}, {8, 8, 16}});
  r.add(Box3{{8, 0, 0}, {16, 8, 8}});
  r.coalesce();
  EXPECT_FALSE(r.isBox());
  // Point on the shared plane between the two boxes: interior.
  EXPECT_FALSE(r.onSharedBoundary({8, 4, 4}, d));
  // Point on the top face of the second box (inside the union's
  // bounding box but facing uncovered space): boundary.
  EXPECT_TRUE(r.onSharedBoundary({12, 4, 8}, d));
  // Point on the global domain face: not shared boundary.
  EXPECT_FALSE(r.onSharedBoundary({0, 4, 4}, d));
  EXPECT_FALSE(r.onSharedBoundary({12, 4, 0}, d));
}

}  // namespace
}  // namespace msc
