/// Tests for serialization (io/pack), the output container
/// (io/complex_file), and subarray volume reads (io/volume).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "io/complex_file.hpp"
#include "io/volume.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

std::string tmpPath(const std::string& name) {
  // Pid-qualified: parametrised instances of one test run as separate
  // ctest processes and must not collide on the same file.
  return (std::filesystem::temp_directory_path() / (std::to_string(::getpid()) + "_" + name))
      .string();
}

MsComplex sampleComplex(unsigned seed = 3) {
  const Domain d{{8, 8, 8}};
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  const BlockField bf = synth::sample(b, synth::noise(seed));
  return traceComplex(computeGradientLowerStar(bf), bf);
}

TEST(Pack, RoundTripPreservesStructure) {
  const MsComplex c = sampleComplex();
  const io::Bytes bytes = io::pack(c);
  const MsComplex r = io::unpack(bytes);

  EXPECT_EQ(r.domain().vdims, c.domain().vdims);
  EXPECT_EQ(r.region().boxes(), c.region().boxes());
  EXPECT_EQ(r.liveNodeCount(), c.liveNodeCount());
  EXPECT_EQ(r.liveArcCount(), c.liveArcCount());
  EXPECT_EQ(r.liveNodeCounts(), c.liveNodeCounts());

  // Node identity survives (addresses and values, same order after
  // compaction-style remap).
  const auto ia = c.addressIndex();
  for (const Node& nd : r.nodes()) {
    ASSERT_TRUE(nd.alive);
    const auto it = ia.find(nd.addr);
    ASSERT_NE(it, ia.end());
    const Node& orig = c.node(it->second);
    EXPECT_EQ(nd.index, orig.index);
    EXPECT_EQ(nd.value, orig.value);
    EXPECT_EQ(nd.boundary, orig.boundary);  // recomputed, must agree
  }
}

TEST(Pack, RoundTripPreservesGeometry) {
  const MsComplex c = sampleComplex(9);
  const MsComplex r = io::unpack(io::pack(c));
  // Compare multisets of flattened arc paths.
  const auto paths = [](const MsComplex& x) {
    std::vector<std::vector<CellAddr>> out;
    for (const Arc& ar : x.arcs())
      if (ar.alive && ar.geom != kNone) out.push_back(x.flattenGeom(ar.geom));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(paths(c), paths(r));
}

TEST(Pack, PackedSizeMatchesActual) {
  MsComplex c = sampleComplex(5);
  EXPECT_EQ(io::packedSize(c), io::pack(c).size());
  SimplifyOptions opts;
  opts.persistence_threshold = 0.4f;
  simplify(c, opts);
  EXPECT_EQ(io::packedSize(c), io::pack(c).size());
}

TEST(Pack, UnpackRejectsGarbage) {
  io::Bytes junk(64, std::byte{0x5A});
  EXPECT_THROW(io::unpack(junk), std::runtime_error);
}

TEST(ComplexFile, RoundTripBlocksAndFooter) {
  const std::string path = tmpPath("msc_test_blocks.bin");
  std::vector<io::Bytes> blocks;
  blocks.push_back(io::pack(sampleComplex(1)));
  blocks.push_back(io::pack(sampleComplex(2)));
  blocks.push_back({});  // a "null write" contribution
  blocks.push_back(io::pack(sampleComplex(3)));
  io::writeComplexFile(path, blocks);

  const auto index = io::readComplexFileIndex(path);
  ASSERT_EQ(index.size(), 4u);
  EXPECT_EQ(index[0].first, 0u);
  EXPECT_EQ(index[2].second, 0u);  // the null block
  for (std::size_t i = 1; i < index.size(); ++i)
    EXPECT_EQ(index[i].first, index[i - 1].first + index[i - 1].second);

  const auto back = io::readComplexFile(path);
  ASSERT_EQ(back.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) EXPECT_EQ(back[i], blocks[i]);

  // And the payloads still unpack.
  const MsComplex c = io::unpack(back[3]);
  EXPECT_GT(c.liveNodeCount(), 0);
  std::remove(path.c_str());
}

TEST(ComplexFile, BadMagicRejected) {
  const std::string path = tmpPath("msc_test_bad.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "not a complex file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(io::readComplexFileIndex(path), std::runtime_error);
  std::remove(path.c_str());
}

class VolumeRoundTrip : public testing::TestWithParam<io::SampleType> {};

TEST_P(VolumeRoundTrip, FullVolume) {
  const io::SampleType type = GetParam();
  const Domain d{{7, 6, 5}};
  std::vector<float> samples(static_cast<std::size_t>(d.vdims.volume()));
  for (std::size_t i = 0; i < samples.size(); ++i)
    samples[i] = type == io::SampleType::kUint8 ? static_cast<float>(i % 251)
                                                : 0.5f * static_cast<float>(i);
  const std::string path = tmpPath("msc_test_vol.raw");
  io::writeVolume(path, d, samples, type);
  EXPECT_EQ(std::filesystem::file_size(path),
            samples.size() * io::sampleSize(type));
  const auto back = io::readVolume(path, d, type);
  EXPECT_EQ(back, samples);
  std::remove(path.c_str());
}

TEST_P(VolumeRoundTrip, SubarrayBlockReadMatchesSampling) {
  const io::SampleType type = GetParam();
  const Domain d{{9, 8, 7}};
  // Quantised field so uint8 round-trips exactly.
  const auto field = [](Vec3i v) {
    return static_cast<float>((v.x * 31 + v.y * 17 + v.z * 7) % 199);
  };
  std::vector<float> samples;
  samples.reserve(static_cast<std::size_t>(d.vdims.volume()));
  for (std::int64_t z = 0; z < d.vdims.z; ++z)
    for (std::int64_t y = 0; y < d.vdims.y; ++y)
      for (std::int64_t x = 0; x < d.vdims.x; ++x) samples.push_back(field({x, y, z}));
  const std::string path = tmpPath("msc_test_vol2.raw");
  io::writeVolume(path, d, samples, type);

  for (const Block& blk : decompose(d, 4)) {
    const BlockField fromFile = io::readBlock(path, blk, type);
    const BlockField direct = sampleBlock(blk, field);
    EXPECT_EQ(fromFile.values(), direct.values()) << "block " << blk.id;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Types, VolumeRoundTrip,
                         testing::Values(io::SampleType::kUint8, io::SampleType::kFloat32,
                                         io::SampleType::kFloat64),
                         [](const auto& info) {
                           switch (info.param) {
                             case io::SampleType::kUint8: return "u8";
                             case io::SampleType::kFloat32: return "f32";
                             default: return "f64";
                           }
                         });

}  // namespace
}  // namespace msc

// Appended: collective parallel write (io::parallelWriteComplexFile).
#include "par/comm.hpp"

namespace msc {
namespace {

TEST(ParallelWrite, MatchesSequentialWriter) {
  const std::string seq = tmpPath("msc_pw_seq.bin");
  const std::string par_path = tmpPath("msc_pw_par.bin");
  std::vector<io::Bytes> blocks;
  for (unsigned s = 1; s <= 7; ++s) blocks.push_back(io::pack(sampleComplex(s)));
  blocks[3] = {};  // one null write
  io::writeComplexFile(seq, blocks);

  par::Runtime::run(4, [&](par::Comm& comm) {
    // Round-robin slot ownership across ranks.
    std::vector<io::WriteContribution> mine;
    for (int slot = 0; slot < std::ssize(blocks); ++slot)
      if (slot % comm.size() == comm.rank())
        mine.push_back({slot, blocks[static_cast<std::size_t>(slot)]});
    io::parallelWriteComplexFile(comm, par_path, static_cast<int>(blocks.size()), mine);
  });

  // Byte-identical files.
  const auto a = io::readComplexFile(seq);
  const auto b = io::readComplexFile(par_path);
  EXPECT_EQ(a, b);
  EXPECT_EQ(io::readComplexFileIndex(seq), io::readComplexFileIndex(par_path));
  std::remove(seq.c_str());
  std::remove(par_path.c_str());
}

TEST(ParallelWrite, RejectsDuplicateAndMissingSlots) {
  // Single rank so the error surfaces before any peer could block in
  // a collective (the runtime has no failure broadcast, like MPI).
  const std::string path = tmpPath("msc_pw_dup.bin");
  EXPECT_THROW(par::Runtime::run(1, [&](par::Comm& comm) {
                 std::vector<io::WriteContribution> mine;
                 mine.push_back({0, io::pack(sampleComplex(1))});
                 mine.push_back({0, io::pack(sampleComplex(2))});  // duplicate slot
                 io::parallelWriteComplexFile(comm, path, 2, mine);
               }),
               std::runtime_error);
  EXPECT_THROW(par::Runtime::run(1, [&](par::Comm& comm) {
                 std::vector<io::WriteContribution> mine;
                 mine.push_back({0, io::pack(sampleComplex(1))});  // slot 1 missing
                 io::parallelWriteComplexFile(comm, path, 2, mine);
               }),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msc
