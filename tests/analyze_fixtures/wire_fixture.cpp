// msc_analyze fixture: share-nothing escape pass. A raw pointer in a
// wire struct and a pointer memcpy'd into a payload are the seeded
// defects -- an address is meaningless on the receiving rank.
#include <cstdint>
#include <cstring>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

// msc-analyze: wire-struct
struct GoodPayload {
  std::int64_t id = 0;
  double weight = 0.0;
};

// msc-analyze: wire-struct
struct BadPayload {
  std::int64_t id = 0;
  // msc-analyze: expect(wire-pointer)
  const double* samples = nullptr;
};

void packPointer(Bytes& out) {
  double x = 1.0;
  double* p = &x;
  // msc-analyze: expect(wire-pointer)
  std::memcpy(out.data(), &p, sizeof(p));
}

void packValue(Bytes& out) {
  double x = 1.0;
  std::memcpy(out.data(), &x, sizeof(x));
}
