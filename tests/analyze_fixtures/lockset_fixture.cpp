// msc_analyze fixture: lockset pass. Analyzer-only source -- never
// compiled; each `expect()` marker names the rule that must fire on
// the next code line, and everything unmarked must stay clean.
#include <mutex>

struct Account {
  std::mutex mu;
  int balance MSC_GUARDED_BY(mu) = 0;
};

struct Ledger {
  void auditLocked() MSC_REQUIRES(mu_);

  std::mutex mu_;
  int total_ MSC_GUARDED_BY(mu_) = 0;
};

int readUnderLock(Account& a) {
  const std::lock_guard lock(a.mu);
  return a.balance;
}

int readOutsideLock(Account& a) {
  // msc-analyze: expect(lockset)
  return a.balance;
}

int readAfterEarlyUnlock(Account& a) {
  std::unique_lock lock(a.mu);
  lock.unlock();
  // msc-analyze: expect(lockset)
  return a.balance;
}

void Ledger::auditLocked() { total_ += 1; }
