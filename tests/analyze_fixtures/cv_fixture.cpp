// msc_analyze fixture: condition_variable predicate-form rule. The
// bare wait is the seeded defect: a spurious or stolen wakeup would
// sail past the guarded condition.
#include <condition_variable>
#include <mutex>

struct WorkQueue {
  std::mutex mu;
  std::condition_variable cv;
  int pending MSC_GUARDED_BY(mu) = 0;
};

void waitPredicated(WorkQueue& q) {
  std::unique_lock lock(q.mu);
  q.cv.wait(lock, [&] { return q.pending > 0; });
}

void waitBare(WorkQueue& q) {
  std::unique_lock lock(q.mu);
  // msc-analyze: expect(cv-predicate)
  q.cv.wait(lock);
}
