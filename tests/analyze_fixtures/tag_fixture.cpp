// msc_analyze fixture: tag-space disjointness pass. The geometry
// family's base (200) sits inside the attempt-qualified merge band
// (100 + round*8 + attempt reaches 227), so the two families collide;
// and one send ships a bare literal no annotation covers.
namespace {

constexpr int kBase = 100;
constexpr int kStride = 8;

// msc-analyze: tag-space(fixture): round in [0,16), attempt in [0,8)
int mergeTag(int round, int attempt) { return kBase + round * kStride + attempt; }

// msc-analyze: expect(tag-overlap)
// msc-analyze: tag-space(fixture): round in [0,16)
int geomTag(int round) { return 200 + round; }

}  // namespace

struct Comm {
  void send(int dst, int tag, int payload);
};

void shipTracked(Comm& comm) { comm.send(0, mergeTag(1, 2), 7); }

void shipGeom(Comm& comm) { comm.send(0, geomTag(3), 7); }

void shipUntracked(Comm& comm) {
  // msc-analyze: expect(tag-untracked)
  comm.send(0, 999, 7);
}
