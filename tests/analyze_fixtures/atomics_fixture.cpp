// msc_analyze fixture: atomics-discipline pass. A release-published
// flag read with a relaxed load is the seeded defect; the annotated
// tally slot next to it must stay clean.
#include <atomic>

struct Flags {
  std::atomic<bool> ready{false};
  std::atomic<long> hits MSC_RELAXED_TALLY{0};
};

void publish(Flags& f) { f.ready.store(true, std::memory_order_release); }

bool pollBroken(Flags& f) {
  // msc-analyze: expect(atomic-relaxed)
  // msc-analyze: expect(atomic-handoff)
  return f.ready.load(std::memory_order_relaxed);
}

bool pollPaired(Flags& f) { return f.ready.load(std::memory_order_acquire); }

void bumpTally(Flags& f) { f.hits.fetch_add(1, std::memory_order_relaxed); }
