/// Tests for radix merge plans (merge/plan).
#include <gtest/gtest.h>

#include "merge/plan.hpp"

namespace msc {
namespace {

TEST(MergePlan, RejectsInvalidRadix) {
  EXPECT_THROW(MergePlan({1}), std::invalid_argument);
  EXPECT_THROW(MergePlan({0}), std::invalid_argument);
  EXPECT_THROW(MergePlan({-2}), std::invalid_argument);
  EXPECT_NO_THROW(MergePlan({2, 4, 8}));
  // Wide radices are legal for the sharded final round; fullMerge
  // still restricts itself to the paper's {2, 4, 8}.
  EXPECT_NO_THROW(MergePlan({3}));
  EXPECT_NO_THROW(MergePlan({8, 16}));
}

TEST(MergePlan, OutputsFor) {
  EXPECT_EQ(MergePlan({8, 8}).outputsFor(2048), 32);
  EXPECT_EQ(MergePlan({4, 8, 8, 8}).outputsFor(2048), 1);
  EXPECT_EQ(MergePlan({8}).outputsFor(10), 2);  // ragged last group
  EXPECT_EQ(MergePlan(std::vector<int>{}).outputsFor(7), 7);
}

TEST(MergePlan, FullMergeMatchesPaperExamples) {
  // 2048 blocks -> [4,8,8,8] (Table I); 8192 -> [2,8,8,8,8]
  // (section VI-D1); 256 -> [4,8,8] (Table II row 1); smaller
  // radices come first (section VI-C2).
  EXPECT_EQ(MergePlan::fullMerge(2048).radices(), (std::vector<int>{4, 8, 8, 8}));
  EXPECT_EQ(MergePlan::fullMerge(8192).radices(), (std::vector<int>{2, 8, 8, 8, 8}));
  EXPECT_EQ(MergePlan::fullMerge(256).radices(), (std::vector<int>{4, 8, 8}));
  EXPECT_EQ(MergePlan::fullMerge(512).radices(), (std::vector<int>{8, 8, 8}));
  EXPECT_EQ(MergePlan::fullMerge(2).radices(), (std::vector<int>{2}));
  EXPECT_EQ(MergePlan::fullMerge(1).radices(), (std::vector<int>{}));
}

TEST(MergePlan, FullMergeAlwaysReachesOne) {
  for (int n = 1; n <= 4096; n *= 2) EXPECT_EQ(MergePlan::fullMerge(n).outputsFor(n), 1);
  EXPECT_EQ(MergePlan::fullMerge(100).outputsFor(100), 1);
}

TEST(MergePlan, RoundGroups) {
  const auto groups = makeRound(10, 4);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].root, 0);
  EXPECT_EQ(groups[0].members, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1].members, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(groups[2].members, (std::vector<int>{8, 9}));  // ragged
}

TEST(MergePlan, SurvivorIdsAfterRounds) {
  const MergePlan plan({2, 4});
  const auto after0 = plan.survivorIds(16, 0);
  EXPECT_EQ(std::ssize(after0), 16);
  const auto after1 = plan.survivorIds(16, 1);
  EXPECT_EQ(after1, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
  const auto after2 = plan.survivorIds(16, 2);
  EXPECT_EQ(after2, (std::vector<int>{0, 8}));
}

TEST(MergePlan, ToString) {
  EXPECT_EQ(MergePlan({4, 8, 8}).toString(), "[4,8,8]");
  EXPECT_EQ(MergePlan(std::vector<int>{}).toString(), "[]");
}

}  // namespace
}  // namespace msc
