/// Tests for the analysis toolkit (census, feature extraction,
/// network statistics).
#include <gtest/gtest.h>

#include "analysis/census.hpp"
#include "analysis/graph.hpp"
#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "synth/fields.hpp"

namespace msc::analysis {
namespace {

MsComplex cosineComplex(int k = 2, float threshold = 0.05f) {
  const Domain d{{17, 17, 17}};
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  const BlockField bf = synth::sample(b, synth::cosineProduct(d, k));
  MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
  SimplifyOptions opts;
  opts.persistence_threshold = threshold;
  simplify(c, opts);
  return c;
}

TEST(Census, CountsMatchComplex) {
  const MsComplex c = cosineComplex();
  const Census cs = census(c);
  EXPECT_EQ(cs.nodes[0], 8);
  EXPECT_EQ(cs.nodes[1], 12);
  EXPECT_EQ(cs.nodes[2], 6);
  EXPECT_EQ(cs.nodes[3], 1);
  EXPECT_EQ(cs.totalNodes(), c.liveNodeCount());
  EXPECT_EQ(cs.arcs, c.liveArcCount());
  EXPECT_EQ(cs.euler(), 1);
  EXPECT_GT(cs.geometry_cells, 0);
  EXPECT_LE(cs.min_value, cs.max_value);
}

TEST(Census, PersistenceHistogramSumsToArcs) {
  const MsComplex c = cosineComplex();
  const PersistenceHistogram h = persistenceHistogram(c, 16);
  std::int64_t total = 0;
  for (const auto b : h.bins) total += b;
  EXPECT_EQ(total, c.liveArcCount());
  EXPECT_GT(h.bin_width, 0);
}

TEST(Census, CancelledPersistencesBelowThreshold) {
  const MsComplex c = cosineComplex(2, 0.05f);
  for (const float p : cancelledPersistences(c)) EXPECT_LE(p, 0.05f);
}

TEST(Features, ExtractByType) {
  const MsComplex c = cosineComplex();
  const auto minSad = extractArcs(c, {ArcType::kMinSaddle, -1e30f, 1e30f});
  const auto sadSad = extractArcs(c, {ArcType::kSaddleSaddle, -1e30f, 1e30f});
  const auto sadMax = extractArcs(c, {ArcType::kSaddleMax, -1e30f, 1e30f});
  const auto all = extractArcs(c, {});
  EXPECT_EQ(std::ssize(minSad) + std::ssize(sadSad) + std::ssize(sadMax), std::ssize(all));
  EXPECT_EQ(std::ssize(all), c.liveArcCount());
  for (const FeatureArc& a : minSad) EXPECT_EQ(c.node(a.lower).index, 0);
  for (const FeatureArc& a : sadMax) {
    EXPECT_EQ(c.node(a.lower).index, 2);
    EXPECT_EQ(c.node(a.upper).index, 3);
  }
  // Separable field: the single maximum has 6 descending arcs.
  EXPECT_EQ(std::ssize(sadMax), 6);
}

TEST(Features, ValueFilter) {
  const MsComplex c = cosineComplex();
  FeatureFilter f;
  f.value_min = 0.0f;  // keeps arcs whose both endpoints are >= 0
  const auto arcs = extractArcs(c, f);
  for (const FeatureArc& a : arcs) {
    EXPECT_GE(c.node(a.lower).value, 0.0f);
    EXPECT_GE(c.node(a.upper).value, 0.0f);
  }
  EXPECT_LT(std::ssize(arcs), c.liveArcCount());
}

TEST(Features, ArcLengthPositiveAndPlausible) {
  const MsComplex c = cosineComplex();
  for (const FeatureArc& a : extractArcs(c, {})) {
    const double len = arcLength(c, a);
    EXPECT_GT(len, 0);
    // Refined steps are half a grid unit; length bounded by path size.
    EXPECT_LE(len, 0.5 * static_cast<double>(a.path.size()));
  }
}

TEST(Features, SelectNodes) {
  const MsComplex c = cosineComplex();
  const auto maxima = selectNodes(c, -1e30f, 3);
  EXPECT_EQ(std::ssize(maxima), 1);
  const auto high = selectNodes(c, 2.5f);
  for (const NodeId n : high) EXPECT_GE(c.node(n).value, 2.5f);
}

TEST(Graph, ComponentsAndCycles) {
  const MsComplex c = cosineComplex();
  // The full min--1-saddle network of the separable field: every
  // saddle connects two minima; the network is connected.
  const auto arcs = extractArcs(c, {ArcType::kMinSaddle, -1e30f, 1e30f});
  const NetworkStats s = networkStats(c, arcs);
  EXPECT_EQ(s.vertices, 8 + 12);
  EXPECT_EQ(s.edges, 24);  // 12 saddles x 2 arcs
  EXPECT_EQ(s.components, 1);
  EXPECT_EQ(s.cycles(), 24 - 20 + 1);
  EXPECT_GT(s.total_length, 0);
  EXPECT_EQ(s.largest_component, 20);
}

TEST(Graph, DisconnectedComponents) {
  // Hand-built: two disjoint edges.
  const Domain d{{9, 9, 9}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {16, 16, 16}}));
  const NodeId m1 = c.addNode(d.addrOf({0, 0, 0}), 0, 0);
  const NodeId s1 = c.addNode(d.addrOf({1, 0, 0}), 1, 1);
  const NodeId m2 = c.addNode(d.addrOf({4, 4, 4}), 0, 0);
  const NodeId s2 = c.addNode(d.addrOf({5, 4, 4}), 1, 1);
  const ArcId a1 = c.addArc(m1, s1, kNone);
  const ArcId a2 = c.addArc(m2, s2, kNone);
  std::vector<FeatureArc> arcs = {{a1, m1, s1, {}}, {a2, m2, s2, {}}};
  const auto comp = components(arcs);
  EXPECT_EQ(comp.at(m1), comp.at(s1));
  EXPECT_EQ(comp.at(m2), comp.at(s2));
  EXPECT_NE(comp.at(m1), comp.at(m2));
  const NetworkStats s = networkStats(c, arcs);
  EXPECT_EQ(s.components, 2);
  EXPECT_EQ(s.cycles(), 0);
}

TEST(Graph, MinCut) {
  // A 4-cycle: min cut between opposite corners is 2.
  const Domain d{{9, 9, 9}};
  MsComplex c(d, Region(Box3{{0, 0, 0}, {16, 16, 16}}));
  const NodeId n0 = c.addNode(d.addrOf({0, 0, 0}), 0, 0);
  const NodeId n1 = c.addNode(d.addrOf({1, 0, 0}), 1, 1);
  const NodeId n2 = c.addNode(d.addrOf({2, 0, 0}), 0, 0);
  const NodeId n3 = c.addNode(d.addrOf({3, 0, 0}), 1, 1);
  std::vector<FeatureArc> arcs;
  arcs.push_back({c.addArc(n0, n1, kNone), n0, n1, {}});
  arcs.push_back({c.addArc(n2, n1, kNone), n2, n1, {}});
  arcs.push_back({c.addArc(n2, n3, kNone), n2, n3, {}});
  arcs.push_back({c.addArc(n0, n3, kNone), n0, n3, {}});
  EXPECT_EQ(minCut(arcs, n0, n2), 2);
  EXPECT_EQ(minCut(arcs, n0, n1), 2);  // cycle: two edge-disjoint paths
  // Disconnected target.
  const NodeId iso = c.addNode(d.addrOf({8, 8, 8}), 0, 0);
  EXPECT_EQ(minCut(arcs, n0, iso), -1);
  EXPECT_EQ(minCut(arcs, n0, n0), 0);
}

}  // namespace
}  // namespace msc::analysis
