/// 2D domains (vdims.z == 1): the cubical machinery degenerates
/// gracefully to the 2D MS complex of Edelsbrunner/Bremer (paper
/// section II). Cells have dimension 0..2; maxima are critical quads.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/census.hpp"
#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "oracle.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

Block flatBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

TEST(TwoD, RefinedGridIsFlat) {
  const Domain d{{9, 9, 1}};
  EXPECT_EQ(d.rdims(), (Vec3i{17, 17, 1}));
  EXPECT_EQ(Domain::cellDim({1, 1, 0}), 2);  // a quad is the top cell
}

TEST(TwoD, GradientValidAndEulerOne) {
  const Domain d{{13, 13, 1}};
  for (const unsigned seed : {1u, 2u, 3u}) {
    const BlockField bf = synth::sample(flatBlock(d), synth::noise(seed));
    for (const auto& g : {computeGradientSweep(bf), computeGradientLowerStar(bf)}) {
      test::expectValidGradient(g);  // chi(square) = 1 as well
      EXPECT_EQ(g.criticalCounts()[3], 0) << "no 3-cells exist in 2D";
    }
  }
}

TEST(TwoD, CosineCriticalCounts) {
  // 2D separable cosine sum: c0 = k^2, c1 = 2k(k-1), c2 = (k-1)^2.
  const int k = 2;
  const Domain d{{17, 17, 1}};
  const auto field = [&](Vec3i p) {
    const double x = p.x / 16.0, y = p.y / 16.0;
    return static_cast<float>(std::cos(2 * 3.14159265358979 * k * x) +
                              std::cos(2 * 3.14159265358979 * k * y) + 1e-3 * x +
                              1.31e-3 * y);
  };
  const BlockField bf = synth::sample(flatBlock(d), field);
  const auto c = computeGradientLowerStar(bf).criticalCounts();
  EXPECT_EQ(c[0], k * k);
  EXPECT_EQ(c[1], 2 * k * (k - 1));
  EXPECT_EQ(c[2], (k - 1) * (k - 1));
  EXPECT_EQ(c[3], 0);
}

TEST(TwoD, TraceAndSimplify) {
  const Domain d{{15, 15, 1}};
  const BlockField bf = synth::sample(flatBlock(d), synth::noise(5));
  const GradientField g = computeGradientLowerStar(bf);
  MsComplex c = traceComplex(g, bf);
  c.checkInvariants();
  EXPECT_EQ(c.liveNodeCounts(), g.criticalCounts());
  const auto n0 = c.liveNodeCounts();
  EXPECT_EQ(n0[0] - n0[1] + n0[2], 1);

  SimplifyOptions opts;
  opts.persistence_threshold = 0.4f;
  EXPECT_GT(simplify(c, opts), 0);
  const auto n1 = c.liveNodeCounts();
  EXPECT_EQ(n1[0] - n1[1] + n1[2], 1);
  c.checkInvariants();
}

TEST(TwoD, ParallelMergeMatchesSerial) {
  const Domain d{{17, 17, 1}};
  const auto field = synth::noise(9);
  // Serial.
  const BlockField whole = synth::sample(flatBlock(d), field);
  MsComplex serial = traceComplex(computeGradientLowerStar(whole), whole);
  // Parallel: 4 blocks (the z axis is never split), pure glue.
  const auto blocks = decompose(d, 4);
  for (const Block& b : blocks) EXPECT_EQ(b.vdims.z, 1);
  MsComplex root;
  std::vector<MsComplex> others;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockField bf = synth::sample(blocks[i], field);
    MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
    if (i == 0)
      root = std::move(c);
    else
      others.push_back(std::move(c));
  }
  mergeComplexes(root, std::move(others), -1.0f);  // glue only
  const auto n = root.liveNodeCounts();
  EXPECT_EQ(n[0] - n[1] + n[2], 1);
  // After zero-persistence cleanup both agree on the census.
  SimplifyOptions opts;
  opts.persistence_threshold = 0.0f;
  simplify(root, opts);
  simplify(serial, opts);
  EXPECT_EQ(root.liveNodeCounts(), serial.liveNodeCounts());
}

}  // namespace
}  // namespace msc
