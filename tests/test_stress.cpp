/// End-to-end stress matrix: the two pipeline drivers across a grid
/// of fields, decompositions, rank counts and merge plans must agree
/// bit-for-bit and satisfy the global invariants.
#include <gtest/gtest.h>

#include <set>

#include "io/pack.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc::pipeline {
namespace {

struct StressCase {
  const char* field;
  int size;
  int nblocks;
  int nranks;
  std::vector<int> radices;  // empty = full merge
  float threshold;
};

std::string stressName(const testing::TestParamInfo<StressCase>& info) {
  const StressCase& c = info.param;
  std::string plan = "full";
  if (!c.radices.empty()) {
    plan.clear();
    for (const int r : c.radices) plan += "r" + std::to_string(r);
  }
  return std::string(c.field) + "_n" + std::to_string(c.size) + "_b" +
         std::to_string(c.nblocks) + "_p" + std::to_string(c.nranks) + "_" + plan;
}

class PipelineStress : public testing::TestWithParam<StressCase> {};

TEST_P(PipelineStress, DriversAgreeAndInvariantsHold) {
  const StressCase sc = GetParam();
  PipelineConfig cfg;
  cfg.domain = Domain{{sc.size, sc.size, sc.size}};
  cfg.source.field = std::string(sc.field) == "noise"
                         ? synth::noise(42)
                         : std::string(sc.field) == "hydrogen"
                               ? synth::hydrogenLike(cfg.domain)
                               : synth::sinusoid(cfg.domain, 4);
  cfg.nblocks = sc.nblocks;
  cfg.nranks = sc.nranks;
  cfg.persistence_threshold = sc.threshold;
  cfg.plan = sc.radices.empty() ? MergePlan::fullMerge(sc.nblocks)
                                : MergePlan::partial(sc.radices);

  const SimResult sim = runSimPipeline(cfg);
  const ThreadedResult thr = runThreadedPipeline(cfg);

  ASSERT_EQ(sim.outputs.size(), thr.outputs.size());
  EXPECT_EQ(sim.node_counts, thr.node_counts);
  EXPECT_EQ(sim.arc_count, thr.arc_count);
  EXPECT_EQ(sim.output_bytes, thr.output_bytes);

  // Output complexes: valid structure, unique addresses globally,
  // and chi over the union is 1 (each complex contributes its own
  // chi = 1 minus shared-plane corrections -- for the fully merged
  // case assert it exactly).
  std::set<CellAddr> seen;
  std::int64_t boundary_nodes = 0;
  for (const io::Bytes& b : sim.outputs) {
    const MsComplex c = io::unpack(b);
    c.checkInvariants();
    for (const Node& nd : c.nodes()) {
      if (!nd.alive) continue;
      if (nd.boundary)
        ++boundary_nodes;  // shared nodes may appear in two outputs
      else
        EXPECT_TRUE(seen.insert(nd.addr).second) << "interior node duplicated";
    }
  }
  if (sim.outputs.size() == 1) {
    EXPECT_EQ(boundary_nodes, 0);
    const MsComplex c = io::unpack(sim.outputs[0]);
    const auto n = c.liveNodeCounts();
    EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineStress,
    testing::Values(
        StressCase{"noise", 9, 4, 2, {}, 0.1f},
        StressCase{"noise", 9, 8, 3, {}, 0.1f},
        StressCase{"noise", 9, 8, 8, {2, 2, 2}, 0.1f},
        StressCase{"noise", 11, 16, 5, {4, 4}, 0.2f},
        StressCase{"noise", 11, 16, 4, {8}, 0.0f},
        StressCase{"noise", 13, 32, 6, {8, 4}, 0.3f},
        StressCase{"sinusoid", 17, 8, 4, {}, 0.05f},
        StressCase{"sinusoid", 17, 16, 7, {4}, 0.05f},
        StressCase{"sinusoid", 21, 32, 8, {8, 8}, 0.05f},
        StressCase{"hydrogen", 17, 8, 2, {}, 2.55f},
        StressCase{"hydrogen", 21, 16, 6, {2, 8}, 2.55f},
        StressCase{"noise", 9, 2, 2, {2}, 1.0f}),
    stressName);

}  // namespace
}  // namespace msc::pipeline
