/// msc::integrity end-to-end tests: checksum/trailer/container
/// round-trips, the corruption fault kinds, detect-and-heal in the
/// comm layer and checkpoint store, and a seeded corruption chaos
/// matrix through both recovery modes that must reproduce the
/// fault-free bytes exactly.
///
/// Several tests here are detection *self-checks*: they corrupt bytes
/// on purpose and require the detector to fire. A detector that can
/// never fail is indistinguishable from no detector — which is the
/// silent-data-corruption failure mode this subsystem exists to
/// prevent. The converse tests (corruption with integrity OFF flows
/// through undetected) pin the baseline threat: the checks are doing
/// the work, not some accident of the formats.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/inject.hpp"
#include "fault/recovery.hpp"
#include "integrity/integrity.hpp"
#include "io/pack.hpp"
#include "merge/plan.hpp"
#include "par/comm.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

io::Bytes patternBytes(std::size_t n, unsigned seed) {
  io::Bytes b(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = integrity::mix64(x);
    b[i] = static_cast<std::byte>(x & 0xFF);
  }
  return b;
}

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Checksum, wire trailer, container

TEST(Checksum, DeterministicAndBitSensitive) {
  const io::Bytes a = patternBytes(777, 1);
  EXPECT_EQ(integrity::checksum64(a.data(), a.size()),
            integrity::checksum64(a.data(), a.size()));
  for (std::size_t i : {std::size_t{0}, a.size() / 2, a.size() - 1}) {
    io::Bytes b = a;
    b[i] = b[i] ^ std::byte{0x01};  // a single flipped bit must avalanche
    EXPECT_NE(integrity::checksum64(a.data(), a.size()),
              integrity::checksum64(b.data(), b.size()));
  }
}

TEST(Checksum, LengthTaggedTail) {
  // Two buffers differing only by trailing zero bytes must hash
  // differently — exactly the torn-write shape a plain chained hash
  // over zero-padded lanes would miss.
  const io::Bytes a(16, std::byte{0x41});
  io::Bytes b = a;
  b.push_back(std::byte{0x00});
  EXPECT_NE(integrity::checksum64(a.data(), a.size()),
            integrity::checksum64(b.data(), b.size()));
  EXPECT_NE(integrity::checksum64(a.data(), 16), integrity::checksum64(a.data(), 15));
}

TEST(WireTrailer, RoundTripAndFlipDetection) {
  const io::Bytes original = patternBytes(200, 2);
  io::Bytes framed = original;
  integrity::appendTrailer(framed);
  ASSERT_EQ(framed.size(), original.size() + integrity::kWireTrailerBytes);

  io::Bytes ok = framed;
  EXPECT_TRUE(integrity::verifyAndStripTrailer(ok));
  EXPECT_EQ(ok, original);

  // Self-check sweep: flipping any load-bearing byte must fail
  // verification; the 6 reserved trailer bytes are the only slack,
  // and a flip there must still deliver the exact original payload.
  int detected = 0;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    io::Bytes bad = framed;
    bad[i] = bad[i] ^ std::byte{0xFF};
    if (integrity::verifyAndStripTrailer(bad)) {
      EXPECT_GE(i, original.size() + 9) << "flip at " << i << " not detected";
      EXPECT_LT(i, original.size() + 15) << "flip at " << i << " not detected";
      EXPECT_EQ(bad, original);
    } else {
      ++detected;
    }
  }
  EXPECT_GE(detected, static_cast<int>(original.size() + 10));

  io::Bytes tiny(integrity::kWireTrailerBytes - 1);
  EXPECT_FALSE(integrity::verifyAndStripTrailer(tiny));
}

TEST(Container, RoundTripAndEveryFlipThrows) {
  const io::Bytes payload = patternBytes(133, 3);
  const std::vector<std::byte> wrapped =
      integrity::wrapContainer(payload.data(), payload.size());
  ASSERT_EQ(wrapped.size(), payload.size() + integrity::kContainerHeaderBytes);
  EXPECT_TRUE(integrity::containerLooksValid(wrapped.data(), wrapped.size()));
  EXPECT_EQ(integrity::unwrapContainer(wrapped.data(), wrapped.size(), "test"), payload);

  // Every header byte is load-bearing (magic, version, length,
  // checksum) and the payload is checksummed, so EVERY flip throws.
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    std::vector<std::byte> bad = wrapped;
    bad[i] = bad[i] ^ std::byte{0xFF};
    EXPECT_FALSE(integrity::containerLooksValid(bad.data(), bad.size())) << "byte " << i;
    EXPECT_THROW(integrity::unwrapContainer(bad.data(), bad.size(), "test"),
                 integrity::IntegrityError)
        << "byte " << i;
  }
  // And every truncation (the torn write).
  for (std::size_t len = 0; len < wrapped.size(); ++len) {
    EXPECT_FALSE(integrity::containerLooksValid(wrapped.data(), len));
    EXPECT_THROW(integrity::unwrapContainer(wrapped.data(), len, "test"),
                 integrity::IntegrityError)
        << "prefix " << len;
  }
}

TEST(FlipOneBit, FlipsExactlyOneDeterministicBit) {
  const io::Bytes zero(64, std::byte{0});
  io::Bytes a = zero;
  integrity::flipOneBit(a.data(), a.size(), 42);
  int ones = 0;
  for (const std::byte b : a) ones += std::popcount(static_cast<unsigned char>(b));
  EXPECT_EQ(ones, 1);
  io::Bytes b = zero;
  integrity::flipOneBit(b.data(), b.size(), 42);
  EXPECT_EQ(a, b);  // same salt, same bit
  integrity::flipOneBit(b.data(), b.size(), 42);
  EXPECT_EQ(b, zero);  // flipping twice restores
  io::Bytes empty;
  integrity::flipOneBit(empty.data(), empty.size(), 42);  // must not fault
}

TEST(Monitor, PerRankTallies) {
  integrity::Monitor mon(3);
  mon.noteVerified(0);
  mon.noteVerified(2);
  mon.noteVerified(2);
  mon.noteFailed(1);
  mon.noteHealed(1);
  EXPECT_EQ(mon.verified(0), 1);
  EXPECT_EQ(mon.verified(2), 2);
  EXPECT_EQ(mon.failed(1), 1);
  EXPECT_EQ(mon.verifiedTotal(), 3);
  EXPECT_EQ(mon.failedTotal(), 1);
  EXPECT_EQ(mon.healedTotal(), 1);
}

// ---------------------------------------------------------------------------
// Injector: the corruption kinds

TEST(CorruptInject, NamesRoundTrip) {
  for (int k = 1; k < fault::kNumFaultKinds; ++k) {
    const auto kind = static_cast<fault::FaultKind>(k);
    EXPECT_EQ(fault::faultKindFromName(fault::faultKindName(kind)), kind);
  }
  EXPECT_EQ(fault::faultKindFromName("bitrot"), fault::FaultKind::kNone);
  EXPECT_EQ(fault::faultKindFromName(nullptr), fault::FaultKind::kNone);
}

TEST(CorruptInject, DefaultRatesPreserveLegacySchedules) {
  // The corruption bands sit AFTER the legacy bands in the [0,1)
  // partition, so raising corruption rates from their 0 default may
  // add faults to previously-quiet slots but must never change a slot
  // where a legacy kind already fired.
  fault::InjectorOptions legacy;
  legacy.seed = 7;
  fault::InjectorOptions raised = legacy;
  raised.corrupt_payload_rate = 0.2;
  raised.corrupt_checkpoint_rate = 0.2;
  raised.truncate_spill_rate = 0.2;
  const fault::Injector a(2, legacy), b(2, raised);
  int corrupt_fired = 0;
  for (int rank = 0; rank < 2; ++rank)
    for (std::uint64_t op = 0; op < 4000; ++op)
      for (const fault::OpClass cls : {fault::OpClass::kSend, fault::OpClass::kRecv}) {
        const fault::FaultKind ka = a.decide(rank, op, cls);
        const fault::FaultKind kb = b.decide(rank, op, cls);
        if (ka != fault::FaultKind::kNone) {
          EXPECT_EQ(ka, kb);
        }
        // The legacy injector never emits a corruption kind.
        EXPECT_LT(static_cast<int>(ka),
                  static_cast<int>(fault::FaultKind::kCorruptPayload));
        if (kb >= fault::FaultKind::kCorruptPayload) ++corrupt_fired;
      }
  EXPECT_GT(corrupt_fired, 0);
}

TEST(CorruptInject, OpClassDegradations) {
  fault::InjectorOptions fo;
  fo.seed = 13;
  fo.crash_rate = 0.1;
  fo.delay_rate = 0.1;
  fo.duplicate_rate = 0.1;
  fo.stall_rate = 0.1;
  fo.corrupt_payload_rate = 0.1;
  fo.corrupt_checkpoint_rate = 0.1;
  fo.truncate_spill_rate = 0.1;
  const fault::Injector inj(1, fo);
  int payload_on_send = 0, ckpt_corrupt = 0, ckpt_truncate = 0;
  for (std::uint64_t op = 0; op < 4000; ++op) {
    // A receive slot can neither duplicate nor corrupt-in-transit.
    const fault::FaultKind kr = inj.decide(0, op, fault::OpClass::kRecv);
    EXPECT_NE(kr, fault::FaultKind::kDuplicate);
    EXPECT_NE(kr, fault::FaultKind::kCorruptPayload);
    EXPECT_LT(static_cast<int>(kr), static_cast<int>(fault::FaultKind::kCorruptCheckpoint));
    // A checkpoint op admits only the storage-corruption kinds.
    const fault::FaultKind kc = inj.decide(0, op, fault::OpClass::kCheckpoint);
    EXPECT_TRUE(kc == fault::FaultKind::kNone ||
                kc == fault::FaultKind::kCorruptCheckpoint ||
                kc == fault::FaultKind::kTruncateSpill)
        << faultKindName(kc);
    if (kc == fault::FaultKind::kCorruptCheckpoint) ++ckpt_corrupt;
    if (kc == fault::FaultKind::kTruncateSpill) ++ckpt_truncate;
    // Wire corruption only arms on the sender.
    if (inj.decide(0, op, fault::OpClass::kSend) == fault::FaultKind::kCorruptPayload)
      ++payload_on_send;
  }
  EXPECT_GT(payload_on_send, 0);
  EXPECT_GT(ckpt_corrupt, 0);
  EXPECT_GT(ckpt_truncate, 0);
}

// ---------------------------------------------------------------------------
// Comm layer: checksummed framing

TEST(CommIntegrity, CleanTrafficVerifiesAndIsByteExact) {
  integrity::Monitor mon(2);
  par::Runtime::RunOptions opts;
  opts.integrity = &mon;
  std::atomic<bool> intact{false};
  par::Runtime::run(2, [&](par::Comm& comm) {
    if (comm.rank() == 0) {
      par::Bytes msg(300);
      for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::byte>(i & 0xFF);
      comm.send(1, 7, std::move(msg));
    } else {
      const par::Bytes got = comm.recv(0, 7);
      bool same = got.size() == 300;
      for (std::size_t i = 0; same && i < got.size(); ++i)
        same = got[i] == static_cast<std::byte>(i & 0xFF);
      intact = same;
    }
  }, nullptr, nullptr, nullptr, &opts);
  EXPECT_TRUE(intact);
  EXPECT_GE(mon.verifiedTotal(), 1);
  EXPECT_EQ(mon.failedTotal(), 0);
}

TEST(CommIntegrity, CorruptFrameDroppedInsideTryRecvDeadline) {
  integrity::Monitor mon(2);
  par::Runtime::RunOptions opts;
  opts.integrity = &mon;
  // A one-bit transit flip on every outgoing frame: the checksum
  // already covers these bytes, so the receiver must detect and drop.
  opts.transit_fault = [](par::Bytes& b) {
    if (!b.empty()) b[0] = b[0] ^ std::byte{0x01};
  };
  std::atomic<bool> timed_out{false};
  par::Runtime::run(2, [&](par::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, par::Bytes(64, std::byte{0x2A}));
    } else {
      const auto got = comm.tryRecv(0, 7, {0.3, 0.2, 2.0});
      timed_out = !got.has_value();
    }
  }, nullptr, nullptr, nullptr, &opts);
  EXPECT_TRUE(timed_out) << "corrupt frame must be dropped, not delivered";
  EXPECT_EQ(mon.failedTotal(), 1);
  EXPECT_EQ(mon.verifiedTotal(), 0);
}

TEST(CommIntegrity, CorruptFrameOnBlockingRecvThrowsStructured) {
  // A plain recv has no deadline loop to re-ask under, so detection
  // must surface as a structured IntegrityError — never a hang.
  integrity::Monitor mon(2);
  par::Runtime::RunOptions opts;
  opts.integrity = &mon;
  opts.transit_fault = [](par::Bytes& b) {
    if (!b.empty()) b[0] = b[0] ^ std::byte{0x01};
  };
  EXPECT_THROW(
      par::Runtime::run(2, [&](par::Comm& comm) {
        if (comm.rank() == 0)
          comm.send(1, 7, par::Bytes(64, std::byte{0x2A}));
        else
          comm.recv(0, 7);
      }, nullptr, nullptr, nullptr, &opts),
      integrity::IntegrityError);
  EXPECT_EQ(mon.failedTotal(), 1);
}

TEST(CommIntegrity, WithoutMonitorCorruptionFlowsThroughSilently) {
  // The SDC baseline: the same transit flip with checksummed framing
  // OFF delivers garbage as if it were data. This is the documented
  // threat, and the proof that the detector (not luck) is load-bearing.
  par::Runtime::RunOptions opts;
  opts.transit_fault = [](par::Bytes& b) {
    if (!b.empty()) b[0] = b[0] ^ std::byte{0x01};
  };
  std::atomic<bool> delivered{false}, corrupted{false};
  par::Runtime::run(2, [&](par::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, par::Bytes(64, std::byte{0x2A}));
    } else {
      const par::Bytes got = comm.recv(0, 7);
      delivered = got.size() == 64;
      corrupted = !got.empty() && got[0] != std::byte{0x2A};
    }
  }, nullptr, nullptr, nullptr, &opts);
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(corrupted);
}

// ---------------------------------------------------------------------------
// Checkpoint store: detect, heal, and the unchecked baseline

fault::InjectorOptions onlyRate(double fault::InjectorOptions::* field, double rate) {
  fault::InjectorOptions fo;
  fo.seed = 5;
  fo.crash_rate = fo.delay_rate = fo.duplicate_rate = fo.stall_rate = 0.0;
  fo.*field = rate;
  return fo;
}

TEST(CheckpointIntegrity, RoundTripVerifies) {
  integrity::Monitor mon(1);
  fault::CheckpointStore store;
  store.configureIntegrity({true, nullptr, &mon, nullptr});
  const io::Bytes payload = patternBytes(500, 9);
  store.put(1, 4, payload);
  const auto got = store.get(1, 4);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_GE(mon.verifiedTotal(), 1);
  EXPECT_EQ(mon.failedTotal(), 0);
}

TEST(CheckpointIntegrity, DramFlipHealsFromDisk) {
  const std::string dir = freshDir("msc_int_ckpt_heal");
  fault::Injector inj(
      1, onlyRate(&fault::InjectorOptions::corrupt_checkpoint_rate, 1.0));
  integrity::Monitor mon(1);
  {
    fault::CheckpointStore store(dir);
    store.configureIntegrity({true, &inj, &mon, nullptr});
    const io::Bytes payload = patternBytes(500, 10);
    store.put(2, 3, payload);  // fires kCorruptCheckpoint: memory rots, spill good
    const auto got = store.get(2, 3);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload) << "healed bytes must be the original bytes";
    const auto st = store.stats();
    EXPECT_EQ(st.corrupt_detected, 1);
    EXPECT_EQ(st.healed_from_disk, 1);
    EXPECT_EQ(mon.failedTotal(), 1);
    EXPECT_EQ(mon.healedTotal(), 1);
    // The healed in-memory entry is good now: no second detection.
    const auto again = store.get(2, 3);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, payload);
    EXPECT_EQ(store.stats().corrupt_detected, 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointIntegrity, UnhealableCorruptionReadsAsMissing) {
  // No spill dir: the rotten in-memory copy is the only copy, so the
  // entry must vanish (nullopt, like a missing checkpoint) — the
  // caller's missing-checkpoint recovery doubles as the healing path.
  fault::Injector inj(
      1, onlyRate(&fault::InjectorOptions::corrupt_checkpoint_rate, 1.0));
  integrity::Monitor mon(1);
  fault::CheckpointStore store;
  store.configureIntegrity({true, &inj, &mon, nullptr});
  store.put(2, 3, patternBytes(500, 11));
  EXPECT_FALSE(store.get(2, 3).has_value());
  EXPECT_EQ(store.stats().corrupt_detected, 1);
  EXPECT_EQ(store.stats().healed_from_disk, 0);
  EXPECT_FALSE(store.get(2, 3).has_value());  // gone for good
  EXPECT_FALSE(store.contains(2, 3));
}

TEST(CheckpointIntegrity, TornSpillDetectedByFreshStore) {
  const std::string dir = freshDir("msc_int_ckpt_torn");
  const io::Bytes payload = patternBytes(500, 12);
  {
    fault::Injector inj(
        1, onlyRate(&fault::InjectorOptions::truncate_spill_rate, 1.0));
    fault::CheckpointStore store(dir);
    store.configureIntegrity({true, &inj, nullptr, nullptr});
    store.put(1, 0, payload);  // fires kTruncateSpill: disk torn, memory good
    const auto got = store.get(1, 0);
    ASSERT_TRUE(got.has_value());  // in-memory copy is unaffected
    EXPECT_EQ(*got, payload);
  }
  // The cross-process restart: a fresh store sees only the torn spill
  // and must report it missing, never return short bytes.
  integrity::Monitor mon(1);
  fault::CheckpointStore restarted(dir);
  restarted.configureIntegrity({true, nullptr, &mon, nullptr});
  EXPECT_FALSE(restarted.get(1, 0).has_value());
  EXPECT_EQ(restarted.stats().corrupt_detected, 1);
  EXPECT_EQ(mon.failedTotal(), 1);

  // Baseline: a checksum-less store trusts the torn file and returns
  // truncated garbage as if it were the checkpoint.
  fault::CheckpointStore unchecked(dir);
  const auto garbage = unchecked.get(1, 0);
  ASSERT_TRUE(garbage.has_value());
  EXPECT_NE(*garbage, payload);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointIntegrity, DramFlipUndetectedWithoutChecksums) {
  // Detector self-check, inverted: the same injected flip with
  // checksums off is served back as valid data.
  fault::Injector inj(
      1, onlyRate(&fault::InjectorOptions::corrupt_checkpoint_rate, 1.0));
  fault::CheckpointStore store;
  store.configureIntegrity({false, &inj, nullptr, nullptr});
  const io::Bytes payload = patternBytes(500, 13);
  store.put(2, 3, payload);
  const auto got = store.get(2, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(*got, payload);
  EXPECT_EQ(store.stats().corrupt_detected, 0);
}

// ---------------------------------------------------------------------------
// Pipeline: zero-delta when clean, byte-identical recovery when not

pipeline::PipelineConfig matrixBase() {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{8, 8, 8}};
  cfg.source.field = synth::noise(11);
  cfg.nblocks = 4;
  cfg.nranks = 2;
  cfg.plan = MergePlan::fullMerge(4);
  return cfg;
}

TEST(PipelineIntegrity, ChecksummedCleanRunIsByteIdentical) {
  const pipeline::ThreadedResult off = pipeline::runThreadedPipeline(matrixBase());
  pipeline::PipelineConfig cfg = matrixBase();
  cfg.integrity = true;
  const pipeline::ThreadedResult on = pipeline::runThreadedPipeline(cfg);
  EXPECT_EQ(on.outputs, off.outputs);
  EXPECT_GT(on.integrity.frames_verified, 0);
  EXPECT_EQ(on.integrity.frames_dropped, 0);
  EXPECT_EQ(on.integrity.heals, 0);
}

struct MatrixTally {
  int runs = 0;
  int matched = 0;
  int lost = 0;  ///< degrade-mode total loss (structured, not silent)
  std::int64_t fired = 0;
  std::int64_t dropped = 0;
  std::int64_t heals = 0;
};

/// Run `seeds` x {respawn, degrade} with `proto`'s fault mix; every
/// surviving run must reproduce the fault-free bytes exactly.
MatrixTally runCorruptionMatrix(const fault::InjectorOptions& proto,
                                fault::FaultKind kind, int seeds,
                                const std::string& dir_stem) {
  const pipeline::ThreadedResult golden = pipeline::runThreadedPipeline(matrixBase());
  MatrixTally t;
  for (const fault::RecoveryMode mode :
       {fault::RecoveryMode::kRespawn, fault::RecoveryMode::kDegrade}) {
    for (int s = 1; s <= seeds; ++s) {
      fault::InjectorOptions fo = proto;
      fo.seed = static_cast<std::uint64_t>(s);
      fault::Injector inj(matrixBase().nranks, fo);
      pipeline::PipelineConfig cfg = matrixBase();
      cfg.integrity = true;
      cfg.fault.injector = &inj;
      cfg.fault.recovery = mode;
      cfg.fault.recv_deadline_seconds = 0.5;
      cfg.fault.max_round_attempts = 32;
      cfg.fault.max_respawns_per_rank = fo.max_crashes_per_rank;
      const std::string dir =
          freshDir(dir_stem + "_" + std::to_string(s) + "_" +
                   fault::recoveryModeName(mode));
      cfg.fault.checkpoint_dir = dir;
      ++t.runs;
      try {
        const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
        EXPECT_EQ(r.outputs, golden.outputs)
            << "seed " << s << " " << fault::recoveryModeName(mode)
            << ": recovered bytes diverge from the fault-free run";
        if (r.outputs == golden.outputs) ++t.matched;
        t.dropped += r.integrity.frames_dropped;
        t.heals += r.integrity.heals;
      } catch (const fault::RecoveryError& e) {
        // Degrade mode may lose every rank — allowed, but only as a
        // structured total-loss error, never a hang or divergence.
        EXPECT_NE(std::string(e.what()).find("no live ranks"), std::string::npos)
            << e.what();
        ++t.lost;
      }
      t.fired += inj.fired(kind);
      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_EQ(t.matched + t.lost, t.runs);
  EXPECT_GT(t.fired, 0) << "matrix never injected " << fault::faultKindName(kind)
                        << " -- the sweep proved nothing";
  return t;
}

TEST(PipelineIntegrity, PayloadCorruptionMatrixRecoversByteIdentical) {
  fault::InjectorOptions fo;
  fo.crash_rate = fo.delay_rate = fo.duplicate_rate = fo.stall_rate = 0.0;
  fo.corrupt_payload_rate = 0.08;
  const MatrixTally t = runCorruptionMatrix(fo, fault::FaultKind::kCorruptPayload, 30,
                                            "msc_int_matrix_payload");
  EXPECT_EQ(t.lost, 0);  // no crashes in the mix
  EXPECT_GT(t.dropped, 0) << "no corrupt frame was ever detected";
  EXPECT_GT(t.heals, 0) << "no corrupt frame was ever healed by re-request";
}

TEST(PipelineIntegrity, CheckpointCorruptionMatrixRecoversByteIdentical) {
  // Crashes force restores, so the rotten checkpoint entries are
  // actually read back (and healed from disk) during recovery.
  fault::InjectorOptions fo;
  fo.delay_rate = fo.duplicate_rate = fo.stall_rate = 0.0;
  fo.crash_rate = 0.05;
  fo.corrupt_checkpoint_rate = 0.1;
  runCorruptionMatrix(fo, fault::FaultKind::kCorruptCheckpoint, 30,
                      "msc_int_matrix_ckpt");
}

TEST(PipelineIntegrity, TruncatedSpillMatrixRecoversByteIdentical) {
  fault::InjectorOptions fo;
  fo.delay_rate = fo.duplicate_rate = fo.stall_rate = 0.0;
  fo.crash_rate = 0.05;
  fo.truncate_spill_rate = 0.1;
  runCorruptionMatrix(fo, fault::FaultKind::kTruncateSpill, 30,
                      "msc_int_matrix_spill");
}

}  // namespace
}  // namespace msc
