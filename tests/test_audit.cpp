/// Seeded-defect tests for the protocol auditor (src/audit): each
/// classic par-runtime bug — cyclic receives, mismatched collectives,
/// reserved-tag abuse, leaked mailbox messages, cross-rank frees — is
/// planted deliberately and must be *diagnosed* (structured
/// AuditError, quickly) rather than hang the run. A final property
/// test checks the auditor is an observer: audited and unaudited
/// pipeline runs produce byte-identical outputs on fuzz seeds.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>

#include "audit/audit.hpp"
#include "check/fuzz.hpp"
#include "par/comm.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc {
namespace {

using audit::AuditError;
using Code = AuditError::Code;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

audit::Auditor::Options fastOptions() {
  audit::Auditor::Options o;
  // Backstop only; the structural detectors must fire long before.
  o.block_timeout_seconds = 5.0;
  return o;
}

/// Runs fn under an auditor, expecting an AuditError. Returns the
/// error and asserts it surfaced within `budget` seconds.
AuditError expectAuditError(int nranks, const std::function<void(par::Comm&)>& fn,
                            audit::Auditor& auditor, double budget = 2.0) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    par::Runtime::run(nranks, fn, nullptr, &auditor);
  } catch (const AuditError& e) {
    EXPECT_LT(secondsSince(t0), budget) << "detection was not fast";
    return e;
  }
  ADD_FAILURE() << "expected an AuditError, run completed cleanly";
  return AuditError(Code::kAborted, "missing", "");
}

TEST(Audit, CyclicRecvDeadlockDiagnosedNotHung) {
  // Ranks 0 and 1 each wait for the other to speak first.
  audit::Auditor auditor(2, fastOptions());
  const AuditError e = expectAuditError(
      2, [](par::Comm& c) { (void)c.recv(1 - c.rank(), /*tag=*/7); }, auditor);
  // The detecting rank throws kDeadlock; the peer unwinds with
  // kAborted carrying the same summary. Either may win the race to be
  // the run's primary error.
  EXPECT_TRUE(e.code() == Code::kDeadlock || e.code() == Code::kAborted)
      << audit::auditCodeName(e.code());
  EXPECT_NE(e.summary().find("deadlock"), std::string::npos) << e.summary();
  if (e.code() == Code::kDeadlock) {
    // Structured state: both ranks listed as blocked receives.
    EXPECT_NE(e.diagnostic().find("rank 0"), std::string::npos);
    EXPECT_NE(e.diagnostic().find("rank 1"), std::string::npos);
    EXPECT_NE(e.diagnostic().find("BLOCKED"), std::string::npos) << e.diagnostic();
  }
}

TEST(Audit, BarrierVsGatherMismatchDiagnosed) {
  // Rank 0 thinks the protocol says "gather at 0"; ranks 1 and 2
  // think it says "barrier". Nobody can proceed: 0 waits on 1's
  // contribution, 1 and 2 wait on 0 at the barrier.
  audit::Auditor auditor(3, fastOptions());
  const AuditError e = expectAuditError(
      3,
      [](par::Comm& c) {
        if (c.rank() == 0) {
          (void)c.gather(0, par::Bytes(8));
        } else {
          c.barrier();
        }
      },
      auditor);
  EXPECT_TRUE(e.code() == Code::kDeadlock || e.code() == Code::kAborted)
      << audit::auditCodeName(e.code());
  EXPECT_NE(e.summary().find("deadlock"), std::string::npos) << e.summary();
  if (e.code() == Code::kDeadlock) {
    EXPECT_NE(e.diagnostic().find("barrier"), std::string::npos) << e.diagnostic();
  }
}

TEST(Audit, MisorderedCollectivesDiagnosedAsEpochMismatch) {
  // Rank 0 runs broadcast-then-gather, ranks 1 and 2 run
  // gather-then-broadcast. The piggybacked epoch exposes the
  // disagreement at the first cross-order receive.
  audit::Auditor auditor(3, fastOptions());
  const AuditError e = expectAuditError(
      3,
      [](par::Comm& c) {
        if (c.rank() == 0) {
          (void)c.broadcast(0, par::Bytes(4));
          (void)c.gather(0, par::Bytes(4));
        } else {
          (void)c.gather(0, par::Bytes(4));
          (void)c.broadcast(0, par::Bytes(4));
        }
      },
      auditor);
  EXPECT_TRUE(e.code() == Code::kEpochMismatch || e.code() == Code::kAborted)
      << audit::auditCodeName(e.code());
  EXPECT_NE(e.summary().find("epoch"), std::string::npos) << e.summary();
}

TEST(Audit, ReservedTagSendAndRecvThrow) {
  // Unconditional (no auditor needed): user tags must be >= 0.
  EXPECT_THROW(
      par::Runtime::run(1, [](par::Comm& c) { c.send(0, -3, par::Bytes(1)); }),
      std::invalid_argument);
  EXPECT_THROW(
      par::Runtime::run(1, [](par::Comm& c) { (void)c.recv(0, par::kTagGather); }),
      std::invalid_argument);
  try {
    par::Runtime::run(1, [](par::Comm& c) { c.send(0, par::kTagBcast, par::Bytes(1)); });
    FAIL() << "reserved-tag send must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("reserved"), std::string::npos) << e.what();
  }
}

TEST(Audit, MessageLeftInMailboxFailsTheRun) {
  // Rank 0 sends; rank 1 forgets to receive. Unaudited this is silent
  // message loss; audited it fails finalize() with the mailbox dump.
  audit::Auditor auditor(2, fastOptions());
  const auto t0 = std::chrono::steady_clock::now();
  try {
    par::Runtime::run(
        2,
        [](par::Comm& c) {
          if (c.rank() == 0) c.sendValue<int>(1, /*tag=*/3, 42);
        },
        nullptr, &auditor);
    FAIL() << "expected kMailboxLeak";
  } catch (const AuditError& e) {
    EXPECT_LT(secondsSince(t0), 2.0);
    EXPECT_EQ(e.code(), Code::kMailboxLeak) << audit::auditCodeName(e.code());
    EXPECT_NE(e.summary().find("mailbox leak"), std::string::npos) << e.summary();
    // The diagnostic names the stuck message (dst rank 1, tag 3).
    EXPECT_NE(e.diagnostic().find("tag=3"), std::string::npos) << e.diagnostic();
  }
}

TEST(Audit, CrossRankFreeFailsTheRun) {
  // A buffer allocated on rank 0 escapes through shared memory and is
  // freed on rank 1 — exactly the aliasing the transmit path exists
  // to prevent. Barriers order the handoff so the defect is
  // deterministic.
  audit::Auditor auditor(2, fastOptions());
  std::optional<par::Bytes> escaped;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    par::Runtime::run(
        2,
        [&escaped](par::Comm& c) {
          if (c.rank() == 0) escaped.emplace(1024);
          c.barrier();
          if (c.rank() == 1) escaped.reset();
          c.barrier();
        },
        nullptr, &auditor);
    FAIL() << "expected kOwnership";
  } catch (const AuditError& e) {
    EXPECT_LT(secondsSince(t0), 2.0);
    EXPECT_EQ(e.code(), Code::kOwnership) << audit::auditCodeName(e.code());
    EXPECT_NE(e.summary().find("allocated on rank 0"), std::string::npos) << e.summary();
    EXPECT_NE(e.summary().find("freed on rank 1"), std::string::npos) << e.summary();
  }
}

TEST(Audit, CleanRunCountsWildcardCandidates) {
  // Two sources race into one wildcard receive: legal, but flagged as
  // a nondeterminism candidate for the report.
  audit::Auditor auditor(3, fastOptions());
  par::Runtime::run(
      3,
      [](par::Comm& c) {
        if (c.rank() != 0) c.sendValue<int>(0, /*tag=*/5, c.rank());
        c.barrier();  // both messages are queued before rank 0 receives
        if (c.rank() == 0) {
          (void)c.recv(par::kAny, 5);
          (void)c.recv(par::kAny, 5);
        }
      },
      nullptr, &auditor);
  EXPECT_FALSE(auditor.failed());
  EXPECT_GE(auditor.wildcardCandidates(), 1);
  EXPECT_GE(auditor.messagesAudited(), 2);
  EXPECT_NE(auditor.report().find("wildcard"), std::string::npos);
}

TEST(Audit, AuditedPipelineIsByteIdenticalToUnaudited) {
  // The auditor must be a pure observer: piggybacked trailers,
  // per-source gather and ownership tagging may not change a single
  // output byte. Differential check over deterministic fuzz cases.
  for (unsigned seed : {1u, 7u, 13u, 21u, 34u}) {
    const check::FuzzCase c = check::caseFromSeed(seed);
    pipeline::PipelineConfig cfg;
    cfg.domain = Domain{c.vdims};
    cfg.source.field = check::fieldFor(c);
    cfg.nblocks = c.nblocks;
    cfg.nranks = c.nranks;
    cfg.persistence_threshold = c.threshold;
    cfg.plan = MergePlan::fullMerge(c.nblocks);

    const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(cfg);

    audit::Auditor auditor(c.nranks);
    cfg.auditor = &auditor;
    const pipeline::ThreadedResult audited = pipeline::runThreadedPipeline(cfg);

    EXPECT_FALSE(auditor.failed()) << c.describe();
    EXPECT_EQ(plain.node_counts, audited.node_counts) << c.describe();
    EXPECT_EQ(plain.arc_count, audited.arc_count) << c.describe();
    ASSERT_EQ(plain.outputs.size(), audited.outputs.size()) << c.describe();
    for (std::size_t i = 0; i < plain.outputs.size(); ++i)
      EXPECT_EQ(plain.outputs[i], audited.outputs[i])
          << c.describe() << " output block " << i;
    if (c.nranks > 1) {
      EXPECT_GT(auditor.messagesAudited(), 0) << c.describe();
    }
  }
}

}  // namespace
}  // namespace msc
