/// Robustness and degenerate-input tests: minimal domains, extreme
/// anisotropy, constant fields (everything tied), truncated inputs.
#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "io/pack.hpp"
#include "oracle.hpp"
#include "pipeline/sim_pipeline.hpp"

namespace msc {
namespace {

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

TEST(Robustness, MinimalDomain) {
  // The smallest legal domain: 2x2x2 vertices = a single voxel.
  const Domain d{{2, 2, 2}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(1));
  for (const auto& g : {computeGradientSweep(bf), computeGradientLowerStar(bf)}) {
    test::expectValidGradient(g);
    const MsComplex c = traceComplex(g, bf);
    const auto n = c.liveNodeCounts();
    EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
  }
}

TEST(Robustness, ExtremeAnisotropy) {
  for (const Vec3i dims : {Vec3i{65, 2, 2}, Vec3i{2, 65, 2}, Vec3i{3, 3, 65}}) {
    const Domain d{dims};
    const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(2));
    const GradientField g = computeGradientLowerStar(bf);
    test::expectValidGradient(g);
    const MsComplex c = traceComplex(g, bf);
    c.checkInvariants();
  }
}

TEST(Robustness, ConstantFieldIsFullyTied) {
  // Every sample equal: the entire order comes from simulation of
  // simplicity. Must still produce a valid gradient with chi = 1 and
  // (after zero-persistence simplification) very few survivors.
  const Domain d{{11, 11, 11}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), [](Vec3i) { return 4.2f; });
  for (const auto& g : {computeGradientSweep(bf), computeGradientLowerStar(bf)}) {
    test::expectValidGradient(g);
    MsComplex c = traceComplex(g, bf);
    SimplifyOptions opts;
    opts.persistence_threshold = 0.0f;  // all pairs here are 0-persistence
    simplify(c, opts);
    const auto n = c.liveNodeCounts();
    EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
  }
}

TEST(Robustness, ConstantFieldBlockedMergeIsConsistent) {
  const Domain d{{9, 9, 9}};
  const auto field = [](Vec3i) { return 1.0f; };
  const auto blocks = decompose(d, 8);
  MsComplex root;
  std::vector<MsComplex> others;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockField bf = synth::sample(blocks[i], field);
    MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
    if (i == 0)
      root = std::move(c);
    else
      others.push_back(std::move(c));
  }
  mergeComplexes(root, std::move(others), 0.0f);
  root.checkInvariants();
  const auto n = root.liveNodeCounts();
  EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
}

TEST(Robustness, TruncatedPackBufferRejectedOrSafe) {
  const Domain d{{8, 8, 8}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(3));
  MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
  const io::Bytes full = io::pack(c);
  // A buffer cut before the node table must throw (magic passes,
  // counts don't): the Reader asserts in debug; in release we accept
  // either throw or death, so only test the hard mismatch cases that
  // are validated explicitly.
  io::Bytes wrong_magic = full;
  wrong_magic[0] = std::byte{0xFF};
  EXPECT_THROW(io::unpack(wrong_magic), std::runtime_error);
}

TEST(Robustness, DecomposeLimits) {
  EXPECT_THROW(decompose(Domain{{4, 4, 4}}, -1), std::invalid_argument);
  EXPECT_THROW(decompose(Domain{{2, 2, 2}}, 2), std::invalid_argument);
  // 5 vertices split into 3+3, and each 3 into 2+2 -- but the
  // 2-vertex leaves cannot split any further.
  EXPECT_NO_THROW(decompose(Domain{{5, 2, 2}}, 4));
  EXPECT_THROW(decompose(Domain{{5, 2, 2}}, 8), std::invalid_argument);
}

TEST(Robustness, SimPipelineSingleRankSingleBlock) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{9, 9, 9}};
  cfg.source.field = synth::noise(5);
  cfg.nblocks = 1;
  cfg.nranks = 1;
  cfg.persistence_threshold = 0.1f;
  cfg.plan = MergePlan::partial({});
  const pipeline::SimResult r = runSimPipeline(cfg);
  EXPECT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.node_counts[0] - r.node_counts[1] + r.node_counts[2] - r.node_counts[3], 1);
}

TEST(Robustness, MergePlanLargerThanBlocks) {
  // A full-merge plan for 64 applied to 8 blocks must still converge
  // to one output (later rounds see a single survivor).
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{9, 9, 9}};
  cfg.source.field = synth::noise(6);
  cfg.nblocks = 8;
  cfg.nranks = 4;
  cfg.persistence_threshold = 0.1f;
  cfg.plan = MergePlan::fullMerge(64);
  const pipeline::SimResult r = runSimPipeline(cfg);
  EXPECT_EQ(r.outputs.size(), 1u);
}

TEST(Robustness, NegativeValuesAndLargeMagnitudes) {
  const Domain d{{9, 9, 9}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), [](Vec3i p) {
    return static_cast<float>((p.x - 4) * 1e6 - (p.y - 4) * 3e5 + p.z * 7e4);
  });
  const GradientField g = computeGradientLowerStar(bf);
  test::expectValidGradient(g);
  MsComplex c = traceComplex(g, bf);
  SimplifyOptions opts;
  opts.persistence_threshold = 1e9f;
  opts.max_new_arcs_per_cancellation = 0;
  simplify(c, opts);
  EXPECT_EQ(c.liveNodeCounts()[0], 1);  // monotone-ish: one minimum
}

TEST(Robustness, RepeatedCompactIsIdempotent) {
  const Domain d{{9, 9, 9}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(8));
  MsComplex c = traceComplex(computeGradientLowerStar(bf), bf);
  SimplifyOptions opts;
  opts.persistence_threshold = 0.3f;
  simplify(c, opts);
  c.compact();
  const io::Bytes once = io::pack(c);
  c.compact();
  c.compact();
  EXPECT_EQ(io::pack(c), once);
  c.checkInvariants();
}

}  // namespace
}  // namespace msc
