/// Tests for msc::causal: vector-clock laws, wire trailer framing,
/// runtime happens-before (recv dominates send, barrier exits
/// dominate every enter, collective order consistent with the
/// auditor's Lamport epochs), the observer property (causal tracking
/// on/off is byte-identical), journal serialization, flow-event
/// pairing in Chrome traces, and the critical-path analyzer's tiling
/// guarantee on live and synthesized journals.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "audit/audit.hpp"
#include "causal/causal.hpp"
#include "causal/critpath.hpp"
#include "obs/chrome_trace.hpp"
#include "par/comm.hpp"
#include "pipeline/sim_pipeline.hpp"
#include "pipeline/threaded_pipeline.hpp"

namespace msc {
namespace {

using causal::Order;
using causal::VectorClock;

TEST(VectorClock, TickIsMonotoneAndOrdersSuccessors) {
  VectorClock a(3);
  const VectorClock before = a;
  a.tick(1);
  EXPECT_EQ(a[1], 1);
  EXPECT_TRUE(before.happensBefore(a));
  EXPECT_EQ(a.compare(before), Order::kAfter);
  EXPECT_EQ(a.compare(a), Order::kEqual);
}

TEST(VectorClock, MergeIsIdempotentCommutativeAndNeverDecreases) {
  VectorClock a(4), b(4);
  a.tick(0);
  a.tick(0);
  a.tick(2);
  b.tick(1);
  b.tick(3);

  VectorClock ab = a;
  ab.merge(b);
  VectorClock ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative

  VectorClock twice = ab;
  twice.merge(b);
  EXPECT_EQ(twice, ab);  // idempotent

  for (int r = 0; r < 4; ++r) {  // monotone: never below either input
    EXPECT_GE(ab[r], a[r]);
    EXPECT_GE(ab[r], b[r]);
  }
  EXPECT_TRUE(a.happensBefore(ab) || a == ab);
}

TEST(VectorClock, ConcurrentOpsAreIncomparable) {
  VectorClock a(2), b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_EQ(a.compare(b), Order::kConcurrent);
  EXPECT_EQ(b.compare(a), Order::kConcurrent);
  EXPECT_FALSE(a.happensBefore(b));
  EXPECT_FALSE(b.happensBefore(a));
  EXPECT_EQ(a.toString(), "[1 0]");
}

TEST(CausalWire, TrailerRoundTripsAndValidates) {
  causal::WireStamp stamp;
  stamp.msg_id = 42;
  stamp.clock = {3, 0, 7};
  par::Bytes payload(13, std::byte{0x5A});
  const par::Bytes original = payload;
  causal::appendTrailer(payload, stamp);
  EXPECT_GT(payload.size(), original.size());

  const causal::WireStamp back = causal::stripTrailer(payload);
  EXPECT_EQ(payload, original);
  EXPECT_EQ(back.msg_id, 42u);
  EXPECT_EQ(back.clock, stamp.clock);

  par::Bytes garbage(5, std::byte{0x00});
  EXPECT_THROW(causal::stripTrailer(garbage), std::runtime_error);
}

TEST(CausalRuntime, RecvClockDominatesSend) {
  causal::Recorder rec(2);
  par::Runtime::run(
      2,
      [](par::Comm& c) {
        if (c.rank() == 0) c.send(1, 7, par::Bytes(16));
        else (void)c.recv(0, 7);
      },
      nullptr, nullptr, &rec);

  const auto sends = rec.events(0);
  const auto recvs = rec.events(1);
  const auto is_send = [](const causal::Event& e) {
    return e.kind == causal::EventKind::kSend;
  };
  const auto is_recv = [](const causal::Event& e) {
    return e.kind == causal::EventKind::kRecv;
  };
  const auto s = std::find_if(sends.begin(), sends.end(), is_send);
  const auto r = std::find_if(recvs.begin(), recvs.end(), is_recv);
  ASSERT_NE(s, sends.end());
  ASSERT_NE(r, recvs.end());
  EXPECT_EQ(s->msg_id, r->msg_id);  // one flow id per message

  VectorClock sc(2), rc(2);
  sc.merge(s->vc.data(), s->vc.size());
  rc.merge(r->vc.data(), r->vc.size());
  EXPECT_TRUE(sc.happensBefore(rc));
  // The receiver's live clock absorbed the sender's component.
  EXPECT_GE(rec.clock(1)[0], s->vc[0]);
}

TEST(CausalRuntime, BarrierExitDominatesEveryEnter) {
  constexpr int kRanks = 4;
  causal::Recorder rec(kRanks);
  par::Runtime::run(
      kRanks,
      [](par::Comm& c) {
        if (c.rank() == 0) c.send(1, 1, par::Bytes(8));
        if (c.rank() == 1) (void)c.recv(0, 1);
        c.barrier();
      },
      nullptr, nullptr, &rec);

  std::vector<causal::Event> enters, exits;
  for (int r = 0; r < kRanks; ++r)
    for (const causal::Event& e : rec.events(r)) {
      if (e.kind == causal::EventKind::kBarrierEnter) enters.push_back(e);
      if (e.kind == causal::EventKind::kBarrierExit) exits.push_back(e);
    }
  ASSERT_EQ(enters.size(), static_cast<std::size_t>(kRanks));
  ASSERT_EQ(exits.size(), static_cast<std::size_t>(kRanks));
  for (const causal::Event& x : exits) {
    VectorClock xc(kRanks);
    xc.merge(x.vc.data(), x.vc.size());
    for (const causal::Event& n : enters) {
      VectorClock nc(kRanks);
      nc.merge(n.vc.data(), n.vc.size());
      // Every enter happens-before (or is the exiting rank's own
      // entry component of) every exit.
      EXPECT_NE(nc.compare(xc), Order::kConcurrent);
      EXPECT_NE(nc.compare(xc), Order::kAfter);
    }
  }
}

TEST(CausalRuntime, CollectiveOrderConsistentWithAuditEpochs) {
  // The journal's happens-before must agree with the auditor's
  // Lamport collective epochs: a collective entry that causally
  // precedes another never carries a larger epoch.
  constexpr int kRanks = 3;
  audit::Auditor auditor(kRanks);
  causal::Recorder rec(kRanks);
  par::Runtime::run(
      kRanks,
      [](par::Comm& c) {
        (void)c.gather(0, par::Bytes(4));
        (void)c.broadcast(0, c.rank() == 0 ? par::Bytes(4) : par::Bytes());
        c.barrier();
        (void)c.gather(1, par::Bytes(4));
      },
      nullptr, &auditor, &rec);
  EXPECT_FALSE(auditor.failed());

  std::vector<causal::Event> colls;
  for (int r = 0; r < kRanks; ++r)
    for (const causal::Event& e : rec.events(r))
      if (e.kind == causal::EventKind::kCollective) colls.push_back(e);
  ASSERT_GE(colls.size(), static_cast<std::size_t>(3 * kRanks));
  for (const causal::Event& a : colls) {
    ASSERT_GE(a.gen, 0) << "audited collectives must carry the Lamport epoch";
    VectorClock ac(kRanks);
    ac.merge(a.vc.data(), a.vc.size());
    for (const causal::Event& b : colls) {
      VectorClock bc(kRanks);
      bc.merge(b.vc.data(), b.vc.size());
      if (ac.happensBefore(bc)) {
        EXPECT_LE(a.gen, b.gen);
      }
    }
  }
}

TEST(Causal, RecordedPipelineIsByteIdenticalToPlain) {
  // The recorder must be a pure observer, exactly like the tracer and
  // the auditor: trailers on, trailers off -- same output bytes.
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 8;
  cfg.nranks = 4;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(8);

  const pipeline::ThreadedResult plain = pipeline::runThreadedPipeline(cfg);

  causal::Recorder rec(cfg.nranks);
  cfg.causal = &rec;
  const pipeline::ThreadedResult recorded = pipeline::runThreadedPipeline(cfg);

  EXPECT_EQ(plain.node_counts, recorded.node_counts);
  EXPECT_EQ(plain.arc_count, recorded.arc_count);
  ASSERT_EQ(plain.outputs.size(), recorded.outputs.size());
  for (std::size_t i = 0; i < plain.outputs.size(); ++i)
    EXPECT_EQ(plain.outputs[i], recorded.outputs[i]) << "output block " << i;
  EXPECT_FALSE(rec.journal().events.empty());
}

TEST(Causal, UndersizedRecorderIsRejectedUpFront) {
  // A recorder sized below the run would drop ranks from the journal
  // silently; config validation refuses the shape instead.
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{9, 9, 9}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 4;
  cfg.nranks = 4;
  cfg.plan = MergePlan::fullMerge(4);

  causal::Recorder rec(2);
  cfg.causal = &rec;
  EXPECT_THROW(pipeline::runThreadedPipeline(cfg), std::invalid_argument);
  EXPECT_THROW(pipeline::runSimPipeline(cfg), std::invalid_argument);
}

TEST(Causal, JournalSerializationRoundTrips) {
  causal::Recorder rec(2);
  par::Runtime::run(
      2,
      [](par::Comm& c) {
        if (c.rank() == 0) c.send(1, 3, par::Bytes(32));
        else (void)c.recv(0, 3);
        c.barrier();
      },
      nullptr, nullptr, &rec);
  const causal::Journal j = rec.journal();

  std::stringstream ss;
  causal::writeJournal(j, ss);
  const causal::Journal back = causal::readJournal(ss);
  ASSERT_EQ(back.nranks, j.nranks);
  ASSERT_EQ(back.events.size(), j.events.size());
  for (std::size_t i = 0; i < j.events.size(); ++i) {
    EXPECT_EQ(back.events[i].kind, j.events[i].kind);
    EXPECT_EQ(back.events[i].rank, j.events[i].rank);
    EXPECT_EQ(back.events[i].peer, j.events[i].peer);
    EXPECT_EQ(back.events[i].tag, j.events[i].tag);
    EXPECT_EQ(back.events[i].msg_id, j.events[i].msg_id);
    EXPECT_EQ(back.events[i].vc, j.events[i].vc);
    EXPECT_DOUBLE_EQ(back.events[i].ts, j.events[i].ts);
  }
  // Same analysis either side of the round trip.
  const causal::CriticalPath p0 = causal::analyzeCriticalPath(j);
  const causal::CriticalPath p1 = causal::analyzeCriticalPath(back);
  EXPECT_DOUBLE_EQ(p0.path_seconds, p1.path_seconds);
  EXPECT_EQ(p0.segments.size(), p1.segments.size());

  std::stringstream bad("not a journal");
  EXPECT_THROW(causal::readJournal(bad), std::runtime_error);
}

TEST(Causal, CriticalPathTilesWallTimeOnThreadedRun) {
  // The acceptance bar: stage attribution sums to within 5% of the
  // measured wall time on an 8-rank threaded run.
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 16;
  cfg.nranks = 8;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(16);
  causal::Recorder rec(cfg.nranks);
  cfg.causal = &rec;
  (void)pipeline::runThreadedPipeline(cfg);

  const causal::CriticalPath p = causal::analyzeCriticalPath(rec.journal());
  ASSERT_GT(p.wall_seconds, 0.0);
  EXPECT_NEAR(p.path_seconds, p.wall_seconds, 0.05 * p.wall_seconds);
  double cat_sum = 0;
  for (const double s : p.by_category) cat_sum += s;
  EXPECT_NEAR(cat_sum, p.path_seconds, 1e-9);
  double round_sum = 0;
  for (const auto& [round, s] : p.by_round) round_sum += s;
  EXPECT_NEAR(round_sum, p.path_seconds, 1e-9);
  // Segments are chronological and contiguous (the tiling property).
  for (std::size_t i = 0; i < p.segments.size(); ++i) {
    EXPECT_LE(p.segments[i].t0, p.segments[i].t1);
    if (i) {
      EXPECT_NEAR(p.segments[i - 1].t1, p.segments[i].t0, 1e-9);
    }
  }
  EXPECT_FALSE(causal::blameTable(p).empty());
  EXPECT_NE(causal::critPathJson(p).find("\"path_seconds\""), std::string::npos);

  EXPECT_THROW(causal::analyzeCriticalPath(causal::Journal{}), std::invalid_argument);
}

TEST(Causal, SimulatedJournalYieldsCriticalPath) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 16;
  cfg.nranks = 16;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(16);
  causal::Recorder::Options opts;
  opts.journal_clocks = false;  // wide-run mode: no per-event clocks
  causal::Recorder rec(cfg.nranks, opts);
  cfg.causal = &rec;
  const pipeline::SimResult r = pipeline::runSimPipeline(cfg);

  const causal::CriticalPath p = causal::analyzeCriticalPath(rec.journal());
  // Synthesized journals are exact: the path tiles the model's
  // end-to-end time.
  EXPECT_NEAR(p.path_seconds, r.times.total(), 0.05 * r.times.total());
  EXPECT_GT(p.by_category[static_cast<int>(causal::PathCategory::kRead)], 0.0);
}

TEST(Causal, FlowEventsPairUpInChromeTrace) {
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 4;
  cfg.nranks = 2;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(4);
  obs::Tracer tracer(cfg.nranks);
  causal::Recorder rec(cfg.nranks);
  cfg.tracer = &tracer;
  cfg.causal = &rec;
  (void)pipeline::runThreadedPipeline(cfg);

  const std::string json = obs::chromeTraceJson(tracer);
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  const std::size_t starts = count("\"ph\":\"s\"");
  const std::size_t finishes = count("\"ph\":\"f\"");
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
  EXPECT_EQ(finishes, count("\"bp\":\"e\""));
}

TEST(Causal, RecoveryLifecycleAppearsAsTraceInstants) {
  // The recovering driver narrates round transactions into the trace:
  // attempt begins, vote outcomes and commits show up as instant
  // events (category "fault") so chaos runs are debuggable in
  // Perfetto. A fault-free recovering run must still mark every round.
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{17, 17, 17}};
  cfg.source.field = synth::cosineProduct(cfg.domain, 2);
  cfg.nblocks = 4;
  cfg.nranks = 2;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(4);
  cfg.fault.recovery = fault::RecoveryMode::kRespawn;
  obs::Tracer tracer(cfg.nranks);
  causal::Recorder rec(cfg.nranks);
  cfg.tracer = &tracer;
  cfg.causal = &rec;
  (void)pipeline::runThreadedPipeline(cfg);

  const std::string json = obs::chromeTraceJson(tracer);
  for (const char* marker : {"attempt_begin", "vote_commit", "round_commit"})
    EXPECT_NE(json.find(marker), std::string::npos) << marker;
  // The journal saw the commits too.
  bool committed = false;
  for (const causal::Event& e : rec.events(0))
    committed |= e.kind == causal::EventKind::kRoundCommit;
  EXPECT_TRUE(committed);
}

TEST(Causal, AuditErrorCarriesCausalContext) {
  // With both an auditor and a recorder attached, a protocol failure
  // report embeds the per-rank vector clocks and recent journal tail.
  audit::Auditor::Options aopts;
  aopts.block_timeout_seconds = 5.0;
  audit::Auditor auditor(2, aopts);
  causal::Recorder rec(2);
  try {
    par::Runtime::run(
        2, [](par::Comm& c) { (void)c.recv(1 - c.rank(), 9); }, nullptr, &auditor, &rec);
    FAIL() << "expected an AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_NE(e.diagnostic().find("causal context"), std::string::npos)
        << e.diagnostic();
    EXPECT_NE(e.diagnostic().find("vector clock ["), std::string::npos)
        << e.diagnostic();
  }
}

TEST(Causal, ContextReportNamesStageAndClock) {
  causal::Recorder rec(2);
  rec.setStage(0, causal::Stage::kMerge, 3);
  const std::string report = causal::fullContextReport(rec);
  EXPECT_NE(report.find("rank 0"), std::string::npos) << report;
  EXPECT_NE(report.find("merge"), std::string::npos) << report;
}

}  // namespace
}  // namespace msc
