/// Tests for scalar fields and the simulation-of-simplicity total
/// order (core/field).
#include <gtest/gtest.h>

#include "core/field.hpp"
#include "core/gradient.hpp"
#include "decomp/decompose.hpp"
#include "synth/fields.hpp"

namespace msc {
namespace {

Block wholeDomainBlock(const Domain& d) {
  Block b;
  b.domain = d;
  b.vdims = d.vdims;
  b.voffset = {0, 0, 0};
  return b;
}

TEST(Field, CellValueIsMaxOfVertices) {
  const Domain d{{3, 3, 3}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::ramp());
  // Edge from (0,0,0) to (1,0,0): refined (1,0,0); ramp = x + 2y + 4z.
  EXPECT_EQ(bf.cellValue({1, 0, 0}), 1.0f);
  // Voxel spanning (0..1)^3: refined (1,1,1); max vertex is (1,1,1).
  EXPECT_EQ(bf.cellValue({1, 1, 1}), 7.0f);
  // Quad in the y-z plane at x=2 (refined (4,1,1)).
  EXPECT_EQ(bf.cellValue({4, 1, 1}), 2.0f + 2.0f + 4.0f);
}

TEST(Field, CellKeySortedDescending) {
  const Domain d{{4, 4, 4}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(3));
  const CellKey k = bf.cellKey({1, 1, 1});
  ASSERT_EQ(k.n, 8);
  for (int i = 1; i < k.n; ++i) {
    const bool descending = k.value[i] < k.value[i - 1] ||
                            (k.value[i] == k.value[i - 1] && k.vert[i] < k.vert[i - 1]);
    EXPECT_TRUE(descending) << "entry " << i;
  }
}

TEST(Field, KeyFirstEntryIsCellValue) {
  const Domain d{{5, 5, 5}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(8));
  const Vec3i r = bf.block().rdims();
  for (std::int64_t z = 0; z < r.z; z += 2)
    for (std::int64_t y = 0; y < r.y; y += 3)
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        EXPECT_EQ(bf.cellKey(rc).value[0], bf.cellValue(rc));
      }
}

TEST(Field, OrderIsStrictAndTotal) {
  // On a *constant* field, distinct same-dimension cells must still
  // order strictly (by vertex ids): simulation of simplicity.
  const Domain d{{4, 4, 4}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), [](Vec3i) { return 1.0f; });
  const Vec3i r = bf.block().rdims();
  std::vector<Vec3i> edges;
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x)
        if (Domain::cellDim({x, y, z}) == 1) edges.push_back({x, y, z});
  for (std::size_t i = 0; i < edges.size(); i += 5) {
    for (std::size_t j = 0; j < edges.size(); j += 7) {
      const bool lt = bf.cellLess(edges[i], edges[j]);
      const bool gt = bf.cellLess(edges[j], edges[i]);
      if (i == j) {
        EXPECT_FALSE(lt);
        EXPECT_FALSE(gt);
      } else {
        EXPECT_NE(lt, gt) << "cells " << edges[i] << " vs " << edges[j];
      }
    }
  }
}

TEST(Field, OrderIsTransitiveOnSamples) {
  const Domain d{{5, 5, 5}};
  const BlockField bf = synth::sample(wholeDomainBlock(d), synth::noise(13));
  const Vec3i r = bf.block().rdims();
  std::vector<Vec3i> cells;
  for (std::int64_t z = 0; z < r.z; z += 2)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x)
        if (Domain::cellDim({x, y, z}) == 2) cells.push_back({x, y, z});
  // Sorting with the comparator must produce a consistent order
  // (std::sort aborts/corrupts on non-strict-weak-orders; verify the
  // result is totally ordered).
  std::sort(cells.begin(), cells.end(),
            [&](Vec3i a, Vec3i b) { return bf.cellLess(a, b); });
  for (std::size_t i = 1; i < cells.size(); ++i)
    EXPECT_TRUE(bf.cellLess(cells[i - 1], cells[i]));
}

TEST(Field, FaceKeyIsBlockIndependent) {
  // The SoS key of a cell on a shared face must be identical when
  // computed from either adjacent block (global ids + values only).
  const Domain d{{9, 9, 9}};
  const auto field = synth::noise(4);
  const auto blocks = decompose(d, 2);
  const BlockField a = synth::sample(blocks[0], field);
  const BlockField b = synth::sample(blocks[1], field);
  // Shared plane: global refined x = 8; local refined x = 8 in block
  // 0 and 0 in block 1.
  for (std::int64_t z = 0; z < 17; z += 2) {
    for (std::int64_t y = 0; y < 17; ++y) {
      const CellKey ka = a.cellKey({8, y, z});
      const CellKey kb = b.cellKey({0, y, z});
      EXPECT_EQ(ka, kb) << "face cell y=" << y << " z=" << z;
    }
  }
}

TEST(Field, DirectionCodeRoundTrip) {
  const Vec3i c{4, 4, 4};
  for (int axis = 0; axis < 3; ++axis) {
    for (int sgn = -1; sgn <= 1; sgn += 2) {
      Vec3i n = c;
      n[axis] += sgn;
      const std::uint8_t code = directionCode(c, n);
      EXPECT_LE(code, kPairPosZ);
      Vec3i back = c;
      back[code / 2] += (code % 2) ? 1 : -1;
      EXPECT_EQ(back, n);
    }
  }
}

TEST(Field, SampleBlockUsesGlobalCoordinates) {
  const Domain d{{9, 9, 9}};
  const auto blocks = decompose(d, 8);
  const Block& blk = blocks.back();  // a corner block with offsets
  const BlockField bf = synth::sample(blk, synth::ramp());
  EXPECT_EQ(bf.vertexValue({0, 0, 0}),
            static_cast<float>(blk.voffset.x + 2 * blk.voffset.y + 4 * blk.voffset.z));
}

}  // namespace
}  // namespace msc
