/// Property-based sweeps: the core invariants checked over a grid of
/// random fields, sizes, block counts and algorithms.
#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "core/trace.hpp"
#include "decomp/decompose.hpp"
#include "io/pack.hpp"
#include "oracle.hpp"

namespace msc {
namespace {

struct PropCase {
  unsigned seed;
  int size;
  int nblocks;
  bool sweep;
};

std::string propName(const testing::TestParamInfo<PropCase>& info) {
  const PropCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.size) + "_b" +
         std::to_string(c.nblocks) + (c.sweep ? "_sweep" : "_lstar");
}

class RandomFieldProperties : public testing::TestWithParam<PropCase> {};

TEST_P(RandomFieldProperties, AllInvariantsHold) {
  const PropCase pc = GetParam();
  const Domain d{{pc.size, pc.size, pc.size}};
  const auto field = synth::noise(pc.seed);
  const auto blocks = decompose(d, pc.nblocks);

  std::vector<MsComplex> complexes;
  std::int64_t boundary_nodes = 0;
  for (const Block& blk : blocks) {
    const BlockField bf = synth::sample(blk, field);
    const GradientField g =
        pc.sweep ? computeGradientSweep(bf) : computeGradientLowerStar(bf);

    // Invariant 1: valid acyclic gradient with chi = 1.
    test::expectValidGradient(g);

    // Invariant 2: the traced complex is structurally sound and its
    // node census equals the gradient's critical census.
    MsComplex c = traceComplex(g, bf);
    c.checkInvariants();
    EXPECT_EQ(c.liveNodeCounts(), g.criticalCounts());

    // Invariant 3: pack/unpack is the identity on living structure.
    const io::Bytes bytes = io::pack(c);
    const MsComplex r = io::unpack(bytes);
    EXPECT_EQ(r.liveNodeCounts(), c.liveNodeCounts());
    EXPECT_EQ(r.liveArcCount(), c.liveArcCount());
    EXPECT_EQ(io::pack(r), bytes);  // idempotent serialization

    for (const Node& nd : c.nodes())
      if (nd.alive && nd.boundary) ++boundary_nodes;
    complexes.push_back(std::move(c));
  }
  if (pc.nblocks > 1) EXPECT_GT(boundary_nodes, 0);

  // Invariant 4: the fully merged complex has chi = 1, no boundary
  // nodes, no duplicate addresses, and is structurally sound.
  MsComplex root = std::move(complexes[0]);
  std::vector<MsComplex> others(std::make_move_iterator(complexes.begin() + 1),
                                std::make_move_iterator(complexes.end()));
  mergeComplexes(root, std::move(others), 0.1f);
  root.checkInvariants();
  const auto n = root.liveNodeCounts();
  EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
  std::unordered_map<CellAddr, int> seen;
  for (const Node& nd : root.nodes()) {
    if (!nd.alive) continue;
    EXPECT_FALSE(nd.boundary);
    EXPECT_EQ(seen[nd.addr]++, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomFieldProperties,
    testing::Values(PropCase{1, 8, 2, false}, PropCase{2, 8, 4, false},
                    PropCase{3, 9, 8, false}, PropCase{4, 10, 2, true},
                    PropCase{5, 10, 4, true}, PropCase{6, 9, 8, true},
                    PropCase{7, 11, 16, false}, PropCase{8, 12, 8, false},
                    PropCase{9, 11, 16, true}, PropCase{10, 12, 1, false},
                    PropCase{11, 12, 1, true}, PropCase{12, 13, 32, false}),
    propName);

/// Simplification keeps chi and the persistence bound at every step,
/// for any threshold, on random data.
class SimplifyProperties : public testing::TestWithParam<std::pair<unsigned, int>> {};

TEST_P(SimplifyProperties, MonotoneThresholdNesting) {
  const auto [seed, size] = GetParam();
  const Domain d{{size, size, size}};
  Block whole;
  whole.domain = d;
  whole.vdims = d.vdims;
  whole.voffset = {0, 0, 0};
  const BlockField bf = synth::sample(whole, synth::noise(seed));
  const GradientField g = computeGradientLowerStar(bf);

  // Increasing thresholds produce nested (non-increasing) censuses.
  std::int64_t prev_nodes = std::numeric_limits<std::int64_t>::max();
  for (const float t : {0.0f, 0.1f, 0.3f, 0.6f, 1.0f}) {
    MsComplex c = traceComplex(g, bf);
    SimplifyOptions opts;
    opts.persistence_threshold = t;
    simplify(c, opts);
    c.checkInvariants();
    const auto n = c.liveNodeCounts();
    EXPECT_EQ(n[0] - n[1] + n[2] - n[3], 1);
    const std::int64_t total = n[0] + n[1] + n[2] + n[3];
    EXPECT_LE(total, prev_nodes) << "threshold " << t;
    prev_nodes = total;
    for (const Cancellation& cc : c.cancellations()) EXPECT_LE(cc.persistence, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperties,
                         testing::Values(std::pair{21u, 9}, std::pair{22u, 10},
                                         std::pair{23u, 11}, std::pair{24u, 12}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.first) + "_n" +
                                  std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace msc
