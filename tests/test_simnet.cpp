/// Tests for the performance models (simnet): torus geometry,
/// message costs, I/O model, and timeline reconstruction.
#include <gtest/gtest.h>

#include "simnet/timeline.hpp"

namespace msc::simnet {
namespace {

TEST(Torus, FitIsExactFactorization) {
  for (const int p : {1, 2, 4, 8, 32, 512, 2048, 8192, 32768, 100, 96}) {
    const Torus t = Torus::fit(p);
    EXPECT_EQ(t.size(), p) << "P=" << p;
  }
}

TEST(Torus, FitIsNearCubic) {
  const Torus t = Torus::fit(4096);
  EXPECT_EQ(t.dims(), (Vec3i{16, 16, 16}));
  const Torus t2 = Torus::fit(8);
  EXPECT_EQ(t2.dims(), (Vec3i{2, 2, 2}));
}

TEST(Torus, HopsAreSymmetricAndWrap) {
  const Torus t = Torus::fit(64);  // 4x4x4
  EXPECT_EQ(t.hops(0, 0), 0);
  for (int a = 0; a < 64; a += 7)
    for (int b = 0; b < 64; b += 5) EXPECT_EQ(t.hops(a, b), t.hops(b, a));
  // Wrap-around: coordinate distance 3 on a ring of 4 is 1 hop.
  const Vec3i c0 = t.coordOf(0);
  ASSERT_EQ(c0, (Vec3i{0, 0, 0}));
  EXPECT_EQ(t.hops(0, 3), 1);  // (3,0,0) wraps to distance 1
}

TEST(Torus, MessageTimeMonotoneInBytes) {
  const TorusModel m(Torus::fit(64), {});
  EXPECT_LT(m.messageTime(1000, 0, 1), m.messageTime(100000, 0, 1));
  EXPECT_GT(m.messageTime(0, 0, 63), 0);  // latency + hops only
}

TEST(IoModel, SaturatesAtAggregateBandwidth) {
  IoParams p;
  p.open_s = 0;
  p.sync_per_level_s = 0;
  p.aggregate_bw_Bps = 1e9;
  p.per_proc_bw_Bps = 1e8;
  const IoModel io(p);
  const std::int64_t bytes = 1'000'000'000;
  // Below saturation: doubling P halves the time.
  EXPECT_NEAR(io.collectiveTime(bytes, 2) / io.collectiveTime(bytes, 4), 2.0, 1e-9);
  // At/after saturation (P >= 10): flat.
  EXPECT_NEAR(io.collectiveTime(bytes, 16), io.collectiveTime(bytes, 1024), 1e-9);
}

TEST(IoModel, SyncTermGrowsWithRanks) {
  IoParams p;
  p.aggregate_bw_Bps = 1e12;
  p.per_proc_bw_Bps = 1e12;
  const IoModel io(p);
  EXPECT_LT(io.collectiveTime(0, 2), io.collectiveTime(0, 4096));
}

TEST(Timeline, ComputeIsMaxOverRanks) {
  TimelineInputs in;
  in.nranks = 4;
  in.compute_per_rank = {1.0, 3.0, 2.0, 0.5};
  in.merge_prep_per_rank = {0.1, 0.2, 0.1, 0.1};
  const TorusModel net(Torus::fit(4), {});
  const IoModel io;
  CostScale scale;
  scale.cpu_scale = 2.0;
  const StageTimes t = reconstruct(in, net, io, scale);
  EXPECT_DOUBLE_EQ(t.compute, 6.0);      // max * cpu_scale
  EXPECT_DOUBLE_EQ(t.merge_prep, 0.4);
}

TEST(Timeline, MergeRoundIsMaxOverGroupsAndSerializesAtRoot) {
  TimelineInputs in;
  in.nranks = 4;
  in.compute_per_rank = {0, 0, 0, 0};
  NetworkParams np;
  np.latency_s = 1.0;
  np.per_hop_s = 0.0;
  np.bandwidth_Bps = 100.0;
  GroupRecord g1;
  g1.root_rank = 0;
  g1.sends = {{1, 100}, {2, 100}};  // 2 x 1s byte time, serialized
  g1.merge_seconds = 1.0;
  GroupRecord g2;
  g2.root_rank = 3;
  g2.sends = {{2, 50}};
  g2.merge_seconds = 0.1;
  in.rounds.push_back({g1, g2});
  const TorusModel net(Torus::fit(4), np);
  const IoModel io;
  CostScale scale;
  scale.cpu_scale = 1.0;
  const StageTimes t = reconstruct(in, net, io, scale);
  ASSERT_EQ(t.merge_rounds.size(), 1u);
  // g1: latency 1.0 (overlapped) + bytes 2*1.0 + merge 1.0 = 4.0
  // g2: 1.0 + 0.5 + 0.1 = 1.6; stage = max = 4.0
  EXPECT_DOUBLE_EQ(t.merge_rounds[0], 4.0);
  EXPECT_DOUBLE_EQ(t.mergeTotal(), 4.0);
}

TEST(Timeline, TotalIsSumOfStages) {
  TimelineInputs in;
  in.nranks = 2;
  in.input_bytes = 1'000'000;
  in.output_bytes = 10'000;
  in.compute_per_rank = {1.0, 2.0};
  in.merge_prep_per_rank = {0.5, 0.25};
  const TorusModel net(Torus::fit(2), {});
  const IoModel io;
  const CostScale scale{1.0};
  const StageTimes t = reconstruct(in, net, io, scale);
  EXPECT_DOUBLE_EQ(t.total(), t.read + t.compute + t.merge_prep + t.write);
}

}  // namespace
}  // namespace msc::simnet
