/// Quickstart: compute the Morse-Smale complex of a small analytic
/// field, simplify it, and walk the 1-skeleton -- the library's
/// five-minute tour (mirrors the pedagogy of the paper's Fig. 2).
///
/// Build & run:  ./quickstart
#include <cstdio>

#include "analysis/census.hpp"
#include "core/lower_star.hpp"
#include "core/simplify.hpp"
#include "core/trace.hpp"
#include "synth/fields.hpp"

using namespace msc;

int main() {
  // 1. A scalar field sampled on a 17^3 vertex grid: a sum of
  //    cosines with two periods per axis (8 minima, 1 interior
  //    maximum, saddles between them).
  const Domain domain{{17, 17, 17}};
  Block whole;
  whole.domain = domain;
  whole.vdims = domain.vdims;
  whole.voffset = {0, 0, 0};
  const BlockField field = synth::sample(whole, synth::cosineProduct(domain, 2));
  std::printf("grid: %lld x %lld x %lld vertices, %lld cells in the cubical complex\n",
              (long long)domain.vdims.x, (long long)domain.vdims.y,
              (long long)domain.vdims.z, (long long)domain.numCells());

  // 2. Discrete gradient field (one byte per cell; unpaired cells are
  //    critical).
  const GradientField grad = computeGradientLowerStar(field);
  const auto crit = grad.criticalCounts();
  std::printf("critical cells: %lld minima, %lld 1-saddles, %lld 2-saddles, %lld maxima\n",
              (long long)crit[0], (long long)crit[1], (long long)crit[2],
              (long long)crit[3]);

  // 3. The 1-skeleton: nodes at critical cells, arcs along V-paths.
  MsComplex complex = traceComplex(grad, field);
  std::printf("1-skeleton: %lld nodes, %lld arcs\n", (long long)complex.liveNodeCount(),
              (long long)complex.liveArcCount());

  // 4. Persistence simplification to 5% of the value range.
  SimplifyOptions opts;
  opts.persistence_threshold = 0.05f;
  const std::int64_t cancelled = simplify(complex, opts);
  std::printf("simplification: %lld cancellations at threshold %.2f\n",
              (long long)cancelled, opts.persistence_threshold);
  std::printf("census: ");
  const analysis::Census cs = analysis::census(complex);
  std::printf("%lld/%lld/%lld/%lld nodes, %lld arcs, chi=%lld\n",
              (long long)cs.nodes[0], (long long)cs.nodes[1], (long long)cs.nodes[2],
              (long long)cs.nodes[3], (long long)cs.arcs, (long long)cs.euler());

  // 5. Walk the complex: print each maximum and its descending arcs.
  for (NodeId n = 0; n < (NodeId)complex.nodes().size(); ++n) {
    const Node& nd = complex.node(n);
    if (!nd.alive || nd.index != 3) continue;
    const Vec3i at = domain.coordOf(nd.addr);
    std::printf("maximum at refined (%lld,%lld,%lld), value %.3f:\n", (long long)at.x,
                (long long)at.y, (long long)at.z, nd.value);
    complex.forEachArc(n, [&](ArcId a) {
      const Arc& ar = complex.arc(a);
      const Node& sad = complex.node(ar.lower);
      const Vec3i sc = domain.coordOf(sad.addr);
      std::printf("  -> 2-saddle at (%lld,%lld,%lld), value %.3f, persistence %.3f, "
                  "path %zu cells\n",
                  (long long)sc.x, (long long)sc.y, (long long)sc.z, sad.value,
                  complex.persistence(a), complex.flattenGeom(ar.geom).size());
      return true;
    });
  }
  return 0;
}
