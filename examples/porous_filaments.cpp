/// Porous-material filament extraction: the paper's Fig. 1 use case.
///
/// The MS complex of a (synthetic) distance-field-like scalar traces
/// three-dimensional ridge lines -- the filament structure of a
/// porous solid. This example computes the complex *in parallel*
/// (4 ranks over the message-passing runtime), merges it fully, then
/// runs the interactive-analysis queries of Fig. 1: sweep the
/// threshold, extract the 2-saddle--maximum arc network at each
/// value, and report graph statistics (length, components, cycles).
///
/// Build & run:  ./porous_filaments [side] [ranks]
#include <cstdio>
#include <cstdlib>

#include "analysis/census.hpp"
#include "analysis/graph.hpp"
#include "io/pack.hpp"
#include "pipeline/threaded_pipeline.hpp"

using namespace msc;

namespace {

/// A porous-material-like field: the smooth "distance" to an
/// interface carved by several interfering waves. Ridges of this
/// field form a connected filament network.
synth::Field porousField(const Domain& d) {
  const synth::Field base = synth::sinusoid(d, 5);
  const synth::Field mod = synth::sinusoid(d, 2);
  return [base, mod](Vec3i v) { return base(v) + 0.35f * mod(v); };
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 49;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{side, side, side}};
  cfg.source.field = porousField(cfg.domain);
  cfg.nblocks = 8;
  cfg.nranks = ranks;
  cfg.persistence_threshold = 0.08f;
  cfg.plan = MergePlan::fullMerge(cfg.nblocks);

  std::printf("computing the MS complex of a %d^3 porous field on %d ranks...\n", side,
              ranks);
  const pipeline::ThreadedResult r = runThreadedPipeline(cfg);
  const MsComplex complex = io::unpack(r.outputs.at(0));
  const analysis::Census cs = analysis::census(complex);
  std::printf("complex: %lld nodes (%lld maxima), %lld arcs; stages: read %.3fs "
              "compute %.3fs merge %.3fs\n",
              (long long)cs.totalNodes(), (long long)cs.nodes[3], (long long)cs.arcs,
              r.times.read, r.times.compute, r.times.mergeTotal());

  // The Fig. 1 parameter study: filament network vs threshold.
  std::printf("\n%10s %8s %8s %8s %10s %12s %12s\n", "threshold", "arcs", "comps",
              "cycles", "largest", "total_len", "longest");
  for (const float threshold : {-0.4f, -0.2f, 0.0f, 0.2f, 0.4f}) {
    analysis::FeatureFilter f;
    f.type = analysis::ArcType::kSaddleMax;
    f.value_min = threshold;
    const auto arcs = analysis::extractArcs(complex, f);
    const analysis::NetworkStats s = analysis::networkStats(complex, arcs);
    std::printf("%10.2f %8lld %8lld %8lld %10lld %12.1f %12.1f\n", threshold,
                (long long)s.edges, (long long)s.components, (long long)s.cycles(),
                (long long)s.largest_component, s.total_length, s.longest_arc);
  }
  std::printf("\nAs the threshold rises the network splits into separate filaments\n"
              "(components grow, cycles vanish) -- the stability study a scientist\n"
              "runs interactively on the precomputed complex.\n");
  return 0;
}
