/// Combustion analysis: finding dissipation-element cores (the
/// paper's JET use case, section VI-D1).
///
/// In the turbulent jet simulation, dissipation elements correlate
/// with flame extinction and are centred on *minima* of the mixture
/// fraction. This example computes the MS complex of a jet-like
/// mixture-fraction field through the parallel pipeline, then ranks
/// the surviving minima by depth (the persistence at which each
/// would cancel approximates its significance) and prints the
/// dissipation-element census a combustion scientist would start
/// from.
///
/// Build & run:  ./combustion_minima [ranks]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/census.hpp"
#include "io/pack.hpp"
#include "pipeline/threaded_pipeline.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // A scaled jet: the paper's 768x896x512 at 1/16 per side.
  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{49, 57, 33}};
  cfg.source.field = synth::jetLike(cfg.domain);
  cfg.nblocks = 8;
  cfg.nranks = ranks;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = MergePlan::fullMerge(cfg.nblocks);

  std::printf("JET-like mixture fraction, %lldx%lldx%lld, %d ranks, full merge %s\n",
              (long long)cfg.domain.vdims.x, (long long)cfg.domain.vdims.y,
              (long long)cfg.domain.vdims.z, ranks, cfg.plan.toString().c_str());
  const pipeline::ThreadedResult r = runThreadedPipeline(cfg);
  const MsComplex complex = io::unpack(r.outputs.at(0));
  const analysis::Census cs = analysis::census(complex);
  std::printf("complex: %lld minima / %lld 1-saddles / %lld 2-saddles / %lld maxima, "
              "%lld arcs\n\n",
              (long long)cs.nodes[0], (long long)cs.nodes[1], (long long)cs.nodes[2],
              (long long)cs.nodes[3], (long long)cs.arcs);

  // Rank minima by their shallowest saddle: the persistence at which
  // the minimum would merge into a neighbour.
  struct Minimum {
    Vec3i at;
    float value;
    float depth;
    int saddles;
  };
  std::vector<Minimum> minima;
  for (NodeId n = 0; n < (NodeId)complex.nodes().size(); ++n) {
    const Node& nd = complex.node(n);
    if (!nd.alive || nd.index != 0) continue;
    float shallowest = std::numeric_limits<float>::infinity();
    int saddles = 0;
    complex.forEachArc(n, [&](ArcId a) {
      shallowest = std::min(shallowest, complex.node(complex.arc(a).upper).value);
      ++saddles;
      return true;
    });
    const float depth = saddles ? shallowest - nd.value
                                : std::numeric_limits<float>::infinity();
    minima.push_back({complex.domain().coordOf(nd.addr), nd.value, depth, saddles});
  }
  std::sort(minima.begin(), minima.end(),
            [](const Minimum& a, const Minimum& b) { return a.depth > b.depth; });

  std::printf("dissipation-element cores (deepest first):\n");
  std::printf("%6s %22s %12s %10s %8s\n", "rank", "refined coords", "mixfrac", "depth",
              "saddles");
  const std::size_t top = std::min<std::size_t>(minima.size(), 12);
  for (std::size_t i = 0; i < top; ++i) {
    const Minimum& m = minima[i];
    if (std::isinf(m.depth)) continue;
    std::printf("%6zu (%6lld,%6lld,%6lld) %12.4f %10.4f %8d\n", i + 1, (long long)m.at.x,
                (long long)m.at.y, (long long)m.at.z, m.value, m.depth, m.saddles);
  }
  std::printf("\n%zu minima total; the paper's workflow simplifies further and tracks\n"
              "these cores across timesteps to detect extinction events.\n",
              minima.size());
  return 0;
}
