/// In-situ feature tracking: the paper's future-work scenario of
/// embedding the parallel MS computation inside a running simulation
/// (section VII-B, "generate parallel MS complexes in situ with
/// combustion simulations").
///
/// A mock time-dependent simulation advects two wells through the
/// domain. At every timestep the parallel pipeline runs *in situ*
/// (directly on the in-memory field, no file round-trip), and the
/// surviving minima are matched to the previous step's by proximity,
/// producing feature tracks -- the temporal analysis a scientist
/// would run on dissipation elements.
///
/// Build & run:  ./insitu_tracking [steps] [ranks]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "io/pack.hpp"
#include "pipeline/threaded_pipeline.hpp"

using namespace msc;

namespace {

/// The "simulation": two Gaussian wells orbiting the domain centre in
/// a smooth background.
synth::Field simulationStep(const Domain& d, int step) {
  const double t = 0.08 * step;
  const Vec3i dims = d.vdims;
  return [dims, t](Vec3i p) {
    const double x = 2.0 * p.x / (dims.x - 1) - 1;
    const double y = 2.0 * p.y / (dims.y - 1) - 1;
    const double z = 2.0 * p.z / (dims.z - 1) - 1;
    const double cx1 = 0.5 * std::cos(t), cy1 = 0.5 * std::sin(t);
    const double cx2 = -0.5 * std::cos(t), cy2 = -0.5 * std::sin(t);
    const double w1 =
        std::exp(-(((x - cx1) * (x - cx1)) + ((y - cy1) * (y - cy1)) + z * z) / 0.08);
    const double w2 =
        std::exp(-(((x - cx2) * (x - cx2)) + ((y - cy2) * (y - cy2)) + z * z) / 0.08);
    return static_cast<float>(0.2 * (x * x + y * y + z * z) - w1 - w2);
  };
}

struct Track {
  std::vector<Vec3i> positions;  // refined coordinates per step
  bool extended_this_step{false};
};

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const Domain domain{{33, 33, 33}};

  std::vector<Track> tracks;
  std::printf("in-situ MS analysis over %d timesteps (%d ranks, 8 blocks each)\n\n",
              steps, ranks);

  for (int step = 0; step < steps; ++step) {
    pipeline::PipelineConfig cfg;
    cfg.domain = domain;
    cfg.source.field = simulationStep(domain, step);
    cfg.nblocks = 8;
    cfg.nranks = ranks;
    cfg.persistence_threshold = 0.15f;
    cfg.plan = MergePlan::fullMerge(8);
    const pipeline::ThreadedResult r = runThreadedPipeline(cfg);
    const MsComplex c = io::unpack(r.outputs.at(0));

    // Collect this step's minima.
    std::vector<Vec3i> minima;
    for (const Node& nd : c.nodes())
      if (nd.alive && nd.index == 0) minima.push_back(domain.coordOf(nd.addr));

    // Greedy nearest-neighbour matching against open tracks.
    for (Track& tr : tracks) tr.extended_this_step = false;
    for (const Vec3i& m : minima) {
      Track* best = nullptr;
      std::int64_t best_d2 = 14 * 14;  // max jump: 7 grid cells
      for (Track& tr : tracks) {
        if (tr.extended_this_step) continue;
        if (std::ssize(tr.positions) != step) continue;  // track must be current
        const Vec3i d = tr.positions.back() - m;
        const std::int64_t d2 = d.x * d.x + d.y * d.y + d.z * d.z;
        if (d2 < best_d2) {
          best_d2 = d2;
          best = &tr;
        }
      }
      if (best) {
        best->positions.push_back(m);
        best->extended_this_step = true;
      } else {
        Track tr;
        tr.positions.assign(static_cast<std::size_t>(step), Vec3i{-1, -1, -1});
        tr.positions.push_back(m);
        tr.extended_this_step = true;
        tracks.push_back(std::move(tr));
      }
    }
    std::printf("step %2d: %zu minima, compute %.3fs merge %.3fs\n", step,
                minima.size(), r.times.compute, r.times.mergeTotal());
  }

  std::printf("\nfeature tracks (refined coordinates; -1 = not yet born):\n");
  int id = 0;
  for (const Track& tr : tracks) {
    std::printf("  track %d:", id++);
    for (const Vec3i& p : tr.positions) {
      if (p.x < 0)
        std::printf("      --    ");
      else
        std::printf(" (%2lld,%2lld,%2lld)", (long long)p.x, (long long)p.y, (long long)p.z);
    }
    std::printf("\n");
  }
  std::printf("\nThe two orbiting wells appear as two long tracks whose positions\n"
              "rotate; spurious shallow minima (if any) die young.\n");
  return 0;
}
