/// msc_compute: command-line driver for the full parallel pipeline.
///
/// Computes the Morse-Smale complex of a raw volume file (or a named
/// synthetic field), in parallel, with every knob of the paper's
/// algorithm exposed: block count, rank count, persistence threshold,
/// merge plan, gradient algorithm. Writes the section IV-G output
/// container and prints the analysis census.
///
/// Examples:
///   # synthetic smoke test
///   ./msc_compute --field=sinusoid --complexity=8 --dims=65,65,65 \
///                 --blocks=8 --ranks=4 --persistence=0.05 --out=out.msc
///   # a real volume (float32, x-fastest)
///   ./msc_compute --volume=density.raw --type=f32 --dims=256,256,256 \
///                 --blocks=64 --ranks=8 --persistence=0.01 \
///                 --radices=8,8 --out=density.msc
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/census.hpp"
#include "causal/causal.hpp"
#include "causal/critpath.hpp"
#include "io/pack.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/summary.hpp"
#include "pipeline/run_summary.hpp"
#include "pipeline/threaded_pipeline.hpp"
#include "prof/heartbeat.hpp"
#include "prof/prof.hpp"

#include <fstream>
#include <iostream>

using namespace msc;

namespace {

struct Options {
  std::string field = "sinusoid";
  std::string volume;
  std::string type = "f32";
  Vec3i dims{65, 65, 65};
  int complexity = 8;
  int blocks = 8;
  int ranks = 4;
  float persistence = 0.05f;
  std::vector<int> radices;  // empty = full merge
  bool no_merge = false;
  bool premerge = false;
  bool sharded = false;
  std::string algorithm = "lowerstar";
  std::string out;
  std::string trace_path;
  std::string journal_path;
  std::string metrics_path;
  std::string profile_path;
  double prof_hz = 997.0;
  int prof_top = 10;
  bool progress = false;
  double progress_period = 1.0;
  std::string progress_json_path;
  bool critpath = false;
  bool stats = false;
  bool summary = false;
  bool help = false;
};

std::vector<int> parseIntList(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p;) {
    out.push_back(std::atoi(p));
    const char* c = std::strchr(p, ',');
    if (!c) break;
    p = c + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto val = [&](const char* key) -> const char* {
      const std::string prefix = std::string("--") + key + "=";
      return a.rfind(prefix, 0) == 0 ? a.c_str() + prefix.size() : nullptr;
    };
    if (a == "--help" || a == "-h") o.help = true;
    else if (const char* v = val("field")) o.field = v;
    else if (const char* v = val("volume")) o.volume = v;
    else if (const char* v = val("type")) o.type = v;
    else if (const char* v = val("dims")) {
      const auto d = parseIntList(v);
      if (d.size() == 3) o.dims = {d[0], d[1], d[2]};
    } else if (const char* v = val("complexity")) o.complexity = std::atoi(v);
    else if (const char* v = val("blocks")) o.blocks = std::atoi(v);
    else if (const char* v = val("ranks")) o.ranks = std::atoi(v);
    else if (const char* v = val("persistence")) o.persistence = static_cast<float>(std::atof(v));
    else if (const char* v = val("radices")) o.radices = parseIntList(v);
    else if (a == "--no-merge") o.no_merge = true;
    else if (a == "--premerge") o.premerge = true;
    else if (a == "--sharded") o.sharded = true;
    else if (const char* v = val("algorithm")) o.algorithm = v;
    else if (const char* v = val("out")) o.out = v;
    else if (const char* v = val("trace")) o.trace_path = v;
    else if (const char* v = val("journal")) o.journal_path = v;
    else if (const char* v = val("metrics")) o.metrics_path = v;
    else if (const char* v = val("profile")) o.profile_path = v;
    else if (const char* v = val("prof-hz")) o.prof_hz = std::atof(v);
    else if (const char* v = val("prof-top")) o.prof_top = std::atoi(v);
    else if (a == "--progress") o.progress = true;
    else if (const char* v = val("progress")) {
      o.progress = true;
      o.progress_period = std::atof(v);
    } else if (const char* v = val("progress-json")) {
      o.progress = true;
      o.progress_json_path = v;
    }
    else if (a == "--critpath") o.critpath = true;
    else if (a == "--stats") o.stats = true;
    else if (a == "--summary") o.summary = true;
    else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

void usage() {
  std::puts(
      "msc_compute: parallel Morse-Smale complex of a 3D scalar field\n"
      "  --volume=FILE        raw input volume (x-fastest); else synthetic\n"
      "  --type=u8|f32|f64    sample type of --volume (default f32)\n"
      "  --dims=X,Y,Z         vertex dimensions (default 65,65,65)\n"
      "  --field=NAME         sinusoid|hydrogen|jet|rt|noise|ramp (default sinusoid)\n"
      "  --complexity=N       sinusoid feature count per side (default 8)\n"
      "  --blocks=N           decomposition block count (default 8)\n"
      "  --ranks=N            concurrent ranks (default 4)\n"
      "  --persistence=T      simplification threshold (default 0.05)\n"
      "  --radices=R1,R2,...  merge plan (default: full merge)\n"
      "  --no-merge           skip merging entirely (one output per block)\n"
      "  --premerge           pre-merge reduce complexes before shipping\n"
      "  --sharded            distribute the final merge round (skeleton\n"
      "                       replay + owner-partitioned geometry)\n"
      "  --algorithm=A        lowerstar|sweep (default lowerstar)\n"
      "  --out=FILE           write the block+footer output container\n"
      "  --trace=FILE         write a Chrome trace-event JSON of the run\n"
      "                       (open in Perfetto or chrome://tracing; with\n"
      "                       --journal/--critpath also attached, messages\n"
      "                       show as cross-rank flow arrows)\n"
      "  --journal=FILE       write the causal event journal (replay it\n"
      "                       with tools/msc_critpath)\n"
      "  --critpath           print the critical-path blame table\n"
      "  --stats              print the per-rank/per-stage summary table\n"
      "  --metrics=FILE       write a versioned JSON snapshot of the work and\n"
      "                       memory counters (see tools/msc_perfgate)\n"
      "  --summary            print the combined time x work x memory table\n"
      "  --profile=FILE       attach the sampling profiler and write the\n"
      "                       folded-stack output (flamegraph.pl syntax);\n"
      "                       a top-N hot-span table prints to stdout\n"
      "  --prof-hz=HZ         sampling rate (default 997)\n"
      "  --prof-top=N         rows of the hot-span table (default 10)\n"
      "  --progress[=SEC]     live heartbeat on stderr every SEC seconds\n"
      "                       (default 1): per-rank stage/round, ETA,\n"
      "                       peak memory and message-rate gauges\n"
      "  --progress-json=FILE machine-readable heartbeat JSON stream\n"
      "                       (one object per line; implies --progress)");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.help) {
    usage();
    return 0;
  }

  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{o.dims};
  if (!o.volume.empty()) {
    cfg.source.volume_path = o.volume;
    cfg.source.sample_type = o.type == "u8"    ? io::SampleType::kUint8
                             : o.type == "f64" ? io::SampleType::kFloat64
                                               : io::SampleType::kFloat32;
  } else if (o.field == "hydrogen") cfg.source.field = synth::hydrogenLike(cfg.domain);
  else if (o.field == "jet") cfg.source.field = synth::jetLike(cfg.domain);
  else if (o.field == "rt") cfg.source.field = synth::rtLike(cfg.domain);
  else if (o.field == "noise") cfg.source.field = synth::noise();
  else if (o.field == "ramp") cfg.source.field = synth::ramp();
  else cfg.source.field = synth::sinusoid(cfg.domain, o.complexity);

  cfg.nblocks = o.blocks;
  cfg.nranks = o.ranks;
  cfg.persistence_threshold = o.persistence;
  cfg.plan = o.no_merge          ? MergePlan::partial({})
             : o.radices.empty() ? MergePlan::fullMerge(o.blocks)
                                 : MergePlan::partial(o.radices);
  cfg.algorithm = o.algorithm == "sweep" ? pipeline::GradientAlgorithm::kSweep
                                         : pipeline::GradientAlgorithm::kLowerStar;
  cfg.premerge = o.premerge;
  cfg.sharded_final = o.sharded;
  cfg.output_path = o.out;

  // Probe --metrics writability up front: a 20-minute run that fails at
  // the very end because the snapshot directory is missing is the worst
  // possible failure mode. "a" creates without truncating.
  if (!o.metrics_path.empty()) {
    std::FILE* probe = std::fopen(o.metrics_path.c_str(), "a");
    if (!probe) {
      std::fprintf(stderr, "cannot write metrics file %s (missing or unwritable parent?)\n",
                   o.metrics_path.c_str());
      return 2;
    }
    std::fclose(probe);
  }

  const bool profiling = !o.profile_path.empty() || o.progress;
  std::unique_ptr<obs::Tracer> tracer;
  // Profiling forces a tracer: obs spans are what mirror the pipeline
  // stages onto the profiler's span stacks.
  if (!o.trace_path.empty() || o.stats || o.summary || profiling) {
    tracer = std::make_unique<obs::Tracer>(o.ranks);
    cfg.tracer = tracer.get();
  }
  std::unique_ptr<metrics::Registry> registry;
  // The heartbeat's memory/message-rate gauges come from the registry.
  if (!o.metrics_path.empty() || o.summary || o.progress) {
    registry = std::make_unique<metrics::Registry>(o.ranks);
    cfg.metrics = registry.get();
  }
  std::unique_ptr<prof::Profiler> profiler;
  if (profiling) {
    prof::ProfilerOptions popts;
    popts.hz = o.prof_hz;
    profiler = std::make_unique<prof::Profiler>(o.ranks, popts);
    cfg.profiler = profiler.get();
  }
  std::unique_ptr<causal::Recorder> recorder;
  if (!o.journal_path.empty() || o.critpath || !o.trace_path.empty()) {
    recorder = std::make_unique<causal::Recorder>(o.ranks);
    cfg.causal = recorder.get();
  }

  std::printf("msc_compute: %lld x %lld x %lld, %d blocks on %d ranks, plan %s, "
              "persistence %.4g, %s gradient\n",
              (long long)o.dims.x, (long long)o.dims.y, (long long)o.dims.z, o.blocks,
              o.ranks, cfg.plan.toString().c_str(), o.persistence, o.algorithm.c_str());

  std::ofstream progress_json;
  if (!o.progress_json_path.empty()) {
    progress_json.open(o.progress_json_path);
    if (!progress_json) {
      std::fprintf(stderr, "cannot write progress json file %s\n",
                   o.progress_json_path.c_str());
      return 2;
    }
  }
  std::unique_ptr<prof::Heartbeat> heartbeat;
  if (o.progress) {
    prof::HeartbeatOptions hopts;
    hopts.period_s = o.progress_period;
    hopts.text = &std::cerr;
    if (progress_json.is_open()) hopts.json = &progress_json;
    // Live span-latency digest: Tracer::events snapshots under the
    // rank lock, so reading mid-run is safe.
    hopts.extra = [&tracer]() {
      return "  hottest spans so far:\n" +
             obs::spanDurationTable(obs::spanDurationStats(*tracer), 5);
    };
    heartbeat = std::make_unique<prof::Heartbeat>(profiler.get(), registry.get(),
                                                  hopts);
  }

  if (profiler) profiler->startSampler();
  if (heartbeat) heartbeat->start();
  const pipeline::ThreadedResult r = pipeline::runThreadedPipeline(cfg);
  if (heartbeat) {
    heartbeat->stop();
    heartbeat->beat();  // one final beat so short runs report at least once
  }
  if (profiler) profiler->stopSampler();

  std::printf("\nstages: read %.3fs  compute %.3fs  merge %.3fs  write %.3fs\n",
              r.times.read, r.times.compute, r.times.mergeTotal(), r.times.write);
  std::printf("output: %zu block(s), %lld bytes%s%s\n", r.outputs.size(),
              (long long)r.output_bytes, o.out.empty() ? "" : " -> ",
              o.out.c_str());
  for (std::size_t i = 0; i < r.outputs.size(); ++i) {
    const MsComplex c = io::unpack(r.outputs[i]);
    const analysis::Census cs = analysis::census(c);
    std::printf("  block %zu: %lld min, %lld 1-sad, %lld 2-sad, %lld max, %lld arcs, "
                "chi %lld, values [%g, %g]\n",
                i, (long long)cs.nodes[0], (long long)cs.nodes[1], (long long)cs.nodes[2],
                (long long)cs.nodes[3], (long long)cs.arcs, (long long)cs.euler(),
                cs.min_value, cs.max_value);
  }

  if (tracer && o.stats) {
    std::printf("\n%s", obs::summaryText(*tracer).c_str());
  }
  if (profiler && !o.profile_path.empty()) {
    if (!profiler->writeFoldedFile(o.profile_path)) {
      std::fprintf(stderr, "failed to write profile file %s\n", o.profile_path.c_str());
      return 1;
    }
    std::printf("\n== sampling profile (%lld samples @ %.0f Hz) ==\n%s",
                static_cast<long long>(profiler->sampleCount()), o.prof_hz,
                profiler->topTable(o.prof_top).c_str());
    std::printf("profile: %s (fold with flamegraph.pl)\n", o.profile_path.c_str());
  }
  if (o.summary) {
    std::printf("\n%s", pipeline::runSummaryText(tracer.get(), registry.get()).c_str());
  }
  if (registry && !o.metrics_path.empty()) {
    if (!metrics::writeSnapshotFile(*registry, o.metrics_path)) {
      std::fprintf(stderr, "failed to write metrics file %s\n", o.metrics_path.c_str());
      return 1;
    }
    std::printf("metrics: %s\n", o.metrics_path.c_str());
  }
  if (tracer && !o.trace_path.empty()) {
    if (!obs::writeChromeTraceFile(*tracer, o.trace_path, "msc_compute")) {
      std::fprintf(stderr, "failed to write trace file %s\n", o.trace_path.c_str());
      return 1;
    }
    std::printf("\ntrace: %s (open at https://ui.perfetto.dev)\n", o.trace_path.c_str());
  }
  if (recorder) {
    const causal::Journal j = recorder->journal();
    if (!o.journal_path.empty()) {
      if (!causal::writeJournalFile(j, o.journal_path)) {
        std::fprintf(stderr, "failed to write journal file %s\n", o.journal_path.c_str());
        return 1;
      }
      std::printf("journal: %s (replay with msc_critpath)\n", o.journal_path.c_str());
    }
    if (o.critpath)
      std::printf("\n%s", causal::blameTable(causal::analyzeCriticalPath(j)).c_str());
  }
  return 0;
}
