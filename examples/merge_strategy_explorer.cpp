/// Merge-strategy explorer: an interactive-style CLI over the
/// simulated pipeline. Pick a process count, data size/complexity,
/// and a comma-separated radix plan; get the reconstructed stage
/// breakdown -- the tool a user runs to apply the paper's section
/// VI-C guidance to their own configuration.
///
/// Usage: ./merge_strategy_explorer [procs] [side] [complexity] [radices]
///   e.g. ./merge_strategy_explorer 256 49 8 4,8,8
///        ./merge_strategy_explorer 256 49 8          (auto full merge)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pipeline/sim_pipeline.hpp"

using namespace msc;

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 64;
  const int side = argc > 2 ? std::atoi(argv[2]) : 49;
  const int complexity = argc > 3 ? std::atoi(argv[3]) : 8;

  MergePlan plan = MergePlan::fullMerge(procs);
  if (argc > 4) {
    std::vector<int> radices;
    for (const char* p = argv[4]; *p;) {
      radices.push_back(std::atoi(p));
      const char* c = std::strchr(p, ',');
      if (!c) break;
      p = c + 1;
    }
    plan = MergePlan::partial(std::move(radices));
  }

  pipeline::PipelineConfig cfg;
  cfg.domain = Domain{{side, side, side}};
  cfg.source.field = synth::sinusoid(cfg.domain, complexity);
  cfg.nblocks = procs;
  cfg.nranks = procs;
  cfg.persistence_threshold = 0.05f;
  cfg.plan = plan;

  std::printf("configuration: %d processes, %d^3 sinusoid (complexity %d), plan %s\n",
              procs, side, complexity, plan.toString().c_str());
  std::printf("output blocks after merging: %d\n\n", plan.outputsFor(procs));

  const pipeline::SimResult r = runSimPipeline(cfg);
  std::printf("reconstructed stage breakdown (BG/P-model seconds):\n");
  std::printf("  read                 %10.4f\n", r.times.read);
  std::printf("  compute              %10.4f\n", r.times.compute);
  std::printf("  merge: local simplify+pack %4.4f\n", r.times.merge_prep);
  for (std::size_t i = 0; i < r.times.merge_rounds.size(); ++i)
    std::printf("  merge round %zu (radix %d) %8.4f\n", i + 1,
                plan.radices()[i], r.times.merge_rounds[i]);
  std::printf("  write                %10.4f\n", r.times.write);
  std::printf("  TOTAL                %10.4f\n\n", r.times.total());
  std::printf("output: %lld bytes, %lld nodes, %lld arcs\n",
              (long long)r.output_bytes,
              (long long)(r.node_counts[0] + r.node_counts[1] + r.node_counts[2] +
                          r.node_counts[3]),
              (long long)r.arc_count);
  std::printf("\nguideline (section VI-C): prefer radix 8; put unavoidable smaller\n"
              "radices in EARLY rounds -- later rounds handle bigger complexes.\n");
  return 0;
}
