
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/census.cpp" "src/CMakeFiles/msc.dir/analysis/census.cpp.o" "gcc" "src/CMakeFiles/msc.dir/analysis/census.cpp.o.d"
  "/root/repo/src/analysis/features.cpp" "src/CMakeFiles/msc.dir/analysis/features.cpp.o" "gcc" "src/CMakeFiles/msc.dir/analysis/features.cpp.o.d"
  "/root/repo/src/analysis/graph.cpp" "src/CMakeFiles/msc.dir/analysis/graph.cpp.o" "gcc" "src/CMakeFiles/msc.dir/analysis/graph.cpp.o.d"
  "/root/repo/src/analysis/segmentation.cpp" "src/CMakeFiles/msc.dir/analysis/segmentation.cpp.o" "gcc" "src/CMakeFiles/msc.dir/analysis/segmentation.cpp.o.d"
  "/root/repo/src/core/complex.cpp" "src/CMakeFiles/msc.dir/core/complex.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/complex.cpp.o.d"
  "/root/repo/src/core/gradient.cpp" "src/CMakeFiles/msc.dir/core/gradient.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/gradient.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "src/CMakeFiles/msc.dir/core/grid.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/grid.cpp.o.d"
  "/root/repo/src/core/lower_star.cpp" "src/CMakeFiles/msc.dir/core/lower_star.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/lower_star.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/CMakeFiles/msc.dir/core/merge.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/merge.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/CMakeFiles/msc.dir/core/region.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/region.cpp.o.d"
  "/root/repo/src/core/simplify.cpp" "src/CMakeFiles/msc.dir/core/simplify.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/simplify.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/msc.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/msc.dir/core/trace.cpp.o.d"
  "/root/repo/src/decomp/decompose.cpp" "src/CMakeFiles/msc.dir/decomp/decompose.cpp.o" "gcc" "src/CMakeFiles/msc.dir/decomp/decompose.cpp.o.d"
  "/root/repo/src/io/complex_file.cpp" "src/CMakeFiles/msc.dir/io/complex_file.cpp.o" "gcc" "src/CMakeFiles/msc.dir/io/complex_file.cpp.o.d"
  "/root/repo/src/io/pack.cpp" "src/CMakeFiles/msc.dir/io/pack.cpp.o" "gcc" "src/CMakeFiles/msc.dir/io/pack.cpp.o.d"
  "/root/repo/src/io/volume.cpp" "src/CMakeFiles/msc.dir/io/volume.cpp.o" "gcc" "src/CMakeFiles/msc.dir/io/volume.cpp.o.d"
  "/root/repo/src/merge/plan.cpp" "src/CMakeFiles/msc.dir/merge/plan.cpp.o" "gcc" "src/CMakeFiles/msc.dir/merge/plan.cpp.o.d"
  "/root/repo/src/par/comm.cpp" "src/CMakeFiles/msc.dir/par/comm.cpp.o" "gcc" "src/CMakeFiles/msc.dir/par/comm.cpp.o.d"
  "/root/repo/src/pipeline/config.cpp" "src/CMakeFiles/msc.dir/pipeline/config.cpp.o" "gcc" "src/CMakeFiles/msc.dir/pipeline/config.cpp.o.d"
  "/root/repo/src/pipeline/sim_pipeline.cpp" "src/CMakeFiles/msc.dir/pipeline/sim_pipeline.cpp.o" "gcc" "src/CMakeFiles/msc.dir/pipeline/sim_pipeline.cpp.o.d"
  "/root/repo/src/pipeline/threaded_pipeline.cpp" "src/CMakeFiles/msc.dir/pipeline/threaded_pipeline.cpp.o" "gcc" "src/CMakeFiles/msc.dir/pipeline/threaded_pipeline.cpp.o.d"
  "/root/repo/src/simnet/timeline.cpp" "src/CMakeFiles/msc.dir/simnet/timeline.cpp.o" "gcc" "src/CMakeFiles/msc.dir/simnet/timeline.cpp.o.d"
  "/root/repo/src/simnet/torus.cpp" "src/CMakeFiles/msc.dir/simnet/torus.cpp.o" "gcc" "src/CMakeFiles/msc.dir/simnet/torus.cpp.o.d"
  "/root/repo/src/synth/fields.cpp" "src/CMakeFiles/msc.dir/synth/fields.cpp.o" "gcc" "src/CMakeFiles/msc.dir/synth/fields.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
