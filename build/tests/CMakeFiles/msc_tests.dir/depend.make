# Empty dependencies file for msc_tests.
# This may be replaced when dependencies are built.
