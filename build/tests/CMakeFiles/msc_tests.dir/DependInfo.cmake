
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_2d.cpp" "tests/CMakeFiles/msc_tests.dir/test_2d.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_2d.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/msc_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_complex.cpp" "tests/CMakeFiles/msc_tests.dir/test_complex.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_complex.cpp.o.d"
  "/root/repo/tests/test_decomp.cpp" "tests/CMakeFiles/msc_tests.dir/test_decomp.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_decomp.cpp.o.d"
  "/root/repo/tests/test_field.cpp" "tests/CMakeFiles/msc_tests.dir/test_field.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_field.cpp.o.d"
  "/root/repo/tests/test_glue_preconditions.cpp" "tests/CMakeFiles/msc_tests.dir/test_glue_preconditions.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_glue_preconditions.cpp.o.d"
  "/root/repo/tests/test_gradient.cpp" "tests/CMakeFiles/msc_tests.dir/test_gradient.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_gradient.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/msc_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/msc_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/msc_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_merge.cpp" "tests/CMakeFiles/msc_tests.dir/test_merge.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_merge.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/msc_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_par.cpp" "tests/CMakeFiles/msc_tests.dir/test_par.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_par.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/msc_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/msc_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/msc_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/msc_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_segmentation.cpp" "tests/CMakeFiles/msc_tests.dir/test_segmentation.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_segmentation.cpp.o.d"
  "/root/repo/tests/test_simnet.cpp" "tests/CMakeFiles/msc_tests.dir/test_simnet.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_simnet.cpp.o.d"
  "/root/repo/tests/test_simplify.cpp" "tests/CMakeFiles/msc_tests.dir/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_simplify.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/msc_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/msc_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/msc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/msc_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
