file(REMOVE_RECURSE
  "../bench/table2_merge_strategy"
  "../bench/table2_merge_strategy.pdb"
  "CMakeFiles/table2_merge_strategy.dir/table2_merge_strategy.cpp.o"
  "CMakeFiles/table2_merge_strategy.dir/table2_merge_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_merge_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
