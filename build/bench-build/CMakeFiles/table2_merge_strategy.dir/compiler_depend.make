# Empty compiler generated dependencies file for table2_merge_strategy.
# This may be replaced when dependencies are built.
