# Empty dependencies file for fig10_rt_strong_scaling.
# This may be replaced when dependencies are built.
