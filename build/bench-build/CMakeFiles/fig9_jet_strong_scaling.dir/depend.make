# Empty dependencies file for fig9_jet_strong_scaling.
# This may be replaced when dependencies are built.
