# Empty dependencies file for table1_merge_rounds.
# This may be replaced when dependencies are built.
