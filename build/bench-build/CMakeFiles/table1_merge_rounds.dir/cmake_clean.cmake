file(REMOVE_RECURSE
  "../bench/table1_merge_rounds"
  "../bench/table1_merge_rounds.pdb"
  "CMakeFiles/table1_merge_rounds.dir/table1_merge_rounds.cpp.o"
  "CMakeFiles/table1_merge_rounds.dir/table1_merge_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_merge_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
