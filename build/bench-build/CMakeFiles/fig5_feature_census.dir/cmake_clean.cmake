file(REMOVE_RECURSE
  "../bench/fig5_feature_census"
  "../bench/fig5_feature_census.pdb"
  "CMakeFiles/fig5_feature_census.dir/fig5_feature_census.cpp.o"
  "CMakeFiles/fig5_feature_census.dir/fig5_feature_census.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_feature_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
