file(REMOVE_RECURSE
  "../bench/micro_pipeline"
  "../bench/micro_pipeline.pdb"
  "CMakeFiles/micro_pipeline.dir/micro_pipeline.cpp.o"
  "CMakeFiles/micro_pipeline.dir/micro_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
