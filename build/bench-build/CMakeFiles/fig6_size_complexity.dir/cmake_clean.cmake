file(REMOVE_RECURSE
  "../bench/fig6_size_complexity"
  "../bench/fig6_size_complexity.pdb"
  "CMakeFiles/fig6_size_complexity.dir/fig6_size_complexity.cpp.o"
  "CMakeFiles/fig6_size_complexity.dir/fig6_size_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_size_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
