# Empty dependencies file for fig6_size_complexity.
# This may be replaced when dependencies are built.
