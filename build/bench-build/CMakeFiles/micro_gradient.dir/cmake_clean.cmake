file(REMOVE_RECURSE
  "../bench/micro_gradient"
  "../bench/micro_gradient.pdb"
  "CMakeFiles/micro_gradient.dir/micro_gradient.cpp.o"
  "CMakeFiles/micro_gradient.dir/micro_gradient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
