# Empty dependencies file for micro_gradient.
# This may be replaced when dependencies are built.
