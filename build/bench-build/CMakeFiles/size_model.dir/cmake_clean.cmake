file(REMOVE_RECURSE
  "../bench/size_model"
  "../bench/size_model.pdb"
  "CMakeFiles/size_model.dir/size_model.cpp.o"
  "CMakeFiles/size_model.dir/size_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
