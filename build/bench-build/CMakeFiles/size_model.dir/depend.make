# Empty dependencies file for size_model.
# This may be replaced when dependencies are built.
