# Empty dependencies file for fig4_stability.
# This may be replaced when dependencies are built.
