file(REMOVE_RECURSE
  "../bench/fig4_stability"
  "../bench/fig4_stability.pdb"
  "CMakeFiles/fig4_stability.dir/fig4_stability.cpp.o"
  "CMakeFiles/fig4_stability.dir/fig4_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
