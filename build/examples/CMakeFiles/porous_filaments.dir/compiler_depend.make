# Empty compiler generated dependencies file for porous_filaments.
# This may be replaced when dependencies are built.
