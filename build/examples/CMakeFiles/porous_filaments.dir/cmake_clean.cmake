file(REMOVE_RECURSE
  "CMakeFiles/porous_filaments.dir/porous_filaments.cpp.o"
  "CMakeFiles/porous_filaments.dir/porous_filaments.cpp.o.d"
  "porous_filaments"
  "porous_filaments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porous_filaments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
