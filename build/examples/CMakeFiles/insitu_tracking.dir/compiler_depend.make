# Empty compiler generated dependencies file for insitu_tracking.
# This may be replaced when dependencies are built.
