file(REMOVE_RECURSE
  "CMakeFiles/insitu_tracking.dir/insitu_tracking.cpp.o"
  "CMakeFiles/insitu_tracking.dir/insitu_tracking.cpp.o.d"
  "insitu_tracking"
  "insitu_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
