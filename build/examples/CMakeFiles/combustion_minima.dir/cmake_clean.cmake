file(REMOVE_RECURSE
  "CMakeFiles/combustion_minima.dir/combustion_minima.cpp.o"
  "CMakeFiles/combustion_minima.dir/combustion_minima.cpp.o.d"
  "combustion_minima"
  "combustion_minima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combustion_minima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
