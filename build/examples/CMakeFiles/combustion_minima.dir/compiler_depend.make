# Empty compiler generated dependencies file for combustion_minima.
# This may be replaced when dependencies are built.
