# Empty dependencies file for msc_compute_cli.
# This may be replaced when dependencies are built.
