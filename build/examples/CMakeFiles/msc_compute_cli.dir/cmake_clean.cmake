file(REMOVE_RECURSE
  "CMakeFiles/msc_compute_cli.dir/msc_compute_cli.cpp.o"
  "CMakeFiles/msc_compute_cli.dir/msc_compute_cli.cpp.o.d"
  "msc_compute_cli"
  "msc_compute_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_compute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
