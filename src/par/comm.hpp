/// \file comm.hpp
/// In-process message-passing runtime: the repository's substitute
/// for the MPI subset the paper uses (point-to-point send/recv,
/// barrier, gather). Each *rank* is a thread; ranks share nothing and
/// communicate only through deep-copied byte messages delivered via
/// per-rank mailboxes, so the code exercises the same
/// pack -> transmit -> unpack paths as a distributed run.
///
/// The share-nothing discipline is a checked contract, not just a
/// convention: attach an audit::Auditor to Runtime::run and every
/// blocking operation feeds a waits-for deadlock detector, every
/// message carries a piggybacked protocol trailer (collective epoch +
/// op kind) validated at the receiver, and Runtime::run fails if
/// messages leak in a mailbox or a buffer is freed off its owning
/// rank (see src/audit/). With no auditor attached each operation
/// pays one branch, exactly like the obs::Tracer hook.
///
/// See DESIGN.md, "Substitutions", for why this preserves the
/// behaviour the paper's evaluation measures.
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/tag_alloc.hpp"
#include "audit/wire.hpp"
#include "core/annotations.hpp"

namespace msc::obs {
class Tracer;
}
namespace msc::audit {
class Auditor;
}
namespace msc::causal {
class Recorder;
}
namespace msc::integrity {
class Monitor;
}

namespace msc::par {

/// Matches any source rank / any tag in recv().
// msc-analyze: tag-space(*)
inline constexpr int kAny = -1;

/// Tags reserved by the collectives; user tags must be >= 0, so the
/// framing tags live in every tag space (`*`) for the disjointness
/// proof.
// msc-analyze: tag-space(*)
inline constexpr int kTagGather = -1000;
// msc-analyze: tag-space(*)
inline constexpr int kTagBcast = -1001;

/// Message payload. The ownership-tagging allocator is inert until an
/// Auditor with ownership tracking is attached to Runtime::run; see
/// audit/tag_alloc.hpp for the contract it then enforces.
using Bytes = std::vector<std::byte, audit::TagAlloc<std::byte>>;

/// The death of a rank: thrown (by fault injection, or by any code
/// that decides a rank cannot continue) to unwind the rank's function
/// at its current operation. Runtime::run treats it specially when a
/// respawn policy is attached (RunOptions): the rank's thread
/// re-invokes the rank function, impersonating the replacement
/// process a scheduler would start. Without a policy it is an
/// ordinary fatal rank error.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, const std::string& what_arg)
      : std::runtime_error(what_arg), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

class Runtime;

/// A rank's endpoint into the runtime. Valid only inside the
/// function passed to Runtime::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Deliver a message (deep copy) to `dst`'s mailbox. Messages from
  /// the same (src, tag) are received in send order. Throws
  /// std::invalid_argument for an out-of-range `dst` or a negative
  /// `tag`: tags < 0 are reserved for runtime framing (kAny = -1,
  /// kTagGather = -1000, kTagBcast = -1001), so user traffic can
  /// never collide with the collectives.
  void send(int dst, int tag, Bytes payload) const;

  /// Block until a message matching (src, tag) arrives (kAny wildcards
  /// allowed). Outputs the actual source/tag if requested. Throws
  /// std::invalid_argument for an out-of-range `src` or a reserved
  /// (negative, non-kAny) `tag`.
  Bytes recv(int src, int tag, int* out_src = nullptr, int* out_tag = nullptr) const;

  /// Bounded-wait receive knobs: how long to wait in total, and the
  /// wake-up cadence, which backs off exponentially from
  /// `backoff_initial_ms` to `backoff_max_ms` so a late message is
  /// noticed quickly while a dead peer costs few spurious wakeups.
  struct RecvDeadline {
    double seconds = 5.0;
    double backoff_initial_ms = 0.2;
    double backoff_max_ms = 10.0;
  };

  /// Like recv(), but gives up after `deadline.seconds` and returns
  /// std::nullopt instead of blocking forever — the building block of
  /// the pipeline's crash recovery (a dead source rank must surface
  /// as a timeout the caller can vote on, never as a hang). Audited
  /// and traced exactly like recv(); a timeout additionally bumps the
  /// obs kRecvTimeouts counter (each empty wakeup bumps kRecvRetries).
  std::optional<Bytes> tryRecv(int src, int tag, const RecvDeadline& deadline,
                               int* out_src = nullptr, int* out_tag = nullptr) const;

  /// True if a matching message is already queued. Same argument
  /// validation as recv().
  bool probe(int src, int tag) const;

  /// Synchronize all ranks.
  void barrier() const;

  /// Gather every rank's payload at `root` (returned in rank order
  /// there; empty elsewhere).
  std::vector<Bytes> gather(int root, Bytes payload) const;

  /// Broadcast `payload` from root to all ranks; every rank returns
  /// the root's bytes.
  Bytes broadcast(int root, Bytes payload) const;

  /// Convenience for trivially copyable values.
  template <class T>
  void sendValue(int dst, int tag, const T& v) const {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes b(sizeof(T));
    std::memcpy(b.data(), &v, sizeof(T));
    send(dst, tag, std::move(b));
  }
  template <class T>
  T recvValue(int src, int tag) const {
    int actual_src = src, actual_tag = tag;
    const Bytes b = recv(src, tag, &actual_src, &actual_tag);
    if (b.size() != sizeof(T))
      throw std::runtime_error(
          "Comm::recvValue: payload size mismatch from src " + std::to_string(actual_src) +
          " tag " + std::to_string(actual_tag) + ": expected " + std::to_string(sizeof(T)) +
          " bytes, got " + std::to_string(b.size()));
    T v;
    std::memcpy(&v, b.data(), sizeof(T));
    return v;
  }

 private:
  friend class Runtime;
  Comm(Runtime& rt, int rank, int size) : rt_(&rt), rank_(rank), size_(size) {}
  Runtime* rt_;
  int rank_;
  int size_;
};

/// Owns the mailboxes and threads of one parallel execution.
class Runtime {
 public:
  /// Supervision policy for rank death (par::RankFailure).
  struct RunOptions {
    /// When > 0, a rank function that throws RankFailure is re-invoked
    /// on the same thread — the replacement process — up to this many
    /// times per rank; the failure beyond the budget becomes the run's
    /// error. 0 (the default) rethrows the first RankFailure.
    int max_respawns_per_rank = 0;
    /// Called right before each re-invocation (concurrently across
    /// ranks). `attempt` is 1 for the first respawn.
    std::function<void(int rank, int attempt)> on_respawn;
    /// Turn on the tagging allocator's per-rank byte counters for
    /// this run even when no Auditor (or none with ownership
    /// tracking) is attached. Used by metrics-enabled pipelines for
    /// memory telemetry; ownership violations are still only
    /// *reported* via an Auditor.
    bool track_allocations = false;
    /// Non-null = checksummed framing: every data frame gains an
    /// integrity trailer (outermost, covering payload + audit +
    /// causal trailers) verified at the receiver. A corrupt frame is
    /// dropped inside tryRecv's deadline loop (the sender can be
    /// re-asked) and throws integrity::IntegrityError from a plain
    /// recv (which has no deadline to retry under — never a hang).
    /// Null (the default): one branch per op, wire bytes unchanged.
    integrity::Monitor* integrity = nullptr;
    /// Transit-corruption hook for fault injection: called with every
    /// outgoing frame AFTER all trailers (including the integrity
    /// trailer) are appended, so an armed corruption perturbs exactly
    /// what a flaky link would — bytes the checksum already covers.
    std::function<void(Bytes&)> transit_fault;
  };

  /// Run `fn(comm)` on `nranks` concurrent ranks; returns when all
  /// ranks finish. Exceptions thrown by a rank are rethrown here
  /// (first one wins) after all ranks are joined.
  ///
  /// If `tracer` is non-null (it must outlive the call and have been
  /// created with >= nranks slots), every send/recv/barrier/gather/
  /// broadcast records a span on its rank's track plus message,
  /// byte, and blocked-time counters. With a null tracer the
  /// instrumentation reduces to one branch per operation.
  ///
  /// If `auditor` is non-null (same lifetime/slot contract), the run
  /// is protocol-audited: provable deadlocks, mismatched collectives,
  /// out-of-epoch receives, leaked mailbox messages and cross-rank
  /// buffer frees abort the run with a structured audit::AuditError
  /// instead of hanging or corrupting silently.
  ///
  /// If `recorder` is non-null (same lifetime/slot contract), the run
  /// is causally traced: every message carries a piggybacked vector
  /// clock (merged at the receiver), every send/recv/barrier/
  /// collective lands in the recorder's per-rank journal, and -- when
  /// a tracer is also attached -- each message emits a Chrome-trace
  /// flow-event pair so the viewer draws cross-rank arrows. The
  /// journal feeds causal::analyzeCriticalPath.
  ///
  /// If `opts` is non-null, its respawn policy supervises RankFailure:
  /// the dying rank is restarted in place (the auditor is told via
  /// onRespawn, so a respawning rank is never mistaken for a finished
  /// one by the deadlock detector; the tracer counts kRespawns).
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  obs::Tracer* tracer = nullptr, audit::Auditor* auditor = nullptr,
                  causal::Recorder* recorder = nullptr, const RunOptions* opts = nullptr);

 private:
  friend class Comm;

  struct Message {
    int src;
    int tag;
    std::uint64_t seq;  ///< auditor sequence id (0 when unaudited)
    Bytes payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages MSC_GUARDED_BY(mu);
  };

  Runtime(int nranks, obs::Tracer* tracer, audit::Auditor* auditor,
          causal::Recorder* recorder);

  void send(int src, int dst, int tag, Bytes payload, audit::OpKind kind);
  Bytes recv(int self, int src, int tag, int* out_src, int* out_tag, audit::OpKind expect,
             std::int64_t expect_epoch);
  /// Shared receive loop: blocks forever when `deadline` is null,
  /// else returns nullopt once the deadline expires.
  std::optional<Bytes> recvImpl(int self, int src, int tag, int* out_src, int* out_tag,
                                audit::OpKind expect, std::int64_t expect_epoch,
                                const Comm::RecvDeadline* deadline);
  bool probe(int self, int src, int tag);
  void barrier(int self);

  std::vector<Mailbox> boxes_;
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ MSC_GUARDED_BY(barrier_mu_) = 0;
  std::int64_t barrier_gen_ MSC_GUARDED_BY(barrier_mu_) = 0;
  int nranks_;
  obs::Tracer* tracer_{nullptr};        ///< non-owning; null = tracing off
  audit::Auditor* auditor_{nullptr};    ///< non-owning; null = auditing off
  causal::Recorder* recorder_{nullptr};  ///< non-owning; null = causal off
  integrity::Monitor* integrity_{nullptr};  ///< non-owning; null = framing off
  std::function<void(Bytes&)> transit_fault_;  ///< fault-injection hook
};

}  // namespace msc::par
