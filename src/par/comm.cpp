#include "par/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <thread>

#include "audit/audit.hpp"
#include "causal/causal.hpp"
#include "integrity/integrity.hpp"
#include "obs/obs.hpp"

namespace msc::par {

namespace {

/// Audited blocking waits poll at this period: the auditor's failed()
/// latch has no handle on the runtime's condition variables, so a
/// rank learns that another rank aborted within one poll. Detection
/// itself is event-driven (it runs the moment a rank blocks); the
/// poll only bounds the unwind latency of the *other* ranks.
constexpr auto kAuditPoll = std::chrono::milliseconds(20);

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Comm::send(int dst, int tag, Bytes payload) const {
  if (dst < 0 || dst >= size_)
    throw std::invalid_argument("Comm::send: dst " + std::to_string(dst) +
                                " out of range [0, " + std::to_string(size_) + ")");
  if (tag < 0)
    throw std::invalid_argument(
        "Comm::send: tag " + std::to_string(tag) +
        " is reserved: user tags must be >= 0 (negative tags belong to runtime "
        "framing: kAny = -1, kTagGather = -1000, kTagBcast = -1001)");
  rt_->send(rank_, dst, tag, std::move(payload), audit::OpKind::kP2P);
}

Bytes Comm::recv(int src, int tag, int* out_src, int* out_tag) const {
  if (src != kAny && (src < 0 || src >= size_))
    throw std::invalid_argument("Comm::recv: src " + std::to_string(src) +
                                " out of range [0, " + std::to_string(size_) +
                                ") and not kAny");
  if (tag != kAny && tag < 0)
    throw std::invalid_argument(
        "Comm::recv: tag " + std::to_string(tag) +
        " is reserved: user tags must be >= 0 (negative tags belong to runtime "
        "framing: kAny = -1, kTagGather = -1000, kTagBcast = -1001)");
  return rt_->recv(rank_, src, tag, out_src, out_tag, audit::OpKind::kP2P, -1);
}

std::optional<Bytes> Comm::tryRecv(int src, int tag, const RecvDeadline& deadline,
                                   int* out_src, int* out_tag) const {
  if (src != kAny && (src < 0 || src >= size_))
    throw std::invalid_argument("Comm::tryRecv: src " + std::to_string(src) +
                                " out of range [0, " + std::to_string(size_) +
                                ") and not kAny");
  if (tag != kAny && tag < 0)
    throw std::invalid_argument(
        "Comm::tryRecv: tag " + std::to_string(tag) +
        " is reserved: user tags must be >= 0 (negative tags belong to runtime "
        "framing: kAny = -1, kTagGather = -1000, kTagBcast = -1001)");
  if (deadline.seconds <= 0 || deadline.backoff_initial_ms <= 0 ||
      deadline.backoff_max_ms < deadline.backoff_initial_ms)
    throw std::invalid_argument(
        "Comm::tryRecv: invalid RecvDeadline: seconds and backoff_initial_ms must be "
        "> 0 and backoff_max_ms >= backoff_initial_ms");
  return rt_->recvImpl(rank_, src, tag, out_src, out_tag, audit::OpKind::kP2P, -1,
                       &deadline);
}

bool Comm::probe(int src, int tag) const {
  if (src != kAny && (src < 0 || src >= size_))
    throw std::invalid_argument("Comm::probe: src " + std::to_string(src) +
                                " out of range [0, " + std::to_string(size_) +
                                ") and not kAny");
  if (tag != kAny && tag < 0)
    throw std::invalid_argument("Comm::probe: tag " + std::to_string(tag) +
                                " is reserved: user tags must be >= 0");
  return rt_->probe(rank_, src, tag);
}

void Comm::barrier() const { rt_->barrier(rank_); }

std::vector<Bytes> Comm::gather(int root, Bytes payload) const {
  if (root < 0 || root >= size_)
    throw std::invalid_argument("Comm::gather: root " + std::to_string(root) +
                                " out of range [0, " + std::to_string(size_) + ")");
  obs::Tracer::Span sp;
  if (rt_->tracer_) {
    sp = rt_->tracer_->span(rank_, "gather", "comm");
    sp.arg("root", root).arg("bytes", static_cast<std::int64_t>(payload.size()));
  }
  std::int64_t epoch = -1;
  if (rt_->auditor_)
    epoch = rt_->auditor_->onCollectiveEnter(rank_, audit::OpKind::kGatherContrib, root);
  if (rt_->recorder_) rt_->recorder_->onCollectiveEnter(rank_, root, epoch);
  std::vector<Bytes> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size_));
    out[static_cast<std::size_t>(root)] = std::move(payload);
    // Receive per source rather than by arrival order: per-source
    // FIFO then guarantees each gather consumes exactly its own
    // contribution even when the same root gathers back-to-back and
    // a fast rank's next contribution is already queued.
    for (int src = 0; src < size_; ++src) {
      if (src == root) continue;
      out[static_cast<std::size_t>(src)] = rt_->recv(
          rank_, src, kTagGather, nullptr, nullptr, audit::OpKind::kGatherContrib, epoch);
    }
  } else {
    rt_->send(rank_, root, kTagGather, std::move(payload), audit::OpKind::kGatherContrib);
  }
  return out;
}

Bytes Comm::broadcast(int root, Bytes payload) const {
  if (root < 0 || root >= size_)
    throw std::invalid_argument("Comm::broadcast: root " + std::to_string(root) +
                                " out of range [0, " + std::to_string(size_) + ")");
  obs::Tracer::Span sp;
  if (rt_->tracer_) {
    sp = rt_->tracer_->span(rank_, "broadcast", "comm");
    sp.arg("root", root);
  }
  std::int64_t epoch = -1;
  if (rt_->auditor_)
    epoch = rt_->auditor_->onCollectiveEnter(rank_, audit::OpKind::kBcast, root);
  if (rt_->recorder_) rt_->recorder_->onCollectiveEnter(rank_, root, epoch);
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst)
      if (dst != root) rt_->send(rank_, dst, kTagBcast, payload, audit::OpKind::kBcast);
    return payload;
  }
  return rt_->recv(rank_, root, kTagBcast, nullptr, nullptr, audit::OpKind::kBcast, epoch);
}

Runtime::Runtime(int nranks, obs::Tracer* tracer, audit::Auditor* auditor,
                 causal::Recorder* recorder)
    : boxes_(static_cast<std::size_t>(nranks)),
      nranks_(nranks),
      tracer_(tracer),
      auditor_(auditor),
      recorder_(recorder) {
  assert(!tracer || tracer->nranks() >= nranks);
  assert(!auditor || auditor->nranks() >= nranks);
  assert(!recorder || recorder->nranks() >= nranks);
}

void Runtime::send(int src, int dst, int tag, Bytes payload, audit::OpKind kind) {
  assert(dst >= 0 && dst < nranks_);
  obs::Tracer::Span sp;
  const auto nbytes = static_cast<std::int64_t>(payload.size());
  if (tracer_) {
    sp = tracer_->span(src, "send", "comm");
    sp.arg("dst", dst).arg("bytes", nbytes);
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  audit::WireHeader h;
  if (auditor_) {
    h.epoch = auditor_->epochOf(src);
    h.src = src;
    h.tag = tag;
    h.kind = kind;
    audit::appendHeader(payload, h);
  }
  std::uint64_t flow_id = 0;
  if (recorder_) {
    // Causal trailer outside the audit trailer (stripped first at the
    // receiver). Both appends must precede the ownership handoff
    // below: a resize after adopt() could reallocate a buffer the
    // tracker has already re-tagged.
    const causal::WireStamp stamp = recorder_->onSend(src, dst, tag, nbytes);
    flow_id = stamp.msg_id;
    causal::appendTrailer(payload, stamp);
    // The flow start lands inside the still-open send span (arrow
    // tail), and must be recorded before the mailbox push: once the
    // message is visible, the receiver's flow finish can land, and a
    // finish timestamped before its start is an invalid trace.
    if (tracer_) tracer_->flowStart(src, flow_id, src, dst, tag, nbytes);
  }
  // Integrity trailer last (outermost): its checksum covers the user
  // payload plus both inner protocol trailers, so a flip anywhere in
  // the frame is caught before any layer parses it. Must also stay
  // before the ownership handoff below (same resize-after-adopt rule
  // as the other appends).
  if (integrity_) integrity::appendTrailer(payload);
  // The transit-corruption hook models the flaky link itself, so it
  // runs after every trailer is in place: an armed flip lands on
  // bytes the checksum already covers (detectable), and on a run
  // without a Monitor it is delivered silently — the SDC baseline.
  if (transit_fault_) transit_fault_(payload);
  if (auditor_) {
    // Sanctioned handoff: the buffer stops belonging to `src` the
    // moment it enters the mailbox.
    audit::AllocTracking::adopt(payload.data(), audit::kInTransit);
    {
      const std::lock_guard lock(box.mu);
      // Mirror registration under the mailbox lock so the auditor's
      // view is ordered exactly like the real queue.
      const std::uint64_t seq =
          auditor_->onSend(src, dst, tag, kind, static_cast<std::size_t>(nbytes), h.epoch);
      box.messages.push_back({src, tag, seq, std::move(payload)});
    }
  } else {
    const std::lock_guard lock(box.mu);
    box.messages.push_back({src, tag, 0, std::move(payload)});
  }
  box.cv.notify_all();
  if (tracer_) {
    tracer_->count(src, obs::Counter::kMessagesSent, 1);
    tracer_->count(src, obs::Counter::kBytesSent, static_cast<double>(nbytes));
  }
}

Bytes Runtime::recv(int self, int src, int tag, int* out_src, int* out_tag,
                    audit::OpKind expect, std::int64_t expect_epoch) {
  auto b = recvImpl(self, src, tag, out_src, out_tag, expect, expect_epoch, nullptr);
  assert(b.has_value());  // no deadline: recvImpl can only return by matching
  return std::move(*b);
}

std::optional<Bytes> Runtime::recvImpl(int self, int src, int tag, int* out_src,
                                       int* out_tag, audit::OpKind expect,
                                       std::int64_t expect_epoch,
                                       const Comm::RecvDeadline* deadline) {
  obs::Tracer::Span sp;
  if (tracer_) {
    sp = tracer_->span(self, deadline ? "try_recv" : "recv", "comm");
    sp.arg("src", src).arg("tag", tag);
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(self)];
  double waited = 0;
  // Blocked time is measured whenever anyone will consume it: the
  // tracer's counter or the recorder's journal (critical-path input).
  const bool time_waits = tracer_ || recorder_;
  bool registered = false;  // audited: this rank is recorded as blocked
  double block_start = 0;
  const double give_up_at = deadline ? steadySeconds() + deadline->seconds : 0;
  double backoff_ms = deadline ? deadline->backoff_initial_ms : 0;
  // Common post-dequeue tail (call with the mailbox lock released and
  // all trailers stripped; the recv span is still open so the flow
  // finish anchors to it).
  const auto finish = [&](const Bytes& b, int msg_src, int msg_tag,
                          const causal::WireStamp& stamp) {
    if (recorder_) {
      recorder_->onRecv(self, msg_src, msg_tag, static_cast<std::int64_t>(b.size()),
                        stamp, waited);
      if (tracer_)
        tracer_->flowFinish(self, stamp.msg_id, msg_src, self, msg_tag,
                            static_cast<std::int64_t>(b.size()));
    }
    if (tracer_) {
      tracer_->count(self, obs::Counter::kMessagesReceived, 1);
      tracer_->count(self, obs::Counter::kBytesReceived, static_cast<double>(b.size()));
      if (waited > 0) tracer_->count(self, obs::Counter::kMailboxWaitSeconds, waited);
    }
  };
  // Integrity gate on a dequeued frame, run before any inner trailer
  // is parsed (a flip could sit in the causal or audit bytes too).
  // False means the frame failed its checksum and was dropped: with a
  // deadline the caller rescans and keeps waiting — the recovery
  // layer notices the missing data and re-requests it — and without
  // one the frame was the only way forward, so a structured error
  // beats both a hang and silent garbage.
  const auto frame_ok = [&](Bytes& b, int msg_src, int msg_tag) {
    if (!integrity_) return true;
    if (integrity::verifyAndStripTrailer(b)) {
      integrity_->noteVerified(self);
      return true;
    }
    integrity_->noteFailed(self);
    if (tracer_) tracer_->instant(self, "integrity_drop", "fault");
    if (!deadline)
      throw integrity::IntegrityError(
          "corrupt frame reached rank " + std::to_string(self) + " (src " +
          std::to_string(msg_src) + ", tag " + std::to_string(msg_tag) +
          ") in a blocking recv");
    return false;
  };
  std::unique_lock lock(box.mu);
  // Wakeup predicate for every wait below: a queued message matching
  // (src, tag). Re-checked under the lock on each wakeup so a stolen
  // wakeup (another waiter consumed the message first) goes back to
  // sleep instead of spinning through the match loop.
  const auto match_queued = [&] {
    for (const Message& m : box.messages)
      if ((src == kAny || m.src == src) && (tag == kAny || m.tag == tag)) return true;
    return false;
  };
  for (;;) {
    bool dropped = false;
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if ((src == kAny || it->src == src) && (tag == kAny || it->tag == tag)) {
        if (out_src) *out_src = it->src;
        if (out_tag) *out_tag = it->tag;
        Bytes b = std::move(it->payload);
        const int msg_src = it->src;
        const int msg_tag = it->tag;
        causal::WireStamp stamp;
        if (auditor_) {
          int alternatives = 0;
          if (src == kAny)
            for (auto jt = box.messages.begin(); jt != box.messages.end(); ++jt)
              if (jt != it && jt->src != it->src && (tag == kAny || jt->tag == tag))
                ++alternatives;
          const std::uint64_t seq = it->seq;
          box.messages.erase(it);
          auditor_->onDequeue(self, seq, alternatives);
          if (registered) auditor_->onUnblocked(self);
          lock.unlock();
          audit::AllocTracking::adopt(b.data(), self);
          if (!frame_ok(b, msg_src, msg_tag)) {
            // Dropped. The blocked registration was already withdrawn
            // above, so the next wait must re-register.
            registered = false;
            lock.lock();
            dropped = true;
            break;
          }
          // Strip order mirrors append order: integrity (outermost,
          // above) first, then causal, then the audit trailer.
          if (recorder_) stamp = causal::stripTrailer(b);
          const audit::WireHeader h = audit::stripHeader(b);
          auditor_->checkMessage(self, expect, expect_epoch, msg_src, msg_tag, h);
          finish(b, msg_src, msg_tag, stamp);
          return b;
        }
        box.messages.erase(it);
        lock.unlock();
        if (!frame_ok(b, msg_src, msg_tag)) {
          lock.lock();
          dropped = true;
          break;
        }
        if (recorder_) stamp = causal::stripTrailer(b);
        finish(b, msg_src, msg_tag, stamp);
        return b;
      }
    }
    // A corrupt frame was discarded: rescan under the reacquired lock
    // (another queued message may already match) before waiting.
    if (dropped) continue;
    double wait_ms = 1e12;  // effectively "wait until notified"
    if (deadline) {
      const double remaining_ms = (give_up_at - steadySeconds()) * 1000.0;
      if (remaining_ms <= 0) {
        // Give up. The blocked registration must be withdrawn so the
        // deadlock detector never sees a rank that already moved on.
        if (auditor_ && registered) auditor_->onUnblocked(self);
        lock.unlock();
        if (recorder_) recorder_->onRecvTimeout(self, src, tag, waited);
        if (tracer_) {
          tracer_->count(self, obs::Counter::kRecvTimeouts, 1);
          if (waited > 0) tracer_->count(self, obs::Counter::kMailboxWaitSeconds, waited);
        }
        return std::nullopt;
      }
      wait_ms = std::min(backoff_ms, remaining_ms);
      backoff_ms = std::min(backoff_ms * 2.0, deadline->backoff_max_ms);
    }
    if (auditor_) {
      if (!registered) {
        audit::Auditor::Wait w;
        w.op = expect;
        w.src = src;
        w.tag = tag;
        auditor_->onBlocked(self, w);  // runs deadlock detection; may throw
        registered = true;
        block_start = steadySeconds();
      }
      if (auditor_->failed()) auditor_->onAborted(self);
      const double t0 = time_waits ? steadySeconds() : 0;
      const double poll_ms =
          std::min(wait_ms, std::chrono::duration<double, std::milli>(kAuditPoll).count());
      box.cv.wait_for(lock, std::chrono::duration<double, std::milli>(poll_ms),
                      match_queued);
      if (time_waits) waited += steadySeconds() - t0;
      if (steadySeconds() - block_start > auditor_->options().block_timeout_seconds)
        auditor_->onStuck(self);
    } else if (deadline) {
      const double t0 = time_waits ? steadySeconds() : 0;
      box.cv.wait_for(lock, std::chrono::duration<double, std::milli>(wait_ms),
                      match_queued);
      if (time_waits) waited += steadySeconds() - t0;
    } else if (time_waits) {
      const double t0 = steadySeconds();
      box.cv.wait(lock, match_queued);
      waited += steadySeconds() - t0;
    } else {
      box.cv.wait(lock, match_queued);
    }
    if (deadline && tracer_) tracer_->count(self, obs::Counter::kRecvRetries, 1);
  }
}

bool Runtime::probe(int self, int src, int tag) {
  Mailbox& box = boxes_[static_cast<std::size_t>(self)];
  const std::lock_guard lock(box.mu);
  for (const Message& m : box.messages)
    if ((src == kAny || m.src == src) && (tag == kAny || m.tag == tag)) return true;
  return false;
}

void Runtime::barrier(int self) {
  obs::Tracer::Span sp;
  const double t0 = (tracer_ || recorder_) ? steadySeconds() : 0;
  if (tracer_) sp = tracer_->span(self, "barrier", "comm");
  if (auditor_) auditor_->onCollectiveEnter(self, audit::OpKind::kBarrier, -1);
  std::int64_t my_gen = -1;
  {
    std::unique_lock lock(barrier_mu_);
    const std::int64_t gen = barrier_gen_;
    my_gen = gen;
    // Under the barrier lock, before the count can release anyone:
    // every enter of `gen` reaches the recorder's join accumulator
    // before any rank exits, so exit clocks dominate all entries.
    if (recorder_) recorder_->onBarrierEnter(self, gen);
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      // Tell the auditor before anyone can observe the new generation:
      // ranks still parked at `gen` are released, not deadlocked, even
      // though their phase stays kBlocked until they actually wake.
      if (auditor_) auditor_->onBarrierReleased(gen);
      barrier_cv_.notify_all();
    } else if (auditor_) {
      audit::Auditor::Wait w;
      w.op = audit::OpKind::kBarrier;
      w.barrier_gen = gen;
      auditor_->onBlocked(self, w);  // runs deadlock detection; may throw
      const double block_start = steadySeconds();
      while (barrier_gen_ == gen) {
        if (auditor_->failed()) auditor_->onAborted(self);
        // Predicate form, bounded by kAuditPoll: still returns at the
        // poll cadence so the failed()/onStuck checks above keep
        // running while the rank is parked.
        barrier_cv_.wait_for(lock, kAuditPoll, [&] { return barrier_gen_ != gen; });
        if (steadySeconds() - block_start > auditor_->options().block_timeout_seconds)
          auditor_->onStuck(self);
      }
      auditor_->onUnblocked(self);
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }
  if (recorder_) recorder_->onBarrierExit(self, my_gen, steadySeconds() - t0);
  if (tracer_) tracer_->count(self, obs::Counter::kBarrierWaitSeconds, steadySeconds() - t0);
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn, obs::Tracer* tracer,
                  audit::Auditor* auditor, causal::Recorder* recorder,
                  const RunOptions* opts) {
  assert(nranks >= 1);
  Runtime rt(nranks, tracer, auditor, recorder);
  if (opts) {
    assert(!opts->integrity || opts->integrity->nranks() >= nranks);
    rt.integrity_ = opts->integrity;
    rt.transit_fault_ = opts->transit_fault;
  }
  // With both attached, audit diagnostics gain the causal view: every
  // AuditError report ends with per-rank vector clocks and last-K
  // event histories, ordering the cross-rank evidence.
  if (auditor && recorder)
    auditor->setContextProvider(
        [recorder] { return causal::fullContextReport(*recorder); });
  const bool track = (auditor && auditor->options().track_ownership) ||
                     (opts && opts->track_allocations);
  if (track) audit::AllocTracking::enable(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&rt, &fn, r, nranks, &err_mu, &first_error, tracer, auditor,
                          recorder, track, opts] {
      if (track) audit::AllocTracking::setThreadRank(r);
      Comm comm(rt, r, nranks);
      const auto record_error = [&err_mu, &first_error] {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      };
      const auto settle_auditor = [auditor, r] {
        if (!auditor) return;
        // A failed rank never sends again either; let the detector
        // release anyone waiting on it. Its own error is already
        // latched, so a second one is dropped here.
        try {
          auditor->onDone(r);
        } catch (...) {
        }
      };
      int respawns = 0;
      for (;;) {
        try {
          fn(comm);
          if (recorder) recorder->onDone(r);
          // A clean exit can still prove other ranks deadlocked (they
          // may be waiting on this rank forever).
          if (auditor) auditor->onDone(r);
        } catch (const RankFailure&) {
          if (opts && respawns < opts->max_respawns_per_rank) {
            // Supervised death: restart the rank function in place —
            // the replacement process a scheduler would start. The
            // auditor must NOT see this as done (a respawning rank is
            // not a deadlock; it will block and send again).
            ++respawns;
            if (auditor) auditor->onRespawn(r);
            if (recorder) recorder->onRespawn(r);
            if (tracer) tracer->count(r, obs::Counter::kRespawns, 1);
            if (opts->on_respawn) opts->on_respawn(r, respawns);
            continue;
          }
          record_error();
          settle_auditor();
        } catch (...) {
          record_error();
          settle_auditor();
        }
        break;
      }
      if (track) audit::AllocTracking::setThreadRank(audit::kUntagged);
    });
  }
  for (std::thread& t : threads) t.join();
  // End-of-run accounting: leaked mailbox messages and cross-rank
  // frees fail the run, but a rank's own error stays the primary one.
  std::exception_ptr audit_error;
  if (auditor && !first_error) {
    try {
      auditor->finalize();
    } catch (...) {
      audit_error = std::current_exception();
    }
  }
  if (track) audit::AllocTracking::disable();
  if (first_error) std::rethrow_exception(first_error);
  if (audit_error) std::rethrow_exception(audit_error);
}

}  // namespace msc::par
