#include "par/comm.hpp"

#include <cassert>
#include <exception>
#include <thread>

#include "obs/obs.hpp"

namespace msc::par {

void Comm::send(int dst, int tag, Bytes payload) const {
  rt_->send(rank_, dst, tag, std::move(payload));
}

Bytes Comm::recv(int src, int tag, int* out_src, int* out_tag) const {
  return rt_->recv(rank_, src, tag, out_src, out_tag);
}

bool Comm::probe(int src, int tag) const { return rt_->probe(rank_, src, tag); }

void Comm::barrier() const { rt_->barrier(rank_); }

std::vector<Bytes> Comm::gather(int root, Bytes payload) const {
  obs::Tracer::Span sp;
  if (rt_->tracer_) {
    sp = rt_->tracer_->span(rank_, "gather", "comm");
    sp.arg("root", root).arg("bytes", static_cast<std::int64_t>(payload.size()));
  }
  std::vector<Bytes> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size_));
    out[static_cast<std::size_t>(root)] = std::move(payload);
    for (int i = 0; i < size_ - 1; ++i) {
      int src = kAny;
      Bytes b = recv(kAny, kTagGather, &src, nullptr);
      out[static_cast<std::size_t>(src)] = std::move(b);
    }
  } else {
    send(root, kTagGather, std::move(payload));
  }
  return out;
}

Bytes Comm::broadcast(int root, Bytes payload) const {
  obs::Tracer::Span sp;
  if (rt_->tracer_) {
    sp = rt_->tracer_->span(rank_, "broadcast", "comm");
    sp.arg("root", root);
  }
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst)
      if (dst != root) send(dst, kTagBcast, payload);
    return payload;
  }
  return recv(root, kTagBcast);
}

Runtime::Runtime(int nranks, obs::Tracer* tracer)
    : boxes_(static_cast<std::size_t>(nranks)), nranks_(nranks), tracer_(tracer) {
  assert(!tracer || tracer->nranks() >= nranks);
}

void Runtime::send(int src, int dst, int tag, Bytes payload) {
  assert(dst >= 0 && dst < nranks_);
  obs::Tracer::Span sp;
  const auto nbytes = static_cast<std::int64_t>(payload.size());
  if (tracer_) {
    sp = tracer_->span(src, "send", "comm");
    sp.arg("dst", dst).arg("bytes", nbytes);
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  {
    const std::lock_guard lock(box.mu);
    box.messages.push_back({src, tag, std::move(payload)});
  }
  box.cv.notify_all();
  if (tracer_) {
    tracer_->count(src, obs::Counter::kMessagesSent, 1);
    tracer_->count(src, obs::Counter::kBytesSent, static_cast<double>(nbytes));
  }
}

Bytes Runtime::recv(int self, int src, int tag, int* out_src, int* out_tag) {
  obs::Tracer::Span sp;
  if (tracer_) {
    sp = tracer_->span(self, "recv", "comm");
    sp.arg("src", src).arg("tag", tag);
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(self)];
  double waited = 0;
  std::unique_lock lock(box.mu);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if ((src == kAny || it->src == src) && (tag == kAny || it->tag == tag)) {
        if (out_src) *out_src = it->src;
        if (out_tag) *out_tag = it->tag;
        Bytes b = std::move(it->payload);
        box.messages.erase(it);
        if (tracer_) {
          lock.unlock();
          tracer_->count(self, obs::Counter::kMessagesReceived, 1);
          tracer_->count(self, obs::Counter::kBytesReceived, static_cast<double>(b.size()));
          if (waited > 0) tracer_->count(self, obs::Counter::kMailboxWaitSeconds, waited);
        }
        return b;
      }
    }
    if (tracer_) {
      const double t0 = tracer_->now();
      box.cv.wait(lock);
      waited += tracer_->now() - t0;
    } else {
      box.cv.wait(lock);
    }
  }
}

bool Runtime::probe(int self, int src, int tag) {
  Mailbox& box = boxes_[static_cast<std::size_t>(self)];
  const std::lock_guard lock(box.mu);
  for (const Message& m : box.messages)
    if ((src == kAny || m.src == src) && (tag == kAny || m.tag == tag)) return true;
  return false;
}

void Runtime::barrier(int self) {
  obs::Tracer::Span sp;
  const double t0 = tracer_ ? tracer_->now() : 0;
  if (tracer_) sp = tracer_->span(self, "barrier", "comm");
  {
    std::unique_lock lock(barrier_mu_);
    const std::int64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }
  if (tracer_) tracer_->count(self, obs::Counter::kBarrierWaitSeconds, tracer_->now() - t0);
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn, obs::Tracer* tracer) {
  assert(nranks >= 1);
  Runtime rt(nranks, tracer);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&rt, &fn, r, nranks, &err_mu, &first_error] {
      Comm comm(rt, r, nranks);
      try {
        fn(comm);
      } catch (...) {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace msc::par
