/// \file wire.hpp
/// Piggybacked causal metadata: the vector-clock trailer appended to
/// every message when a causal::Recorder is attached to the runtime.
/// Mirrors audit/wire.hpp's tail-trailer trick -- variable-length
/// clock entries followed by a fixed footer whose last byte is a
/// magic, so attach and strip are O(1) amortized (no memmove of user
/// bytes) and strip needs no out-of-band length.
///
/// Layering with the audit trailer: the causal trailer is appended
/// *after* (outside) the audit trailer and stripped *first* at the
/// receiver, so each layer only ever sees its own framing.
///
/// Wire layout (little-endian hosts, like the rest of the repo):
///   [payload][nclock x i64 clock entries][footer]
///   footer = [u64 msg_id][u32 nclock][u8 version][u16 reserved][u8 magic]
///
/// Leaf header: depends only on causal/clock.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace msc::causal {

inline constexpr std::size_t kWireFooterBytes = 16;
/// Distinct from audit::kWireMagic (0xA5): a message stripped in the
/// wrong layer order fails loudly instead of mis-decoding.
inline constexpr std::uint8_t kWireMagic = 0x5C;
inline constexpr std::uint8_t kWireVersion = 1;

/// What the sender stamps on a message: a run-unique id (shared with
/// the obs flow event so Perfetto arrows and the journal agree) plus
/// the sender's vector clock right after the send tick.
struct WireStamp {
  std::uint64_t msg_id{0};
  std::vector<std::int64_t> clock;
};

/// Append `s` to `b` (the recorded send path).
template <class ByteVec>
void appendTrailer(ByteVec& b, const WireStamp& s) {
  const std::size_t base = b.size();
  const std::size_t clock_bytes = s.clock.size() * 8;
  b.resize(base + clock_bytes + kWireFooterBytes);
  std::byte* p = b.data() + base;
  if (clock_bytes) std::memcpy(p, s.clock.data(), clock_bytes);
  p += clock_bytes;
  std::memcpy(p, &s.msg_id, 8);
  const auto nclock = static_cast<std::uint32_t>(s.clock.size());
  std::memcpy(p + 8, &nclock, 4);
  p[12] = static_cast<std::byte>(kWireVersion);
  // bytes 13..14 reserved (zeroed by resize's value-init)
  p[15] = static_cast<std::byte>(kWireMagic);
}

/// Strip the trailer from `b` (the recorded receive path). Throws
/// std::runtime_error on a malformed trailer: that means a message
/// bypassed the recorded send path entirely.
template <class ByteVec>
WireStamp stripTrailer(ByteVec& b) {
  if (b.size() < kWireFooterBytes ||
      b[b.size() - 1] != static_cast<std::byte>(kWireMagic))
    throw std::runtime_error(
        "causal: message without a causal trailer reached a recorded receive "
        "(send bypassed the recorded runtime?)");
  const std::byte* f = b.data() + (b.size() - kWireFooterBytes);
  WireStamp s;
  std::memcpy(&s.msg_id, f, 8);
  std::uint32_t nclock = 0;
  std::memcpy(&nclock, f + 8, 4);
  if (f[12] != static_cast<std::byte>(kWireVersion))
    throw std::runtime_error("causal: unknown trailer version");
  const std::size_t clock_bytes = static_cast<std::size_t>(nclock) * 8;
  if (b.size() < kWireFooterBytes + clock_bytes)
    throw std::runtime_error("causal: trailer clock length exceeds message size");
  s.clock.resize(nclock);
  if (clock_bytes)
    std::memcpy(s.clock.data(), b.data() + (b.size() - kWireFooterBytes - clock_bytes),
                clock_bytes);
  b.resize(b.size() - kWireFooterBytes - clock_bytes);
  return s;
}

}  // namespace msc::causal
