/// \file critpath.hpp
/// Critical-path analysis over a causal journal: replay the
/// happens-before DAG backwards from the last event to extract the
/// longest causal chain bounding the run's wall time, and attribute
/// it per stage (compute / mailbox-wait / transfer / glue / ...) and
/// per merge round. This is the question the paper's evaluation keeps
/// asking -- *where does the time go as ranks scale* -- answered
/// causally instead of by per-rank aggregates: the blame table names
/// the chain of sends, waits and glues that the run could not have
/// finished without.
#pragma once

#include <array>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "causal/causal.hpp"

namespace msc::causal {

/// What a critical-path segment was spent on. Stage-derived buckets
/// (read/compute/merge/glue/write/idle) cover locally-bound time;
/// the three wait buckets are derived from the journal's blocking
/// events and name the cross-rank dependency that bound them.
enum class PathCategory : int {
  kRead = 0,
  kCompute,
  kMerge,     ///< local merge-stage work (pack/unpack/simplify)
  kGlue,
  kWrite,
  kIdle,
  kMailboxWait,  ///< blocked in recv on a message already in flight
  kTransfer,     ///< send-to-dequeue latency of the binding message
  kBarrierWait,  ///< release latency after the last rank arrived
};
inline constexpr int kNumPathCategories = 9;

const char* pathCategoryName(PathCategory c);

/// One maximal same-rank, same-category, same-round stretch of the
/// critical path, in chronological order.
struct PathSegment {
  int rank{0};
  double t0{0};
  double t1{0};
  PathCategory category{PathCategory::kIdle};
  int round{-1};  ///< merge round, -1 outside rounds
  double seconds() const { return t1 - t0; }
};

struct CriticalPath {
  double wall_seconds{0};  ///< last event ts - first event ts
  double path_seconds{0};  ///< sum over segments (== wall by construction)
  int end_rank{-1};        ///< rank whose final event terminates the path
  std::vector<PathSegment> segments;  ///< chronological
  std::array<double, kNumPathCategories> by_category{};
  std::map<int, double> by_round;  ///< seconds per merge round (-1 = outside)
};

/// Extract the critical path. Works on live (threaded) and
/// synthesized (simnet) journals alike: only timestamps, waits and
/// message ids are consulted, never the vector clocks, so journals
/// recorded with journal_clocks=false analyze identically.
/// Throws std::invalid_argument on an empty journal.
CriticalPath analyzeCriticalPath(const Journal& j);

/// Render the per-category / per-round blame table as fixed-width
/// text (what msc_critpath prints).
std::string blameTable(const CriticalPath& p);

/// Schema version stamped on the JSON form below; consumers
/// (tools/check_trace.py, downstream dashboards) reject files written
/// by an incompatible harness instead of misreading them.
inline constexpr int kCritPathSchemaVersion = 1;

/// Machine-readable form: schema_version, wall/path seconds, category
/// and round breakdowns, and the segment list.
void writeCritPathJson(const CriticalPath& p, std::ostream& os);
std::string critPathJson(const CriticalPath& p);

}  // namespace msc::causal
