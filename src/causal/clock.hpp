/// \file clock.hpp
/// Vector clocks: the logical-time backbone of msc::causal. Each rank
/// keeps one counter per rank; local events tick the own component,
/// every received message merges (component-wise max) the sender's
/// clock. Two timestamps then order exactly when one causally
/// precedes the other -- unlike the auditor's Lamport collective
/// epochs, concurrency is *representable*: incomparable clocks mean
/// provably concurrent events.
///
/// Leaf header: no dependencies beyond the standard library, so every
/// layer (par, obs consumers, tools) can use it without widening the
/// dependency DAG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msc::causal {

/// How two vector timestamps relate under happens-before.
enum class Order { kEqual, kBefore, kAfter, kConcurrent };

const char* orderName(Order o);

/// A vector timestamp over a fixed rank count. Value-semantic and
/// deliberately dumb: thread safety is the Recorder's job.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int nranks) : v_(static_cast<std::size_t>(nranks), 0) {}

  int nranks() const { return static_cast<int>(v_.size()); }
  std::int64_t operator[](int rank) const { return v_[static_cast<std::size_t>(rank)]; }

  /// A local event on `rank`: advance its own component.
  void tick(int rank) { ++v_[static_cast<std::size_t>(rank)]; }

  /// Incorporate knowledge from another clock (component-wise max).
  /// Merging is idempotent and commutative; it never decreases any
  /// component (monotonicity), which the tests pin as laws.
  void merge(const VectorClock& other);
  void merge(const std::int64_t* other, std::size_t n);

  /// Happens-before comparison of the events stamped by two clocks.
  Order compare(const VectorClock& other) const;

  /// True iff the event stamped `*this` causally precedes the event
  /// stamped `other` (strictly: kBefore, not kEqual).
  bool happensBefore(const VectorClock& other) const {
    return compare(other) == Order::kBefore;
  }

  const std::vector<std::int64_t>& components() const { return v_; }

  /// "[2 0 5 1]" -- used in AuditError/RecoveryError context reports.
  std::string toString() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::int64_t> v_;
};

}  // namespace msc::causal
