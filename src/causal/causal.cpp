#include "causal/causal.hpp"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace msc::causal {

const char* stageName(Stage s) {
  switch (s) {
    case Stage::kIdle: return "idle";
    case Stage::kRead: return "read";
    case Stage::kCompute: return "compute";
    case Stage::kMerge: return "merge";
    case Stage::kGlue: return "glue";
    case Stage::kWrite: return "write";
  }
  return "unknown";
}

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kRecvTimeout: return "recv_timeout";
    case EventKind::kBarrierEnter: return "barrier_enter";
    case EventKind::kBarrierExit: return "barrier_exit";
    case EventKind::kCollective: return "collective";
    case EventKind::kStage: return "stage";
    case EventKind::kRoundCommit: return "round_commit";
    case EventKind::kRespawn: return "respawn";
    case EventKind::kDone: return "done";
  }
  return "unknown";
}

Recorder::Recorder(int nranks, Options opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  assert(nranks >= 1);
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto slot = std::make_unique<RankSlot>();
    // msc-analyze: allow(lockset): construction-time init; the slot is
    // not shared until the constructor publishes ranks_.
    slot->clock = VectorClock(nranks);
    ranks_.push_back(std::move(slot));
  }
}

Recorder::~Recorder() = default;

double Recorder::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void Recorder::recordLocked(RankSlot& slot, Event e) {
  e.stage = slot.stage;
  if (e.round < 0) e.round = slot.round;
  if (opts_.journal_clocks) e.vc = slot.clock.components();
  slot.events.push_back(std::move(e));
}

WireStamp Recorder::onSend(int rank, int dst, int tag, std::int64_t payload_bytes) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  WireStamp stamp;
  stamp.msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  Event e;
  e.kind = EventKind::kSend;
  e.rank = rank;
  e.ts = now();
  e.peer = dst;
  e.tag = tag;
  e.bytes = payload_bytes;
  e.msg_id = stamp.msg_id;
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  stamp.clock = slot.clock.components();
  recordLocked(slot, std::move(e));
  return stamp;
}

void Recorder::onRecv(int rank, int src, int tag, std::int64_t payload_bytes,
                      const WireStamp& stamp, double wait_seconds) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRecv;
  e.rank = rank;
  e.ts = now();
  e.peer = src;
  e.tag = tag;
  e.bytes = payload_bytes;
  e.msg_id = stamp.msg_id;
  e.wait = wait_seconds;
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  if (!stamp.clock.empty()) slot.clock.merge(stamp.clock.data(), stamp.clock.size());
  recordLocked(slot, std::move(e));
}

void Recorder::onRecvTimeout(int rank, int src, int tag, double wait_seconds) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRecvTimeout;
  e.rank = rank;
  e.ts = now();
  e.peer = src;
  e.tag = tag;
  e.wait = wait_seconds;
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  recordLocked(slot, std::move(e));
}

void Recorder::onBarrierEnter(int rank, std::int64_t gen) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kBarrierEnter;
  e.rank = rank;
  e.ts = now();
  e.gen = gen;
  VectorClock entered;
  {
    const std::lock_guard lock(slot.mu);
    slot.clock.tick(rank);
    entered = slot.clock;
    recordLocked(slot, std::move(e));
  }
  // Join accumulation: by barrier semantics every enter of `gen`
  // completes (under the runtime's barrier lock) before any rank can
  // exit, so the merged clock an exit reads is the full join.
  const std::lock_guard lock(barrier_mu_);
  BarrierJoin& join = joins_[gen];
  if (join.merged.nranks() == 0) join.merged = VectorClock(nranks());
  join.merged.merge(entered);
}

void Recorder::onBarrierExit(int rank, std::int64_t gen, double wait_seconds) {
  VectorClock joined;
  {
    const std::lock_guard lock(barrier_mu_);
    auto it = joins_.find(gen);
    assert(it != joins_.end());
    joined = it->second.merged;
    if (++it->second.exits == nranks()) joins_.erase(it);
  }
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kBarrierExit;
  e.rank = rank;
  e.ts = now();
  e.gen = gen;
  e.wait = wait_seconds;
  const std::lock_guard lock(slot.mu);
  slot.clock.merge(joined);
  recordLocked(slot, std::move(e));
}

void Recorder::onCollectiveEnter(int rank, int root, std::int64_t epoch) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kCollective;
  e.rank = rank;
  e.ts = now();
  e.peer = root;
  e.gen = epoch;
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  recordLocked(slot, std::move(e));
}

void Recorder::onRespawn(int rank) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRespawn;
  e.rank = rank;
  e.ts = now();
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  recordLocked(slot, std::move(e));
}

void Recorder::onDone(int rank) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kDone;
  e.rank = rank;
  e.ts = now();
  const std::lock_guard lock(slot.mu);
  slot.clock.tick(rank);
  recordLocked(slot, std::move(e));
}

void Recorder::setStage(int rank, Stage stage, int round) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kStage;
  e.rank = rank;
  e.ts = now();
  e.round = round;
  const std::lock_guard lock(slot.mu);
  slot.stage = stage;
  slot.round = round;
  recordLocked(slot, std::move(e));
  // recordLocked stamps the *current* slot stage, which is already
  // the new one -- exactly what a kStage event should carry.
}

void Recorder::roundCommit(int rank, int round) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRoundCommit;
  e.rank = rank;
  e.ts = now();
  e.round = round;
  const std::lock_guard lock(slot.mu);
  recordLocked(slot, std::move(e));
}

std::uint64_t Recorder::sendAt(int rank, int dst, int tag, std::int64_t bytes, double ts) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kSend;
  e.rank = rank;
  e.ts = ts;
  e.peer = dst;
  e.tag = tag;
  e.bytes = bytes;
  e.msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = e.msg_id;
  const std::lock_guard lock(slot.mu);
  e.stage = slot.stage;
  if (e.round < 0) e.round = slot.round;
  slot.events.push_back(std::move(e));
  return id;
}

void Recorder::recvAt(int rank, int src, int tag, std::int64_t bytes, std::uint64_t msg_id,
                      double ts, double wait_seconds) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRecv;
  e.rank = rank;
  e.ts = ts;
  e.peer = src;
  e.tag = tag;
  e.bytes = bytes;
  e.msg_id = msg_id;
  e.wait = wait_seconds;
  const std::lock_guard lock(slot.mu);
  e.stage = slot.stage;
  if (e.round < 0) e.round = slot.round;
  slot.events.push_back(std::move(e));
}

void Recorder::stageAt(int rank, Stage stage, int round, double ts) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kStage;
  e.rank = rank;
  e.ts = ts;
  e.round = round;
  const std::lock_guard lock(slot.mu);
  slot.stage = stage;
  slot.round = round;
  e.stage = stage;
  slot.events.push_back(std::move(e));
}

void Recorder::roundCommitAt(int rank, int round, double ts) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kRoundCommit;
  e.rank = rank;
  e.ts = ts;
  e.round = round;
  const std::lock_guard lock(slot.mu);
  e.stage = slot.stage;
  slot.events.push_back(std::move(e));
}

void Recorder::barrierAllAt(std::int64_t gen, const std::vector<double>& enter_ts,
                            double exit_ts) {
  assert(static_cast<int>(enter_ts.size()) == nranks());
  for (int r = 0; r < nranks(); ++r) {
    RankSlot& slot = *ranks_[static_cast<std::size_t>(r)];
    const std::lock_guard lock(slot.mu);
    Event enter;
    enter.kind = EventKind::kBarrierEnter;
    enter.rank = r;
    enter.ts = enter_ts[static_cast<std::size_t>(r)];
    enter.gen = gen;
    enter.stage = slot.stage;
    enter.round = slot.round;
    slot.events.push_back(std::move(enter));
    Event exit;
    exit.kind = EventKind::kBarrierExit;
    exit.rank = r;
    exit.ts = exit_ts;
    exit.gen = gen;
    exit.wait = exit_ts - enter_ts[static_cast<std::size_t>(r)];
    exit.stage = slot.stage;
    exit.round = slot.round;
    slot.events.push_back(std::move(exit));
  }
}

void Recorder::doneAt(int rank, double ts) {
  RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kDone;
  e.rank = rank;
  e.ts = ts;
  const std::lock_guard lock(slot.mu);
  e.stage = slot.stage;
  slot.events.push_back(std::move(e));
}

std::vector<Event> Recorder::events(int rank) const {
  const RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  const std::lock_guard lock(slot.mu);
  return slot.events;
}

VectorClock Recorder::clock(int rank) const {
  const RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  const std::lock_guard lock(slot.mu);
  return slot.clock;
}

Journal Recorder::journal() const {
  Journal j;
  j.nranks = nranks();
  for (int r = 0; r < nranks(); ++r) {
    auto ev = events(r);
    j.events.insert(j.events.end(), std::make_move_iterator(ev.begin()),
                    std::make_move_iterator(ev.end()));
  }
  return j;
}

std::string Recorder::contextReport(int rank, int last_k) const {
  const RankSlot& slot = *ranks_[static_cast<std::size_t>(rank)];
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  const std::lock_guard lock(slot.mu);
  os << "rank " << rank << " vector clock " << slot.clock.toString() << "; last "
     << std::min<std::size_t>(slot.events.size(), static_cast<std::size_t>(last_k))
     << " causal events (newest last):";
  const std::size_t n = slot.events.size();
  const std::size_t from = n > static_cast<std::size_t>(last_k)
                               ? n - static_cast<std::size_t>(last_k)
                               : 0;
  for (std::size_t i = from; i < n; ++i) {
    const Event& e = slot.events[i];
    os << "\n  [" << e.ts << "s] " << eventKindName(e.kind);
    switch (e.kind) {
      case EventKind::kSend: os << " dst=" << e.peer << " tag=" << e.tag
                                << " bytes=" << e.bytes << " id=" << e.msg_id; break;
      case EventKind::kRecv: os << " src=" << e.peer << " tag=" << e.tag
                                << " bytes=" << e.bytes << " id=" << e.msg_id
                                << " waited=" << e.wait << "s"; break;
      case EventKind::kRecvTimeout: os << " src=" << e.peer << " tag=" << e.tag
                                       << " waited=" << e.wait << "s"; break;
      case EventKind::kBarrierEnter: os << " gen=" << e.gen; break;
      case EventKind::kBarrierExit: os << " gen=" << e.gen << " waited=" << e.wait << "s";
                                    break;
      case EventKind::kCollective: os << " root=" << e.peer << " epoch=" << e.gen; break;
      case EventKind::kStage: os << " -> " << stageName(e.stage); break;
      case EventKind::kRoundCommit: break;
      case EventKind::kRespawn: break;
      case EventKind::kDone: break;
    }
    os << " (stage=" << stageName(e.stage);
    if (e.round >= 0) os << " round=" << e.round;
    os << ")";
    if (!e.vc.empty()) {
      os << " vc=[";
      for (std::size_t c = 0; c < e.vc.size(); ++c) os << (c ? " " : "") << e.vc[c];
      os << "]";
    }
  }
  return os.str();
}

std::string fullContextReport(const Recorder& rec, int last_k) {
  std::string out;
  for (int r = 0; r < rec.nranks(); ++r) {
    out += rec.contextReport(r, last_k);
    out += '\n';
  }
  return out;
}

// ----------------------------------------------------------- serialization

void writeJournal(const Journal& j, std::ostream& os) {
  os << "mscjournal 1 " << j.nranks << " " << j.events.size() << "\n";
  os << std::setprecision(17);
  for (const Event& e : j.events) {
    os << static_cast<int>(e.kind) << ' ' << e.rank << ' ' << e.ts << ' ' << e.peer << ' '
       << e.tag << ' ' << e.bytes << ' ' << e.msg_id << ' ' << e.gen << ' ' << e.wait
       << ' ' << static_cast<int>(e.stage) << ' ' << e.round << ' ' << e.vc.size();
    for (const std::int64_t c : e.vc) os << ' ' << c;
    os << '\n';
  }
}

Journal readJournal(std::istream& is) {
  std::string magic;
  int version = 0;
  std::size_t nevents = 0;
  Journal j;
  if (!(is >> magic >> version >> j.nranks >> nevents) || magic != "mscjournal")
    throw std::runtime_error("causal: not a journal (bad header)");
  if (version != 1)
    throw std::runtime_error("causal: unsupported journal version " +
                             std::to_string(version));
  j.events.reserve(nevents);
  for (std::size_t i = 0; i < nevents; ++i) {
    Event e;
    int kind = 0, stage = 0;
    std::size_t nvc = 0;
    if (!(is >> kind >> e.rank >> e.ts >> e.peer >> e.tag >> e.bytes >> e.msg_id >>
          e.gen >> e.wait >> stage >> e.round >> nvc))
      throw std::runtime_error("causal: truncated journal at event " + std::to_string(i));
    if (kind < 0 || kind > static_cast<int>(EventKind::kDone) || stage < 0 ||
        stage >= kNumStages || e.rank < 0 || e.rank >= j.nranks)
      throw std::runtime_error("causal: malformed journal event " + std::to_string(i));
    e.kind = static_cast<EventKind>(kind);
    e.stage = static_cast<Stage>(stage);
    e.vc.resize(nvc);
    for (std::size_t c = 0; c < nvc; ++c)
      if (!(is >> e.vc[c]))
        throw std::runtime_error("causal: truncated clock in journal event " +
                                 std::to_string(i));
    j.events.push_back(std::move(e));
  }
  return j;
}

bool writeJournalFile(const Journal& j, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  writeJournal(j, f);
  return static_cast<bool>(f);
}

Journal readJournalFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("causal: cannot open journal file: " + path);
  return readJournal(f);
}

}  // namespace msc::causal
