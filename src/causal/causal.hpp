/// \file causal.hpp
/// Causal tracing: per-rank vector clocks advanced on every runtime
/// operation, plus a structured per-run event journal (sends, recvs,
/// barriers, collectives, stage changes, round commits) with vector
/// timestamps. The journal is the input to the critical-path analyzer
/// (causal/critpath.hpp) and the source of the cross-rank "message
/// arrow" flow events in Chrome traces; the clocks order cross-rank
/// evidence in AuditError / RecoveryError reports.
///
/// Ownership/overhead contract (same as obs::Tracer / audit::Auditor /
/// fault::Injector): a Recorder is created by the caller and attached
/// to Runtime::run / PipelineConfig as a non-owning pointer; every
/// instrumentation site is gated on that pointer, so the default-off
/// path costs one predictable branch. When on, each rank writes only
/// to its own cache-line-padded slot (the barrier join accumulator is
/// the one small shared section, guarded by its own mutex).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "causal/clock.hpp"
#include "causal/wire.hpp"
#include "core/annotations.hpp"

namespace msc::causal {

/// Pipeline stage a rank is in when an event records. Set by the
/// drivers via Recorder::setStage; kIdle outside any stage.
enum class Stage : std::uint8_t {
  kIdle = 0,
  kRead,
  kCompute,
  kMerge,
  kGlue,
  kWrite,
};
inline constexpr int kNumStages = 6;

const char* stageName(Stage s);

/// One journal record. `vc` is empty when per-event clock journaling
/// is disabled (Options::journal_clocks) or for synthesized journals.
enum class EventKind : std::uint8_t {
  kSend = 0,       ///< peer=dst, tag, bytes, msg_id
  kRecv,           ///< peer=src, tag, bytes, msg_id, wait=blocked seconds
  kRecvTimeout,    ///< peer=src, tag; a deadline-bounded recv gave up
  kBarrierEnter,   ///< gen=barrier generation
  kBarrierExit,    ///< gen, wait=enter-to-exit seconds
  kCollective,     ///< peer=root, gen=auditor Lamport epoch (-1 unaudited)
  kStage,          ///< stage/round changed to the carried values
  kRoundCommit,    ///< round committed (recovery) or completed (plain)
  kRespawn,        ///< the respawn supervisor restarted this rank
  kDone,           ///< rank function returned
};

const char* eventKindName(EventKind k);

struct Event {
  EventKind kind{EventKind::kSend};
  int rank{0};
  double ts{0};  ///< seconds since the recorder's epoch
  int peer{-1};  ///< dst (send) / src (recv) / root (collective)
  int tag{0};
  std::int64_t bytes{0};
  std::uint64_t msg_id{0};  ///< shared with the obs flow-event id
  std::int64_t gen{-1};     ///< barrier generation / collective epoch
  double wait{0};           ///< blocked seconds (recv, barrier exit)
  Stage stage{Stage::kIdle};
  int round{-1};
  std::vector<std::int64_t> vc;
};

/// A run's complete journal: what the critical-path analyzer and the
/// msc_critpath tool consume. Events are in per-rank record order;
/// no cross-rank order is implied beyond the timestamps.
struct Journal {
  int nranks{0};
  std::vector<Event> events;
};

/// Thread-safe per-rank causal recorder. One instance spans one
/// parallel execution; rank indices must be in [0, nranks).
class Recorder {
 public:
  struct Options {
    /// Copy the rank's full vector clock into every journal event.
    /// O(nranks) memory per event -- switch off for very wide
    /// (simulated) runs; the wire trailer and live clocks are
    /// unaffected, only the per-event journal copies are skipped.
    bool journal_clocks = true;
  };

  explicit Recorder(int nranks) : Recorder(nranks, Options()) {}
  Recorder(int nranks, Options opts);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  int nranks() const { return static_cast<int>(ranks_.size()); }
  const Options& options() const { return opts_; }

  /// Monotonic seconds since this recorder was constructed.
  double now() const;

  // --- Runtime hooks (live threaded runs; called on the rank's own
  // thread). onSend ticks the clock and returns the stamp the runtime
  // appends to the wire; onRecv merges the sender's stamped clock.
  WireStamp onSend(int rank, int dst, int tag, std::int64_t payload_bytes);
  void onRecv(int rank, int src, int tag, std::int64_t payload_bytes,
              const WireStamp& stamp, double wait_seconds);
  void onRecvTimeout(int rank, int src, int tag, double wait_seconds);
  /// Called under the runtime's barrier lock, before the generation
  /// can advance: all enters of a generation are accumulated before
  /// any exit reads the join, so the exit clock dominates every
  /// participant's entry clock.
  void onBarrierEnter(int rank, std::int64_t gen);
  void onBarrierExit(int rank, std::int64_t gen, double wait_seconds);
  /// Journal a collective entry (gather/broadcast) with the auditor's
  /// Lamport epoch when audited (-1 otherwise); ticks the clock.
  void onCollectiveEnter(int rank, int root, std::int64_t epoch);
  void onRespawn(int rank);
  void onDone(int rank);

  // --- Pipeline hooks.
  void setStage(int rank, Stage stage, int round = -1);
  void roundCommit(int rank, int round);

  // --- Synthesis hooks (simnet reconstructions; explicit model
  // timestamps, no live clocks -- journal events carry empty vc).
  std::uint64_t sendAt(int rank, int dst, int tag, std::int64_t bytes, double ts);
  void recvAt(int rank, int src, int tag, std::int64_t bytes, std::uint64_t msg_id,
              double ts, double wait_seconds);
  void stageAt(int rank, Stage stage, int round, double ts);
  void roundCommitAt(int rank, int round, double ts);
  /// One whole synthesized barrier: every rank's enter plus the
  /// common exit (`exit_ts` >= every enter).
  void barrierAllAt(std::int64_t gen, const std::vector<double>& enter_ts, double exit_ts);
  void doneAt(int rank, double ts);

  // --- Read side (safe concurrently with recording; snapshots under
  // the rank lock).
  std::vector<Event> events(int rank) const;
  VectorClock clock(int rank) const;
  Journal journal() const;
  /// Human-readable causal context for error reports: the rank's
  /// current vector clock plus its last `last_k` journal events.
  std::string contextReport(int rank, int last_k = 8) const;

 private:
  struct alignas(64) RankSlot {
    mutable std::mutex mu;
    VectorClock clock MSC_GUARDED_BY(mu);
    std::vector<Event> events MSC_GUARDED_BY(mu);
    Stage stage MSC_GUARDED_BY(mu) = Stage::kIdle;
    int round MSC_GUARDED_BY(mu) = -1;
  };
  struct BarrierJoin {
    VectorClock merged;
    int exits{0};
  };

  /// Stamp stage/round (+ optional clock copy) and append under the
  /// slot lock. `e.rank`/`e.ts` must be set by the caller.
  void recordLocked(RankSlot& slot, Event e) MSC_REQUIRES(slot.mu);

  Options opts_;
  std::chrono::steady_clock::time_point epoch_;
  /// Message-id tally: unique ids only, never orders other memory.
  std::atomic<std::uint64_t> next_msg_id_ MSC_RELAXED_TALLY{1};
  std::vector<std::unique_ptr<RankSlot>> ranks_;
  std::mutex barrier_mu_;
  std::map<std::int64_t, BarrierJoin> joins_ MSC_GUARDED_BY(barrier_mu_);
};

/// All ranks' contextReport()s concatenated -- what the runtime
/// installs as the auditor's context provider and what RecoveryError
/// augmentation appends, so cross-rank evidence in failure reports is
/// causally ordered by the printed vector clocks.
std::string fullContextReport(const Recorder& rec, int last_k = 8);

// --- Journal serialization: a line-oriented text format so the
// msc_critpath tool can replay a run without a JSON parser.
void writeJournal(const Journal& j, std::ostream& os);
Journal readJournal(std::istream& is);
bool writeJournalFile(const Journal& j, const std::string& path);
/// Throws std::runtime_error if the file is missing or malformed.
Journal readJournalFile(const std::string& path);

}  // namespace msc::causal
