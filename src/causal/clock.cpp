#include "causal/clock.hpp"

#include <algorithm>
#include <cassert>

namespace msc::causal {

const char* orderName(Order o) {
  switch (o) {
    case Order::kEqual: return "equal";
    case Order::kBefore: return "before";
    case Order::kAfter: return "after";
    case Order::kConcurrent: return "concurrent";
  }
  return "unknown";
}

void VectorClock::merge(const VectorClock& other) {
  merge(other.v_.data(), other.v_.size());
}

void VectorClock::merge(const std::int64_t* other, std::size_t n) {
  assert(n == v_.size());
  for (std::size_t i = 0; i < n; ++i) v_[i] = std::max(v_[i], other[i]);
}

Order VectorClock::compare(const VectorClock& other) const {
  assert(v_.size() == other.v_.size());
  bool some_less = false, some_greater = false;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < other.v_[i]) some_less = true;
    if (v_[i] > other.v_[i]) some_greater = true;
  }
  if (some_less && some_greater) return Order::kConcurrent;
  if (some_less) return Order::kBefore;
  if (some_greater) return Order::kAfter;
  return Order::kEqual;
}

std::string VectorClock::toString() const {
  std::string s = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) s += ' ';
    s += std::to_string(v_[i]);
  }
  s += ']';
  return s;
}

}  // namespace msc::causal
