#include "causal/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace msc::causal {

namespace {

/// Below this, a recorded wait is treated as "never actually blocked"
/// and the walk continues locally instead of jumping ranks.
constexpr double kWaitEps = 1e-9;

PathCategory stageCategory(Stage s) {
  switch (s) {
    case Stage::kIdle: return PathCategory::kIdle;
    case Stage::kRead: return PathCategory::kRead;
    case Stage::kCompute: return PathCategory::kCompute;
    case Stage::kMerge: return PathCategory::kMerge;
    case Stage::kGlue: return PathCategory::kGlue;
    case Stage::kWrite: return PathCategory::kWrite;
  }
  return PathCategory::kIdle;
}

struct RawSegment {
  int rank;
  double t0, t1;
  PathCategory category;
  int round;
};

}  // namespace

const char* pathCategoryName(PathCategory c) {
  switch (c) {
    case PathCategory::kRead: return "read";
    case PathCategory::kCompute: return "compute";
    case PathCategory::kMerge: return "merge";
    case PathCategory::kGlue: return "glue";
    case PathCategory::kWrite: return "write";
    case PathCategory::kIdle: return "idle";
    case PathCategory::kMailboxWait: return "mailbox_wait";
    case PathCategory::kTransfer: return "transfer";
    case PathCategory::kBarrierWait: return "barrier_wait";
  }
  return "unknown";
}

CriticalPath analyzeCriticalPath(const Journal& j) {
  if (j.events.empty() || j.nranks < 1)
    throw std::invalid_argument("causal: cannot analyze an empty journal");

  // Per-rank chronological views plus the two cross-rank indices the
  // backward walk jumps through: message id -> send site, barrier
  // generation -> last enterer (the rank that released it).
  std::vector<std::vector<const Event*>> per(static_cast<std::size_t>(j.nranks));
  std::unordered_map<std::uint64_t, const Event*> send_of;
  std::map<std::int64_t, const Event*> last_enter;
  double t_begin = j.events.front().ts;
  const Event* end_event = &j.events.front();
  for (const Event& e : j.events) {
    per[static_cast<std::size_t>(e.rank)].push_back(&e);
    t_begin = std::min(t_begin, e.ts);
    if (e.ts > end_event->ts ||
        (e.kind == EventKind::kDone && end_event->kind != EventKind::kDone &&
         e.ts >= end_event->ts))
      end_event = &e;
    if (e.kind == EventKind::kSend && e.msg_id != 0) send_of.emplace(e.msg_id, &e);
    if (e.kind == EventKind::kBarrierEnter) {
      auto [it, inserted] = last_enter.emplace(e.gen, &e);
      if (!inserted && e.ts > it->second->ts) it->second = &e;
    }
  }
  for (auto& v : per)
    std::stable_sort(v.begin(), v.end(),
                     [](const Event* a, const Event* b) { return a->ts < b->ts; });

  // idx[r]: position of the latest event on r at or before the walk
  // cursor. Rewound by binary search on every cross-rank jump.
  std::vector<std::ptrdiff_t> idx(static_cast<std::size_t>(j.nranks), -1);
  const auto rewind = [&](int r, double t) {
    const auto& v = per[static_cast<std::size_t>(r)];
    auto it = std::upper_bound(v.begin(), v.end(), t,
                               [](double tv, const Event* e) { return tv < e->ts; });
    idx[static_cast<std::size_t>(r)] = (it - v.begin()) - 1;
  };

  int rank = end_event->rank;
  double t = end_event->ts;
  rewind(rank, t);

  std::vector<RawSegment> raw;  // built newest-first
  const auto attribute = [&](int r, double a, double b, PathCategory c, int round) {
    if (b - a <= 0) return;
    raw.push_back({r, a, b, c, round});
  };

  // Backward walk: every iteration either consumes one event on the
  // current rank or jumps to the cross-rank dependency that bound a
  // blocked interval. The cap is a safety net far above the 2x bound.
  const std::size_t max_iters = 4 * j.events.size() + 16;
  for (std::size_t iters = 0; t > t_begin && iters < max_iters; ++iters) {
    const auto& v = per[static_cast<std::size_t>(rank)];
    const std::ptrdiff_t i = idx[static_cast<std::size_t>(rank)];
    if (i < 0) {
      // Before this rank's first event: charge the remainder to idle.
      attribute(rank, t_begin, t, PathCategory::kIdle, -1);
      t = t_begin;
      break;
    }
    const Event& e = *v[static_cast<std::size_t>(i)];
    // Local time from this event up to the cursor runs in the stage
    // the event recorded under. The cursor only ever moves backward:
    // measurement jitter that would move it forward is clamped so the
    // attributed intervals keep tiling [t_begin, t_end].
    attribute(rank, e.ts, t, stageCategory(e.stage), e.round);
    t = std::min(t, e.ts);

    if (e.kind == EventKind::kRecv && e.wait > kWaitEps) {
      const double wait_start = e.ts - e.wait;
      const auto it = send_of.find(e.msg_id);
      const Event* s = it == send_of.end() ? nullptr : it->second;
      if (s && s->rank != rank && s->ts >= wait_start && s->ts <= t) {
        // The binding dependency: we were already waiting when the
        // message was sent, so the path runs through the sender.
        attribute(rank, s->ts, t, PathCategory::kTransfer, e.round);
        rank = s->rank;
        t = s->ts;
        rewind(rank, t);
        continue;
      }
      // Message predates the wait (or is unknown): the delay was
      // local delivery, not the sender.
      attribute(rank, wait_start, t, PathCategory::kMailboxWait, e.round);
      t = std::min(t, wait_start);
    } else if (e.kind == EventKind::kBarrierExit && e.wait > kWaitEps) {
      const double enter_ts = e.ts - e.wait;
      const auto it = last_enter.find(e.gen);
      const Event* l = it == last_enter.end() ? nullptr : it->second;
      if (l && l->rank != rank && l->ts >= enter_ts && l->ts <= t) {
        attribute(rank, l->ts, t, PathCategory::kBarrierWait, e.round);
        rank = l->rank;
        t = l->ts;
        rewind(rank, t);
        continue;
      }
      attribute(rank, enter_ts, t, PathCategory::kBarrierWait, e.round);
      t = std::min(t, enter_ts);
    }
    --idx[static_cast<std::size_t>(rank)];
  }

  CriticalPath out;
  out.wall_seconds = end_event->ts - t_begin;
  out.end_rank = end_event->rank;
  // Chronological order, then coalesce adjacent same-attribution
  // stretches so the segment list stays readable.
  std::reverse(raw.begin(), raw.end());
  for (const RawSegment& s : raw) {
    if (!out.segments.empty()) {
      PathSegment& prev = out.segments.back();
      if (prev.rank == s.rank && prev.category == s.category && prev.round == s.round &&
          s.t0 <= prev.t1 + 1e-12) {
        prev.t1 = std::max(prev.t1, s.t1);
        continue;
      }
    }
    PathSegment seg;
    seg.rank = s.rank;
    seg.t0 = s.t0;
    seg.t1 = s.t1;
    seg.category = s.category;
    seg.round = s.round;
    out.segments.push_back(seg);
  }
  for (const PathSegment& s : out.segments) {
    out.path_seconds += s.seconds();
    out.by_category[static_cast<std::size_t>(s.category)] += s.seconds();
    out.by_round[s.round] += s.seconds();
  }
  return out;
}

std::string blameTable(const CriticalPath& p) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "critical path: %.6f s over %.6f s wall (%.1f%%), ends on rank %d, %zu "
                "segments\n",
                p.path_seconds, p.wall_seconds,
                p.wall_seconds > 0 ? 100.0 * p.path_seconds / p.wall_seconds : 0.0,
                p.end_rank, p.segments.size());
  os << buf;
  os << "  category        seconds     share\n";
  for (int c = 0; c < kNumPathCategories; ++c) {
    const double s = p.by_category[static_cast<std::size_t>(c)];
    if (s <= 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-14s %10.6f   %6.2f%%\n",
                  pathCategoryName(static_cast<PathCategory>(c)), s,
                  p.path_seconds > 0 ? 100.0 * s / p.path_seconds : 0.0);
    os << buf;
  }
  bool any_round = false;
  for (const auto& [round, s] : p.by_round)
    if (round >= 0 && s > 0) any_round = true;
  if (any_round) {
    os << "  per merge round:\n";
    for (const auto& [round, s] : p.by_round) {
      if (round < 0 || s <= 0) continue;
      std::snprintf(buf, sizeof(buf), "    round %-8d %10.6f   %6.2f%%\n", round, s,
                    p.path_seconds > 0 ? 100.0 * s / p.path_seconds : 0.0);
      os << buf;
    }
  }
  return os.str();
}

void writeCritPathJson(const CriticalPath& p, std::ostream& os) {
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.9f", v);
    os << buf;
  };
  os << "{\"schema_version\":" << kCritPathSchemaVersion << ",\"wall_seconds\":";
  num(p.wall_seconds);
  os << ",\"path_seconds\":";
  num(p.path_seconds);
  os << ",\"end_rank\":" << p.end_rank << ",\"by_category\":{";
  bool first = true;
  for (int c = 0; c < kNumPathCategories; ++c) {
    if (!first) os << ',';
    first = false;
    os << '"' << pathCategoryName(static_cast<PathCategory>(c)) << "\":";
    num(p.by_category[static_cast<std::size_t>(c)]);
  }
  os << "},\"by_round\":[";
  first = true;
  for (const auto& [round, s] : p.by_round) {
    if (!first) os << ',';
    first = false;
    os << "{\"round\":" << round << ",\"seconds\":";
    num(s);
    os << '}';
  }
  os << "],\"segments\":[";
  first = true;
  for (const PathSegment& s : p.segments) {
    if (!first) os << ',';
    first = false;
    os << "{\"rank\":" << s.rank << ",\"t0\":";
    num(s.t0);
    os << ",\"t1\":";
    num(s.t1);
    os << ",\"category\":\"" << pathCategoryName(s.category) << "\",\"round\":" << s.round
       << '}';
  }
  os << "]}\n";
}

std::string critPathJson(const CriticalPath& p) {
  std::ostringstream os;
  writeCritPathJson(p, os);
  return os.str();
}

}  // namespace msc::causal
