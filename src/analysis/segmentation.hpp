/// \file segmentation.hpp
/// Morse segmentation from the discrete gradient: ascending
/// 3-manifolds (basins of minima) and descending 3-manifolds
/// (mountains of maxima).
///
/// These are the segmentations behind the paper's motivating
/// applications (section II: Laney et al. segmenting a mixing
/// interface, Bremer et al. counting burning regions): every vertex
/// flows down to exactly one minimum, every voxel drains from exactly
/// one maximum, and the label fields partition the block.
#pragma once

#include <vector>

#include "core/gradient.hpp"

namespace msc::analysis {

/// Label of "no region" (only used transiently; every element is
/// labelled on a complete gradient field).
inline constexpr std::int32_t kUnlabelled = -1;

/// Result of a segmentation: one label per element, plus the critical
/// cell that seeds each region.
struct Segmentation {
  /// Label per element (vertex or voxel, see the producing call),
  /// indexed by the element's linear index within the block.
  std::vector<std::int32_t> labels;
  /// For each region, the local refined coordinate of its seeding
  /// critical cell (minimum or maximum).
  std::vector<Vec3i> seeds;

  std::int32_t regionCount() const { return static_cast<std::int32_t>(seeds.size()); }
  /// Number of elements per region.
  std::vector<std::int64_t> regionSizes() const;
};

/// Ascending-manifold segmentation: every *vertex* is labelled by the
/// minimum its descending vertex-edge V-path terminates at.
/// labels[i] indexes into seeds; i is Block::vertexIndex order.
Segmentation segmentByMinima(const GradientField& grad);

/// Descending-manifold segmentation: every *voxel* (3-cell) is
/// labelled by the maximum whose descending voxel-quad V-paths reach
/// it. labels are indexed by voxel in x-fastest order over the
/// (vdims-1)^3 voxel grid.
Segmentation segmentByMaxima(const GradientField& grad);

}  // namespace msc::analysis
