#include "analysis/graph.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace msc::analysis {

namespace {

/// Union-find over node ids.
class UnionFind {
 public:
  int find(NodeId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      const int id = static_cast<int>(ids_.size());
      ids_.push_back(x);
      parent_.emplace(x, id);
      root_.push_back(id);
      return id;
    }
    int r = it->second;
    while (root_[static_cast<std::size_t>(r)] != r) r = root_[static_cast<std::size_t>(r)];
    // Path compression.
    int c = it->second;
    while (root_[static_cast<std::size_t>(c)] != r) {
      const int next = root_[static_cast<std::size_t>(c)];
      root_[static_cast<std::size_t>(c)] = r;
      c = next;
    }
    return r;
  }
  void unite(NodeId a, NodeId b) {
    const int ra = find(a), rb = find(b);
    if (ra != rb) root_[static_cast<std::size_t>(ra)] = rb;
  }
  std::int64_t size() const { return std::ssize(ids_); }
  const std::vector<NodeId>& ids() const { return ids_; }

 private:
  std::unordered_map<NodeId, int> parent_;
  std::vector<int> root_;
  std::vector<NodeId> ids_;
};

}  // namespace

std::unordered_map<NodeId, int> components(const std::vector<FeatureArc>& arcs) {
  UnionFind uf;
  for (const FeatureArc& a : arcs) {
    uf.find(a.lower);
    uf.find(a.upper);
    uf.unite(a.lower, a.upper);
  }
  std::unordered_map<NodeId, int> out;
  std::map<int, int> remap;
  for (const NodeId n : uf.ids()) {
    const int r = uf.find(n);
    const auto [it, fresh] = remap.emplace(r, static_cast<int>(remap.size()));
    out.emplace(n, it->second);
    (void)fresh;
  }
  return out;
}

NetworkStats networkStats(const MsComplex& c, const std::vector<FeatureArc>& arcs) {
  NetworkStats s;
  const auto comp = components(arcs);
  s.vertices = std::ssize(comp);
  s.edges = std::ssize(arcs);
  int ncomp = 0;
  std::map<int, std::int64_t> sizes;
  for (const auto& [node, cid] : comp) {
    ncomp = std::max(ncomp, cid + 1);
    ++sizes[cid];
  }
  s.components = ncomp;
  for (const auto& [cid, n] : sizes) s.largest_component = std::max(s.largest_component, n);
  for (const FeatureArc& a : arcs) {
    const double len = arcLength(c, a);
    s.total_length += len;
    s.longest_arc = std::max(s.longest_arc, len);
  }
  return s;
}

std::int64_t minCut(const std::vector<FeatureArc>& arcs, NodeId s, NodeId t) {
  if (s == t) return 0;
  // Build an adjacency list with unit capacities (both directions).
  std::unordered_map<NodeId, int> index;
  std::vector<NodeId> nodes;
  const auto idOf = [&](NodeId n) {
    const auto [it, fresh] = index.emplace(n, static_cast<int>(nodes.size()));
    if (fresh) nodes.push_back(n);
    return it->second;
  };
  struct Edge {
    int to;
    int cap;
    std::size_t rev;
  };
  std::vector<std::vector<Edge>> adj;
  const auto addEdge = [&](int a, int b) {
    if (static_cast<std::size_t>(std::max(a, b)) >= adj.size())
      adj.resize(static_cast<std::size_t>(std::max(a, b)) + 1);
    adj[static_cast<std::size_t>(a)].push_back({b, 1, adj[static_cast<std::size_t>(b)].size()});
    adj[static_cast<std::size_t>(b)].push_back({a, 1, adj[static_cast<std::size_t>(a)].size() - 1});
  };
  for (const FeatureArc& a : arcs) addEdge(idOf(a.lower), idOf(a.upper));
  if (!index.contains(s) || !index.contains(t)) return -1;
  const int si = index.at(s), ti = index.at(t);
  if (static_cast<std::size_t>(std::max(si, ti)) >= adj.size())
    adj.resize(static_cast<std::size_t>(std::max(si, ti)) + 1);

  // Edmonds-Karp.
  std::int64_t flow = 0;
  for (;;) {
    std::vector<std::pair<int, std::size_t>> prev(adj.size(), {-1, 0});
    std::queue<int> q;
    q.push(si);
    prev[static_cast<std::size_t>(si)] = {si, 0};
    while (!q.empty() && prev[static_cast<std::size_t>(ti)].first < 0) {
      const int u = q.front();
      q.pop();
      for (std::size_t i = 0; i < adj[static_cast<std::size_t>(u)].size(); ++i) {
        const Edge& e = adj[static_cast<std::size_t>(u)][i];
        if (e.cap > 0 && prev[static_cast<std::size_t>(e.to)].first < 0) {
          prev[static_cast<std::size_t>(e.to)] = {u, i};
          q.push(e.to);
        }
      }
    }
    if (prev[static_cast<std::size_t>(ti)].first < 0) break;
    for (int v = ti; v != si;) {
      const auto [u, i] = prev[static_cast<std::size_t>(v)];
      Edge& e = adj[static_cast<std::size_t>(u)][i];
      e.cap -= 1;
      adj[static_cast<std::size_t>(e.to)][e.rev].cap += 1;
      v = u;
    }
    ++flow;
  }
  return flow == 0 ? -1 : flow;
}

}  // namespace msc::analysis
