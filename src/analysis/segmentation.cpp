#include "analysis/segmentation.hpp"

#include <unordered_map>

namespace msc::analysis {

std::vector<std::int64_t> Segmentation::regionSizes() const {
  std::vector<std::int64_t> sizes(seeds.size(), 0);
  for (const std::int32_t l : labels)
    if (l != kUnlabelled) ++sizes[static_cast<std::size_t>(l)];
  return sizes;
}

Segmentation segmentByMinima(const GradientField& grad) {
  const Block& blk = grad.block();
  Segmentation out;
  out.labels.assign(static_cast<std::size_t>(blk.numVertices()), kUnlabelled);

  std::unordered_map<std::int64_t, std::int32_t> seedOf;  // vertex index -> label
  std::vector<std::int64_t> path;

  for (std::int64_t vz = 0; vz < blk.vdims.z; ++vz) {
    for (std::int64_t vy = 0; vy < blk.vdims.y; ++vy) {
      for (std::int64_t vx = 0; vx < blk.vdims.x; ++vx) {
        const std::int64_t start = blk.vertexIndex({vx, vy, vz});
        if (out.labels[static_cast<std::size_t>(start)] != kUnlabelled) continue;
        // Walk the descending vertex-edge V-path, collecting the
        // visited vertices, until a labelled vertex or the minimum.
        path.clear();
        Vec3i vc{vx, vy, vz};
        std::int32_t label = kUnlabelled;
        for (;;) {
          const std::int64_t vi = blk.vertexIndex(vc);
          if (out.labels[static_cast<std::size_t>(vi)] != kUnlabelled) {
            label = out.labels[static_cast<std::size_t>(vi)];
            break;
          }
          path.push_back(vi);
          const Vec3i rc = vc * 2;
          if (grad.isCritical(rc)) {
            const auto [it, fresh] =
                seedOf.emplace(vi, static_cast<std::int32_t>(out.seeds.size()));
            if (fresh) out.seeds.push_back(rc);
            label = it->second;
            break;
          }
          // The vertex is paired with an edge; descend through the
          // edge's other endpoint.
          const Vec3i edge = grad.partner(rc);
          assert(Domain::cellDim(edge) == 1);
          const Vec3i other = edge + (edge - rc);
          vc = {other.x / 2, other.y / 2, other.z / 2};
        }
        for (const std::int64_t vi : path) out.labels[static_cast<std::size_t>(vi)] = label;
      }
    }
  }
  return out;
}

Segmentation segmentByMaxima(const GradientField& grad) {
  const Block& blk = grad.block();
  const Vec3i nvox{blk.vdims.x - 1, blk.vdims.y - 1, blk.vdims.z - 1};
  Segmentation out;
  out.labels.assign(static_cast<std::size_t>(std::max<std::int64_t>(nvox.volume(), 0)),
                    kUnlabelled);
  if (nvox.x <= 0 || nvox.y <= 0 || nvox.z <= 0) return out;  // 2D domain: no voxels

  const auto voxelIndex = [&](Vec3i v) {
    return v.x + v.y * nvox.x + v.z * nvox.x * nvox.y;
  };
  const Vec3i r = blk.rdims();

  // Sentinel label for orphan chains (voxels whose ascent dies on the
  // domain boundary; they belong to lower-dimensional descending
  // manifolds). Resolved to kUnlabelled at the end.
  constexpr std::int32_t kOrphan = -2;

  std::vector<std::int64_t> path;
  for (std::int64_t z = 0; z < nvox.z; ++z) {
    for (std::int64_t y = 0; y < nvox.y; ++y) {
      for (std::int64_t x = 0; x < nvox.x; ++x) {
        const std::int64_t start = voxelIndex({x, y, z});
        if (out.labels[static_cast<std::size_t>(start)] != kUnlabelled) continue;
        path.clear();
        Vec3i vox{x, y, z};
        std::int32_t label = kUnlabelled;
        for (;;) {
          const std::int64_t vi = voxelIndex(vox);
          const std::int32_t cur = out.labels[static_cast<std::size_t>(vi)];
          if (cur != kUnlabelled) {
            label = cur;
            break;
          }
          path.push_back(vi);
          const Vec3i rc{2 * vox.x + 1, 2 * vox.y + 1, 2 * vox.z + 1};
          if (grad.isCritical(rc)) {
            label = static_cast<std::int32_t>(out.seeds.size());
            out.seeds.push_back(rc);
            break;
          }
          // Ascend: the voxel is the head of a vector from one of its
          // quads; the predecessor voxel is that quad's other cofacet.
          const Vec3i quad = grad.partner(rc);
          assert(Domain::cellDim(quad) == 2);
          const Vec3i other = quad + (quad - rc);
          int axis = 0;
          for (int a = 1; a < 3; ++a)
            if (quad[a] != rc[a]) axis = a;
          if (other[axis] < 0 || other[axis] >= r[axis]) {
            label = kOrphan;  // ascent exits through the boundary
            break;
          }
          vox = {(other.x - 1) / 2, (other.y - 1) / 2, (other.z - 1) / 2};
        }
        for (const std::int64_t vi : path) out.labels[static_cast<std::size_t>(vi)] = label;
      }
    }
  }
  for (std::int32_t& l : out.labels)
    if (l == kOrphan) l = kUnlabelled;
  return out;
}

}  // namespace msc::analysis
