#include "analysis/census.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace msc::analysis {

Census census(const MsComplex& c) {
  Census out;
  bool first = true;
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    ++out.nodes[nd.index];
    if (nd.boundary) ++out.boundary_nodes;
    if (first || nd.value < out.min_value) out.min_value = nd.value;
    if (first || nd.value > out.max_value) out.max_value = nd.value;
    first = false;
  }
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    ++out.arcs;
    if (ar.geom != kNone)
      out.geometry_cells +=
          static_cast<std::int64_t>(c.flattenGeom(ar.geom).size());
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Census& c) {
  return os << "nodes[min " << c.nodes[0] << ", 1sad " << c.nodes[1] << ", 2sad "
            << c.nodes[2] << ", max " << c.nodes[3] << "] arcs " << c.arcs
            << " boundary " << c.boundary_nodes << " geomCells " << c.geometry_cells
            << " chi " << c.euler();
}

PersistenceHistogram persistenceHistogram(const MsComplex& c, int nbins) {
  PersistenceHistogram h;
  h.bins.assign(static_cast<std::size_t>(nbins), 0);
  float maxp = 0;
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a)
    if (c.arc(a).alive) maxp = std::max(maxp, c.persistence(a));
  if (maxp <= 0) return h;
  h.bin_width = maxp / static_cast<float>(nbins);
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a) {
    if (!c.arc(a).alive) continue;
    const int b = std::min(nbins - 1,
                           static_cast<int>(c.persistence(a) / h.bin_width));
    ++h.bins[static_cast<std::size_t>(b)];
  }
  return h;
}

std::vector<float> cancelledPersistences(const MsComplex& c) {
  std::vector<float> out;
  out.reserve(c.cancellations().size());
  for (const Cancellation& cc : c.cancellations()) out.push_back(cc.persistence);
  return out;
}

}  // namespace msc::analysis
