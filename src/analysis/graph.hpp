/// \file graph.hpp
/// Graph algorithms over selected 1-skeleton arcs: the embedded-graph
/// analysis of Fig. 1 ("statistics such as length, cycle count, and
/// the minimum cut").
#pragma once

#include "analysis/features.hpp"

namespace msc::analysis {

/// Statistics of a feature network (a set of selected arcs viewed as
/// an undirected multigraph on the complex's nodes).
struct NetworkStats {
  std::int64_t vertices{0};
  std::int64_t edges{0};
  std::int64_t components{0};
  /// First Betti number of the network: E - V + C (independent
  /// cycles of the filament structure).
  std::int64_t cycles() const { return edges - vertices + components; }
  double total_length{0};       ///< sum of embedded arc lengths (grid units)
  double longest_arc{0};
  std::int64_t largest_component{0};  ///< vertex count
};

NetworkStats networkStats(const MsComplex& c, const std::vector<FeatureArc>& arcs);

/// Connected component label per participating node (map from NodeId
/// to component id, 0-based).
std::unordered_map<NodeId, int> components(const std::vector<FeatureArc>& arcs);

/// Minimum s-t cut (by edge count) between two nodes of the network,
/// via BFS-based max-flow on unit capacities (Edmonds-Karp). Returns
/// -1 if s and t are disconnected. Small networks only (the feature
/// graphs of Fig. 1 are tiny compared to the data).
std::int64_t minCut(const std::vector<FeatureArc>& arcs, NodeId s, NodeId t);

}  // namespace msc::analysis
