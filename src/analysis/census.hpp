/// \file census.hpp
/// Summary statistics of an MS complex 1-skeleton: the "statistics
/// generated on-the-fly" of the paper's analysis pipeline (Fig. 1).
#pragma once

#include <iosfwd>

#include "core/complex.hpp"

namespace msc::analysis {

struct Census {
  std::array<std::int64_t, 4> nodes{};  ///< per Morse index
  std::int64_t arcs{0};
  std::int64_t boundary_nodes{0};
  std::int64_t geometry_cells{0};  ///< total embedded arc path length
  float min_value{0}, max_value{0};

  std::int64_t totalNodes() const { return nodes[0] + nodes[1] + nodes[2] + nodes[3]; }
  std::int64_t euler() const { return nodes[0] - nodes[1] + nodes[2] - nodes[3]; }
};

Census census(const MsComplex& c);

std::ostream& operator<<(std::ostream& os, const Census& c);

/// Histogram of arc persistences (log-ready linear bins over
/// [0, max_persistence]).
struct PersistenceHistogram {
  float bin_width{0};
  std::vector<std::int64_t> bins;
};

PersistenceHistogram persistenceHistogram(const MsComplex& c, int nbins = 32);

/// All (persistence, lower value, upper value) triples of cancelled
/// pairs recorded in the hierarchy -- the complex's persistence
/// pairs up to the simplification threshold.
std::vector<float> cancelledPersistences(const MsComplex& c);

}  // namespace msc::analysis
