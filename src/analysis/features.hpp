/// \file features.hpp
/// Threshold-based feature extraction on the 1-skeleton: the
/// interactive queries of Fig. 1 / Fig. 4 ("choosing 2-saddle-maximum
/// arcs and nodes with value greater than ...").
#pragma once

#include "core/complex.hpp"

namespace msc::analysis {

/// Which arc family to select, by the lower endpoint's Morse index.
enum class ArcType {
  kMinSaddle = 0,     ///< minimum -- 1-saddle
  kSaddleSaddle = 1,  ///< 1-saddle -- 2-saddle
  kSaddleMax = 2,     ///< 2-saddle -- maximum (ridge lines / filaments)
  kAny = -1,
};

struct FeatureFilter {
  ArcType type = ArcType::kAny;
  /// Keep arcs whose *both* endpoint values are >= value_min and
  /// <= value_max.
  float value_min = -std::numeric_limits<float>::infinity();
  float value_max = std::numeric_limits<float>::infinity();
};

/// One selected arc with its resolved endpoints and geometry.
struct FeatureArc {
  ArcId arc;
  NodeId lower, upper;
  std::vector<CellAddr> path;  ///< flattened geometric embedding
};

/// Select live arcs matching the filter.
std::vector<FeatureArc> extractArcs(const MsComplex& c, const FeatureFilter& filter);

/// Euclidean length of an arc's embedding, in grid units (cell
/// addresses decode to refined coordinates; two refined steps = one
/// grid spacing).
double arcLength(const MsComplex& c, const FeatureArc& a);

/// Nodes with value above a threshold, optionally limited to one
/// Morse index (-1 = all).
std::vector<NodeId> selectNodes(const MsComplex& c, float value_min, int index = -1);

}  // namespace msc::analysis
