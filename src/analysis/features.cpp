#include "analysis/features.hpp"

#include <cmath>

namespace msc::analysis {

std::vector<FeatureArc> extractArcs(const MsComplex& c, const FeatureFilter& filter) {
  std::vector<FeatureArc> out;
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a) {
    const Arc& ar = c.arc(a);
    if (!ar.alive) continue;
    if (filter.type != ArcType::kAny &&
        c.node(ar.lower).index != static_cast<int>(filter.type))
      continue;
    const float lo = c.node(ar.lower).value, hi = c.node(ar.upper).value;
    if (std::min(lo, hi) < filter.value_min || std::max(lo, hi) > filter.value_max)
      continue;
    FeatureArc fa;
    fa.arc = a;
    fa.lower = ar.lower;
    fa.upper = ar.upper;
    if (ar.geom != kNone) fa.path = c.flattenGeom(ar.geom);
    out.push_back(std::move(fa));
  }
  return out;
}

double arcLength(const MsComplex& c, const FeatureArc& a) {
  double len = 0;
  for (std::size_t i = 1; i < a.path.size(); ++i) {
    const Vec3i p = c.domain().coordOf(a.path[i - 1]);
    const Vec3i q = c.domain().coordOf(a.path[i]);
    const Vec3i d = q - p;
    len += 0.5 * std::sqrt(static_cast<double>(d.x * d.x + d.y * d.y + d.z * d.z));
  }
  return len;
}

std::vector<NodeId> selectNodes(const MsComplex& c, float value_min, int index) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < static_cast<NodeId>(c.nodes().size()); ++n) {
    const Node& nd = c.node(n);
    if (!nd.alive || nd.value < value_min) continue;
    if (index >= 0 && nd.index != index) continue;
    out.push_back(n);
  }
  return out;
}

}  // namespace msc::analysis
