#include "metrics/snapshot.hpp"

#include <cctype>
#include <cstdlib>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "metrics/metrics.hpp"

namespace msc::metrics {
namespace {

void writeIntArray(std::ostream& os, const std::vector<std::int64_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

// Metric names are [a-z0-9_] by construction, so keys need no
// escaping; this stays in case a future name grows one.
void writeKey(std::ostream& os, const std::string& k) {
  os << '"';
  for (char c : k) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\":";
}

// --- minimal recursive-descent parser for the snapshot subset -------
// Grammar actually used by the writer: objects, arrays, integers,
// doubles (bucket bounds), and unescaped keys. Anything else is a
// hard error -- this is a schema validator as much as a parser.

struct Parser {
  const std::string& s;
  std::size_t i = 0;

  [[noreturn]] void err(const std::string& what) const {
    throw std::runtime_error("metrics snapshot parse error at offset " +
                             std::to_string(i) + ": " + what);
  }
  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  char peek() {
    ws();
    if (i >= s.size()) err("unexpected end of input");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++i;
  }
  bool consumeIf(char c) {
    if (i < s.size() && peek() == c) {
      ++i;
      return true;
    }
    return false;
  }
  std::string key() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      if (i >= s.size()) err("unterminated string");
      out.push_back(s[i++]);
    }
    expect('"');
    expect(':');
    return out;
  }
  std::int64_t integer() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    if (i == start) err("expected number");
    return static_cast<std::int64_t>(
        std::strtod(s.c_str() + start, nullptr));
  }
  std::vector<std::int64_t> intArray() {
    std::vector<std::int64_t> out;
    expect('[');
    if (consumeIf(']')) return out;
    do {
      out.push_back(integer());
    } while (consumeIf(','));
    expect(']');
    return out;
  }
  std::vector<std::vector<std::int64_t>> intMatrix() {
    std::vector<std::vector<std::int64_t>> out;
    expect('[');
    if (consumeIf(']')) return out;
    do {
      out.push_back(intArray());
    } while (consumeIf(','));
    expect(']');
    return out;
  }
  void skipValue() {
    const char c = peek();
    if (c == '[') {
      expect('[');
      if (consumeIf(']')) return;
      do {
        skipValue();
      } while (consumeIf(','));
      expect(']');
    } else if (c == '{') {
      expect('{');
      if (consumeIf('}')) return;
      do {
        key();
        skipValue();
      } while (consumeIf(','));
      expect('}');
    } else {
      integer();
    }
  }
};

}  // namespace

Snapshot takeSnapshot(const Registry& reg) {
  Snapshot snap;
  snap.nranks = reg.nranks();
  for (int c = 0; c < kNumCounters; ++c) {
    std::vector<std::int64_t> per(static_cast<std::size_t>(snap.nranks));
    for (int r = 0; r < snap.nranks; ++r) {
      per[static_cast<std::size_t>(r)] = reg.counter(r, Counter(c));
    }
    snap.counters[counterName(Counter(c))] = std::move(per);
  }
  for (int g = 0; g < kNumGauges; ++g) {
    std::vector<std::int64_t> per(static_cast<std::size_t>(snap.nranks));
    for (int r = 0; r < snap.nranks; ++r) {
      per[static_cast<std::size_t>(r)] = reg.gauge(r, Gauge(g));
    }
    snap.gauges[gaugeName(Gauge(g))] = std::move(per);
  }
  for (int h = 0; h < kNumHists; ++h) {
    std::vector<std::vector<std::int64_t>> per(
        static_cast<std::size_t>(snap.nranks));
    for (int r = 0; r < snap.nranks; ++r) {
      auto& row = per[static_cast<std::size_t>(r)];
      row.resize(kHistBuckets);
      for (int b = 0; b < kHistBuckets; ++b) {
        row[static_cast<std::size_t>(b)] = reg.histCount(r, Hist(h), b);
      }
    }
    snap.histograms[histName(Hist(h))] = std::move(per);
  }
  return snap;
}

void writeSnapshotJson(const Snapshot& snap, std::ostream& os) {
  os << "{\n  \"schema_version\": " << snap.schema_version
     << ",\n  \"nranks\": " << snap.nranks << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, per] : snap.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(os, name);
    std::int64_t total = 0;
    for (std::int64_t v : per) total += v;
    os << " {\"per_rank\": ";
    writeIntArray(os, per);
    os << ", \"total\": " << total << '}';
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, per] : snap.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(os, name);
    std::int64_t total = 0, mx = 0;
    for (std::int64_t v : per) {
      total += v;
      if (v > mx) mx = v;
    }
    os << " {\"per_rank\": ";
    writeIntArray(os, per);
    os << ", \"total\": " << total << ", \"max\": " << mx << '}';
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, per] : snap.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(os, name);
    os << " {\"bucket_lower_bounds\": [";
    for (int b = 0; b < kHistBuckets; ++b) {
      if (b) os << ',';
      os << histBucketLowerBound(b);
    }
    os << "], \"per_rank\": [";
    for (std::size_t r = 0; r < per.size(); ++r) {
      if (r) os << ',';
      writeIntArray(os, per[r]);
    }
    os << "], \"total\": ";
    std::vector<std::int64_t> total(kHistBuckets, 0);
    for (const auto& row : per) {
      for (std::size_t b = 0; b < row.size() && b < total.size(); ++b) {
        total[b] += row[b];
      }
    }
    writeIntArray(os, total);
    os << '}';
  }
  os << "\n  }\n}\n";
}

std::string snapshotJson(const Snapshot& snap) {
  std::ostringstream os;
  writeSnapshotJson(snap, os);
  return os.str();
}

bool writeSnapshotFile(const Registry& reg, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  writeSnapshotJson(takeSnapshot(reg), os);
  os.flush();
  return static_cast<bool>(os);
}

Snapshot parseSnapshotJson(const std::string& json) {
  Parser p{json};
  Snapshot snap;
  snap.schema_version = 0;
  p.expect('{');
  do {
    const std::string k = p.key();
    if (k == "schema_version") {
      snap.schema_version = static_cast<int>(p.integer());
      if (snap.schema_version != kSnapshotSchemaVersion) {
        p.err("unsupported schema_version " +
              std::to_string(snap.schema_version));
      }
    } else if (k == "nranks") {
      snap.nranks = static_cast<int>(p.integer());
    } else if (k == "counters" || k == "gauges") {
      auto& dst = (k == "counters") ? snap.counters : snap.gauges;
      p.expect('{');
      if (!p.consumeIf('}')) {
        do {
          const std::string name = p.key();
          p.expect('{');
          std::vector<std::int64_t> per;
          do {
            const std::string field = p.key();
            if (field == "per_rank") {
              per = p.intArray();
            } else {
              p.skipValue();
            }
          } while (p.consumeIf(','));
          p.expect('}');
          dst[name] = std::move(per);
        } while (p.consumeIf(','));
        p.expect('}');
      }
    } else if (k == "histograms") {
      p.expect('{');
      if (!p.consumeIf('}')) {
        do {
          const std::string name = p.key();
          p.expect('{');
          std::vector<std::vector<std::int64_t>> per;
          do {
            const std::string field = p.key();
            if (field == "per_rank") {
              per = p.intMatrix();
            } else {
              p.skipValue();
            }
          } while (p.consumeIf(','));
          p.expect('}');
          snap.histograms[name] = std::move(per);
        } while (p.consumeIf(','));
        p.expect('}');
      }
    } else {
      p.skipValue();
    }
  } while (p.consumeIf(','));
  p.expect('}');
  if (snap.schema_version != kSnapshotSchemaVersion) {
    throw std::runtime_error("metrics snapshot missing schema_version");
  }
  return snap;
}

}  // namespace msc::metrics
