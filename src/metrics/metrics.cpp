#include "metrics/metrics.hpp"

#include <cmath>

namespace msc::metrics {
namespace {

// Bucket 1 starts at 2^kMinExp; bucket b covers [2^(b-1+kMinExp),
// 2^(b+kMinExp)). With 31 finite buckets the top one opens at 2^6.
constexpr int kMinExp = -24;

}  // namespace

const char* counterName(Counter c) {
  switch (c) {
    case Counter::kGradCells: return "grad_cells";
    case Counter::kGradLowerStars: return "grad_lower_stars";
    case Counter::kGradPairs: return "grad_pairs";
    case Counter::kGradCriticals: return "grad_criticals";
    case Counter::kTraceSteps: return "trace_steps";
    case Counter::kTraceArcs: return "trace_arcs";
    case Counter::kTraceGeomCells: return "trace_geom_cells";
    case Counter::kSimplifyCancelled: return "simplify_cancelled";
    case Counter::kSimplifyArcsRemoved: return "simplify_arcs_removed";
    case Counter::kSimplifyArcsCreated: return "simplify_arcs_created";
    case Counter::kMergeNodesMerged: return "merge_nodes_merged";
    case Counter::kMergeNodesDeduped: return "merge_nodes_deduped";
    case Counter::kMergeArcsMerged: return "merge_arcs_merged";
    case Counter::kMergeArcsDeduped: return "merge_arcs_deduped";
    case Counter::kPackBytes: return "pack_bytes";
    case Counter::kCheckpointBytes: return "checkpoint_bytes";
    case Counter::kCheckpointPuts: return "checkpoint_puts";
    case Counter::kIntegrityVerified: return "integrity_verified";
    case Counter::kIntegrityFailed: return "integrity_failed";
    case Counter::kIntegrityHealed: return "integrity_healed";
  }
  return "unknown_counter";
}

const char* gaugeName(Gauge g) {
  switch (g) {
    case Gauge::kMemLiveBytes: return "mem_live_bytes";
    case Gauge::kMemPeakLiveBytes: return "mem_peak_live_bytes";
    case Gauge::kMemAllocBytes: return "mem_alloc_bytes";
    case Gauge::kMemAllocCount: return "mem_alloc_count";
  }
  return "unknown_gauge";
}

const char* histName(Hist h) {
  switch (h) {
    case Hist::kSimplifyPersistence: return "simplify_persistence";
    case Hist::kTracePathCells: return "trace_path_cells";
  }
  return "unknown_hist";
}

int histBucket(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN
  if (std::isinf(v)) return kHistBuckets - 1;  // ilogb(inf) is INT_MAX
  const int e = std::ilogb(v);  // floor(log2(v)) for finite v > 0
  const int b = e - kMinExp + 1;
  if (b < 1) return 1;
  if (b >= kHistBuckets) return kHistBuckets - 1;
  return b;
}

double histBucketLowerBound(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - 1 + kMinExp);
}

Registry::Registry(int nranks) {
  if (nranks < 1) nranks = 1;
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankSlot>());
  }
}

Registry::~Registry() = default;

void Registry::add(int rank, Counter c, std::int64_t delta) {
  ranks_[static_cast<std::size_t>(rank)]->counters[static_cast<std::size_t>(c)]
      .fetch_add(delta, std::memory_order_relaxed);
}

void Registry::set(int rank, Gauge g, std::int64_t value) {
  ranks_[static_cast<std::size_t>(rank)]->gauges[static_cast<std::size_t>(g)]
      .store(value, std::memory_order_relaxed);
}

void Registry::setMax(int rank, Gauge g, std::int64_t value) {
  auto& slot =
      ranks_[static_cast<std::size_t>(rank)]->gauges[static_cast<std::size_t>(g)];
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Registry::observe(int rank, Hist h, double value, std::int64_t count) {
  ranks_[static_cast<std::size_t>(rank)]
      ->hists[static_cast<std::size_t>(h)]
             [static_cast<std::size_t>(histBucket(value))]
      .fetch_add(count, std::memory_order_relaxed);
}

void Registry::observeBuckets(
    int rank, Hist h, const std::array<std::int64_t, kHistBuckets>& tally) {
  auto& row = ranks_[static_cast<std::size_t>(rank)]
                  ->hists[static_cast<std::size_t>(h)];
  for (int b = 0; b < kHistBuckets; ++b) {
    const std::int64_t n = tally[static_cast<std::size_t>(b)];
    if (n != 0) row[static_cast<std::size_t>(b)].fetch_add(
        n, std::memory_order_relaxed);
  }
}

std::int64_t Registry::counter(int rank, Counter c) const {
  return ranks_[static_cast<std::size_t>(rank)]
      ->counters[static_cast<std::size_t>(c)]
      .load(std::memory_order_relaxed);
}

std::int64_t Registry::counterTotal(Counter c) const {
  std::int64_t sum = 0;
  for (int r = 0; r < nranks(); ++r) sum += counter(r, c);
  return sum;
}

std::int64_t Registry::gauge(int rank, Gauge g) const {
  return ranks_[static_cast<std::size_t>(rank)]
      ->gauges[static_cast<std::size_t>(g)]
      .load(std::memory_order_relaxed);
}

std::int64_t Registry::gaugeTotal(Gauge g) const {
  std::int64_t sum = 0;
  for (int r = 0; r < nranks(); ++r) sum += gauge(r, g);
  return sum;
}

std::int64_t Registry::gaugeMax(Gauge g) const {
  std::int64_t mx = 0;
  for (int r = 0; r < nranks(); ++r) {
    const std::int64_t v = gauge(r, g);
    if (v > mx) mx = v;
  }
  return mx;
}

std::int64_t Registry::histCount(int rank, Hist h, int bucket) const {
  return ranks_[static_cast<std::size_t>(rank)]
      ->hists[static_cast<std::size_t>(h)][static_cast<std::size_t>(bucket)]
      .load(std::memory_order_relaxed);
}

std::int64_t Registry::histCountTotal(Hist h, int bucket) const {
  std::int64_t sum = 0;
  for (int r = 0; r < nranks(); ++r) sum += histCount(r, h, bucket);
  return sum;
}

void Registry::reset() {
  for (auto& slot : ranks_) {
    for (auto& a : slot->counters) a.store(0, std::memory_order_relaxed);
    for (auto& a : slot->gauges) a.store(0, std::memory_order_relaxed);
    for (auto& row : slot->hists) {
      for (auto& a : row) a.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace msc::metrics
