#pragma once
// msc::metrics -- kernel-grade work counters, memory gauges, and
// log-bucketed histograms.
//
// The registry answers the question msc::obs cannot: not "how long did
// the kernel take" but "how much work did it do" -- cells swept, pairs
// assigned, V-path steps walked, arcs cancelled, bytes packed. Time
// divided by work gives throughput, and work is deterministic for a
// fixed input, which is what makes an exact-equality perf gate
// possible (tools/msc_perfgate).
//
// House instrumentation contract (same as the tracer, the auditor and
// the causal recorder):
//   - attached as a non-owning pointer (PipelineConfig::metrics, or a
//     `metrics`/`metrics_rank` pair on a kernel options struct);
//   - when detached, instrumented code pays one predictable branch per
//     flush site -- kernels accumulate into stack-local tallies and
//     flush once per call, so the hot loops carry no atomics at all;
//   - recording never changes pipeline behaviour: output is
//     byte-identical with the registry on or off.
//
// Concurrency: every rank owns a cache-line-padded slot of relaxed
// atomics, so same-rank recording never contends and cross-rank
// flushes (a rank folding a peer's stats in during a merge round) are
// still exact. Reads are racy-but-atomic; call them between rounds or
// after the run for exact totals.

#include <atomic>
#include <cstdint>

#include <array>
#include <memory>
#include <vector>

#include "core/annotations.hpp"

namespace msc::metrics {

/// Monotone work counters. One enum value per instrumented quantity;
/// names (counterName) are the stable identifiers used by the JSON
/// snapshot and by BENCH_kernels.json, so renaming one is a schema
/// change.
enum class Counter : int {
  // gradient.cpp / lower_star.cpp
  kGradCells = 0,      ///< cells evaluated by the gradient kernels
  kGradLowerStars,     ///< vertices whose lower star was processed
  kGradPairs,          ///< discrete-gradient pairs assigned
  kGradCriticals,      ///< cells left critical
  // trace.cpp
  kTraceSteps,         ///< V-path steps taken (cells visited on paths)
  kTraceArcs,          ///< arcs emitted into the complex
  kTraceGeomCells,     ///< embedded geometry cells recorded on arcs
  // simplify.cpp
  kSimplifyCancelled,    ///< persistence pairs cancelled
  kSimplifyArcsRemoved,  ///< arcs removed by cancellations
  kSimplifyArcsCreated,  ///< arcs created by cancellations
  // merge/
  kMergeNodesMerged,   ///< nodes appended while gluing sub-complexes
  kMergeNodesDeduped,  ///< boundary nodes deduplicated instead
  kMergeArcsMerged,    ///< arcs appended while gluing
  kMergeArcsDeduped,   ///< duplicate arcs dropped while gluing
  // pipeline I/O
  kPackBytes,        ///< bytes serialized by io::pack for send/write
  kCheckpointBytes,  ///< bytes stored into the CheckpointStore
  kCheckpointPuts,   ///< checkpoint put() calls
  // integrity (msc::integrity, folded in by the pipeline drivers)
  kIntegrityVerified,  ///< frames/entries whose checksum passed
  kIntegrityFailed,    ///< detected corruptions (checksum mismatches)
  kIntegrityHealed,    ///< detected corruptions repaired in-run
};
inline constexpr int kNumCounters = 20;

/// Point-in-time values (sampled, not accumulated). Memory telemetry
/// lands here: the pipeline samples the tagging allocator at stage
/// boundaries, so gauges carry last-seen and peak values per rank.
enum class Gauge : int {
  kMemLiveBytes = 0,   ///< live par::Bytes heap bytes at last sample
  kMemPeakLiveBytes,   ///< high-water mark of live bytes (allocator-exact)
  kMemAllocBytes,      ///< cumulative bytes ever allocated (churn)
  kMemAllocCount,      ///< cumulative allocation calls
};
inline constexpr int kNumGauges = 4;

/// Log-bucketed distributions (power-of-two buckets, see histBucket).
enum class Hist : int {
  kSimplifyPersistence = 0,  ///< persistence of each cancelled pair
  kTracePathCells,           ///< embedded cells per emitted arc
};
inline constexpr int kNumHists = 2;
inline constexpr int kHistBuckets = 32;

const char* counterName(Counter c);
const char* gaugeName(Gauge g);
const char* histName(Hist h);

/// Bucket index for a histogram sample. Bucket 0 collects v <= 0;
/// bucket b in [1, 31] collects histBucketLowerBound(b) <= v <
/// histBucketLowerBound(b + 1), with the first and last buckets
/// absorbing under/overflow. Buckets are powers of two: bucket b
/// spans [2^(b-25), 2^(b-24)), so the range 2^-24 .. 2^6 is resolved
/// exactly -- wide enough for persistence values (fractions of field
/// range) and path lengths (cell counts) alike.
int histBucket(double v);

/// Inclusive lower bound of bucket b (0 for the v <= 0 bucket).
double histBucketLowerBound(int b);

/// Fixed-size registry: one padded slot of relaxed atomics per rank.
/// Any thread may record into any rank's slot (exactness is preserved
/// by the atomics); the padding only guarantees that the common case
/// -- each rank writing its own slot -- never false-shares.
class Registry {
 public:
  explicit Registry(int nranks);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  int nranks() const { return static_cast<int>(ranks_.size()); }

  void add(int rank, Counter c, std::int64_t delta);
  void set(int rank, Gauge g, std::int64_t value);
  /// Monotone max: keeps the larger of the stored and offered value.
  void setMax(int rank, Gauge g, std::int64_t value);
  void observe(int rank, Hist h, double value, std::int64_t count = 1);
  /// Bulk histogram flush: adds a whole per-bucket tally at once.
  void observeBuckets(int rank, Hist h,
                      const std::array<std::int64_t, kHistBuckets>& tally);

  std::int64_t counter(int rank, Counter c) const;
  std::int64_t counterTotal(Counter c) const;
  std::int64_t gauge(int rank, Gauge g) const;
  std::int64_t gaugeTotal(Gauge g) const;
  /// Max over ranks -- the right reduction for peaks.
  std::int64_t gaugeMax(Gauge g) const;
  std::int64_t histCount(int rank, Hist h, int bucket) const;
  std::int64_t histCountTotal(Hist h, int bucket) const;

  /// Reset every counter, gauge and histogram to zero (not
  /// thread-safe against concurrent recording; for bench reruns).
  void reset();

 private:
  struct alignas(64) RankSlot {
    std::array<std::atomic<std::int64_t>, kNumCounters> counters MSC_RELAXED_TALLY{};
    std::array<std::atomic<std::int64_t>, kNumGauges> gauges MSC_RELAXED_TALLY{};
    std::array<std::array<std::atomic<std::int64_t>, kHistBuckets>, kNumHists>
        hists MSC_RELAXED_TALLY{};
  };
  std::vector<std::unique_ptr<RankSlot>> ranks_;
};

/// Null-safe helpers so call sites read as one line and one branch.
inline void add(Registry* m, int rank, Counter c, std::int64_t delta) {
  if (m) m->add(rank, c, delta);
}
inline void set(Registry* m, int rank, Gauge g, std::int64_t value) {
  if (m) m->set(rank, g, value);
}
inline void setMax(Registry* m, int rank, Gauge g, std::int64_t value) {
  if (m) m->setMax(rank, g, value);
}
inline void observe(Registry* m, int rank, Hist h, double value,
                    std::int64_t count = 1) {
  if (m) m->observe(rank, h, value, count);
}

}  // namespace msc::metrics
