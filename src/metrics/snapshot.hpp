#pragma once
// Versioned JSON export of a metrics::Registry, plus a minimal parser
// for the same schema so tools (and the round-trip test) can read a
// snapshot back without a JSON dependency.
//
// Schema (kSnapshotSchemaVersion):
//   {
//     "schema_version": 1,
//     "nranks": N,
//     "counters":   { "<name>": {"per_rank": [..], "total": t}, ... },
//     "gauges":     { "<name>": {"per_rank": [..], "total": t, "max": m} },
//     "histograms": { "<name>": {"bucket_lower_bounds": [..],
//                                "per_rank": [[..], ..], "total": [..]} }
//   }
// Zero-valued counters/gauges are still emitted so consumers never
// have to distinguish "absent" from "zero".

#include <cstdint>

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace msc::metrics {

class Registry;

inline constexpr int kSnapshotSchemaVersion = 1;

/// Plain-data mirror of a Registry, keyed by the stable metric names.
struct Snapshot {
  int schema_version{kSnapshotSchemaVersion};
  int nranks{0};
  std::map<std::string, std::vector<std::int64_t>> counters;
  std::map<std::string, std::vector<std::int64_t>> gauges;
  /// histograms[name][rank][bucket]
  std::map<std::string, std::vector<std::vector<std::int64_t>>> histograms;

  bool operator==(const Snapshot& o) const {
    return schema_version == o.schema_version && nranks == o.nranks &&
           counters == o.counters && gauges == o.gauges &&
           histograms == o.histograms;
  }
};

/// Capture the registry's current values (racy-but-atomic reads; call
/// after the run for exact totals).
Snapshot takeSnapshot(const Registry& reg);

void writeSnapshotJson(const Snapshot& snap, std::ostream& os);
std::string snapshotJson(const Snapshot& snap);

/// Write straight to a file; returns false (and leaves errno) on I/O
/// failure.
bool writeSnapshotFile(const Registry& reg, const std::string& path);

/// Parse a snapshot produced by writeSnapshotJson. Throws
/// std::runtime_error on malformed input or a schema_version this
/// build does not understand.
Snapshot parseSnapshotJson(const std::string& json);

}  // namespace msc::metrics
