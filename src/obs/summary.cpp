#include "obs/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace msc::obs {

namespace {

struct StageRow {
  std::string name;
  double first_ts = 1e300;                 // for stable, schedule-ordered rows
  std::vector<double> seconds_per_rank;    // summed span durations
  std::vector<std::int64_t> count_per_rank;
};

std::string fmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4f", s);
  return buf;
}

}  // namespace

void writeSummary(const Tracer& t, std::ostream& os, const SummaryOptions& opts) {
  const int n = t.nranks();

  // --- Aggregate spans by name.
  std::map<std::string, StageRow> by_name;
  for (int r = 0; r < n; ++r) {
    for (const Event& e : t.events(r)) {
      if (e.kind != EventKind::kSpan) continue;
      if (!opts.include_nested && e.depth > 0) continue;
      StageRow& row = by_name[e.name];
      if (row.seconds_per_rank.empty()) {
        row.name = e.name;
        row.seconds_per_rank.assign(static_cast<std::size_t>(n), 0.0);
        row.count_per_rank.assign(static_cast<std::size_t>(n), 0);
      }
      row.first_ts = std::min(row.first_ts, e.ts);
      row.seconds_per_rank[static_cast<std::size_t>(r)] += e.dur;
      row.count_per_rank[static_cast<std::size_t>(r)] += 1;
    }
  }
  std::vector<const StageRow*> rows;
  rows.reserve(by_name.size());
  for (const auto& [name, row] : by_name) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(),
            [](const StageRow* a, const StageRow* b) { return a->first_ts < b->first_ts; });

  const bool wide = n <= opts.max_rank_columns;
  os << "== per-rank stage times (seconds" << (wide ? "" : "; aggregated over ranks")
     << ") ==\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-24s", "stage");
    os << buf;
  }
  if (wide) {
    for (int r = 0; r < n; ++r) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "    rank%-3d", r);
      os << buf;
    }
  } else {
    os << "       min        mean         max   slowest";
  }
  os << '\n';

  for (const StageRow* row : rows) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-24s", row->name.c_str());
    os << buf;
    if (wide) {
      for (int r = 0; r < n; ++r)
        os << ' ' << fmtSeconds(row->seconds_per_rank[static_cast<std::size_t>(r)]);
    } else {
      double mn = 1e300, mx = -1e300, sum = 0;
      int slowest = 0;
      for (int r = 0; r < n; ++r) {
        const double s = row->seconds_per_rank[static_cast<std::size_t>(r)];
        sum += s;
        mn = std::min(mn, s);
        if (s > mx) {
          mx = s;
          slowest = r;
        }
      }
      os << ' ' << fmtSeconds(mn) << ' ' << fmtSeconds(sum / n) << ' ' << fmtSeconds(mx);
      std::snprintf(buf, sizeof(buf), " %9d", slowest);
      os << buf;
    }
    os << '\n';
  }

  // --- Counter table.
  os << "\n== counters ==\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-24s", "counter");
    os << buf;
  }
  if (wide) {
    for (int r = 0; r < n; ++r) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "    rank%-3d", r);
      os << buf;
    }
    os << "      total";
  } else {
    os << "       min        mean         max     total";
  }
  os << '\n';

  std::vector<CounterSet> per_rank;
  per_rank.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) per_rank.push_back(t.counters(r));
  for (int ci = 0; ci < kNumCounters; ++ci) {
    const auto c = static_cast<Counter>(ci);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-24s", counterName(c));
    os << buf;
    const bool secs = counterIsSeconds(c);
    const auto fmt = [&](double v) -> std::string {
      char b[32];
      if (secs) std::snprintf(b, sizeof(b), "%10.4f", v);
      else std::snprintf(b, sizeof(b), "%10.0f", v);
      return b;
    };
    double total = 0;
    if (wide) {
      for (int r = 0; r < n; ++r) {
        const double v = per_rank[static_cast<std::size_t>(r)][c];
        total += v;
        os << ' ' << fmt(v);
      }
      os << ' ' << fmt(total);
    } else {
      double mn = 1e300, mx = -1e300;
      for (int r = 0; r < n; ++r) {
        const double v = per_rank[static_cast<std::size_t>(r)][c];
        total += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      os << ' ' << fmt(mn) << ' ' << fmt(total / n) << ' ' << fmt(mx) << ' ' << fmt(total);
    }
    os << '\n';
  }

  // --- Per-span-name latency quantiles (all ranks and depths pooled).
  os << "\n== span latency quantiles (seconds) ==\n"
     << spanDurationTable(spanDurationStats(t));
}

std::string summaryText(const Tracer& t, const SummaryOptions& opts) {
  std::ostringstream os;
  writeSummary(t, os, opts);
  return os.str();
}

namespace {

/// Nearest-rank percentile of an ascending-sorted duration vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

std::vector<SpanDurationStats> spanDurationStats(const Tracer& t) {
  std::map<std::string, std::vector<double>> durs;
  for (int r = 0; r < t.nranks(); ++r)
    for (const Event& e : t.events(r))
      if (e.kind == EventKind::kSpan) durs[e.name].push_back(e.dur);
  std::vector<SpanDurationStats> out;
  out.reserve(durs.size());
  for (auto& [name, d] : durs) {
    std::sort(d.begin(), d.end());
    SpanDurationStats s;
    s.name = name;
    s.count = static_cast<std::int64_t>(d.size());
    s.p50_s = percentile(d, 50);
    s.p95_s = percentile(d, 95);
    s.max_s = d.back();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanDurationStats& a, const SpanDurationStats& b) {
              if (a.max_s != b.max_s) return a.max_s > b.max_s;
              return a.name < b.name;
            });
  return out;
}

std::string spanDurationTable(const std::vector<SpanDurationStats>& stats,
                              std::size_t top_n) {
  std::ostringstream os;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-24s %8s %10s %10s %10s\n", "span", "count",
                "p50", "p95", "max");
  os << buf;
  const std::size_t limit =
      top_n == 0 ? stats.size() : std::min(top_n, stats.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const SpanDurationStats& s = stats[i];
    std::snprintf(buf, sizeof(buf), "%-24s %8lld %10.4f %10.4f %10.4f\n",
                  s.name.c_str(), static_cast<long long>(s.count), s.p50_s,
                  s.p95_s, s.max_s);
    os << buf;
  }
  return os.str();
}

}  // namespace msc::obs
