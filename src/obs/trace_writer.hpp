/// \file trace_writer.hpp
/// Shared low-level writer for Chrome trace-event JSON. Every event
/// the repo drops into a trace file -- obs spans, causal flow arrows,
/// fixed and named metrics counter tracks -- is serialized through
/// this one class, so escaping and field layout are implemented (and
/// tested) exactly once instead of per event kind.
///
/// The writer streams the "JSON Object Format"
/// ({"traceEvents": [...]}): call begin(), any number of event
/// methods, then end(). Timestamps are microseconds. The caller picks
/// the track (`tid`); `pid` is always 0 (one process).
#pragma once

#include <cstdint>

#include <array>
#include <iosfwd>
#include <string>

namespace msc::obs {

class TraceEventWriter {
 public:
  /// Up to four numeric args rendered into the event's "args" object
  /// (null keys are skipped), mirroring obs::Event's inline storage.
  struct Args {
    std::array<const char*, 4> keys{nullptr, nullptr, nullptr, nullptr};
    std::array<std::int64_t, 4> vals{0, 0, 0, 0};
  };

  explicit TraceEventWriter(std::ostream& os) : os_(os) {}

  void begin();
  void end();

  // Metadata ("M") events naming the process and the rank tracks.
  void processName(const std::string& name);
  void threadName(int tid, const std::string& name);
  void threadSortIndex(int tid, int index);

  /// Complete ("X") span.
  void complete(int tid, const std::string& name, const char* cat, double ts_us,
                double dur_us, const Args& args);
  /// Instant ("i") marker, thread-scoped.
  void instant(int tid, const std::string& name, double ts_us);
  /// Counter ("C") sample. Counter tracks are keyed by (pid, name),
  /// so callers wanting per-rank tracks must bake the rank into the
  /// name (obs suffixes " (rank N)").
  void counter(int tid, const std::string& name, double ts_us, double value);
  /// Flow half: start ("s") or finish ("f", with "bp":"e" so the
  /// viewer binds the arrow to the enclosing slice).
  void flow(bool start, int tid, const std::string& name, const char* cat,
            std::uint64_t id, double ts_us, const Args& args);

  /// The one JSON string escaper (quote, backslash, control chars as
  /// \uXXXX). Public so tests can pin its behaviour directly.
  static void writeEscaped(std::ostream& os, const std::string& s);
  static std::string escaped(const std::string& s);

 private:
  void sep();
  void writeArgs(const Args& args);

  std::ostream& os_;
  bool first_{true};
};

}  // namespace msc::obs
