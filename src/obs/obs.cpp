#include "obs/obs.hpp"

#include <cassert>

#include "prof/prof.hpp"

namespace msc::obs {

const char* counterName(Counter c) {
  switch (c) {
    case Counter::kMessagesSent: return "messages_sent";
    case Counter::kMessagesReceived: return "messages_received";
    case Counter::kBytesSent: return "bytes_sent";
    case Counter::kBytesReceived: return "bytes_received";
    case Counter::kMailboxWaitSeconds: return "mailbox_wait_s";
    case Counter::kBarrierWaitSeconds: return "barrier_wait_s";
    case Counter::kGlueSeconds: return "glue_s";
    case Counter::kRecvRetries: return "recv_retries";
    case Counter::kRecvTimeouts: return "recv_timeouts";
    case Counter::kRespawns: return "respawns";
    case Counter::kRoundReplays: return "round_replays";
  }
  return "unknown";
}

bool counterIsSeconds(Counter c) {
  switch (c) {
    case Counter::kMailboxWaitSeconds:
    case Counter::kBarrierWaitSeconds:
    case Counter::kGlueSeconds:
      return true;
    default:
      return false;
  }
}

Tracer::Tracer(int nranks) : epoch_(std::chrono::steady_clock::now()) {
  assert(nranks >= 1);
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) ranks_.push_back(std::make_unique<RankLog>());
}

Tracer::~Tracer() = default;

void Tracer::record(int rank, Event e) {
  RankLog& log = *ranks_[static_cast<std::size_t>(rank)];
  const std::lock_guard lock(log.mu);
  log.events.push_back(std::move(e));
}

Tracer::Span::Span(Tracer* t, int rank, std::string name, const char* cat)
    : tracer_(t), rank_(rank), name_(std::move(name)), cat_(cat) {
  RankLog& log = *t->ranks_[static_cast<std::size_t>(rank)];
  {
    const std::lock_guard lock(log.mu);
    ++log.depth;
  }
  // Mirror the span onto the sampling profiler's stack for the thread
  // that opened it (live spans only -- spanAt() reconstructions never
  // existed as open frames, so they never mirror).
  const prof::Binding& b = prof::threadBinding();
  if (b.profiler) {
    prof_ = b.profiler;
    prof_rank_ = b.rank;
    prof_->push(prof_rank_, prof_->intern(name_));
  }
  start_ = t->now();
}

void Tracer::Span::end() {
  if (!tracer_) return;
  if (prof_) {
    prof_->pop(prof_rank_);
    prof_ = nullptr;
  }
  const double stop = tracer_->now();
  RankLog& log = *tracer_->ranks_[static_cast<std::size_t>(rank_)];
  Event e;
  e.kind = EventKind::kSpan;
  e.name = std::move(name_);
  e.cat = cat_;
  e.ts = start_;
  e.dur = stop - start_;
  e.arg_keys = arg_keys_;
  e.arg_vals = arg_vals_;
  {
    const std::lock_guard lock(log.mu);
    e.depth = --log.depth;
    log.events.push_back(std::move(e));
  }
  tracer_ = nullptr;
}

Tracer::Span Tracer::span(int rank, std::string name, const char* cat) {
  return Span(this, rank, std::move(name), cat);
}

void Tracer::instant(int rank, std::string name, const char* cat) {
  Event e;
  e.kind = EventKind::kInstant;
  e.name = std::move(name);
  e.cat = cat;
  e.ts = now();
  record(rank, std::move(e));
}

void Tracer::count(int rank, Counter c, double delta) { countAt(rank, c, now(), delta); }

void Tracer::countAt(int rank, Counter c, double ts, double delta) {
  RankLog& log = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kCounter;
  e.name = counterName(c);
  e.cat = "counter";
  e.ts = ts;
  const std::lock_guard lock(log.mu);
  log.counters.v[static_cast<std::size_t>(c)] += delta;
  e.value = log.counters.v[static_cast<std::size_t>(c)];
  log.events.push_back(std::move(e));
}

void Tracer::countNamedAt(int rank, std::string name, double ts, double value) {
  RankLog& log = *ranks_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = EventKind::kCounter;
  e.name = std::move(name);
  e.cat = "counter";
  e.ts = ts;
  e.value = value;
  const std::lock_guard lock(log.mu);
  log.events.push_back(std::move(e));
}

namespace {

obs::Event flowEvent(EventKind kind, std::uint64_t id, double ts, int src, int dst,
                     int tag, std::int64_t bytes) {
  Event e;
  e.kind = kind;
  e.name = "msg";
  e.cat = "flow";
  e.ts = ts;
  e.flow_id = id;
  e.arg_keys = {"src", "dst", "tag", "bytes"};
  e.arg_vals = {src, dst, tag, bytes};
  return e;
}

}  // namespace

void Tracer::flowStartAt(int rank, std::uint64_t id, double ts, int src, int dst, int tag,
                         std::int64_t bytes) {
  record(rank, flowEvent(EventKind::kFlowStart, id, ts, src, dst, tag, bytes));
}

void Tracer::flowFinishAt(int rank, std::uint64_t id, double ts, int src, int dst,
                          int tag, std::int64_t bytes) {
  record(rank, flowEvent(EventKind::kFlowFinish, id, ts, src, dst, tag, bytes));
}

void Tracer::spanAt(int rank, std::string name, double ts, double dur, const char* cat,
                    const char* arg_key, std::int64_t arg_val) {
  Event e;
  e.kind = EventKind::kSpan;
  e.name = std::move(name);
  e.cat = cat;
  e.ts = ts;
  e.dur = dur;
  if (arg_key) {
    e.arg_keys[0] = arg_key;
    e.arg_vals[0] = arg_val;
  }
  record(rank, std::move(e));
}

CounterSet Tracer::counters(int rank) const {
  const RankLog& log = *ranks_[static_cast<std::size_t>(rank)];
  const std::lock_guard lock(log.mu);
  return log.counters;
}

std::vector<Event> Tracer::events(int rank) const {
  const RankLog& log = *ranks_[static_cast<std::size_t>(rank)];
  const std::lock_guard lock(log.mu);
  return log.events;
}

CounterSet Tracer::totals() const {
  CounterSet out;
  for (const auto& log : ranks_) {
    const std::lock_guard lock(log->mu);
    for (std::size_t i = 0; i < out.v.size(); ++i) out.v[i] += log->counters.v[i];
  }
  return out;
}

}  // namespace msc::obs
