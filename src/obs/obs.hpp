/// \file obs.hpp
/// Observability substrate: a low-overhead, thread-safe event
/// recorder with RAII spans, monotonic timestamps, and named per-rank
/// counters. The paper's evaluation attributes wall-clock to stages
/// and to the slowest rank inside each barrier-delimited stage; this
/// module records exactly that -- per-rank spans for every pipeline
/// stage and comm operation, plus counters for messages, payload
/// bytes and blocked time -- so both the threaded driver and the
/// simulated 1k-rank schedules can be inspected in one viewer.
///
/// Ownership/overhead contract: a `Tracer` is created by the caller
/// and passed around as a non-owning pointer; every instrumentation
/// site is gated on that pointer being non-null, so the default-off
/// path costs one predictable branch and touches no shared state.
/// When on, each rank writes only to its own cache-line-padded slot,
/// so recording never contends across ranks.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/annotations.hpp"

namespace msc::prof {
class Profiler;
}

namespace msc::obs {

/// Named per-rank counters. Values are doubles: time counters are
/// seconds, the rest are exact integers (counts fit in the 2^53
/// integer range of a double by a wide margin).
enum class Counter : int {
  kMessagesSent = 0,
  kMessagesReceived,
  kBytesSent,      ///< payload bytes handed to send()
  kBytesReceived,  ///< payload bytes returned by recv()
  kMailboxWaitSeconds,  ///< blocked inside recv() waiting for a match
  kBarrierWaitSeconds,  ///< blocked inside barrier()
  kGlueSeconds,         ///< merge-group glue + re-simplify at roots
  kRecvRetries,         ///< empty wakeups inside deadline-bounded tryRecv()
  kRecvTimeouts,        ///< tryRecv() deadlines that expired without a message
  kRespawns,            ///< rank deaths survived by the respawn supervisor
  kRoundReplays,        ///< merge-round attempts rolled back and re-executed
};
inline constexpr int kNumCounters = 11;

const char* counterName(Counter c);

/// True for counters measured in seconds (affects summary formatting).
bool counterIsSeconds(Counter c);

struct CounterSet {
  std::array<double, kNumCounters> v{};
  double operator[](Counter c) const { return v[static_cast<std::size_t>(c)]; }
};

/// kFlowStart/kFlowFinish are Chrome-trace flow events ("s"/"f"):
/// one started on the sender inside its send span, finished on the
/// receiver inside its recv span, bound by `flow_id` -- the viewer
/// renders them as cross-rank message arrows.
enum class EventKind { kSpan, kInstant, kCounter, kFlowStart, kFlowFinish };

/// One recorded event. Spans carry [ts, ts+dur]; counter events are
/// cumulative samples of the named counter at `ts`.
struct Event {
  EventKind kind{EventKind::kSpan};
  std::string name;
  const char* cat = "";
  double ts{0};     ///< seconds since the tracer's epoch
  double dur{0};    ///< spans only
  double value{0};  ///< counter samples only (cumulative)
  int depth{0};     ///< span nesting depth at record time (0 = top level)
  std::uint64_t flow_id{0};  ///< flow events only: the message id
  /// Up to four numeric args surfaced in the trace viewer.
  std::array<const char*, 4> arg_keys{nullptr, nullptr, nullptr, nullptr};
  std::array<std::int64_t, 4> arg_vals{0, 0, 0, 0};
};

/// Thread-safe per-rank event recorder. One instance spans one
/// parallel execution; rank indices must be in [0, nranks).
class Tracer {
 public:
  explicit Tracer(int nranks);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  int nranks() const { return static_cast<int>(ranks_.size()); }

  /// Monotonic seconds since this tracer was constructed.
  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  }

  /// RAII span: records a kSpan event on destruction (or end()).
  /// A default-constructed span is inert, so call sites can write
  ///   auto s = tracer ? tracer->span(...) : obs::Tracer::Span{};
  /// or use the obs::span() helper below.
  class Span {
   public:
    Span() = default;
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept {
      end();
      tracer_ = o.tracer_;
      rank_ = o.rank_;
      name_ = std::move(o.name_);
      cat_ = o.cat_;
      start_ = o.start_;
      nargs_ = o.nargs_;
      arg_keys_ = o.arg_keys_;
      arg_vals_ = o.arg_vals_;
      prof_ = o.prof_;
      prof_rank_ = o.prof_rank_;
      o.tracer_ = nullptr;
      o.prof_ = nullptr;
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Attach a numeric argument (at most four are kept).
    Span& arg(const char* key, std::int64_t value) {
      if (tracer_ && nargs_ < 4) {
        arg_keys_[static_cast<std::size_t>(nargs_)] = key;
        arg_vals_[static_cast<std::size_t>(nargs_)] = value;
        ++nargs_;
      }
      return *this;
    }

    /// End the span now instead of at scope exit. Idempotent.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* t, int rank, std::string name, const char* cat);
    Tracer* tracer_ = nullptr;
    int rank_ = 0;
    std::string name_;
    const char* cat_ = "";
    double start_ = 0;
    /// Mirror frame on the sampling profiler's span stack (set iff a
    /// prof::ThreadBind was active when the span opened). The span
    /// pops it in end() even if it was moved across scopes.
    prof::Profiler* prof_ = nullptr;
    int prof_rank_ = 0;
    int nargs_ = 0;
    std::array<const char*, 4> arg_keys_{nullptr, nullptr, nullptr, nullptr};
    std::array<std::int64_t, 4> arg_vals_{0, 0, 0, 0};
  };

  /// Open a span on `rank`'s track, closed when the returned object
  /// is destroyed.
  Span span(int rank, std::string name, const char* cat = "");

  /// Record a zero-duration marker.
  void instant(int rank, std::string name, const char* cat = "");

  /// Add `delta` to a counter and record a cumulative sample event.
  void count(int rank, Counter c, double delta);

  /// Record a span with explicit timestamps (seconds since epoch).
  /// Used by the simulated driver to emit reconstructed schedules as
  /// synthetic traces.
  void spanAt(int rank, std::string name, double ts, double dur, const char* cat = "",
              const char* arg_key = nullptr, std::int64_t arg_val = 0);

  /// Record a cumulative counter sample with an explicit timestamp
  /// (also bumps the counter total by `delta`).
  void countAt(int rank, Counter c, double ts, double delta);

  /// Record a sample on an ad-hoc named counter track. Unlike the
  /// fixed Counter enum these are absolute samples, not cumulative
  /// deltas: the pipeline uses them to drop metrics values (work
  /// totals, live bytes) onto the trace at stage boundaries, so
  /// Perfetto shows throughput and memory curves under the spans.
  void countNamed(int rank, std::string name, double value) {
    countNamedAt(rank, std::move(name), now(), value);
  }
  void countNamedAt(int rank, std::string name, double ts, double value);

  /// Flow events: the start half records on the sender's track, the
  /// finish half on the receiver's, both named "msg" in category
  /// "flow" and bound by `id` (the causal message id). Emit each half
  /// while the enclosing comm span is still open so the viewer can
  /// anchor the arrow to a slice. Args carry src/dst/tag/bytes.
  void flowStart(int rank, std::uint64_t id, int src, int dst, int tag,
                 std::int64_t bytes) {
    flowStartAt(rank, id, now(), src, dst, tag, bytes);
  }
  void flowFinish(int rank, std::uint64_t id, int src, int dst, int tag,
                  std::int64_t bytes) {
    flowFinishAt(rank, id, now(), src, dst, tag, bytes);
  }
  /// Explicit-timestamp variants for synthesized (simnet) schedules.
  void flowStartAt(int rank, std::uint64_t id, double ts, int src, int dst, int tag,
                   std::int64_t bytes);
  void flowFinishAt(int rank, std::uint64_t id, double ts, int src, int dst, int tag,
                    std::int64_t bytes);

  // --- Read side (call after the instrumented run completes; safe
  // concurrently with recording but snapshots under the rank lock).
  CounterSet counters(int rank) const;
  std::vector<Event> events(int rank) const;
  /// Counter totals summed over all ranks.
  CounterSet totals() const;

 private:
  /// Per-rank slot, padded so concurrent ranks never share a line.
  struct alignas(64) RankLog {
    mutable std::mutex mu;
    std::vector<Event> events MSC_GUARDED_BY(mu);
    CounterSet counters MSC_GUARDED_BY(mu);
    int depth MSC_GUARDED_BY(mu) = 0;  ///< currently open spans
  };

  void record(int rank, Event e);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<RankLog>> ranks_;
};

/// Null-safe helpers: the idiomatic call sites for optionally-traced
/// code. All are no-ops (and allocate nothing) when `t` is null.
inline Tracer::Span span(Tracer* t, int rank, std::string name, const char* cat = "") {
  return t ? t->span(rank, std::move(name), cat) : Tracer::Span{};
}
inline void count(Tracer* t, int rank, Counter c, double delta) {
  if (t) t->count(rank, c, delta);
}

}  // namespace msc::obs
