#include "obs/trace_writer.hpp"

#include <cstdio>

#include <ostream>
#include <sstream>

namespace msc::obs {

namespace {

void number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

void TraceEventWriter::writeEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string TraceEventWriter::escaped(const std::string& s) {
  std::ostringstream os;
  writeEscaped(os, s);
  return os.str();
}

void TraceEventWriter::begin() {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  first_ = true;
}

void TraceEventWriter::end() { os_ << "\n]}\n"; }

void TraceEventWriter::sep() {
  if (!first_) os_ << ",\n";
  first_ = false;
}

void TraceEventWriter::writeArgs(const Args& args) {
  os_ << ",\"args\":{";
  bool first = true;
  for (std::size_t i = 0; i < args.keys.size(); ++i) {
    if (!args.keys[i]) continue;
    if (!first) os_ << ',';
    first = false;
    writeEscaped(os_, args.keys[i]);
    os_ << ':' << args.vals[i];
  }
  os_ << '}';
}

void TraceEventWriter::processName(const std::string& name) {
  sep();
  os_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":";
  writeEscaped(os_, name);
  os_ << "}}";
}

void TraceEventWriter::threadName(int tid, const std::string& name) {
  sep();
  os_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << tid
      << ",\"args\":{\"name\":";
  writeEscaped(os_, name);
  os_ << "}}";
}

void TraceEventWriter::threadSortIndex(int tid, int index) {
  sep();
  os_ << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":" << tid
      << ",\"args\":{\"sort_index\":" << index << "}}";
}

void TraceEventWriter::complete(int tid, const std::string& name, const char* cat,
                                double ts_us, double dur_us, const Args& args) {
  sep();
  os_ << "{\"ph\":\"X\",\"name\":";
  writeEscaped(os_, name);
  os_ << ",\"cat\":";
  writeEscaped(os_, (cat && *cat) ? cat : "default");
  os_ << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
  number(os_, ts_us);
  os_ << ",\"dur\":";
  number(os_, dur_us);
  writeArgs(args);
  os_ << '}';
}

void TraceEventWriter::instant(int tid, const std::string& name, double ts_us) {
  sep();
  os_ << "{\"ph\":\"i\",\"name\":";
  writeEscaped(os_, name);
  os_ << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
  number(os_, ts_us);
  os_ << ",\"s\":\"t\"}";
}

void TraceEventWriter::counter(int tid, const std::string& name, double ts_us,
                               double value) {
  sep();
  os_ << "{\"ph\":\"C\",\"name\":";
  writeEscaped(os_, name);
  os_ << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
  number(os_, ts_us);
  os_ << ",\"args\":{\"value\":";
  number(os_, value);
  os_ << "}}";
}

void TraceEventWriter::flow(bool start, int tid, const std::string& name,
                            const char* cat, std::uint64_t id, double ts_us,
                            const Args& args) {
  sep();
  os_ << "{\"ph\":\"" << (start ? 's' : 'f') << '"';
  if (!start) os_ << ",\"bp\":\"e\"";
  os_ << ",\"name\":";
  writeEscaped(os_, name);
  os_ << ",\"cat\":";
  writeEscaped(os_, (cat && *cat) ? cat : "flow");
  os_ << ",\"id\":" << id << ",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
  number(os_, ts_us);
  writeArgs(args);
  os_ << '}';
}

}  // namespace msc::obs
