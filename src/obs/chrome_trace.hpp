/// \file chrome_trace.hpp
/// Chrome trace-event JSON exporter: serializes a Tracer's recorded
/// events into the format accepted by Perfetto / chrome://tracing
/// (the "JSON Object Format": {"traceEvents": [...]}). One thread
/// track (`tid`) per rank under a single process (`pid` 0); spans
/// become complete ("X") events, counters become cumulative counter
/// ("C") samples, instants become "i" events. Timestamps are
/// microseconds since the tracer's epoch.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"

namespace msc::obs {

/// Serialize `t` as Chrome trace-event JSON.
void writeChromeTrace(const Tracer& t, std::ostream& os,
                      const std::string& process_name = "msc");

/// Convenience: serialize to a string (mainly for tests).
std::string chromeTraceJson(const Tracer& t, const std::string& process_name = "msc");

/// Write to `path`; returns false (and reports nothing else) if the
/// file cannot be opened.
bool writeChromeTraceFile(const Tracer& t, const std::string& path,
                          const std::string& process_name = "msc");

}  // namespace msc::obs
