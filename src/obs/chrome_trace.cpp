#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace msc::obs {

namespace {

/// JSON string escaping (control chars, quote, backslash).
void escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

constexpr double kUsPerSecond = 1e6;

}  // namespace

void writeChromeTrace(const Tracer& t, std::ostream& os, const std::string& process_name) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process / thread naming metadata so the viewer shows "rank N"
  // tracks in rank order.
  sep();
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{\"name\":";
  escaped(os, process_name);
  os << "}}";
  for (int r = 0; r < t.nranks(); ++r) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"sort_index\":" << r << "}}";
  }

  for (int r = 0; r < t.nranks(); ++r) {
    for (const Event& e : t.events(r)) {
      sep();
      switch (e.kind) {
        case EventKind::kSpan: {
          os << "{\"ph\":\"X\",\"name\":";
          escaped(os, e.name);
          os << ",\"cat\":";
          escaped(os, *e.cat ? e.cat : "default");
          os << ",\"pid\":0,\"tid\":" << r << ",\"ts\":";
          number(os, e.ts * kUsPerSecond);
          os << ",\"dur\":";
          number(os, e.dur * kUsPerSecond);
          os << ",\"args\":{";
          bool afirst = true;
          for (std::size_t i = 0; i < e.arg_keys.size(); ++i) {
            if (!e.arg_keys[i]) continue;
            if (!afirst) os << ',';
            afirst = false;
            escaped(os, e.arg_keys[i]);
            os << ':' << e.arg_vals[i];
          }
          os << "}}";
          break;
        }
        case EventKind::kInstant: {
          os << "{\"ph\":\"i\",\"name\":";
          escaped(os, e.name);
          os << ",\"pid\":0,\"tid\":" << r << ",\"ts\":";
          number(os, e.ts * kUsPerSecond);
          os << ",\"s\":\"t\"}";
          break;
        }
        case EventKind::kFlowStart:
        case EventKind::kFlowFinish: {
          // Flow halves bind by (name, cat, id); "bp":"e" attaches
          // the finish to the enclosing slice at its timestamp.
          os << "{\"ph\":\"" << (e.kind == EventKind::kFlowStart ? 's' : 'f') << '"';
          if (e.kind == EventKind::kFlowFinish) os << ",\"bp\":\"e\"";
          os << ",\"name\":";
          escaped(os, e.name);
          os << ",\"cat\":";
          escaped(os, *e.cat ? e.cat : "flow");
          os << ",\"id\":" << e.flow_id << ",\"pid\":0,\"tid\":" << r << ",\"ts\":";
          number(os, e.ts * kUsPerSecond);
          os << ",\"args\":{";
          bool ffirst = true;
          for (std::size_t i = 0; i < e.arg_keys.size(); ++i) {
            if (!e.arg_keys[i]) continue;
            if (!ffirst) os << ',';
            ffirst = false;
            escaped(os, e.arg_keys[i]);
            os << ':' << e.arg_vals[i];
          }
          os << "}}";
          break;
        }
        case EventKind::kCounter: {
          // Counter tracks are keyed by (pid, name); suffix the rank
          // so each rank gets its own track.
          os << "{\"ph\":\"C\",\"name\":";
          escaped(os, e.name + " (rank " + std::to_string(r) + ")");
          os << ",\"pid\":0,\"tid\":" << r << ",\"ts\":";
          number(os, e.ts * kUsPerSecond);
          os << ",\"args\":{\"value\":";
          number(os, e.value);
          os << "}}";
          break;
        }
      }
    }
  }
  os << "\n]}\n";
}

std::string chromeTraceJson(const Tracer& t, const std::string& process_name) {
  std::ostringstream os;
  writeChromeTrace(t, os, process_name);
  return os.str();
}

bool writeChromeTraceFile(const Tracer& t, const std::string& path,
                          const std::string& process_name) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  writeChromeTrace(t, f, process_name);
  return static_cast<bool>(f);
}

}  // namespace msc::obs
