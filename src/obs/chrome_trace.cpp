#include "obs/chrome_trace.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/trace_writer.hpp"

namespace msc::obs {

namespace {

constexpr double kUsPerSecond = 1e6;

TraceEventWriter::Args eventArgs(const Event& e) {
  TraceEventWriter::Args a;
  a.keys = e.arg_keys;
  a.vals = e.arg_vals;
  return a;
}

}  // namespace

void writeChromeTrace(const Tracer& t, std::ostream& os, const std::string& process_name) {
  TraceEventWriter w(os);
  w.begin();

  // Process / thread naming metadata so the viewer shows "rank N"
  // tracks in rank order.
  w.processName(process_name);
  for (int r = 0; r < t.nranks(); ++r) {
    w.threadName(r, "rank " + std::to_string(r));
    w.threadSortIndex(r, r);
  }

  for (int r = 0; r < t.nranks(); ++r) {
    for (const Event& e : t.events(r)) {
      switch (e.kind) {
        case EventKind::kSpan:
          w.complete(r, e.name, e.cat, e.ts * kUsPerSecond, e.dur * kUsPerSecond,
                     eventArgs(e));
          break;
        case EventKind::kInstant:
          w.instant(r, e.name, e.ts * kUsPerSecond);
          break;
        case EventKind::kFlowStart:
        case EventKind::kFlowFinish:
          // Flow halves bind by (name, cat, id); the writer adds
          // "bp":"e" on the finish so the viewer attaches it to the
          // enclosing slice.
          w.flow(e.kind == EventKind::kFlowStart, r, e.name, e.cat, e.flow_id,
                 e.ts * kUsPerSecond, eventArgs(e));
          break;
        case EventKind::kCounter:
          // Counter tracks are keyed by (pid, name); suffix the rank
          // so each rank gets its own track.
          w.counter(r, e.name + " (rank " + std::to_string(r) + ")",
                    e.ts * kUsPerSecond, e.value);
          break;
      }
    }
  }
  w.end();
}

std::string chromeTraceJson(const Tracer& t, const std::string& process_name) {
  std::ostringstream os;
  writeChromeTrace(t, os, process_name);
  return os.str();
}

bool writeChromeTraceFile(const Tracer& t, const std::string& path,
                          const std::string& process_name) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  writeChromeTrace(t, f, process_name);
  return static_cast<bool>(f);
}

}  // namespace msc::obs
