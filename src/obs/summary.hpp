/// \file summary.hpp
/// Plain-text per-rank / per-stage summary of a Tracer: the terminal
/// companion to the Chrome-trace exporter. Mirrors the paper's
/// attribution style -- each barrier-delimited stage is charged to
/// its slowest rank -- by printing, per span name, either a full
/// per-rank matrix (few ranks) or min/mean/max plus the slowest
/// rank's id (many ranks), followed by the counter table.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"

namespace msc::obs {

struct SummaryOptions {
  /// Print one column per rank up to this many ranks; beyond it,
  /// collapse to min/mean/max/slowest columns.
  int max_rank_columns = 8;
  /// Only aggregate spans at nesting depth 0 unless this is set
  /// (sub-spans double-count their parents' time in totals).
  bool include_nested = false;
};

/// Aggregate and print `t`'s spans and counters to `os`.
void writeSummary(const Tracer& t, std::ostream& os, const SummaryOptions& opts = {});

/// Convenience: summary as a string.
std::string summaryText(const Tracer& t, const SummaryOptions& opts = {});

}  // namespace msc::obs
