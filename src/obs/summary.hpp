/// \file summary.hpp
/// Plain-text per-rank / per-stage summary of a Tracer: the terminal
/// companion to the Chrome-trace exporter. Mirrors the paper's
/// attribution style -- each barrier-delimited stage is charged to
/// its slowest rank -- by printing, per span name, either a full
/// per-rank matrix (few ranks) or min/mean/max plus the slowest
/// rank's id (many ranks), followed by the counter table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace msc::obs {

struct SummaryOptions {
  /// Print one column per rank up to this many ranks; beyond it,
  /// collapse to min/mean/max/slowest columns.
  int max_rank_columns = 8;
  /// Only aggregate spans at nesting depth 0 unless this is set
  /// (sub-spans double-count their parents' time in totals).
  bool include_nested = false;
};

/// Aggregate and print `t`'s spans and counters to `os`.
void writeSummary(const Tracer& t, std::ostream& os, const SummaryOptions& opts = {});

/// Convenience: summary as a string.
std::string summaryText(const Tracer& t, const SummaryOptions& opts = {});

/// Per-invocation latency distribution of one span name, pooled over
/// all ranks and nesting depths (quantiles of individual durations,
/// not per-rank sums, so nested spans don't double-count anything).
struct SpanDurationStats {
  std::string name;
  std::int64_t count{0};
  double p50_s{0};
  double p95_s{0};
  double max_s{0};
};

/// Compute the duration quantiles for every span name recorded in
/// `t`, ordered by max_s descending (ties by name). Percentiles use
/// the nearest-rank method.
std::vector<SpanDurationStats> spanDurationStats(const Tracer& t);

/// Render the quantile rows as a fixed-width text table; `top_n` = 0
/// prints all rows. Reused by the summary footer and the progress
/// heartbeat's span digest.
std::string spanDurationTable(const std::vector<SpanDurationStats>& stats,
                              std::size_t top_n = 0);

}  // namespace msc::obs
