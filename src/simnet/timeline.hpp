/// \file timeline.hpp
/// Discrete-event reconstruction of the parallel schedule.
///
/// The simulated pipeline executes every task of Algorithm 1 for real
/// (sequentially), recording wall-clock costs and exact message byte
/// counts; this module then replays them against the torus and I/O
/// models with the same barrier structure the paper's implementation
/// has: read | compute | merge round 1 | ... | merge round R | write,
/// each stage ending when its slowest rank finishes.
#pragma once

#include <vector>

#include "simnet/io_model.hpp"
#include "simnet/torus.hpp"

namespace msc::obs {
class Tracer;
}
namespace msc::causal {
class Recorder;
}

namespace msc::simnet {

/// One merge group's recorded work in one round.
struct GroupRecord {
  int root_rank{0};
  /// (source rank, message bytes) for each non-root member.
  std::vector<std::pair<int, std::int64_t>> sends;
  /// Measured glue + re-simplify + repack seconds at the root.
  double merge_seconds{0};
};

/// Everything the reconstruction needs, as recorded by a pipeline run.
struct TimelineInputs {
  int nranks{1};
  std::int64_t input_bytes{0};
  std::int64_t output_bytes{0};
  /// Measured local compute seconds per rank: gradient + trace over
  /// the rank's blocks (the paper's "compute" stage, Fig. 3 (b)-(c)).
  std::vector<double> compute_per_rank;
  /// Measured local simplification + pack seconds per rank (Fig. 3
  /// (d)-(e) before the first communication; the paper counts this
  /// toward the "merge" stage).
  std::vector<double> merge_prep_per_rank;
  /// Merge groups per round.
  std::vector<std::vector<GroupRecord>> rounds;
};

/// Scaling knobs of the replay.
struct CostScale {
  /// Ratio of target-machine to measurement-machine compute cost
  /// (BG/P PPC450 850 MHz vs. the machine the tasks ran on).
  double cpu_scale = 12.0;
};

/// Per-stage times of one reconstructed run (seconds).
struct StageTimes {
  double read{0};
  double compute{0};
  double merge_prep{0};  ///< local simplification + pack (merge stage)
  std::vector<double> merge_rounds;
  double write{0};

  double mergeTotal() const {
    double t = merge_prep;
    for (const double r : merge_rounds) t += r;
    return t;
  }
  double total() const { return read + compute + mergeTotal() + write; }
};

/// Replay recorded work against the models. If `tracer` is non-null
/// (created with >= in.nranks slots), the reconstructed schedule is
/// additionally emitted as a *synthetic* trace -- per-rank spans with
/// model-time timestamps for read, compute, merge prep, every merge
/// round (group recv+glue at roots, sends at members, barrier waits)
/// and write -- so a simulated 1k-rank schedule can be inspected in
/// the same Chrome-trace viewer as a real threaded run. If `recorder`
/// is non-null (>= in.nranks slots), the same schedule is synthesized
/// into a causal journal (sends, recvs, barriers, stage changes,
/// round commits at model timestamps; no live vector clocks) so
/// causal::analyzeCriticalPath / msc_critpath work on simulated
/// 1k-rank runs too; with both attached, every modeled message also
/// gets a Chrome-trace flow-event pair (cross-rank arrows).
StageTimes reconstruct(const TimelineInputs& in, const TorusModel& net, const IoModel& io,
                       const CostScale& scale, obs::Tracer* tracer = nullptr,
                       causal::Recorder* recorder = nullptr);

/// Load imbalance of a per-rank cost vector: max / mean over entries
/// (1.0 = perfectly balanced; empty or all-zero vectors report 1.0).
/// The scaling observatory applies it to compute_per_rank and
/// merge_prep_per_rank; per-round comm imbalance comes from the
/// causal critical-path analysis instead.
double imbalance(const std::vector<double>& per_rank);

}  // namespace msc::simnet
