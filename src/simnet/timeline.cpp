#include "simnet/timeline.hpp"

#include <algorithm>

namespace msc::simnet {

StageTimes reconstruct(const TimelineInputs& in, const TorusModel& net, const IoModel& io,
                       const CostScale& scale) {
  StageTimes out;
  out.read = io.collectiveTime(in.input_bytes, in.nranks);

  out.compute = 0;
  for (const double t : in.compute_per_rank)
    out.compute = std::max(out.compute, t * scale.cpu_scale);

  out.merge_prep = 0;
  for (const double t : in.merge_prep_per_rank)
    out.merge_prep = std::max(out.merge_prep, t * scale.cpu_scale);

  for (const auto& round : in.rounds) {
    double stage = 0;
    for (const GroupRecord& g : round) {
      // Non-root members inject concurrently, but the root's ingress
      // link serializes the payload bytes; message latencies overlap
      // only partially -- we charge the max single latency plus the
      // serialized byte time, which matches the radix behaviour of
      // ref [22].
      double bytes_time = 0, max_lat = 0;
      for (const auto& [src, bytes] : g.sends) {
        const double t = net.messageTime(bytes, src, g.root_rank);
        const double byte_part =
            static_cast<double>(bytes) / net.params().bandwidth_Bps;
        bytes_time += byte_part;
        max_lat = std::max(max_lat, t - byte_part);
      }
      stage = std::max(stage, max_lat + bytes_time + g.merge_seconds * scale.cpu_scale);
    }
    out.merge_rounds.push_back(stage);
  }

  out.write = io.collectiveTime(in.output_bytes, in.nranks);
  return out;
}

}  // namespace msc::simnet
