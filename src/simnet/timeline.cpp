#include "simnet/timeline.hpp"

#include <algorithm>

#include "causal/causal.hpp"
#include "obs/obs.hpp"

namespace msc::simnet {

namespace {

/// Emit one barrier-aligned stage of per-rank busy times as synthetic
/// spans: a work span per rank plus a "barrier_wait" filler up to the
/// stage end (and a barrier-wait counter sample), mirroring how the
/// threaded driver's traces look.
void emitStage(obs::Tracer* tracer, const char* name, double start,
               const std::vector<double>& busy, double stage_dur) {
  if (!tracer) return;
  for (std::size_t r = 0; r < busy.size(); ++r) {
    const int rank = static_cast<int>(r);
    tracer->spanAt(rank, name, start, busy[r], "stage");
    const double wait = stage_dur - busy[r];
    if (wait > 0) {
      tracer->spanAt(rank, "barrier_wait", start + busy[r], wait, "wait");
      tracer->countAt(rank, obs::Counter::kBarrierWaitSeconds, start + stage_dur, wait);
    }
  }
}

/// Journal one synthesized barrier: each rank enters when its stage
/// work finishes (clamped to the common exit, since a root serving
/// several groups can locally overrun the round's max group time).
void journalBarrier(causal::Recorder* rec, std::int64_t gen,
                    const std::vector<double>& enter, double exit_ts) {
  if (!rec) return;
  std::vector<double> clamped(enter);
  for (double& t : clamped) t = std::min(t, exit_ts);
  rec->barrierAllAt(gen, clamped, exit_ts);
}

void journalStageAll(causal::Recorder* rec, int nranks, causal::Stage stage, int round,
                     double ts) {
  if (!rec) return;
  for (int r = 0; r < nranks; ++r) rec->stageAt(r, stage, round, ts);
}

}  // namespace

StageTimes reconstruct(const TimelineInputs& in, const TorusModel& net, const IoModel& io,
                       const CostScale& scale, obs::Tracer* tracer,
                       causal::Recorder* recorder) {
  StageTimes out;
  const auto nranks = static_cast<std::size_t>(in.nranks);
  std::int64_t gen = 0;
  out.read = io.collectiveTime(in.input_bytes, in.nranks);

  out.compute = 0;
  std::vector<double> busy(nranks, 0.0);
  for (std::size_t r = 0; r < in.compute_per_rank.size(); ++r) {
    busy[r] = in.compute_per_rank[r] * scale.cpu_scale;
    out.compute = std::max(out.compute, busy[r]);
  }
  double cursor = 0;
  if (tracer) {
    emitStage(tracer, "read", cursor, std::vector<double>(nranks, out.read), out.read);
    emitStage(tracer, "compute", out.read, busy, out.compute);
  }
  if (recorder) {
    journalStageAll(recorder, in.nranks, causal::Stage::kRead, -1, 0.0);
    journalBarrier(recorder, gen++, std::vector<double>(nranks, out.read), out.read);
    journalStageAll(recorder, in.nranks, causal::Stage::kCompute, -1, out.read);
    std::vector<double> enter(nranks);
    for (std::size_t r = 0; r < nranks; ++r) enter[r] = out.read + busy[r];
    journalBarrier(recorder, gen++, enter, out.read + out.compute);
  }
  cursor = out.read + out.compute;

  out.merge_prep = 0;
  for (std::size_t r = 0; r < in.merge_prep_per_rank.size(); ++r) {
    busy[r] = in.merge_prep_per_rank[r] * scale.cpu_scale;
    out.merge_prep = std::max(out.merge_prep, busy[r]);
  }
  if (tracer) emitStage(tracer, "merge_prep", cursor, busy, out.merge_prep);
  if (recorder) {
    journalStageAll(recorder, in.nranks, causal::Stage::kMerge, -1, cursor);
    std::vector<double> enter(nranks);
    for (std::size_t r = 0; r < nranks; ++r) enter[r] = cursor + busy[r];
    journalBarrier(recorder, gen++, enter, cursor + out.merge_prep);
  }
  cursor += out.merge_prep;

  int round_index = 0;
  for (const auto& round : in.rounds) {
    double stage = 0;
    if (recorder)
      journalStageAll(recorder, in.nranks, causal::Stage::kMerge, round_index, cursor);
    // Per-rank lay-out cursors for the synthetic spans: groups rooted
    // at the same rank are drawn end-to-end on its track.
    std::vector<double> lane(nranks, cursor);
    for (const GroupRecord& g : round) {
      // Non-root members inject concurrently, but the root's ingress
      // link serializes the payload bytes; message latencies overlap
      // only partially -- we charge the max single latency plus the
      // serialized byte time, which matches the radix behaviour of
      // ref [22].
      double bytes_time = 0, max_lat = 0;
      std::int64_t group_bytes = 0;
      // (msg_id, src, bytes, send_ts) of this group's journaled sends.
      std::vector<std::tuple<std::uint64_t, int, std::int64_t, double>> in_flight;
      for (const auto& [src, bytes] : g.sends) {
        const double t = net.messageTime(bytes, src, g.root_rank);
        const double byte_part =
            static_cast<double>(bytes) / net.params().bandwidth_Bps;
        bytes_time += byte_part;
        max_lat = std::max(max_lat, t - byte_part);
        group_bytes += bytes;
        const auto sr = static_cast<std::size_t>(src);
        const double send_ts = lane[sr];
        if (recorder) {
          const std::uint64_t id =
              recorder->sendAt(src, g.root_rank, 100 + round_index, bytes, send_ts);
          in_flight.emplace_back(id, src, bytes, send_ts);
          if (tracer)
            tracer->flowStartAt(src, id, send_ts, src, g.root_rank, 100 + round_index,
                                bytes);
        }
        if (tracer) {
          tracer->spanAt(src, "send", lane[sr], t, "comm", "bytes", bytes);
          lane[sr] += t;
          tracer->countAt(src, obs::Counter::kBytesSent, lane[sr],
                          static_cast<double>(bytes));
          tracer->countAt(src, obs::Counter::kMessagesSent, lane[sr], 1);
        } else if (recorder) {
          lane[sr] += t;
        }
      }
      const double group_dur = max_lat + bytes_time + g.merge_seconds * scale.cpu_scale;
      stage = std::max(stage, group_dur);
      const auto rr = static_cast<std::size_t>(g.root_rank);
      if (recorder && !g.sends.empty()) {
        // The root has everything once the serialized bytes plus the
        // worst single latency have elapsed on its lane.
        const double recv_ts = lane[rr] + max_lat + bytes_time;
        for (const auto& [id, src, bytes, send_ts] : in_flight) {
          recorder->recvAt(g.root_rank, src, 100 + round_index, bytes, id, recv_ts,
                           std::max(0.0, recv_ts - send_ts));
          if (tracer)
            tracer->flowFinishAt(g.root_rank, id, recv_ts, src, g.root_rank,
                                 100 + round_index, bytes);
        }
      }
      if (!g.sends.empty()) {
        if (tracer)
          tracer->spanAt(g.root_rank, "merge_group", lane[rr], group_dur, "stage",
                         "round", round_index);
        lane[rr] += group_dur;
        if (tracer) {
          tracer->countAt(g.root_rank, obs::Counter::kBytesReceived, lane[rr],
                          static_cast<double>(group_bytes));
          tracer->countAt(g.root_rank, obs::Counter::kMessagesReceived, lane[rr],
                          static_cast<double>(g.sends.size()));
          tracer->countAt(g.root_rank, obs::Counter::kGlueSeconds, lane[rr],
                          g.merge_seconds * scale.cpu_scale);
        }
      }
    }
    if (tracer) {
      for (std::size_t r = 0; r < nranks; ++r) {
        const double wait = cursor + stage - lane[r];
        if (wait > 0) {
          tracer->spanAt(static_cast<int>(r), "barrier_wait", lane[r], wait, "wait");
          tracer->countAt(static_cast<int>(r), obs::Counter::kBarrierWaitSeconds,
                          cursor + stage, wait);
        }
      }
    }
    if (recorder) {
      for (int r = 0; r < in.nranks; ++r)
        recorder->roundCommitAt(r, round_index,
                                std::min(lane[static_cast<std::size_t>(r)],
                                         cursor + stage));
      journalBarrier(recorder, gen++, lane, cursor + stage);
    }
    out.merge_rounds.push_back(stage);
    cursor += stage;
    ++round_index;
  }

  out.write = io.collectiveTime(in.output_bytes, in.nranks);
  if (tracer)
    emitStage(tracer, "write", cursor, std::vector<double>(nranks, out.write), out.write);
  if (recorder) {
    journalStageAll(recorder, in.nranks, causal::Stage::kWrite, -1, cursor);
    journalBarrier(recorder, gen++, std::vector<double>(nranks, cursor + out.write),
                   cursor + out.write);
    for (int r = 0; r < in.nranks; ++r) recorder->doneAt(r, cursor + out.write);
  }
  return out;
}

double imbalance(const std::vector<double>& per_rank) {
  if (per_rank.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (const double v : per_rank) {
    if (v > max) max = v;
    sum += v;
  }
  const double mean = sum / static_cast<double>(per_rank.size());
  return mean > 0 ? max / mean : 1.0;
}

}  // namespace msc::simnet
