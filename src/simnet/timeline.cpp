#include "simnet/timeline.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace msc::simnet {

namespace {

/// Emit one barrier-aligned stage of per-rank busy times as synthetic
/// spans: a work span per rank plus a "barrier_wait" filler up to the
/// stage end (and a barrier-wait counter sample), mirroring how the
/// threaded driver's traces look.
void emitStage(obs::Tracer* tracer, const char* name, double start,
               const std::vector<double>& busy, double stage_dur) {
  if (!tracer) return;
  for (std::size_t r = 0; r < busy.size(); ++r) {
    const int rank = static_cast<int>(r);
    tracer->spanAt(rank, name, start, busy[r], "stage");
    const double wait = stage_dur - busy[r];
    if (wait > 0) {
      tracer->spanAt(rank, "barrier_wait", start + busy[r], wait, "wait");
      tracer->countAt(rank, obs::Counter::kBarrierWaitSeconds, start + stage_dur, wait);
    }
  }
}

}  // namespace

StageTimes reconstruct(const TimelineInputs& in, const TorusModel& net, const IoModel& io,
                       const CostScale& scale, obs::Tracer* tracer) {
  StageTimes out;
  const auto nranks = static_cast<std::size_t>(in.nranks);
  out.read = io.collectiveTime(in.input_bytes, in.nranks);

  out.compute = 0;
  std::vector<double> busy(nranks, 0.0);
  for (std::size_t r = 0; r < in.compute_per_rank.size(); ++r) {
    busy[r] = in.compute_per_rank[r] * scale.cpu_scale;
    out.compute = std::max(out.compute, busy[r]);
  }
  double cursor = 0;
  if (tracer) {
    emitStage(tracer, "read", cursor, std::vector<double>(nranks, out.read), out.read);
    emitStage(tracer, "compute", out.read, busy, out.compute);
  }
  cursor = out.read + out.compute;

  out.merge_prep = 0;
  for (std::size_t r = 0; r < in.merge_prep_per_rank.size(); ++r) {
    busy[r] = in.merge_prep_per_rank[r] * scale.cpu_scale;
    out.merge_prep = std::max(out.merge_prep, busy[r]);
  }
  if (tracer) emitStage(tracer, "merge_prep", cursor, busy, out.merge_prep);
  cursor += out.merge_prep;

  int round_index = 0;
  for (const auto& round : in.rounds) {
    double stage = 0;
    // Per-rank lay-out cursors for the synthetic spans: groups rooted
    // at the same rank are drawn end-to-end on its track.
    std::vector<double> lane(nranks, cursor);
    for (const GroupRecord& g : round) {
      // Non-root members inject concurrently, but the root's ingress
      // link serializes the payload bytes; message latencies overlap
      // only partially -- we charge the max single latency plus the
      // serialized byte time, which matches the radix behaviour of
      // ref [22].
      double bytes_time = 0, max_lat = 0;
      std::int64_t group_bytes = 0;
      for (const auto& [src, bytes] : g.sends) {
        const double t = net.messageTime(bytes, src, g.root_rank);
        const double byte_part =
            static_cast<double>(bytes) / net.params().bandwidth_Bps;
        bytes_time += byte_part;
        max_lat = std::max(max_lat, t - byte_part);
        group_bytes += bytes;
        if (tracer) {
          const auto sr = static_cast<std::size_t>(src);
          tracer->spanAt(src, "send", lane[sr], t, "comm", "bytes", bytes);
          lane[sr] += t;
          tracer->countAt(src, obs::Counter::kBytesSent, lane[sr],
                          static_cast<double>(bytes));
          tracer->countAt(src, obs::Counter::kMessagesSent, lane[sr], 1);
        }
      }
      const double group_dur = max_lat + bytes_time + g.merge_seconds * scale.cpu_scale;
      stage = std::max(stage, group_dur);
      if (tracer && !g.sends.empty()) {
        const auto rr = static_cast<std::size_t>(g.root_rank);
        tracer->spanAt(g.root_rank, "merge_group", lane[rr], group_dur, "stage", "round",
                       round_index);
        lane[rr] += group_dur;
        tracer->countAt(g.root_rank, obs::Counter::kBytesReceived, lane[rr],
                        static_cast<double>(group_bytes));
        tracer->countAt(g.root_rank, obs::Counter::kMessagesReceived, lane[rr],
                        static_cast<double>(g.sends.size()));
        tracer->countAt(g.root_rank, obs::Counter::kGlueSeconds, lane[rr],
                        g.merge_seconds * scale.cpu_scale);
      }
    }
    if (tracer) {
      for (std::size_t r = 0; r < nranks; ++r) {
        const double wait = cursor + stage - lane[r];
        if (wait > 0) {
          tracer->spanAt(static_cast<int>(r), "barrier_wait", lane[r], wait, "wait");
          tracer->countAt(static_cast<int>(r), obs::Counter::kBarrierWaitSeconds,
                          cursor + stage, wait);
        }
      }
    }
    out.merge_rounds.push_back(stage);
    cursor += stage;
    ++round_index;
  }

  out.write = io.collectiveTime(in.output_bytes, in.nranks);
  if (tracer)
    emitStage(tracer, "write", cursor, std::vector<double>(nranks, out.write), out.write);
  return out;
}

}  // namespace msc::simnet
