#include "simnet/torus.hpp"

#include <cmath>

namespace msc::simnet {

Torus Torus::fit(int nranks) {
  // Near-cubic factorization: take the largest factor <= cube root,
  // then the largest factor of the remainder <= square root.
  const auto largestFactorLE = [](int n, int cap) {
    for (int f = cap; f >= 1; --f)
      if (n % f == 0) return f;
    return 1;
  };
  const int z = largestFactorLE(
      nranks, std::max(1, static_cast<int>(std::cbrt(static_cast<double>(nranks)))));
  const int rest = nranks / z;
  const int y = largestFactorLE(
      rest, std::max(1, static_cast<int>(std::sqrt(static_cast<double>(rest)))));
  const int x = rest / y;
  return Torus({x, y, z});
}

Vec3i Torus::coordOf(int rank) const {
  return {rank % dims_.x, (rank / dims_.x) % dims_.y, rank / (dims_.x * dims_.y)};
}

int Torus::hops(int a, int b) const {
  const Vec3i ca = coordOf(a), cb = coordOf(b);
  int h = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const std::int64_t d = std::abs(ca[axis] - cb[axis]);
    h += static_cast<int>(std::min(d, dims_[axis] - d));  // wrap-around
  }
  return h;
}

}  // namespace msc::simnet
