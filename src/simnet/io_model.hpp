/// \file io_model.hpp
/// Collective parallel-filesystem cost model (sections IV-B/IV-G).
///
/// The paper reads blocks with collective MPI-IO and writes the
/// output file collectively; both stages share a parallel filesystem
/// whose aggregate bandwidth saturates well below "per-process
/// bandwidth x P". We model a collective transfer of B bytes over P
/// processes as
///   t = t_open + t_sync * log2(P) + B / min(agg_bw, per_proc_bw * P)
/// which reproduces the observed behaviour: I/O time shrinks with P
/// while per-process bandwidth is the binding constraint, then
/// flattens once the filesystem is saturated and slowly grows with
/// the collective synchronisation term.
#pragma once

#include <cmath>
#include <cstdint>

namespace msc::simnet {

struct IoParams {
  double open_s = 0.02;            ///< file open/close + view setup
  double sync_per_level_s = 0.003; ///< collective synchronisation per log2(P) level
  double aggregate_bw_Bps = 4e9;   ///< filesystem saturation bandwidth
  double per_proc_bw_Bps = 50e6;   ///< single-process streaming bandwidth
};

class IoModel {
 public:
  explicit IoModel(IoParams p = {}) : p_(p) {}
  const IoParams& params() const { return p_; }

  /// Time for all P processes to collectively move `bytes` in total.
  double collectiveTime(std::int64_t bytes, int nranks) const {
    const double levels = nranks > 1 ? std::log2(static_cast<double>(nranks)) : 0.0;
    const double bw =
        std::min(p_.aggregate_bw_Bps, p_.per_proc_bw_Bps * static_cast<double>(nranks));
    return p_.open_s + p_.sync_per_level_s * levels + static_cast<double>(bytes) / bw;
  }

 private:
  IoParams p_;
};

}  // namespace msc::simnet
