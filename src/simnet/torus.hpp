/// \file torus.hpp
/// A Blue Gene/P-style 3D torus network cost model.
///
/// The paper's testbed (Intrepid, ALCF) connects nodes in a 3D torus;
/// merge-round messages traverse it. We model point-to-point message
/// time with the standard alpha-beta-hops model:
///     t(msg) = alpha + hops * t_hop + bytes / beta
/// and serialize concurrent arrivals at a merge root on its ingress
/// link, which is what makes later, higher-radix rounds with larger
/// complexes progressively more expensive (Table I's behaviour).
/// Constants default to BG/P-era values and are configurable; see
/// EXPERIMENTS.md for the calibration discussion.
#pragma once

#include "core/types.hpp"

namespace msc::simnet {

struct NetworkParams {
  double latency_s = 3.5e-6;      ///< per-message software/DMA latency
  double per_hop_s = 0.1e-6;      ///< per-hop router traversal
  double bandwidth_Bps = 425e6;   ///< per-link bandwidth (BG/P: 425 MB/s)
};

/// Near-cubic 3D torus of a given size with wrap-around links.
class Torus {
 public:
  /// Factor `nranks` into a near-cubic dims (x >= y >= z).
  static Torus fit(int nranks);

  Vec3i dims() const { return dims_; }
  int size() const { return static_cast<int>(dims_.volume()); }

  /// Rank -> torus coordinate (row-major placement).
  Vec3i coordOf(int rank) const;

  /// Minimal hop count between two ranks (per-axis wrap-around).
  int hops(int a, int b) const;

 private:
  explicit Torus(Vec3i dims) : dims_(dims) {}
  Vec3i dims_;
};

/// Message time under the alpha-beta-hops model.
class TorusModel {
 public:
  TorusModel(Torus torus, NetworkParams params) : torus_(torus), params_(params) {}

  const Torus& torus() const { return torus_; }
  const NetworkParams& params() const { return params_; }

  double messageTime(std::int64_t bytes, int src, int dst) const {
    return params_.latency_s + torus_.hops(src, dst) * params_.per_hop_s +
           static_cast<double>(bytes) / params_.bandwidth_Bps;
  }

 private:
  Torus torus_;
  NetworkParams params_;
};

}  // namespace msc::simnet
