/// \file reduce.hpp
/// Pre-merge reduction: shrink a block's complex right before it is
/// packed for a merge round (PipelineConfig::premerge).
///
/// Two passes, both canonical-form preserving (check/canonical.hpp):
///
///  1. A zero/low-persistence cancellation sweep at the pipeline's
///     threshold. Complexes leaving computeBlockComplex or a
///     committed merge round are already at the simplification
///     fixpoint, so this normally cancels nothing -- it is the safety
///     net for callers that ship complexes which have not been
///     simplified to the shipping threshold yet.
///
///  2. Leaf V-path compression (MsComplex::compressLeafGeometry):
///     every cancellation composite repeats the junction cell where
///     two merged paths meet, and the repeats survive flattening into
///     pack() output. Dropping consecutive duplicates typically
///     removes one cell per accumulated cancellation junction, which
///     is where the real byte reduction comes from.
///
/// Reduction is visible through existing telemetry: sweep
/// cancellations land in the kSimplify* counters, and the shrunken
/// pack lands in kPackBytes (and so in the perf gate's critpath byte
/// columns) because callers pack after reducing.
#pragma once

#include <cstdint>

#include "core/complex.hpp"

namespace msc::metrics {
class Registry;
}

namespace msc::merge {

struct ReduceStats {
  std::int64_t cancellations{0};   ///< pairs cancelled by the sweep
  std::int64_t cells_removed{0};   ///< duplicate junction cells dropped
  std::int64_t bytes_before{0};    ///< packedSize before reduction
  std::int64_t bytes_after{0};     ///< packedSize after reduction
};

/// Reduce `c` in place for shipping. If the sweep cancelled anything
/// the complex is re-compacted (wire complexes are always compacted),
/// so the result is safe to pack, glue, or skeleton-ize. Deterministic:
/// both pipeline drivers call this at the same points and must keep
/// producing byte-identical outputs.
ReduceStats reduceForShip(MsComplex& c, float persistence_threshold,
                          metrics::Registry* metrics = nullptr, int metrics_rank = 0);

}  // namespace msc::merge
