#include "merge/reduce.hpp"

#include "core/simplify.hpp"
#include "io/pack.hpp"
#include "prof/prof.hpp"

namespace msc::merge {

ReduceStats reduceForShip(MsComplex& c, float persistence_threshold,
                          metrics::Registry* metrics, int metrics_rank) {
  MSC_PROF_POINT("premerge_reduce");
  ReduceStats st;
  st.bytes_before = static_cast<std::int64_t>(io::packedSize(c));

  SimplifyOptions opts;
  opts.persistence_threshold = persistence_threshold;
  opts.metrics = metrics;
  opts.metrics_rank = metrics_rank;
  st.cancellations = simplify(c, opts);
  // The sweep leaves dead elements and composite geometries behind;
  // compact so the complex is wire-shaped again and the composites'
  // junction duplicates become visible to the leaf compression.
  if (st.cancellations > 0) c.compact();

  st.cells_removed = c.compressLeafGeometry();
  st.bytes_after = static_cast<std::int64_t>(io::packedSize(c));
  return st;
}

}  // namespace msc::merge
