/// \file shard.hpp
/// The distributed final merge round (PipelineConfig::sharded_final).
///
/// The single-root last round is the pipeline's serial wall: one rank
/// glues every surviving complex -- megabytes of V-path geometry --
/// while everyone else idles (BENCH_critpath.json, `groups: 1`).
/// This module replaces it with a three-phase exchange in which no
/// rank ever materializes the full geometry:
///
///  1. **Skeleton allgather.** Each final-round survivor broadcasts a
///     *skeleton blob*: its complex with every arc's V-path replaced
///     by a two-cell sentinel naming (survivor position, arc ordinal),
///     plus one precomputed glue duplicate-verdict byte per arc (the
///     verdict needs the real path, which the skeleton no longer
///     carries). Skeletons are graph-sized, not geometry-sized.
///
///  2. **Replicated graph merge.** Every survivor owner glues the S
///     skeletons in ascending block order -- the exact sequence the
///     single-root baseline executes -- and re-simplifies. glue() and
///     simplify() never read geometry cells, and the shipped verdicts
///     replay the one geometry-dependent decision, so the merged
///     skeleton is id-for-id identical to the baseline root's graph;
///     only its geometry holds sentinel names instead of cells.
///     Flattening a merged arc's geometry therefore yields the exact
///     sequence of (origin, ordinal, orientation) path pieces the
///     baseline would have concatenated.
///
///  3. **Owner-partitioned geometry exchange.** Live arcs of the
///     merged graph are assigned round-robin to survivors (the
///     deterministic boundary-ownership rule: arc k belongs to shard
///     k mod S, replicated bit-identically everywhere). Each survivor
///     sends every other exactly the real paths its owned arcs need,
///     then materializes its part by concatenating pieces -- byte-
///     identical to the slice of the baseline root's output it owns.
///
/// The union of the S parts is canonically equal (check/canonical.hpp
/// compareExact) to the single-root output, which is the differential
/// oracle tests/test_merge_reduce.cpp and the fuzz harness enforce.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/complex.hpp"
#include "io/pack.hpp"

namespace msc::metrics {
class Registry;
}

namespace msc::merge {

/// Sentinel cell addresses live in an address band no refined grid
/// can reach (a real CellAddr is bounded by the refined volume; the
/// tag sits at bit 56). They appear only inside skeleton geometry --
/// never as node addresses -- so address-based node matching and
/// boundary recomputation never see them.
inline constexpr CellAddr kShardSentinelTag = static_cast<CellAddr>(0xA5) << 56;
inline constexpr int kShardMaxPositions = 1 << 28;
inline constexpr std::uint32_t kShardMaxOrdinal = 1u << 27;

inline constexpr CellAddr shardSentinel(int pos, std::uint32_t ordinal, bool end) {
  return kShardSentinelTag |
         (static_cast<CellAddr>(static_cast<std::uint32_t>(pos)) << 28) |
         (static_cast<CellAddr>(ordinal) << 1) | (end ? 1u : 0u);
}
inline constexpr bool isShardSentinel(CellAddr a) { return (a >> 56) == 0xA5; }
inline constexpr int shardSentinelPos(CellAddr a) {
  return static_cast<int>((a >> 28) & ((1u << 28) - 1));
}
inline constexpr std::uint32_t shardSentinelOrdinal(CellAddr a) {
  return static_cast<std::uint32_t>((a >> 1) & (kShardMaxOrdinal - 1));
}
inline constexpr bool shardSentinelEnd(CellAddr a) { return (a & 1) != 0; }

/// Region the single-root baseline's root had already covered when
/// the survivor owning original block `block` was glued: the union of
/// all original block regions with smaller ids (members glue in
/// ascending block order and every survivor owns a contiguous block
/// range). This is the region the in-glue duplicate scan would have
/// tested against; makeShardBlob evaluates the scan against it ahead
/// of time.
Region priorCoveredRegion(const Domain& domain, int nblocks, int block);

/// Build the blob survivor position `pos` contributes to the
/// allgather: [u32 narcs][narcs duplicate-verdict bytes][packed
/// sentinel skeleton]. `c` is the survivor's real complex (live
/// elements only are encoded, in id order -- the same order pack()
/// ships, so skeleton ids replay the baseline glue exactly).
io::Bytes makeShardBlob(const MsComplex& c, int pos, const Region& prior_covered);

struct ShardSkeleton {
  MsComplex complex;
  std::vector<std::uint8_t> dup_flags;  ///< per live arc, 1 = glue drops it
};

/// Inverse of makeShardBlob (throws std::runtime_error on a
/// truncated or malformed blob).
ShardSkeleton parseShardBlob(const io::Bytes& blob);

/// Phase 2: glue the skeletons (ascending survivor order, position 0
/// first) and re-simplify to the threshold -- the replicated
/// counterpart of the baseline root's mergeComplexes. Every caller
/// with the same blobs computes an identical result.
MsComplex mergeShardSkeletons(std::vector<ShardSkeleton> parts,
                              float persistence_threshold,
                              metrics::Registry* metrics = nullptr,
                              int metrics_rank = 0);

/// One piece of a merged arc's geometry: the `ordinal`-th live arc
/// contributed by survivor `pos`, traversed reversed or not.
struct GeomPiece {
  int pos;
  std::uint32_t ordinal;
  bool reversed;
};

/// The merged graph's live arcs (id order) with their parsed piece
/// sequences -- the shared input of ownership, bundle planning, and
/// materialization. Throws std::logic_error if an arc's flattened
/// geometry is not a well-formed sentinel pair sequence (a real cell
/// leaking into a skeleton would corrupt outputs silently otherwise).
struct ShardPlanView {
  std::vector<ArcId> live_arcs;
  std::vector<std::vector<GeomPiece>> pieces;  ///< parallel to live_arcs
};
ShardPlanView buildShardPlan(const MsComplex& merged);

/// Deterministic ownership: the k-th live arc belongs to shard
/// k mod S. Isolated nodes are assigned the same way by live order.
inline constexpr int shardArcOwner(std::size_t live_ordinal, int nshards) {
  return static_cast<int>(live_ordinal % static_cast<std::size_t>(nshards));
}

/// Ordinals (ascending, unique) of source-position `src` paths needed
/// to materialize the arcs owned by shard `dst`. Replicated: every
/// rank derives the same needs matrix, so senders and receivers agree
/// without negotiation.
std::vector<std::uint32_t> shardNeededPaths(const ShardPlanView& plan, int nshards,
                                            int dst, int src);

/// Wire format of phase 3: [u32 count] then per path
/// [u32 ordinal][u32 ncells][cells]. Ordinals index the *live* arcs
/// of the source complex in id order. An empty request packs to a
/// valid empty bundle (always sent, so receive counts are static).
io::Bytes packPathBundle(const MsComplex& source,
                         const std::vector<std::uint32_t>& ordinals);
std::map<std::uint32_t, std::vector<CellAddr>> unpackPathBundle(const io::Bytes& bundle);

/// Serves real flattened paths during materialization, from local
/// complexes (non-owning pointers; must outlive the server) and
/// unpacked remote bundles alike.
class ShardPathServer {
 public:
  void addLocal(int pos, const MsComplex* source);
  void addRemote(int pos, std::map<std::uint32_t, std::vector<CellAddr>> paths);
  std::vector<CellAddr> pathOf(int pos, std::uint32_t ordinal) const;

 private:
  std::map<int, const MsComplex*> local_;
  std::map<int, std::vector<ArcId>> local_live_;  ///< pos -> live arc ids
  std::map<int, std::map<std::uint32_t, std::vector<CellAddr>>> remote_;
};

/// Phase 3 tail: materialize the part shard `my_pos` owns -- its
/// round-robin share of the merged graph's arcs and isolated nodes,
/// with real geometry re-assembled from the piece sequences. The
/// part's region is the full merged region (every part describes a
/// slice of the same global complex).
MsComplex materializeShardPart(const MsComplex& merged, const ShardPlanView& plan,
                               int nshards, int my_pos,
                               const ShardPathServer& paths);

}  // namespace msc::merge
