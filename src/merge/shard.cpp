#include "merge/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/merge.hpp"
#include "decomp/decompose.hpp"
#include "prof/prof.hpp"

namespace msc::merge {

Region priorCoveredRegion(const Domain& domain, int nblocks, int block) {
  const std::vector<Block> blocks = decompose(domain, nblocks);
  Region r;
  for (int b = 0; b < block && b < static_cast<int>(blocks.size()); ++b)
    r.add(blocks[static_cast<std::size_t>(b)].refinedBox());
  r.coalesce();
  return r;
}

io::Bytes makeShardBlob(const MsComplex& c, int pos, const Region& prior_covered) {
  MSC_PROF_POINT("shard_blob_build");
  if (pos < 0 || pos >= kShardMaxPositions)
    throw std::invalid_argument("shard: position " + std::to_string(pos) +
                                " out of sentinel range");
  // Sentinels must be unmistakable for real addresses.
  const Vec3i rd = c.domain().rdims();
  const CellAddr volume = static_cast<CellAddr>(rd.x) * static_cast<CellAddr>(rd.y) *
                          static_cast<CellAddr>(rd.z);
  if (volume >= kShardSentinelTag)
    throw std::invalid_argument("shard: refined volume collides with sentinel band");

  MsComplex skel(c.domain(), c.region());
  std::vector<NodeId> map(c.nodes().size(), kNone);
  for (std::size_t i = 0; i < c.nodes().size(); ++i) {
    const Node& nd = c.nodes()[i];
    if (!nd.alive) continue;
    map[i] = skel.addNode(nd.addr, nd.index, nd.value);
  }

  std::vector<std::uint8_t> flags;
  std::uint32_t ord = 0;
  for (const Arc& ar : c.arcs()) {
    if (!ar.alive) continue;
    if (ord >= kShardMaxOrdinal)
      throw std::invalid_argument("shard: arc ordinal out of sentinel range");
    // The glue duplicate verdict, evaluated against the region the
    // baseline root covers when this survivor is glued. Replayed by
    // the receivers, where the real path is no longer available.
    bool dup = true;
    if (ar.geom != kNone)
      for (const CellAddr a : c.flattenGeom(ar.geom))
        if (!prior_covered.contains(c.domain().coordOf(a))) {
          dup = false;
          break;
        }
    flags.push_back(dup ? 1 : 0);

    Geom g;
    g.cells = {shardSentinel(pos, ord, false), shardSentinel(pos, ord, true)};
    skel.addArc(map[static_cast<std::size_t>(ar.lower)],
                map[static_cast<std::size_t>(ar.upper)], skel.addGeom(std::move(g)));
    ++ord;
  }

  io::Bytes out;
  io::Writer w(out);
  w.put<std::uint32_t>(ord);
  w.putBytes(flags.data(), flags.size());
  const io::Bytes packed = io::pack(skel);
  w.putBytes(packed.data(), packed.size());
  return out;
}

ShardSkeleton parseShardBlob(const io::Bytes& blob) {
  MSC_PROF_POINT("shard_parse");
  io::Reader rd(blob);
  const std::uint32_t narcs = rd.get<std::uint32_t>();
  ShardSkeleton out;
  out.dup_flags.resize(narcs);
  rd.getBytes(out.dup_flags.data(), narcs);
  const std::size_t offset = blob.size() - rd.remaining();
  const io::Bytes packed(blob.begin() + static_cast<std::ptrdiff_t>(offset), blob.end());
  out.complex = io::unpack(packed);
  if (out.complex.liveArcCount() != static_cast<std::int64_t>(narcs))
    throw std::runtime_error("shard: blob flag count " + std::to_string(narcs) +
                             " does not match skeleton arc count " +
                             std::to_string(out.complex.liveArcCount()));
  return out;
}

MsComplex mergeShardSkeletons(std::vector<ShardSkeleton> parts,
                              float persistence_threshold,
                              metrics::Registry* metrics, int metrics_rank) {
  MSC_PROF_POINT("shard_graph_merge");
  if (parts.empty())
    throw std::invalid_argument("shard: cannot merge zero skeletons");
  // The exact call sequence of the baseline root's mergeComplexes:
  // compact, glue in ascending survivor order, finish. glue and
  // simplify never read geometry cells, so the sentinel paths ride
  // along untouched and every id decision replays bit-identically.
  MsComplex root = std::move(parts[0].complex);
  root.compact();
  for (std::size_t i = 1; i < parts.size(); ++i)
    glue(root, std::move(parts[i].complex), nullptr, metrics, metrics_rank,
         &parts[i].dup_flags);
  finishMerge(root, persistence_threshold, nullptr, metrics, metrics_rank);
  return root;
}

namespace {

[[noreturn]] void malformedPath(const char* what) {
  throw std::logic_error(std::string("shard: malformed sentinel path: ") + what);
}

std::vector<GeomPiece> parsePieces(const MsComplex& merged, ArcId a) {
  std::vector<GeomPiece> out;
  const Arc& ar = merged.arc(a);
  if (ar.geom == kNone) return out;
  const std::vector<CellAddr> flat = merged.flattenGeom(ar.geom);
  if (flat.size() % 2 != 0) malformedPath("odd cell count");
  out.reserve(flat.size() / 2);
  for (std::size_t i = 0; i < flat.size(); i += 2) {
    const CellAddr x = flat[i], y = flat[i + 1];
    if (!isShardSentinel(x) || !isShardSentinel(y)) malformedPath("real cell in skeleton");
    if (shardSentinelPos(x) != shardSentinelPos(y) ||
        shardSentinelOrdinal(x) != shardSentinelOrdinal(y))
      malformedPath("sentinel pair mismatch");
    if (shardSentinelEnd(x) == shardSentinelEnd(y)) malformedPath("sentinel orientation");
    out.push_back({shardSentinelPos(x), shardSentinelOrdinal(x), shardSentinelEnd(x)});
  }
  return out;
}

}  // namespace

ShardPlanView buildShardPlan(const MsComplex& merged) {
  MSC_PROF_POINT("shard_plan");
  ShardPlanView plan;
  for (ArcId a = 0; a < static_cast<ArcId>(merged.arcs().size()); ++a) {
    if (!merged.arc(a).alive) continue;
    plan.live_arcs.push_back(a);
    plan.pieces.push_back(parsePieces(merged, a));
  }
  return plan;
}

std::vector<std::uint32_t> shardNeededPaths(const ShardPlanView& plan, int nshards,
                                            int dst, int src) {
  std::vector<std::uint32_t> out;
  for (std::size_t k = 0; k < plan.live_arcs.size(); ++k) {
    if (shardArcOwner(k, nshards) != dst) continue;
    for (const GeomPiece& p : plan.pieces[k])
      if (p.pos == src) out.push_back(p.ordinal);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

std::vector<ArcId> liveArcIds(const MsComplex& c) {
  std::vector<ArcId> out;
  for (ArcId a = 0; a < static_cast<ArcId>(c.arcs().size()); ++a)
    if (c.arc(a).alive) out.push_back(a);
  return out;
}

}  // namespace

io::Bytes packPathBundle(const MsComplex& source,
                         const std::vector<std::uint32_t>& ordinals) {
  MSC_PROF_POINT("shard_bundle_pack");
  const std::vector<ArcId> live = liveArcIds(source);
  io::Bytes out;
  io::Writer w(out);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(ordinals.size()));
  for (const std::uint32_t ord : ordinals) {
    if (ord >= live.size())
      throw std::invalid_argument("shard: bundle request for arc ordinal " +
                                  std::to_string(ord) + " of " +
                                  std::to_string(live.size()));
    const Arc& ar = source.arc(live[ord]);
    const std::vector<CellAddr> cells =
        ar.geom == kNone ? std::vector<CellAddr>{} : source.flattenGeom(ar.geom);
    w.put<std::uint32_t>(ord);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(cells.size()));
    w.putBytes(cells.data(), cells.size() * sizeof(CellAddr));
  }
  return out;
}

std::map<std::uint32_t, std::vector<CellAddr>> unpackPathBundle(const io::Bytes& bundle) {
  MSC_PROF_POINT("shard_bundle_unpack");
  io::Reader rd(bundle);
  std::map<std::uint32_t, std::vector<CellAddr>> out;
  const std::uint32_t count = rd.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t ord = rd.get<std::uint32_t>();
    const std::uint32_t len = rd.get<std::uint32_t>();
    std::vector<CellAddr> cells(len);
    rd.getBytes(cells.data(), static_cast<std::size_t>(len) * sizeof(CellAddr));
    out.emplace(ord, std::move(cells));
  }
  return out;
}

void ShardPathServer::addLocal(int pos, const MsComplex* source) {
  local_[pos] = source;
  local_live_[pos] = liveArcIds(*source);
}

void ShardPathServer::addRemote(int pos,
                                std::map<std::uint32_t, std::vector<CellAddr>> paths) {
  remote_[pos] = std::move(paths);
}

std::vector<CellAddr> ShardPathServer::pathOf(int pos, std::uint32_t ordinal) const {
  if (const auto it = local_.find(pos); it != local_.end()) {
    const std::vector<ArcId>& live = local_live_.at(pos);
    if (ordinal >= live.size())
      throw std::logic_error("shard: local path ordinal out of range");
    const Arc& ar = it->second->arc(live[ordinal]);
    return ar.geom == kNone ? std::vector<CellAddr>{}
                            : it->second->flattenGeom(ar.geom);
  }
  const auto rit = remote_.find(pos);
  if (rit == remote_.end())
    throw std::logic_error("shard: no path source for position " + std::to_string(pos));
  const auto pit = rit->second.find(ordinal);
  if (pit == rit->second.end())
    throw std::logic_error("shard: missing bundled path (pos " + std::to_string(pos) +
                           ", ordinal " + std::to_string(ordinal) + ")");
  return pit->second;
}

MsComplex materializeShardPart(const MsComplex& merged, const ShardPlanView& plan,
                               int nshards, int my_pos,
                               const ShardPathServer& paths) {
  MSC_PROF_POINT("shard_materialize");
  MsComplex out(merged.domain(), merged.region());
  std::vector<NodeId> map(merged.nodes().size(), kNone);
  const auto ensure = [&](NodeId n) {
    NodeId& slot = map[static_cast<std::size_t>(n)];
    if (slot == kNone) {
      const Node& nd = merged.node(n);
      slot = out.addNode(nd.addr, nd.index, nd.value);
    }
    return slot;
  };

  for (std::size_t k = 0; k < plan.live_arcs.size(); ++k) {
    if (shardArcOwner(k, nshards) != my_pos) continue;
    const Arc& ar = merged.arc(plan.live_arcs[k]);
    Geom g;
    for (const GeomPiece& p : plan.pieces[k]) {
      const std::vector<CellAddr> cells = paths.pathOf(p.pos, p.ordinal);
      if (!p.reversed)
        g.cells.insert(g.cells.end(), cells.begin(), cells.end());
      else
        g.cells.insert(g.cells.end(), cells.rbegin(), cells.rend());
    }
    const NodeId lo = ensure(ar.lower);
    const NodeId up = ensure(ar.upper);
    out.addArc(lo, up, out.addGeom(std::move(g)));
  }

  // Isolated critical points are real output too (a maximum in a
  // one-block region, say); deal them round-robin like arcs.
  std::size_t j = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(merged.nodes().size()); ++n) {
    const Node& nd = merged.node(n);
    if (!nd.alive || nd.n_arcs != 0) continue;
    if (shardArcOwner(j++, nshards) == my_pos) ensure(n);
  }

  out.recomputeBoundary();
  return out;
}

}  // namespace msc::merge
