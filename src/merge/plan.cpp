#include "merge/plan.hpp"

#include <stdexcept>

namespace msc {

std::vector<MergeGroup> makeRound(int active, int radix) {
  std::vector<MergeGroup> groups;
  for (int i = 0; i < active; i += radix) {
    MergeGroup g;
    g.root = i;
    for (int j = i; j < active && j < i + radix; ++j) g.members.push_back(j);
    groups.push_back(std::move(g));
  }
  return groups;
}

MergePlan::MergePlan(std::vector<int> radices) : radices_(std::move(radices)) {
  for (const int r : radices_)
    if (r < 2)
      throw std::invalid_argument("MergePlan: radix must be >= 2");
}

int MergePlan::outputsFor(int nblocks) const {
  int n = nblocks;
  for (const int r : radices_) n = (n + r - 1) / r;
  return n;
}

std::vector<MergeGroup> MergePlan::round(int r, int survivors_in) const {
  return makeRound(survivors_in, radices_.at(static_cast<std::size_t>(r)));
}

std::vector<int> MergePlan::survivorIds(int nblocks, int completed_rounds) const {
  std::vector<int> ids(static_cast<std::size_t>(nblocks));
  for (int i = 0; i < nblocks; ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int r = 0; r < completed_rounds; ++r) {
    std::vector<int> next;
    for (const MergeGroup& g : round(r, static_cast<int>(ids.size())))
      next.push_back(ids[static_cast<std::size_t>(g.root)]);
    ids = std::move(next);
  }
  return ids;
}

MergePlan MergePlan::fullMerge(int nblocks) {
  // Number of halvings needed to reach one block.
  int e = 0;
  while ((1 << e) < nblocks) ++e;
  const int rem = e % 3;
  std::vector<int> radices;
  if (rem > 0) radices.push_back(1 << rem);  // smaller radices first (VI-C2)
  for (int i = 0; i < e / 3; ++i) radices.push_back(8);
  return MergePlan(std::move(radices));
}

std::string MergePlan::toString() const {
  std::string s = "[";
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(radices_[i]);
  }
  return s + "]";
}

}  // namespace msc
