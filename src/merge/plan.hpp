/// \file plan.hpp
/// Radix-configurable merge schedule (section IV-F2, after the
/// Radix-k compositing idea of ref [22]).
///
/// A merge plan is a list of rounds, each with a radix >= 2. In each
/// round, the currently-active complexes are grouped by consecutive
/// position into groups of `radix` members; the first member is the
/// group's root, the others send it their complex and drop out.
/// After all rounds, ceil(B / prod(radices)) complexes remain.
/// Because blocks are numbered in bisection-tree order, power-of-two
/// groups of consecutive ids cover contiguous boxes. fullMerge keeps
/// the paper's {2, 4, 8} guideline; wider final radices exist for the
/// sharded final round (merge/shard.hpp), which wants one wide last
/// group instead of a deep root funnel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msc {

/// One merge group within a round.
struct MergeGroup {
  int root;                  ///< active-index of the root member
  std::vector<int> members;  ///< active-indices incl. root (root first)
};

/// The groups of one round over `active` survivors.
std::vector<MergeGroup> makeRound(int active, int radix);

/// A full merge plan.
class MergePlan {
 public:
  MergePlan() = default;
  explicit MergePlan(std::vector<int> radices);

  const std::vector<int>& radices() const { return radices_; }
  int rounds() const { return static_cast<int>(radices_.size()); }

  /// Number of complexes remaining after all rounds, starting from
  /// `nblocks`.
  int outputsFor(int nblocks) const;

  /// The groups of round `r` given the number of survivors entering
  /// that round. Indices are positions within the survivor list; use
  /// survivorIds() to map to original block ids.
  std::vector<MergeGroup> round(int r, int survivors_in) const;

  /// Survivor block ids after `r` completed rounds, starting from
  /// blocks 0..nblocks-1.
  std::vector<int> survivorIds(int nblocks, int completed_rounds) const;

  /// Full merge: prefer radix 8 whenever possible, placing smaller
  /// radices in earlier rounds (the paper's guideline, section
  /// VI-C2). Produces rounds whose product >= nblocks.
  static MergePlan fullMerge(int nblocks);

  /// Partial merge: the given radices verbatim (e.g. {8, 8} for the
  /// Rayleigh-Taylor study).
  static MergePlan partial(std::vector<int> radices) { return MergePlan(std::move(radices)); }

  std::string toString() const;

 private:
  std::vector<int> radices_;
};

}  // namespace msc
