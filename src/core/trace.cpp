#include "core/trace.hpp"

#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc {

namespace {

/// Iterative depth-first enumeration of the descending V-paths from
/// one critical cell. The shared `path` vector holds the current
/// path's local refined coordinates; each emitted arc copies it into
/// a geometry object (translated to global addresses).
class PathEnumerator {
 public:
  PathEnumerator(const GradientField& grad, MsComplex& out,
                 const std::unordered_map<CellAddr, NodeId>& nodeOf,
                 const TraceOptions& opts, TraceStats* stats)
      : grad_(grad), blk_(grad.block()), out_(out), nodeOf_(nodeOf), opts_(opts),
        stats_(stats) {}

  std::int64_t steps() const { return steps_; }
  const std::array<std::int64_t, metrics::kHistBuckets>& pathLenTally() const {
    return len_tally_;
  }

  void run(Vec3i crit) {
    paths_emitted_ = 0;
    truncated_ = false;
    path_.clear();
    path_.push_back(crit);
    const NodeId from = nodeOf_.at(blk_.globalAddr(crit));
    std::array<Vec3i, 6> fs;
    const int nf = facets(crit, blk_.rdims(), fs);
    for (int i = 0; i < nf; ++i) descend(fs[i], from);
    if (truncated_ && stats_) ++stats_->truncated_cells;
  }

 private:
  // Explicit DFS frame: a head cell whose remaining facets are still
  // to be explored.
  struct Frame {
    Vec3i head;
    Vec3i entered_from;  // the facet we arrived through (excluded)
    int next_facet{0};
    std::size_t base_len{0};  // path_ length to restore once exhausted
  };

  void descend(Vec3i start, NodeId from) {
    // Walk one (d-1)-cell: either it ends the path (critical), dies
    // (paired downward / paired into the cell we came from is
    // impossible), or crosses into its paired d-cell and branches.
    stack_.clear();
    walk(start, from);
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      const Vec3i head = f.head;
      std::array<Vec3i, 6> fs;
      const int nf = facets(head, blk_.rdims(), fs);
      bool advanced = false;
      while (f.next_facet < nf) {
        const Vec3i cand = fs[f.next_facet++];
        if (cand == f.entered_from) continue;
        walk(cand, from);
        advanced = true;
        break;
      }
      if (!advanced) {
        path_.resize(stack_.back().base_len);
        stack_.pop_back();
      }
    }
  }

  /// Process arrival at (d-1)-cell `a`: emit an arc, dead-end, or
  /// push the frame for its paired head.
  void walk(Vec3i a, NodeId from) {
    if (capped()) return;
    const std::size_t base = path_.size();
    path_.push_back(a);
    ++steps_;
    const std::uint8_t s = grad_.stateAt(a);
    if (s == kCritical) {
      emit(from, a);
      path_.pop_back();
      return;
    }
    if (grad_.isTail(a)) {
      const Vec3i head = grad_.partner(a);
      path_.push_back(head);
      ++steps_;
      stack_.push_back({head, a, 0, base});
      return;  // frame unwinding restores the path to base
    }
    path_.pop_back();  // paired downward: flow leaves this layer
  }

  void emit(NodeId from, Vec3i to) {
    ++paths_emitted_;
    Geom g;
    g.cells.reserve(path_.size());
    for (const Vec3i& rc : path_) g.cells.push_back(blk_.globalAddr(rc));
    const GeomId gid = out_.addGeom(std::move(g));
    out_.addArc(nodeOf_.at(blk_.globalAddr(to)), from, gid);
    if (stats_) {
      ++stats_->arcs;
      stats_->geometry_cells += static_cast<std::int64_t>(path_.size());
    }
    if (opts_.metrics) {
      ++len_tally_[static_cast<std::size_t>(
          metrics::histBucket(static_cast<double>(path_.size())))];
    }
  }

  bool capped() {
    if (opts_.max_paths_per_cell > 0 && paths_emitted_ >= opts_.max_paths_per_cell) {
      truncated_ = true;
      return true;
    }
    return false;
  }

  const GradientField& grad_;
  const Block& blk_;
  MsComplex& out_;
  const std::unordered_map<CellAddr, NodeId>& nodeOf_;
  const TraceOptions& opts_;
  TraceStats* stats_;
  std::vector<Vec3i> path_;
  std::vector<Frame> stack_;
  std::int64_t paths_emitted_{0};
  bool truncated_{false};
  std::int64_t steps_{0};
  std::array<std::int64_t, metrics::kHistBuckets> len_tally_{};
};

}  // namespace

MsComplex traceComplex(const GradientField& grad, const BlockField& field,
                       const TraceOptions& opts, TraceStats* stats) {
  MSC_PROF_POINT("trace_paths");
  const Block& blk = grad.block();
  MsComplex out(blk.domain, Region(blk.refinedBox()));

  // First pass: all critical cells become nodes (IV-D).
  std::unordered_map<CellAddr, NodeId> nodeOf;
  std::vector<Vec3i> criticals;
  const Vec3i r = blk.rdims();
  for (std::int64_t z = 0; z < r.z; ++z) {
    for (std::int64_t y = 0; y < r.y; ++y) {
      for (std::int64_t x = 0; x < r.x; ++x) {
        const Vec3i rc{x, y, z};
        if (!grad.isCritical(rc)) continue;
        const CellAddr addr = blk.globalAddr(rc);
        const NodeId id = out.addNode(addr, static_cast<std::uint8_t>(Domain::cellDim(rc)),
                                      field.cellValue(rc));
        nodeOf.emplace(addr, id);
        criticals.push_back(rc);
        if (stats) ++stats->nodes;
      }
    }
  }

  // Second pass: descending V-paths from every critical cell of
  // dimension >= 1.
  PathEnumerator en(grad, out, nodeOf, opts, stats);
  std::int64_t arcs = 0, geom_cells = 0;
  for (const Vec3i& rc : criticals)
    if (Domain::cellDim(rc) >= 1) en.run(rc);
  if (opts.metrics) {
    using metrics::Counter;
    for (const Arc& a : out.arcs()) {
      ++arcs;
      geom_cells += static_cast<std::int64_t>(out.geom(a.geom).cells.size());
    }
    opts.metrics->add(opts.metrics_rank, Counter::kTraceSteps, en.steps());
    opts.metrics->add(opts.metrics_rank, Counter::kTraceArcs, arcs);
    opts.metrics->add(opts.metrics_rank, Counter::kTraceGeomCells, geom_cells);
    opts.metrics->observeBuckets(opts.metrics_rank, metrics::Hist::kTracePathCells,
                                 en.pathLenTally());
  }

  out.recomputeBoundary();
  return out;
}

}  // namespace msc
