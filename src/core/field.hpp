/// \file field.hpp
/// A block of scalar samples plus the strict total order on cells
/// ("improved simulation of simplicity", section IV-C / ref [11]).
///
/// Cell values are the maximum of the cell's vertex values. Ties are
/// broken by comparing, lexicographically, the cell's (value, global
/// vertex id) pairs sorted in descending order. Because global vertex
/// ids are block-independent, the order of any two cells on a shared
/// block face is identical in both blocks — the property the merge
/// stage's gluing relies on (IV-F3).
#pragma once

#include <algorithm>
#include <vector>

#include "core/grid.hpp"

namespace msc {

/// Sorted-descending list of (value, global vertex id) pairs for one
/// cell; the comparison key of the simulation of simplicity.
struct CellKey {
  int n{0};
  std::array<float, 8> value{};
  std::array<std::uint64_t, 8> vert{};

  /// Strict lexicographic less-than. Keys of cells of equal dimension
  /// have equal length; across dimensions a missing entry compares
  /// low (a proper face precedes its cofaces when their leading
  /// entries tie).
  friend bool operator<(const CellKey& a, const CellKey& b) {
    const int n = std::min(a.n, b.n);
    for (int i = 0; i < n; ++i) {
      if (a.value[i] != b.value[i]) return a.value[i] < b.value[i];
      if (a.vert[i] != b.vert[i]) return a.vert[i] < b.vert[i];
    }
    return a.n < b.n;
  }
  friend bool operator==(const CellKey& a, const CellKey& b) {
    if (a.n != b.n) return false;
    for (int i = 0; i < a.n; ++i)
      if (a.value[i] != b.value[i] || a.vert[i] != b.vert[i]) return false;
    return true;
  }
};

/// Scalar samples over one block's vertices.
class BlockField {
 public:
  BlockField() = default;
  BlockField(Block block, std::vector<float> values)
      : block_(block), values_(std::move(values)) {
    assert(std::ssize(values_) == block_.numVertices());
  }

  const Block& block() const { return block_; }
  const std::vector<float>& values() const { return values_; }

  /// Value at a local vertex coordinate.
  float vertexValue(Vec3i vc) const { return values_[block_.vertexIndex(vc)]; }

  /// Cell value: max over the cell's vertices (section IV-C).
  float cellValue(Vec3i rc) const {
    std::array<Vec3i, 8> vs;
    const int n = cellVertices(rc, vs);
    float m = vertexValue(vs[0]);
    for (int i = 1; i < n; ++i) m = std::max(m, vertexValue(vs[i]));
    return m;
  }

  /// Full simulation-of-simplicity key of a cell.
  CellKey cellKey(Vec3i rc) const {
    std::array<Vec3i, 8> vs;
    CellKey k;
    k.n = cellVertices(rc, vs);
    std::array<std::pair<float, std::uint64_t>, 8> p;
    for (int i = 0; i < k.n; ++i)
      p[i] = {vertexValue(vs[i]), block_.globalVertexId(vs[i])};
    // Insertion sort, descending (n <= 8; also avoids a GCC 12
    // -Warray-bounds false positive with std::sort on a subrange).
    for (int i = 1; i < k.n; ++i) {
      const auto v = p[i];
      int j = i - 1;
      for (; j >= 0 && p[j] < v; --j) p[j + 1] = p[j];
      p[j + 1] = v;
    }
    for (int i = 0; i < k.n; ++i) {
      k.value[i] = p[i].first;
      k.vert[i] = p[i].second;
    }
    return k;
  }

  /// Strict comparison of two cells of this block under the
  /// simulation of simplicity. Never reports equality for distinct
  /// cells of equal dimension (their vertex sets differ, and global
  /// vertex ids are unique).
  bool cellLess(Vec3i a, Vec3i b) const { return cellKey(a) < cellKey(b); }

 private:
  Block block_;
  std::vector<float> values_;
};

/// Evaluate an analytic function at every vertex of a block. `fn` is
/// called with the *global* vertex coordinate so that the sampled
/// values are identical regardless of the decomposition.
template <class Fn>
BlockField sampleBlock(const Block& block, Fn&& fn) {
  std::vector<float> v(static_cast<std::size_t>(block.numVertices()));
  std::size_t i = 0;
  for (std::int64_t z = 0; z < block.vdims.z; ++z)
    for (std::int64_t y = 0; y < block.vdims.y; ++y)
      for (std::int64_t x = 0; x < block.vdims.x; ++x)
        v[i++] = fn(Vec3i{x, y, z} + block.voffset);
  return BlockField(block, std::move(v));
}

}  // namespace msc
