/// \file lower_star.hpp
/// Per-vertex lower-star discrete gradient construction.
///
/// An independent, provably-valid alternative to the paper's greedy
/// sweep (gradient.hpp), in the style of Robins/Wood/Sheppard: each
/// cell belongs to the lower star of its (simulation-of-simplicity)
/// maximal vertex, and lower stars are matched independently. The
/// shared-face pairing restriction is honoured by partitioning each
/// lower star into signature classes and matching each class
/// separately, which keeps the computed gradient bit-identical on
/// shared block faces. Used as a correctness cross-check and an
/// ablation baseline for the sweep algorithm.
#pragma once

#include "core/gradient.hpp"

namespace msc {

/// Compute a discrete gradient field by independent lower-star
/// matching. Produces a valid, acyclic field with the same critical
/// cells as the sweep on non-degenerate data.
GradientField computeGradientLowerStar(const BlockField& field,
                                       const GradientOptions& opts = {});

}  // namespace msc
