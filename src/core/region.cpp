#include "core/region.hpp"

#include <algorithm>

namespace msc {

void Region::merge(const Region& other) {
  boxes_.insert(boxes_.end(), other.boxes_.begin(), other.boxes_.end());
  coalesce();
}

namespace {

/// Try to fuse b into a along one axis. Blocks share one refined
/// plane, so "adjacent" means the intervals overlap or abut.
bool tryFuse(Box3& a, const Box3& b) {
  for (int axis = 0; axis < 3; ++axis) {
    const int o1 = (axis + 1) % 3, o2 = (axis + 2) % 3;
    if (a.lo[o1] != b.lo[o1] || a.hi[o1] != b.hi[o1]) continue;
    if (a.lo[o2] != b.lo[o2] || a.hi[o2] != b.hi[o2]) continue;
    // Overlapping or abutting intervals on `axis` fuse into one.
    if (b.lo[axis] <= a.hi[axis] + 1 && a.lo[axis] <= b.hi[axis] + 1) {
      a.lo[axis] = std::min(a.lo[axis], b.lo[axis]);
      a.hi[axis] = std::max(a.hi[axis], b.hi[axis]);
      return true;
    }
  }
  return false;
}

}  // namespace

void Region::coalesce() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < boxes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < boxes_.size(); ++j) {
        if (tryFuse(boxes_[i], boxes_[j])) {
          boxes_.erase(boxes_.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          break;
        }
      }
    }
  }
}

bool Region::contains(Vec3i rc) const {
  return std::any_of(boxes_.begin(), boxes_.end(),
                     [&](const Box3& b) { return b.contains(rc); });
}

bool Region::onSharedBoundary(Vec3i rc, const Domain& domain) const {
  const Vec3i rd = domain.rdims();
  for (const Box3& b : boxes_) {
    if (!b.contains(rc)) continue;
    for (int a = 0; a < 3; ++a) {
      for (int side = 0; side < 2; ++side) {
        const std::int64_t face = side == 0 ? b.lo[a] : b.hi[a];
        if (rc[a] != face) continue;
        Vec3i across = rc;
        across[a] += side == 0 ? -1 : 1;
        if (across[a] < 0 || across[a] >= rd[a]) continue;  // global domain face
        if (!contains(across)) return true;
      }
    }
  }
  return false;
}

Box3 Region::bounds() const {
  Box3 r = boxes_.empty() ? Box3{} : boxes_.front();
  for (const Box3& b : boxes_) {
    for (int a = 0; a < 3; ++a) {
      r.lo[a] = std::min(r.lo[a], b.lo[a]);
      r.hi[a] = std::max(r.hi[a], b.hi[a]);
    }
  }
  return r;
}

}  // namespace msc
