#include "core/region.hpp"

#include <algorithm>

namespace msc {

void Region::merge(const Region& other) {
  boxes_.insert(boxes_.end(), other.boxes_.begin(), other.boxes_.end());
  coalesce();
}

namespace {

/// Try to fuse b into a along one axis. Blocks share one refined
/// plane, so "adjacent" means the intervals overlap or abut.
bool tryFuse(Box3& a, const Box3& b) {
  for (int axis = 0; axis < 3; ++axis) {
    const int o1 = (axis + 1) % 3, o2 = (axis + 2) % 3;
    if (a.lo[o1] != b.lo[o1] || a.hi[o1] != b.hi[o1]) continue;
    if (a.lo[o2] != b.lo[o2] || a.hi[o2] != b.hi[o2]) continue;
    // Overlapping or abutting intervals on `axis` fuse into one.
    if (b.lo[axis] <= a.hi[axis] + 1 && a.lo[axis] <= b.hi[axis] + 1) {
      a.lo[axis] = std::min(a.lo[axis], b.lo[axis]);
      a.hi[axis] = std::max(a.hi[axis], b.hi[axis]);
      return true;
    }
  }
  return false;
}

}  // namespace

void Region::coalesce() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < boxes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < boxes_.size(); ++j) {
        if (tryFuse(boxes_[i], boxes_[j])) {
          boxes_.erase(boxes_.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          break;
        }
      }
    }
  }
}

bool Region::contains(Vec3i rc) const {
  return std::any_of(boxes_.begin(), boxes_.end(),
                     [&](const Box3& b) { return b.contains(rc); });
}

bool Region::onSharedBoundary(Vec3i rc, const Domain& domain) const {
  // A cell is unresolved iff some block outside the region also
  // contains it. With one-vertex-deep sharing that is exactly "some
  // in-domain cell of the 26-neighbourhood lies outside the region":
  // the face-neighbour test used previously misses the re-entrant
  // corners and edges of non-box unions (which arise from the uneven
  // merge groups of non-power-of-two block counts), where a shared
  // cell's face neighbours are all inside but a diagonal one is not.
  // Under-protecting such a cell lets one active complex cancel a
  // node another complex still carries; the later glue resurrects it
  // and the merged complex is corrupt (fuzz finding, see
  // tools/msc_fuzz).
  if (!contains(rc)) return false;
  const Vec3i rd = domain.rdims();
  for (std::int64_t dz = -1; dz <= 1; ++dz)
    for (std::int64_t dy = -1; dy <= 1; ++dy)
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const Vec3i q{rc.x + dx, rc.y + dy, rc.z + dz};
        if (q.x < 0 || q.y < 0 || q.z < 0 || q.x >= rd.x || q.y >= rd.y || q.z >= rd.z)
          continue;  // beyond the global domain: no block there
        if (!contains(q)) return true;
      }
  return false;
}

Box3 Region::bounds() const {
  Box3 r = boxes_.empty() ? Box3{} : boxes_.front();
  for (const Box3& b : boxes_) {
    for (int a = 0; a < 3; ++a) {
      r.lo[a] = std::min(r.lo[a], b.lo[a]);
      r.hi[a] = std::max(r.hi[a], b.hi[a]);
    }
  }
  return r;
}

}  // namespace msc
