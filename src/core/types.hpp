/// \file types.hpp
/// Small value types shared across the library: 3D integer vectors,
/// inclusive integer boxes, and common index aliases.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>

namespace msc {

/// Linear index of a cell in a (refined) grid; also used as the
/// paper's global "address" of a cell (section IV-F1).
using CellAddr = std::uint64_t;

/// Index of a cell within a block's local refined grid.
using LocalCell = std::uint64_t;

/// Sentinel for "no cell".
inline constexpr CellAddr kNoCell = ~CellAddr{0};

/// A 3-component integer vector (grid coordinates, dimensions).
struct Vec3i {
  std::int64_t x{0}, y{0}, z{0};

  constexpr std::int64_t& operator[](int a) { return a == 0 ? x : (a == 1 ? y : z); }
  constexpr std::int64_t operator[](int a) const { return a == 0 ? x : (a == 1 ? y : z); }

  friend constexpr Vec3i operator+(Vec3i a, Vec3i b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Vec3i operator-(Vec3i a, Vec3i b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Vec3i operator*(Vec3i a, std::int64_t s) { return {a.x * s, a.y * s, a.z * s}; }
  friend constexpr bool operator==(Vec3i a, Vec3i b) = default;

  /// Product of components (e.g. number of grid points). Multiplies
  /// in uint64 so hostile dims (fuzzed/corrupt headers) wrap instead
  /// of overflowing signed; consumers must validate the result
  /// against the actual buffer anyway.
  constexpr std::int64_t volume() const {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                     static_cast<std::uint64_t>(y) *
                                     static_cast<std::uint64_t>(z));
  }

  friend std::ostream& operator<<(std::ostream& os, Vec3i v) {
    return os << "(" << v.x << "," << v.y << "," << v.z << ")";
  }
};

/// An axis-aligned box with *inclusive* integer bounds.
struct Box3 {
  Vec3i lo, hi;

  constexpr bool contains(Vec3i p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z && p.z <= hi.z;
  }
  constexpr Vec3i extent() const { return {hi.x - lo.x + 1, hi.y - lo.y + 1, hi.z - lo.z + 1}; }
  constexpr std::int64_t volume() const { return extent().volume(); }
  friend constexpr bool operator==(Box3 a, Box3 b) = default;

  friend std::ostream& operator<<(std::ostream& os, const Box3& b) {
    return os << "[" << b.lo << ".." << b.hi << "]";
  }
};

/// Bitmask of axes (bit a set = axis a), used for the shared-face
/// signature that drives the boundary gradient restriction (IV-C).
using AxisMask = std::uint8_t;

}  // namespace msc
