/// \file boundary.hpp
/// Global boundary-pairing signatures (the exact IV-C rule).
///
/// The paper restricts the discrete gradient on block boundaries:
/// "for a cell on the boundary of two or more blocks, we only
/// consider for pairing other cells also on the boundary of those
/// same blocks". Block::sharedSignature approximates this with a
/// block-local face mask, which is exact only when every partition
/// plane extends across the whole domain. The uneven bisections
/// produced by decompose() create T-junctions — a partition plane
/// that exists on one side of a neighbouring plane but not the other
/// — where the local masks of two blocks disagree about a corner
/// cell, the blocks pair it differently, and the union of the
/// per-block gradients stops being a valid global gradient (the
/// merged complex then violates the Morse-Euler relation; found by
/// the msc::check fuzz harness).
///
/// BoundarySignatures implements the rule exactly: the signature of a
/// cell is (an interned id of) the set of blocks whose refined box
/// contains it. Two cells may pair iff their signatures are equal.
/// Both blocks sharing a cell compute the same set, so the
/// restriction is symmetric by construction, for any decomposition.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/grid.hpp"

namespace msc {

class BoundarySignatures {
 public:
  BoundarySignatures() = default;

  /// Build the signatures of `mine`'s cells against the full
  /// decomposition `all` (which must contain `mine`). Cost is
  /// O(boundary cells x intersecting neighbours).
  BoundarySignatures(const std::vector<Block>& all, const Block& mine);

  /// Signature class of the cell at *local* refined coordinate `rc`:
  /// 0 for cells interior to the block (contained in no other block),
  /// equal non-zero ids iff the cells lie in exactly the same set of
  /// blocks. Ids are only meaningful within one BoundarySignatures
  /// instance; equality of the underlying block sets is what they
  /// encode.
  std::uint32_t at(Vec3i rc) const {
    if (sig_.empty()) return 0;
    const auto it = sig_.find(block_.cellIndex(rc));
    return it == sig_.end() ? 0 : it->second;
  }

  /// Number of distinct non-interior classes.
  std::uint32_t classCount() const { return next_id_ - 1; }

 private:
  Block block_;
  std::unordered_map<LocalCell, std::uint32_t> sig_;
  std::uint32_t next_id_{1};
};

}  // namespace msc
