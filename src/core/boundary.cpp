#include "core/boundary.hpp"

#include <algorithm>
#include <map>

namespace msc {

BoundarySignatures::BoundarySignatures(const std::vector<Block>& all, const Block& mine)
    : block_(mine) {
  // Candidate neighbours: blocks whose refined box intersects mine's.
  // Two blocks overlap in at most one shared vertex layer per axis,
  // so any cell contained in another block lies on one of mine's
  // boundary faces.
  const Box3 my_box = mine.refinedBox();
  std::vector<Box3> neighbours;
  for (const Block& b : all) {
    if (b.id == mine.id) continue;
    const Box3 nb = b.refinedBox();
    const bool overlaps = nb.lo.x <= my_box.hi.x && nb.hi.x >= my_box.lo.x &&
                          nb.lo.y <= my_box.hi.y && nb.hi.y >= my_box.lo.y &&
                          nb.lo.z <= my_box.hi.z && nb.hi.z >= my_box.lo.z;
    if (overlaps) neighbours.push_back(nb);
  }
  if (neighbours.empty()) return;

  // Intern each distinct containing-set (as a sorted list of
  // neighbour indices; "mine" is implicit) into a small id.
  std::map<std::vector<int>, std::uint32_t> interned;
  std::vector<int> key;
  const Vec3i r = mine.rdims();
  const auto visit = [&](Vec3i rc) {
    const LocalCell ci = mine.cellIndex(rc);
    if (sig_.count(ci)) return;
    const Vec3i grc = rc + mine.voffset * 2;
    key.clear();
    for (std::size_t n = 0; n < neighbours.size(); ++n)
      if (neighbours[n].contains(grc)) key.push_back(static_cast<int>(n));
    if (key.empty()) return;  // interior: on a global-domain face only
    const auto [it, fresh] = interned.try_emplace(key, next_id_);
    if (fresh) ++next_id_;
    sig_.emplace(ci, it->second);
  };

  // Only cells on the block's six boundary planes can be contained in
  // a neighbour.
  for (int axis = 0; axis < 3; ++axis) {
    const int u = (axis + 1) % 3, v = (axis + 2) % 3;
    for (const std::int64_t plane : {std::int64_t{0}, r[axis] - 1}) {
      for (std::int64_t a = 0; a < r[u]; ++a)
        for (std::int64_t b = 0; b < r[v]; ++b) {
          Vec3i rc;
          rc[axis] = plane;
          rc[u] = a;
          rc[v] = b;
          visit(rc);
        }
    }
  }
}

}  // namespace msc
