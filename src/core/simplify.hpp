/// \file simplify.hpp
/// Persistence-based simplification of the 1-skeleton (sections
/// III-C and IV-E).
///
/// Arcs are cancelled in order of persistence, each cancellation
/// removing the pair of endpoint nodes and all their arcs and
/// reconnecting the neighbourhood with new arcs whose geometry
/// references the merged geometry objects. Arcs with an endpoint on
/// the unresolved block boundary are never cancelled ("we do not
/// consider for cancellation any arc having boundary nodes").
#pragma once

#include "core/complex.hpp"

namespace msc::metrics {
class Registry;
}  // namespace msc::metrics

namespace msc {

struct SimplifyOptions {
  /// Cancel only arcs with persistence <= threshold.
  float persistence_threshold = 0;
  /// Maximum cancellations to perform; 0 means unlimited.
  std::int64_t max_cancellations = 0;
  /// A cancellation of (p, q) creates (deg_up(p)-1) * (deg_down(q)-1)
  /// new arcs; on regular lattices repeated cancellation aggregates
  /// degree into hubs and the arc count explodes quadratically.
  /// Following the practical guidance of ref [11], cancellations that
  /// would create more than this many arcs are deferred (they are
  /// retried when a neighbouring cancellation changes the degrees).
  /// 0 means unlimited.
  std::int64_t max_new_arcs_per_cancellation = 64;
  /// Optional work counters (non-owning): cancellations, arcs
  /// removed/created, and the persistence histogram of cancelled
  /// pairs, tallied locally and flushed once per simplify() call.
  /// Recording never changes the simplified complex.
  metrics::Registry* metrics = nullptr;
  int metrics_rank = 0;
};

struct SimplifyStats {
  std::int64_t cancellations{0};
  std::int64_t arcs_removed{0};
  std::int64_t arcs_created{0};
  std::int64_t skipped_multi_arc{0};
  std::int64_t skipped_boundary{0};
  std::int64_t skipped_degree{0};  ///< deferred by max_new_arcs_per_cancellation
};

/// Simplify in place. Returns the number of cancellations performed.
std::int64_t simplify(MsComplex& complex, const SimplifyOptions& opts,
                      SimplifyStats* stats = nullptr);

/// Perform one cancellation of arc `a` (must be valid: endpoints
/// interior and connected by exactly this single arc). Exposed for
/// tests and fine-grained drivers.
void cancelArc(MsComplex& complex, ArcId a, SimplifyStats* stats = nullptr);

/// True if the arc may be cancelled: both endpoints alive, interior
/// (not boundary), and connected by exactly one arc.
bool isCancellable(const MsComplex& complex, ArcId a);

}  // namespace msc
