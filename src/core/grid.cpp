#include "core/grid.hpp"

namespace msc {

int facets(Vec3i rc, Vec3i r, std::span<Vec3i, 6> out) {
  (void)r;  // facets of in-grid cells are always in-grid
  int n = 0;
  for (int a = 0; a < 3; ++a) {
    if (rc[a] & 1) {
      Vec3i m = rc;
      m[a] -= 1;
      out[n++] = m;
      m[a] += 2;
      out[n++] = m;
    }
  }
  return n;
}

int cofacets(Vec3i rc, Vec3i r, std::span<Vec3i, 6> out) {
  int n = 0;
  for (int a = 0; a < 3; ++a) {
    if (!(rc[a] & 1)) {
      if (rc[a] - 1 >= 0) {
        Vec3i m = rc;
        m[a] -= 1;
        out[n++] = m;
      }
      if (rc[a] + 1 < r[a]) {
        Vec3i m = rc;
        m[a] += 1;
        out[n++] = m;
      }
    }
  }
  return n;
}

int cellVertices(Vec3i rc, std::span<Vec3i, 8> out) {
  // Each odd refined coordinate spans two vertices (floor and ceil of
  // rc/2); each even coordinate pins one vertex (rc/2).
  int n = 1;
  out[0] = {rc.x / 2, rc.y / 2, rc.z / 2};
  for (int a = 0; a < 3; ++a) {
    if (rc[a] & 1) {
      for (int i = 0; i < n; ++i) {
        out[n + i] = out[i];
        out[n + i][a] += 1;
      }
      n *= 2;
    }
  }
  return n;
}

}  // namespace msc
