#include "core/merge.hpp"

#include "metrics/metrics.hpp"

namespace msc {

void glue(MsComplex& root, const MsComplex& other, GlueStats* stats,
          metrics::Registry* metrics, int metrics_rank) {
  GlueStats local{};
  if (metrics && !stats) stats = &local;
  const GlueStats before = stats ? *stats : GlueStats{};
  assert(root.domain() == other.domain());
  const auto index = root.addressIndex();
  // Region covered by the root before this glue: the only place where
  // both complexes can have traced the same arc.
  const Region covered = root.region();

  std::vector<NodeId> map(other.nodes().size(), kNone);
  std::vector<bool> pre(other.nodes().size(), false);

  for (std::size_t i = 0; i < other.nodes().size(); ++i) {
    const Node& nd = other.nodes()[i];
    if (!nd.alive) continue;
    if (const auto it = index.find(nd.addr); it != index.end()) {
      map[i] = it->second;
      pre[i] = true;
      if (stats) ++stats->nodes_shared;
    } else {
      map[i] = root.addNode(nd.addr, nd.index, nd.value);
      if (stats) ++stats->nodes_added;
    }
  }

  for (const Arc& ar : other.arcs()) {
    if (!ar.alive) continue;
    const auto lo = static_cast<std::size_t>(ar.lower);
    const auto up = static_cast<std::size_t>(ar.upper);
    Geom g;
    if (ar.geom != kNone) g.cells = other.flattenGeom(ar.geom);
    if (pre[lo] && pre[up]) {
      // Both endpoints were on the shared boundary. The root already
      // owns the arc iff its whole V-path lies in the region the root
      // covered before this glue (there both sides traced identical
      // restricted gradients). An arc between two shared nodes whose
      // path crosses `other`'s uncovered interior — e.g. a composite
      // created by a round of simplification reconnecting across a
      // cancelled pair — is new and must be kept.
      bool duplicate = true;
      for (const CellAddr a : g.cells)
        if (!covered.contains(other.domain().coordOf(a))) {
          duplicate = false;
          break;
        }
      if (duplicate) {
        if (stats) ++stats->arcs_deduped;
        continue;
      }
    }
    const GeomId gid = root.addGeom(std::move(g));
    root.addArc(map[lo], map[up], gid);
    if (stats) ++stats->arcs_added;
  }

  root.region().merge(other.region());

  if (metrics) {
    using metrics::Counter;
    metrics->add(metrics_rank, Counter::kMergeNodesMerged,
                 stats->nodes_added - before.nodes_added);
    metrics->add(metrics_rank, Counter::kMergeNodesDeduped,
                 stats->nodes_shared - before.nodes_shared);
    metrics->add(metrics_rank, Counter::kMergeArcsMerged,
                 stats->arcs_added - before.arcs_added);
    metrics->add(metrics_rank, Counter::kMergeArcsDeduped,
                 stats->arcs_deduped - before.arcs_deduped);
  }
}

std::int64_t finishMerge(MsComplex& root, float persistence_threshold,
                         SimplifyStats* stats, metrics::Registry* metrics,
                         int metrics_rank) {
  root.recomputeBoundary();
  SimplifyOptions opts;
  opts.persistence_threshold = persistence_threshold;
  opts.metrics = metrics;
  opts.metrics_rank = metrics_rank;
  return simplify(root, opts, stats);
}

std::int64_t mergeComplexes(MsComplex& root, std::vector<MsComplex> others,
                            float persistence_threshold, GlueStats* gstats,
                            SimplifyStats* sstats, metrics::Registry* metrics,
                            int metrics_rank) {
  root.compact();
  for (const MsComplex& o : others) glue(root, o, gstats, metrics, metrics_rank);
  return finishMerge(root, persistence_threshold, sstats, metrics, metrics_rank);
}

}  // namespace msc
