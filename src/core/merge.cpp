#include "core/merge.hpp"

#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc {

namespace {

/// Walk a geometry DAG's leaf cells in flattened order, calling
/// `fn(CellAddr)` until it returns false; returns false iff stopped.
/// Reversal does not matter to callers here (they test set membership),
/// so children are visited in natural order.
template <class Fn>
bool forEachGeomCell(const MsComplex& c, GeomId g, Fn&& fn) {
  std::vector<GeomId> stack{g};
  while (!stack.empty()) {
    const GeomId id = stack.back();
    stack.pop_back();
    const Geom& ge = c.geom(id);
    if (ge.children.empty()) {
      for (const CellAddr a : ge.cells)
        if (!fn(a)) return false;
    } else {
      for (const auto& ch : ge.children) stack.push_back(ch.id);
    }
  }
  return true;
}

void glueImpl(MsComplex& root, MsComplex& other, bool may_move, GlueStats* stats,
              metrics::Registry* metrics, int metrics_rank,
              const std::vector<std::uint8_t>* dup_flags) {
  MSC_PROF_POINT("glue");
  GlueStats local{};
  if (metrics && !stats) stats = &local;
  const GlueStats before = stats ? *stats : GlueStats{};
  assert(root.domain() == other.domain());
  const auto index = root.addressIndex();
  // Region covered by the root before this glue: the only place where
  // both complexes can have traced the same arc.
  const Region covered = root.region();

  std::vector<NodeId> map(other.nodes().size(), kNone);
  std::vector<bool> pre(other.nodes().size(), false);

  for (std::size_t i = 0; i < other.nodes().size(); ++i) {
    const Node& nd = other.nodes()[i];
    if (!nd.alive) continue;
    if (const auto it = index.find(nd.addr); it != index.end()) {
      map[i] = it->second;
      pre[i] = true;
      if (stats) ++stats->nodes_shared;
    } else {
      map[i] = root.addNode(nd.addr, nd.index, nd.value);
      if (stats) ++stats->nodes_added;
    }
  }

  // A leaf geometry may be moved instead of copied only when no other
  // live arc and no composite shares it (compacted complexes never
  // do, but glue cannot assume its input was compacted).
  std::vector<std::uint8_t> geom_refs;
  if (may_move) {
    geom_refs.assign(other.geoms().size(), 0);
    for (const Arc& ar : other.arcs()) {
      if (!ar.alive || ar.geom == kNone) continue;
      auto& r = geom_refs[static_cast<std::size_t>(ar.geom)];
      if (r < 2) ++r;
      if (!other.geom(ar.geom).children.empty()) {
        std::vector<GeomId> stack{ar.geom};
        while (!stack.empty()) {
          const GeomId id = stack.back();
          stack.pop_back();
          for (const auto& ch : other.geom(id).children) {
            geom_refs[static_cast<std::size_t>(ch.id)] = 2;
            stack.push_back(ch.id);
          }
        }
      }
    }
  }

  std::size_t live_ordinal = 0;
  for (const Arc& ar : other.arcs()) {
    if (!ar.alive) continue;
    const std::size_t ordinal = live_ordinal++;
    const auto lo = static_cast<std::size_t>(ar.lower);
    const auto up = static_cast<std::size_t>(ar.upper);
    if (pre[lo] && pre[up]) {
      // Both endpoints were on the shared boundary. The root already
      // owns the arc iff its whole V-path lies in the region the root
      // covered before this glue (there both sides traced identical
      // restricted gradients). An arc between two shared nodes whose
      // path crosses `other`'s uncovered interior — e.g. a composite
      // created by a round of simplification reconnecting across a
      // cancelled pair — is new and must be kept. A sharded-round
      // skeleton carries the sender's precomputed verdict instead of
      // the real path (its cells are sentinels the scan cannot judge).
      bool duplicate = true;
      if (dup_flags) {
        duplicate = (*dup_flags)[ordinal] != 0;
      } else if (ar.geom != kNone) {
        duplicate = forEachGeomCell(other, ar.geom, [&](CellAddr a) {
          return covered.contains(other.domain().coordOf(a));
        });
      }
      if (duplicate) {
        if (stats) ++stats->arcs_deduped;
        continue;
      }
    }
    Geom g;
    if (ar.geom != kNone) {
      const Geom& og = other.geom(ar.geom);
      if (may_move && og.children.empty() &&
          geom_refs[static_cast<std::size_t>(ar.geom)] == 1)
        g.cells = other.takeLeafGeomCells(ar.geom);
      else
        g.cells = other.flattenGeom(ar.geom);
    }
    const GeomId gid = root.addGeom(std::move(g));
    root.addArc(map[lo], map[up], gid);
    if (stats) ++stats->arcs_added;
  }

  root.region().merge(other.region());

  if (metrics) {
    using metrics::Counter;
    metrics->add(metrics_rank, Counter::kMergeNodesMerged,
                 stats->nodes_added - before.nodes_added);
    metrics->add(metrics_rank, Counter::kMergeNodesDeduped,
                 stats->nodes_shared - before.nodes_shared);
    metrics->add(metrics_rank, Counter::kMergeArcsMerged,
                 stats->arcs_added - before.arcs_added);
    metrics->add(metrics_rank, Counter::kMergeArcsDeduped,
                 stats->arcs_deduped - before.arcs_deduped);
  }
}

}  // namespace

void glue(MsComplex& root, const MsComplex& other, GlueStats* stats,
          metrics::Registry* metrics, int metrics_rank,
          const std::vector<std::uint8_t>* dup_flags) {
  glueImpl(root, const_cast<MsComplex&>(other), /*may_move=*/false, stats, metrics,
           metrics_rank, dup_flags);
}

void glue(MsComplex& root, MsComplex&& other, GlueStats* stats,
          metrics::Registry* metrics, int metrics_rank,
          const std::vector<std::uint8_t>* dup_flags) {
  glueImpl(root, other, /*may_move=*/true, stats, metrics, metrics_rank, dup_flags);
}

std::int64_t finishMerge(MsComplex& root, float persistence_threshold,
                         SimplifyStats* stats, metrics::Registry* metrics,
                         int metrics_rank) {
  MSC_PROF_POINT("finish_merge");
  root.recomputeBoundary();
  SimplifyOptions opts;
  opts.persistence_threshold = persistence_threshold;
  opts.metrics = metrics;
  opts.metrics_rank = metrics_rank;
  return simplify(root, opts, stats);
}

std::int64_t mergeComplexes(MsComplex& root, std::vector<MsComplex> others,
                            float persistence_threshold, GlueStats* gstats,
                            SimplifyStats* sstats, metrics::Registry* metrics,
                            int metrics_rank) {
  root.compact();
  for (MsComplex& o : others) glue(root, std::move(o), gstats, metrics, metrics_rank);
  return finishMerge(root, persistence_threshold, sstats, metrics, metrics_rank);
}

}  // namespace msc
