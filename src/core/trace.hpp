/// \file trace.hpp
/// MS complex computation by tracing V-paths (section IV-D).
///
/// Critical cells become nodes; V-paths traced downward from each
/// critical d-cell (d >= 1) to critical (d-1)-cells become arcs, one
/// arc per distinct path, carrying the path's cell addresses as its
/// geometric embedding. The boundary gradient restriction guarantees
/// paths terminate inside the block.
#pragma once

#include "core/complex.hpp"
#include "core/gradient.hpp"

namespace msc {

struct TraceOptions {
  /// Safety valve against pathological path explosion: maximum number
  /// of descending paths enumerated from one critical cell. 0 means
  /// unlimited. Truncations are counted in TraceStats.
  std::int64_t max_paths_per_cell = 0;
  /// Optional work counters (non-owning): V-path steps, arcs emitted,
  /// geometry cells, and the path-length histogram, accumulated
  /// locally and flushed once per traceComplex call. Recording never
  /// changes the traced complex.
  metrics::Registry* metrics = nullptr;
  int metrics_rank = 0;
};

struct TraceStats {
  std::int64_t nodes{0};
  std::int64_t arcs{0};
  std::int64_t geometry_cells{0};  ///< total embedded path length
  std::int64_t truncated_cells{0};  ///< critical cells whose enumeration hit the cap
};

/// Build the 1-skeleton of the MS complex of one block from its
/// discrete gradient field. `field` supplies node values (the block's
/// scalar samples the gradient was computed from).
MsComplex traceComplex(const GradientField& grad, const BlockField& field,
                       const TraceOptions& opts = {}, TraceStats* stats = nullptr);

}  // namespace msc
