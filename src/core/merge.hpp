/// \file merge.hpp
/// Gluing MS complexes of neighbouring regions (section IV-F3).
///
/// Because the discrete gradient is identical on the shared boundary
/// between blocks, any critical cell there is a node in both
/// complexes; those shared nodes anchor the glue. Nodes of the
/// incoming complex are matched to the root's by global cell address;
/// arcs are imported unless both endpoints were already present
/// (such arcs lie entirely in the shared boundary and are guaranteed
/// to exist in the root). Afterwards the boundary status of every
/// node is recomputed against the merged region, turning interface
/// nodes into cancellation candidates.
#pragma once

#include "core/complex.hpp"
#include "core/simplify.hpp"

namespace msc {

struct GlueStats {
  std::int64_t nodes_added{0};
  std::int64_t nodes_shared{0};
  std::int64_t arcs_added{0};
  std::int64_t arcs_deduped{0};
};

/// Glue `other` into `root` (both complexes over the same Domain).
/// Does not recompute boundary flags or re-simplify; callers gluing
/// several complexes call finishMerge() once at the end. When
/// `metrics` is set the glue deltas are also flushed into the
/// registry's merge counters under `metrics_rank`.
///
/// `dup_flags`, when non-null, holds one byte per live arc of `other`
/// (in arc-id order): the precomputed outcome of the duplicate-path
/// test for arcs whose endpoints are both shared. The sharded final
/// round (merge/shard.hpp) ships these flags alongside sentinel
/// skeletons whose geometry no longer carries the real V-paths the
/// test would scan; replaying the sender-side verdict keeps the glue
/// decision -- and therefore every node/arc id -- identical to a glue
/// of the real complex.
void glue(MsComplex& root, const MsComplex& other, GlueStats* stats = nullptr,
          metrics::Registry* metrics = nullptr, int metrics_rank = 0,
          const std::vector<std::uint8_t>* dup_flags = nullptr);

/// Consuming glue: identical result, but leaf geometry paths are
/// moved out of `other` instead of flatten-copied (a flattened leaf
/// is byte-for-byte its own cell path). Compacted members are all
/// leaves, so the drivers' merge rounds become move-dominated; the
/// duplicate-path test additionally walks geometry in place instead
/// of materializing it. `other` is left in a consumed state.
void glue(MsComplex& root, MsComplex&& other, GlueStats* stats = nullptr,
          metrics::Registry* metrics = nullptr, int metrics_rank = 0,
          const std::vector<std::uint8_t>* dup_flags = nullptr);

/// After all glues of a merge round: recompute boundary status
/// against the merged region and re-simplify to the threshold,
/// creating a new hierarchy on the merged complex (IV-F3). `metrics`
/// is forwarded to the simplification pass.
std::int64_t finishMerge(MsComplex& root, float persistence_threshold,
                         SimplifyStats* stats = nullptr,
                         metrics::Registry* metrics = nullptr,
                         int metrics_rank = 0);

/// Convenience: glue all of `others` into `root` and finish.
std::int64_t mergeComplexes(MsComplex& root, std::vector<MsComplex> others,
                            float persistence_threshold, GlueStats* gstats = nullptr,
                            SimplifyStats* sstats = nullptr,
                            metrics::Registry* metrics = nullptr,
                            int metrics_rank = 0);

}  // namespace msc
