#include "core/gradient.hpp"

#include <algorithm>

#include "core/boundary.hpp"
#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc {

std::uint8_t directionCode(Vec3i from, Vec3i to) {
  for (int a = 0; a < 3; ++a) {
    if (to[a] == from[a] + 1) return static_cast<std::uint8_t>(a * 2 + 1);
    if (to[a] == from[a] - 1) return static_cast<std::uint8_t>(a * 2);
  }
  assert(false && "cells are not facet-adjacent");
  return kUnassigned;
}

std::array<std::int64_t, 4> GradientField::criticalCounts() const {
  std::array<std::int64_t, 4> c{0, 0, 0, 0};
  const Vec3i r = block_.rdims();
  LocalCell i = 0;
  for (std::int64_t z = 0; z < r.z; ++z)
    for (std::int64_t y = 0; y < r.y; ++y)
      for (std::int64_t x = 0; x < r.x; ++x, ++i)
        if (state_[i] == kCritical) ++c[Domain::cellDim({x, y, z})];
  return c;
}

namespace {

/// Comparator implementing the strict simulation-of-simplicity order,
/// short-circuiting on the cached cell value (the key's first entry).
struct CellLess {
  const BlockField& field;
  const Block& blk;
  const std::vector<float>& val;

  bool operator()(std::uint32_t a, std::uint32_t b) const {
    if (val[a] != val[b]) return val[a] < val[b];
    return field.cellKey(blk.cellCoord(a)) < field.cellKey(blk.cellCoord(b));
  }
};

}  // namespace

GradientField computeGradientSweep(const BlockField& field, const GradientOptions& opts) {
  MSC_PROF_POINT("gradient_sweep");
  const Block& blk = field.block();
  const Vec3i r = blk.rdims();
  const std::int64_t n = blk.numCells();
  assert(n < (std::int64_t(1) << 32) && "block too large for 32-bit local cell ids");

  std::vector<std::uint8_t> state(static_cast<std::size_t>(n), kUnassigned);
  std::vector<float> val(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> ufacets(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> sig(static_cast<std::size_t>(n), 0);
  std::array<std::vector<std::uint32_t>, 4> byDim;

  {
    LocalCell i = 0;
    for (std::int64_t z = 0; z < r.z; ++z)
      for (std::int64_t y = 0; y < r.y; ++y)
        for (std::int64_t x = 0; x < r.x; ++x, ++i) {
          const Vec3i rc{x, y, z};
          const int d = Domain::cellDim(rc);
          val[i] = field.cellValue(rc);
          ufacets[i] = static_cast<std::uint8_t>(2 * d);
          if (opts.restrict_boundary)
            sig[i] = opts.signatures ? opts.signatures->at(rc)
                                     : std::uint32_t{blk.sharedSignature(rc)};
          byDim[d].push_back(static_cast<std::uint32_t>(i));
        }
  }

  const CellLess less{field, blk, val};

  // Mark a cell assigned and update the unassigned-facet counts of
  // its cofacets.
  std::array<Vec3i, 6> cof;
  const auto assign = [&](Vec3i rc, std::uint8_t s) {
    state[blk.cellIndex(rc)] = s;
    const int nc = cofacets(rc, r, cof);
    for (int k = 0; k < nc; ++k) --ufacets[blk.cellIndex(cof[k])];
  };

  std::int64_t pairs = 0, crits = 0;
  for (int d = 0; d < 4; ++d) {
    std::vector<std::uint32_t>& order = byDim[d];
    std::sort(order.begin(), order.end(), less);
    for (const std::uint32_t ci : order) {
      if (state[ci] != kUnassigned) continue;  // paired as a head in the d-1 pass
      const Vec3i rc = blk.cellCoord(ci);
      const std::uint32_t s = sig[ci];
      // Candidate heads: unassigned cofacets of equal signature whose
      // only unassigned facet is this cell; take the steepest
      // (minimal in the cell order).
      std::int64_t best = -1;
      Vec3i bestCoord{};
      const int nc = cofacets(rc, r, cof);
      for (int k = 0; k < nc; ++k) {
        const LocalCell bi = blk.cellIndex(cof[k]);
        if (state[bi] != kUnassigned || ufacets[bi] != 1 || sig[bi] != s) continue;
        if (best < 0 || less(static_cast<std::uint32_t>(bi), static_cast<std::uint32_t>(best))) {
          best = static_cast<std::int64_t>(bi);
          bestCoord = cof[k];
        }
      }
      if (best >= 0) {
        assign(rc, directionCode(rc, bestCoord));
        assign(bestCoord, directionCode(bestCoord, rc));
        ++pairs;
      } else {
        assign(rc, kCritical);
        ++crits;
      }
    }
  }

  if (opts.metrics) {
    using metrics::Counter;
    opts.metrics->add(opts.metrics_rank, Counter::kGradCells, n);
    opts.metrics->add(opts.metrics_rank, Counter::kGradPairs, pairs);
    opts.metrics->add(opts.metrics_rank, Counter::kGradCriticals, crits);
  }

  return GradientField(blk, std::move(state));
}

}  // namespace msc
