/// \file region.hpp
/// The spatial extent covered by an MS complex: a union of block
/// boxes in global refined coordinates. Used to recompute node
/// boundary status after gluing (section IV-F3: "the boundary status
/// of each node is updated according to the bounds of the merged
/// blocks").
#pragma once

#include <vector>

#include "core/grid.hpp"

namespace msc {

/// A union of inclusive boxes in global refined coordinates.
///
/// Neighbouring blocks share one vertex layer, so the boxes of two
/// adjacent blocks overlap in one refined plane; coalesce() exploits
/// this to keep the box list small as merges proceed.
class Region {
 public:
  Region() = default;
  explicit Region(Box3 box) : boxes_{box} {}

  const std::vector<Box3>& boxes() const { return boxes_; }
  bool empty() const { return boxes_.empty(); }

  /// Add a box (no coalescing; call coalesce() afterwards).
  void add(Box3 b) { boxes_.push_back(b); }

  /// Merge another region into this one and coalesce.
  void merge(const Region& other);

  /// Greedily fuse boxes that are adjacent (sharing a full face
  /// plane) and equal in the other two axes.
  void coalesce();

  /// True if the global refined coordinate lies inside the union.
  bool contains(Vec3i rc) const;

  /// True if the cell at `rc` lies on the *unresolved* boundary of
  /// the region: it is on a face of some member box whose across-face
  /// neighbour position is outside the union and not beyond the
  /// global domain boundary. Nodes at such cells must not be
  /// cancelled (IV-E) and anchor future gluings (IV-F3).
  bool onSharedBoundary(Vec3i rc, const Domain& domain) const;

  /// Bounding box of the union.
  Box3 bounds() const;

  /// Total volume if the union were disjoint minus overlaps is NOT
  /// computed; this is the plain bounding-box volume check helper:
  /// true if the union of boxes exactly fills bounds().
  bool isBox() const { return boxes_.size() == 1; }

 private:
  std::vector<Box3> boxes_;
};

}  // namespace msc
