/// \file complex.hpp
/// The 1-skeleton of the Morse-Smale complex (sections IV-D/IV-E).
///
/// Nodes (critical cells), arcs (V-paths between critical cells of
/// consecutive index) and geometry objects are constant-size records
/// stored in arrays, following the data structure of ref [11]. Arcs
/// are threaded through two intrusive doubly-linked lists (one per
/// endpoint) for O(1) unlinking during cancellation. Cancellations
/// stamp generation numbers onto destroyed/created elements, forming
/// the multi-resolution hierarchy of section III-C.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/region.hpp"

namespace msc {

using NodeId = std::int32_t;
using ArcId = std::int32_t;
using GeomId = std::int32_t;
inline constexpr std::int32_t kNone = -1;

/// A critical point of the complex.
struct Node {
  CellAddr addr{kNoCell};  ///< global refined-grid address of the critical cell
  float value{0};          ///< scalar value (max over cell vertices)
  std::uint8_t index{0};   ///< Morse index = cell dimension (0..3)
  bool boundary{false};    ///< on the unresolved shared boundary of the region
  bool alive{true};
  std::int32_t destroyed_gen{kNone};  ///< cancellation generation, kNone if alive
  ArcId arcs_head{kNone};             ///< intrusive list of incident arcs
  std::int32_t n_arcs{0};             ///< number of live incident arcs
};

/// An arc connecting a node of index d ("lower") to one of index d+1
/// ("upper"). Geometry is recorded descending from the upper node's
/// cell to the lower node's cell.
struct Arc {
  NodeId lower{kNone}, upper{kNone};
  GeomId geom{kNone};
  bool alive{true};
  std::int32_t created_gen{0};
  std::int32_t destroyed_gen{kNone};
  /// Intrusive list links; slot 0 threads the lower endpoint's list,
  /// slot 1 the upper endpoint's.
  ArcId next[2]{kNone, kNone}, prev[2]{kNone, kNone};
};

/// Geometric embedding of an arc: either a leaf path of cell
/// addresses, or a composition of earlier geometries created by a
/// cancellation (section IV-E: "a new geometry object is created that
/// references the geometry objects that were merged").
struct Geom {
  struct Ref {
    GeomId id{kNone};
    bool reversed{false};
  };
  std::vector<CellAddr> cells;  ///< leaf path (empty for composites)
  std::vector<Ref> children;    ///< composite references (empty for leaves)
};

/// One cancellation record of the hierarchy.
struct Cancellation {
  float persistence{0};
  NodeId lower{kNone}, upper{kNone};
};

/// The 1-skeleton of an MS complex over a region of the domain.
class MsComplex {
 public:
  MsComplex() = default;
  MsComplex(Domain domain, Region region) : domain_(domain), region_(std::move(region)) {}

  const Domain& domain() const { return domain_; }
  const Region& region() const { return region_; }
  Region& region() { return region_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Arc>& arcs() const { return arcs_; }
  const std::vector<Geom>& geoms() const { return geoms_; }
  const std::vector<Cancellation>& cancellations() const { return cancellations_; }

  const Node& node(NodeId n) const { return nodes_[static_cast<std::size_t>(n)]; }
  const Arc& arc(ArcId a) const { return arcs_[static_cast<std::size_t>(a)]; }
  const Geom& geom(GeomId g) const { return geoms_[static_cast<std::size_t>(g)]; }

  /// Current cancellation generation (= number of cancellations).
  std::int32_t generation() const { return static_cast<std::int32_t>(cancellations_.size()); }

  NodeId addNode(CellAddr addr, std::uint8_t index, float value);
  GeomId addGeom(Geom g);
  ArcId addArc(NodeId lower, NodeId upper, GeomId geom, std::int32_t created_gen = 0);

  /// Unlink and mark an arc dead, stamping the generation.
  void removeArc(ArcId a, std::int32_t gen);
  /// Mark a node dead (its arcs must already be removed).
  void removeNode(NodeId n, std::int32_t gen);

  /// Number of live arcs between two nodes (the cancellation validity
  /// test: exactly one is required).
  int countArcsBetween(NodeId a, NodeId b) const;

  /// Visit the live arcs incident to a node; `fn(ArcId)` returning
  /// false stops early. Returns false iff stopped early.
  template <class Fn>
  bool forEachArc(NodeId n, Fn&& fn) const {
    const Node& nd = nodes_[static_cast<std::size_t>(n)];
    for (ArcId a = nd.arcs_head; a != kNone;) {
      const Arc& ar = arcs_[static_cast<std::size_t>(a)];
      const int slot = ar.upper == n ? 1 : 0;
      const ArcId next = ar.next[slot];
      if (!fn(a)) return false;
      a = next;
    }
    return true;
  }

  /// Persistence of an arc: |f(upper) - f(lower)| (section III-C).
  float persistence(ArcId a) const {
    const Arc& ar = arc(a);
    const float d = node(ar.upper).value - node(ar.lower).value;
    return d < 0 ? -d : d;
  }

  /// Record a cancellation (used by simplify()).
  void recordCancellation(const Cancellation& c) { cancellations_.push_back(c); }

  /// Flatten a geometry DAG into the full descending cell path.
  std::vector<CellAddr> flattenGeom(GeomId g) const;

  /// Length of the flattened path without materializing it (the
  /// pack-size accounting walk; reversal does not change the count).
  std::int64_t flattenedGeomLength(GeomId g) const;

  /// Move a leaf geometry's cell path out of the complex (the
  /// zero-copy import path of glue when the donor complex is being
  /// consumed). The record stays behind empty, so the donor must not
  /// be used again except for destruction.
  std::vector<CellAddr> takeLeafGeomCells(GeomId g) {
    return std::move(geoms_[static_cast<std::size_t>(g)].cells);
  }

  /// Recompute every live node's boundary flag against the current
  /// region (IV-F3, after gluing).
  void recomputeBoundary();

  /// Census helpers.
  std::array<std::int64_t, 4> liveNodeCounts() const;
  std::int64_t liveArcCount() const;
  std::int64_t liveNodeCount() const;

  /// Drop all dead elements and composite geometries (flattening the
  /// geometry of surviving arcs), remap ids, and clear the hierarchy:
  /// the surviving complex becomes the new base (IV-F1: "remove from
  /// memory all but the coarsest levels of the hierarchy").
  void compact();

  /// Build a map from cell address to live node id (the merge
  /// stage's gluing anchor lookup).
  std::unordered_map<CellAddr, NodeId> addressIndex() const;

  /// Collapse runs of consecutive duplicate cells in leaf geometry
  /// paths. Flattening a cancellation composite repeats the junction
  /// cell where two child paths meet, so heavily simplified complexes
  /// carry one duplicate per junction; dropping them shrinks pack()
  /// output while preserving the path's cell set and traversal order
  /// (both the glue duplicate test and check::canonicalArc are
  /// invariant under this rewrite). Composite geometries are left
  /// untouched -- compact() first. Returns the number of cells
  /// removed.
  std::int64_t compressLeafGeometry();

  // --- Multi-resolution hierarchy queries (section III-C). The
  // cancellations form a filtration of complexes; generation g is the
  // complex after the first g cancellations (g = 0 is the unsimplified
  // base, g = generation() the current coarsest level).

  /// True if the node existed at generation `gen`.
  bool nodeLiveAt(NodeId n, std::int32_t gen) const {
    const Node& nd = node(n);
    return nd.destroyed_gen == kNone || nd.destroyed_gen > gen;
  }
  /// True if the arc existed at generation `gen`.
  bool arcLiveAt(ArcId a, std::int32_t gen) const {
    const Arc& ar = arc(a);
    return ar.created_gen <= gen && (ar.destroyed_gen == kNone || ar.destroyed_gen > gen);
  }

  /// Largest generation whose cancellations all have persistence
  /// <= threshold (the level a threshold slider selects). Because
  /// cancellation proceeds in persistence order the prefix property
  /// holds up to the queue's multi-arc deferrals; the scan is exact
  /// either way.
  std::int32_t generationForThreshold(float threshold) const;

  /// Node census at a past generation.
  std::array<std::int64_t, 4> liveNodeCountsAt(std::int32_t gen) const;

  /// Materialize the complex as it was at generation `gen` (deep
  /// copy; geometry flattened). The extracted complex has an empty
  /// hierarchy of its own.
  MsComplex extractAtGeneration(std::int32_t gen) const;

  /// Check structural invariants (arc list integrity, endpoint index
  /// difference of one, liveness agreement); aborts on violation.
  /// Intended for tests; O(nodes + arcs).
  void checkInvariants() const;

 private:
  void linkArc(ArcId a);
  void unlinkArc(ArcId a);

  Domain domain_;
  Region region_;
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::vector<Geom> geoms_;
  std::vector<Cancellation> cancellations_;
};

}  // namespace msc
