/// \file gradient.hpp
/// Discrete gradient vector fields on a block (section IV-C).
///
/// The result of gradient computation is one byte per refined-grid
/// cell: either the cell is *critical*, or it is paired with the
/// facet/cofacet one step away along a recorded axis/direction. The
/// pairing restriction on shared block faces ("for a cell on the
/// boundary of two or more blocks, we only consider for pairing other
/// cells also on the boundary of those same blocks") is implemented
/// via the shared-face signature of Block::sharedSignature: two cells
/// may pair only when their signatures are equal.
#pragma once

#include <cstdint>
#include <vector>

#include "core/field.hpp"

namespace msc::metrics {
class Registry;
}  // namespace msc::metrics

namespace msc {

/// Per-cell pairing state. Values 0..5 encode "paired with the
/// neighbour at refined offset +/-1 along axis state/2" (state%2:
/// 0 = negative direction, 1 = positive direction).
enum : std::uint8_t {
  kPairNegX = 0,
  kPairPosX = 1,
  kPairNegY = 2,
  kPairPosY = 3,
  kPairNegZ = 4,
  kPairPosZ = 5,
  kCritical = 6,
  kUnassigned = 7,
};

class BoundarySignatures;

struct GradientOptions {
  /// Apply the shared-face pairing restriction (must be on whenever
  /// the block decomposition has more than one block; switching it
  /// off reproduces an unrestricted serial gradient).
  bool restrict_boundary = true;
  /// Decomposition-global pairing signatures (core/boundary.hpp).
  /// When set (and restrict_boundary is on), cells pair only when
  /// contained in the same set of blocks — the paper's exact rule,
  /// correct for any decomposition. When null, the block-local face
  /// mask is used instead, which is exact only for decompositions
  /// without T-junctions (see BoundarySignatures). Multi-block
  /// pipelines always supply this.
  const BoundarySignatures* signatures = nullptr;
  /// Optional work counters (non-owning). The kernels tally into
  /// stack locals and flush once on return, attributed to
  /// `metrics_rank`; recording never changes the computed gradient.
  metrics::Registry* metrics = nullptr;
  int metrics_rank = 0;
};

/// A computed discrete gradient vector field over one block.
class GradientField {
 public:
  GradientField() = default;
  GradientField(Block block, std::vector<std::uint8_t> state)
      : block_(block), state_(std::move(state)) {}

  const Block& block() const { return block_; }
  const std::vector<std::uint8_t>& state() const { return state_; }

  std::uint8_t stateAt(Vec3i rc) const { return state_[block_.cellIndex(rc)]; }
  bool isCritical(Vec3i rc) const { return stateAt(rc) == kCritical; }
  bool isAssigned(Vec3i rc) const { return stateAt(rc) != kUnassigned; }
  bool isPaired(Vec3i rc) const { return stateAt(rc) <= kPairPosZ; }

  /// Coordinate of the pairing partner (only valid when isPaired).
  Vec3i partner(Vec3i rc) const {
    const std::uint8_t s = stateAt(rc);
    Vec3i p = rc;
    p[s / 2] += (s % 2) ? 1 : -1;
    return p;
  }

  /// True when the cell is the tail of its vector (paired with a
  /// cofacet, i.e. flow passes through this cell into the partner).
  bool isTail(Vec3i rc) const {
    return isPaired(rc) && Domain::cellDim(partner(rc)) == Domain::cellDim(rc) + 1;
  }

  /// Count critical cells of each dimension.
  std::array<std::int64_t, 4> criticalCounts() const;

 private:
  Block block_;
  std::vector<std::uint8_t> state_;
};

/// The paper's gradient algorithm (ref [10], adapted as in IV-C):
/// cells sorted by increasing dimension then increasing value (with
/// simulation of simplicity); in this order a d-cell is paired in the
/// direction of steepest descent with an unassigned cofacet of which
/// it is the only unassigned facet, or else marked critical.
GradientField computeGradientSweep(const BlockField& field,
                                   const GradientOptions& opts = {});

/// Helper shared by gradient algorithms and tests: pairing state code
/// for the vector from `from` to the adjacent cell `to`.
std::uint8_t directionCode(Vec3i from, Vec3i to);

}  // namespace msc
