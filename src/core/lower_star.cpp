#include "core/lower_star.hpp"

#include <algorithm>

#include "core/boundary.hpp"
#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc {

namespace {

/// One cell of a lower star, with its precomputed key.
struct StarCell {
  Vec3i rc;
  CellKey key;
  int dim;
  std::uint32_t sig;
  bool assigned{false};
  int n_unassigned_facets{0};  // facets within the same signature class
};

/// Facet relation within a lower-star class: b is a facet of a.
bool isFacetOf(Vec3i facet, Vec3i coface) {
  int diff = 0;
  for (int a = 0; a < 3; ++a) {
    if (facet[a] == coface[a]) continue;
    if ((coface[a] & 1) && (facet[a] == coface[a] - 1 || facet[a] == coface[a] + 1))
      ++diff;
    else
      return false;
  }
  return diff == 1 && Domain::cellDim(facet) + 1 == Domain::cellDim(coface);
}

}  // namespace

GradientField computeGradientLowerStar(const BlockField& field, const GradientOptions& opts) {
  MSC_PROF_POINT("gradient_lower_star");
  const Block& blk = field.block();
  const Vec3i r = blk.rdims();
  std::vector<std::uint8_t> state(static_cast<std::size_t>(blk.numCells()), kUnassigned);

  // Reused scratch for one lower star (at most 27 incident cells).
  std::vector<StarCell> star;
  star.reserve(27);

  std::int64_t stars = 0, cells = 0, pairs = 0, crits = 0;
  for (std::int64_t vz = 0; vz < blk.vdims.z; ++vz) {
    for (std::int64_t vy = 0; vy < blk.vdims.y; ++vy) {
      for (std::int64_t vx = 0; vx < blk.vdims.x; ++vx) {
        const Vec3i v{vx, vy, vz};
        const Vec3i vr = v * 2;  // refined coordinate of the vertex
        const std::uint64_t vid = blk.globalVertexId(v);
        const float vval = field.vertexValue(v);

        // Gather the lower star: incident cells whose maximal vertex
        // (by (value, global id)) is v.
        star.clear();
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          for (std::int64_t dy = -1; dy <= 1; ++dy) {
            for (std::int64_t dx = -1; dx <= 1; ++dx) {
              const Vec3i rc = vr + Vec3i{dx, dy, dz};
              if (rc.x < 0 || rc.y < 0 || rc.z < 0 || rc.x >= r.x || rc.y >= r.y ||
                  rc.z >= r.z)
                continue;
              CellKey k = field.cellKey(rc);
              // In the descending-sorted key, the maximal vertex is
              // entry 0; membership in L(v) means it equals v.
              if (k.value[0] != vval || k.vert[0] != vid) continue;
              std::uint32_t sig = 0;
              if (opts.restrict_boundary)
                sig = opts.signatures ? opts.signatures->at(rc)
                                      : std::uint32_t{blk.sharedSignature(rc)};
              star.push_back({rc, std::move(k), Domain::cellDim(rc), sig, false, 0});
            }
          }
        }

        ++stars;
        cells += static_cast<std::int64_t>(star.size());

        // Process each signature class independently so that shared
        // faces are matched identically in both adjacent blocks.
        for (std::size_t ci = 0; ci < star.size(); ++ci) {
          const std::uint32_t cls = star[ci].sig;
          bool seen = false;  // class already processed at an earlier index
          for (std::size_t j = 0; j < ci && !seen; ++j) seen = star[j].sig == cls;
          if (seen) continue;

          // Collect the class member indices.
          std::vector<int> mem;
          for (std::size_t j = 0; j < star.size(); ++j)
            if (star[j].sig == cls) mem.push_back(static_cast<int>(j));

          // Count facets within the class.
          for (const int a : mem) {
            star[a].n_unassigned_facets = 0;
            for (const int b : mem)
              if (isFacetOf(star[b].rc, star[a].rc)) ++star[a].n_unassigned_facets;
          }

          const auto markAssigned = [&](int idx) {
            star[idx].assigned = true;
            for (const int a : mem)
              if (!star[a].assigned && isFacetOf(star[idx].rc, star[a].rc))
                --star[a].n_unassigned_facets;
          };
          const auto popMin = [&](auto&& pred) -> int {
            int best = -1;
            for (const int a : mem) {
              if (star[a].assigned || !pred(star[a])) continue;
              if (best < 0 || star[a].key < star[best].key) best = a;
            }
            return best;
          };

          // Generic Robins-style matching of the class: repeatedly
          // pair a cell having exactly one unassigned facet with that
          // facet (steepest first), else make the minimal cell with
          // no unassigned facets critical.
          while (true) {
            int head;
            while ((head = popMin([](const StarCell& c) {
                     return c.n_unassigned_facets == 1;
                   })) >= 0) {
              int tail = -1;
              for (const int b : mem)
                if (!star[b].assigned && isFacetOf(star[b].rc, star[head].rc)) tail = b;
              assert(tail >= 0);
              state[blk.cellIndex(star[tail].rc)] =
                  directionCode(star[tail].rc, star[head].rc);
              state[blk.cellIndex(star[head].rc)] =
                  directionCode(star[head].rc, star[tail].rc);
              markAssigned(tail);
              markAssigned(head);
              ++pairs;
            }
            const int crit = popMin(
                [](const StarCell& c) { return c.n_unassigned_facets == 0; });
            if (crit < 0) break;
            state[blk.cellIndex(star[crit].rc)] = kCritical;
            markAssigned(crit);
            ++crits;
          }
          // Every class member must be assigned by now.
          for ([[maybe_unused]] const int a : mem) assert(star[a].assigned);
        }
      }
    }
  }

  if (opts.metrics) {
    using metrics::Counter;
    opts.metrics->add(opts.metrics_rank, Counter::kGradCells, cells);
    opts.metrics->add(opts.metrics_rank, Counter::kGradLowerStars, stars);
    opts.metrics->add(opts.metrics_rank, Counter::kGradPairs, pairs);
    opts.metrics->add(opts.metrics_rank, Counter::kGradCriticals, crits);
  }

  return GradientField(blk, std::move(state));
}

}  // namespace msc
