#include "core/complex.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace msc {

NodeId addNodeImplCheck(std::size_t n) {
  if (n > static_cast<std::size_t>(std::numeric_limits<NodeId>::max())) {
    std::fprintf(stderr, "msc: node table overflow\n");
    std::abort();
  }
  return static_cast<NodeId>(n);
}

NodeId MsComplex::addNode(CellAddr addr, std::uint8_t index, float value) {
  const NodeId id = addNodeImplCheck(nodes_.size());
  Node nd;
  nd.addr = addr;
  nd.index = index;
  nd.value = value;
  nodes_.push_back(nd);
  return id;
}

GeomId MsComplex::addGeom(Geom g) {
  const GeomId id = static_cast<GeomId>(geoms_.size());
  geoms_.push_back(std::move(g));
  return id;
}

ArcId MsComplex::addArc(NodeId lower, NodeId upper, GeomId geom, std::int32_t created_gen) {
  assert(node(lower).index + 1 == node(upper).index);
  const ArcId id = static_cast<ArcId>(arcs_.size());
  Arc a;
  a.lower = lower;
  a.upper = upper;
  a.geom = geom;
  a.created_gen = created_gen;
  arcs_.push_back(a);
  linkArc(id);
  return id;
}

void MsComplex::linkArc(ArcId a) {
  Arc& ar = arcs_[static_cast<std::size_t>(a)];
  const NodeId ends[2] = {ar.lower, ar.upper};
  for (int slot = 0; slot < 2; ++slot) {
    Node& nd = nodes_[static_cast<std::size_t>(ends[slot])];
    ar.next[slot] = nd.arcs_head;
    ar.prev[slot] = kNone;
    if (nd.arcs_head != kNone) {
      Arc& head = arcs_[static_cast<std::size_t>(nd.arcs_head)];
      const int hslot = head.upper == ends[slot] ? 1 : 0;
      head.prev[hslot] = a;
    }
    nd.arcs_head = a;
    ++nd.n_arcs;
  }
}

void MsComplex::unlinkArc(ArcId a) {
  Arc& ar = arcs_[static_cast<std::size_t>(a)];
  const NodeId ends[2] = {ar.lower, ar.upper};
  for (int slot = 0; slot < 2; ++slot) {
    Node& nd = nodes_[static_cast<std::size_t>(ends[slot])];
    if (ar.prev[slot] != kNone) {
      Arc& p = arcs_[static_cast<std::size_t>(ar.prev[slot])];
      p.next[p.upper == ends[slot] ? 1 : 0] = ar.next[slot];
    } else {
      nd.arcs_head = ar.next[slot];
    }
    if (ar.next[slot] != kNone) {
      Arc& nx = arcs_[static_cast<std::size_t>(ar.next[slot])];
      nx.prev[nx.upper == ends[slot] ? 1 : 0] = ar.prev[slot];
    }
    --nd.n_arcs;
  }
}

void MsComplex::removeArc(ArcId a, std::int32_t gen) {
  Arc& ar = arcs_[static_cast<std::size_t>(a)];
  assert(ar.alive);
  unlinkArc(a);
  ar.alive = false;
  ar.destroyed_gen = gen;
}

void MsComplex::removeNode(NodeId n, std::int32_t gen) {
  Node& nd = nodes_[static_cast<std::size_t>(n)];
  assert(nd.alive && nd.n_arcs == 0);
  nd.alive = false;
  nd.destroyed_gen = gen;
}

int MsComplex::countArcsBetween(NodeId a, NodeId b) const {
  int count = 0;
  forEachArc(a, [&](ArcId id) {
    const Arc& ar = arc(id);
    if (ar.lower == b || ar.upper == b) ++count;
    return true;
  });
  return count;
}

std::vector<CellAddr> MsComplex::flattenGeom(GeomId g) const {
  std::vector<CellAddr> out;
  // Iterative DAG expansion with explicit reversal handling.
  struct Frame {
    GeomId id;
    bool reversed;
  };
  std::vector<Frame> stack{{g, false}};
  // Depth-first with reversal: a reversed composite visits children
  // in reverse order with flipped orientation.
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Geom& ge = geoms_[static_cast<std::size_t>(f.id)];
    if (ge.children.empty()) {
      if (!f.reversed)
        out.insert(out.end(), ge.cells.begin(), ge.cells.end());
      else
        out.insert(out.end(), ge.cells.rbegin(), ge.cells.rend());
    } else {
      // Push children so they pop in the correct order.
      if (!f.reversed) {
        for (auto it = ge.children.rbegin(); it != ge.children.rend(); ++it)
          stack.push_back({it->id, it->reversed});
      } else {
        for (const auto& ch : ge.children)
          stack.push_back({ch.id, !ch.reversed});
      }
    }
  }
  return out;
}

std::int64_t MsComplex::flattenedGeomLength(GeomId g) const {
  std::int64_t n = 0;
  std::vector<GeomId> stack{g};
  while (!stack.empty()) {
    const GeomId id = stack.back();
    stack.pop_back();
    const Geom& ge = geoms_[static_cast<std::size_t>(id)];
    if (ge.children.empty()) {
      n += static_cast<std::int64_t>(ge.cells.size());
    } else {
      for (const auto& ch : ge.children) stack.push_back(ch.id);
    }
  }
  return n;
}

void MsComplex::recomputeBoundary() {
  for (Node& nd : nodes_) {
    if (!nd.alive) continue;
    nd.boundary = region_.onSharedBoundary(domain_.coordOf(nd.addr), domain_);
  }
}

std::array<std::int64_t, 4> MsComplex::liveNodeCounts() const {
  std::array<std::int64_t, 4> c{0, 0, 0, 0};
  for (const Node& nd : nodes_)
    if (nd.alive) ++c[nd.index];
  return c;
}

std::int64_t MsComplex::liveArcCount() const {
  return std::count_if(arcs_.begin(), arcs_.end(), [](const Arc& a) { return a.alive; });
}

std::int64_t MsComplex::liveNodeCount() const {
  return std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) { return n.alive; });
}

void MsComplex::compact() {
  std::vector<NodeId> nodeMap(nodes_.size(), kNone);
  std::vector<Node> newNodes;
  newNodes.reserve(static_cast<std::size_t>(liveNodeCount()));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    nodeMap[i] = static_cast<NodeId>(newNodes.size());
    Node nd = nodes_[i];
    nd.arcs_head = kNone;
    nd.n_arcs = 0;
    nd.destroyed_gen = kNone;
    newNodes.push_back(nd);
  }

  std::vector<Arc> oldArcs = std::move(arcs_);
  std::vector<Geom> oldGeoms = std::move(geoms_);
  arcs_.clear();
  geoms_.clear();
  nodes_ = std::move(newNodes);

  // Leaf geometries referenced by exactly one live arc and by no
  // composite can be moved instead of flattened into a fresh copy; a
  // flattened leaf is byte-for-byte its own cell path, so the fast
  // path changes nothing about the result. Composites (and anything a
  // composite references, at any depth) still go through the copying
  // flatten, as do the rare shared leaves.
  std::vector<std::uint8_t> refs(oldGeoms.size(), 0);   // saturating at 2
  std::vector<std::uint8_t> pinned(oldGeoms.size(), 0); // reachable from a composite
  for (const Arc& ar : oldArcs) {
    if (!ar.alive || ar.geom == kNone) continue;
    auto& r = refs[static_cast<std::size_t>(ar.geom)];
    if (r < 2) ++r;
    if (!oldGeoms[static_cast<std::size_t>(ar.geom)].children.empty()) {
      std::vector<GeomId> stack{ar.geom};
      while (!stack.empty()) {
        const GeomId id = stack.back();
        stack.pop_back();
        if (pinned[static_cast<std::size_t>(id)]) continue;
        pinned[static_cast<std::size_t>(id)] = 1;
        for (const auto& ch : oldGeoms[static_cast<std::size_t>(id)].children)
          stack.push_back(ch.id);
      }
    }
  }

  const auto flattenOld = [&](GeomId g) {
    std::vector<CellAddr> out;
    struct Frame {
      GeomId id;
      bool reversed;
    };
    std::vector<Frame> stack{{g, false}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const Geom& ge = oldGeoms[static_cast<std::size_t>(f.id)];
      if (ge.children.empty()) {
        if (!f.reversed)
          out.insert(out.end(), ge.cells.begin(), ge.cells.end());
        else
          out.insert(out.end(), ge.cells.rbegin(), ge.cells.rend());
      } else if (!f.reversed) {
        for (auto it = ge.children.rbegin(); it != ge.children.rend(); ++it)
          stack.push_back({it->id, it->reversed});
      } else {
        for (const auto& ch : ge.children) stack.push_back({ch.id, !ch.reversed});
      }
    }
    return out;
  };

  for (const Arc& ar : oldArcs) {
    if (!ar.alive) continue;
    Geom g;
    if (ar.geom != kNone) {
      Geom& old = oldGeoms[static_cast<std::size_t>(ar.geom)];
      if (old.children.empty() && refs[static_cast<std::size_t>(ar.geom)] == 1 &&
          !pinned[static_cast<std::size_t>(ar.geom)])
        g.cells = std::move(old.cells);
      else
        g.cells = flattenOld(ar.geom);
    }
    const GeomId gid = addGeom(std::move(g));
    addArc(nodeMap[static_cast<std::size_t>(ar.lower)],
           nodeMap[static_cast<std::size_t>(ar.upper)], gid, 0);
  }
  cancellations_.clear();
}

std::int32_t MsComplex::generationForThreshold(float threshold) const {
  std::int32_t g = 0;
  for (const Cancellation& c : cancellations_) {
    if (c.persistence > threshold) break;
    ++g;
  }
  return g;
}

std::array<std::int64_t, 4> MsComplex::liveNodeCountsAt(std::int32_t gen) const {
  std::array<std::int64_t, 4> c{0, 0, 0, 0};
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n)
    if (nodeLiveAt(n, gen)) ++c[node(n).index];
  return c;
}

MsComplex MsComplex::extractAtGeneration(std::int32_t gen) const {
  MsComplex out(domain_, region_);
  std::vector<NodeId> map(nodes_.size(), kNone);
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    if (!nodeLiveAt(n, gen)) continue;
    const Node& nd = node(n);
    map[static_cast<std::size_t>(n)] = out.addNode(nd.addr, nd.index, nd.value);
  }
  for (ArcId a = 0; a < static_cast<ArcId>(arcs_.size()); ++a) {
    if (!arcLiveAt(a, gen)) continue;
    const Arc& ar = arc(a);
    Geom g;
    if (ar.geom != kNone) g.cells = flattenGeom(ar.geom);
    const GeomId gid = out.addGeom(std::move(g));
    out.addArc(map[static_cast<std::size_t>(ar.lower)],
               map[static_cast<std::size_t>(ar.upper)], gid);
  }
  out.recomputeBoundary();
  return out;
}

std::int64_t MsComplex::compressLeafGeometry() {
  std::int64_t removed = 0;
  std::vector<bool> referenced(geoms_.size(), false);
  for (const Arc& ar : arcs_) {
    if (!ar.alive || ar.geom == kNone) continue;
    referenced[static_cast<std::size_t>(ar.geom)] = true;
  }
  for (std::size_t g = 0; g < geoms_.size(); ++g) {
    if (!referenced[g]) continue;
    Geom& ge = geoms_[g];
    if (!ge.children.empty() || ge.cells.size() < 2) continue;
    const auto last = std::unique(ge.cells.begin(), ge.cells.end());
    removed += ge.cells.end() - last;
    ge.cells.erase(last, ge.cells.end());
  }
  return removed;
}

std::unordered_map<CellAddr, NodeId> MsComplex::addressIndex() const {
  std::unordered_map<CellAddr, NodeId> m;
  m.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].alive) m.emplace(nodes_[i].addr, static_cast<NodeId>(i));
  return m;
}

void MsComplex::checkInvariants() const {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "MsComplex invariant violated: %s\n", what);
    std::abort();
  };
  std::vector<std::int64_t> degree(nodes_.size(), 0);
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const Arc& ar = arcs_[i];
    if (!ar.alive) continue;
    if (ar.lower < 0 || ar.upper < 0) fail("arc endpoint unset");
    const Node& lo = node(ar.lower);
    const Node& up = node(ar.upper);
    if (!lo.alive || !up.alive) fail("live arc references dead node");
    if (lo.index + 1 != up.index) fail("arc endpoints not of consecutive index");
    ++degree[static_cast<std::size_t>(ar.lower)];
    ++degree[static_cast<std::size_t>(ar.upper)];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (!nd.alive) {
      if (nd.n_arcs != 0) fail("dead node retains arcs");
      continue;
    }
    if (nd.n_arcs != degree[i]) fail("node arc count mismatch");
    // Walk the intrusive list and verify it reaches exactly n_arcs arcs.
    std::int64_t seen = 0;
    forEachArc(static_cast<NodeId>(i), [&](ArcId a) {
      const Arc& ar = arc(a);
      if (!ar.alive) fail("dead arc in live list");
      if (ar.lower != static_cast<NodeId>(i) && ar.upper != static_cast<NodeId>(i))
        fail("arc list contains foreign arc");
      ++seen;
      return true;
    });
    if (seen != nd.n_arcs) fail("arc list length mismatch");
  }
}

}  // namespace msc
