/// \file grid.hpp
/// Structured grids and the "refined grid" cubical cell complex.
///
/// Scalar data lives at the vertices of a regular 3D grid. Following
/// section IV-C of the paper, cells of the implicit cubical complex
/// are stored at the vertices of a *refined* grid that is twice the
/// length of the original grid (minus one) in each dimension: refined
/// vertex (i,j,k) represents a d-cell of the original grid with
/// d = i%2 + j%2 + k%2. The linear index of a cell in the refined
/// grid is its "address"; addresses in the global refined grid are
/// what the merge stage uses to co-locate nodes (IV-F1).
#pragma once

#include <cassert>
#include <span>

#include "core/types.hpp"

namespace msc {

/// The global structured grid of the whole dataset.
///
/// Provides the global refined grid used for global cell addresses.
struct Domain {
  Vec3i vdims;  ///< number of vertices per axis (>= 2 each)

  /// Refined-grid dimensions: 2*v - 1 per axis.
  constexpr Vec3i rdims() const { return {2 * vdims.x - 1, 2 * vdims.y - 1, 2 * vdims.z - 1}; }

  /// Total number of cells of all dimensions.
  constexpr std::int64_t numCells() const { return rdims().volume(); }

  /// Global address of the cell at global refined coordinate `rc`.
  constexpr CellAddr addrOf(Vec3i rc) const {
    const Vec3i r = rdims();
    return static_cast<CellAddr>(rc.x) + static_cast<CellAddr>(rc.y) * r.x +
           static_cast<CellAddr>(rc.z) * r.x * r.y;
  }

  /// Inverse of addrOf.
  constexpr Vec3i coordOf(CellAddr a) const {
    const Vec3i r = rdims();
    const auto rx = static_cast<CellAddr>(r.x), ry = static_cast<CellAddr>(r.y);
    return {static_cast<std::int64_t>(a % rx), static_cast<std::int64_t>((a / rx) % ry),
            static_cast<std::int64_t>(a / (rx * ry))};
  }

  /// Dimension (0..3) of the cell at refined coordinate `rc`.
  static constexpr int cellDim(Vec3i rc) { return int(rc.x & 1) + int(rc.y & 1) + int(rc.z & 1); }

  /// Global linear id of the vertex at vertex coordinate `vc`
  /// (used as the simulation-of-simplicity tiebreaker, so it must be
  /// block-independent).
  constexpr std::uint64_t vertexId(Vec3i vc) const {
    return static_cast<std::uint64_t>(vc.x) + static_cast<std::uint64_t>(vc.y) * vdims.x +
           static_cast<std::uint64_t>(vc.z) * vdims.x * vdims.y;
  }

  /// True if the global refined coordinate lies on the global domain
  /// boundary face of the given axis/side (side 0 = low, 1 = high).
  constexpr bool onGlobalFace(Vec3i rc, int axis, int side) const {
    return side == 0 ? rc[axis] == 0 : rc[axis] == rdims()[axis] - 1;
  }

  friend constexpr bool operator==(const Domain&, const Domain&) = default;
};

/// One block of the domain decomposition (section IV-A).
///
/// A block covers vertices [voffset, voffset+vdims-1] of the global
/// grid; neighbouring blocks share one layer of vertices. The
/// shared_lo/shared_hi flags record which faces are shared with a
/// neighbour (as opposed to lying on the global domain boundary);
/// cells on shared faces are subject to the gradient pairing
/// restriction of section IV-C.
struct Block {
  int id{0};           ///< bisection-tree leaf order index
  Domain domain;       ///< the global grid this block belongs to
  Vec3i vdims;         ///< local vertex counts per axis (>= 2 each)
  Vec3i voffset;       ///< global vertex coordinate of local (0,0,0)
  bool shared_lo[3]{false, false, false};
  bool shared_hi[3]{false, false, false};

  /// Local refined-grid dimensions.
  constexpr Vec3i rdims() const { return {2 * vdims.x - 1, 2 * vdims.y - 1, 2 * vdims.z - 1}; }

  /// Number of cells in the local refined grid.
  constexpr std::int64_t numCells() const { return rdims().volume(); }

  /// Number of local vertices.
  constexpr std::int64_t numVertices() const { return vdims.volume(); }

  /// This block's extent in *global refined* coordinates (inclusive).
  constexpr Box3 refinedBox() const {
    const Vec3i lo = voffset * 2;
    const Vec3i ext = rdims();
    return {lo, lo + ext - Vec3i{1, 1, 1}};
  }

  /// Linearize a local refined coordinate.
  constexpr LocalCell cellIndex(Vec3i rc) const {
    const Vec3i r = rdims();
    return static_cast<LocalCell>(rc.x) + static_cast<LocalCell>(rc.y) * r.x +
           static_cast<LocalCell>(rc.z) * r.x * r.y;
  }

  /// Inverse of cellIndex.
  constexpr Vec3i cellCoord(LocalCell c) const {
    const Vec3i r = rdims();
    const auto rx = static_cast<LocalCell>(r.x), ry = static_cast<LocalCell>(r.y);
    return {static_cast<std::int64_t>(c % rx), static_cast<std::int64_t>((c / rx) % ry),
            static_cast<std::int64_t>(c / (rx * ry))};
  }

  /// Translate a local refined coordinate to a global cell address
  /// (the "local to global index translation" of IV-F1).
  constexpr CellAddr globalAddr(Vec3i rc) const { return domain.addrOf(rc + voffset * 2); }

  /// Linear index of the local vertex at local vertex coordinate `vc`.
  constexpr std::int64_t vertexIndex(Vec3i vc) const {
    return vc.x + vc.y * vdims.x + vc.z * vdims.x * vdims.y;
  }

  /// Global vertex id of a local vertex coordinate.
  constexpr std::uint64_t globalVertexId(Vec3i vc) const {
    return domain.vertexId(vc + voffset);
  }

  /// Shared-face signature of the cell at local refined coordinate
  /// `rc`: bit a is set iff the cell lies on a face of this block
  /// along axis a that is shared with a neighbouring block. Cells
  /// may only be paired with cells of equal signature (IV-C).
  ///
  /// Caveat: this local mask is block-independent only when every
  /// partition plane extends across the whole domain. At T-junctions
  /// of uneven decompositions two blocks can disagree about a corner
  /// cell's class; multi-block pipelines therefore use the exact
  /// decomposition-global BoundarySignatures (core/boundary.hpp)
  /// instead of this mask.
  constexpr AxisMask sharedSignature(Vec3i rc) const {
    AxisMask m = 0;
    const Vec3i r = rdims();
    for (int a = 0; a < 3; ++a) {
      if ((rc[a] == 0 && shared_lo[a]) || (rc[a] == r[a] - 1 && shared_hi[a]))
        m |= AxisMask(1) << a;
    }
    return m;
  }

  /// True if the cell lies on any shared face of the block.
  constexpr bool onSharedBoundary(Vec3i rc) const { return sharedSignature(rc) != 0; }

  friend bool operator==(const Block&, const Block&) = default;
};

/// Enumerate the facets (dimension d-1 faces) of the cell at refined
/// coordinate `rc` inside a refined grid of dims `r`. Returns the
/// number written into `out` (at most 6).
int facets(Vec3i rc, Vec3i r, std::span<Vec3i, 6> out);

/// Enumerate the cofacets (dimension d+1 cofaces) of the cell at
/// refined coordinate `rc` inside a refined grid of dims `r`.
/// Returns the number written into `out` (at most 6).
int cofacets(Vec3i rc, Vec3i r, std::span<Vec3i, 6> out);

/// Enumerate the (original-grid) vertices of the cell at refined
/// coordinate `rc`, as *vertex* coordinates. Returns the count
/// (2^dim, at most 8).
int cellVertices(Vec3i rc, std::span<Vec3i, 8> out);

}  // namespace msc
