#include "core/simplify.hpp"

#include <queue>

#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc {

bool isCancellable(const MsComplex& complex, ArcId a) {
  const Arc& ar = complex.arc(a);
  if (!ar.alive) return false;
  const Node& lo = complex.node(ar.lower);
  const Node& up = complex.node(ar.upper);
  if (!lo.alive || !up.alive) return false;
  if (lo.boundary || up.boundary) return false;
  return complex.countArcsBetween(ar.lower, ar.upper) == 1;
}

void cancelArc(MsComplex& complex, ArcId a, SimplifyStats* stats) {
  const Arc ar = complex.arc(a);  // copy; the record is about to die
  const NodeId p = ar.lower, q = ar.upper;
  const std::int32_t gen = complex.generation() + 1;

  // Gather the reconnection neighbourhood before unlinking anything:
  // upper neighbours of p (index i+1, excluding q) reached via arcs
  // r->p, and lower neighbours of q (index i, excluding p) via q->t.
  struct Nbr {
    NodeId node;
    GeomId geom;
  };
  std::vector<Nbr> uppersOfP, lowersOfQ;
  std::vector<ArcId> doomed;
  complex.forEachArc(p, [&](ArcId id) {
    const Arc& x = complex.arc(id);
    doomed.push_back(id);
    if (x.lower == p && x.upper != q) uppersOfP.push_back({x.upper, x.geom});
    return true;
  });
  complex.forEachArc(q, [&](ArcId id) {
    if (id == a) return true;
    const Arc& x = complex.arc(id);
    doomed.push_back(id);
    if (x.upper == q && x.lower != p) lowersOfQ.push_back({x.lower, x.geom});
    return true;
  });

  for (const ArcId id : doomed) complex.removeArc(id, gen);
  complex.removeNode(p, gen);
  complex.removeNode(q, gen);

  // Reconnect: every (t, r) pair gets a new arc whose geometry is the
  // composition r -> p, reversed (q -> p), q -> t (section IV-E).
  for (const Nbr& up : uppersOfP) {
    for (const Nbr& lo : lowersOfQ) {
      Geom g;
      g.children = {{up.geom, false}, {ar.geom, true}, {lo.geom, false}};
      const GeomId gid = complex.addGeom(std::move(g));
      complex.addArc(lo.node, up.node, gid, gen);
      if (stats) ++stats->arcs_created;
    }
  }

  complex.recordCancellation({complex.persistence(a), p, q});
  if (stats) {
    ++stats->cancellations;
    stats->arcs_removed += static_cast<std::int64_t>(doomed.size());
  }
}

std::int64_t simplify(MsComplex& complex, const SimplifyOptions& opts, SimplifyStats* stats) {
  MSC_PROF_POINT("simplify_cancel");
  // Priority queue of candidate arcs, lowest persistence first. An
  // arc is in exactly one of three states: queued (in the PQ),
  // parked (skipped as part of a multi-arc pair, waiting for a
  // cancellation that touches one of its endpoints), or out.
  struct Entry {
    float pers;
    ArcId arc;
    bool operator>(const Entry& o) const {
      return pers != o.pers ? pers > o.pers : arc > o.arc;
    }
  };
  enum : std::uint8_t { kOut = 0, kQueued = 1, kParked = 2 };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  std::vector<std::uint8_t> flag(complex.arcs().size(), kOut);
  // Arc multiplicity between two nodes only changes when a
  // cancellation adds or removes arcs at one of them, so parked arcs
  // are indexed by both endpoints and re-queued only when a
  // cancellation touches that node (re-queueing after *every*
  // cancellation is quadratic in dense multi-arc webs).
  std::unordered_map<NodeId, std::vector<ArcId>> parked;

  std::int64_t done = 0;
  SimplifyStats local{};
  if (opts.metrics && !stats) stats = &local;  // counters need the tallies
  const SimplifyStats before = stats ? *stats : SimplifyStats{};
  std::array<std::int64_t, metrics::kHistBuckets> pers_tally{};
  const auto push = [&](ArcId id) {
    const Arc& ar = complex.arc(id);
    if (!ar.alive) return;
    const float pers = complex.persistence(id);
    if (pers > opts.persistence_threshold) return;
    if (flag.size() <= static_cast<std::size_t>(id))
      flag.resize(static_cast<std::size_t>(id) + 1, kOut);
    flag[static_cast<std::size_t>(id)] = kQueued;
    pq.push({pers, id});
  };

  // A pair of nodes is cancellable only when connected by exactly
  // one arc; count with an early exit at two.
  const auto multiplicityAtMost2 = [&](NodeId a, NodeId b) {
    const NodeId probe = complex.node(a).n_arcs <= complex.node(b).n_arcs ? a : b;
    const NodeId other = probe == a ? b : a;
    int count = 0;
    complex.forEachArc(probe, [&](ArcId id) {
      const Arc& x = complex.arc(id);
      if (x.lower == other || x.upper == other) ++count;
      return count < 2;
    });
    return count;
  };

  for (ArcId id = 0; id < static_cast<ArcId>(complex.arcs().size()); ++id) push(id);

  while (!pq.empty()) {
    if (opts.max_cancellations > 0 && done >= opts.max_cancellations) break;
    const Entry e = pq.top();
    pq.pop();
    if (flag[static_cast<std::size_t>(e.arc)] != kQueued) continue;
    flag[static_cast<std::size_t>(e.arc)] = kOut;
    const Arc& ar = complex.arc(e.arc);
    if (!ar.alive) continue;
    const Node& lo = complex.node(ar.lower);
    const Node& up = complex.node(ar.upper);
    if (lo.boundary || up.boundary) {
      if (stats) ++stats->skipped_boundary;
      continue;  // boundary status only changes at merge time
    }
    const auto park = [&] {
      flag[static_cast<std::size_t>(e.arc)] = kParked;
      parked[ar.lower].push_back(e.arc);
      parked[ar.upper].push_back(e.arc);
    };
    if (multiplicityAtMost2(ar.lower, ar.upper) != 1) {
      if (stats) ++stats->skipped_multi_arc;
      park();
      continue;
    }
    if (opts.max_new_arcs_per_cancellation > 0) {
      // Degree guard (ref [11]): defer cancellations whose
      // reconnection would blow up the arc count.
      std::int64_t deg_up_p = 0, deg_down_q = 0;
      complex.forEachArc(ar.lower, [&](ArcId id) {
        if (complex.arc(id).lower == ar.lower) ++deg_up_p;
        return true;
      });
      complex.forEachArc(ar.upper, [&](ArcId id) {
        if (complex.arc(id).upper == ar.upper) ++deg_down_q;
        return true;
      });
      if ((deg_up_p - 1) * (deg_down_q - 1) > opts.max_new_arcs_per_cancellation) {
        if (stats) ++stats->skipped_degree;
        park();
        continue;
      }
    }
    // Nodes whose arc sets the cancellation will change: the two
    // dying endpoints' neighbours. Their parked arcs get another try.
    std::vector<NodeId> affected;
    for (const NodeId end : {ar.lower, ar.upper}) {
      complex.forEachArc(end, [&](ArcId id) {
        const Arc& x = complex.arc(id);
        affected.push_back(x.lower == end ? x.upper : x.lower);
        return true;
      });
    }
    const ArcId firstNew = static_cast<ArcId>(complex.arcs().size());
    cancelArc(complex, e.arc, stats);
    ++done;
    if (opts.metrics) {
      ++pers_tally[static_cast<std::size_t>(
          metrics::histBucket(static_cast<double>(e.pers)))];
    }
    for (ArcId id = firstNew; id < static_cast<ArcId>(complex.arcs().size()); ++id)
      push(id);
    for (const NodeId n : affected) {
      const auto it = parked.find(n);
      if (it == parked.end()) continue;
      for (const ArcId id : it->second) {
        if (flag[static_cast<std::size_t>(id)] != kParked) continue;
        if (!complex.arc(id).alive) {
          flag[static_cast<std::size_t>(id)] = kOut;
          continue;
        }
        flag[static_cast<std::size_t>(id)] = kQueued;
        pq.push({complex.persistence(id), id});
      }
      parked.erase(it);
    }
  }
  if (opts.metrics) {
    using metrics::Counter;
    metrics::Registry* m = opts.metrics;
    const int r = opts.metrics_rank;
    m->add(r, Counter::kSimplifyCancelled, stats->cancellations - before.cancellations);
    m->add(r, Counter::kSimplifyArcsRemoved, stats->arcs_removed - before.arcs_removed);
    m->add(r, Counter::kSimplifyArcsCreated, stats->arcs_created - before.arcs_created);
    m->observeBuckets(r, metrics::Hist::kSimplifyPersistence, pers_tally);
  }
  return done;
}

}  // namespace msc
