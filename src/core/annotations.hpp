/// \file annotations.hpp
/// House concurrency annotation vocabulary.
///
/// These macros carry the locking and atomics contract of every
/// concurrent structure in the tree, and they are read by TWO
/// checkers:
///
///   * tools/msc_analyze.py (tier-1 `analyze` ctest, every compiler)
///     parses them textually: the lockset pass requires every access
///     to an MSC_GUARDED_BY field to happen under a lock of the named
///     mutex or inside an MSC_REQUIRES function; the atomics pass
///     confines memory_order_relaxed to MSC_RELAXED_TALLY slots.
///   * clang with -DMSC_TSA=1 (the MSC_TSA CMake option) expands them
///     to the Clang thread-safety attributes, turning the same
///     contract into compiler errors (-Werror=thread-safety). gcc has
///     no thread-safety analysis; there the macros expand to nothing
///     and msc_analyze is the enforced gate.
///
/// MSC_TSA additionally requires a standard library whose lock types
/// are TSA-annotated (libc++); libstdc++'s std::lock_guard carries no
/// attributes, so a libstdc++ MSC_TSA build reports false positives.
/// That is why the option is opt-in rather than wired to __clang__.
///
/// This header is a dependency-free macro vocabulary: it may be
/// included from any module (msc_lint exempts it from layering) and
/// must never grow declarations, includes, or code.
#pragma once

#if defined(__clang__) && defined(MSC_TSA)
#define MSC_TSA_ATTR(x) __attribute__((x))
#else
#define MSC_TSA_ATTR(x)
#endif

/// Marks a type as a lockable capability (mutex-like). House mutexes
/// are plain std::mutex members, so this is used only by wrapper
/// types that own their lock discipline.
#define MSC_CAPABILITY(name) MSC_TSA_ATTR(capability(name))

/// Field may be read/written only while `mu` is held. msc_analyze
/// resolves `mu` relative to the access path: `box.messages` guarded
/// by `mu` requires `box.mu` to be held.
#define MSC_GUARDED_BY(mu) MSC_TSA_ATTR(guarded_by(mu))

/// Pointer field whose *pointee* is guarded by `mu` (the pointer
/// itself may be read freely).
#define MSC_PT_GUARDED_BY(mu) MSC_TSA_ATTR(pt_guarded_by(mu))

/// Function may be called only with `mu` already held; its body gets
/// the lockset for free. The house `*Locked()` private-helper idiom.
#define MSC_REQUIRES(...) MSC_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires / releases `mu` and returns holding / not
/// holding it.
#define MSC_ACQUIRE(...) MSC_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define MSC_RELEASE(...) MSC_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function must be called with `mu` NOT held (it will take it).
#define MSC_EXCLUDES(...) MSC_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Escape hatch for code whose locking is correct for reasons the
/// analysis cannot see. Use sparingly; pair with a comment.
#define MSC_NO_TSA MSC_TSA_ATTR(no_thread_safety_analysis)

/// Marks an atomic member as a monotonic tally slot: a statistics
/// counter that is never used to order other memory. These are the
/// ONLY atomics on which msc_analyze permits memory_order_relaxed
/// (metrics registry slots, TagAlloc byte counters, fault-injection
/// fire counts). Anything that publishes data or hands a flag across
/// threads must pair release stores with acquire loads instead.
/// Expands to nothing under every compiler; it exists for the
/// analyzer and the reader.
#define MSC_RELAXED_TALLY
