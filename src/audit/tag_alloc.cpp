#include "audit/tag_alloc.hpp"

#include <mutex>

#include "core/annotations.hpp"

namespace msc::audit {

namespace {

/// Cache-line padded per-rank byte counters, so concurrent ranks
/// never contend while tracking.
struct alignas(64) RankBytes {
  std::atomic<std::int64_t> allocated MSC_RELAXED_TALLY{0};
  std::atomic<std::int64_t> freed MSC_RELAXED_TALLY{0};
  std::atomic<std::int64_t> allocs MSC_RELAXED_TALLY{0};
  std::atomic<std::int64_t> peak MSC_RELAXED_TALLY{0};
};

/// All mutable tracking state lives in one leaked singleton: the
/// allocator can be called from detached/exiting threads during
/// static destruction, so the state must never be torn down.
struct State {
  std::mutex mu;
  int refcount MSC_GUARDED_BY(mu) = 0;
  /// Grown under mu (by replacement, old vector leaked so racing
  /// readers stay valid); read lock-free on the allocation path, so
  /// it is an acquire/release pointer handoff, NOT guarded by mu.
  std::atomic<std::vector<RankBytes>*> counters{nullptr};
  std::vector<AllocTracking::Violation> violations MSC_GUARDED_BY(mu);
};

State& state() {
  // msc-lint: allow(naked-new): intentionally leaked singleton; see State.
  static State* s = new State();
  return *s;
}

thread_local int t_rank = kUntagged;  // msc-lint: allow(mutable-global): per-thread rank tag, the allocator's only channel to know "who is freeing"; thread_local by design.

}  // namespace

std::atomic<bool> AllocTracking::enabled_{false};  // msc-lint: allow(mutable-global): process-wide opt-in switch read on the allocation fast path; guarded by State::mu for writes.

void AllocTracking::enable(int nranks) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  std::vector<RankBytes>* c = s.counters.load(std::memory_order_acquire);
  if (!c || static_cast<int>(c->size()) < nranks) {
    // msc-lint: allow(naked-new): see above.
    c = new std::vector<RankBytes>(static_cast<std::size_t>(nranks));
    s.counters.store(c, std::memory_order_release);
  }
  if (s.refcount++ == 0) {
    for (RankBytes& rb : *c) {
      rb.allocated.store(0, std::memory_order_relaxed);
      rb.freed.store(0, std::memory_order_relaxed);
      rb.allocs.store(0, std::memory_order_relaxed);
      rb.peak.store(0, std::memory_order_relaxed);
    }
    s.violations.clear();
    enabled_.store(true, std::memory_order_release);
  }
}

void AllocTracking::disable() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (s.refcount > 0 && --s.refcount == 0) enabled_.store(false, std::memory_order_release);
}

void AllocTracking::setThreadRank(int rank) { t_rank = rank; }
int AllocTracking::threadRank() { return t_rank; }

void AllocTracking::adopt(void* data, int new_owner) {
  if (!data) return;
  auto* h = static_cast<detail::AllocHeader*>(data) - 1;
  if (h->magic == detail::kAllocMagic) h->owner = new_owner;
}

void AllocTracking::onAlloc(int rank, std::size_t bytes) {
  State& s = state();
  std::vector<RankBytes>* c = s.counters.load(std::memory_order_acquire);
  if (c && rank < static_cast<int>(c->size())) {
    RankBytes& rb = (*c)[static_cast<std::size_t>(rank)];
    const std::int64_t allocated =
        rb.allocated.fetch_add(static_cast<std::int64_t>(bytes),
                               std::memory_order_relaxed) +
        static_cast<std::int64_t>(bytes);
    rb.allocs.fetch_add(1, std::memory_order_relaxed);
    // Live-byte high-water mark. `allocated - freed` is only an
    // instantaneous approximation under concurrent frees, but each
    // term is exact, so the peak can only under-report by in-flight
    // frees -- never invent memory that was not live.
    const std::int64_t live = allocated - rb.freed.load(std::memory_order_relaxed);
    std::int64_t prev = rb.peak.load(std::memory_order_relaxed);
    while (live > prev &&
           !rb.peak.compare_exchange_weak(prev, live, std::memory_order_relaxed)) {
    }
  }
}

void AllocTracking::onFree(int owner, int freer, std::size_t bytes) {
  State& s = state();
  if (owner >= 0 && owner != freer) {
    const std::lock_guard lock(s.mu);
    s.violations.push_back({owner, freer, bytes});
  }
  std::vector<RankBytes>* c = s.counters.load(std::memory_order_acquire);
  if (c && freer < static_cast<int>(c->size()))
    (*c)[static_cast<std::size_t>(freer)].freed.fetch_add(static_cast<std::int64_t>(bytes),
                                                          std::memory_order_relaxed);
}

std::vector<AllocTracking::Violation> AllocTracking::drainViolations() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  std::vector<Violation> out = std::move(s.violations);
  s.violations.clear();
  return out;
}

std::int64_t AllocTracking::allocatedBytes(int rank) {
  std::vector<RankBytes>* c = state().counters.load(std::memory_order_acquire);
  if (!c || rank < 0 || rank >= static_cast<int>(c->size())) return 0;
  return (*c)[static_cast<std::size_t>(rank)].allocated.load(std::memory_order_relaxed);
}

std::int64_t AllocTracking::freedBytes(int rank) {
  std::vector<RankBytes>* c = state().counters.load(std::memory_order_acquire);
  if (!c || rank < 0 || rank >= static_cast<int>(c->size())) return 0;
  return (*c)[static_cast<std::size_t>(rank)].freed.load(std::memory_order_relaxed);
}

std::int64_t AllocTracking::allocationCount(int rank) {
  std::vector<RankBytes>* c = state().counters.load(std::memory_order_acquire);
  if (!c || rank < 0 || rank >= static_cast<int>(c->size())) return 0;
  return (*c)[static_cast<std::size_t>(rank)].allocs.load(std::memory_order_relaxed);
}

std::int64_t AllocTracking::peakLiveBytes(int rank) {
  std::vector<RankBytes>* c = state().counters.load(std::memory_order_acquire);
  if (!c || rank < 0 || rank >= static_cast<int>(c->size())) return 0;
  return (*c)[static_cast<std::size_t>(rank)].peak.load(std::memory_order_relaxed);
}

}  // namespace msc::audit
