/// Rendering of audit diagnostics: AuditError text and the full
/// protocol-state report (per-rank phase + pending op + op history,
/// mailbox mirrors, allocation accounting, nondeterminism notes).
#include <string>

#include "audit/audit.hpp"
#include "audit/tag_alloc.hpp"

namespace msc::audit {

const char* opKindName(OpKind k) {
  switch (k) {
    case OpKind::kP2P: return "p2p";
    case OpKind::kGatherContrib: return "gather";
    case OpKind::kBcast: return "broadcast";
    case OpKind::kBarrier: return "barrier";
  }
  return "?";
}

const char* auditCodeName(AuditError::Code code) {
  switch (code) {
    case AuditError::Code::kDeadlock: return "deadlock";
    case AuditError::Code::kCollectiveMismatch: return "collective-mismatch";
    case AuditError::Code::kEpochMismatch: return "epoch-mismatch";
    case AuditError::Code::kMailboxLeak: return "mailbox-leak";
    case AuditError::Code::kOwnership: return "ownership";
    case AuditError::Code::kStuck: return "stuck";
    case AuditError::Code::kAborted: return "aborted";
  }
  return "?";
}

AuditError::AuditError(Code code, std::string summary, std::string diagnostic)
    : std::runtime_error("AuditError[" + std::string(auditCodeName(code)) + "]: " + summary +
                         (diagnostic.empty() ? "" : "\n" + diagnostic)),
      code_(code),
      summary_(std::move(summary)),
      diagnostic_(std::move(diagnostic)) {}

std::string Auditor::renderLocked() const {
  std::string out = "=== msc::audit protocol state ===\n";
  out += "ranks: " + std::to_string(nranks_) +
         ", messages audited: " + std::to_string(messages_) +
         ", wildcard candidates: " + std::to_string(wildcard_candidates_) + "\n";
  for (int r = 0; r < nranks_; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    out += "rank " + std::to_string(r) + ": ";
    switch (rs.phase) {
      case Phase::kRunning: out += "RUNNING"; break;
      case Phase::kDone: out += "DONE"; break;
      case Phase::kBlocked:
        out += "BLOCKED in ";
        if (rs.wait.op == OpKind::kBarrier) {
          out += "barrier(gen " + std::to_string(rs.wait.barrier_gen) + ")";
        } else {
          out += std::string("recv(src=") +
                 (rs.wait.src < 0 ? "any" : std::to_string(rs.wait.src)) +
                 ", tag=" + (rs.wait.tag < 0 ? "any" : std::to_string(rs.wait.tag)) +
                 ", expecting " + opKindName(rs.wait.op) + ")";
        }
        break;
    }
    out += " epoch=" + std::to_string(rs.epoch) + "\n";
    if (!rs.history.empty()) {
      out += "  recent ops (oldest first):\n";
      for (const OpRecord& op : rs.history) {
        out += std::string("    ") + (op.is_send ? "send " : "recv/enter ") +
               opKindName(op.kind);
        if (op.kind == OpKind::kBarrier) {
          out += " epoch=" + std::to_string(op.epoch);
        } else {
          out += std::string(op.is_send ? " -> " : " <- ") + std::to_string(op.peer) +
                 " tag=" + std::to_string(op.tag) + " epoch=" + std::to_string(op.epoch);
        }
        out += "\n";
      }
    }
    const auto& box = mail_[static_cast<std::size_t>(r)];
    if (!box.empty()) {
      out += "  mailbox (" + std::to_string(box.size()) + " queued):\n";
      for (const MsgInfo& m : box)
        out += "    [seq " + std::to_string(m.seq) + "] src=" + std::to_string(m.src) +
               " tag=" + std::to_string(m.tag) + " " + opKindName(m.kind) +
               " epoch=" + std::to_string(m.epoch) + " " + std::to_string(m.bytes) +
               " bytes\n";
    }
  }
  if (opts_.track_ownership) {
    out += "allocation accounting (par::Bytes, bytes since run start):\n";
    for (int r = 0; r < nranks_; ++r)
      out += "  rank " + std::to_string(r) +
             ": allocated=" + std::to_string(AllocTracking::allocatedBytes(r)) +
             " freed=" + std::to_string(AllocTracking::freedBytes(r)) + "\n";
  }
  for (const std::string& n : notes_) out += "note: " + n + "\n";
  if (context_provider_) {
    out += "=== causal context ===\n";
    out += context_provider_();
    if (!out.empty() && out.back() != '\n') out += '\n';
  }
  return out;
}

}  // namespace msc::audit
