/// \file tag_alloc.hpp
/// Ownership-tagging allocator for message buffers (`par::Bytes`).
///
/// The runtime's share-nothing contract says a buffer is owned by the
/// rank that allocated it until it is handed over through the
/// sanctioned transmit path (mailbox enqueue -> dequeue). This
/// allocator makes that checkable: every allocation carries a small
/// header recording the owning rank (the thread-local rank tag set by
/// par::Runtime), the transmit path re-tags buffers as they change
/// hands, and a free performed by a rank that does not own the buffer
/// is recorded as an ownership violation for msc::audit to report.
///
/// Always compiled, runtime opt-in: when tracking is disabled (the
/// default) the cost is the 16-byte header plus one relaxed atomic
/// load per allocation; no shared state is touched.
///
/// This header is a leaf: it depends on nothing else in the repo so
/// that `par` (and anything below it) can use the allocator without
/// layering cycles.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace msc::audit {

/// Owner tags stored in allocation headers. Ranks are >= 0.
inline constexpr int kUntagged = -1;   ///< allocated outside any rank, or tracking off
inline constexpr int kInTransit = -2;  ///< sitting in a mailbox between ranks

/// Process-wide switchboard for the tagging allocator. Enabled by
/// par::Runtime::run while an Auditor with ownership tracking is
/// attached; per-thread rank tags are set by the rank threads.
class AllocTracking {
 public:
  /// A free of a buffer owned by one rank performed by a different
  /// rank, outside the sanctioned transmit path.
  struct Violation {
    int owner;          ///< rank recorded in the allocation header
    int freer;          ///< rank that performed the free
    std::size_t bytes;  ///< allocation size
  };

  /// Start tracking (refcounted; nestable). Counter slots cover ranks
  /// [0, nranks); enabling with a larger nranks grows the slots.
  static void enable(int nranks);
  /// End one enable(). Tracking stops when the refcount hits zero.
  static void disable();
  static bool enabled() { return enabled_.load(std::memory_order_acquire); }

  /// Set/get the calling thread's rank tag (kUntagged = not a rank).
  static void setThreadRank(int rank);
  static int threadRank();

  /// Re-tag a live allocation (sanctioned transmit path only).
  /// `data` must be a pointer returned by TagAlloc::allocate, or null.
  static void adopt(void* data, int new_owner);

  /// Drain recorded cross-rank-free violations (oldest first).
  static std::vector<Violation> drainViolations();

  /// Bytes allocated / freed by rank since the outermost enable().
  static std::int64_t allocatedBytes(int rank);
  static std::int64_t freedBytes(int rank);
  /// Allocation calls charged to rank since the outermost enable().
  static std::int64_t allocationCount(int rank);
  /// High-water mark of the rank's live bytes (allocated - freed,
  /// maintained on the allocation path). A rank that frees buffers it
  /// received from peers can drive its instantaneous live count
  /// negative; the peak is still the right per-rank pressure signal
  /// because it brackets what this rank's allocations pinned at once.
  static std::int64_t peakLiveBytes(int rank);

 private:
  template <class T>
  friend struct TagAlloc;

  static void onAlloc(int rank, std::size_t bytes);
  static void onFree(int owner, int freer, std::size_t bytes);

  static std::atomic<bool> enabled_;
};

namespace detail {
/// Header prepended to every TagAlloc allocation. 16 bytes keeps the
/// user pointer max_align_t-aligned on every platform we target.
struct alignas(16) AllocHeader {
  std::uint32_t magic;
  std::int32_t owner;
  std::uint64_t bytes;
};
inline constexpr std::uint32_t kAllocMagic = 0x4d534154;  // "MSAT"
static_assert(sizeof(AllocHeader) == 16);
}  // namespace detail

/// Minimal allocator wrapper adding the ownership header. Stateless;
/// all instances compare equal.
template <class T>
struct TagAlloc {
  using value_type = T;

  TagAlloc() = default;
  template <class U>
  TagAlloc(const TagAlloc<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    // msc-lint: allow(naked-new): this IS the allocator; everything
    // else in the repo goes through containers that use it.
    void* raw = ::operator new(bytes + sizeof(detail::AllocHeader));
    auto* h = static_cast<detail::AllocHeader*>(raw);
    h->magic = detail::kAllocMagic;
    h->bytes = bytes;
    if (AllocTracking::enabled()) {
      const int rank = AllocTracking::threadRank();
      h->owner = rank;
      if (rank >= 0) AllocTracking::onAlloc(rank, bytes);
    } else {
      h->owner = kUntagged;
    }
    return static_cast<T*>(static_cast<void*>(h + 1));
  }

  void deallocate(T* p, std::size_t /*n*/) noexcept {
    auto* h = static_cast<detail::AllocHeader*>(static_cast<void*>(p)) - 1;
    if (AllocTracking::enabled() && h->magic == detail::kAllocMagic) {
      const int freer = AllocTracking::threadRank();
      const int owner = h->owner;
      if (freer >= 0) {
        AllocTracking::onFree(owner, freer, h->bytes);
      }
    }
    // msc-lint: allow(naked-new): see allocate().
    ::operator delete(static_cast<void*>(h));
  }

  template <class U>
  bool operator==(const TagAlloc<U>&) const noexcept {
    return true;
  }
};

}  // namespace msc::audit
