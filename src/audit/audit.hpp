/// \file audit.hpp
/// Protocol auditor for the message-passing runtime (msc::par).
///
/// The paper's algorithm is correct because ranks share nothing and
/// every cross-block fact travels through an explicit message. This
/// module turns that convention into a checked contract. An Auditor
/// is attached to par::Runtime::run (opt-in, like obs::Tracer); the
/// runtime then reports every protocol event to it:
///
///  * **Deadlock detection** — each blocking recv/barrier registers a
///    node in a waits-for graph (recv from a specific source waits on
///    that source; a barrier waits on every rank not yet at it). A
///    cycle of blocked ranks, a wait on a finished rank, or all ranks
///    parked with no receivable message is reported as a structured
///    AuditError — per-rank pending ops, op histories and mailbox
///    contents — instead of hanging the run.
///  * **Collective matching** — messages carry a piggybacked trailer
///    (see wire.hpp) with the sender's collective epoch and op kind;
///    the receiver detects mismatched collectives, out-of-epoch
///    receives, and collective framing consumed by user receives.
///    Wildcard receives with more than one eligible source are
///    counted as nondeterminism candidates.
///  * **Leak & ownership accounting** — a mirror of every mailbox is
///    kept by (src, tag, seq); finalize() fails the run if any
///    message was never received, or if the tagging allocator (see
///    tag_alloc.hpp) recorded a buffer packed on one rank and freed
///    on another outside the sanctioned transmit path.
///
/// Thread-safety: every hook may be called concurrently from rank
/// threads; all state is guarded by one internal mutex. Hooks that
/// detect a violation throw AuditError on the calling rank's thread
/// and latch failed(), which the runtime's audited wait loops poll so
/// every other rank unwinds promptly too.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/wire.hpp"
#include "core/annotations.hpp"

namespace msc::audit {

/// A detected protocol violation. `summary()` is one line;
/// `diagnostic()` is the full multi-line report (also included in
/// what()).
class AuditError : public std::runtime_error {
 public:
  enum class Code {
    kDeadlock,            ///< waits-for cycle / wait on finished rank / global stall
    kCollectiveMismatch,  ///< op kind of message != op kind of receive
    kEpochMismatch,       ///< collective message from a different epoch
    kMailboxLeak,         ///< messages never received at Runtime::run exit
    kOwnership,           ///< buffer freed by a rank that does not own it
    kStuck,               ///< watchdog: blocked past the configured timeout
    kAborted,             ///< secondary: another rank hit one of the above
  };

  AuditError(Code code, std::string summary, std::string diagnostic);

  Code code() const { return code_; }
  const std::string& summary() const { return summary_; }
  const std::string& diagnostic() const { return diagnostic_; }

 private:
  Code code_;
  std::string summary_;
  std::string diagnostic_;
};

const char* auditCodeName(AuditError::Code code);

/// One parallel execution's protocol monitor. Create with at least
/// the runtime's rank count and pass to par::Runtime::run (non-owning;
/// must outlive the call).
class Auditor {
 public:
  struct Options {
    /// Also enable the tagging allocator: per-rank allocation
    /// accounting plus cross-rank-free detection on par::Bytes.
    bool track_ownership = true;
    /// Backstop watchdog: a rank blocked longer than this fails the
    /// run with a full state report even if the structural detectors
    /// stayed silent (they fire event-driven, normally in well under
    /// a second).
    double block_timeout_seconds = 30.0;
    /// Per-rank op history kept for diagnostics.
    int history_depth = 16;
  };

  explicit Auditor(int nranks);
  Auditor(int nranks, Options opts);

  int nranks() const { return nranks_; }
  const Options& options() const { return opts_; }
  /// Adjust the watchdog timeout after construction (the pipeline
  /// promotes its configured block timeout onto an attached auditor).
  /// Call before Runtime::run starts; throws std::invalid_argument on
  /// a non-positive value.
  void setBlockTimeoutSeconds(double seconds);
  /// Optional extra-context hook appended to every diagnostic report:
  /// the runtime installs one when a causal::Recorder is attached, so
  /// AuditErrors carry per-rank vector clocks and last-K causal event
  /// histories without audit depending on the causal layer. The
  /// provider is called with the auditor's lock held and must not call
  /// back into the auditor.
  void setContextProvider(std::function<std::string()> provider);
  /// Latched once any detector fired; polled by the runtime's audited
  /// wait loops so every rank unwinds.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  // --- Hooks called by par::Runtime. Not for direct use.

  /// What a blocked rank is waiting on.
  struct Wait {
    OpKind op{OpKind::kP2P};  ///< kBarrier, or the expected kind of a recv
    int src{-1};              ///< recv: requested source (-1 = any)
    int tag{0};               ///< recv: requested tag
    std::int64_t barrier_gen{-1};
  };

  /// The rank entered a collective; bumps and returns its epoch.
  std::int64_t onCollectiveEnter(int rank, OpKind kind, int root);
  /// Barrier generation `gen` completed: ranks still parked at it are
  /// released, merely not woken yet — they must not look deadlocked.
  void onBarrierReleased(std::int64_t gen);
  /// The rank's current epoch (reads are cheap; used to stamp sends).
  std::int64_t epochOf(int rank) const;
  /// A message entered dst's mailbox. Returns its sequence id.
  /// Must be called under the same lock that orders the mailbox.
  std::uint64_t onSend(int src, int dst, int tag, OpKind kind, std::size_t bytes,
                       std::int64_t epoch);
  /// A message left self's mailbox. `wildcard_alternatives` counts
  /// queued messages from *other* sources that also matched the
  /// receive predicate (nondeterminism candidates).
  void onDequeue(int self, std::uint64_t seq, int wildcard_alternatives);
  /// The rank is about to block. Runs deadlock detection; throws
  /// AuditError(kDeadlock) when the wait can never be satisfied.
  void onBlocked(int self, const Wait& w);
  void onUnblocked(int self);
  /// The rank's function returned. May throw: remaining blocked ranks
  /// can become provably stuck at this moment.
  void onDone(int rank);
  /// The rank died (par::RankFailure) and is being re-invoked by the
  /// runtime's respawn supervisor. Unlike onDone this keeps the rank
  /// alive in the waits-for graph — a respawning rank will block and
  /// send again, so peers waiting on it are not deadlocked.
  void onRespawn(int rank);
  /// Validate a received message's trailer against the receive.
  /// `expect_epoch` < 0 skips the epoch check (point-to-point).
  void checkMessage(int self, OpKind expect, std::int64_t expect_epoch, int msg_src,
                    int msg_tag, const WireHeader& h);
  /// Watchdog backstop: the calling rank exceeded
  /// block_timeout_seconds. Always throws.
  [[noreturn]] void onStuck(int self);
  /// Another rank latched a failure; unwind this one. Always throws.
  [[noreturn]] void onAborted(int self);
  /// End-of-run accounting: throws on leaked mailbox messages or
  /// recorded ownership violations.
  void finalize();

  // --- Results / introspection.
  std::int64_t wildcardCandidates() const;
  std::int64_t messagesAudited() const;
  /// Rank deaths survived by respawning (onRespawn calls).
  std::int64_t respawns() const;
  /// Human-readable dump of the current protocol state (also the body
  /// of every AuditError diagnostic).
  std::string report() const;

 private:
  enum class Phase { kRunning, kBlocked, kDone };

  struct OpRecord {
    OpKind kind;
    bool is_send;  ///< send-side record (false = receive/collective entry)
    int peer;      ///< dst for sends, src for receives, root for collectives
    int tag;
    std::int64_t epoch;
  };

  struct MsgInfo {
    std::uint64_t seq;
    int src;
    int tag;
    std::size_t bytes;
    OpKind kind;
    std::int64_t epoch;
  };

  struct RankState {
    Phase phase = Phase::kRunning;
    Wait wait;
    std::int64_t epoch = 0;
    std::deque<OpRecord> history;  ///< newest at back, capped
  };

  void recordHistoryLocked(int rank, OpRecord rec) MSC_REQUIRES(mu_);
  /// True if a queued message matches the rank's blocked receive.
  bool wakeableLocked(int rank) const MSC_REQUIRES(mu_);
  /// Waits-for analysis; returns a non-empty doomed path (trigger
  /// first) if a deadlock is provable.
  std::vector<int> findDeadlockLocked() const MSC_REQUIRES(mu_);
  std::string renderLocked() const MSC_REQUIRES(mu_);
  [[noreturn]] void failLocked(AuditError::Code code, std::string summary)
      MSC_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::vector<RankState> ranks_ MSC_GUARDED_BY(mu_);
  /// Mailbox mirror, per dst.
  std::vector<std::deque<MsgInfo>> mail_ MSC_GUARDED_BY(mu_);
  /// Wildcard candidates etc., capped.
  std::deque<std::string> notes_ MSC_GUARDED_BY(mu_);
  std::uint64_t next_seq_ MSC_GUARDED_BY(mu_) = 1;
  /// Highest completed barrier generation.
  std::int64_t released_gen_ MSC_GUARDED_BY(mu_) = -1;
  std::int64_t wildcard_candidates_ MSC_GUARDED_BY(mu_) = 0;
  std::int64_t messages_ MSC_GUARDED_BY(mu_) = 0;
  std::int64_t respawns_ MSC_GUARDED_BY(mu_) = 0;
  int nranks_;   ///< immutable after construction
  Options opts_; ///< written before run() starts, read-only after
  std::function<std::string()> context_provider_ MSC_GUARDED_BY(mu_);
  /// Failure flag: release store in failLocked, acquire loads on the
  /// lock-free fast path -- the one audit atomic that is a handoff,
  /// not a tally (failure_summary_ must be visible once it is true).
  std::atomic<bool> failed_{false};
  std::string failure_summary_ MSC_GUARDED_BY(mu_);
};

}  // namespace msc::audit
