/// \file wire.hpp
/// Piggybacked protocol metadata for audited runs.
///
/// When an Auditor is attached, the runtime appends a fixed 24-byte
/// trailer to every message carrying (collective epoch, op kind,
/// source rank, user tag). The receiver strips and validates it:
/// mismatched collectives, out-of-epoch receives and reserved-tag
/// abuse are all detected from this trailer, Lamport-style — the
/// epoch is a per-rank count of collective entries, so two ranks
/// executing the same protocol present identical epochs at every
/// matching collective.
///
/// The trailer lives at the *tail* of the payload so attaching and
/// stripping are O(1) amortized (no memmove of user bytes).
///
/// Leaf header: no internal dependencies; operates on any
/// std::vector<std::byte, A>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace msc::audit {

/// What a message (or a blocking operation) is, protocol-wise.
enum class OpKind : std::uint8_t {
  kP2P = 0,            ///< user point-to-point send/recv
  kGatherContrib = 1,  ///< non-root contribution inside gather()
  kBcast = 2,          ///< root payload inside broadcast()
  kBarrier = 3,        ///< no message; used in waits/history only
};

const char* opKindName(OpKind k);

/// The appended trailer. Fixed wire layout (little-endian hosts
/// only, like the rest of the repo's serialization).
struct WireHeader {
  std::int64_t epoch{0};  ///< sender's collective epoch at send time
  std::int32_t src{0};    ///< sending rank
  std::int32_t tag{0};    ///< tag as passed by the caller
  OpKind kind{OpKind::kP2P};
};

inline constexpr std::size_t kWireHeaderBytes = 24;
inline constexpr std::uint8_t kWireMagic = 0xA5;

/// Append `h` to `b` (the audited send path).
template <class ByteVec>
void appendHeader(ByteVec& b, const WireHeader& h) {
  const std::size_t base = b.size();
  b.resize(base + kWireHeaderBytes);
  std::byte* p = b.data() + base;
  std::memcpy(p, &h.epoch, 8);
  std::memcpy(p + 8, &h.src, 4);
  std::memcpy(p + 12, &h.tag, 4);
  p[16] = static_cast<std::byte>(h.kind);
  // bytes 17..22 reserved (zeroed by resize's value-init)
  p[23] = static_cast<std::byte>(kWireMagic);
}

/// Strip the trailer from `b` (the audited receive path). Throws
/// std::runtime_error on a malformed trailer: that means a message
/// bypassed the audited send path entirely.
template <class ByteVec>
WireHeader stripHeader(ByteVec& b) {
  if (b.size() < kWireHeaderBytes ||
      b[b.size() - 1] != static_cast<std::byte>(kWireMagic))
    throw std::runtime_error(
        "audit: message without a protocol trailer reached an audited receive "
        "(send bypassed the audited runtime?)");
  const std::byte* p = b.data() + (b.size() - kWireHeaderBytes);
  WireHeader h;
  std::memcpy(&h.epoch, p, 8);
  std::memcpy(&h.src, p + 8, 4);
  std::memcpy(&h.tag, p + 12, 4);
  h.kind = static_cast<OpKind>(p[16]);
  b.resize(b.size() - kWireHeaderBytes);
  return h;
}

}  // namespace msc::audit
