#include "audit/audit.hpp"

#include <algorithm>
#include <functional>

#include "audit/tag_alloc.hpp"

namespace msc::audit {

Auditor::Auditor(int nranks) : Auditor(nranks, Options()) {}

Auditor::Auditor(int nranks, Options opts)
    : ranks_(static_cast<std::size_t>(nranks)),
      mail_(static_cast<std::size_t>(nranks)),
      nranks_(nranks),
      opts_(opts) {}

std::int64_t Auditor::onCollectiveEnter(int rank, OpKind kind, int root) {
  const std::lock_guard lock(mu_);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  ++rs.epoch;
  recordHistoryLocked(rank, {kind, false, root, 0, rs.epoch});
  return rs.epoch;
}

void Auditor::onBarrierReleased(std::int64_t gen) {
  const std::lock_guard lock(mu_);
  released_gen_ = std::max(released_gen_, gen);
}

std::int64_t Auditor::epochOf(int rank) const {
  const std::lock_guard lock(mu_);
  return ranks_[static_cast<std::size_t>(rank)].epoch;
}

std::uint64_t Auditor::onSend(int src, int dst, int tag, OpKind kind, std::size_t bytes,
                              std::int64_t epoch) {
  const std::lock_guard lock(mu_);
  const std::uint64_t seq = next_seq_++;
  mail_[static_cast<std::size_t>(dst)].push_back({seq, src, tag, bytes, kind, epoch});
  recordHistoryLocked(src, {kind, true, dst, tag, epoch});
  ++messages_;
  return seq;
}

void Auditor::onDequeue(int self, std::uint64_t seq, int wildcard_alternatives) {
  const std::lock_guard lock(mu_);
  auto& box = mail_[static_cast<std::size_t>(self)];
  const auto it = std::find_if(box.begin(), box.end(),
                               [seq](const MsgInfo& m) { return m.seq == seq; });
  if (it != box.end()) {
    recordHistoryLocked(self, {it->kind, false, it->src, it->tag, it->epoch});
    if (wildcard_alternatives > 0) {
      ++wildcard_candidates_;
      if (notes_.size() < 64)
        notes_.push_back("wildcard-recv nondeterminism candidate: rank " +
                         std::to_string(self) + " consumed src=" + std::to_string(it->src) +
                         " tag=" + std::to_string(it->tag) + " with " +
                         std::to_string(wildcard_alternatives) +
                         " other eligible source(s) queued");
    }
    box.erase(it);
  }
}

void Auditor::onBlocked(int self, const Wait& w) {
  const std::lock_guard lock(mu_);
  RankState& rs = ranks_[static_cast<std::size_t>(self)];
  rs.phase = Phase::kBlocked;
  rs.wait = w;
  if (failed_.load(std::memory_order_acquire)) return;  // unwinding anyway
  const std::vector<int> path = findDeadlockLocked();
  if (!path.empty()) {
    std::string summary = "deadlock detected when rank " + std::to_string(self) +
                          " blocked in " + opKindName(w.op) + ": waits-for path";
    for (const int r : path) summary += " -> rank " + std::to_string(r);
    failLocked(AuditError::Code::kDeadlock, std::move(summary));
  }
}

void Auditor::onUnblocked(int self) {
  const std::lock_guard lock(mu_);
  ranks_[static_cast<std::size_t>(self)].phase = Phase::kRunning;
}

void Auditor::onDone(int rank) {
  const std::lock_guard lock(mu_);
  ranks_[static_cast<std::size_t>(rank)].phase = Phase::kDone;
  if (failed_.load(std::memory_order_acquire)) return;
  const std::vector<int> path = findDeadlockLocked();
  if (!path.empty()) {
    std::string summary = "deadlock: rank " + std::to_string(rank) +
                          " finished while other ranks wait on it: waits-for path";
    for (const int r : path) summary += " -> rank " + std::to_string(r);
    failLocked(AuditError::Code::kDeadlock, std::move(summary));
  }
}

void Auditor::onRespawn(int rank) {
  const std::lock_guard lock(mu_);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  // The replacement starts with a clean slate: not blocked, not done.
  // Epoch and history survive — the respawned function re-executes
  // whole collectives, so its epoch keeps counting from where the
  // rank's previous incarnation left it.
  rs.phase = Phase::kRunning;
  rs.wait = Wait{};
  ++respawns_;
  if (notes_.size() < 64)
    notes_.push_back("respawn: rank " + std::to_string(rank) +
                     " died and was re-invoked (respawn #" + std::to_string(respawns_) + ")");
}

void Auditor::checkMessage(int self, OpKind expect, std::int64_t expect_epoch, int msg_src,
                           int msg_tag, const WireHeader& h) {
  const std::lock_guard lock(mu_);
  if (h.kind != expect) {
    failLocked(AuditError::Code::kCollectiveMismatch,
               "collective mismatch: rank " + std::to_string(self) + " receiving " +
                   opKindName(expect) + " (tag " + std::to_string(msg_tag) +
                   ") consumed a " + opKindName(h.kind) + " message from rank " +
                   std::to_string(msg_src) + " (sender epoch " + std::to_string(h.epoch) +
                   ") — the two ranks are executing different protocols");
  }
  if (expect_epoch >= 0 && h.epoch != expect_epoch) {
    failLocked(AuditError::Code::kEpochMismatch,
               "out-of-epoch receive: rank " + std::to_string(self) + " in " +
                   opKindName(expect) + " epoch " + std::to_string(expect_epoch) +
                   " consumed a message from rank " + std::to_string(msg_src) +
                   " stamped epoch " + std::to_string(h.epoch) +
                   " — the ranks disagree on the collective sequence");
  }
}

void Auditor::onStuck(int self) {
  const std::lock_guard lock(mu_);
  if (failed_.load(std::memory_order_acquire)) {
    throw AuditError(AuditError::Code::kAborted,
                     "rank " + std::to_string(self) + " aborted: " + failure_summary_, "");
  }
  failLocked(AuditError::Code::kStuck,
             "watchdog: rank " + std::to_string(self) + " blocked longer than " +
                 std::to_string(opts_.block_timeout_seconds) +
                 " s with no structural deadlock proof; protocol state follows");
}

void Auditor::onAborted(int self) {
  std::string first;
  {
    const std::lock_guard lock(mu_);
    first = failure_summary_;
  }
  throw AuditError(AuditError::Code::kAborted,
                   "rank " + std::to_string(self) + " aborted: " + first, "");
}

void Auditor::finalize() {
  const std::lock_guard lock(mu_);
  if (failed_.load(std::memory_order_acquire)) return;
  int leaked = 0;
  for (const auto& box : mail_) leaked += static_cast<int>(box.size());
  if (leaked > 0) {
    failLocked(AuditError::Code::kMailboxLeak,
               "mailbox leak: " + std::to_string(leaked) +
                   " message(s) were still queued when Runtime::run exited — every "
                   "send must be received (see per-rank mailbox contents below)");
  }
  if (opts_.track_ownership) {
    const auto violations = AllocTracking::drainViolations();
    if (!violations.empty()) {
      const AllocTracking::Violation& v = violations.front();
      failLocked(AuditError::Code::kOwnership,
                 "ownership violation: " + std::to_string(violations.size()) +
                     " buffer(s) freed by a rank that does not own them (first: " +
                     std::to_string(v.bytes) + " bytes allocated on rank " +
                     std::to_string(v.owner) + ", freed on rank " +
                     std::to_string(v.freer) +
                     ") — cross-rank handoff outside the transmit path breaks "
                     "share-nothing");
    }
  }
}

std::int64_t Auditor::wildcardCandidates() const {
  const std::lock_guard lock(mu_);
  return wildcard_candidates_;
}

std::int64_t Auditor::messagesAudited() const {
  const std::lock_guard lock(mu_);
  return messages_;
}

std::int64_t Auditor::respawns() const {
  const std::lock_guard lock(mu_);
  return respawns_;
}

void Auditor::setBlockTimeoutSeconds(double seconds) {
  if (!(seconds > 0))
    throw std::invalid_argument(
        "Auditor::setBlockTimeoutSeconds: block_timeout_seconds must be > 0, got " +
        std::to_string(seconds));
  const std::lock_guard lock(mu_);
  opts_.block_timeout_seconds = seconds;
}

void Auditor::setContextProvider(std::function<std::string()> provider) {
  const std::lock_guard lock(mu_);
  context_provider_ = std::move(provider);
}

std::string Auditor::report() const {
  const std::lock_guard lock(mu_);
  return renderLocked();
}

void Auditor::recordHistoryLocked(int rank, OpRecord rec) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.history.push_back(rec);
  while (static_cast<int>(rs.history.size()) > opts_.history_depth) rs.history.pop_front();
}

bool Auditor::wakeableLocked(int rank) const {
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.phase != Phase::kBlocked) return false;
  // A rank parked at an already-completed barrier generation has been
  // released; it just has not run yet.
  if (rs.wait.op == OpKind::kBarrier) return rs.wait.barrier_gen <= released_gen_;
  for (const MsgInfo& m : mail_[static_cast<std::size_t>(rank)])
    if ((rs.wait.src < 0 || m.src == rs.wait.src) && (rs.wait.tag < 0 || m.tag == rs.wait.tag))
      return true;
  return false;
}

std::vector<int> Auditor::findDeadlockLocked() const {
  const int n = nranks_;
  // Fast path: the global stall. Every rank is parked (blocked or
  // done), at least one is blocked, and no blocked receive has an
  // eligible message queued — nobody can ever send again.
  bool all_parked = true, any_blocked = false, any_wakeable = false;
  for (int r = 0; r < n; ++r) {
    const Phase p = ranks_[static_cast<std::size_t>(r)].phase;
    if (p == Phase::kRunning) all_parked = false;
    if (p == Phase::kBlocked) {
      any_blocked = true;
      if (wakeableLocked(r)) any_wakeable = true;
    }
  }
  if (all_parked && any_blocked && !any_wakeable) {
    std::vector<int> path;
    for (int r = 0; r < n; ++r)
      if (ranks_[static_cast<std::size_t>(r)].phase == Phase::kBlocked) path.push_back(r);
    return path;
  }

  // Waits-for traversal: an edge r -> e means "r cannot proceed until
  // e acts". A blocked recv from a specific source waits on exactly
  // that source; a barrier waits on every rank not already parked in
  // the same barrier generation. Wildcard receives contribute no
  // edges (any rank could satisfy them). A rank provably never acts
  // if it is done, or blocked with some successor that never acts
  // (including through a cycle). This fires on partial deadlocks even
  // while unrelated ranks keep running.
  auto edges = [&](int r) {
    std::vector<int> out;
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.wait.op == OpKind::kBarrier) {
      for (int r2 = 0; r2 < n; ++r2) {
        if (r2 == r) continue;
        const RankState& other = ranks_[static_cast<std::size_t>(r2)];
        const bool at_same_barrier = other.phase == Phase::kBlocked &&
                                     other.wait.op == OpKind::kBarrier &&
                                     other.wait.barrier_gen == rs.wait.barrier_gen;
        if (!at_same_barrier) out.push_back(r2);
      }
    } else if (rs.wait.src >= 0) {
      out.push_back(rs.wait.src);
    }
    return out;
  };

  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 new, 1 on stack, 2 cleared
  std::vector<int> stack;
  const std::function<bool(int)> neverActs = [&](int r) -> bool {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.phase == Phase::kDone) {
      stack.push_back(r);
      return true;
    }
    if (rs.phase != Phase::kBlocked || wakeableLocked(r)) return false;
    if (color[static_cast<std::size_t>(r)] == 1) {
      stack.push_back(r);
      return true;  // cycle closed
    }
    if (color[static_cast<std::size_t>(r)] == 2) return false;
    color[static_cast<std::size_t>(r)] = 1;
    stack.push_back(r);
    for (const int e : edges(r))
      if (neverActs(e)) return true;
    stack.pop_back();
    color[static_cast<std::size_t>(r)] = 2;
    return false;
  };

  for (int r = 0; r < n; ++r) {
    if (ranks_[static_cast<std::size_t>(r)].phase != Phase::kBlocked || wakeableLocked(r))
      continue;
    if (color[static_cast<std::size_t>(r)] != 0) continue;
    stack.clear();
    if (neverActs(r)) return stack;
  }
  return {};
}

void Auditor::failLocked(AuditError::Code code, std::string summary) {
  failure_summary_ = summary;
  failed_.store(true, std::memory_order_release);
  throw AuditError(code, std::move(summary), renderLocked());
}

}  // namespace msc::audit
