/// \file prof.hpp
/// Span-stack sampling profiler: the "where inside a stage" companion
/// to the obs tracer. The tracer records every span it is asked to;
/// that is exact but coarse -- DESIGN.md §14's 58 ms skeleton replay
/// shows up as one `merge` span with no interior attribution. This
/// module keeps, per rank, a lock-free stack of the currently-open
/// instrumentation frames (the obs RAII spans mirror themselves here,
/// and kernels add lightweight MSC_PROF_POINT phase markers), and a
/// background wall-clock sampler thread snapshots every rank's stack
/// at a configurable frequency. Output is folded-stack lines
/// (`writeFolded`, the format flamegraph.pl / speedscope / inferno
/// consume) plus a self-contained top-N hot-span table.
///
/// Why span-stack sampling instead of signal-based backtraces: the
/// ranks are std::threads inside one process, so SIGPROF delivery is
/// per-process, unwinding from a signal handler is async-signal-unsafe
/// territory, and raw PC backtraces would attribute time to mangled
/// symbols instead of the pipeline's own phase vocabulary. Sampling
/// the instrumentation stack keeps the profile in the same names the
/// traces, critpath tables and perf gate already use, costs two RMWs
/// per frame push/pop, and is exact about nesting by construction.
///
/// Ownership/overhead contract (house instrument style, identical to
/// obs::Tracer / audit::Auditor / metrics::Registry): a `Profiler` is
/// created by the caller and attached as a non-owning
/// `PipelineConfig::profiler` pointer; every instrumentation site is
/// gated on one predictable branch when detached, pipeline output
/// bytes are identical on/off, and each rank writes only its own
/// cache-line-padded slot. The sampler thread never blocks writers:
/// stacks are published through a per-rank seqlock of atomics, so a
/// torn snapshot is retried, never locked against.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace msc::prof {

/// One hot-span row of the top-N table. `self` counts samples whose
/// innermost frame is this span; `total` counts samples with the span
/// anywhere on the stack (so nested frames do not hide their parent).
struct HotSpan {
  std::string name;
  std::int64_t self{0};
  std::int64_t total{0};
};

struct ProfilerOptions {
  /// Sampler wakeups per second. A prime default keeps the sampler
  /// from phase-locking onto periodic pipeline behaviour.
  double hz{997.0};
  /// Frames kept per rank stack; deeper pushes are counted in
  /// truncated() instead of recorded (nesting in the pipeline is
  /// stage > sub-stage > kernel phase, so 32 is generous).
  int max_depth{32};
};

class Profiler {
 public:
  using Options = ProfilerOptions;

  explicit Profiler(int nranks, Options opts = {});
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  int nranks() const { return static_cast<int>(stacks_.size()); }

  // --- Writer side (each rank's own thread; lock-free).

  /// Push/pop a frame on `rank`'s span stack. `name` must stay valid
  /// until the profiler is destroyed: pass a string literal or an
  /// intern()ed pointer. Prefer ScopedPoint / MSC_PROF_POINT.
  void push(int rank, const char* name);
  void pop(int rank);

  /// Stable pointer for a dynamic span name (used by the obs span
  /// mirror; kernels use literals and never intern). Takes a mutex --
  /// fine at stage granularity, not for per-cell loops.
  const char* intern(const std::string& name);

  /// Live progress cells for the heartbeat reporter: the merge round
  /// `rank` is currently in (-1 outside the merge rounds) and the
  /// plan's total round count.
  void noteRound(int rank, int round);
  void noteTotalRounds(int rounds);
  int round(int rank) const;
  int totalRounds() const;

  // --- Sampler lifecycle. start() spawns the background thread;
  // stop() joins it (idempotent; the destructor also stops).
  void startSampler();
  void stopSampler();
  bool samplerRunning() const;

  /// Take one synchronous snapshot of every rank's stack (what the
  /// sampler thread does each tick). Useful for tests and for
  /// sampling without the background thread.
  void sampleOnce();

  // --- Read side (any thread).

  /// Coherent snapshot of `rank`'s currently-open frames, outermost
  /// first. Retries around concurrent pushes/pops.
  std::vector<const char*> liveStack(int rank) const;

  /// Total samples recorded (sum over ranks; one stack snapshot of
  /// one rank = one sample, idle empty stacks included).
  std::int64_t sampleCount() const;
  /// Pushes dropped because a stack exceeded Options::max_depth.
  std::int64_t truncated() const;

  /// Folded-stack lines: `rankN;outer;inner COUNT` (flamegraph.pl
  /// syntax), ranks then stacks in deterministic order. With
  /// `per_rank` false the rank prefix is dropped and identical stacks
  /// aggregate across ranks. Idle (empty-stack) samples are emitted
  /// as `rankN;(idle)`.
  void writeFolded(std::ostream& os, bool per_rank = true) const;
  bool writeFoldedFile(const std::string& path, bool per_rank = true) const;

  /// Aggregated folded counts (rank prefix dropped), keyed by the
  /// ';'-joined stack. The test surface for well-formedness.
  std::map<std::string, std::int64_t> foldedCounts() const;

  /// Top-N spans by self samples (ties broken by name). `n <= 0`
  /// returns every span.
  std::vector<HotSpan> topSpans(int n) const;
  /// The same as a printable table with a percent-of-total column.
  std::string topTable(int n) const;

 private:
  /// Per-rank frame stack, published through a seqlock: the owning
  /// rank thread bumps `version` to odd, mutates, bumps back to even;
  /// the sampler retries until it reads the same even version on both
  /// sides of the copy. Every field is an atomic, so a racing read is
  /// merely retried, never undefined.
  struct alignas(64) RankStack {
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::int32_t> depth{0};
    std::atomic<std::int32_t> round{-1};
    /// Samples dropped past max_depth (statistics only).
    std::atomic<std::int64_t> truncated MSC_RELAXED_TALLY{0};
    std::vector<std::atomic<const char*>> frames;  // size = max_depth
  };

  /// Seqlock read of one rank's stack into `out`; false if the rank
  /// index is out of range.
  bool snapshotStack(int rank, std::vector<const char*>& out) const;
  void samplerLoop();
  void recordSample(int rank, const std::vector<const char*>& frames);

  Options opts_;
  std::vector<std::unique_ptr<RankStack>> stacks_;
  std::atomic<std::int32_t> total_rounds_{0};

  std::mutex intern_mu_;
  std::set<std::string> interned_ MSC_GUARDED_BY(intern_mu_);

  /// Folded samples, keyed (rank, ';'-joined stack). Written by the
  /// sampler thread (or sampleOnce callers), read by the report side.
  mutable std::mutex samples_mu_;
  std::map<std::pair<int, std::string>, std::int64_t> samples_ MSC_GUARDED_BY(samples_mu_);
  std::int64_t nsamples_ MSC_GUARDED_BY(samples_mu_) = 0;

  mutable std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ MSC_GUARDED_BY(sampler_mu_) = false;
  bool sampler_running_ MSC_GUARDED_BY(sampler_mu_) = false;
  std::thread sampler_;
};

/// The per-thread binding kernels and mirrored obs spans record
/// through: a (profiler, rank) pair installed by the pipeline drivers
/// for the duration of a rank's body. Null profiler = every
/// MSC_PROF_POINT is one branch and nothing else.
struct Binding {
  Profiler* profiler{nullptr};
  int rank{0};
};

/// The calling thread's current binding (a function-local
/// thread_local; never null, but its profiler may be).
Binding& threadBinding();

/// RAII install/restore of the thread binding. Nests (the simulated
/// driver re-binds per block task on one thread).
class ThreadBind {
 public:
  ThreadBind(Profiler* profiler, int rank) : saved_(threadBinding()) {
    threadBinding() = Binding{profiler, rank};
  }
  ~ThreadBind() { threadBinding() = saved_; }
  ThreadBind(const ThreadBind&) = delete;
  ThreadBind& operator=(const ThreadBind&) = delete;

 private:
  Binding saved_;
};

/// RAII phase frame recorded through the thread binding. `name` must
/// be a string literal (or otherwise outlive the profiler).
class ScopedPoint {
 public:
  explicit ScopedPoint(const char* name) {
    const Binding& b = threadBinding();
    if (b.profiler) {
      profiler_ = b.profiler;
      rank_ = b.rank;
      profiler_->push(rank_, name);
    }
  }
  ~ScopedPoint() {
    if (profiler_) profiler_->pop(rank_);
  }
  ScopedPoint(const ScopedPoint&) = delete;
  ScopedPoint& operator=(const ScopedPoint&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  int rank_ = 0;
};

/// Null-safe helpers for driver code that holds the config pointer.
inline void noteRound(Profiler* p, int rank, int round) {
  if (p) p->noteRound(rank, round);
}
inline void noteTotalRounds(Profiler* p, int rounds) {
  if (p) p->noteTotalRounds(rounds);
}

}  // namespace msc::prof

#define MSC_PROF_CONCAT_IMPL(a, b) a##b
#define MSC_PROF_CONCAT(a, b) MSC_PROF_CONCAT_IMPL(a, b)

/// Kernel-phase marker: opens a profiler frame named `name` (a string
/// literal) for the rest of the enclosing scope, through the calling
/// thread's binding. One branch when no profiler is bound.
#define MSC_PROF_POINT(name) \
  const ::msc::prof::ScopedPoint MSC_PROF_CONCAT(msc_prof_point_, __LINE__)(name)
