#include "prof/prof.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace msc::prof {

namespace {

/// Joined folded-stack key for one snapshot; empty stacks fold to the
/// reserved "(idle)" frame so idle time is visible in the flamegraph
/// instead of silently dropped.
std::string foldKey(const std::vector<const char*>& frames) {
  if (frames.empty()) return "(idle)";
  std::string key;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i) key += ';';
    key += frames[i];
  }
  return key;
}

}  // namespace

Profiler::Profiler(int nranks, Options opts) : opts_(opts) {
  if (nranks <= 0) throw std::invalid_argument("prof: nranks must be positive");
  if (opts_.max_depth <= 0) throw std::invalid_argument("prof: max_depth must be positive");
  if (!(opts_.hz > 0)) throw std::invalid_argument("prof: hz must be positive");
  stacks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto s = std::make_unique<RankStack>();
    s->frames = std::vector<std::atomic<const char*>>(static_cast<std::size_t>(opts_.max_depth));
    for (auto& f : s->frames) f.store(nullptr, std::memory_order_release);
    stacks_.push_back(std::move(s));
  }
}

Profiler::~Profiler() { stopSampler(); }

void Profiler::push(int rank, const char* name) {
  RankStack& s = *stacks_[static_cast<std::size_t>(rank)];
  const std::int32_t d = s.depth.load(std::memory_order_acquire);
  if (d >= opts_.max_depth) {
    s.truncated.fetch_add(1, std::memory_order_relaxed);
    // Depth still advances so the matching pop knows it was dropped.
    s.version.fetch_add(1, std::memory_order_acq_rel);  // -> odd
    s.depth.store(d + 1, std::memory_order_release);
    s.version.fetch_add(1, std::memory_order_release);  // -> even
    return;
  }
  s.version.fetch_add(1, std::memory_order_acq_rel);  // -> odd: writer in
  s.frames[static_cast<std::size_t>(d)].store(name, std::memory_order_release);
  s.depth.store(d + 1, std::memory_order_release);
  s.version.fetch_add(1, std::memory_order_release);  // -> even: stable
}

void Profiler::pop(int rank) {
  RankStack& s = *stacks_[static_cast<std::size_t>(rank)];
  const std::int32_t d = s.depth.load(std::memory_order_acquire);
  if (d <= 0) return;  // unbalanced pop: ignore rather than corrupt
  s.version.fetch_add(1, std::memory_order_acq_rel);  // -> odd
  s.depth.store(d - 1, std::memory_order_release);
  if (d - 1 < opts_.max_depth)
    s.frames[static_cast<std::size_t>(d - 1)].store(nullptr, std::memory_order_release);
  s.version.fetch_add(1, std::memory_order_release);  // -> even
}

const char* Profiler::intern(const std::string& name) {
  std::lock_guard<std::mutex> lk(intern_mu_);
  return interned_.insert(name).first->c_str();
}

void Profiler::noteRound(int rank, int round) {
  if (rank < 0 || rank >= nranks()) return;
  stacks_[static_cast<std::size_t>(rank)]->round.store(round, std::memory_order_release);
}

void Profiler::noteTotalRounds(int rounds) {
  total_rounds_.store(rounds, std::memory_order_release);
}

int Profiler::round(int rank) const {
  if (rank < 0 || rank >= nranks()) return -1;
  return stacks_[static_cast<std::size_t>(rank)]->round.load(std::memory_order_acquire);
}

int Profiler::totalRounds() const { return total_rounds_.load(std::memory_order_acquire); }

void Profiler::startSampler() {
  std::lock_guard<std::mutex> lk(sampler_mu_);
  if (sampler_running_) return;
  sampler_stop_ = false;
  sampler_running_ = true;
  sampler_ = std::thread([this] { samplerLoop(); });
}

void Profiler::stopSampler() {
  {
    std::lock_guard<std::mutex> lk(sampler_mu_);
    if (!sampler_running_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lk(sampler_mu_);
  sampler_running_ = false;
}

bool Profiler::samplerRunning() const {
  std::lock_guard<std::mutex> lk(sampler_mu_);
  return sampler_running_;
}

void Profiler::samplerLoop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::duration<double>(1.0 / opts_.hz));
  std::unique_lock<std::mutex> lk(sampler_mu_);
  for (;;) {
    if (sampler_cv_.wait_for(lk, interval, [this]() MSC_REQUIRES(sampler_mu_) { return sampler_stop_; }))
      return;
    lk.unlock();
    sampleOnce();
    lk.lock();
  }
}

void Profiler::sampleOnce() {
  std::vector<const char*> frames;
  for (int r = 0; r < nranks(); ++r) {
    if (snapshotStack(r, frames)) recordSample(r, frames);
  }
}

bool Profiler::snapshotStack(int rank, std::vector<const char*>& out) const {
  if (rank < 0 || rank >= nranks()) return false;
  const RankStack& s = *stacks_[static_cast<std::size_t>(rank)];
  for (;;) {
    const std::uint32_t v0 = s.version.load(std::memory_order_acquire);
    if (v0 & 1u) continue;  // writer mid-update; retry
    out.clear();
    std::int32_t d = s.depth.load(std::memory_order_acquire);
    if (d > opts_.max_depth) d = opts_.max_depth;  // truncated tail
    for (std::int32_t i = 0; i < d; ++i) {
      const char* f = s.frames[static_cast<std::size_t>(i)].load(std::memory_order_acquire);
      if (f) out.push_back(f);
    }
    const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
    if (v0 == v1) return true;  // coherent snapshot
  }
}

void Profiler::recordSample(int rank, const std::vector<const char*>& frames) {
  std::string key = foldKey(frames);
  std::lock_guard<std::mutex> lk(samples_mu_);
  samples_[{rank, std::move(key)}] += 1;
  ++nsamples_;
}

std::vector<const char*> Profiler::liveStack(int rank) const {
  std::vector<const char*> out;
  snapshotStack(rank, out);
  return out;
}

std::int64_t Profiler::sampleCount() const {
  std::lock_guard<std::mutex> lk(samples_mu_);
  return nsamples_;
}

std::int64_t Profiler::truncated() const {
  std::int64_t n = 0;
  for (const auto& s : stacks_) n += s->truncated.load(std::memory_order_relaxed);
  return n;
}

void Profiler::writeFolded(std::ostream& os, bool per_rank) const {
  if (per_rank) {
    std::lock_guard<std::mutex> lk(samples_mu_);
    for (const auto& [key, count] : samples_)
      os << "rank" << key.first << ';' << key.second << ' ' << count << '\n';
    return;
  }
  for (const auto& [stack, count] : foldedCounts()) os << stack << ' ' << count << '\n';
}

bool Profiler::writeFoldedFile(const std::string& path, bool per_rank) const {
  std::ofstream f(path);
  if (!f) return false;
  writeFolded(f, per_rank);
  return static_cast<bool>(f);
}

std::map<std::string, std::int64_t> Profiler::foldedCounts() const {
  std::map<std::string, std::int64_t> out;
  std::lock_guard<std::mutex> lk(samples_mu_);
  for (const auto& [key, count] : samples_) out[key.second] += count;
  return out;
}

std::vector<HotSpan> Profiler::topSpans(int n) const {
  // self = innermost frame; total = anywhere on the stack (counted
  // once per sample even if a frame recurses).
  std::map<std::string, HotSpan> by_name;
  for (const auto& [stack, count] : foldedCounts()) {
    std::vector<std::string> frames;
    std::size_t start = 0;
    for (;;) {
      const std::size_t sep = stack.find(';', start);
      frames.push_back(stack.substr(start, sep == std::string::npos ? sep : sep - start));
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
    std::set<std::string> seen;
    for (const std::string& f : frames) {
      if (!seen.insert(f).second) continue;
      HotSpan& h = by_name[f];
      h.name = f;
      h.total += count;
    }
    by_name[frames.back()].self += count;
  }
  std::vector<HotSpan> out;
  out.reserve(by_name.size());
  for (auto& [_, h] : by_name) out.push_back(std::move(h));
  std::sort(out.begin(), out.end(), [](const HotSpan& a, const HotSpan& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  if (n > 0 && static_cast<int>(out.size()) > n) out.resize(static_cast<std::size_t>(n));
  return out;
}

std::string Profiler::topTable(int n) const {
  const std::vector<HotSpan> rows = topSpans(n);
  const std::int64_t total = sampleCount();
  std::ostringstream os;
  os << "  hot spans (self samples / total samples / % of all samples)\n";
  char buf[160];
  for (const HotSpan& h : rows) {
    const double pct = total ? 100.0 * static_cast<double>(h.self) / static_cast<double>(total) : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-32s %10lld %10lld %7.2f%%\n", h.name.c_str(),
                  static_cast<long long>(h.self), static_cast<long long>(h.total), pct);
    os << buf;
  }
  if (rows.empty()) os << "  (no samples)\n";
  return os.str();
}

Binding& threadBinding() {
  thread_local Binding b;
  return b;
}

}  // namespace msc::prof
