/// \file heartbeat.hpp
/// Live progress telemetry: a background reporter that periodically
/// reads the sampling profiler's per-rank live stacks and round cells
/// plus the metrics registry's memory/byte gauges, and renders (a)
/// human-readable per-rank stage/round/ETA lines and (b) one
/// machine-readable JSON object per beat (newline-delimited, flat
/// key/value, schema_version-stamped) for services to consume.
///
/// The reporter is an observer only: it never touches pipeline state,
/// both sources (profiler stacks, metrics atomics) are already safe
/// for concurrent reads, and detaching it changes nothing about the
/// run. ETA is a coarse stage-weight model -- read/compute/merge/write
/// weights with merge scaled by round progress -- honest about being
/// an estimate, not a promise.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/annotations.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace msc::metrics {
class Registry;
}

namespace msc::prof {

class Profiler;

inline constexpr int kHeartbeatSchemaVersion = 1;

struct HeartbeatOptions {
  /// Seconds between beats.
  double period_s{1.0};
  /// Human-readable sink (per-rank lines + gauges); null disables.
  std::ostream* text{nullptr};
  /// Machine-readable sink (one flat JSON object per line); null
  /// disables.
  std::ostream* json{nullptr};
  /// Rank detail lines rendered per beat (busiest-first); the rest are
  /// summarized as one "... and N more" line.
  int max_ranks_shown{8};
  /// Optional extra text appended to each human-readable beat (the
  /// CLI feeds the tracer's span-duration stats through this, keeping
  /// prof independent of obs).
  std::function<std::string()> extra;
};

/// One beat's view of the run, assembled from the profiler and the
/// metrics registry. Public so tests can render without threads.
struct HeartbeatSnapshot {
  double elapsed_s{0};
  int nranks{0};
  /// Outermost live frame per rank ("(idle)" when the stack is empty).
  std::vector<std::string> stage;
  /// Innermost live frame per rank (equals stage when depth == 1).
  std::vector<std::string> leaf;
  std::vector<int> round;    ///< per-rank merge round, -1 outside merge
  int rounds_total{0};
  double frac{0};            ///< estimated completed fraction [0, 1]
  double eta_s{-1};          ///< -1 when no estimate yet
  std::int64_t samples{0};   ///< profiler samples so far
  std::int64_t mem_peak_bytes{0};
  double pack_bytes_per_s{0};
};

class Heartbeat {
 public:
  /// `profiler` is required (the stage/round source); `metrics` is
  /// optional (memory/rate gauges render as 0 without it). Neither is
  /// owned; both must outlive this object.
  Heartbeat(const Profiler* profiler, const metrics::Registry* metrics,
            HeartbeatOptions opts);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start();
  void stop();

  /// Assemble one snapshot now (also advances the rate window).
  HeartbeatSnapshot snapshot();
  /// Render + emit one beat to the configured sinks.
  void beat();

 private:
  void loop();

  const Profiler* profiler_;
  const metrics::Registry* metrics_;
  HeartbeatOptions opts_;

  std::chrono::steady_clock::time_point epoch_;
  /// Rate window state (reporter thread only once start()ed, but
  /// snapshot() is public for tests, so keep it guarded).
  std::mutex rate_mu_;
  double last_beat_s_ MSC_GUARDED_BY(rate_mu_) = 0;
  std::int64_t last_pack_bytes_ MSC_GUARDED_BY(rate_mu_) = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ MSC_GUARDED_BY(mu_) = false;
  bool running_ MSC_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Render a snapshot as the human-readable beat block.
std::string renderText(const HeartbeatSnapshot& s, int max_ranks_shown);

/// Render a snapshot as one flat JSON object (no trailing newline).
/// Keys: schema_version, t_s, ranks, rounds_total, round_max, frac,
/// eta_s, samples, mem_peak_bytes, pack_bytes_per_s, stages (a
/// "name:count,name:count" summary string).
std::string renderJsonLine(const HeartbeatSnapshot& s);

/// Minimal parser for the flat JSON objects renderJsonLine emits
/// (string and numeric values only; no nesting). Returns false on
/// malformed input. Exists so consumers and tests can round-trip the
/// stream without a JSON dependency.
bool parseJsonLine(const std::string& line, std::map<std::string, std::string>& out);

}  // namespace msc::prof
