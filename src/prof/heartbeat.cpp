#include "prof/heartbeat.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "metrics/metrics.hpp"
#include "prof/prof.hpp"

namespace msc::prof {

namespace {

/// Coarse stage weights for the ETA model (fractions of a full run;
/// merge is split evenly across the plan's rounds). These only shape
/// the estimate -- correctness is "monotone and roughly right", and
/// the rendered value is labeled an estimate.
constexpr double kWRead = 0.10;
constexpr double kWCompute = 0.45;
constexpr double kWMerge = 0.40;

double stageFraction(const std::string& stage, int round, int rounds_total) {
  if (stage == "(idle)") return 0.0;
  if (stage == "read") return kWRead * 0.5;
  if (stage == "compute") return kWRead + kWCompute * 0.5;
  if (stage == "write") return kWRead + kWCompute + kWMerge;
  // Any merge-side stage: scale by round progress when known.
  const double rf =
      rounds_total > 0 && round >= 0
          ? (static_cast<double>(round) + 0.5) / static_cast<double>(rounds_total)
          : 0.5;
  return kWRead + kWCompute + kWMerge * std::min(1.0, rf);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Heartbeat::Heartbeat(const Profiler* profiler, const metrics::Registry* metrics,
                     HeartbeatOptions opts)
    : profiler_(profiler), metrics_(metrics), opts_(opts),
      epoch_(std::chrono::steady_clock::now()) {}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Heartbeat::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

void Heartbeat::loop() {
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(opts_.period_s));
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (cv_.wait_for(lk, period, [this]() MSC_REQUIRES(mu_) { return stop_; })) return;
    lk.unlock();
    beat();
    lk.lock();
  }
}

HeartbeatSnapshot Heartbeat::snapshot() {
  HeartbeatSnapshot s;
  s.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  s.nranks = profiler_->nranks();
  s.rounds_total = profiler_->totalRounds();
  s.samples = profiler_->sampleCount();
  s.stage.reserve(static_cast<std::size_t>(s.nranks));
  s.leaf.reserve(static_cast<std::size_t>(s.nranks));
  s.round.reserve(static_cast<std::size_t>(s.nranks));
  double frac_min = 1.0;
  for (int r = 0; r < s.nranks; ++r) {
    const std::vector<const char*> stack = profiler_->liveStack(r);
    s.stage.push_back(stack.empty() ? "(idle)" : stack.front());
    s.leaf.push_back(stack.empty() ? "(idle)" : stack.back());
    s.round.push_back(profiler_->round(r));
    frac_min = std::min(
        frac_min, stageFraction(s.stage.back(), s.round.back(), s.rounds_total));
  }
  // The run finishes when its slowest rank does.
  s.frac = s.nranks ? frac_min : 0.0;
  s.eta_s = s.frac > 0.01 ? s.elapsed_s * (1.0 - s.frac) / s.frac : -1.0;
  if (metrics_) {
    s.mem_peak_bytes = metrics_->gaugeMax(metrics::Gauge::kMemPeakLiveBytes);
    const std::int64_t pack = metrics_->counterTotal(metrics::Counter::kPackBytes);
    std::lock_guard<std::mutex> lk(rate_mu_);
    const double dt = s.elapsed_s - last_beat_s_;
    if (dt > 0)
      s.pack_bytes_per_s = static_cast<double>(pack - last_pack_bytes_) / dt;
    last_beat_s_ = s.elapsed_s;
    last_pack_bytes_ = pack;
  }
  return s;
}

void Heartbeat::beat() {
  const HeartbeatSnapshot s = snapshot();
  if (opts_.text) {
    *opts_.text << renderText(s, opts_.max_ranks_shown);
    if (opts_.extra) *opts_.text << opts_.extra();
    opts_.text->flush();
  }
  if (opts_.json) {
    *opts_.json << renderJsonLine(s) << '\n';
    opts_.json->flush();
  }
}

std::string renderText(const HeartbeatSnapshot& s, int max_ranks_shown) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[heartbeat t=%.1fs] %d ranks, %.0f%% est",
                s.elapsed_s, s.nranks, 100.0 * s.frac);
  os << buf;
  if (s.eta_s >= 0) {
    std::snprintf(buf, sizeof(buf), ", eta ~%.1fs", s.eta_s);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                " | mem peak %.1f MiB | pack %.2f MiB/s | %lld samples\n",
                static_cast<double>(s.mem_peak_bytes) / (1024.0 * 1024.0),
                s.pack_bytes_per_s / (1024.0 * 1024.0),
                static_cast<long long>(s.samples));
  os << buf;
  // Busiest (non-idle) ranks first so the interesting lines survive
  // the max_ranks_shown cut on wide runs.
  std::vector<int> order(s.stage.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (s.stage[static_cast<std::size_t>(a)] != "(idle)") >
           (s.stage[static_cast<std::size_t>(b)] != "(idle)");
  });
  const int shown = std::min<int>(max_ranks_shown, static_cast<int>(order.size()));
  for (int i = 0; i < shown; ++i) {
    const std::size_t r = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
    os << "  rank" << r << ": " << s.stage[r];
    if (s.leaf[r] != s.stage[r]) os << " > " << s.leaf[r];
    if (s.round[r] >= 0) {
      os << " (round " << s.round[r];
      if (s.rounds_total > 0) os << '/' << s.rounds_total;
      os << ')';
    }
    os << '\n';
  }
  if (static_cast<int>(order.size()) > shown)
    os << "  ... and " << (order.size() - static_cast<std::size_t>(shown))
       << " more ranks\n";
  return os.str();
}

std::string renderJsonLine(const HeartbeatSnapshot& s) {
  // Stage census: how many ranks are in each outermost stage.
  std::map<std::string, int> census;
  for (const std::string& st : s.stage) census[st] += 1;
  std::string stages;
  for (const auto& [name, n] : census) {
    if (!stages.empty()) stages += ',';
    stages += name + ':' + std::to_string(n);
  }
  int round_max = -1;
  for (const int r : s.round) round_max = std::max(round_max, r);
  std::ostringstream os;
  char buf[128];
  os << "{\"schema_version\":" << kHeartbeatSchemaVersion;
  std::snprintf(buf, sizeof(buf), ",\"t_s\":%.3f", s.elapsed_s);
  os << buf << ",\"ranks\":" << s.nranks << ",\"rounds_total\":" << s.rounds_total
     << ",\"round_max\":" << round_max;
  std::snprintf(buf, sizeof(buf), ",\"frac\":%.4f,\"eta_s\":%.3f", s.frac, s.eta_s);
  os << buf << ",\"samples\":" << s.samples
     << ",\"mem_peak_bytes\":" << s.mem_peak_bytes;
  std::snprintf(buf, sizeof(buf), ",\"pack_bytes_per_s\":%.1f", s.pack_bytes_per_s);
  os << buf << ",\"stages\":\"" << jsonEscape(stages) << "\"}";
  return os.str();
}

bool parseJsonLine(const std::string& line, std::map<std::string, std::string>& out) {
  out.clear();
  std::size_t i = 0;
  const auto skipWs = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  const auto parseString = [&](std::string& s) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      s += line[i++];
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skipWs();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skipWs();
  if (i < line.size() && line[i] == '}') return true;  // empty object
  for (;;) {
    skipWs();
    std::string key;
    if (!parseString(key)) return false;
    skipWs();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skipWs();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parseString(value)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      value = line.substr(start, i - start);
      if (value.empty()) return false;
    }
    out[key] = value;
    skipWs();
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return true;
    return false;
  }
}

}  // namespace msc::prof
