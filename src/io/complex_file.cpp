#include "io/complex_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "integrity/integrity.hpp"
#include "par/comm.hpp"

namespace msc::io {

namespace {

constexpr std::uint32_t kFileMagic = 0x4653534Du;  // "MSSF"
/// v2 hardened the container to io::pack's standard: per-block
/// checksums in the index, a footer checksum over the index itself,
/// and require-style bounds checks on everything read. v1 files
/// (no checksums) are rejected by the version check.
constexpr std::uint32_t kFileVersion = 2;
/// Index entry: { u64 offset, u64 size, u64 checksum-of-block-bytes }.
constexpr std::size_t kEntryBytes = 3 * sizeof(std::uint64_t);
/// Tail: u64 N, u64 footer-checksum, u32 version, u32 magic.
constexpr std::size_t kTailBytes = 2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File openOrThrow(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

void writeOrThrow(std::FILE* f, const void* p, std::size_t n) {
  if (n && std::fwrite(p, 1, n, f) != n) throw std::runtime_error("short write");
}

void readOrThrow(std::FILE* f, void* p, std::size_t n) {
  if (n && std::fread(p, 1, n, f) != n) throw std::runtime_error("short read");
}

struct IndexEntry {
  std::uint64_t offset;
  std::uint64_t size;
  std::uint64_t checksum;
};

/// Serialize the index entries plus the count -- the exact byte range
/// the footer checksum covers, shared by both writers and the reader.
std::vector<std::byte> packIndex(const std::vector<IndexEntry>& index) {
  std::vector<std::byte> buf(index.size() * kEntryBytes + sizeof(std::uint64_t));
  std::size_t o = 0;
  for (const IndexEntry& e : index) {
    std::memcpy(buf.data() + o, &e.offset, 8);
    std::memcpy(buf.data() + o + 8, &e.size, 8);
    std::memcpy(buf.data() + o + 16, &e.checksum, 8);
    o += kEntryBytes;
  }
  const std::uint64_t n = index.size();
  std::memcpy(buf.data() + o, &n, sizeof(n));
  return buf;
}

void writeFooter(std::FILE* f, const std::vector<IndexEntry>& index) {
  const std::vector<std::byte> buf = packIndex(index);
  const std::uint64_t fsum = integrity::checksum64(buf.data(), buf.size());
  writeOrThrow(f, buf.data(), buf.size());
  writeOrThrow(f, &fsum, sizeof(fsum));
  writeOrThrow(f, &kFileVersion, sizeof(kFileVersion));
  writeOrThrow(f, &kFileMagic, sizeof(kFileMagic));
}

[[noreturn]] void rejectFile(const std::string& path, const std::string& why) {
  throw std::runtime_error("complex file " + path + ": " + why);
}

/// Read and validate the full index. Every anomaly -- truncation,
/// wrong magic/version, a hostile count, an out-of-range extent, a
/// flipped footer byte -- throws with a reason; nothing is trusted
/// before it is bounds-checked and checksummed.
std::vector<IndexEntry> readIndexChecked(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t fsize = std::filesystem::file_size(path, ec);
  if (ec) rejectFile(path, "cannot stat");
  if (fsize < kTailBytes) rejectFile(path, "truncated (shorter than the tail)");

  File f = openOrThrow(path, "rb");
  if (std::fseek(f.get(), static_cast<long>(fsize - kTailBytes), SEEK_SET))
    rejectFile(path, "seek failed");
  std::uint64_t n = 0, fsum = 0;
  std::uint32_t version = 0, magic = 0;
  readOrThrow(f.get(), &n, sizeof(n));
  readOrThrow(f.get(), &fsum, sizeof(fsum));
  readOrThrow(f.get(), &version, sizeof(version));
  readOrThrow(f.get(), &magic, sizeof(magic));
  if (magic != kFileMagic) rejectFile(path, "bad magic");
  if (version != kFileVersion) rejectFile(path, "bad version");
  // Hostile-count gate BEFORE any allocation or seek math: the index
  // must fit between the start of the file and the tail.
  if (n > (fsize - kTailBytes) / kEntryBytes)
    rejectFile(path, "hostile block count (" + std::to_string(n) +
                         " entries cannot fit in " + std::to_string(fsize) +
                         " bytes)");
  const std::uint64_t index_off = fsize - kTailBytes - n * kEntryBytes;
  if (std::fseek(f.get(), static_cast<long>(index_off), SEEK_SET))
    rejectFile(path, "seek failed");
  std::vector<std::byte> buf(n * kEntryBytes + sizeof(std::uint64_t));
  readOrThrow(f.get(), buf.data(), n * kEntryBytes);
  std::memcpy(buf.data() + n * kEntryBytes, &n, sizeof(n));
  if (integrity::checksum64(buf.data(), buf.size()) != fsum)
    rejectFile(path, "footer checksum mismatch (torn write or flip)");

  std::vector<IndexEntry> index(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    IndexEntry& e = index[i];
    std::memcpy(&e.offset, buf.data() + i * kEntryBytes, 8);
    std::memcpy(&e.size, buf.data() + i * kEntryBytes + 8, 8);
    std::memcpy(&e.checksum, buf.data() + i * kEntryBytes + 16, 8);
    if (e.offset > index_off || e.size > index_off - e.offset)
      rejectFile(path, "block " + std::to_string(i) + " extent out of range");
  }
  return index;
}

}  // namespace

void writeComplexFile(const std::string& path, const std::vector<Bytes>& blocks) {
  File f = openOrThrow(path, "wb");
  std::vector<IndexEntry> index;
  index.reserve(blocks.size());
  std::uint64_t offset = 0;
  for (const Bytes& b : blocks) {
    writeOrThrow(f.get(), b.data(), b.size());
    index.push_back({offset, b.size(), integrity::checksum64(b.data(), b.size())});
    offset += b.size();
  }
  writeFooter(f.get(), index);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> readComplexFileIndex(
    const std::string& path) {
  const std::vector<IndexEntry> index = readIndexChecked(path);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(index.size());
  for (const IndexEntry& e : index) out.emplace_back(e.offset, e.size);
  return out;
}

std::vector<Bytes> readComplexFile(const std::string& path) {
  const std::vector<IndexEntry> index = readIndexChecked(path);
  File f = openOrThrow(path, "rb");
  std::vector<Bytes> out;
  out.reserve(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    const IndexEntry& e = index[i];
    if (std::fseek(f.get(), static_cast<long>(e.offset), SEEK_SET))
      rejectFile(path, "seek failed");
    Bytes b(e.size);
    readOrThrow(f.get(), b.data(), b.size());
    if (integrity::checksum64(b.data(), b.size()) != e.checksum)
      rejectFile(path, "block " + std::to_string(i) + " checksum mismatch");
    out.push_back(std::move(b));
  }
  return out;
}


namespace {

// The size-gather runs in whichever driver called us, so this tag
// must be disjoint from BOTH pipeline tag spaces. The old value (900)
// sat inside the recovery driver's attempt-qualified merge band
// (mergeTag(12, 32) == 100 + 12*64 + 32 == 900): a stale straggler
// from a failed attempt could have been consumed by the wildcard
// recv below as a size report. 90 is below every family base.
// msc-analyze: tag-space(plain, recovery)
constexpr int kTagSizes = 90;

/// One slot's report in the phase-1 size gather: the checksum rides
/// along so rank 0 can write a fully checksummed footer without ever
/// seeing the payload bytes.
constexpr std::size_t kReportBytes = sizeof(std::int32_t) + 2 * sizeof(std::uint64_t);

void pwriteOrThrow(int fd, const void* p, std::size_t n, std::uint64_t offset) {
  const auto* b = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, b, n, static_cast<off_t>(offset));
    if (w < 0) throw std::runtime_error("pwrite failed");
    b += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<std::uint64_t>(w);
  }
}

}  // namespace

void parallelWriteComplexFile(par::Comm& comm, const std::string& path, int total_slots,
                              const std::vector<WriteContribution>& mine) {
  // Phase 1: rank 0 gathers (slot, size, checksum) triples and
  // computes offsets.
  {
    par::Bytes sizes(mine.size() * kReportBytes);
    std::size_t o = 0;
    for (const WriteContribution& c : mine) {
      const auto slot = static_cast<std::int32_t>(c.slot);
      const auto size = static_cast<std::uint64_t>(c.bytes.size());
      const std::uint64_t sum = integrity::checksum64(c.bytes.data(), c.bytes.size());
      std::memcpy(sizes.data() + o, &slot, sizeof(slot));
      std::memcpy(sizes.data() + o + sizeof(slot), &size, sizeof(size));
      std::memcpy(sizes.data() + o + sizeof(slot) + sizeof(size), &sum, sizeof(sum));
      o += kReportBytes;
    }
    comm.send(0, kTagSizes, std::move(sizes));
  }
  std::vector<std::uint64_t> slot_sizes;
  std::vector<std::uint64_t> slot_sums;
  if (comm.rank() == 0) {
    slot_sizes.assign(static_cast<std::size_t>(total_slots), ~std::uint64_t{0});
    slot_sums.assign(static_cast<std::size_t>(total_slots), 0);
    for (int r = 0; r < comm.size(); ++r) {
      const par::Bytes b = comm.recv(par::kAny, kTagSizes);
      for (std::size_t o = 0; o + kReportBytes <= b.size(); o += kReportBytes) {
        std::int32_t slot = 0;
        std::uint64_t size = 0, sum = 0;
        std::memcpy(&slot, b.data() + o, sizeof(slot));
        std::memcpy(&size, b.data() + o + sizeof(slot), sizeof(size));
        std::memcpy(&sum, b.data() + o + sizeof(slot) + sizeof(size), sizeof(sum));
        if (slot < 0 || slot >= total_slots ||
            slot_sizes[static_cast<std::size_t>(slot)] != ~std::uint64_t{0})
          throw std::runtime_error("parallelWriteComplexFile: bad or duplicate slot");
        slot_sizes[static_cast<std::size_t>(slot)] = size;
        slot_sums[static_cast<std::size_t>(slot)] = sum;
      }
    }
    for (const std::uint64_t s : slot_sizes)
      if (s == ~std::uint64_t{0})
        throw std::runtime_error("parallelWriteComplexFile: missing slot");
    // Create/truncate the file before anyone writes into it.
    File f = openOrThrow(path, "wb");
  }

  // Phase 2: broadcast per-slot offsets.
  {
    par::Bytes offsets;
    if (comm.rank() == 0) {
      offsets.resize(static_cast<std::size_t>(total_slots) * sizeof(std::uint64_t));
      std::uint64_t off = 0;
      for (int i = 0; i < total_slots; ++i) {
        std::memcpy(offsets.data() + static_cast<std::size_t>(i) * sizeof(std::uint64_t),
                    &off, sizeof(off));
        off += slot_sizes[static_cast<std::size_t>(i)];
      }
    }
    offsets = comm.broadcast(0, std::move(offsets));

    // Phase 3: every rank writes its payloads at its offsets.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw std::runtime_error("cannot open for parallel write: " + path);
    for (const WriteContribution& c : mine) {
      std::uint64_t off = 0;
      std::memcpy(&off,
                  offsets.data() + static_cast<std::size_t>(c.slot) * sizeof(std::uint64_t),
                  sizeof(off));
      pwriteOrThrow(fd, c.bytes.data(), c.bytes.size(), off);
    }
    ::close(fd);
  }

  // Phase 4: rank 0 appends the footer once all data is in place.
  comm.barrier();
  if (comm.rank() == 0) {
    File f = openOrThrow(path, "ab");
    std::vector<IndexEntry> index;
    index.reserve(slot_sizes.size());
    std::uint64_t off = 0;
    for (std::size_t i = 0; i < slot_sizes.size(); ++i) {
      index.push_back({off, slot_sizes[i], slot_sums[i]});
      off += slot_sizes[i];
    }
    writeFooter(f.get(), index);
  }
  comm.barrier();
}

}  // namespace msc::io
