#include "io/complex_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "par/comm.hpp"

namespace msc::io {

namespace {

constexpr std::uint32_t kFileMagic = 0x4653534Du;  // "MSSF"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File openOrThrow(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

void writeOrThrow(std::FILE* f, const void* p, std::size_t n) {
  if (n && std::fwrite(p, 1, n, f) != n) throw std::runtime_error("short write");
}

void readOrThrow(std::FILE* f, void* p, std::size_t n) {
  if (n && std::fread(p, 1, n, f) != n) throw std::runtime_error("short read");
}

}  // namespace

void writeComplexFile(const std::string& path, const std::vector<Bytes>& blocks) {
  File f = openOrThrow(path, "wb");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index;
  index.reserve(blocks.size());
  std::uint64_t offset = 0;
  for (const Bytes& b : blocks) {
    writeOrThrow(f.get(), b.data(), b.size());
    index.emplace_back(offset, b.size());
    offset += b.size();
  }
  for (const auto& [off, size] : index) {
    writeOrThrow(f.get(), &off, sizeof(off));
    writeOrThrow(f.get(), &size, sizeof(size));
  }
  const std::uint64_t n = blocks.size();
  writeOrThrow(f.get(), &n, sizeof(n));
  writeOrThrow(f.get(), &kFileMagic, sizeof(kFileMagic));
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> readComplexFileIndex(
    const std::string& path) {
  File f = openOrThrow(path, "rb");
  if (std::fseek(f.get(), -(long)(sizeof(std::uint64_t) + sizeof(std::uint32_t)), SEEK_END))
    throw std::runtime_error("seek failed: " + path);
  std::uint64_t n = 0;
  std::uint32_t magic = 0;
  readOrThrow(f.get(), &n, sizeof(n));
  readOrThrow(f.get(), &magic, sizeof(magic));
  if (magic != kFileMagic) throw std::runtime_error("bad complex file magic: " + path);

  const long footer = -(long)(sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                              n * 2 * sizeof(std::uint64_t));
  if (std::fseek(f.get(), footer, SEEK_END)) throw std::runtime_error("seek failed");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index(n);
  for (auto& [off, size] : index) {
    readOrThrow(f.get(), &off, sizeof(off));
    readOrThrow(f.get(), &size, sizeof(size));
  }
  return index;
}

std::vector<Bytes> readComplexFile(const std::string& path) {
  const auto index = readComplexFileIndex(path);
  File f = openOrThrow(path, "rb");
  std::vector<Bytes> out;
  out.reserve(index.size());
  for (const auto& [off, size] : index) {
    if (std::fseek(f.get(), static_cast<long>(off), SEEK_SET))
      throw std::runtime_error("seek failed");
    Bytes b(size);
    readOrThrow(f.get(), b.data(), b.size());
    out.push_back(std::move(b));
  }
  return out;
}


namespace {

// The size-gather runs in whichever driver called us, so this tag
// must be disjoint from BOTH pipeline tag spaces. The old value (900)
// sat inside the recovery driver's attempt-qualified merge band
// (mergeTag(12, 32) == 100 + 12*64 + 32 == 900): a stale straggler
// from a failed attempt could have been consumed by the wildcard
// recv below as a size report. 90 is below every family base.
// msc-analyze: tag-space(plain, recovery)
constexpr int kTagSizes = 90;

void pwriteOrThrow(int fd, const void* p, std::size_t n, std::uint64_t offset) {
  const auto* b = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, b, n, static_cast<off_t>(offset));
    if (w < 0) throw std::runtime_error("pwrite failed");
    b += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<std::uint64_t>(w);
  }
}

}  // namespace

void parallelWriteComplexFile(par::Comm& comm, const std::string& path, int total_slots,
                              const std::vector<WriteContribution>& mine) {
  // Phase 1: rank 0 gathers (slot, size) pairs and computes offsets.
  {
    par::Bytes sizes(mine.size() * (sizeof(std::int32_t) + sizeof(std::uint64_t)));
    std::size_t o = 0;
    for (const WriteContribution& c : mine) {
      const auto slot = static_cast<std::int32_t>(c.slot);
      const auto size = static_cast<std::uint64_t>(c.bytes.size());
      std::memcpy(sizes.data() + o, &slot, sizeof(slot));
      std::memcpy(sizes.data() + o + sizeof(slot), &size, sizeof(size));
      o += sizeof(slot) + sizeof(size);
    }
    comm.send(0, kTagSizes, std::move(sizes));
  }
  std::vector<std::uint64_t> slot_sizes;
  if (comm.rank() == 0) {
    slot_sizes.assign(static_cast<std::size_t>(total_slots), ~std::uint64_t{0});
    for (int r = 0; r < comm.size(); ++r) {
      const par::Bytes b = comm.recv(par::kAny, kTagSizes);
      for (std::size_t o = 0; o + sizeof(std::int32_t) + sizeof(std::uint64_t) <= b.size();
           o += sizeof(std::int32_t) + sizeof(std::uint64_t)) {
        std::int32_t slot = 0;
        std::uint64_t size = 0;
        std::memcpy(&slot, b.data() + o, sizeof(slot));
        std::memcpy(&size, b.data() + o + sizeof(slot), sizeof(size));
        if (slot < 0 || slot >= total_slots ||
            slot_sizes[static_cast<std::size_t>(slot)] != ~std::uint64_t{0})
          throw std::runtime_error("parallelWriteComplexFile: bad or duplicate slot");
        slot_sizes[static_cast<std::size_t>(slot)] = size;
      }
    }
    for (const std::uint64_t s : slot_sizes)
      if (s == ~std::uint64_t{0})
        throw std::runtime_error("parallelWriteComplexFile: missing slot");
    // Create/truncate the file before anyone writes into it.
    File f = openOrThrow(path, "wb");
  }

  // Phase 2: broadcast per-slot offsets.
  {
    par::Bytes offsets;
    if (comm.rank() == 0) {
      offsets.resize(static_cast<std::size_t>(total_slots) * sizeof(std::uint64_t));
      std::uint64_t off = 0;
      for (int i = 0; i < total_slots; ++i) {
        std::memcpy(offsets.data() + static_cast<std::size_t>(i) * sizeof(std::uint64_t),
                    &off, sizeof(off));
        off += slot_sizes[static_cast<std::size_t>(i)];
      }
    }
    offsets = comm.broadcast(0, std::move(offsets));

    // Phase 3: every rank writes its payloads at its offsets.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw std::runtime_error("cannot open for parallel write: " + path);
    for (const WriteContribution& c : mine) {
      std::uint64_t off = 0;
      std::memcpy(&off,
                  offsets.data() + static_cast<std::size_t>(c.slot) * sizeof(std::uint64_t),
                  sizeof(off));
      pwriteOrThrow(fd, c.bytes.data(), c.bytes.size(), off);
    }
    ::close(fd);
  }

  // Phase 4: rank 0 appends the footer once all data is in place.
  comm.barrier();
  if (comm.rank() == 0) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw std::runtime_error("cannot open for footer: " + path);
    std::uint64_t off = 0;
    std::uint64_t pos = 0;
    for (const std::uint64_t s : slot_sizes) pos += s;
    for (const std::uint64_t s : slot_sizes) {
      pwriteOrThrow(fd, &off, sizeof(off), pos);
      pos += sizeof(off);
      pwriteOrThrow(fd, &s, sizeof(s), pos);
      pos += sizeof(s);
      off += s;
    }
    const std::uint64_t n = slot_sizes.size();
    pwriteOrThrow(fd, &n, sizeof(n), pos);
    pos += sizeof(n);
    pwriteOrThrow(fd, &kFileMagic, sizeof(kFileMagic), pos);
    ::close(fd);
  }
  comm.barrier();
}

}  // namespace msc::io
