/// \file pack.hpp
/// Serialization of MS complexes for communication and storage
/// (sections IV-F1/IV-G). Only living elements are encoded; geometry
/// is flattened to plain global-address paths. The byte counts
/// reported here also feed the network/I/O cost models.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/complex.hpp"

namespace msc::io {

using Bytes = std::vector<std::byte>;

/// Serialize the living part of a complex.
Bytes pack(const MsComplex& complex);

/// Reconstruct a complex from pack() output. Boundary flags are
/// recomputed from the encoded region; the hierarchy starts empty
/// (packing happens after per-block cleanup, IV-F1).
MsComplex unpack(const Bytes& bytes);

/// Size in bytes that pack() would produce, without producing it.
std::size_t packedSize(const MsComplex& complex);

/// Little helpers shared by the file container.
class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }
  void putBytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }

 private:
  Bytes& out_;
};

/// Reads throw std::runtime_error on a short buffer: packed complexes
/// arrive over the wire and from disk, so a truncated or corrupt
/// buffer must produce a clean error, never an out-of-bounds read.
class Reader {
 public:
  explicit Reader(const Bytes& in) : in_(in) {}
  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void getBytes(void* p, std::size_t n) {
    require(n);
    if (n == 0) return;  // an empty vector's data() may be null, and
                         // memcpy's arguments are declared nonnull
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (n > in_.size() - pos_)
      throw std::runtime_error("io::Reader: truncated buffer (need " + std::to_string(n) +
                               " bytes at offset " + std::to_string(pos_) + ", have " +
                               std::to_string(in_.size() - pos_) + ")");
  }

  const Bytes& in_;
  std::size_t pos_{0};
};

}  // namespace msc::io
