#include "io/pack.hpp"

#include <cstring>

namespace msc::io {

namespace {
constexpr std::uint32_t kMagic = 0x4243534Du;  // "MSCB"
}

Bytes pack(const MsComplex& c) {
  Bytes out;
  out.reserve(packedSize(c));
  Writer w(out);
  w.put(kMagic);
  w.put(c.domain().vdims);

  const auto& boxes = c.region().boxes();
  w.put(static_cast<std::uint32_t>(boxes.size()));
  for (const Box3& b : boxes) w.put(b);

  // Live nodes with remapped contiguous ids.
  std::vector<NodeId> map(c.nodes().size(), kNone);
  std::uint32_t nlive = 0;
  for (std::size_t i = 0; i < c.nodes().size(); ++i)
    if (c.nodes()[i].alive) map[i] = static_cast<NodeId>(nlive++);
  w.put(nlive);
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    w.put(nd.addr);
    w.put(nd.value);
    w.put(nd.index);
  }

  w.put(static_cast<std::uint32_t>(c.liveArcCount()));
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    w.put(static_cast<std::uint32_t>(map[static_cast<std::size_t>(ar.lower)]));
    w.put(static_cast<std::uint32_t>(map[static_cast<std::size_t>(ar.upper)]));
    // Leaf geometries (the only kind in a compacted complex) stream
    // straight from their cell array; composites still flatten.
    if (ar.geom == kNone) {
      w.put(static_cast<std::uint32_t>(0));
    } else if (const Geom& ge = c.geom(ar.geom); ge.children.empty()) {
      w.put(static_cast<std::uint32_t>(ge.cells.size()));
      w.putBytes(ge.cells.data(), ge.cells.size() * sizeof(CellAddr));
    } else {
      const std::vector<CellAddr> cells = c.flattenGeom(ar.geom);
      w.put(static_cast<std::uint32_t>(cells.size()));
      w.putBytes(cells.data(), cells.size() * sizeof(CellAddr));
    }
  }
  return out;
}

namespace {

/// A corrupt count field must not drive a huge allocation: every
/// element of the claimed count still has to fit in the bytes that
/// remain, so validate before resizing.
void requireCount(const Reader& r, std::uint64_t count, std::size_t elem_size,
                  const char* what) {
  if (count * elem_size > r.remaining())
    throw std::runtime_error(std::string("unpack: ") + what + " count " +
                             std::to_string(count) + " exceeds the remaining " +
                             std::to_string(r.remaining()) + " bytes");
}

}  // namespace

MsComplex unpack(const Bytes& bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.get<std::uint32_t>();
  if (magic != kMagic) throw std::runtime_error("unpack: bad magic");
  Domain domain{r.get<Vec3i>()};

  Region region;
  const std::uint32_t nboxes = r.get<std::uint32_t>();
  requireCount(r, nboxes, sizeof(Box3), "region box");
  for (std::uint32_t i = 0; i < nboxes; ++i) region.add(r.get<Box3>());

  MsComplex c(domain, std::move(region));
  const std::uint32_t nnodes = r.get<std::uint32_t>();
  requireCount(r, nnodes, sizeof(CellAddr) + sizeof(float) + sizeof(std::uint8_t), "node");
  for (std::uint32_t i = 0; i < nnodes; ++i) {
    const CellAddr addr = r.get<CellAddr>();
    const float value = r.get<float>();
    const std::uint8_t index = r.get<std::uint8_t>();
    c.addNode(addr, index, value);
  }

  const std::uint32_t narcs = r.get<std::uint32_t>();
  requireCount(r, narcs, 3 * sizeof(std::uint32_t), "arc");
  for (std::uint32_t i = 0; i < narcs; ++i) {
    const std::uint32_t lower = r.get<std::uint32_t>();
    const std::uint32_t upper = r.get<std::uint32_t>();
    if (lower >= nnodes || upper >= nnodes)
      throw std::runtime_error("unpack: arc endpoint out of range");
    Geom g;
    const std::uint32_t ncells = r.get<std::uint32_t>();
    requireCount(r, ncells, sizeof(CellAddr), "geometry cell");
    g.cells.resize(ncells);
    r.getBytes(g.cells.data(), g.cells.size() * sizeof(CellAddr));
    const GeomId gid = c.addGeom(std::move(g));
    c.addArc(static_cast<NodeId>(lower), static_cast<NodeId>(upper), gid);
  }
  c.recomputeBoundary();
  return c;
}

std::size_t packedSize(const MsComplex& c) {
  std::size_t s = sizeof(std::uint32_t) + sizeof(Vec3i);
  s += sizeof(std::uint32_t) + c.region().boxes().size() * sizeof(Box3);
  s += sizeof(std::uint32_t);
  for (const Node& nd : c.nodes())
    if (nd.alive) s += sizeof(CellAddr) + sizeof(float) + sizeof(std::uint8_t);
  s += sizeof(std::uint32_t);
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    s += 3 * sizeof(std::uint32_t);
    // Flattened geometry length: counted without materializing the path.
    if (ar.geom != kNone)
      s += static_cast<std::size_t>(c.flattenedGeomLength(ar.geom)) * sizeof(CellAddr);
  }
  return s;
}

}  // namespace msc::io
