#include "io/pack.hpp"

#include <cstring>

namespace msc::io {

namespace {
constexpr std::uint32_t kMagic = 0x4243534Du;  // "MSCB"
}

Bytes pack(const MsComplex& c) {
  Bytes out;
  out.reserve(packedSize(c));
  Writer w(out);
  w.put(kMagic);
  w.put(c.domain().vdims);

  const auto& boxes = c.region().boxes();
  w.put(static_cast<std::uint32_t>(boxes.size()));
  for (const Box3& b : boxes) w.put(b);

  // Live nodes with remapped contiguous ids.
  std::vector<NodeId> map(c.nodes().size(), kNone);
  std::uint32_t nlive = 0;
  for (std::size_t i = 0; i < c.nodes().size(); ++i)
    if (c.nodes()[i].alive) map[i] = static_cast<NodeId>(nlive++);
  w.put(nlive);
  for (const Node& nd : c.nodes()) {
    if (!nd.alive) continue;
    w.put(nd.addr);
    w.put(nd.value);
    w.put(nd.index);
  }

  w.put(static_cast<std::uint32_t>(c.liveArcCount()));
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    w.put(static_cast<std::uint32_t>(map[static_cast<std::size_t>(ar.lower)]));
    w.put(static_cast<std::uint32_t>(map[static_cast<std::size_t>(ar.upper)]));
    const std::vector<CellAddr> cells =
        ar.geom == kNone ? std::vector<CellAddr>{} : c.flattenGeom(ar.geom);
    w.put(static_cast<std::uint32_t>(cells.size()));
    w.putBytes(cells.data(), cells.size() * sizeof(CellAddr));
  }
  return out;
}

MsComplex unpack(const Bytes& bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.get<std::uint32_t>();
  if (magic != kMagic) throw std::runtime_error("unpack: bad magic");
  Domain domain{r.get<Vec3i>()};

  Region region;
  const std::uint32_t nboxes = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nboxes; ++i) region.add(r.get<Box3>());

  MsComplex c(domain, std::move(region));
  const std::uint32_t nnodes = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nnodes; ++i) {
    const CellAddr addr = r.get<CellAddr>();
    const float value = r.get<float>();
    const std::uint8_t index = r.get<std::uint8_t>();
    c.addNode(addr, index, value);
  }

  const std::uint32_t narcs = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < narcs; ++i) {
    const auto lower = static_cast<NodeId>(r.get<std::uint32_t>());
    const auto upper = static_cast<NodeId>(r.get<std::uint32_t>());
    Geom g;
    g.cells.resize(r.get<std::uint32_t>());
    r.getBytes(g.cells.data(), g.cells.size() * sizeof(CellAddr));
    const GeomId gid = c.addGeom(std::move(g));
    c.addArc(lower, upper, gid);
  }
  c.recomputeBoundary();
  return c;
}

std::size_t packedSize(const MsComplex& c) {
  std::size_t s = sizeof(std::uint32_t) + sizeof(Vec3i);
  s += sizeof(std::uint32_t) + c.region().boxes().size() * sizeof(Box3);
  s += sizeof(std::uint32_t);
  for (const Node& nd : c.nodes())
    if (nd.alive) s += sizeof(CellAddr) + sizeof(float) + sizeof(std::uint8_t);
  s += sizeof(std::uint32_t);
  for (std::size_t i = 0; i < c.arcs().size(); ++i) {
    const Arc& ar = c.arcs()[i];
    if (!ar.alive) continue;
    s += 3 * sizeof(std::uint32_t);
    // Flattened geometry length: walk the DAG counting leaf cells.
    if (ar.geom != kNone) s += c.flattenGeom(ar.geom).size() * sizeof(CellAddr);
  }
  return s;
}

}  // namespace msc::io
