#include "io/volume.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace msc::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File openOrThrow(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

void convertOut(const float* in, std::size_t n, SampleType t, std::vector<std::byte>& out) {
  out.resize(n * sampleSize(t));
  switch (t) {
    case SampleType::kUint8: {
      auto* p = reinterpret_cast<std::uint8_t*>(out.data());
      for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(in[i]);
      break;
    }
    case SampleType::kFloat32:
      std::memcpy(out.data(), in, n * sizeof(float));
      break;
    case SampleType::kFloat64: {
      auto* p = reinterpret_cast<double*>(out.data());
      for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<double>(in[i]);
      break;
    }
  }
}

void convertIn(const std::byte* in, std::size_t n, SampleType t, float* out) {
  switch (t) {
    case SampleType::kUint8: {
      const auto* p = reinterpret_cast<const std::uint8_t*>(in);
      for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(p[i]);
      break;
    }
    case SampleType::kFloat32:
      std::memcpy(out, in, n * sizeof(float));
      break;
    case SampleType::kFloat64: {
      const auto* p = reinterpret_cast<const double*>(in);
      for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(p[i]);
      break;
    }
  }
}

}  // namespace

std::size_t sampleSize(SampleType t) {
  switch (t) {
    case SampleType::kUint8: return 1;
    case SampleType::kFloat32: return 4;
    case SampleType::kFloat64: return 8;
  }
  return 0;
}

void writeVolume(const std::string& path, const Domain& domain,
                 const std::vector<float>& samples, SampleType type) {
  if (std::ssize(samples) != domain.vdims.volume())
    throw std::invalid_argument("writeVolume: sample count mismatch");
  File f = openOrThrow(path, "wb");
  std::vector<std::byte> buf;
  convertOut(samples.data(), samples.size(), type, buf);
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size())
    throw std::runtime_error("short write: " + path);
}

BlockField readBlock(const std::string& path, const Block& block, SampleType type) {
  File f = openOrThrow(path, "rb");
  const std::size_t ss = sampleSize(type);
  const Vec3i g = block.domain.vdims;
  std::vector<float> out(static_cast<std::size_t>(block.numVertices()));
  std::vector<std::byte> row(static_cast<std::size_t>(block.vdims.x) * ss);

  // One contiguous read per (y,z) row of the sub-extent -- the same
  // access pattern an MPI subarray file view produces.
  std::size_t o = 0;
  for (std::int64_t z = 0; z < block.vdims.z; ++z) {
    for (std::int64_t y = 0; y < block.vdims.y; ++y) {
      const std::int64_t gy = y + block.voffset.y, gz = z + block.voffset.z;
      const std::int64_t start = block.voffset.x + gy * g.x + gz * g.x * g.y;
      if (std::fseek(f.get(), static_cast<long>(static_cast<std::size_t>(start) * ss),
                     SEEK_SET))
        throw std::runtime_error("seek failed: " + path);
      if (std::fread(row.data(), 1, row.size(), f.get()) != row.size())
        throw std::runtime_error("short read: " + path);
      convertIn(row.data(), static_cast<std::size_t>(block.vdims.x), type, out.data() + o);
      o += static_cast<std::size_t>(block.vdims.x);
    }
  }
  return BlockField(block, std::move(out));
}

std::vector<float> readVolume(const std::string& path, const Domain& domain,
                              SampleType type) {
  File f = openOrThrow(path, "rb");
  const auto n = static_cast<std::size_t>(domain.vdims.volume());
  std::vector<std::byte> buf(n * sampleSize(type));
  if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size())
    throw std::runtime_error("short read: " + path);
  std::vector<float> out(n);
  convertIn(buf.data(), n, type, out.data());
  return out;
}

}  // namespace msc::io
