/// \file complex_file.hpp
/// The output container of section IV-G: "a binary collection of all
/// of the output blocks, followed by a footer that provides an index
/// to the MS complexes contained in the file."
///
/// Layout (v2):
///   [block 0 bytes][block 1 bytes]...[block N-1 bytes]
///   footer: N x { u64 offset, u64 size, u64 checksum },
///           u64 N, u64 footer-checksum, u32 version, u32 magic
/// The footer is written last so writers can stream blocks without
/// knowing their sizes in advance; readers locate it from the end.
///
/// Integrity (msc::integrity): each index entry carries the checksum
/// of its block's bytes and the footer carries a checksum over the
/// whole index, so any single flipped byte -- payload, index, or tail
/// -- and any truncation is detected at read time. Readers reject
/// hostile counts and out-of-range extents before allocating or
/// seeking, and every failure throws std::runtime_error with the path
/// and a reason; nothing read from the file is trusted unchecked.
#pragma once

#include <string>

#include "io/pack.hpp"

namespace msc::io {

/// Write packed complexes to `path`. Ranks with no output contribute
/// an empty element ("null write"), mirroring the paper's collective.
void writeComplexFile(const std::string& path, const std::vector<Bytes>& blocks);

/// Read back every block's bytes, verifying each against its index
/// checksum. Throws on any corruption or truncation.
std::vector<Bytes> readComplexFile(const std::string& path);

/// Read only the footer: per-block (offset, size) index. The footer
/// itself is checksum-verified and bounds-checked; block payloads are
/// not touched.
std::vector<std::pair<std::uint64_t, std::uint64_t>> readComplexFileIndex(
    const std::string& path);

/// One rank's contribution to a collective write.
struct WriteContribution {
  int slot;     ///< global block position in the file (0-based)
  Bytes bytes;  ///< payload (may be empty: the "null write")
};

}  // namespace msc::io

namespace msc::par {
class Comm;
}

namespace msc::io {

/// Collectively write the output container from all ranks (the
/// paper's future-work "improve output I/O"): sizes are gathered and
/// offsets broadcast, then every rank writes its blocks at its own
/// offsets concurrently with positioned writes; rank 0 appends the
/// footer. `total_slots` must match across ranks; every global slot
/// must be contributed by exactly one rank. Ranks without blocks
/// participate with no contributions.
void parallelWriteComplexFile(par::Comm& comm, const std::string& path, int total_slots,
                              const std::vector<WriteContribution>& mine);

}  // namespace msc::io
