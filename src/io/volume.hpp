/// \file volume.hpp
/// Raw volume files and subarray block reads (section IV-B).
///
/// The paper reads blocks with MPI-IO subarray types: each process
/// reads exactly its block's (x,y,z) sub-extent from the row-major
/// global array. This module implements the same access pattern over
/// ordinary files, supporting the paper's three sample types:
/// unsigned byte, single- and double-precision floating point.
#pragma once

#include <string>
#include <vector>

#include "core/field.hpp"

namespace msc::io {

enum class SampleType { kUint8, kFloat32, kFloat64 };

std::size_t sampleSize(SampleType t);

/// Write a full volume, row-major x-fastest, converting from float.
void writeVolume(const std::string& path, const Domain& domain,
                 const std::vector<float>& samples, SampleType type);

/// Read one block's sub-extent (the subarray read): returns the
/// block's samples as floats regardless of the on-disk type.
BlockField readBlock(const std::string& path, const Block& block, SampleType type);

/// Read a whole volume as floats.
std::vector<float> readVolume(const std::string& path, const Domain& domain,
                              SampleType type);

}  // namespace msc::io
