#include "pipeline/run_summary.hpp"

#include <cstdio>

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "metrics/metrics.hpp"
#include "obs/obs.hpp"

namespace msc::pipeline {

namespace {

struct StageTime {
  double first_ts = 1e300;
  double max_rank_seconds = 0;  // max over ranks of summed durations
  bool nested = false;          // kernel sub-span, indented in the table
};

/// Kernel sub-spans worth their own (indented) row: they are where the
/// instrumented work counters live, while the top-level stages carry
/// the wall-clock structure.
bool kernelSpan(const std::string& name) {
  return name == "gradient" || name == "trace" || name == "simplify+pack" ||
         name == "glue";
}

std::string fmtCount(std::int64_t v) {
  char buf[32];
  if (v >= 10'000'000) std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
  else if (v >= 10'000) std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) / 1e3);
  else std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string fmtBytes(std::int64_t v) {
  char buf[32];
  if (v >= 10LL * 1024 * 1024) std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(v) / (1024.0 * 1024.0));
  else if (v >= 10 * 1024) std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(v) / 1024.0);
  else std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(v));
  return buf;
}

std::string fmtRate(std::int64_t count, double seconds, const char* unit) {
  if (!(seconds > 0) || count <= 0) return "";
  char buf[48];
  const double r = static_cast<double>(count) / seconds;
  if (r >= 1e6) std::snprintf(buf, sizeof(buf), " (%.1f M%s/s)", r / 1e6, unit);
  else if (r >= 1e3) std::snprintf(buf, sizeof(buf), " (%.1f k%s/s)", r / 1e3, unit);
  else std::snprintf(buf, sizeof(buf), " (%.0f %s/s)", r, unit);
  return buf;
}

/// Work summary for the stage named `name`, drawn from counter
/// totals. Stages without instrumented work return "".
std::string workFor(const std::string& name, const metrics::Registry& m,
                    double seconds) {
  using metrics::Counter;
  std::ostringstream os;
  if (name == "gradient") {
    const std::int64_t cells = m.counterTotal(Counter::kGradCells);
    os << "cells " << fmtCount(cells) << ", pairs "
       << fmtCount(m.counterTotal(Counter::kGradPairs)) << ", criticals "
       << fmtCount(m.counterTotal(Counter::kGradCriticals))
       << fmtRate(cells, seconds, "cells");
  } else if (name == "trace") {
    const std::int64_t arcs = m.counterTotal(Counter::kTraceArcs);
    os << "steps " << fmtCount(m.counterTotal(Counter::kTraceSteps)) << ", arcs "
       << fmtCount(arcs) << fmtRate(arcs, seconds, "arcs");
  } else if (name == "simplify+pack") {
    os << "cancelled " << fmtCount(m.counterTotal(Counter::kSimplifyCancelled))
       << ", arcs -" << fmtCount(m.counterTotal(Counter::kSimplifyArcsRemoved))
       << "/+" << fmtCount(m.counterTotal(Counter::kSimplifyArcsCreated));
  } else if (name == "merge_round" || name == "glue") {
    os << "nodes +" << fmtCount(m.counterTotal(Counter::kMergeNodesMerged))
       << " (dedup " << fmtCount(m.counterTotal(Counter::kMergeNodesDeduped))
       << "), arcs +" << fmtCount(m.counterTotal(Counter::kMergeArcsMerged))
       << " (dedup " << fmtCount(m.counterTotal(Counter::kMergeArcsDeduped)) << ")";
  } else if (name == "write") {
    const std::int64_t bytes = m.counterTotal(Counter::kPackBytes);
    os << "packed " << fmtBytes(bytes) << fmtRate(bytes, seconds, "B");
  }
  return os.str();
}

}  // namespace

void writeRunSummary(std::ostream& os, const obs::Tracer* tracer,
                     const metrics::Registry* metrics) {
  if (!tracer && !metrics) {
    os << "run summary: no tracer or metrics attached\n";
    return;
  }

  os << "== run summary (time x work x memory) ==\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-16s %12s  %s\n", "stage", "seconds", "work");
  os << buf;

  if (tracer) {
    // Max-over-ranks of per-rank summed span time: the paper's "the
    // slowest rank carries the stage" attribution.
    std::map<std::string, StageTime> stages;
    const int n = tracer->nranks();
    for (int r = 0; r < n; ++r) {
      std::map<std::string, double> rank_sum;
      for (const obs::Event& e : tracer->events(r)) {
        if (e.kind != obs::EventKind::kSpan) continue;
        if (e.depth > 0 && !kernelSpan(e.name)) continue;
        rank_sum[e.name] += e.dur;
        StageTime& st = stages[e.name];
        st.first_ts = std::min(st.first_ts, e.ts);
        if (e.depth > 0) st.nested = true;
      }
      for (const auto& [name, sec] : rank_sum) {
        StageTime& st = stages[name];
        st.max_rank_seconds = std::max(st.max_rank_seconds, sec);
      }
    }
    std::vector<std::pair<std::string, StageTime>> rows(stages.begin(), stages.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.first_ts < b.second.first_ts;
    });
    for (const auto& [name, st] : rows) {
      const std::string work =
          metrics ? workFor(name, *metrics, st.max_rank_seconds) : std::string();
      const std::string label = st.nested ? "  " + name : name;
      std::snprintf(buf, sizeof(buf), "%-16s %12.4f  %s\n", label.c_str(),
                    st.max_rank_seconds, work.c_str());
      os << buf;
    }
  } else {
    // Metrics only: emit the work rows with no time column.
    for (const char* name : {"gradient", "trace", "simplify+pack", "glue", "write"}) {
      const std::string work = workFor(name, *metrics, 0);
      if (work.empty()) continue;
      std::snprintf(buf, sizeof(buf), "%-16s %12s  %s\n", name, "-", work.c_str());
      os << buf;
    }
  }

  if (metrics) {
    using metrics::Counter;
    using metrics::Gauge;
    os << "\n== memory (per-rank tagging allocator) ==\n";
    os << "peak live        " << fmtBytes(metrics->gaugeMax(Gauge::kMemPeakLiveBytes))
       << " (max rank)\n";
    os << "alloc churn      " << fmtBytes(metrics->gaugeTotal(Gauge::kMemAllocBytes))
       << " in " << fmtCount(metrics->gaugeTotal(Gauge::kMemAllocCount))
       << " allocations\n";
    os << "packed payloads  " << fmtBytes(metrics->counterTotal(Counter::kPackBytes))
       << "\n";
    const std::int64_t ckpt = metrics->counterTotal(Counter::kCheckpointBytes);
    if (ckpt > 0) {
      os << "checkpoints      " << fmtBytes(ckpt) << " in "
         << fmtCount(metrics->counterTotal(Counter::kCheckpointPuts)) << " puts\n";
    }
  }
}

std::string runSummaryText(const obs::Tracer* tracer,
                           const metrics::Registry* metrics) {
  std::ostringstream os;
  writeRunSummary(os, tracer, metrics);
  return os.str();
}

}  // namespace msc::pipeline
