#include "pipeline/sim_pipeline.hpp"

#include <chrono>

#include "core/boundary.hpp"
#include "core/lower_star.hpp"
#include "core/merge.hpp"
#include "decomp/decompose.hpp"
#include "io/complex_file.hpp"
#include "metrics/metrics.hpp"

namespace msc::pipeline {

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One surviving complex during the merge rounds.
struct ActiveSet {
  int root_block;
  int owner_rank;
  MsComplex complex;
  std::int64_t packed_bytes;
};

}  // namespace

SimResult runSimPipeline(const PipelineConfig& user_cfg, const SimModels& models) {
  const PipelineConfig cfg = withEnvOverrides(user_cfg);
  validatePipelineConfig(cfg);
  const double t_start = now();
  SimResult res;

  const std::vector<Block> blocks = decompose(cfg.domain, cfg.nblocks);
  simnet::TimelineInputs& in = res.inputs;
  in.nranks = cfg.nranks;
  in.input_bytes =
      cfg.domain.vdims.volume() *
      static_cast<std::int64_t>(io::sampleSize(cfg.source.sample_type));
  in.compute_per_rank.assign(static_cast<std::size_t>(cfg.nranks), 0.0);
  in.merge_prep_per_rank.assign(static_cast<std::size_t>(cfg.nranks), 0.0);

  // --- Compute stage (Fig. 3 (b)-(c)) + local merge prep ((d)-(e)).
  std::vector<ActiveSet> active;
  active.reserve(blocks.size());
  for (const Block& blk : blocks) {
    const int owner = blk.id % cfg.nranks;
    const BlockField bf = cfg.source.volume_path
                              ? io::readBlock(*cfg.source.volume_path, blk,
                                              cfg.source.sample_type)
                              : synth::sample(blk, cfg.source.field);
    double t0 = now();
    GradientOptions gopts;
    gopts.restrict_boundary = cfg.nblocks > 1;
    // Same exact boundary-pairing rule as computeBlockComplex: the
    // sequential driver must stay bit-identical to the threaded one.
    BoundarySignatures sigs;
    if (cfg.nblocks > 1) {
      sigs = BoundarySignatures(blocks, blk);
      gopts.signatures = &sigs;
    }
    gopts.metrics = cfg.metrics;
    gopts.metrics_rank = owner;
    const GradientField grad = cfg.algorithm == GradientAlgorithm::kSweep
                                   ? computeGradientSweep(bf, gopts)
                                   : computeGradientLowerStar(bf, gopts);
    TraceOptions topts = cfg.trace;
    topts.metrics = cfg.metrics;
    topts.metrics_rank = owner;
    MsComplex c = traceComplex(grad, bf, topts);
    in.compute_per_rank[static_cast<std::size_t>(owner)] += now() - t0;

    t0 = now();
    SimplifyOptions sopts;
    sopts.persistence_threshold = cfg.persistence_threshold;
    sopts.metrics = cfg.metrics;
    sopts.metrics_rank = owner;
    simplify(c, sopts);
    c.compact();
    const std::int64_t bytes = static_cast<std::int64_t>(io::packedSize(c));
    in.merge_prep_per_rank[static_cast<std::size_t>(owner)] += now() - t0;

    active.push_back({blk.id, owner, std::move(c), bytes});
  }

  // --- Merge rounds (Fig. 3 (d)-(f) repeated).
  for (int r = 0; r < cfg.plan.rounds(); ++r) {
    const auto groups = cfg.plan.round(r, static_cast<int>(active.size()));
    std::vector<ActiveSet> next;
    std::vector<simnet::GroupRecord> recs;
    next.reserve(groups.size());
    for (const MergeGroup& g : groups) {
      ActiveSet& root = active[static_cast<std::size_t>(g.root)];
      simnet::GroupRecord rec;
      rec.root_rank = root.owner_rank;
      const double t0 = now();
      for (std::size_t m = 1; m < g.members.size(); ++m) {
        ActiveSet& member = active[static_cast<std::size_t>(g.members[m])];
        rec.sends.emplace_back(member.owner_rank, member.packed_bytes);
        // Pack bytes are charged to the sending member's rank, as in
        // the threaded driver's send phase.
        metrics::add(cfg.metrics, member.owner_rank, metrics::Counter::kPackBytes,
                     member.packed_bytes);
        glue(root.complex, member.complex, nullptr, cfg.metrics, root.owner_rank);
        member.complex = MsComplex();  // free early
      }
      finishMerge(root.complex, cfg.persistence_threshold, nullptr, cfg.metrics,
                  root.owner_rank);
      root.complex.compact();
      root.packed_bytes = static_cast<std::int64_t>(io::packedSize(root.complex));
      rec.merge_seconds = now() - t0;
      recs.push_back(std::move(rec));
      next.push_back(std::move(root));
    }
    in.rounds.push_back(std::move(recs));
    active = std::move(next);
  }

  // --- Write stage.
  for (ActiveSet& a : active) {
    io::Bytes b = io::pack(a.complex);
    metrics::add(cfg.metrics, a.owner_rank, metrics::Counter::kPackBytes,
                 static_cast<std::int64_t>(b.size()));
    res.output_bytes += static_cast<std::int64_t>(b.size());
    const auto counts = a.complex.liveNodeCounts();
    for (int i = 0; i < 4; ++i) res.node_counts[static_cast<std::size_t>(i)] += counts[i];
    res.arc_count += a.complex.liveArcCount();
    res.outputs.push_back(std::move(b));
  }
  in.output_bytes = res.output_bytes;
  if (!cfg.output_path.empty()) io::writeComplexFile(cfg.output_path, res.outputs);

  const simnet::TorusModel net(simnet::Torus::fit(cfg.nranks), models.net);
  const simnet::IoModel io(models.io);
  // When observability is on, the reconstruction doubles as a trace
  // generator: the simulated schedule lands on cfg.tracer with
  // model-time timestamps, one track per simulated rank. A causal
  // recorder likewise gets a synthesized journal of the same
  // schedule, so msc_critpath works on simulated runs.
  res.times = simnet::reconstruct(in, net, io, models.scale, cfg.tracer, cfg.causal);
  res.serial_seconds = now() - t_start;
  return res;
}

}  // namespace msc::pipeline
